// Package repro is a from-scratch Go reproduction of
//
//	Shuai Che, Jieming Yin. "Northup: Divide-and-Conquer Programming in
//	Systems with Heterogeneous Memories and Processors." IPPS 2019.
//
// The public programming API lives in repro/northup; the benchmark harness
// in this directory (bench_test.go) regenerates every figure of the paper's
// evaluation. See README.md for a tour, DESIGN.md for the system inventory
// and hardware-substitution decisions, and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro
