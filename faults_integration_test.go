package repro

// Fault-injection integration tests: the ISSUE's acceptance scenarios. The
// applications must complete bit-correct under injected transfer failures,
// the resilience counters must show the faults were absorbed (not avoided),
// and two runs with the same fault seed must replay identical schedules.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/apps/gemm"
	"repro/internal/apps/hotspot"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
)

// newFaultyAPU builds the small APU with a transfer-fault injector attached.
func newFaultyAPU(cfg fault.Config, withCPU bool) (*sim.Engine, *core.Runtime, *fault.Injector) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64,
		DRAMMiB: 2, WithCPU: withCPU})
	inj := fault.New(e, cfg)
	opts := core.DefaultOptions()
	opts.Faults = inj
	return e, core.NewRuntime(e, tree, opts), inj
}

// runGEMM executes the out-of-core GEMM on rt with a small shard so the run
// crosses the storage edge many times (many fault-injection points).
func runGEMM(t *testing.T, rt *core.Runtime) *gemm.Result {
	t.Helper()
	res, err := gemm.RunNorthup(rt, gemm.Config{N: 256, Seed: 1, ShardDim: 32})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGEMMBitCorrectUnderTransferFaults(t *testing.T) {
	// A fault-free run is the oracle; retried transfers must not change a
	// single bit of the result at 1% or 5% failure rates.
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64, DRAMMiB: 2})
	clean := runGEMM(t, core.NewRuntime(e, tree, core.DefaultOptions()))

	for _, rate := range []float64{0.01, 0.05} {
		_, rt, inj := newFaultyAPU(fault.Config{Seed: 42, TransferFailRate: rate}, false)
		res := runGEMM(t, rt)
		if !bytes.Equal(f32bytes(res.C), f32bytes(clean.C)) {
			t.Fatalf("rate %.0f%%: faulted GEMM differs from fault-free run", 100*rate)
		}
		if inj.Stats().TransferFails == 0 {
			t.Fatalf("rate %.0f%%: no transfer faults injected", 100*rate)
		}
		if rt.Resilience().Retries == 0 {
			t.Fatalf("rate %.0f%%: faults injected but never retried", 100*rate)
		}
	}
}

func TestHotSpotBitCorrectUnderFaultsAndOutage(t *testing.T) {
	// HotSpot with work stealing, under 5% transfer faults plus a GPU that
	// is down for the whole run: the result must match the fault-free run
	// bit for bit, with the GPU's queued tasks surfacing as failovers.
	cfg := hotspot.StealConfig{M: 256, ChunkDim: 64, Seed: 5, Iters: 4,
		GPUQueues: 2, Mode: hotspot.CPUGPU}
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64,
		DRAMMiB: 2, WithCPU: true})
	clean, err := hotspot.RunSteal(core.NewRuntime(e, tree, core.DefaultOptions()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	_, rt, inj := newFaultyAPU(fault.Config{Seed: 42, TransferFailRate: 0.05}, true)
	inj.TakeProcOffline(1, fault.ClassGPU, fault.Window{From: 0, Until: sim.Seconds(1e6)})
	res, err := hotspot.RunSteal(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f32bytes(res.Temp), f32bytes(clean.Temp)) {
		t.Fatal("faulted HotSpot differs from fault-free run")
	}
	if res.Failovers == 0 {
		t.Fatal("GPU outage produced no failovers")
	}
	r := rt.Resilience()
	if r.Retries == 0 || r.Failovers == 0 {
		t.Fatalf("resilience counters empty under faults: %+v", r)
	}
	t.Logf("clean elapsed %v, faulted elapsed %v, cpu tasks %d, %v",
		clean.Stats.Elapsed, res.Stats.Elapsed, res.TasksByCPU, r)
}

func TestSameFaultSeedReplaysIdenticalTrace(t *testing.T) {
	// The determinism regression: two runs with identical workload and
	// fault seed must resume the same processes at the same virtual times
	// in the same order — byte-identical traces.
	run := func() []byte {
		var buf bytes.Buffer
		e, rt, _ := newFaultyAPU(fault.Config{Seed: 42, TransferFailRate: 0.05,
			TransferDelayRate: 0.05, AllocFailRate: 0.02}, false)
		e.SetTrace(func(at sim.Time, p *sim.Proc) {
			fmt.Fprintf(&buf, "%d %d %s\n", at, p.ID(), p.Name())
		})
		runGEMM(t, rt)
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("trace hook captured nothing")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed fault runs diverged (trace %d vs %d bytes)", len(a), len(b))
	}
}

func TestDifferentFaultSeedsDiverge(t *testing.T) {
	// Sanity check on the knob: a different seed gives a different fault
	// schedule (otherwise the seed is not actually wired through).
	stats := func(seed int64) fault.Stats {
		_, rt, inj := newFaultyAPU(fault.Config{Seed: seed, TransferFailRate: 0.05,
			TransferDelayRate: 0.1}, false)
		runGEMM(t, rt)
		return inj.Stats()
	}
	if stats(1) == stats(99) {
		t.Fatal("seeds 1 and 99 produced identical fault schedules")
	}
}

// f32bytes views a float32 slice as raw bytes for exact comparison.
func f32bytes(xs []float32) []byte {
	var buf bytes.Buffer
	for _, x := range xs {
		fmt.Fprintf(&buf, "%b,", x)
	}
	return buf.Bytes()
}
