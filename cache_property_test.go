package repro

// Staging-cache equivalence properties: for any workload, seed, and fault
// schedule, a run with the reuse-aware cache enabled must produce results
// byte-identical to the uncached run — hits serve the same bytes a fresh
// storage read would — and equal seeds must replay identical hit counters.

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/apps/gemm"
	"repro/internal/apps/hotspot"
	"repro/internal/apps/spmv"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

// cacheCase is one drawn workload: which app, which input seed, how large,
// and how hostile the fault schedule is.
type cacheCase struct {
	app       int     // 0 gemm, 1 hotspot, 2 spmv
	seed      int64   // input-generation seed
	big       bool    // second size point
	faultRate float64 // transfer-failure probability (0 = clean)
}

// drawCase maps raw generator bytes onto a cacheCase.
func drawCase(app, seed, size, faults uint8) cacheCase {
	rates := []float64{0, 0.02, 0.05}
	return cacheCase{
		app:       int(app) % 3,
		seed:      int64(seed%16) + 1,
		big:       size%2 == 1,
		faultRate: rates[int(faults)%len(rates)],
	}
}

// runCase executes the drawn workload and returns the result bytes plus the
// run's cache counters. cached toggles the staging cache (with prefetch).
func runCase(t *testing.T, cc cacheCase, cached bool) ([]byte, trace.CacheStats) {
	t.Helper()
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64, DRAMMiB: 2,
		WithCPU: true})
	opts := core.DefaultOptions()
	if cached {
		opts.Cache = core.CacheOptions{Enabled: true, Prefetch: true}
	}
	if cc.faultRate > 0 {
		opts.Faults = fault.New(e, fault.Config{Seed: 1000 + cc.seed, TransferFailRate: cc.faultRate})
	}
	rt := core.NewRuntime(e, tree, opts)

	var out []byte
	var err error
	switch cc.app {
	case 0:
		n := 128
		if cc.big {
			n = 256
		}
		var res *gemm.Result
		res, err = gemm.RunNorthup(rt, gemm.Config{N: n, Seed: cc.seed, ShardDim: 64})
		if err == nil {
			out = f32bytes(res.C)
		}
	case 1:
		n := 128
		if cc.big {
			n = 192
		}
		var res *hotspot.Result
		// Two passes so the power chunks are genuinely re-read (the reuse
		// the cache is supposed to make invisible).
		res, err = hotspot.RunNorthup(rt, hotspot.Config{N: n, Seed: cc.seed,
			ChunkDim: 64, Iters: 2, Passes: 2})
		if err == nil {
			out = f32bytes(res.Temp)
		}
	default:
		n := 4096
		if cc.big {
			n = 8192
		}
		var res *spmv.Result
		// Two power iterations: iteration 2 re-reads every matrix shard.
		res, err = spmv.RunNorthup(rt, spmv.Config{N: n, AvgNNZ: 8,
			Kind: workload.SparseUniform, Seed: cc.seed, Iters: 2})
		if err == nil {
			out = f32bytes(res.Y)
		}
	}
	if err != nil {
		t.Fatalf("case %+v cached=%v: %v", cc, cached, err)
	}
	return out, rt.CacheStats()
}

func TestQuickCacheMatchesUncachedBitForBit(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow in -short mode")
	}
	seen := 0
	hitsSeen := int64(0)
	prop := func(app, seed, size, faults uint8) bool {
		cc := drawCase(app, seed, size, faults)
		plain, plainStats := runCase(t, cc, false)
		cachedOut, cs := runCase(t, cc, true)
		if plainStats.Any() {
			t.Errorf("case %+v: uncached run counted cache traffic: %+v", cc, plainStats)
			return false
		}
		if !bytes.Equal(plain, cachedOut) {
			t.Errorf("case %+v: cached result differs from uncached", cc)
			return false
		}
		// Equal seeds replay equal schedules: the counters, not just the
		// bytes, must reproduce.
		_, cs2 := runCase(t, cc, true)
		if cs != cs2 {
			t.Errorf("case %+v: cache counters did not replay: %+v vs %+v", cc, cs, cs2)
			return false
		}
		seen++
		hitsSeen += cs.Hits
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
	if seen == 0 || hitsSeen == 0 {
		t.Fatalf("property exercised %d cases with %d total hits; the cache never engaged", seen, hitsSeen)
	}
	t.Logf("verified %d cases, %d cache hits total", seen, hitsSeen)
}

func TestCachedRunBitCorrectUnderFaultsAllApps(t *testing.T) {
	// The directed version of the property for each app at a fixed hostile
	// rate, asserting the faults actually engaged (retries observed) and the
	// cache actually served hits — so a regression cannot hide behind a
	// quiet schedule.
	for app := 0; app < 3; app++ {
		cc := cacheCase{app: app, seed: 7, big: false, faultRate: 0.05}
		plain, _ := runCase(t, cc, false)
		cached, cs := runCase(t, cc, true)
		if !bytes.Equal(plain, cached) {
			t.Errorf("app %d: cached faulted run differs from uncached faulted run", app)
		}
		if cs.Hits == 0 {
			t.Errorf("app %d: cache never hit (stats %+v)", app, cs)
		}
	}
}
