// Distributed GEMM across simulated machines (paper §VII future work).
//
// A cluster of Northup machines — each a complete storage+DRAM+GPU tree —
// shares one virtual clock and an InfiniBand-class fabric. C's rows are
// partitioned: A strips scatter, B broadcasts, every machine runs the same
// out-of-core local computation, and the strips gather back. The printed
// phase times show the classic communication bound emerging as machines
// are added.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"repro/northup"
)

const n = 512

func main() {
	// Functional run on 2 machines: verify the distributed result.
	cl2 := build(2, false, 64, 1)
	res, err := northup.DistributedGEMM(cl2, northup.ClusterGEMMConfig{N: n, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	want := make([]float32, n*n)
	northup.GEMMReference(want,
		northup.DenseInput(n, n, 3), northup.DenseInput(n, n, 4), n, n, n)
	var maxErr float64
	for i := range want {
		d := float64(res.C[i] - want[i])
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("distributed C=A·B at N=%d on 2 machines: verified (max |err| = %.2g)\n\n", n, maxErr)

	// Phantom scaling sweep at a larger size.
	fmt.Println("strong scaling at N=4096 (virtual time):")
	fmt.Printf("%9s %12s %12s %12s\n", "machines", "total", "compute", "distribute")
	for _, k := range []int{1, 2, 4, 8} {
		cl := build(k, true, 8192, 512)
		r, err := northup.DistributedGEMM(cl, northup.ClusterGEMMConfig{N: 4096})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9d %12v %12v %12v\n", k, r.Elapsed, r.ComputeTime, r.DistributionTime)
	}
	fmt.Println("\ncompute scales with machines; the broadcast of B grows against it.")
}

func build(k int, phantom bool, storageMiB, dramMiB int64) *northup.Cluster {
	e := northup.NewEngine()
	opts := northup.DefaultOptions()
	opts.Phantom = phantom
	cl, err := northup.NewCluster(e, k, northup.DefaultFabric(), opts,
		func(e *northup.Engine, i int) *northup.Tree {
			return northup.APU(e, northup.APUConfig{Storage: northup.SSD,
				StorageMiB: storageMiB, DRAMMiB: dramMiB})
		})
	if err != nil {
		log.Fatal(err)
	}
	return cl
}
