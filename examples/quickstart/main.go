// Quickstart: the smallest complete Northup program.
//
// It builds a two-level machine (SSD root, DRAM staging with a GPU), then
// runs a recursive out-of-core job in the style of the paper's Listing 3:
// a dataset larger than the staging buffer is scaled element-wise on the
// GPU, chunk by chunk, with the unified alloc/move_data/release interface
// handling every level uniformly.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/northup"
)

func main() {
	// 1. Abstract the machine as a topological tree (paper §III-B):
	//    level 0 = the slowest storage, level 1 = the staging DRAM, with
	//    the GPU attached to the leaf.
	e := northup.NewEngine()
	b := northup.NewBuilder(e)
	root := b.Root(northup.SSDProfile(64*northup.MiB, 1400, 600))
	dram := b.Child(root, northup.DRAMProfile(1*northup.MiB))
	b.Attach(dram, northup.APUGPU(e))
	tree, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree)

	rt := northup.NewRuntime(e, tree, northup.DefaultOptions())

	// A 4 MiB float32 vector: four times the staging capacity.
	const elems = 1 << 20
	const total = elems * 4

	stats, err := rt.Run("scale-vector", func(c *northup.Ctx) error {
		// The input lives on storage (the tree root, where this task runs).
		src, err := c.Alloc(total)
		if err != nil {
			return err
		}
		dst, err := c.Alloc(total)
		if err != nil {
			return err
		}

		// Divide by capacity: the paper's blocking-size decision.
		child := c.Children()[0]
		pieces := northup.PiecesToFit(total, child.Mem.Free(), 1)
		chunk := int64(total / pieces)
		fmt.Printf("\n%d MiB input, %d KiB staging: %d chunks of %d KiB\n",
			total>>20, child.Mem.Capacity()>>10, pieces, chunk>>10)

		for i := 0; i < pieces; i++ {
			// setup_buffers: space at the next level down.
			buf, err := c.AllocAt(child, chunk)
			if err != nil {
				return err
			}
			// data_down: storage -> DRAM (timed I/O).
			if err := c.MoveDataDown(buf, src, 0, int64(i)*chunk, chunk); err != nil {
				return err
			}
			// northup_spawn: recurse one level; compute at the leaf.
			if err := c.Descend(child, func(lc *northup.Ctx) error {
				vals := buf.Bytes()
				kernel := northup.Kernel{
					Name:          "scale2x",
					FlopsPerGroup: float64(chunk) / 4,
					BytesPerGroup: float64(chunk) * 2,
					Run: func(g int) {
						for j := range vals {
							vals[j] *= 2
						}
					},
				}
				_, err := lc.LaunchKernel(kernel, 1)
				return err
			}); err != nil {
				return err
			}
			// data_up: DRAM -> storage.
			if err := c.MoveDataUp(dst, buf, int64(i)*chunk, 0, chunk); err != nil {
				return err
			}
			c.Release(buf)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsimulated execution: %v\n", stats.Elapsed)
	fmt.Println("breakdown:")
	fmt.Print(stats.Breakdown.Report())
}
