// Out-of-core sorting: the combine phase of divide-and-conquer.
//
// A key file four times larger than the staging buffer is sorted: chunks
// stream to the leaf, sort on the GPU (bitonic cost model), return as
// sorted runs, and k-way merges on the CPU combine the runs — multiple
// merge passes when the staging level cannot buffer every run at once.
//
//	go run ./examples/sort
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/northup"
)

func main() {
	e := northup.NewEngine()
	tree := northup.APU(e, northup.APUConfig{
		Storage: northup.SSD, StorageMiB: 64, DRAMMiB: 1, WithCPU: true,
	})
	rt := northup.NewRuntime(e, tree, northup.DefaultOptions())

	cfg := northup.SortConfig{N: 200_000, Seed: 11, ChunkKeys: 50_000, MergeBlockKeys: 8_192}
	res, err := northup.Sort(rt, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against a host sort of the same input.
	want := northup.SortKeys(cfg.N, cfg.Seed)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if res.Sorted[i] != want[i] {
			log.Fatalf("mismatch at %d", i)
		}
	}

	fmt.Printf("sorted %d keys out of core: %d runs, %d merge pass(es)\n",
		cfg.N, res.Runs, res.MergePasses)
	fmt.Printf("verified against host sort\n\nsimulated time: %v\n", res.Stats.Elapsed)
	fmt.Print(res.Stats.Breakdown.Report())
}
