// Out-of-core dense matrix multiply (paper §IV-A) on two topologies.
//
// The same application code runs unchanged on the 2-level APU tree and the
// 3-level discrete-GPU tree — the portability claim at the heart of the
// paper. Results are verified against a host reference, and the execution
// breakdowns show where time goes on each machine.
//
//	go run ./examples/outofcore-gemm
package main

import (
	"fmt"
	"log"

	"repro/northup"
)

const n = 512

func main() {
	cfg := northup.GEMMConfig{N: n, Seed: 7}

	// Host oracle for verification.
	a := northup.DenseInput(n, n, cfg.Seed)
	b := northup.DenseInput(n, n, cfg.Seed+1)
	want := make([]float32, n*n)
	northup.GEMMReference(want, a, b, n, n, n)

	// Machine 1: APU with a staging buffer 1/8th of the working set.
	e1 := northup.NewEngine()
	apu := northup.APU(e1, northup.APUConfig{
		Storage: northup.SSD, StorageMiB: 64, DRAMMiB: 1,
	})
	rt1 := northup.NewRuntime(e1, apu, northup.DefaultOptions())
	res1, err := northup.GEMMNorthup(rt1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("2-level APU tree", res1, want)

	// Machine 2: host + discrete GPU, an extra device-memory level.
	// Identical application code; only the topology changed.
	e2 := northup.NewEngine()
	discrete := northup.Discrete(e2, northup.DiscreteConfig{
		Storage: northup.SSD, StorageMiB: 64, DRAMMiB: 2, GPUMemMiB: 1,
	})
	rt2 := northup.NewRuntime(e2, discrete, northup.DefaultOptions())
	res2, err := northup.GEMMNorthup(rt2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("3-level discrete-GPU tree", res2, want)
}

func report(name string, res *northup.GEMMResult, want []float32) {
	var maxErr float64
	for i := range want {
		d := float64(res.C[i] - want[i])
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("== %s ==\n", name)
	fmt.Printf("shard: %dx%d, verified vs reference (max |err| = %.2g)\n",
		res.ShardDim, n, maxErr)
	fmt.Printf("simulated time: %v\n", res.Stats.Elapsed)
	fmt.Print(res.Stats.Breakdown.Report())
	fmt.Println()
}
