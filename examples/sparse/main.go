// Out-of-core SpMV on a skewed matrix (paper §IV-C).
//
// A power-law sparse matrix — some rows hold thousands of non-zeros, most a
// handful — streams through a small staging buffer. Row shards whose
// non-zeros exceed the staging capacity are split recursively, which is the
// adaptability the paper credits to the divide-and-conquer formulation.
//
//	go run ./examples/sparse
package main

import (
	"fmt"
	"log"

	"repro/northup"
)

func main() {
	cfg := northup.SpMVConfig{
		N:      30000,
		AvgNNZ: 24,
		Kind:   northup.SparsePowerLaw,
		Seed:   5,
		Chunks: 4, // the paper's initial row division
	}

	e := northup.NewEngine()
	tree := northup.APU(e, northup.APUConfig{
		Storage: northup.SSD, StorageMiB: 64, DRAMMiB: 1, WithCPU: true,
	})
	rt := northup.NewRuntime(e, tree, northup.DefaultOptions())

	res, err := northup.SpMVNorthup(rt, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the host oracle.
	m := northup.SparseInput(cfg.Kind, cfg.N, cfg.AvgNNZ, cfg.Seed)
	x := northup.VectorInput(cfg.N, cfg.Seed+1)
	want := northup.SpMVReference(m, x)
	var maxErr float64
	for i := range want {
		d := float64(want[i] - res.Y[i])
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}

	fmt.Printf("CSR-Adaptive SpMV: %d rows, %d non-zeros (power-law rows)\n",
		m.NRows, m.NNZ())
	fmt.Printf("initial chunks: %d; capacity forced %d recursive splits -> %d shards\n",
		cfg.Chunks, res.Splits, res.Shards)
	fmt.Printf("verified against reference (max |err| = %.2g)\n", maxErr)
	fmt.Printf("\nsimulated time: %v\n", res.Stats.Elapsed)
	fmt.Print(res.Stats.Breakdown.Report())
}
