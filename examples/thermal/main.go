// Thermal simulation with CPU+GPU load balancing (paper §IV-B, §V-E).
//
// HotSpot-2D runs out-of-core on the APU topology twice: once GPU-only and
// once with work spread across CPU threads and GPU workgroup queues with
// lock-free stealing (Figure 10). Both runs produce bit-identical physics;
// the stolen schedule finishes earlier.
//
//	go run ./examples/thermal
package main

import (
	"fmt"
	"log"

	"repro/northup"
)

func main() {
	const m, chunk = 1024, 1024

	run := func(mode northup.StealMode, queues int) *northup.StealResult {
		e := northup.NewEngine()
		tree := northup.APU(e, northup.APUConfig{
			Storage: northup.SSD, StorageMiB: 64, DRAMMiB: 24, WithCPU: true,
		})
		rt := northup.NewRuntime(e, tree, northup.DefaultOptions())
		res, err := northup.HotSpotSteal(rt, northup.StealConfig{
			M: m, ChunkDim: chunk, Seed: 11, Iters: 60,
			GPUQueues: queues, Mode: mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	gpuOnly := run(northup.GPUOnly, 16)
	stolen := run(northup.CPUGPU, 16)

	// Identical physics regardless of schedule.
	for i := range gpuOnly.Temp {
		if gpuOnly.Temp[i] != stolen.Temp[i] {
			log.Fatalf("schedules diverged at cell %d", i)
		}
	}
	// And both match the blocked sequential oracle.
	g := northup.HotSpotGridInput(m, 11)
	want, err := northup.HotSpotReferenceBlocked(g.Temp, g.Power, m, chunk, 60)
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	for i := range want {
		d := float64(want[i] - stolen.Temp[i])
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}

	fmt.Printf("HotSpot-2D %dx%d, %dx%d chunks, 60 Jacobi steps per pass\n", m, m, chunk, chunk)
	fmt.Printf("verified against blocked reference (max |err| = %.2g)\n\n", maxErr)
	fmt.Printf("GPU-only:       %v\n", gpuOnly.Stats.Elapsed)
	fmt.Printf("CPU+GPU steal:  %v  (%d tasks stolen, CPU ran %.0f%% of tasks)\n",
		stolen.Stats.Elapsed, stolen.Steals,
		100*float64(stolen.TasksByCPU)/float64(stolen.TasksByCPU+stolen.TasksByGPU))
	fmt.Printf("speedup:        %.2fx\n",
		float64(gpuOnly.Stats.Elapsed)/float64(stolen.Stats.Elapsed))
}
