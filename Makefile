# Build and test gates for the Northup reproduction.
#
#   make check      tier-1 gate: build + full test suite (the CI floor)
#   make strict     tier-2 gate: vet + race-instrumented tests
#   make bench-json staging-cache figure benchmarks -> BENCH_cache.json
#   make all        both gates plus the benchmark artifact

GO ?= go

.PHONY: all build test vet race check strict bench bench-json clean

all: check strict bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Tier-1: what every change must keep green.
check: build test

# Tier-2: static analysis plus the race detector over the whole suite.
strict: vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Machine-readable staging-cache sweep (name, virtual time, speedup, hit
# rate per capacity point), plus the matching -benchtime=1x ablation run.
bench-json:
	$(GO) run ./cmd/northup-bench -fig cache -format json > BENCH_cache.json
	$(GO) test -bench=BenchmarkAblationShardCache -benchtime=1x -run=^$$ .

clean:
	$(GO) clean ./...
	rm -f BENCH_cache.json
