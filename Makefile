# Build and test gates for the Northup reproduction.
#
#   make check        tier-1 gate: build + full test suite (the CI floor)
#   make strict       tier-2 gate: lint + race tests + demos + perf gate
#   make lint         gofmt -l (fail on unformatted files) + go vet
#   make ops-demo     live admin-plane smoke: burn-rate scenario over HTTP
#   make tail-demo    per-job journey smoke: tail analyzer + exemplars +
#                     journey-lane trace validation on the burn-rate workload
#   make bench-json   benchmark artifacts -> BENCH_cache.json,
#                     BENCH_stream.json, BENCH_serve.json,
#                     BENCH_affinity.json, BENCH_perf.json
#   make bench-stream streamed-transfer overlap sweep -> BENCH_stream.json
#   make bench-serve  multi-tenant saturation sweep -> BENCH_serve.json
#   make bench-affinity  data-affinity scheduler A/B -> BENCH_affinity.json
#   make bench-sim    DES-engine dispatch microbenchmarks (ns/event + allocs)
#   make bench-check  perf-regression gate: re-run the perf suite (race
#                     detector on) and diff against the committed BENCH_perf.json
#   make all          both gates plus the benchmark artifacts

GO ?= go

.PHONY: all build test vet race lint check strict bench bench-json bench-stream bench-serve bench-affinity bench-sim bench-check trace-demo serve-demo ops-demo tail-demo clean

all: check strict bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static hygiene: every file gofmt-clean, then go vet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Tier-1: what every change must keep green.
check: build test

# Tier-2: static analysis, the race detector, the end-to-end demos, and
# the perf-regression gate.
strict: lint race trace-demo serve-demo ops-demo tail-demo bench-check

# End-to-end tracing smoke: capture a small traced run, then require the
# exported Chrome trace to validate through the offline analyser.
trace-demo:
	$(GO) run ./cmd/northup-run -app gemm -n 256 -chunk 128 \
		-trace-out trace-demo.json -metrics > /dev/null
	$(GO) run ./cmd/northup-trace -validate trace-demo.json
	$(GO) run ./cmd/northup-trace trace-demo.json > /dev/null
	rm -f trace-demo.json

# Multi-tenant serving smoke: run both committed scenarios end-to-end
# through the CLI (phantom mode) and require identical reports on a rerun
# of the first — the DSL's same-seed byte-identical promise.
serve-demo:
	$(GO) run ./cmd/northup-serve -scenario specs/scenarios/two-tenant.yaml \
		-format json > serve-demo-a.json
	$(GO) run ./cmd/northup-serve -scenario specs/scenarios/two-tenant.yaml \
		-format json > serve-demo-b.json
	cmp serve-demo-a.json serve-demo-b.json
	$(GO) run ./cmd/northup-serve -scenario specs/scenarios/saturation.json > /dev/null
	rm -f serve-demo-a.json serve-demo-b.json

# Live admin-plane smoke: run the burn-rate scenario with the HTTP plane
# up (flat out, lingering after completion), poll /healthz until the run
# reports done, then require the fast-burn alert in the /alerts timeline,
# the bursty tenant in /tenants, and the alert gauges in /metrics.
ops-demo:
	$(GO) build -o ops-demo-serve ./cmd/northup-serve
	sh -c ' \
	  ./ops-demo-serve -scenario specs/scenarios/burn-rate.yaml \
	    -http 127.0.0.1:9974 -linger 60s > /dev/null & \
	  pid=$$!; trap "kill $$pid 2>/dev/null" EXIT; \
	  for i in $$(seq 1 120); do \
	    curl -sf http://127.0.0.1:9974/healthz 2>/dev/null \
	      | grep -q "\"status\": \"done\"" && break; \
	    sleep 1; \
	  done; \
	  curl -sf http://127.0.0.1:9974/healthz | grep -q "\"status\": \"done\"" && \
	  curl -sf http://127.0.0.1:9974/alerts > ops-demo-alerts.json && \
	  grep -q bursty-fast-burn ops-demo-alerts.json && \
	  grep -q "\"state\": \"firing\"" ops-demo-alerts.json && \
	  curl -sf http://127.0.0.1:9974/tenants | grep -q "\"name\": \"bursty\"" && \
	  curl -sf http://127.0.0.1:9974/metrics | grep -q northup_alert_firing'
	rm -f ops-demo-serve ops-demo-alerts.json

# Per-job journey smoke: run the burn-rate workload with journeys on and
# require (1) the tail analyzer to name the staging hop as the bursty
# tenant's dominant p99 phase, (2) the firing page alert to carry exemplar
# trace IDs, and (3) the exported trace — including the per-job journey
# lanes — to validate through the offline analyser, with a waterfall
# renderable for an exemplar job.
tail-demo:
	$(GO) build -o tail-demo-serve ./cmd/northup-serve
	$(GO) build -o tail-demo-trace ./cmd/northup-trace
	./tail-demo-serve -scenario specs/scenarios/burn-rate.yaml -journeys \
		-tail -trace-out tail-demo.trace.json -alerts tail-demo-alerts.json \
		> tail-demo-tail.txt
	grep -A2 "tenant bursty:" tail-demo-tail.txt | grep -q "stage:node0/io"
	grep -q '"severity": "page"' tail-demo-alerts.json
	grep -q '"trace_id"' tail-demo-alerts.json
	./tail-demo-trace -validate tail-demo.trace.json
	sh -c 'id=$$(grep -o "\"trace_id\": \"[0-9a-f]*\"" tail-demo-alerts.json \
	  | head -1 | cut -d\" -f4); \
	  ./tail-demo-trace -job $$id tail-demo.trace.json | grep -q "phase totals:"'
	rm -f tail-demo-serve tail-demo-trace tail-demo.trace.json \
		tail-demo-alerts.json tail-demo-tail.txt

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Machine-readable artifacts: the staging-cache sweep (name, virtual time,
# speedup, hit rate per capacity point) plus the matching -benchtime=1x
# ablation run, the streamed-transfer overlap sweep, and the paper-scale
# perf baseline the regression gate diffs against. All are committed;
# regenerate after intentional model changes.
bench-json: bench-stream bench-serve bench-affinity
	$(GO) run ./cmd/northup-bench -fig cache -format json > BENCH_cache.json
	$(GO) test -bench=BenchmarkAblationShardCache -benchtime=1x -run=^$$ .
	$(GO) run ./cmd/northup-bench -baseline BENCH_perf.json

# Streamed-transfer overlap sweep: speedup vs sub-chunk count for the
# paper-shaped GEMM shard pipelined storage -> DRAM -> GPU memory.
bench-stream:
	$(GO) run ./cmd/northup-bench -fig stream -format json > BENCH_stream.json

# Multi-tenant saturation sweep: offered load vs admitted/rejected/completed
# and worst-tenant latency percentiles across rate multipliers.
bench-serve:
	$(GO) run ./cmd/northup-bench -fig serve -format json > BENCH_serve.json

# Data-affinity scheduler A/B: GEMM and SpMV task graphs under locality-blind
# stealing vs residency-aware placement, with the per-app moved-bytes
# reduction the ablation claims.
bench-affinity:
	$(GO) run ./cmd/northup-bench -fig affinity -format json > BENCH_affinity.json

# DES-engine microbenchmarks: per-event cost of both dispatch paths (proc
# resumption vs inline callback vs same-instant fan-out) with allocation
# counts; the committed floors in BENCH_perf.json come from the same
# workload shapes via `northup-bench -baseline`.
bench-sim:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/sim/

# Perf-regression gate: re-run the paper-scale perf suite under the race
# detector and diff every metric against the committed baseline with
# per-metric tolerances; a ≥5% drift (either direction) fails the build.
bench-check:
	$(GO) run -race ./cmd/northup-bench -check BENCH_perf.json

clean:
	$(GO) clean ./...
	rm -f BENCH_cache.json BENCH_stream.json BENCH_serve.json BENCH_affinity.json trace-demo.json serve-demo-a.json serve-demo-b.json ops-demo-serve ops-demo-alerts.json tail-demo-serve tail-demo-trace tail-demo.trace.json tail-demo-alerts.json tail-demo-tail.txt
