# Build and test gates for the Northup reproduction.
#
#   make check   tier-1 gate: build + full test suite (the CI floor)
#   make strict  tier-2 gate: vet + race-instrumented tests
#   make all     both gates

GO ?= go

.PHONY: all build test vet race check strict bench clean

all: check strict

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Tier-1: what every change must keep green.
check: build test

# Tier-2: static analysis plus the race detector over the whole suite.
strict: vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

clean:
	$(GO) clean ./...
