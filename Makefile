# Build and test gates for the Northup reproduction.
#
#   make check      tier-1 gate: build + full test suite (the CI floor)
#   make strict     tier-2 gate: vet + race-instrumented tests + trace demo
#   make bench-json staging-cache figure benchmarks -> BENCH_cache.json
#   make all        both gates plus the benchmark artifact

GO ?= go

.PHONY: all build test vet race check strict bench bench-json trace-demo clean

all: check strict bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Tier-1: what every change must keep green.
check: build test

# Tier-2: static analysis, the race detector, and the trace round-trip.
strict: vet race trace-demo

# End-to-end tracing smoke: capture a small traced run, then require the
# exported Chrome trace to validate through the offline analyser.
trace-demo:
	$(GO) run ./cmd/northup-run -app gemm -n 256 -chunk 128 \
		-trace-out trace-demo.json -metrics > /dev/null
	$(GO) run ./cmd/northup-trace -validate trace-demo.json
	$(GO) run ./cmd/northup-trace trace-demo.json > /dev/null
	rm -f trace-demo.json

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Machine-readable staging-cache sweep (name, virtual time, speedup, hit
# rate per capacity point), plus the matching -benchtime=1x ablation run.
bench-json:
	$(GO) run ./cmd/northup-bench -fig cache -format json > BENCH_cache.json
	$(GO) test -bench=BenchmarkAblationShardCache -benchtime=1x -run=^$$ .

clean:
	$(GO) clean ./...
	rm -f BENCH_cache.json trace-demo.json
