// Command northup-bench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	northup-bench [-fig 6|7|8|8disk|9|11|overhead|cache|affinity|stream|serve|perf|all] [-scale 1|2|4|8]
//	              [-format table|csv|json] [-affinity on|off]
//	northup-bench -baseline BENCH_perf.json [-scale 1|2|4|8]
//	northup-bench -check BENCH_perf.json
//
// Any mode takes -cpuprofile and -memprofile to write pprof output for the
// whole run (flushed on every exit path, including a failing -check).
//
// Each figure driver runs the real runtime and applications in phantom
// (timing-only) mode at the paper's input sizes and prints the rows/series
// the corresponding figure plots. -scale shrinks every dimension coherently
// for quick looks.
//
// -affinity off skips the data-affinity scheduler ablation and omits the
// affinity entry from the perf suite, so a baseline comparable to
// pre-scheduler documents can still be produced; the default (on) includes
// both.
//
// -baseline runs the perf suite (GEMM, HotSpot, SpMV out-of-core on the SSD
// tree with the metrics registry attached) and writes the profile to the
// given file; commit it as the repo's perf baseline. -check re-runs the
// suite at the baseline's recorded scale, diffs every metric against the
// baseline with per-metric tolerances, prints the report, and exits 1 on
// regression — the CI perf gate (`make bench-check`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 8disk, 9, 11, overhead, cache, affinity, stream, serve, perf, all")
	scale := flag.Int("scale", 1, "divide the paper's input dimensions (1, 2, 4, 8)")
	format := flag.String("format", "table", "output format: table, csv, or json")
	baseline := flag.String("baseline", "", "run the perf suite and write the baseline profile to this file")
	check := flag.String("check", "", "re-run the perf suite and diff against this baseline; exit 1 on regression")
	affinity := flag.String("affinity", "on", "include the data-affinity scheduler figure and perf-suite entry: on or off")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile at exit to this file")
	flag.Parse()

	stopProfiles := startProfiles(*cpuprofile, *memprofile)
	// Every exit path funnels through here so the profiles are always
	// flushed — a failing gate run is exactly the one worth profiling.
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	if *affinity != "on" && *affinity != "off" {
		fmt.Fprintf(os.Stderr, "northup-bench: -affinity %q: want on or off\n", *affinity)
		exit(2)
	}
	o := figures.Options{Scale: *scale, NoAffinity: *affinity == "off"}

	if *baseline != "" {
		writeBaseline(*baseline, o, exit)
		exit(0)
	}
	if *check != "" {
		checkBaseline(*check, exit)
		exit(0)
	}
	run := func(name string, fn func() (figures.Renderer, error)) {
		start := time.Now()
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "northup-bench: %s: %v\n", name, err)
			exit(1)
		}
		switch *format {
		case "csv":
			fmt.Print(res.CSV())
			return
		case "json":
			j, ok := res.(interface{ JSON() string })
			if !ok {
				fmt.Fprintf(os.Stderr, "northup-bench: %s has no JSON rendering\n", name)
				exit(2)
			}
			fmt.Print(j.JSON())
			return
		}
		fmt.Println(res)
		fmt.Printf("(%s regenerated in %.1fs wall time)\n\n", name, time.Since(start).Seconds())
	}

	known := map[string]bool{"all": true, "6": true, "7": true, "8": true,
		"8disk": true, "9": true, "11": true, "overhead": true, "cache": true,
		"affinity": true, "stream": true, "serve": true, "perf": true}
	if !known[*fig] {
		fmt.Fprintf(os.Stderr, "northup-bench: unknown figure %q (want 6, 7, 8, 8disk, 9, 11, overhead, cache, affinity, stream, serve, perf, all)\n", *fig)
		exit(2)
	}
	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("6") {
		run("figure 6", func() (figures.Renderer, error) { return figures.Fig6(o) })
	}
	if want("7") {
		run("figure 7", func() (figures.Renderer, error) { return figures.Fig7(o) })
	}
	if want("8") {
		run("figure 8", func() (figures.Renderer, error) { return figures.Fig8(o) })
	}
	if want("8disk") {
		run("figure 8 (disk-root variant)", func() (figures.Renderer, error) { return figures.Fig8Disk(o) })
	}
	if want("9") {
		run("figure 9", func() (figures.Renderer, error) { return figures.Fig9(o) })
	}
	if want("11") {
		run("figure 11", func() (figures.Renderer, error) { return figures.Fig11(o) })
	}
	if want("overhead") {
		run("runtime overhead (§V-B)", func() (figures.Renderer, error) { return figures.Overhead(o) })
	}
	if want("cache") {
		run("staging-cache ablation", func() (figures.Renderer, error) { return figures.CacheAblation(o) })
	}
	if want("affinity") && !o.NoAffinity {
		run("data-affinity scheduler ablation", func() (figures.Renderer, error) { return figures.AffinityAblation(o) })
	} else if *fig == "affinity" {
		fmt.Fprintln(os.Stderr, "northup-bench: -fig affinity conflicts with -affinity off")
		exit(2)
	}
	if want("stream") {
		run("streamed-transfer overlap", func() (figures.Renderer, error) { return figures.StreamOverlap(o) })
	}
	if want("serve") {
		run("multi-tenant serve saturation", func() (figures.Renderer, error) { return figures.ServeSaturation(o) })
	}
	if want("perf") {
		run("perf profile", func() (figures.Renderer, error) { return figures.PerfSuite(o) })
	}
	stopProfiles()
}

// startProfiles arms the optional pprof outputs and returns the flush hook.
func startProfiles(cpu, mem string) func() {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "northup-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "northup-bench: %v\n", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	flushed := false
	return func() {
		if flushed {
			return
		}
		flushed = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "northup-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "northup-bench: %v\n", err)
			}
		}
	}
}

// writeBaseline runs the perf suite and writes the baseline document.
func writeBaseline(path string, o figures.Options, exit func(int)) {
	prof, err := figures.PerfSuite(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "northup-bench: %v\n", err)
		exit(1)
	}
	if err := os.WriteFile(path, []byte(prof.JSON()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "northup-bench: %v\n", err)
		exit(1)
	}
	fmt.Printf("perf baseline (scale %d, %d apps) -> %s\n",
		prof.Scale, len(prof.Apps), path)
}

// checkBaseline re-runs the suite at the baseline's scale and diffs.
func checkBaseline(path string, exit func(int)) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "northup-bench: %v\n", err)
		exit(1)
	}
	base, err := figures.ParsePerfProfile(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "northup-bench: %v\n", err)
		exit(1)
	}
	start := time.Now()
	got, err := figures.PerfSuite(figures.Options{Scale: base.Scale})
	if err != nil {
		fmt.Fprintf(os.Stderr, "northup-bench: %v\n", err)
		exit(1)
	}
	c := base.Check(got)
	fmt.Print(c.Report())
	fmt.Printf("(suite re-ran at scale %d in %.1fs wall time)\n",
		base.Scale, time.Since(start).Seconds())
	if !c.OK() {
		exit(1)
	}
}
