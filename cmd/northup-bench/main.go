// Command northup-bench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	northup-bench [-fig 6|7|8|8disk|9|11|overhead|cache|all] [-scale 1|2|4|8]
//	              [-format table|csv|json]
//
// Each figure driver runs the real runtime and applications in phantom
// (timing-only) mode at the paper's input sizes and prints the rows/series
// the corresponding figure plots. -scale shrinks every dimension coherently
// for quick looks.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 8disk, 9, 11, overhead, cache, all")
	scale := flag.Int("scale", 1, "divide the paper's input dimensions (1, 2, 4, 8)")
	format := flag.String("format", "table", "output format: table, csv, or json (cache only)")
	flag.Parse()

	o := figures.Options{Scale: *scale}
	run := func(name string, fn func() (figures.Renderer, error)) {
		start := time.Now()
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "northup-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Print(res.CSV())
			return
		case "json":
			j, ok := res.(interface{ JSON() string })
			if !ok {
				fmt.Fprintf(os.Stderr, "northup-bench: %s has no JSON rendering\n", name)
				os.Exit(2)
			}
			fmt.Print(j.JSON())
			return
		}
		fmt.Println(res)
		fmt.Printf("(%s regenerated in %.1fs wall time)\n\n", name, time.Since(start).Seconds())
	}

	known := map[string]bool{"all": true, "6": true, "7": true, "8": true,
		"8disk": true, "9": true, "11": true, "overhead": true, "cache": true}
	if !known[*fig] {
		fmt.Fprintf(os.Stderr, "northup-bench: unknown figure %q (want 6, 7, 8, 8disk, 9, 11, overhead, cache, all)\n", *fig)
		os.Exit(2)
	}
	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("6") {
		run("figure 6", func() (figures.Renderer, error) { return figures.Fig6(o) })
	}
	if want("7") {
		run("figure 7", func() (figures.Renderer, error) { return figures.Fig7(o) })
	}
	if want("8") {
		run("figure 8", func() (figures.Renderer, error) { return figures.Fig8(o) })
	}
	if want("8disk") {
		run("figure 8 (disk-root variant)", func() (figures.Renderer, error) { return figures.Fig8Disk(o) })
	}
	if want("9") {
		run("figure 9", func() (figures.Renderer, error) { return figures.Fig9(o) })
	}
	if want("11") {
		run("figure 11", func() (figures.Renderer, error) { return figures.Fig11(o) })
	}
	if want("overhead") {
		run("runtime overhead (§V-B)", func() (figures.Renderer, error) { return figures.Overhead(o) })
	}
	if want("cache") {
		run("staging-cache ablation", func() (figures.Renderer, error) { return figures.CacheAblation(o) })
	}
}
