// Command northup-demo runs a small, fully functional out-of-core dense
// matrix multiply and narrates what the runtime does: a guided tour of the
// programming model for new users.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/northup"
)

func main() {
	n := flag.Int("n", 512, "matrix dimension (multiple of 64)")
	dramKiB := flag.Int64("dram-kib", 2048, "staging-buffer capacity in KiB")
	flag.Parse()

	fmt.Printf("Northup demo: C = A·B with %dx%d float32 matrices (%.1f MiB each)\n",
		*n, *n, float64(*n**n*4)/(1<<20))

	// 1. Describe the machine as a topological tree.
	e := northup.NewEngine()
	tree := northup.APU(e, northup.APUConfig{
		Storage:    northup.SSD,
		StorageMiB: 256,
		DRAMMiB:    (*dramKiB + 1023) / 1024,
	})
	fmt.Println("\ntopology:")
	fmt.Print(tree.String())

	// 2. Run the recursive out-of-core program.
	rt := northup.NewRuntime(e, tree, northup.DefaultOptions())
	res, err := northup.GEMMNorthup(rt, northup.GEMMConfig{N: *n, Seed: 42})
	if err != nil {
		fmt.Fprintln(os.Stderr, "northup-demo:", err)
		os.Exit(1)
	}

	// 3. Verify against the host oracle.
	a := northup.DenseInput(*n, *n, 42)
	b := northup.DenseInput(*n, *n, 43)
	want := make([]float32, *n**n)
	northup.GEMMReference(want, a, b, *n, *n, *n)
	var maxErr float64
	for i := range want {
		d := float64(res.C[i] - want[i])
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}

	fmt.Printf("\nchunking: the %d MiB staging buffer forced %dx%d shards (%d chunk rows/cols)\n",
		*dramKiB/1024, res.ShardDim, *n, *n/res.ShardDim)
	fmt.Printf("result verified against the host reference (max |err| = %.2g)\n", maxErr)
	fmt.Printf("\nsimulated execution: %v\n", res.Stats.Elapsed)
	fmt.Println("breakdown:")
	fmt.Print(res.Stats.Breakdown.Report())
	fmt.Println("\nper-device activity:")
	fmt.Print(rt.DeviceReport())
}
