// Command northup-serve runs a multi-tenant traffic scenario against the
// shared topology tree and reports per-tenant service quality.
//
// Usage:
//
//	northup-serve -scenario FILE [-format table|json] [-functional]
//	              [-metrics FILE] [-records FILE] [-alerts FILE]
//	              [-windows FILE] [-stats]
//	              [-journeys] [-tail] [-tail-q Q]
//	              [-journeys-out FILE] [-trace-out FILE]
//	              [-http ADDR] [-pace N] [-linger D]
//
// The scenario file (YAML or JSON, see specs/scenarios/) declares the
// topology, the tenants, their workload mixes, Poisson arrival rates,
// memory quotas and latency SLOs. The engine admits jobs under per-tenant
// quota and backlog limits, schedules them with weighted fair queueing
// across the configured workers, and reports virtual-time p50/p99 latency,
// throughput and rejection counts per tenant.
//
// Runs are phantom (timing-only) by default; -functional executes real
// kernels and fingerprints each job's output, at the cost of allocating
// the data. Either way the simulation is deterministic: the same scenario
// and seed reproduce byte-identical reports, records and metrics.
//
// -metrics writes the merged metrics registry (runtime series plus every
// tenant's northup_serve_* series) in Prometheus text format; -records
// writes the per-job completion log as JSON. "-" selects stdout for both.
//
// Scenarios with an ops: block or alerts: rules additionally run the live
// operations plane: rolling windows of per-tenant health refresh at every
// step and multiwindow burn-rate rules produce a deterministic alert
// timeline (-alerts writes it as JSON, -windows the windowed series).
// With -http the run serves a live admin plane — /metrics, /healthz,
// /tenants and /alerts — while it executes; -pace maps virtual to wall
// time (e.g. -pace 60 advances one virtual minute per wall second, 0 runs
// flat out) and -linger keeps the endpoints up after completion so
// dashboards and scripts can read the final state.
//
// -stats adds wall-clock engine throughput (events/sec) to the report;
// without it the report stays byte-identical across runs.
//
// Per-job journeys (scenario journeys: block, or forced with -journeys)
// give every sampled admitted job a deterministic trace ID and record its
// life as causally linked phase spans — admit-wait, queue-wait, staging
// hops, kernel time, merge, blocked gaps — whose durations sum bit-for-bit
// to the recorded latency. -tail prints the tail-latency analyzer (phase
// decomposition of the -tail-q quantile per tenant plus the pivot job's
// waterfall), -journeys-out writes every journey as JSON, and -trace-out
// writes a Chrome/Perfetto trace of the run with one "job:<trace-id>" lane
// per journey (northup-trace -job ID renders a waterfall from that file).
// Journeys observe the schedule without perturbing it: reports and records
// are byte-identical with the layer on or off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	scenario := flag.String("scenario", "", "scenario file to run (YAML or JSON, required)")
	format := flag.String("format", "table", "report format: table or json")
	functional := flag.Bool("functional", false, "execute real kernels and hash job outputs (default: phantom timing-only)")
	metrics := flag.String("metrics", "", "write the merged metrics registry (Prometheus text) to this file, - for stdout")
	records := flag.String("records", "", "write the per-job completion log (JSON) to this file, - for stdout")
	alerts := flag.String("alerts", "", "write the alert timeline (JSON) to this file, - for stdout")
	windows := flag.String("windows", "", "write the windowed series (JSON) to this file, - for stdout")
	stats := flag.Bool("stats", false, "add wall-clock engine stats (events/sec) to the report")
	journeys := flag.Bool("journeys", false, "force per-job journeys on (sample 1.0) even if the scenario leaves them off")
	tail := flag.Bool("tail", false, "print the tail-latency analyzer (requires journeys)")
	tailQ := flag.Float64("tail-q", 0.99, "quantile the tail analyzer decomposes")
	journeysOut := flag.String("journeys-out", "", "write every recorded journey (JSON) to this file, - for stdout")
	traceOut := flag.String("trace-out", "", "write a Chrome trace of the run (with per-job journey lanes) to this file, - for stdout")
	httpAddr := flag.String("http", "", "serve the live admin plane (/metrics /healthz /tenants /alerts) on this address during the run")
	pace := flag.Float64("pace", 0, "virtual seconds advanced per wall-clock second with -http (0 = flat out)")
	linger := flag.Duration("linger", 0, "keep the admin plane serving this long after the run completes")
	flag.Parse()

	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "northup-serve: -scenario FILE is required (see specs/scenarios/)")
		flag.Usage()
		os.Exit(2)
	}
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "northup-serve: unknown format %q (want table or json)\n", *format)
		os.Exit(2)
	}

	data, err := os.ReadFile(*scenario)
	if err != nil {
		fatal(err)
	}
	scn, err := serve.ParseScenario(data)
	if err != nil {
		fatal(err)
	}
	if *journeys && !scn.Journeys.Enabled {
		scn.Journeys = serve.JourneySpec{Enabled: true}
	}
	if (*tail || *journeysOut != "") && !scn.Journeys.Enabled {
		fmt.Fprintln(os.Stderr, "northup-serve: -tail/-journeys-out need journeys (scenario journeys: block or -journeys)")
		os.Exit(2)
	}
	eng, err := serve.New(scn, serve.RunOptions{
		Phantom:   !*functional,
		WallStats: *stats,
		Trace:     *traceOut != "",
	})
	if err != nil {
		fatal(err)
	}
	var rep *serve.Report
	if *httpAddr != "" {
		live := serve.NewLive(eng)
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		srv := &http.Server{Handler: live.Handler()}
		go srv.Serve(ln)
		fmt.Fprintf(os.Stderr, "northup-serve: admin plane on http://%s (pace %g)\n", ln.Addr(), *pace)
		rep, err = live.RunPaced(*pace, 0)
		if err != nil {
			fatal(err)
		}
		if *linger > 0 {
			time.Sleep(*linger)
		}
		srv.Close()
	} else {
		rep, err = eng.Run()
		if err != nil {
			fatal(err)
		}
	}

	switch *format {
	case "json":
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		fmt.Print(rep.String())
	}

	if *metrics != "" {
		err := emit(*metrics, func(w io.Writer) error {
			return eng.MergedRegistry().WritePrometheus(w)
		})
		if err != nil {
			fatal(err)
		}
	}
	if *records != "" {
		err := emit(*records, func(w io.Writer) error {
			e := json.NewEncoder(w)
			e.SetIndent("", "  ")
			return e.Encode(eng.Records())
		})
		if err != nil {
			fatal(err)
		}
	}
	if *alerts != "" {
		err := emit(*alerts, func(w io.Writer) error {
			return writeIndented(w, nonNil(eng.AlertEvents()))
		})
		if err != nil {
			fatal(err)
		}
	}
	if *windows != "" {
		err := emit(*windows, func(w io.Writer) error {
			return writeIndented(w, eng.WindowSeries())
		})
		if err != nil {
			fatal(err)
		}
	}
	if *tail {
		fmt.Print(eng.TailReport(*tailQ).String())
	}
	if *journeysOut != "" {
		err := emit(*journeysOut, func(w io.Writer) error {
			return writeIndented(w, eng.Journeys().Export())
		})
		if err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		err := emit(*traceOut, func(w io.Writer) error {
			return trace.WriteChromeTrace(w, eng.TraceEvents(), trace.ChromeExportOptions{
				NodeLabel:     eng.TraceNodeLabel,
				DroppedEvents: eng.TraceDropped(),
			})
		})
		if err != nil {
			fatal(err)
		}
	}
}

// writeIndented renders v as indented JSON.
func writeIndented(w io.Writer, v any) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(v)
}

// nonNil turns a nil slice into an empty one so exports render [] not null.
func nonNil[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}

// emit writes through fn to path, with "-" meaning stdout.
func emit(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "northup-serve: %v\n", err)
	os.Exit(1)
}
