// Command northup-serve runs a multi-tenant traffic scenario against the
// shared topology tree and reports per-tenant service quality.
//
// Usage:
//
//	northup-serve -scenario FILE [-format table|json] [-functional]
//	              [-metrics FILE] [-records FILE]
//
// The scenario file (YAML or JSON, see specs/scenarios/) declares the
// topology, the tenants, their workload mixes, Poisson arrival rates,
// memory quotas and latency SLOs. The engine admits jobs under per-tenant
// quota and backlog limits, schedules them with weighted fair queueing
// across the configured workers, and reports virtual-time p50/p99 latency,
// throughput and rejection counts per tenant.
//
// Runs are phantom (timing-only) by default; -functional executes real
// kernels and fingerprints each job's output, at the cost of allocating
// the data. Either way the simulation is deterministic: the same scenario
// and seed reproduce byte-identical reports, records and metrics.
//
// -metrics writes the merged metrics registry (runtime series plus every
// tenant's northup_serve_* series) in Prometheus text format; -records
// writes the per-job completion log as JSON. "-" selects stdout for both.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/serve"
)

func main() {
	scenario := flag.String("scenario", "", "scenario file to run (YAML or JSON, required)")
	format := flag.String("format", "table", "report format: table or json")
	functional := flag.Bool("functional", false, "execute real kernels and hash job outputs (default: phantom timing-only)")
	metrics := flag.String("metrics", "", "write the merged metrics registry (Prometheus text) to this file, - for stdout")
	records := flag.String("records", "", "write the per-job completion log (JSON) to this file, - for stdout")
	flag.Parse()

	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "northup-serve: -scenario FILE is required (see specs/scenarios/)")
		flag.Usage()
		os.Exit(2)
	}
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "northup-serve: unknown format %q (want table or json)\n", *format)
		os.Exit(2)
	}

	data, err := os.ReadFile(*scenario)
	if err != nil {
		fatal(err)
	}
	scn, err := serve.ParseScenario(data)
	if err != nil {
		fatal(err)
	}
	eng, err := serve.New(scn, serve.RunOptions{Phantom: !*functional})
	if err != nil {
		fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "json":
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		fmt.Print(rep.String())
	}

	if *metrics != "" {
		err := emit(*metrics, func(w io.Writer) error {
			return eng.MergedRegistry().WritePrometheus(w)
		})
		if err != nil {
			fatal(err)
		}
	}
	if *records != "" {
		err := emit(*records, func(w io.Writer) error {
			e := json.NewEncoder(w)
			e.SetIndent("", "  ")
			return e.Encode(eng.Records())
		})
		if err != nil {
			fatal(err)
		}
	}
}

// emit writes through fn to path, with "-" meaning stdout.
func emit(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "northup-serve: %v\n", err)
	os.Exit(1)
}
