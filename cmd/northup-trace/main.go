// Command northup-trace analyses a trace file captured with
// northup-run -trace-out: it validates the Chrome trace_event JSON, prints
// the per-node utilization table derived from the event stream, and walks
// the critical path attributing the makespan to spans and idle time.
//
// Usage:
//
//	northup-trace [-validate] [-top N] [-lanes] [-job TRACE_ID] trace.json
//
// -validate checks well-formedness and exits (0 on success), the mode the
// Makefile's trace-demo gate uses. -top sets how many critical-path
// contributors to list. -lanes prints the lane names and exits.
//
// -job renders the phase waterfall of one journey from a trace captured
// with northup-serve -trace-out (journeys enabled): the job's lane is
// "job:<trace-id>" and its phase spans sum exactly to the job's latency.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/journey"
	"repro/northup"
)

func main() {
	validate := flag.Bool("validate", false, "check the file is a well-formed Chrome trace and exit")
	top := flag.Int("top", 8, "number of critical-path contributors to list")
	lanes := flag.Bool("lanes", false, "list the trace's timeline lanes and exit")
	jobID := flag.String("job", "", "render the phase waterfall of this journey trace ID and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: northup-trace [-validate] [-top N] [-lanes] [-job TRACE_ID] trace.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if err := northup.ValidateChromeTrace(data); err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	if *validate {
		fmt.Printf("%s: valid Chrome trace\n", path)
		return
	}

	parsed, err := northup.ParseChromeTrace(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	if *lanes {
		for _, lane := range northup.TraceLaneNames(parsed.Events) {
			fmt.Println(lane)
		}
		return
	}
	if *jobID != "" {
		wf, err := journey.WaterfallFromEvents(parsed.Events, *jobID)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", path, err))
		}
		fmt.Print(wf)
		return
	}

	sum := northup.SummarizeTrace(parsed.Events, northup.TraceSummaryOptions{})
	fmt.Print(sum.Report())
	fmt.Printf("\n%s", northup.TraceCriticalPath(parsed.Events, northup.TraceSummaryOptions{}).Report(*top))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "northup-trace:", err)
	os.Exit(1)
}
