// Command northup-topo inspects Northup topologies: it prints the tree
// outline (the runtime's "output the topology" facility, §III-E) and,
// optionally, Graphviz dot for a Figure 2-style drawing.
//
// Usage:
//
//	northup-topo -preset apu|apu-hdd|discrete|inmemory [-dot]
//	northup-topo -spec topology.json [-dot]
//	northup-topo -preset apu -cache [-cache-mib M] [-cache-share F] [-prefetch]
//
// With -cache the outline is followed by each memory node's staging-cache
// capacity and policy, as a runtime with that configuration would run it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/northup"
)

func main() {
	preset := flag.String("preset", "", "built-in topology: apu, apu-hdd, discrete, inmemory")
	specPath := flag.String("spec", "", "JSON topology spec file")
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of the outline")
	cacheOn := flag.Bool("cache", false, "show each memory node's staging-cache capacity and policy")
	cacheMiB := flag.Int64("cache-mib", 0, "cache capacity per node in MiB (0 = -cache-share of the node)")
	cacheShare := flag.Float64("cache-share", 0, "cache capacity as a fraction of each node (0 = default 0.5)")
	prefetch := flag.Bool("prefetch", false, "include the lookahead prefetcher in the policy line")
	flag.Parse()

	e := northup.NewEngine()
	var tree *northup.Tree
	var err error
	switch {
	case *specPath != "":
		data, rerr := os.ReadFile(*specPath)
		if rerr != nil {
			fatal(rerr)
		}
		spec, perr := northup.ParseSpec(data)
		if perr != nil {
			fatal(perr)
		}
		tree, err = northup.BuildSpec(e, spec)
	case *preset == "apu":
		tree = northup.APU(e, northup.APUConfig{Storage: northup.SSD,
			StorageMiB: 24576, DRAMMiB: 2048, WithCPU: true})
	case *preset == "apu-hdd":
		tree = northup.APU(e, northup.APUConfig{Storage: northup.HDD,
			StorageMiB: 24576, DRAMMiB: 2048, WithCPU: true})
	case *preset == "discrete":
		tree = northup.Discrete(e, northup.DiscreteConfig{Storage: northup.SSD,
			StorageMiB: 24576, DRAMMiB: 2048, GPUMemMiB: 16384})
	case *preset == "inmemory":
		tree = northup.InMemory(e, 16384)
	default:
		fmt.Fprintln(os.Stderr, "northup-topo: pass -preset or -spec (see -h)")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(tree.DOT())
		return
	}
	fmt.Print(tree.String())
	fmt.Printf("levels: %d, nodes: %d, leaves: %d\n",
		tree.Levels(), tree.NumNodes(), len(tree.Leaves()))
	if *cacheOn {
		opts := northup.DefaultOptions()
		opts.Cache = northup.CacheOptions{
			Enabled:       true,
			CapacityBytes: *cacheMiB << 20,
			CapacityShare: *cacheShare,
			Prefetch:      *prefetch,
		}
		rt := northup.NewRuntime(e, tree, opts)
		fmt.Print(rt.CacheReport())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "northup-topo:", err)
	os.Exit(1)
}
