// Command northup-run executes one of the paper's applications on a chosen
// topology and reports timing and the execution breakdown.
//
// Usage:
//
//	northup-run -app gemm|hotspot|spmv [-preset apu|apu-hdd|discrete|nvm|inmemory]
//	            [-spec file.json] [-n N] [-chunk D] [-iters K] [-phantom]
//	            [-streamed] [-subchunks S] [-affinity on|off]
//	            [-faults seed=N,rate=P,...] [-retries K]
//	            [-cache] [-cache-mib M] [-cache-share F] [-prefetch]
//	            [-trace-out trace.json] [-trace-events N] [-metrics]
//	            [-metrics-out metrics.json] [-metrics-prom metrics.prom]
//	            [-sample-tick-ms T] [-stats]
//
// With -trace-out the run records every span, instant and counter on the
// virtual timeline and writes a Chrome trace_event file loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing, with one process per tree node and
// one thread per lane. -metrics prints the derived per-node utilization
// table and the critical path attributing the makespan; either flag enables
// recording. Identical runs produce byte-identical trace files.
//
// With -metrics-out or -metrics-prom the runtime additionally carries the
// continuous metrics registry — per-category busy-time counters and span
// histograms, moved bytes, cache/resilience/fault counters, queue and
// bandwidth gauges — and writes it after the run as JSON or Prometheus text.
// -sample-tick-ms enables the virtual-time sampler, adding deterministic
// gauge time series to the JSON export. Identical runs produce byte-identical
// metric files.
//
// With -cache the runtime interposes a reuse-aware staging cache on the
// MoveDataDownCached path: repeated reads of the same source extent are
// served from resident buffers (LRU-evicted, pinnable), the breakdown gains
// a cache line, and the report ends with per-node pool occupancy.
//
// With -faults the run injects deterministic transfer/allocation faults and
// outages (see northup.ParseFaults for the full syntax); the runtime absorbs
// them with retries and failover, and the report gains resilience counters.
//
// With -affinity on the gemm and spmv runs route through the extent-declared
// task-graph scheduler with residency-aware placement: shards become tasks
// that declare the byte ranges they read and write, and each ready task goes
// to the worker whose estimated compute-plus-move cost is lowest, with
// cache-resident input bytes scoring zero. The report gains a scheduler line
// (placements, affinity picks, bytes served from residency). The default
// (off) keeps the legacy recursive path untouched.
//
// With -streamed the gemm and hotspot staging moves route through the
// streaming transfer engine: each multi-hop move is split into sub-chunks
// that pipeline through the tree's intermediate nodes on bounded
// double-buffered rings, overlapping every hop. -subchunks fixes the split
// (0 lets the adaptive sizer choose per move), and the report gains a
// streaming summary line.
//
// Functional mode (the default) computes and verifies real results, so keep
// -n modest; -phantom charges identical virtual time with no payloads and
// handles paper-scale inputs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/northup"
)

func main() {
	app := flag.String("app", "gemm", "application: gemm, hotspot, spmv")
	preset := flag.String("preset", "apu", "topology: apu, apu-hdd, discrete, nvm, inmemory")
	specPath := flag.String("spec", "", "JSON topology spec file (overrides -preset)")
	n := flag.Int("n", 1024, "problem dimension (matrix/grid dim, or sparse rows)")
	chunk := flag.Int("chunk", 0, "chunk/shard dimension (0 = derive from capacity)")
	iters := flag.Int("iters", 8, "stencil iterations per pass (hotspot)")
	steal := flag.Bool("steal", false,
		"hotspot: queue-based CPU+GPU work stealing at the leaf (enables GPU-outage failover)")
	avgNNZ := flag.Int("nnz", 16, "average non-zeros per row (spmv)")
	phantom := flag.Bool("phantom", false, "timing-only mode (no payloads; paper-scale capable)")
	streamed := flag.Bool("streamed", false, "route gemm/hotspot staging moves through the streaming transfer engine")
	affinity := flag.String("affinity", "off",
		"gemm/spmv task-graph scheduling: off (legacy recursive path) or on (extent-declared tasks, residency-aware placement)")
	subchunks := flag.Int("subchunks", 0, "streamed sub-chunks per move (0 = adaptive sizer)")
	storageMiB := flag.Int64("storage-mib", 1024, "preset storage capacity")
	dramMiB := flag.Int64("dram-mib", 16, "preset staging capacity")
	faults := flag.String("faults", "",
		"fault injection: seed=N,rate=P[,delay-rate=P][,delay-us=D][,alloc-rate=P][,offline=NODE[/gpu|/cpu]:FROM_MS:UNTIL_MS]")
	retries := flag.Int("retries", 0, "max retries per operation (0 = default policy)")
	cacheOn := flag.Bool("cache", false, "enable the reuse-aware staging cache on memory nodes")
	cacheMiB := flag.Int64("cache-mib", 0, "cache capacity per node in MiB (0 = -cache-share of the node)")
	cacheShare := flag.Float64("cache-share", 0, "cache capacity as a fraction of each node (0 = default 0.5)")
	prefetch := flag.Bool("prefetch", false, "enable lookahead prefetch into the staging cache")
	traceOut := flag.String("trace-out", "", "write a Chrome/Perfetto trace_event JSON file")
	traceEvents := flag.Int("trace-events", 0, "trace ring-buffer capacity in events (0 = default)")
	metrics := flag.Bool("metrics", false, "print per-node utilization metrics and the critical path")
	metricsOut := flag.String("metrics-out", "", "write the continuous metrics registry as JSON")
	metricsProm := flag.String("metrics-prom", "", "write the continuous metrics registry as Prometheus text")
	sampleTickMS := flag.Int64("sample-tick-ms", 0, "sample gauges every T virtual milliseconds into the JSON export (0 = off)")
	engStats := flag.Bool("stats", false, "print simulation-engine dispatch stats (events, inline callbacks, procs, events/sec)")
	flag.Parse()

	if *affinity != "on" && *affinity != "off" {
		fatal(fmt.Errorf("-affinity %q: want on or off", *affinity))
	}
	affinityOn := *affinity == "on"
	if affinityOn && *app == "hotspot" {
		fatal(fmt.Errorf("-affinity on supports gemm and spmv (hotspot has the -steal and profiled paths)"))
	}

	e := northup.NewEngine()
	tree, err := buildTree(e, *preset, *specPath, *storageMiB, *dramMiB)
	if err != nil {
		fatal(err)
	}
	opts := northup.DefaultOptions()
	opts.Phantom = *phantom
	if *faults != "" {
		plan, err := northup.ParseFaults(*faults)
		if err != nil {
			fatal(err)
		}
		opts.Faults = plan.Inject(e)
	}
	if *retries > 0 {
		p := northup.DefaultRetryPolicy()
		p.MaxRetries = *retries
		opts.Retry = p
	}
	if *cacheOn {
		opts.Cache = northup.CacheOptions{
			Enabled:       true,
			CapacityBytes: *cacheMiB << 20,
			CapacityShare: *cacheShare,
			Prefetch:      *prefetch,
		}
	}
	var rec *northup.TraceRecorder
	if *traceOut != "" || *metrics {
		rec = northup.NewTraceRecorder(northup.TraceOptions{MaxEvents: *traceEvents})
		opts.Trace = rec
	}
	var reg *northup.MetricsRegistry
	var sampler *northup.MetricsSampler
	if *metricsOut != "" || *metricsProm != "" {
		reg = northup.NewMetricsRegistry()
		opts.Metrics = reg
		if *sampleTickMS > 0 {
			sampler = northup.NewMetricsSampler(reg,
				northup.SamplerOptions{Tick: northup.Time(*sampleTickMS) * northup.Millisecond})
			opts.Sampler = sampler
		}
	}
	rt := northup.NewRuntime(e, tree, opts)

	fmt.Printf("topology:\n%s\n", tree)

	var stats northup.RunStats
	switch *app {
	case "gemm":
		var res *northup.GEMMResult
		if affinityOn {
			var ts *northup.TaskStats
			res, ts, err = northup.GEMMTasks(rt, northup.GEMMConfig{N: *n, Seed: 1, ShardDim: *chunk},
				northup.TaskOptions{Affinity: true})
			if err != nil {
				fatal(err)
			}
			stats = res.Stats
			fmt.Printf("gemm: N=%d shard=%d (task graph)\n", *n, res.ShardDim)
			printTaskStats(ts)
			break
		}
		if *preset == "inmemory" && *specPath == "" {
			res, err = northup.GEMMInMemory(rt, northup.GEMMConfig{N: *n, Seed: 1})
		} else {
			res, err = northup.GEMMNorthup(rt, northup.GEMMConfig{N: *n, Seed: 1, ShardDim: *chunk,
				Streamed: *streamed, StreamOpts: northup.StreamOptions{SubChunks: *subchunks}})
		}
		if err != nil {
			fatal(err)
		}
		stats = res.Stats
		fmt.Printf("gemm: N=%d shard=%d\n", *n, res.ShardDim)
	case "hotspot":
		if *steal {
			chunkDim := *chunk
			if chunkDim <= 0 {
				chunkDim = *n
			}
			scfg := northup.StealConfig{M: *n, ChunkDim: chunkDim, Seed: 1,
				Iters: *iters, Mode: northup.CPUGPU}
			res, err := northup.HotSpotSteal(rt, scfg)
			if err != nil {
				fatal(err)
			}
			stats = res.Stats
			fmt.Printf("hotspot: M=%d chunk=%d iters=%d pops=%d steals=%d gpu-tasks=%d cpu-tasks=%d failovers=%d\n",
				*n, chunkDim, *iters, res.Pops, res.Steals, res.TasksByGPU, res.TasksByCPU, res.Failovers)
			break
		}
		cfg := northup.HotSpotConfig{N: *n, Seed: 1, ChunkDim: *chunk, Iters: *iters,
			Streamed: *streamed, StreamOpts: northup.StreamOptions{SubChunks: *subchunks}}
		var res *northup.HotSpotResult
		if *preset == "inmemory" && *specPath == "" {
			res, err = northup.HotSpotInMemory(rt, cfg)
		} else {
			res, err = northup.HotSpotNorthup(rt, cfg)
		}
		if err != nil {
			fatal(err)
		}
		stats = res.Stats
		fmt.Printf("hotspot: N=%d chunk=%d iters=%d\n", *n, res.ChunkDim, *iters)
	case "spmv":
		cfg := northup.SpMVConfig{N: *n, AvgNNZ: *avgNNZ, Kind: northup.SparseUniform, Seed: 1}
		var res *northup.SpMVResult
		if affinityOn {
			var ts *northup.TaskStats
			res, ts, err = northup.SpMVTasks(rt, cfg, northup.TaskOptions{Affinity: true})
			if err != nil {
				fatal(err)
			}
			stats = res.Stats
			fmt.Printf("spmv: rows=%d nnz/row~%d (task graph)\n", *n, *avgNNZ)
			printTaskStats(ts)
			break
		}
		if *preset == "inmemory" && *specPath == "" {
			res, err = northup.SpMVInMemory(rt, cfg)
		} else {
			res, err = northup.SpMVNorthup(rt, cfg)
		}
		if err != nil {
			fatal(err)
		}
		stats = res.Stats
		fmt.Printf("spmv: rows=%d nnz/row~%d shards=%d splits=%d\n",
			*n, *avgNNZ, res.Shards, res.Splits)
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}

	fmt.Printf("\nsimulated execution: %v\n", stats.Elapsed)
	fmt.Print(stats.Breakdown.Report())
	if *streamed {
		ss := rt.StreamStats()
		fmt.Printf("streaming: %d stream(s), %d sub-chunks, %d hop moves, %d bytes, peak in-flight %d\n",
			ss.Streams, ss.SubChunks, ss.HopMoves, ss.Bytes, ss.MaxInFlight)
	}
	if *cacheOn {
		fmt.Print(rt.CacheReport())
	}
	if *faults != "" {
		fmt.Print(rt.ResilienceReport())
	}
	if rec != nil {
		events := rec.Events()
		if n := rec.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "northup-run: trace ring overflowed, oldest %d events dropped (raise -trace-events)\n", n)
		}
		if *traceOut != "" {
			if err := writeTrace(*traceOut, events, tree, rec.Dropped()); err != nil {
				fatal(err)
			}
			fmt.Printf("\ntrace: %d events -> %s\n", len(events), *traceOut)
		}
		if *metrics {
			sum := northup.SummarizeTrace(events, northup.TraceSummaryOptions{
				NominalBW: northup.NominalBandwidth(tree)})
			fmt.Printf("\n%s", sum.Report())
			fmt.Printf("\n%s", northup.TraceCriticalPath(events, northup.TraceSummaryOptions{}).Report(8))
		}
	}
	if reg != nil {
		rt.SyncMetrics()
		if *metricsOut != "" {
			if err := writeFileWith(*metricsOut, func(f *os.File) error {
				return northup.WriteMetricsJSON(f, reg, sampler)
			}); err != nil {
				fatal(err)
			}
			fmt.Printf("metrics: %d metric(s) -> %s\n", reg.Len(), *metricsOut)
		}
		if *metricsProm != "" {
			if err := writeFileWith(*metricsProm, func(f *os.File) error {
				return northup.WriteMetricsPrometheus(f, reg)
			}); err != nil {
				fatal(err)
			}
			fmt.Printf("metrics: %d metric(s) -> %s\n", reg.Len(), *metricsProm)
		}
	}
	if *engStats {
		st := e.Stats()
		fmt.Printf("engine: %d events (%d inline callbacks), %d procs, %.0f events/sec\n",
			st.Events, st.Callbacks, st.Procs, st.EventsPerSec())
	}
}

// printTaskStats reports one task-graph run's scheduling decisions.
func printTaskStats(ts *northup.TaskStats) {
	fmt.Printf("scheduler: %d tasks, %d affinity picks, %d pops, %d steals, %d bytes served from residency\n",
		ts.Tasks, ts.AffinityPicks, ts.Pops, ts.Steals, ts.SavedBytes)
}

// writeFileWith creates path and streams render into it.
func writeFileWith(path string, render func(f *os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace exports the recorded events as Chrome trace_event JSON. The
// drop count travels in the file's metadata, so northup-trace -validate
// rejects an incomplete trace instead of analysing it silently.
func writeTrace(path string, events []northup.TraceEvent, tree *northup.Tree, dropped int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := northup.WriteChromeTrace(f, events,
		northup.TraceExportOptions{NodeLabel: northup.TraceNodeLabeler(tree),
			DroppedEvents: dropped}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildTree(e *northup.Engine, preset, specPath string, storageMiB, dramMiB int64) (*northup.Tree, error) {
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		spec, err := northup.ParseSpec(data)
		if err != nil {
			return nil, err
		}
		return northup.BuildSpec(e, spec)
	}
	switch preset {
	case "apu":
		return northup.APU(e, northup.APUConfig{Storage: northup.SSD,
			StorageMiB: storageMiB, DRAMMiB: dramMiB, WithCPU: true}), nil
	case "apu-hdd":
		return northup.APU(e, northup.APUConfig{Storage: northup.HDD,
			StorageMiB: storageMiB, DRAMMiB: dramMiB, WithCPU: true}), nil
	case "discrete":
		return northup.Discrete(e, northup.DiscreteConfig{Storage: northup.SSD,
			StorageMiB: storageMiB, DRAMMiB: dramMiB * 2, GPUMemMiB: dramMiB}), nil
	case "nvm":
		return northup.APUWithNVM(e, northup.NVMConfig{Storage: northup.HDD,
			StorageMiB: storageMiB, NVMMiB: dramMiB * 8, DRAMMiB: dramMiB, WithCPU: true}), nil
	case "inmemory":
		return northup.InMemory(e, storageMiB), nil
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "northup-run:", err)
	os.Exit(1)
}
