package repro

// The benchmark harness: one benchmark per evaluation artifact of the
// paper. Each runs the corresponding figure driver at full paper scale
// (override with NORTHUP_SCALE=2|4|8 for quick looks) and reports the
// figure's headline quantities as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. The numbers to compare against the
// paper are recorded in EXPERIMENTS.md.

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/figures"
	"repro/internal/trace"
)

// benchScale reads NORTHUP_SCALE (default 1 = paper scale).
func benchScale(b *testing.B) int {
	b.Helper()
	s := os.Getenv("NORTHUP_SCALE")
	if s == "" {
		return 1
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		b.Fatalf("NORTHUP_SCALE=%q: %v", s, err)
	}
	return n
}

// BenchmarkFig06NormalizedRuntime regenerates Figure 6: normalized runtime
// of the three applications in-memory vs SSD vs disk on the 2-level APU
// tree. Metrics: <app>-ssd and <app>-disk normalized runtimes.
func BenchmarkFig06NormalizedRuntime(b *testing.B) {
	o := figures.Options{Scale: benchScale(b)}
	var res *figures.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = figures.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, app := range figures.Apps {
		b.ReportMetric(res.Row(app, figures.SSD).Normalized, app.String()+"-ssd")
		b.ReportMetric(res.Row(app, figures.HDD).Normalized, app.String()+"-disk")
	}
	b.Logf("\n%s", res)
}

// BenchmarkFig07Breakdown regenerates Figure 7: the execution breakdown on
// the 2-level APU tree. Metrics: GPU-compute share per app on each storage.
func BenchmarkFig07Breakdown(b *testing.B) {
	o := figures.Options{Scale: benchScale(b)}
	var res *figures.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = figures.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, app := range figures.Apps {
		b.ReportMetric(res.Share(app, figures.HDD, trace.GPUCompute), app.String()+"-disk-gpu")
		b.ReportMetric(res.Share(app, figures.SSD, trace.GPUCompute), app.String()+"-ssd-gpu")
	}
	b.Logf("\n%s", res)
}

// BenchmarkFig08TransferShares regenerates Figure 8: the 3-level
// discrete-GPU breakdown. Metrics: the PCIe ("OpenCL transfers") share per
// app, the quantity the paper quotes as 7/12/33%.
func BenchmarkFig08TransferShares(b *testing.B) {
	o := figures.Options{Scale: benchScale(b)}
	var res *figures.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = figures.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, app := range figures.Apps {
		b.ReportMetric(res.TransferShare(app), app.String()+"-transfer")
	}
	b.Logf("\n%s", res)
}

// BenchmarkFig08DiskVariant runs the literal-caption variant of Figure 8
// with the disk-drive root (see EXPERIMENTS.md for why its transfer shares
// collapse).
func BenchmarkFig08DiskVariant(b *testing.B) {
	o := figures.Options{Scale: benchScale(b)}
	var res *figures.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = figures.Fig8Disk(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", res)
}

// BenchmarkFig09FasterStorage regenerates Figure 9: the §V-D projection
// sweep from the 1400/600 SSD to 3500/2100, with a native re-simulation
// cross-check. Metrics: I/O and native-total normalized values at the
// fastest target, and the in-memory Δ, per app.
func BenchmarkFig09FasterStorage(b *testing.B) {
	o := figures.Options{Scale: benchScale(b)}
	var res *figures.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = figures.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, app := range figures.Apps {
		s := res.SeriesFor(app)
		last := s.Points[len(s.Points)-1]
		b.ReportMetric(last.IONorm, app.String()+"-io@3500")
		b.ReportMetric(last.NativeNorm, app.String()+"-total@3500")
		b.ReportMetric(s.InMemDelta, app.String()+"-inmem-delta")
	}
	b.Logf("\n%s", res)
}

// BenchmarkFig11WorkStealing regenerates Figure 11: HotSpot-2D CPU+GPU
// work stealing versus GPU-only across (m, n) inputs and queue counts.
// Metrics: stealing speedup per configuration.
func BenchmarkFig11WorkStealing(b *testing.B) {
	o := figures.Options{Scale: benchScale(b)}
	var res *figures.Fig11Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = figures.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, c := range res.Cells {
		if c.Speedup > best {
			best = c.Speedup
		}
	}
	b.ReportMetric(best, "best-speedup")
	b.Logf("\n%s", res)
}

// BenchmarkRuntimeOverhead regenerates the §V-B claim that Northup's
// bookkeeping stays below 1% of execution. Metric: the worst overhead
// fraction across the applications.
func BenchmarkRuntimeOverhead(b *testing.B) {
	scale := benchScale(b)
	if scale == 1 {
		scale = 2 // identical conclusion, much cheaper run
	}
	o := figures.Options{Scale: scale}
	var res *figures.OverheadResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = figures.Overhead(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Max(), "max-overhead-fraction")
	b.Logf("\n%s", res)
}
