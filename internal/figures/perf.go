package figures

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps/gemm"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/taskgraph"
	"repro/internal/topo"
)

// The perf-regression gate: the three case-study applications run
// out-of-core on the SSD tree in phantom mode with the metrics registry
// attached, and the full metric profile — virtual latency, per-category
// busy time, span counts, moved bytes, cache and scheduler counters — is
// captured as a PerfProfile. `northup-bench -baseline` writes the profile
// to BENCH_perf.json; `northup-bench -check` re-runs the suite at the
// baseline's scale and diffs the two profiles with per-metric tolerances,
// exiting non-zero on regression. Because the simulation is deterministic,
// an unchanged runtime reproduces the baseline bit for bit; the tolerances
// exist to absorb intentional small reworks, not noise.

// perfSchema versions the baseline document.
const perfSchema = "northup-perf/v1"

// perfRelTol is the default relative tolerance: a metric moving more than
// 5% from the baseline (in either direction) fails the check, well under
// the ≥10% regressions the gate must catch.
const perfRelTol = 0.05

// Absolute floors per metric family, so tiny counts (a queue that saw 12
// steals) don't fail on ±1 jitters that a relative tolerance would flag.
const (
	perfFloorNS    = 1e6     // time metrics: 1ms of virtual time
	perfFloorBytes = 1 << 20 // byte metrics: 1 MiB
	perfFloorCount = 8       // everything else: 8 events
)

// AppPerf is one application's profile.
type AppPerf struct {
	// Name is the App's display name (dense-mm, hotspot-2d, csr-adaptive).
	Name string `json:"name"`
	// ElapsedNS is the run's virtual makespan in nanoseconds.
	ElapsedNS int64 `json:"elapsed_ns"`
	// Metrics is the flattened metrics registry at end of run (counter
	// totals, gauge values, histogram buckets — see obs.Registry.Flatten).
	Metrics map[string]float64 `json:"metrics"`
}

// PerfProfile is the machine-readable perf baseline (BENCH_perf.json).
type PerfProfile struct {
	Schema string `json:"schema"`
	// Scale is the figures scale the suite ran at; -check re-runs at the
	// same scale regardless of its own -scale flag.
	Scale int       `json:"scale"`
	Apps  []AppPerf `json:"apps"`
	// Tolerances overrides the default per-metric tolerance: keys are
	// metric names (exact, or a prefix — longest match wins), values are
	// relative tolerances (0.10 = ±10%). Committed alongside the baseline
	// so known-noisy metrics can be widened without code changes.
	Tolerances map[string]float64 `json:"tolerances,omitempty"`
	// Floors marks wall-clock metrics (dispatch rates, speedups) that are
	// checked one-sided instead of diffed against the baseline value: the
	// run fails only when the metric drops below the committed floor. Keys
	// follow the same exact-or-longest-prefix rule as Tolerances.
	Floors map[string]float64 `json:"floors,omitempty"`
}

// PerfSuite runs the three applications on the SSD tree with metrics
// attached and returns the profile.
func PerfSuite(o Options) (*PerfProfile, error) {
	o, err := o.norm()
	if err != nil {
		return nil, err
	}
	prof := &PerfProfile{Schema: perfSchema, Scale: o.Scale}
	for _, app := range Apps {
		reg := obs.NewRegistry()
		rt := o.newPerfRuntime(reg)
		var stats core.RunStats
		switch app {
		case GEMM:
			stats, err = runGEMM(rt, SSD, o)
		case HotSpot:
			stats, err = runHotSpot(rt, SSD, o)
		case SpMV:
			stats, err = runSpMV(rt, SSD, o)
		}
		if err != nil {
			return nil, fmt.Errorf("figures: perf suite: %v: %w", app, err)
		}
		rt.SyncMetrics()
		prof.Apps = append(prof.Apps, AppPerf{
			Name:      app.String(),
			ElapsedNS: int64(stats.Elapsed),
			Metrics:   reg.Flatten(),
		})
	}
	// Fourth entry: the adaptive streamed GEMM shard on the discrete tree
	// (the `stream` figure's workload), so a lost hop overlap — slower
	// makespan, fewer sub-chunks, shrunken in-flight peak — fails the gate.
	reg := obs.NewRegistry()
	payload := int64(o.denseN()/2) * streamShardCols * 4
	elapsed, _, _, err := o.runStreamedShard(payload, 0, reg)
	if err != nil {
		return nil, fmt.Errorf("figures: perf suite: stream-overlap: %w", err)
	}
	prof.Apps = append(prof.Apps, AppPerf{
		Name:      "stream-overlap",
		ElapsedNS: int64(elapsed),
		Metrics:   reg.Flatten(),
	})
	// Fifth entry: the multi-tenant serve engine at the sweep's 1x offered
	// load, so an admission, fair-queueing or quota regression — longer
	// makespan, shifted latency histograms, changed rejection counts — fails
	// the gate. The merged registry folds the runtime's transfer/compute
	// metrics together with every tenant's northup_serve_* series.
	srvEng, err := serve.New(serveBaseScenario(1), serve.RunOptions{Phantom: true})
	if err != nil {
		return nil, fmt.Errorf("figures: perf suite: serve-mix: %w", err)
	}
	srvRep, err := srvEng.Run()
	if err != nil {
		return nil, fmt.Errorf("figures: perf suite: serve-mix: %w", err)
	}
	prof.Apps = append(prof.Apps, AppPerf{
		Name:      "serve-mix",
		ElapsedNS: srvRep.ElapsedNS,
		Metrics:   srvEng.MergedRegistry().Flatten(),
	})
	// Sixth entry: the DES engine's own dispatch speed on the paper-scale
	// event mix, so a scheduling regression — a slower heap, a lost batch
	// path, callbacks falling back to goroutine handoffs — fails the gate
	// even when the virtual-time results it produces are still correct.
	simPerf, floors, err := simEnginePerf(o)
	if err != nil {
		return nil, fmt.Errorf("figures: perf suite: sim-engine: %w", err)
	}
	prof.Apps = append(prof.Apps, simPerf)
	// Seventh entry: the affinity ablation's GEMM task graph under
	// residency-aware placement, so a scheduler regression — a scorer that
	// stops seeing resident extents, placements drifting back to the
	// stealing order, moved bytes creeping up — fails the gate even while
	// the numerical result stays correct.
	if !o.NoAffinity {
		reg = obs.NewRegistry()
		rt := o.newAffinityRuntime(reg, o.affinityGemmCache())
		affRes, affStats, err := gemm.RunTasks(rt, o.affinityGemmConfig(), taskgraph.Options{Affinity: true})
		if err != nil {
			return nil, fmt.Errorf("figures: perf suite: affinity: %w", err)
		}
		rt.SyncMetrics()
		affMetrics := reg.Flatten()
		affMetrics["northup_sched_tasks_executed"] = float64(affStats.Tasks)
		affMetrics["northup_sched_affinity_picks"] = float64(affStats.AffinityPicks)
		prof.Apps = append(prof.Apps, AppPerf{
			Name:      "affinity",
			ElapsedNS: int64(affRes.Stats.Elapsed),
			Metrics:   affMetrics,
		})
	}
	// Per-hop bandwidth is a last-value gauge: the final sub-chunk's size
	// (and so its instantaneous rate) shifts with any resizing rework even
	// when the pipeline is healthy, so it gets a wider band than the
	// totals the gate is really guarding. Saved bytes is the affinity
	// scorer's own residency estimate — it shifts with any cache-sizing or
	// eviction rework while the moved-bytes totals it predicts stay tight,
	// so it too gets the wider band.
	prof.Tolerances = map[string]float64{
		"northup_stream_hop_bw":                 0.10,
		"northup_sched_moved_bytes_saved_total": 0.10,
	}
	prof.Floors = floors
	return prof, nil
}

// newPerfRuntime builds the gate's runtime: the SSD-rooted APU tree in
// phantom mode with the registry attached (the same topology Figure 7's
// SSD column measures).
func (o Options) newPerfRuntime(reg *obs.Registry) *core.Runtime {
	e := sim.NewEngine()
	opts := core.DefaultOptions()
	opts.Phantom = true
	opts.Metrics = reg
	tree := topo.APU(e, topo.APUConfig{
		Storage:    topo.SSD,
		StorageMiB: o.storageMiB(),
		DRAMMiB:    o.stageMiB(),
		WithCPU:    true,
	})
	return core.NewRuntime(e, tree, opts)
}

// JSON renders the profile as the committed baseline document.
func (p *PerfProfile) JSON() string {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("figures: marshaling perf profile: %v", err))
	}
	return string(data) + "\n"
}

// ParsePerfProfile reads a baseline document back.
func ParsePerfProfile(data []byte) (*PerfProfile, error) {
	var p PerfProfile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("figures: parsing perf baseline: %w", err)
	}
	if p.Schema != perfSchema {
		return nil, fmt.Errorf("figures: perf baseline schema %q, want %q", p.Schema, perfSchema)
	}
	if p.Scale == 0 {
		p.Scale = 1
	}
	return &p, nil
}

// PerfDelta is one metric's deviation from the baseline.
type PerfDelta struct {
	App    string
	Metric string
	// Base is the baseline value, or the committed floor for floor-gated
	// metrics.
	Base float64
	Got  float64
	// Rel is (got-base)/base, 0 when base is 0.
	Rel float64
	// Tol is the relative tolerance that applied (0 for floor checks).
	Tol float64
	// Floor marks a one-sided floor failure: got fell below Base.
	Floor bool
}

// slower reports whether the deviation is in the regression direction
// (time or work increased, or a rate fell below its floor).
func (d PerfDelta) slower() bool {
	if d.Floor {
		return true
	}
	return d.Got > d.Base
}

// String renders one deviation line.
func (d PerfDelta) String() string {
	if d.Floor {
		return fmt.Sprintf("%-12s %-48s floor %.4g -> got %.4g (%+.1f%%, BELOW FLOOR)",
			d.App, d.Metric, d.Base, d.Got, 100*d.Rel)
	}
	dir := "faster/less"
	if d.slower() {
		dir = "SLOWER/more"
	}
	return fmt.Sprintf("%-12s %-48s base %.4g -> got %.4g (%+.1f%%, tol ±%.0f%%, %s)",
		d.App, d.Metric, d.Base, d.Got, 100*d.Rel, 100*d.Tol, dir)
}

// PerfCheck is the outcome of diffing a run against the baseline.
type PerfCheck struct {
	// Failures are deviations outside tolerance, worst first.
	Failures []PerfDelta
	// Compared counts metric comparisons made.
	Compared int
	// Missing lists baseline metrics absent from the run (renamed or
	// removed instruments — a baseline refresh is needed).
	Missing []string
}

// OK reports whether the run is within tolerance of the baseline.
func (c *PerfCheck) OK() bool { return len(c.Failures) == 0 && len(c.Missing) == 0 }

// Report renders the check for humans.
func (c *PerfCheck) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "perf check: %d metric(s) compared, %d outside tolerance, %d missing\n",
		c.Compared, len(c.Failures), len(c.Missing))
	for _, d := range c.Failures {
		fmt.Fprintf(&sb, "  FAIL %s\n", d)
	}
	for _, name := range c.Missing {
		fmt.Fprintf(&sb, "  MISSING %s (refresh the baseline with -baseline)\n", name)
	}
	if c.OK() {
		sb.WriteString("  within tolerance of the committed baseline\n")
	}
	return sb.String()
}

// tolFor resolves the relative tolerance for a metric: exact name in the
// baseline's Tolerances, else the longest prefix entry, else the default.
func (p *PerfProfile) tolFor(name string) float64 {
	if t, ok := p.Tolerances[name]; ok {
		return t
	}
	best, bestLen := perfRelTol, -1
	for prefix, t := range p.Tolerances {
		if len(prefix) > bestLen && strings.HasPrefix(name, prefix) {
			best, bestLen = t, len(prefix)
		}
	}
	return best
}

// floorOverrideFor resolves a one-sided floor for a metric (exact name,
// else longest prefix), reporting whether one applies.
func (p *PerfProfile) floorOverrideFor(name string) (float64, bool) {
	if f, ok := p.Floors[name]; ok {
		return f, true
	}
	best, bestLen, found := 0.0, -1, false
	for prefix, f := range p.Floors {
		if len(prefix) > bestLen && strings.HasPrefix(name, prefix) {
			best, bestLen, found = f, len(prefix), true
		}
	}
	return best, found
}

// floorFor returns the absolute deviation floor for a metric name, keyed
// off the unit suffixes the registry uses.
func floorFor(name string) float64 {
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base = base[:i]
	}
	switch {
	case strings.Contains(base, "_ns") || strings.HasSuffix(base, "elapsed_ns"):
		return perfFloorNS
	case strings.Contains(base, "_bytes"):
		return perfFloorBytes
	default:
		return perfFloorCount
	}
}

// Check diffs got against the baseline p. Every metric present in the
// baseline is compared two-sided: |got-base| must stay within
// max(tol×|base|, floor). Deviations in both directions fail — an
// unexplained speedup is a model change the baseline should record, not a
// pass — with the slower direction sorted first.
func (p *PerfProfile) Check(got *PerfProfile) *PerfCheck {
	c := &PerfCheck{}
	gotApps := map[string]AppPerf{}
	for _, a := range got.Apps {
		gotApps[a.Name] = a
	}
	for _, base := range p.Apps {
		run, ok := gotApps[base.Name]
		if !ok {
			c.Missing = append(c.Missing, base.Name+" (entire app)")
			continue
		}
		// The makespan first: the latency half of the gate.
		c.compare(p, base.Name, "elapsed_ns", float64(base.ElapsedNS), float64(run.ElapsedNS))
		names := make([]string, 0, len(base.Metrics))
		for name := range base.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			gv, ok := run.Metrics[name]
			if !ok {
				c.Missing = append(c.Missing, base.Name+": "+name)
				continue
			}
			c.compare(p, base.Name, name, base.Metrics[name], gv)
		}
	}
	sort.SliceStable(c.Failures, func(i, j int) bool {
		si, sj := c.Failures[i].slower(), c.Failures[j].slower()
		if si != sj {
			return si
		}
		return abs(c.Failures[i].Rel) > abs(c.Failures[j].Rel)
	})
	return c
}

// compare applies the tolerance rule to one metric pair. Floor-gated
// metrics (wall-clock rates) are checked one-sided against the committed
// floor instead of diffed against the baseline value.
func (c *PerfCheck) compare(p *PerfProfile, app, name string, base, got float64) {
	c.Compared++
	if floor, ok := p.floorOverrideFor(name); ok {
		if got >= floor {
			return
		}
		rel := 0.0
		if floor != 0 {
			rel = (got - floor) / floor
		}
		c.Failures = append(c.Failures, PerfDelta{App: app, Metric: name,
			Base: floor, Got: got, Rel: rel, Floor: true})
		return
	}
	tol := p.tolFor(name)
	dev := abs(got - base)
	limit := tol * abs(base)
	if floor := floorFor(name); limit < floor {
		limit = floor
	}
	if dev <= limit {
		return
	}
	rel := 0.0
	if base != 0 {
		rel = (got - base) / base
	}
	c.Failures = append(c.Failures, PerfDelta{App: app, Metric: name,
		Base: base, Got: got, Rel: rel, Tol: tol})
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// String summarises the profile as a table (the Renderer contract).
func (p *PerfProfile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "perf profile (scale %d): %d app(s)\n", p.Scale, len(p.Apps))
	fmt.Fprintf(&sb, "%-14s %14s %10s\n", "app", "virtual", "metrics")
	for _, a := range p.Apps {
		fmt.Fprintf(&sb, "%-14s %14v %10d\n", a.Name, sim.Time(a.ElapsedNS), len(a.Metrics))
	}
	return sb.String()
}

// CSV renders one row per app (the Renderer contract).
func (p *PerfProfile) CSV() string {
	var sb strings.Builder
	sb.WriteString("app,elapsed_ns,metrics\n")
	for _, a := range p.Apps {
		fmt.Fprintf(&sb, "%s,%d,%d\n", a.Name, a.ElapsedNS, len(a.Metrics))
	}
	return sb.String()
}
