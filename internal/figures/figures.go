// Package figures regenerates the paper's evaluation artifacts: Figure 6
// (normalized runtime: in-memory vs SSD vs disk), Figure 7 (execution
// breakdown on the 2-level APU tree), Figure 8 (breakdown on the 3-level
// discrete-GPU tree), Figure 9 (faster-storage projection sweep), Figure 11
// (CPU+GPU work-stealing), and the §V-B runtime-overhead measurement.
//
// All drivers run the real runtime and applications in phantom
// (timing-only) mode at the paper's true input sizes — 16k/32k dense grids,
// 16M-row sparse matrices, a 2 GiB staging buffer — which a calibrated
// virtual clock makes feasible on a laptop. A Scale option shrinks every
// dimension coherently (inputs by scale^2 in bytes, capacities alongside)
// so the same shapes emerge in seconds for tests.
package figures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// App identifies one of the paper's three case-study applications.
type App int

const (
	// GEMM is dense matrix multiply (§IV-A).
	GEMM App = iota
	// HotSpot is the HotSpot-2D thermal stencil (§IV-B).
	HotSpot
	// SpMV is CSR-Adaptive sparse matrix-vector multiply (§IV-C).
	SpMV
)

// Apps lists the applications in the paper's plotting order.
var Apps = []App{GEMM, HotSpot, SpMV}

// String names the app as the paper's figures do.
func (a App) String() string {
	switch a {
	case GEMM:
		return "dense-mm"
	case HotSpot:
		return "hotspot-2d"
	case SpMV:
		return "csr-adaptive"
	default:
		return fmt.Sprintf("app(%d)", int(a))
	}
}

// Storage selects the backing configuration of a run.
type Storage int

const (
	// InMemory is the all-in-DRAM baseline (no Northup I/O).
	InMemory Storage = iota
	// SSD is the 2-level tree rooted at the 1400/600 MB/s PCIe SSD.
	SSD
	// HDD is the 2-level tree rooted at the SATA disk drive.
	HDD
)

// String names the storage configuration.
func (s Storage) String() string {
	switch s {
	case InMemory:
		return "in-memory"
	case SSD:
		return "ssd"
	default:
		return "disk"
	}
}

// Options tune a figure regeneration.
type Options struct {
	// Scale divides the paper's linear input dimensions (1 = full paper
	// scale). Byte sizes and capacities shrink by Scale^2, so chunking
	// decisions — and therefore figure shapes — are preserved. Valid
	// values: 1, 2, 4, 8.
	Scale int
	// SSDRead/SSDWrite override the SSD bandwidth in MB/s (Figure 9's
	// native-rerun validation); zero keeps the paper's 1400/600.
	SSDRead, SSDWrite float64
	// NoAffinity omits the data-affinity scheduler entry from the perf
	// suite (northup-bench -affinity off), so a baseline comparable to
	// pre-scheduler documents can still be produced.
	NoAffinity bool
}

func (o Options) norm() (Options, error) {
	if o.Scale == 0 {
		o.Scale = 1
	}
	switch o.Scale {
	case 1, 2, 4, 8:
	default:
		return o, fmt.Errorf("figures: scale %d not in {1,2,4,8}", o.Scale)
	}
	return o, nil
}

// Paper-scale workload constants (§V-A).
const (
	paperDenseN    = 16384      // 16k x 16k float inputs
	paperSpmvRows  = 16_777_216 // "16 million rows"
	paperSpmvNNZ   = 16
	paperStageMiB  = 2048  // "2 GB of main memory ... staging buffer"
	paperInMemMiB  = 16384 // "16 GB memory holding the entire working set"
	paperHotChunk  = 8192  // "8k x 8k blocking size is used in DRAM"
	paperGPUMemMiB = 16384 // W9100: 16 GiB device memory
)

// denseN returns the dense input dimension at this scale.
func (o Options) denseN() int { return paperDenseN / o.Scale }

// spmvRows returns the sparse row count at this scale.
func (o Options) spmvRows() int { return paperSpmvRows / (o.Scale * o.Scale) }

// stageMiB returns the staging-buffer capacity at this scale.
func (o Options) stageMiB() int64 { return int64(paperStageMiB / (o.Scale * o.Scale)) }

// inMemMiB returns the in-memory baseline capacity at this scale.
func (o Options) inMemMiB() int64 { return int64(paperInMemMiB / (o.Scale * o.Scale)) }

// storageMiB returns the root storage capacity at this scale (inputs plus
// outputs plus headroom).
func (o Options) storageMiB() int64 { return int64(24576 / (o.Scale * o.Scale)) }

// newRuntime builds a phantom-mode runtime on the requested topology.
func (o Options) newRuntime(store Storage, withCPU bool) *core.Runtime {
	e := sim.NewEngine()
	opts := core.DefaultOptions()
	opts.Phantom = true
	var tree *topo.Tree
	switch store {
	case InMemory:
		tree = topo.InMemory(e, o.inMemMiB())
	default:
		choice := topo.SSD
		if store == HDD {
			choice = topo.HDD
		}
		tree = topo.APU(e, topo.APUConfig{
			Storage:      choice,
			StorageMiB:   o.storageMiB(),
			DRAMMiB:      o.stageMiB(),
			SSDReadMBps:  o.SSDRead,
			SSDWriteMBps: o.SSDWrite,
			WithCPU:      withCPU,
		})
	}
	return core.NewRuntime(e, tree, opts)
}

// newDiscreteRuntime builds the 3-level discrete-GPU topology (Figure 8).
func (o Options) newDiscreteRuntime(store Storage) *core.Runtime {
	e := sim.NewEngine()
	opts := core.DefaultOptions()
	opts.Phantom = true
	choice := topo.SSD
	if store == HDD {
		choice = topo.HDD
	}
	tree := topo.Discrete(e, topo.DiscreteConfig{
		Storage:    choice,
		StorageMiB: o.storageMiB(),
		DRAMMiB:    o.stageMiB(),
		GPUMemMiB:  int64(paperGPUMemMiB / (o.Scale * o.Scale)),
	})
	return core.NewRuntime(e, tree, opts)
}

// Measurement is the common result of one application run.
type Measurement struct {
	App       App
	Storage   Storage
	Elapsed   sim.Time
	Breakdown trace.Breakdown
}

// runApp executes one application on one topology and returns the
// measurement. rt must have been built by this package (phantom mode).
func runApp(app App, store Storage, rt *core.Runtime, o Options) (Measurement, error) {
	var stats core.RunStats
	var err error
	switch app {
	case GEMM:
		stats, err = runGEMM(rt, store, o)
	case HotSpot:
		stats, err = runHotSpot(rt, store, o)
	case SpMV:
		stats, err = runSpMV(rt, store, o)
	}
	if err != nil {
		return Measurement{}, fmt.Errorf("figures: %v on %v: %w", app, store, err)
	}
	return Measurement{App: app, Storage: store, Elapsed: stats.Elapsed,
		Breakdown: stats.Breakdown}, nil
}
