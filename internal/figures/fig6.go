package figures

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Fig6Row is one bar of Figure 6: an application on a storage
// configuration, normalized to its in-memory baseline.
type Fig6Row struct {
	Measurement
	// Normalized is elapsed / in-memory elapsed (the figure's y-axis).
	Normalized float64
}

// Fig6Result carries all bars, in app-major order (in-memory, SSD, disk per
// app). The same runs carry the Figure 7 breakdowns.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 regenerates Figure 6 (and the measurements behind Figure 7): each
// application runs in-memory, on the SSD tree and on the disk tree.
func Fig6(o Options) (*Fig6Result, error) {
	o, err := o.norm()
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	for _, app := range Apps {
		var inMem Measurement
		for _, store := range []Storage{InMemory, SSD, HDD} {
			rt := o.newRuntime(store, true)
			m, err := runApp(app, store, rt, o)
			if err != nil {
				return nil, err
			}
			if store == InMemory {
				inMem = m
			}
			res.Rows = append(res.Rows, Fig6Row{
				Measurement: m,
				Normalized:  float64(m.Elapsed) / float64(inMem.Elapsed),
			})
		}
	}
	return res, nil
}

// Row returns the row for (app, storage).
func (r *Fig6Result) Row(app App, store Storage) Fig6Row {
	for _, row := range r.Rows {
		if row.App == app && row.Storage == store {
			return row
		}
	}
	panic(fmt.Sprintf("figures: no Fig6 row for %v/%v", app, store))
}

// String renders the figure as the table of normalized runtimes the paper
// plots.
func (r *Fig6Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 6: normalized runtime (in-memory = 1.0)\n")
	fmt.Fprintf(&sb, "%-14s %12s %12s %12s\n", "app", "in-memory", "ssd", "disk")
	for _, app := range Apps {
		fmt.Fprintf(&sb, "%-14s %12.2f %12.2f %12.2f\n", app,
			r.Row(app, InMemory).Normalized,
			r.Row(app, SSD).Normalized,
			r.Row(app, HDD).Normalized)
	}
	return sb.String()
}

// Fig7Result presents the same runs as Figure 7: per-category shares of
// execution on the 2-level APU tree, for disk and SSD.
type Fig7Result struct {
	Fig6 *Fig6Result
}

// Fig7 regenerates Figure 7 from fresh Figure 6 runs.
func Fig7(o Options) (*Fig7Result, error) {
	f6, err := Fig6(o)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Fig6: f6}, nil
}

// Share returns the fraction of the busy sum a category takes for (app,
// storage).
func (r *Fig7Result) Share(app App, store Storage, c trace.Category) float64 {
	row := r.Fig6.Row(app, store)
	return row.Breakdown.Fraction(c)
}

// String renders the stacked-bar data of Figure 7.
func (r *Fig7Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 7: execution breakdown, 2-level APU tree (% of busy time)\n")
	fmt.Fprintf(&sb, "%-14s %-6s", "app", "store")
	for _, c := range trace.Categories {
		fmt.Fprintf(&sb, " %9s", c)
	}
	sb.WriteByte('\n')
	for _, app := range Apps {
		for _, store := range []Storage{HDD, SSD} {
			fmt.Fprintf(&sb, "%-14s %-6s", app, store)
			row := r.Fig6.Row(app, store)
			for _, c := range trace.Categories {
				fmt.Fprintf(&sb, " %8.1f%%", 100*row.Breakdown.Fraction(c))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
