package figures

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/apps/gemm"
	"repro/internal/apps/spmv"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/taskgraph"
	"repro/internal/topo"
	"repro/internal/workload"
)

// The data-affinity scheduler ablation: GEMM and SpMV run as extent-declared
// task graphs twice on identical SSD trees — once under locality-blind work
// stealing, once under residency-aware affinity placement — and the figure
// reports bytes moved from storage, bytes the scorer found already resident,
// and the per-app moved-bytes reduction. The staging cache is sized to hold
// roughly half of each app's distinct shard set, the regime where placement
// order decides whether a re-read hits the cache or streams back in from
// storage.

const (
	// affinityDenseN is the GEMM input dimension at scale 1. The block grid
	// is fixed at affinityGrid x affinityGrid tasks, so the shard geometry
	// (and with it the ablation's shape) is scale-invariant.
	affinityDenseN = 2048
	affinityGrid   = 8
	// affinitySpmvRows is the sparse row count at scale 1; with the paper's
	// 16 nnz/row the matrix is re-read whole on every power iteration.
	affinitySpmvRows   = 65536
	affinitySpmvIters  = 3
	affinitySpmvChunks = 16
)

// affinityN returns the GEMM dimension at this scale.
func (o Options) affinityN() int { return affinityDenseN / o.Scale }

// affinityRows returns the SpMV row count at this scale.
func (o Options) affinityRows() int { return affinitySpmvRows / o.Scale }

// affinityGemmCache returns the GEMM sweep's cache capacity: the distinct
// A-row (or B-column) shard set is affinityGrid shards of n/affinityGrid * n
// floats each; the cache holds exactly one such set, half the combined
// working set.
func (o Options) affinityGemmCache() int64 {
	n := int64(o.affinityN())
	return n * n * 4
}

// affinitySpmvCache returns the SpMV sweep's cache capacity: half the
// matrix payload (col_id + data, 8 bytes per nonzero at 16 nnz/row).
func (o Options) affinitySpmvCache() int64 {
	return int64(o.affinityRows()) * paperSpmvNNZ * 8 / 2
}

// AffinityRow is one (application, policy) measurement.
type AffinityRow struct {
	// App is the application name (dense-mm, csr-adaptive).
	App string
	// Affinity is true for residency-aware placement, false for the
	// locality-blind stealing baseline.
	Affinity bool
	Elapsed  sim.Time
	// MovedBytes is the total northup_moved_bytes_total across nodes: every
	// byte a MoveData charged anywhere in the tree.
	MovedBytes float64
	// SavedBytes is the scheduler's own claim: bytes of task extents found
	// resident at placement time (always 0 for the stealing baseline).
	SavedBytes int64
	// Tasks, Picks count executed tasks and placement decisions (affinity
	// picks, or pops+steals for the baseline).
	Tasks int
	Picks int64
}

// AffinityResult carries the A/B sweep.
type AffinityResult struct {
	Rows []AffinityRow
}

// Reduction returns 1 - affinity/baseline moved bytes for the app, the
// figure's headline number (positive when affinity moves less data).
func (r *AffinityResult) Reduction(app string) float64 {
	var base, aff float64
	for _, row := range r.Rows {
		if row.App != app {
			continue
		}
		if row.Affinity {
			aff = row.MovedBytes
		} else {
			base = row.MovedBytes
		}
	}
	if base == 0 {
		return 0
	}
	return 1 - aff/base
}

// newAffinityRuntime builds one sweep runtime: the SSD APU tree in phantom
// mode with the staging cache at the given capacity and metrics attached.
func (o Options) newAffinityRuntime(reg *obs.Registry, cacheBytes int64) *core.Runtime {
	e := sim.NewEngine()
	opts := core.DefaultOptions()
	opts.Phantom = true
	opts.Metrics = reg
	opts.Cache = core.CacheOptions{Enabled: true, CapacityBytes: cacheBytes}
	tree := topo.APU(e, topo.APUConfig{
		Storage:    topo.SSD,
		StorageMiB: o.storageMiB(),
		DRAMMiB:    o.stageMiB(),
		WithCPU:    true,
	})
	return core.NewRuntime(e, tree, opts)
}

// sumMovedBytes totals the per-node northup_moved_bytes_total series.
func sumMovedBytes(reg *obs.Registry) float64 {
	total := 0.0
	for name, v := range reg.Flatten() {
		if strings.HasPrefix(name, "northup_moved_bytes_total") {
			total += v
		}
	}
	return total
}

// affinityGemmConfig is the GEMM task-graph workload of the sweep.
func (o Options) affinityGemmConfig() gemm.Config {
	n := o.affinityN()
	return gemm.Config{N: n, Seed: 1, ShardDim: n / affinityGrid}
}

// affinitySpmvConfig is the SpMV task-graph workload of the sweep.
func (o Options) affinitySpmvConfig() spmv.Config {
	return spmv.Config{
		N:      o.affinityRows(),
		AvgNNZ: paperSpmvNNZ,
		Kind:   workload.SparseUniform,
		Seed:   7,
		Iters:  affinitySpmvIters,
		Chunks: affinitySpmvChunks,
	}
}

// runAffinityGemm executes the GEMM workload under one policy.
func (o Options) runAffinityGemm(affinity bool) (AffinityRow, error) {
	reg := obs.NewRegistry()
	rt := o.newAffinityRuntime(reg, o.affinityGemmCache())
	res, st, err := gemm.RunTasks(rt, o.affinityGemmConfig(), taskgraph.Options{Affinity: affinity})
	if err != nil {
		return AffinityRow{}, fmt.Errorf("figures: affinity ablation: gemm: %w", err)
	}
	rt.SyncMetrics()
	picks := st.AffinityPicks
	if !affinity {
		picks = st.Pops + st.Steals
	}
	return AffinityRow{App: GEMM.String(), Affinity: affinity, Elapsed: res.Stats.Elapsed,
		MovedBytes: sumMovedBytes(reg), SavedBytes: st.SavedBytes,
		Tasks: st.Tasks, Picks: picks}, nil
}

// runAffinitySpmv executes the SpMV workload under one policy.
func (o Options) runAffinitySpmv(affinity bool) (AffinityRow, error) {
	reg := obs.NewRegistry()
	rt := o.newAffinityRuntime(reg, o.affinitySpmvCache())
	res, st, err := spmv.RunTasks(rt, o.affinitySpmvConfig(), taskgraph.Options{Affinity: affinity})
	if err != nil {
		return AffinityRow{}, fmt.Errorf("figures: affinity ablation: spmv: %w", err)
	}
	rt.SyncMetrics()
	picks := st.AffinityPicks
	if !affinity {
		picks = st.Pops + st.Steals
	}
	return AffinityRow{App: SpMV.String(), Affinity: affinity, Elapsed: res.Stats.Elapsed,
		MovedBytes: sumMovedBytes(reg), SavedBytes: st.SavedBytes,
		Tasks: st.Tasks, Picks: picks}, nil
}

// AffinityAblation runs the A/B sweep: both applications under both
// placement policies on identical trees.
func AffinityAblation(o Options) (*AffinityResult, error) {
	o, err := o.norm()
	if err != nil {
		return nil, err
	}
	res := &AffinityResult{}
	for _, affinity := range []bool{false, true} {
		row, err := o.runAffinityGemm(affinity)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	for _, affinity := range []bool{false, true} {
		row, err := o.runAffinitySpmv(affinity)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// policyName names a row's placement policy.
func policyName(affinity bool) string {
	if affinity {
		return "affinity"
	}
	return "stealing"
}

// String renders the sweep as a table.
func (r *AffinityResult) String() string {
	var sb strings.Builder
	sb.WriteString("Data-affinity scheduler ablation: task graphs, stealing vs residency-aware placement\n")
	fmt.Fprintf(&sb, "  %-14s %-9s %12s %12s %12s %7s %12s\n",
		"app", "policy", "virtual-s", "moved-MiB", "saved-MiB", "tasks", "reduction")
	for _, row := range r.Rows {
		red := ""
		if row.Affinity {
			red = fmt.Sprintf("%.1f%%", 100*r.Reduction(row.App))
		}
		fmt.Fprintf(&sb, "  %-14s %-9s %12.3f %12.2f %12.2f %7d %12s\n",
			row.App, policyName(row.Affinity), row.Elapsed.Seconds(),
			row.MovedBytes/(1<<20), float64(row.SavedBytes)/(1<<20), row.Tasks, red)
	}
	return sb.String()
}

// CSV renders one row per (app, policy) point.
func (r *AffinityResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("app,policy,virtual_s,moved_bytes,saved_bytes,tasks,picks,reduction\n")
	for _, row := range r.Rows {
		red := 0.0
		if row.Affinity {
			red = r.Reduction(row.App)
		}
		fmt.Fprintf(&sb, "%s,%s,%.6f,%.0f,%d,%d,%d,%.4f\n",
			row.App, policyName(row.Affinity), row.Elapsed.Seconds(),
			row.MovedBytes, row.SavedBytes, row.Tasks, row.Picks, red)
	}
	return sb.String()
}

// affinityJSONRow is the machine-readable form of one sweep point, written
// to BENCH_affinity.json by the Makefile's bench-affinity target.
type affinityJSONRow struct {
	Name       string  `json:"name"`
	App        string  `json:"app"`
	Policy     string  `json:"policy"`
	VirtualS   float64 `json:"virtual_s"`
	MovedBytes float64 `json:"moved_bytes"`
	SavedBytes int64   `json:"saved_bytes"`
	Tasks      int     `json:"tasks"`
	Picks      int64   `json:"picks"`
	// Reduction is the moved-bytes reduction over the stealing baseline
	// (affinity rows only; 0 on baseline rows).
	Reduction float64 `json:"reduction"`
}

// JSON renders the sweep as a JSON array (one object per point).
func (r *AffinityResult) JSON() string {
	rows := make([]affinityJSONRow, 0, len(r.Rows))
	for _, row := range r.Rows {
		red := 0.0
		if row.Affinity {
			red = r.Reduction(row.App)
		}
		rows = append(rows, affinityJSONRow{
			Name:       row.App + "-" + policyName(row.Affinity),
			App:        row.App,
			Policy:     policyName(row.Affinity),
			VirtualS:   row.Elapsed.Seconds(),
			MovedBytes: row.MovedBytes,
			SavedBytes: row.SavedBytes,
			Tasks:      row.Tasks,
			Picks:      row.Picks,
			Reduction:  red,
		})
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		panic(err) // plain structs cannot fail to marshal
	}
	return string(out) + "\n"
}

var _ Renderer = (*AffinityResult)(nil)
