package figures

import (
	"fmt"
	"strings"

	"repro/internal/apps/hotspot"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Fig11Input is one (m, n) input point of Figure 11: m is the square input
// dimension on the SSD, n the chunk dimension loaded into main memory.
type Fig11Input struct{ M, N int }

// paperFig11Inputs are the three input points the paper sweeps.
var paperFig11Inputs = []Fig11Input{
	{16384, 4096},
	{16384, 8192},
	{32768, 8192},
}

// Fig11QueueCounts are the GPU queue counts the paper experiments with.
var Fig11QueueCounts = []int{8, 16, 32}

// Fig11Cell is one bar: an input point and queue count, with CPU+GPU
// stealing performance normalized to GPU-only execution at the same
// configuration (the figure's y-axis; > 1 means stealing is faster).
type Fig11Cell struct {
	Input    Fig11Input
	Queues   int
	GPUOnly  sim.Time
	Stolen   sim.Time
	Speedup  float64 // GPUOnly / Stolen
	Steals   int64
	CPUShare float64 // fraction of tasks the CPU executed
}

// Fig11Result carries the full sweep.
type Fig11Result struct {
	Cells []Fig11Cell
}

// Fig11 regenerates the §V-E load-balancing study: HotSpot-2D on the APU
// (CPU+GPU at the leaf, SSD root), queue-based leaf scheduling, stealing
// versus GPU-only.
func Fig11(o Options) (*Fig11Result, error) {
	o, err := o.norm()
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	for _, in := range paperFig11Inputs {
		m := in.M / o.Scale
		n := in.N / o.Scale
		for _, q := range Fig11QueueCounts {
			gpuOnly, _, err := o.runSteal(m, n, q, hotspot.GPUOnly)
			if err != nil {
				return nil, err
			}
			stolen, sres, err := o.runSteal(m, n, q, hotspot.CPUGPU)
			if err != nil {
				return nil, err
			}
			total := sres.TasksByCPU + sres.TasksByGPU
			cell := Fig11Cell{
				Input: in, Queues: q,
				GPUOnly: gpuOnly, Stolen: stolen,
				Speedup: float64(gpuOnly) / float64(stolen),
				Steals:  sres.Steals,
			}
			if total > 0 {
				cell.CPUShare = float64(sres.TasksByCPU) / float64(total)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// runSteal executes one stealing configuration. The storage holds the m x m
// grid; the 2 GiB staging level receives n x n chunks.
func (o Options) runSteal(m, n, queues int, mode hotspot.StealMode) (sim.Time, *hotspot.StealResult, error) {
	e := sim.NewEngine()
	opts := core.DefaultOptions()
	opts.Phantom = true
	// The 32k input needs a larger store; capacities follow the input.
	storeMiB := int64(5 * (int64(m) * int64(m) * 4 / (1 << 20)))
	if storeMiB < 64 {
		storeMiB = 64
	}
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
		StorageMiB: storeMiB, DRAMMiB: o.stageMiB(), WithCPU: true})
	rt := core.NewRuntime(e, tree, opts)
	res, err := hotspot.RunSteal(rt, hotspot.StealConfig{
		M: m, ChunkDim: n, Iters: hotspotIters, GPUQueues: queues, Mode: mode,
	})
	if err != nil {
		return 0, nil, err
	}
	return res.Stats.Elapsed, res, nil
}

// Cell returns the cell for (input, queues).
func (r *Fig11Result) Cell(in Fig11Input, queues int) Fig11Cell {
	for _, c := range r.Cells {
		if c.Input == in && c.Queues == queues {
			return c
		}
	}
	panic(fmt.Sprintf("figures: no Fig11 cell for %v q=%d", in, queues))
}

// String renders the sweep.
func (r *Fig11Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 11: HotSpot-2D CPU+GPU work stealing vs GPU-only (speedup > 1 is better)\n")
	fmt.Fprintf(&sb, "%-14s %7s %10s %10s %9s %8s %9s\n",
		"input (m,n)", "queues", "gpu-only", "cpu+gpu", "speedup", "steals", "cpu-share")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "(%5d,%5d) %7d %10v %10v %8.2fx %8d %8.1f%%\n",
			c.Input.M, c.Input.N, c.Queues, c.GPUOnly, c.Stolen,
			c.Speedup, c.Steals, 100*c.CPUShare)
	}
	return sb.String()
}
