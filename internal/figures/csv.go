package figures

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// CSV renderings of every figure, for piping into plotting tools. Each
// returns a header line followed by one row per data point.

// CSV renders Figure 6 as app,storage,elapsed_s,normalized.
func (r *Fig6Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("app,storage,elapsed_s,normalized\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s,%s,%.6f,%.4f\n",
			row.App, row.Storage, row.Elapsed.Seconds(), row.Normalized)
	}
	return sb.String()
}

// CSV renders Figure 7 as app,storage,<category shares...>.
func (r *Fig7Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("app,storage")
	for _, c := range trace.Categories {
		fmt.Fprintf(&sb, ",%s", c)
	}
	sb.WriteByte('\n')
	for _, app := range Apps {
		for _, store := range []Storage{HDD, SSD} {
			fmt.Fprintf(&sb, "%s,%s", app, store)
			row := r.Fig6.Row(app, store)
			for _, c := range trace.Categories {
				fmt.Fprintf(&sb, ",%.4f", row.Breakdown.Fraction(c))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// CSV renders Figure 8 as app,<category shares...>.
func (r *Fig8Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("app")
	for _, c := range trace.Categories {
		fmt.Fprintf(&sb, ",%s", c)
	}
	sb.WriteByte('\n')
	for _, m := range r.Rows {
		fmt.Fprintf(&sb, "%s", m.App)
		for _, c := range trace.Categories {
			fmt.Fprintf(&sb, ",%.4f", m.Breakdown.Fraction(c))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders Figure 9 as app,ssd,io_norm,projected_norm,native_norm,
// inmem_delta.
func (r *Fig9Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("app,ssd,io_norm,projected_norm,native_norm,inmem_delta\n")
	for _, s := range r.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%s,%s,%.4f,%.4f,%.4f,%.4f\n",
				s.App, p.Target, p.IONorm, p.ProjectedNorm, p.NativeNorm, s.InMemDelta)
		}
	}
	return sb.String()
}

// CSV renders Figure 11 as m,n,queues,gpu_only_s,cpu_gpu_s,speedup,steals,
// cpu_share.
func (r *Fig11Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("m,n,queues,gpu_only_s,cpu_gpu_s,speedup,steals,cpu_share\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%d,%d,%d,%.6f,%.6f,%.4f,%d,%.4f\n",
			c.Input.M, c.Input.N, c.Queues,
			c.GPUOnly.Seconds(), c.Stolen.Seconds(), c.Speedup, c.Steals, c.CPUShare)
	}
	return sb.String()
}

// CSV renders the overhead measurement as app,runtime_fraction.
func (r *OverheadResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("app,runtime_fraction\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s,%.6f\n", row.App, row.Fraction)
	}
	return sb.String()
}

// Renderer is satisfied by every figure result: a human table (String) and
// a machine form (CSV).
type Renderer interface {
	fmt.Stringer
	CSV() string
}

var (
	_ Renderer = (*Fig6Result)(nil)
	_ Renderer = (*Fig7Result)(nil)
	_ Renderer = (*Fig8Result)(nil)
	_ Renderer = (*Fig9Result)(nil)
	_ Renderer = (*Fig11Result)(nil)
	_ Renderer = (*OverheadResult)(nil)
)
