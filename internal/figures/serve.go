package figures

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/sim"
)

// The serve figure: a saturation sweep over the multi-tenant traffic
// engine. A fixed two-tenant scenario is replayed at increasing arrival
// rates (0.25x .. 8x the base offered load) and each point records the
// admitted/rejected split, completed throughput and the worst tenant's
// latency percentiles. The knee — where completions stop tracking offered
// load and rejections plus tail latency take off — is the serving-capacity
// figure of merit for the shared topology tree.

// serveSchema versions the sweep document (BENCH_serve.json).
const serveSchema = "northup-serve-sweep/v1"

// serveRateMuls are the offered-load multipliers swept, log-spaced around
// the knee.
var serveRateMuls = []float64{0.25, 0.5, 1, 2, 4, 8}

// serveBaseScenario is the fixed workload under sweep: two tenants over
// the SSD APU tree, covering all four job kinds, bounded by a virtual-time
// horizon so offered load scales purely with the rate multiplier. The
// shape is deliberately scale-independent — serve jobs are small and the
// sweep's knee comes from worker and quota contention, not input sizing.
func serveBaseScenario(mul float64) *serve.Scenario {
	return &serve.Scenario{
		Name:     "saturation",
		Seed:     1,
		Duration: sim.Time(2 * time.Second),
		Workers:  2,
		Topology: serve.TopoSpec{Preset: "apu-ssd", StorageMiB: 512, DRAMMiB: 64},
		Tenants: []serve.Tenant{
			{
				Name: "batch", Rate: 40 * mul, Weight: 1, QuotaMiB: 24,
				SLO: sim.Time(40 * time.Millisecond),
				Mix: []serve.MixEntry{
					{Workload: serve.WorkloadGEMM, N: 512},
					{Workload: serve.WorkloadSort, N: 200_000},
				},
			},
			{
				Name: "interactive", Rate: 100 * mul, Weight: 3, QuotaMiB: 8,
				SLO: sim.Time(10 * time.Millisecond),
				Mix: []serve.MixEntry{
					{Workload: serve.WorkloadSpMV, N: 16384},
					{Workload: serve.WorkloadHotSpot, N: 64, Iters: 4},
				},
			},
		},
	}
}

// ServePoint is one offered-load level of the sweep.
type ServePoint struct {
	// RateMul is the multiplier applied to every tenant's base rate.
	RateMul float64 `json:"rate_mul"`
	// OfferedJPS is the aggregate offered arrival rate in jobs/s.
	OfferedJPS float64 `json:"offered_jps"`
	Arrivals   int64   `json:"arrivals"`
	Admitted   int64   `json:"admitted"`
	// Rejected counts admission-control drops (quota plus backlog).
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	// ThroughputJPS is completions per virtual second.
	ThroughputJPS float64 `json:"throughput_jps"`
	// P50NS/P99NS are the worst tenant's latency percentiles (virtual ns):
	// the SLO view of the most-affected tenant at this load.
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
	// SLOViolations counts completions past their tenant's SLO.
	SLOViolations int64 `json:"slo_violations"`
}

// ServeResult is the rendered sweep.
type ServeResult struct {
	Schema   string       `json:"schema"`
	Scenario string       `json:"scenario"`
	Points   []ServePoint `json:"points"`
}

// ServeSaturation runs the saturation sweep in phantom mode.
func ServeSaturation(o Options) (*ServeResult, error) {
	if _, err := o.norm(); err != nil {
		return nil, err
	}
	res := &ServeResult{Schema: serveSchema, Scenario: "saturation"}
	for _, mul := range serveRateMuls {
		scn := serveBaseScenario(mul)
		eng, err := serve.New(scn, serve.RunOptions{Phantom: true})
		if err != nil {
			return nil, fmt.Errorf("figures: serve sweep %gx: %w", mul, err)
		}
		rep, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("figures: serve sweep %gx: %w", mul, err)
		}
		pt := ServePoint{RateMul: mul}
		for _, t := range scn.Tenants {
			pt.OfferedJPS += t.Rate
		}
		for _, t := range rep.Tenants {
			pt.Arrivals += t.Arrivals
			pt.Admitted += t.Admitted
			for _, n := range t.Rejected {
				pt.Rejected += n
			}
			pt.Completed += t.Completed
			pt.SLOViolations += t.SLOViolations
			if t.P50NS > pt.P50NS {
				pt.P50NS = t.P50NS
			}
			if t.P99NS > pt.P99NS {
				pt.P99NS = t.P99NS
			}
		}
		if rep.ElapsedNS > 0 {
			pt.ThroughputJPS = float64(pt.Completed) / (float64(rep.ElapsedNS) / 1e9)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// String renders the sweep as a table (the Renderer contract).
func (r *ServeResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "serve saturation sweep (%s): %d point(s)\n", r.Scenario, len(r.Points))
	fmt.Fprintf(&sb, "%6s %9s %8s %8s %8s %9s %12s %12s %6s\n",
		"mul", "offered", "arrived", "admit", "reject", "thru/s", "p50", "p99", "slo!")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%6.2f %9.1f %8d %8d %8d %9.1f %12v %12v %6d\n",
			p.RateMul, p.OfferedJPS, p.Arrivals, p.Admitted, p.Rejected,
			p.ThroughputJPS, sim.Time(p.P50NS), sim.Time(p.P99NS), p.SLOViolations)
	}
	return sb.String()
}

// CSV renders one row per sweep point (the Renderer contract).
func (r *ServeResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("rate_mul,offered_jps,arrivals,admitted,rejected,completed,throughput_jps,p50_ns,p99_ns,slo_violations\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%g,%g,%d,%d,%d,%d,%g,%d,%d,%d\n",
			p.RateMul, p.OfferedJPS, p.Arrivals, p.Admitted, p.Rejected,
			p.Completed, p.ThroughputJPS, p.P50NS, p.P99NS, p.SLOViolations)
	}
	return sb.String()
}

// JSON renders the committed BENCH_serve.json document.
func (r *ServeResult) JSON() string {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("figures: marshaling serve sweep: %v", err))
	}
	return string(data) + "\n"
}

var _ Renderer = (*ServeResult)(nil)
