package figures

import (
	"fmt"
	"strings"

	"repro/internal/emulator"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Fig9Point is one x-position of Figure 9 for one application: a projected
// (read/write) SSD bandwidth.
type Fig9Point struct {
	Target emulator.Target
	// IONorm is projected I/O time normalized to the 1400/600 baseline
	// (the paper's "I/O performance" series, inverted: smaller is better).
	IONorm float64
	// ProjectedNorm is the paper's first-order overall projection
	// (total - f*oldIO + f*newIO, with f the measured critical fraction).
	ProjectedNorm float64
	// NativeNorm re-runs the full simulation with the target bandwidths —
	// a validation of the first-order projection that the paper could not
	// perform without the hardware.
	NativeNorm float64
}

// Fig9Series is one application's sweep.
type Fig9Series struct {
	App App
	// InMemDelta is the in-memory runtime normalized to the 1400/600
	// baseline: the Δ reference points of the paper's figure.
	InMemDelta float64
	// CriticalFraction is the measured share of I/O time on the critical
	// path used by the projection.
	CriticalFraction float64
	Points           []Fig9Point
}

// Fig9Result carries all three applications' sweeps.
type Fig9Result struct {
	Series []Fig9Series
}

// Fig9 regenerates the §V-D faster-storage study: the baseline SSD run is
// traced; the emulator projects its I/O under faster bandwidths; and a
// native re-simulation cross-checks each projection.
func Fig9(o Options) (*Fig9Result, error) {
	o, err := o.norm()
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	targets := emulator.PaperSweep()
	for _, app := range Apps {
		// Baseline (1400/600) with the I/O trace attached.
		rt := o.newRuntime(SSD, true)
		tr := &emulator.Trace{}
		detach := tr.Attach(rt.Tree().Root().Mem)
		base, err := runApp(app, SSD, rt, o)
		detach()
		if err != nil {
			return nil, err
		}
		// In-memory Δ reference.
		imRT := o.newRuntime(InMemory, true)
		im, err := runApp(app, InMemory, imRT, o)
		if err != nil {
			return nil, err
		}
		// Critical fraction: how much of the I/O time was not hidden
		// behind the dominant compute component.
		ioBusy := base.Breakdown.Busy(trace.IO)
		computeBusy := base.Breakdown.Busy(trace.GPUCompute) + base.Breakdown.Busy(trace.CPUCompute)
		f := 1.0
		if ioBusy > 0 {
			f = float64(base.Elapsed-computeBusy) / float64(ioBusy)
		}
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}

		series := Fig9Series{App: app, CriticalFraction: f,
			InMemDelta: float64(im.Elapsed) / float64(base.Elapsed)}
		baseIO := projectIO(tr, targets[0])
		for _, tg := range targets {
			proj := tr.Project(tg, base.Elapsed, f)
			native, err := o.nativeRerun(app, tg)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, Fig9Point{
				Target:        tg,
				IONorm:        float64(proj.IOTime) / float64(baseIO),
				ProjectedNorm: float64(proj.Total) / float64(base.Elapsed),
				NativeNorm:    float64(native) / float64(base.Elapsed),
			})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// projectIO returns the projected I/O time of the trace on a target.
func projectIO(tr *emulator.Trace, tg emulator.Target) sim.Time {
	return tr.Project(tg, 0, 0).IOTime
}

// nativeRerun executes the application on a tree whose SSD actually has the
// target bandwidths.
func (o Options) nativeRerun(app App, tg emulator.Target) (sim.Time, error) {
	o2 := o
	o2.SSDRead, o2.SSDWrite = tg.ReadMBps, tg.WriteMBps
	rt := o2.newRuntime(SSD, true)
	m, err := runApp(app, SSD, rt, o2)
	if err != nil {
		return 0, err
	}
	return m.Elapsed, nil
}

// SeriesFor returns the sweep for an app.
func (r *Fig9Result) SeriesFor(app App) Fig9Series {
	for _, s := range r.Series {
		if s.App == app {
			return s
		}
	}
	panic(fmt.Sprintf("figures: no Fig9 series for %v", app))
}

// String renders the sweep as normalized series (1400/600 = 1.0).
func (r *Fig9Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 9: faster-storage projection (normalized to 1400/600 SSD)\n")
	for _, s := range r.Series {
		fmt.Fprintf(&sb, "%s  (in-memory Δ = %.2f, critical I/O fraction %.2f)\n",
			s.App, s.InMemDelta, s.CriticalFraction)
		fmt.Fprintf(&sb, "  %-10s %10s %12s %10s\n", "ssd", "io", "projected", "native")
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "  %-10s %10.2f %12.2f %10.2f\n",
				p.Target, p.IONorm, p.ProjectedNorm, p.NativeNorm)
		}
	}
	return sb.String()
}
