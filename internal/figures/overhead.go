package figures

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// OverheadRow reports the runtime-bookkeeping share for one application on
// the SSD tree — the paper's §V-B claim is that this stays below 1% of the
// total execution time at the chosen blocking sizes.
type OverheadRow struct {
	App App
	// Fraction is runtime busy time over elapsed time.
	Fraction float64
}

// OverheadResult carries all applications' overhead measurements.
type OverheadResult struct {
	Rows []OverheadRow
}

// Overhead regenerates the §V-B runtime-overhead measurement.
func Overhead(o Options) (*OverheadResult, error) {
	o, err := o.norm()
	if err != nil {
		return nil, err
	}
	res := &OverheadResult{}
	for _, app := range Apps {
		rt := o.newRuntime(SSD, true)
		m, err := runApp(app, SSD, rt, o)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, OverheadRow{
			App:      app,
			Fraction: m.Breakdown.FractionOfTotal(trace.Runtime),
		})
	}
	return res, nil
}

// Max returns the largest overhead fraction.
func (r *OverheadResult) Max() float64 {
	mx := 0.0
	for _, row := range r.Rows {
		if row.Fraction > mx {
			mx = row.Fraction
		}
	}
	return mx
}

// String renders the measurement.
func (r *OverheadResult) String() string {
	var sb strings.Builder
	sb.WriteString("Runtime overhead (§V-B; paper claims <1% of total execution)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-14s %6.3f%%\n", row.App, 100*row.Fraction)
	}
	return sb.String()
}
