package figures

import (
	"strings"
	"testing"
)

// TestStreamOverlapShapes asserts the sweep's load-bearing properties: the
// paper's >= 1.3x overlap win at >= 3 sub-chunks, a saturating (not
// monotonically growing) curve, a store-and-forward baseline of exactly
// 1.0x, and the adaptive sizer landing on the plateau.
func TestStreamOverlapShapes(t *testing.T) {
	res, err := StreamOverlap(Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(streamSubChunkCounts) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(streamSubChunkCounts))
	}
	byCount := map[int]StreamRow{}
	var best float64
	for _, row := range res.Rows {
		byCount[row.SubChunks] = row
		if row.Speedup > best {
			best = row.Speedup
		}
	}
	if byCount[1].Speedup != 1.0 {
		t.Fatalf("store-and-forward baseline speedup %.3f != 1.0", byCount[1].Speedup)
	}
	if byCount[1].MaxInFlight != 1 {
		t.Fatalf("baseline in-flight %d != 1", byCount[1].MaxInFlight)
	}
	// The acceptance bar: >= 1.3x end-to-end at >= 3 sub-chunks.
	if byCount[3].Speedup < 1.3 {
		t.Fatalf("3-sub-chunk speedup %.3fx < 1.3x", byCount[3].Speedup)
	}
	if byCount[3].MaxInFlight < 2 {
		t.Fatalf("3-sub-chunk run never overlapped: in-flight %d", byCount[3].MaxInFlight)
	}
	// Saturation: the curve flattens — going from 8 to 16 sub-chunks must
	// change the speedup by far less than going from 1 to 3 did.
	rise := byCount[3].Speedup - byCount[1].Speedup
	flat := byCount[16].Speedup - byCount[8].Speedup
	if flat < 0 {
		flat = -flat
	}
	if flat > rise/4 {
		t.Fatalf("curve not saturating: |s16-s8| = %.3f vs s3-s1 = %.3f", flat, rise)
	}
	// Per-hop latency eventually bites: very fine chunking must not beat
	// the plateau.
	if byCount[32].Speedup > best {
		t.Fatal("32 sub-chunks unexpectedly the best point")
	}
	// The adaptive sizer must land within 5% of the best swept point.
	auto := byCount[0]
	if auto.Speedup < best*0.95 {
		t.Fatalf("adaptive sizer %.3fx below 95%% of best swept %.3fx", auto.Speedup, best)
	}
	if auto.Count < 3 {
		t.Fatalf("adaptive sizer chose %d sub-chunks, expected >= 3 on the discrete tree", auto.Count)
	}
	// Renderers carry the sweep.
	if !strings.Contains(res.String(), "auto") || !strings.Contains(res.CSV(), "sub_chunks") {
		t.Fatal("String/CSV output incomplete")
	}
	if !strings.Contains(res.JSON(), "stream-auto") {
		t.Fatal("JSON output incomplete")
	}
}
