package figures

import (
	"strings"
	"testing"
)

// perfProfile runs the suite once per test binary; the suite is pure so
// sharing it across tests is safe.
func perfProfile(t *testing.T) *PerfProfile {
	t.Helper()
	p, err := PerfSuite(Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPerfSuiteShape checks the profile covers the three apps plus the
// streamed-shard, serve-mix, sim-engine and affinity entries with real
// virtual time and a populated metric map.
func TestPerfSuiteShape(t *testing.T) {
	p := perfProfile(t)
	if len(p.Apps) != len(Apps)+4 {
		t.Fatalf("profile has %d apps, want %d", len(p.Apps), len(Apps)+4)
	}
	stream := p.Apps[len(p.Apps)-4]
	if stream.Name != "stream-overlap" {
		t.Fatalf("fourth profile entry %q, want stream-overlap", stream.Name)
	}
	srv := p.Apps[len(p.Apps)-3]
	if srv.Name != "serve-mix" {
		t.Fatalf("fifth profile entry %q, want serve-mix", srv.Name)
	}
	eng := p.Apps[len(p.Apps)-2]
	if eng.Name != "sim-engine" {
		t.Fatalf("sixth profile entry %q, want sim-engine", eng.Name)
	}
	aff := p.Apps[len(p.Apps)-1]
	if aff.Name != "affinity" {
		t.Fatalf("last profile entry %q, want affinity", aff.Name)
	}
	if aff.Metrics["northup_sched_affinity_picks"] <= 0 {
		t.Fatal("affinity entry records no affinity placements")
	}
	saved := 0.0
	for name, v := range aff.Metrics {
		if strings.HasPrefix(name, "northup_sched_moved_bytes_saved_total") {
			saved += v
		}
	}
	if saved <= 0 {
		t.Fatal("affinity entry claims no saved bytes")
	}
	if p.Tolerances["northup_sched_moved_bytes_saved_total"] == 0 {
		t.Fatal("baseline lacks the saved-bytes tolerance override")
	}
	if eng.Metrics[`sim_engine_events{path="callback"}`] <= 0 {
		t.Fatal("sim-engine entry carries no dispatch event counts")
	}
	if _, ok := eng.Metrics["sim_engine_speedup"]; ok {
		t.Fatal("reduced-scale run emitted the wall-clock speedup metric")
	}
	if srv.Metrics[`northup_serve_completed_total{tenant="interactive"}`] <= 0 {
		t.Fatal("serve-mix entry carries no tenant completion counters")
	}
	if stream.Metrics["northup_stream_subchunks_total"] < 3 {
		t.Fatalf("stream entry moved %v sub-chunks, want adaptive >= 3",
			stream.Metrics["northup_stream_subchunks_total"])
	}
	if p.Tolerances["northup_stream_hop_bw"] == 0 {
		t.Fatal("baseline lacks the hop-bandwidth tolerance override")
	}
	for _, a := range p.Apps {
		if a.ElapsedNS <= 0 {
			t.Errorf("%s: elapsed %d, want > 0", a.Name, a.ElapsedNS)
		}
		if len(a.Metrics) == 0 {
			t.Errorf("%s: empty metric map", a.Name)
		}
		if a.Name == "sim-engine" || a.Name == "affinity" {
			// The engine self-measurement runs no devices, and the affinity
			// task graph places work on the leaf CPUs.
			continue
		}
		if a.Metrics[`northup_busy_ns_total{cat="gpu"}`] <= 0 {
			t.Errorf("%s: no GPU busy time in metrics", a.Name)
		}
	}
}

// TestPerfRoundTrip checks the baseline document survives JSON and the
// re-parsed baseline checks clean against the original run.
func TestPerfRoundTrip(t *testing.T) {
	p := perfProfile(t)
	back, err := ParsePerfProfile([]byte(p.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Scale != p.Scale {
		t.Fatalf("scale %d after round trip, want %d", back.Scale, p.Scale)
	}
	if c := back.Check(p); !c.OK() {
		t.Fatalf("round-tripped baseline fails against its own run:\n%s", c.Report())
	}
}

// TestPerfCheckDeterministic is the gate's soundness half: re-running the
// suite reproduces the baseline exactly, so -check passes on an unchanged
// tree.
func TestPerfCheckDeterministic(t *testing.T) {
	base := perfProfile(t)
	again, err := PerfSuite(Options{Scale: base.Scale})
	if err != nil {
		t.Fatal(err)
	}
	c := base.Check(again)
	if !c.OK() {
		t.Fatalf("identical rerun flagged as regression:\n%s", c.Report())
	}
	if c.Compared == 0 {
		t.Fatal("check compared no metrics")
	}
	if base.JSON() != again.JSON() {
		t.Fatal("two identical suite runs produced different baseline documents")
	}
}

// TestPerfCheckCatchesSlowdown is the gate's completeness half (the
// acceptance criterion): a ≥10% injected slowdown must fail the check.
func TestPerfCheckCatchesSlowdown(t *testing.T) {
	base := perfProfile(t)
	slow, err := ParsePerfProfile([]byte(base.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range slow.Apps {
		slow.Apps[i].ElapsedNS = slow.Apps[i].ElapsedNS * 11 / 10
		for name, v := range slow.Apps[i].Metrics {
			if strings.Contains(name, "_ns") {
				slow.Apps[i].Metrics[name] = v * 1.1
			}
		}
	}
	c := base.Check(slow)
	if c.OK() {
		t.Fatal("10% slowdown passed the perf check")
	}
	found := false
	for _, d := range c.Failures {
		if d.Metric == "elapsed_ns" && d.slower() {
			found = true
		}
	}
	if !found {
		t.Fatalf("slowdown failures omit elapsed_ns:\n%s", c.Report())
	}
	if !strings.Contains(c.Report(), "FAIL") {
		t.Fatal("report of a failing check has no FAIL lines")
	}
}

// TestPerfCheckMissingMetric checks a metric that disappears from the run
// (renamed instrument) fails the gate rather than passing silently.
func TestPerfCheckMissingMetric(t *testing.T) {
	base := perfProfile(t)
	run, err := ParsePerfProfile([]byte(base.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	delete(run.Apps[0].Metrics, `northup_busy_ns_total{cat="gpu"}`)
	if c := base.Check(run); c.OK() {
		t.Fatal("missing baseline metric passed the check")
	}
}

// TestPerfTolerances checks per-metric overrides: widening the tolerance
// on the perturbed metrics turns the failing check into a pass, and prefix
// entries resolve with longest-match-wins.
func TestPerfTolerances(t *testing.T) {
	base := perfProfile(t)
	run, err := ParsePerfProfile([]byte(base.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	run.Apps[0].ElapsedNS = run.Apps[0].ElapsedNS * 108 / 100
	if c := base.Check(run); c.OK() {
		t.Fatal("8% slowdown passed at the default 5% tolerance")
	}
	base.Tolerances = map[string]float64{"elapsed_ns": 0.15}
	if c := base.Check(run); !c.OK() {
		t.Fatalf("8%% slowdown failed despite a 15%% override:\n%s", c.Report())
	}
	// Prefix resolution: a broad prefix loosens, a longer exact-ish prefix
	// tightens again.
	if got := base.tolFor("northup_cache_hits_total"); got != perfRelTol {
		t.Fatalf("unrelated metric tolerance %v, want default %v", got, perfRelTol)
	}
	base.Tolerances["northup_cache_"] = 0.5
	base.Tolerances["northup_cache_hits_"] = 0.2
	if got := base.tolFor("northup_cache_hits_total"); got != 0.2 {
		t.Fatalf("longest-prefix tolerance %v, want 0.2", got)
	}
	if got := base.tolFor("northup_cache_misses_total"); got != 0.5 {
		t.Fatalf("prefix tolerance %v, want 0.5", got)
	}
}

// TestPerfFloors pins the one-sided floor semantics for wall-clock metrics:
// a value at or above the committed floor passes regardless of how far it
// drifts from the baseline value, a value below fails with a BELOW FLOOR
// line, and resolution is exact-name-first then longest-prefix.
func TestPerfFloors(t *testing.T) {
	base := &PerfProfile{
		Schema: perfSchema,
		Scale:  1,
		Apps: []AppPerf{{
			Name:      "sim-engine",
			ElapsedNS: 1000,
			Metrics: map[string]float64{
				`sim_engine_events_per_sec{path="callback"}`: 20e6,
				`sim_engine_events_per_sec{path="proc"}`:     1e6,
				`sim_engine_speedup`:                         20,
			},
		}},
		Floors: map[string]float64{
			"sim_engine_events_per_sec": 1e4,
			"sim_engine_speedup":        10,
		},
	}
	run, err := ParsePerfProfile([]byte(base.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	// A 3x faster machine and a 2x speedup drift both pass: floors are
	// one-sided, unlike the two-sided diff on deterministic metrics.
	run.Apps[0].Metrics[`sim_engine_events_per_sec{path="callback"}`] = 60e6
	run.Apps[0].Metrics[`sim_engine_speedup`] = 40
	if c := base.Check(run); !c.OK() {
		t.Fatalf("above-floor drift failed the check:\n%s", c.Report())
	}
	// Below the floor fails, and the report says so.
	run.Apps[0].Metrics[`sim_engine_speedup`] = 9.5
	c := base.Check(run)
	if c.OK() {
		t.Fatal("below-floor speedup passed the check")
	}
	if !strings.Contains(c.Report(), "BELOW FLOOR") {
		t.Fatalf("floor failure not reported as such:\n%s", c.Report())
	}
	if !c.Failures[0].slower() {
		t.Fatal("floor failure not counted as a regression direction")
	}
	// A floor-gated metric that vanishes from the run is Missing, not a pass.
	run.Apps[0].Metrics[`sim_engine_speedup`] = 40
	delete(run.Apps[0].Metrics, `sim_engine_events_per_sec{path="proc"}`)
	if c := base.Check(run); c.OK() {
		t.Fatal("missing floor-gated metric passed the check")
	}
	// Exact entries beat prefix entries.
	base.Floors[`sim_engine_events_per_sec{path="callback"}`] = 5e6
	if f, ok := base.floorOverrideFor(`sim_engine_events_per_sec{path="callback"}`); !ok || f != 5e6 {
		t.Fatalf("exact floor resolution got (%v,%v), want (5e6,true)", f, ok)
	}
	if f, ok := base.floorOverrideFor(`sim_engine_events_per_sec{path="proc"}`); !ok || f != 1e4 {
		t.Fatalf("prefix floor resolution got (%v,%v), want (1e4,true)", f, ok)
	}
	if _, ok := base.floorOverrideFor("northup_stream_hop_bw"); ok {
		t.Fatal("unrelated metric resolved a floor")
	}
}

// TestPerfParseRejectsBadSchema guards the baseline format version.
func TestPerfParseRejectsBadSchema(t *testing.T) {
	if _, err := ParsePerfProfile([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := ParsePerfProfile([]byte(`{nope`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
