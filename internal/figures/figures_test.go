package figures

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// Scale-8 runs finish in well under a second each and preserve the broad
// shapes; the full paper-scale checks live in the *PaperScale tests below
// (skipped with -short) and in the repository's benchmark harness.

func TestFig6ShapesSmall(t *testing.T) {
	res, err := Fig6(Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range Apps {
		im := res.Row(app, InMemory)
		ssd := res.Row(app, SSD)
		hdd := res.Row(app, HDD)
		if im.Normalized != 1.0 {
			t.Fatalf("%v: in-memory not normalized to 1", app)
		}
		if !(ssd.Normalized > 1.0) {
			t.Fatalf("%v: SSD (%f) not slower than in-memory", app, ssd.Normalized)
		}
		if !(hdd.Normalized > ssd.Normalized) {
			t.Fatalf("%v: disk (%f) not slower than SSD (%f)", app, hdd.Normalized, ssd.Normalized)
		}
	}
	// CSR suffers most (Fig. 6's spread). GEMM's position depends on its
	// O(N^3) compute to O(N^2) I/O ratio, which shrinking the input erodes
	// — the paper-scale test asserts it.
	if !(res.Row(SpMV, SSD).Normalized > res.Row(HotSpot, SSD).Normalized) {
		t.Fatal("CSR-Adaptive not the most affected app on SSD")
	}
	if !strings.Contains(res.String(), "dense-mm") {
		t.Fatal("String output incomplete")
	}
}

func TestFig6PaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	res, err := Fig6(Options{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name   string
		v      float64
		lo, hi float64
	}{
		// Paper: GEMM barely affected on SSD (in-memory gap ~5%).
		{"gemm-ssd", res.Row(GEMM, SSD).Normalized, 1.0, 1.25},
		// Paper: HotSpot ~1.3x on SSD.
		{"hotspot-ssd", res.Row(HotSpot, SSD).Normalized, 1.1, 1.5},
		// Paper: CSR ~2.4x on SSD.
		{"csr-ssd", res.Row(SpMV, SSD).Normalized, 1.7, 2.8},
		// Paper: HotSpot 2-2.5x slowdown (normalized ~3-3.5) on disk.
		{"hotspot-disk", res.Row(HotSpot, HDD).Normalized, 2.3, 4.0},
		// GEMM on disk: I/O partly hidden by compute.
		{"gemm-disk", res.Row(GEMM, HDD).Normalized, 1.5, 3.0},
	}
	for _, c := range checks {
		if err := checkShape(c.name, c.v, c.lo, c.hi); err != nil {
			t.Error(err)
		}
	}
}

func TestFig7BreakdownShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	res, err := Fig7(Options{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: GEMM spends the majority of time on GPU compute (disk cfg
	// shows I/O dominance for the memory-bound apps).
	if err := checkShape("gemm-ssd-gpu-share",
		res.Share(GEMM, SSD, trace.GPUCompute), 0.5, 0.95); err != nil {
		t.Error(err)
	}
	// Paper: HotSpot GPU share ~22% on disk, rising on SSD.
	if err := checkShape("hotspot-disk-gpu-share",
		res.Share(HotSpot, HDD, trace.GPUCompute), 0.12, 0.35); err != nil {
		t.Error(err)
	}
	if !(res.Share(HotSpot, SSD, trace.GPUCompute) > res.Share(HotSpot, HDD, trace.GPUCompute)) {
		t.Error("HotSpot GPU share did not rise from disk to SSD")
	}
	if !(res.Share(SpMV, SSD, trace.GPUCompute) > res.Share(SpMV, HDD, trace.GPUCompute)) {
		t.Error("CSR GPU share did not rise from disk to SSD")
	}
	// CSR-Adaptive is the only app with visible CPU time (row binning).
	if !(res.Share(SpMV, SSD, trace.CPUCompute) > res.Share(GEMM, SSD, trace.CPUCompute)) {
		t.Error("CSR binning CPU share not visible")
	}
	if !strings.Contains(res.String(), "csr-adaptive") {
		t.Error("String output incomplete")
	}
}

func TestFig8TransferShares(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	res, err := Fig8(Options{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: OpenCL transfers 7% for GEMM; all apps show a visible PCIe
	// component on the 3-level tree.
	if err := checkShape("gemm-transfer-share", res.TransferShare(GEMM), 0.04, 0.12); err != nil {
		t.Error(err)
	}
	for _, app := range Apps {
		if res.TransferShare(app) <= 0.01 {
			t.Errorf("%v: PCIe transfer share invisible (%.3f)", app, res.TransferShare(app))
		}
	}
	// The literal disk-root variant exists and is I/O-swamped.
	disk, err := Fig8Disk(Options{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range Apps {
		if disk.TransferShare(app) >= res.TransferShare(app) {
			t.Errorf("%v: disk-root transfer share not smaller than SSD-root", app)
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	res, err := Fig9(Options{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range Apps {
		s := res.SeriesFor(app)
		last := s.Points[len(s.Points)-1]
		// Paper: I/O improves by ~65% at 3500/2100.
		if err := checkShape(app.String()+"-io-gain", 1-last.IONorm, 0.5, 0.75); err != nil {
			t.Error(err)
		}
		// Projection and native rerun must agree on direction and be
		// monotone non-increasing across the sweep.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].NativeNorm > s.Points[i-1].NativeNorm+1e-9 {
				t.Errorf("%v: native total increased with faster storage", app)
			}
			if s.Points[i].ProjectedNorm > s.Points[i-1].ProjectedNorm+1e-9 {
				t.Errorf("%v: projected total increased with faster storage", app)
			}
		}
		// In-memory Δ is the lower envelope.
		if s.InMemDelta > last.NativeNorm+1e-9 {
			t.Errorf("%v: in-memory Δ (%.2f) above fastest-SSD native (%.2f)",
				app, s.InMemDelta, last.NativeNorm)
		}
	}
	// Paper: overall gains ~30% for the memory-intensive apps, small for
	// GEMM.
	csr := res.SeriesFor(SpMV)
	if err := checkShape("csr-overall-gain",
		1-csr.Points[len(csr.Points)-1].NativeNorm, 0.2, 0.5); err != nil {
		t.Error(err)
	}
	gemmS := res.SeriesFor(GEMM)
	if gain := 1 - gemmS.Points[len(gemmS.Points)-1].NativeNorm; gain > 0.15 {
		t.Errorf("GEMM overall gain %.2f implausibly large (compute-bound)", gain)
	}
}

func TestFig11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	res, err := Fig11(Options{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(paperFig11Inputs)*len(Fig11QueueCounts) {
		t.Fatalf("%d cells", len(res.Cells))
	}
	best := 0.0
	for _, c := range res.Cells {
		if c.Speedup <= 1.0 {
			t.Errorf("(%d,%d) q=%d: stealing not faster (%.2fx)",
				c.Input.M, c.Input.N, c.Queues, c.Speedup)
		}
		if c.Steals == 0 {
			t.Errorf("(%d,%d) q=%d: no steals", c.Input.M, c.Input.N, c.Queues)
		}
		if c.Speedup > best {
			best = c.Speedup
		}
	}
	// Paper: improvement up to ~24%.
	if err := checkShape("best-stealing-speedup", best, 1.15, 1.40); err != nil {
		t.Error(err)
	}
	// Paper: 32 queues perform best (GPU-only times, latency hiding).
	for _, in := range paperFig11Inputs {
		if res.Cell(in, 32).GPUOnly >= res.Cell(in, 8).GPUOnly {
			t.Errorf("(%d,%d): 32 queues not faster than 8 for GPU-only", in.M, in.N)
		}
	}
}

func TestOverheadBelowOnePercent(t *testing.T) {
	o := Options{Scale: 4}
	if testing.Short() {
		o.Scale = 8
	}
	res, err := Overhead(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Max() >= 0.01 {
		t.Fatalf("runtime overhead %.2f%% >= 1%%", 100*res.Max())
	}
	if res.Max() <= 0 {
		t.Fatal("overhead not measured")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Fig6(Options{Scale: 3}); err == nil {
		t.Fatal("scale 3 accepted")
	}
	if _, err := Fig11(Options{Scale: 5}); err == nil {
		t.Fatal("scale 5 accepted")
	}
}

func TestCSVOutputs(t *testing.T) {
	o := Options{Scale: 8}
	f6, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	csv := f6.CSV()
	if !strings.HasPrefix(csv, "app,storage,elapsed_s,normalized\n") {
		t.Fatalf("fig6 CSV header wrong:\n%s", csv)
	}
	if n := strings.Count(csv, "\n"); n != 10 { // header + 9 rows
		t.Fatalf("fig6 CSV has %d lines", n)
	}
	f7 := &Fig7Result{Fig6: f6}
	if !strings.Contains(f7.CSV(), "csr-adaptive,ssd,") {
		t.Fatal("fig7 CSV missing rows")
	}
	ov, err := Overhead(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ov.CSV(), "dense-mm,0.") {
		t.Fatalf("overhead CSV malformed:\n%s", ov.CSV())
	}
	// Every figure result satisfies Renderer.
	var _ Renderer = f6
	var _ Renderer = f7
	var _ Renderer = ov
}
