package figures

import (
	"strings"
	"testing"
)

func TestAffinityAblationShape(t *testing.T) {
	res, err := AffinityAblation(Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 apps x 2 policies)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MovedBytes <= 0 || row.Elapsed <= 0 || row.Tasks <= 0 || row.Picks <= 0 {
			t.Fatalf("degenerate row: %+v", row)
		}
		if row.Affinity && row.SavedBytes <= 0 {
			t.Fatalf("affinity row claims no saved bytes: %+v", row)
		}
		if !row.Affinity && row.SavedBytes != 0 {
			t.Fatalf("stealing row claims saved bytes: %+v", row)
		}
	}
}

func TestAffinityAblationReducesMovedBytes(t *testing.T) {
	// The headline claim: residency-aware placement moves measurably less
	// data than locality-blind stealing on both apps, and is no slower.
	res, err := AffinityAblation(Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if red := res.Reduction(GEMM.String()); red < 0.30 {
		t.Fatalf("GEMM moved-bytes reduction %.3f, want >= 0.30", red)
	}
	if red := res.Reduction(SpMV.String()); red < 0.05 {
		t.Fatalf("SpMV moved-bytes reduction %.3f, want >= 0.05", red)
	}
	elapsed := map[string]map[bool]float64{}
	for _, row := range res.Rows {
		if elapsed[row.App] == nil {
			elapsed[row.App] = map[bool]float64{}
		}
		elapsed[row.App][row.Affinity] = row.Elapsed.Seconds()
	}
	for app, by := range elapsed {
		if by[true] > by[false] {
			t.Fatalf("%s: affinity slower than stealing (%.6f > %.6f virtual s)",
				app, by[true], by[false])
		}
	}
}

func TestAffinityAblationDeterministic(t *testing.T) {
	a, err := AffinityAblation(Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AffinityAblation(Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.JSON() != b.JSON() {
		t.Fatal("affinity ablation not byte-identical across repeated runs")
	}
}

func TestAffinityAblationRenderers(t *testing.T) {
	res, err := AffinityAblation(Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); !strings.Contains(s, "dense-mm") || !strings.Contains(s, "%") {
		t.Fatalf("table missing content:\n%s", s)
	}
	csv := res.CSV()
	if lines := strings.Count(strings.TrimSpace(csv), "\n"); lines != 4 {
		t.Fatalf("CSV has %d data lines, want 4:\n%s", lines, csv)
	}
	js := res.JSON()
	for _, want := range []string{`"policy": "affinity"`, `"moved_bytes"`, `"reduction"`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON missing %s:\n%s", want, js)
		}
	}
}
