package figures

import (
	"fmt"

	"repro/internal/apps/gemm"
	"repro/internal/apps/hotspot"
	"repro/internal/apps/spmv"
	"repro/internal/core"
	"repro/internal/workload"
)

// hotspotIters is the stencil iteration count per out-of-core pass
// (Rodinia's default thermal simulation length). It is what makes HotSpot's
// leaf compute substantial relative to its I/O, as the paper's breakdowns
// require (GPU share 22% on disk, 59% on SSD — Fig. 7).
const hotspotIters = 60

// runGEMM runs dense matrix multiply at this scale.
func runGEMM(rt *core.Runtime, store Storage, o Options) (core.RunStats, error) {
	cfg := gemm.Config{N: o.denseN(), Seed: 1}
	if store == InMemory {
		res, err := gemm.RunInMemory(rt, cfg)
		if err != nil {
			return core.RunStats{}, err
		}
		return res.Stats, nil
	}
	res, err := gemm.RunNorthup(rt, cfg)
	if err != nil {
		return core.RunStats{}, err
	}
	return res.Stats, nil
}

// runHotSpot runs the thermal stencil at this scale.
func runHotSpot(rt *core.Runtime, store Storage, o Options) (core.RunStats, error) {
	cfg := hotspot.Config{N: o.denseN(), Seed: 2, Iters: hotspotIters}
	if store == InMemory {
		res, err := hotspot.RunInMemory(rt, cfg)
		if err != nil {
			return core.RunStats{}, err
		}
		return res.Stats, nil
	}
	cfg.ChunkDim = paperHotChunk / o.Scale
	res, err := hotspot.RunNorthup(rt, cfg)
	if err != nil {
		return core.RunStats{}, err
	}
	return res.Stats, nil
}

// runSpMV runs CSR-Adaptive at this scale. The paper's inputs come from
// the Florida collection ("16 million rows ... divided into four chunks");
// the substitute is a uniform synthetic matrix of the same scale.
func runSpMV(rt *core.Runtime, store Storage, o Options) (core.RunStats, error) {
	cfg := spmv.Config{
		N:      o.spmvRows(),
		AvgNNZ: paperSpmvNNZ,
		Kind:   workload.SparseUniform,
		Seed:   3,
		Chunks: 4,
	}
	if store == InMemory {
		res, err := spmv.RunInMemory(rt, cfg)
		if err != nil {
			return core.RunStats{}, err
		}
		return res.Stats, nil
	}
	res, err := spmv.RunNorthup(rt, cfg)
	if err != nil {
		return core.RunStats{}, err
	}
	return res.Stats, nil
}

// checkShape is a helper for tests and self-validation: it fails when a
// value falls outside [lo, hi].
func checkShape(name string, v, lo, hi float64) error {
	if v < lo || v > hi {
		return fmt.Errorf("figures: %s = %.3g outside expected [%g, %g]", name, v, lo, hi)
	}
	return nil
}
