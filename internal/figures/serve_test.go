package figures

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestServeSaturationShape checks the sweep covers every multiplier, that
// load and rejections are monotone with offered rate at the extremes, and
// that a knee exists: the highest offered load completes less than it
// admits at the low end would suggest, i.e. rejections appear.
func TestServeSaturationShape(t *testing.T) {
	r, err := ServeSaturation(Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != serveSchema {
		t.Fatalf("schema %q, want %q", r.Schema, serveSchema)
	}
	if len(r.Points) != len(serveRateMuls) {
		t.Fatalf("%d points, want %d", len(r.Points), len(serveRateMuls))
	}
	for i, p := range r.Points {
		if p.RateMul != serveRateMuls[i] {
			t.Fatalf("point %d multiplier %g, want %g", i, p.RateMul, serveRateMuls[i])
		}
		if p.Arrivals <= 0 || p.Completed <= 0 {
			t.Fatalf("point %gx saw no traffic: %+v", p.RateMul, p)
		}
		if p.Arrivals != p.Admitted+p.Rejected {
			t.Fatalf("point %gx arrival accounting off: %+v", p.RateMul, p)
		}
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.Arrivals <= first.Arrivals {
		t.Fatalf("offered load did not scale: %d arrivals at %gx vs %d at %gx",
			first.Arrivals, first.RateMul, last.Arrivals, last.RateMul)
	}
	// The knee: under light load nothing is shed; past saturation the
	// engine rejects and the tail grows.
	if first.Rejected != 0 {
		t.Fatalf("light load already shedding: %+v", first)
	}
	if last.Rejected == 0 {
		t.Fatalf("8x offered load shed nothing — no knee: %+v", last)
	}
	if last.P99NS <= first.P99NS {
		t.Fatalf("p99 did not grow with load: %v at %gx vs %v at %gx",
			first.P99NS, first.RateMul, last.P99NS, last.RateMul)
	}
}

// TestServeSaturationDeterministic pins the committed-document promise:
// two runs render byte-identical JSON.
func TestServeSaturationDeterministic(t *testing.T) {
	a, err := ServeSaturation(Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServeSaturation(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.JSON() != b.JSON() {
		t.Fatal("two identical sweeps produced different documents")
	}
}

// TestServeSaturationRenderers checks the Renderer surfaces agree on the
// point count and the JSON document round-trips.
func TestServeSaturationRenderers(t *testing.T) {
	r, err := ServeSaturation(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(r.CSV(), "\n"); got != len(r.Points)+1 {
		t.Fatalf("CSV has %d lines, want header + %d points", got, len(r.Points))
	}
	if !strings.Contains(r.String(), "saturation") {
		t.Fatalf("table omits the scenario name:\n%s", r.String())
	}
	var back ServeResult
	if err := json.Unmarshal([]byte(r.JSON()), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(r.Points) || back.Schema != r.Schema {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}
