package figures

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Fig8Result carries the 3-level discrete-GPU breakdown of Figure 8: the
// tree is GPU device memory <- main memory <- disk drive, and the quantity
// the paper highlights is the share of "OpenCL transfers" (PCIe traffic
// between host and device memory).
type Fig8Result struct {
	Rows []Measurement
}

// Fig8 regenerates Figure 8: all three applications on the 3-level tree.
//
// The paper's caption says the root is the disk drive, but its quoted
// transfer shares (7/12/33%) are only reachable when storage I/O does not
// swamp the breakdown — at the WD5000AAKX's 125 MB/s it necessarily would
// (I/O moves the same bytes as PCIe at 1/100th the bandwidth). This driver
// therefore uses the SSD root by default and reports the disk variant too;
// EXPERIMENTS.md discusses the discrepancy.
func Fig8(o Options) (*Fig8Result, error) {
	return fig8On(o, SSD)
}

// Fig8Disk is the literal-caption variant with the disk-drive root.
func Fig8Disk(o Options) (*Fig8Result, error) {
	return fig8On(o, HDD)
}

func fig8On(o Options, store Storage) (*Fig8Result, error) {
	o, err := o.norm()
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	for _, app := range Apps {
		rt := o.newDiscreteRuntime(store)
		m, err := runApp(app, store, rt, o)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, m)
	}
	return res, nil
}

// TransferShare returns the PCIe-transfer fraction for an app, the number
// the paper quotes as 7% / 12% / 33%.
func (r *Fig8Result) TransferShare(app App) float64 {
	for _, m := range r.Rows {
		if m.App == app {
			return m.Breakdown.Fraction(trace.Transfer)
		}
	}
	panic(fmt.Sprintf("figures: no Fig8 row for %v", app))
}

// String renders the stacked-bar data of Figure 8.
func (r *Fig8Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 8: execution breakdown, 3-level discrete-GPU tree (% of busy time)\n")
	fmt.Fprintf(&sb, "%-14s", "app")
	for _, c := range trace.Categories {
		fmt.Fprintf(&sb, " %9s", c)
	}
	sb.WriteByte('\n')
	for _, m := range r.Rows {
		fmt.Fprintf(&sb, "%-14s", m.App)
		for _, c := range trace.Categories {
			fmt.Fprintf(&sb, " %8.1f%%", 100*m.Breakdown.Fraction(c))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
