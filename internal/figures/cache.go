package figures

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/apps/spmv"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The staging-cache ablation: SpMV power iteration on the SSD tree, sweeping
// the cache capacity from off to (nearly) the whole staging level. The
// matrix extents are re-read every iteration, so the runtime the sweep
// removes is exactly the repeated storage traffic the reuse-aware cache is
// built to absorb; the uncached row is the baseline every speedup is
// normalized to.

// cacheAblationIters is the power-iteration count of the sweep. Iteration 1
// warms the cache; iterations 2..k are where hits replace storage reads.
const cacheAblationIters = 6

// cacheSpmvRows is the paper-scale row count of the ablation input: 4M rows
// at 16 nnz/row is a ~528 MiB matrix, sized so the full-capacity row keeps
// the whole matrix resident inside a 2 GiB staging level while the working
// set (pipeline slots + vectors) still fits beside it.
const cacheSpmvRows = 4_194_304

// CacheRow is one capacity point of the ablation.
type CacheRow struct {
	// CapacityMiB is the cache capacity; 0 is the uncached baseline.
	CapacityMiB int64
	// Prefetch reports whether the lookahead prefetcher ran.
	Prefetch bool
	Elapsed  sim.Time
	// Speedup is baseline elapsed over this row's elapsed (>= 1 when the
	// cache helps).
	Speedup float64
	Stats   trace.CacheStats
}

// CacheResult carries the sweep.
type CacheResult struct {
	Rows []CacheRow
}

// cacheCapacities returns the sweep points as fractions of the staging
// capacity: off, 1/8, 1/2, and 7/8 (full minus working-set headroom).
func cacheCapacities(stageMiB int64) []int64 {
	return []int64{0, stageMiB / 8, stageMiB / 2, stageMiB * 7 / 8}
}

// CacheAblation sweeps the staging-cache capacity for the SpMV power
// iteration on the SSD tree and reports virtual time, speedup over the
// uncached baseline, and hit statistics per point.
func CacheAblation(o Options) (*CacheResult, error) {
	o, err := o.norm()
	if err != nil {
		return nil, err
	}
	res := &CacheResult{}
	var baseline sim.Time
	for _, capMiB := range cacheCapacities(o.stageMiB()) {
		elapsed, cs, err := o.runCachedSpMV(capMiB, capMiB > 0)
		if err != nil {
			return nil, err
		}
		if baseline == 0 {
			baseline = elapsed
		}
		res.Rows = append(res.Rows, CacheRow{
			CapacityMiB: capMiB,
			Prefetch:    capMiB > 0,
			Elapsed:     elapsed,
			Speedup:     float64(baseline) / float64(elapsed),
			Stats:       cs,
		})
	}
	return res, nil
}

// runCachedSpMV executes one sweep point: the SpMV power iteration on a
// fresh SSD tree with the given cache capacity (0 disables the cache).
func (o Options) runCachedSpMV(capMiB int64, prefetch bool) (sim.Time, trace.CacheStats, error) {
	e := sim.NewEngine()
	opts := core.DefaultOptions()
	opts.Phantom = true
	opts.Cache = core.CacheOptions{
		Enabled:       capMiB > 0,
		CapacityBytes: capMiB << 20,
		Prefetch:      prefetch,
	}
	tree := topo.APU(e, topo.APUConfig{
		Storage:    topo.SSD,
		StorageMiB: o.storageMiB(),
		DRAMMiB:    o.stageMiB(),
		WithCPU:    true,
	})
	rt := core.NewRuntime(e, tree, opts)
	cfg := spmv.Config{
		N:      cacheSpmvRows / (o.Scale * o.Scale),
		AvgNNZ: paperSpmvNNZ,
		Kind:   workload.SparseUniform,
		Seed:   3,
		Chunks: 4,
		Iters:  cacheAblationIters,
	}
	r, err := spmv.RunNorthup(rt, cfg)
	if err != nil {
		return 0, trace.CacheStats{}, fmt.Errorf("figures: cache ablation at %d MiB: %w", capMiB, err)
	}
	return r.Stats.Elapsed, rt.CacheStats(), nil
}

// String renders the sweep as a table.
func (r *CacheResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Staging-cache ablation: spmv power iteration (%d iters, SSD tree)\n",
		cacheAblationIters)
	fmt.Fprintf(&sb, "  %-12s %12s %9s %10s %12s %11s\n",
		"cache", "virtual-s", "speedup", "hit-rate", "prefetches", "evictions")
	for _, row := range r.Rows {
		name := "off"
		if row.CapacityMiB > 0 {
			name = fmt.Sprintf("%d MiB", row.CapacityMiB)
		}
		fmt.Fprintf(&sb, "  %-12s %12.3f %8.2fx %9.1f%% %12d %11d\n",
			name, row.Elapsed.Seconds(), row.Speedup, 100*row.Stats.HitRate(),
			row.Stats.Prefetches, row.Stats.Evictions)
	}
	return sb.String()
}

// CSV renders the sweep as capacity_mib,virtual_s,speedup,hit_rate,hits,
// misses,evictions,prefetches,prefetch_hits,bypasses.
func (r *CacheResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("capacity_mib,virtual_s,speedup,hit_rate,hits,misses,evictions,prefetches,prefetch_hits,bypasses\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%d,%.6f,%.4f,%.4f,%d,%d,%d,%d,%d,%d\n",
			row.CapacityMiB, row.Elapsed.Seconds(), row.Speedup, row.Stats.HitRate(),
			row.Stats.Hits, row.Stats.Misses, row.Stats.Evictions,
			row.Stats.Prefetches, row.Stats.PrefetchHits, row.Stats.Bypasses)
	}
	return sb.String()
}

// cacheJSONRow is the machine-readable form of one sweep point, consumed by
// the Makefile's bench-json target.
type cacheJSONRow struct {
	Name        string  `json:"name"`
	CapacityMiB int64   `json:"capacity_mib"`
	VirtualS    float64 `json:"virtual_s"`
	Speedup     float64 `json:"speedup"`
	HitRate     float64 `json:"hit_rate"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Evictions   int64   `json:"evictions"`
	Prefetches  int64   `json:"prefetches"`
}

// JSON renders the sweep as a JSON array (one object per capacity point).
func (r *CacheResult) JSON() string {
	rows := make([]cacheJSONRow, 0, len(r.Rows))
	for _, row := range r.Rows {
		name := "spmv-cache-off"
		if row.CapacityMiB > 0 {
			name = fmt.Sprintf("spmv-cache-%dmib", row.CapacityMiB)
		}
		rows = append(rows, cacheJSONRow{
			Name:        name,
			CapacityMiB: row.CapacityMiB,
			VirtualS:    row.Elapsed.Seconds(),
			Speedup:     row.Speedup,
			HitRate:     row.Stats.HitRate(),
			Hits:        row.Stats.Hits,
			Misses:      row.Stats.Misses,
			Evictions:   row.Stats.Evictions,
			Prefetches:  row.Stats.Prefetches,
		})
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		panic(err) // plain structs cannot fail to marshal
	}
	return string(out) + "\n"
}

var _ Renderer = (*CacheResult)(nil)
