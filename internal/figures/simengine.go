package figures

import (
	"fmt"

	"repro/internal/sim"
)

// The sim-engine perf-gate entry: the DES engine measures its own dispatch
// speed on the paper-scale event mix (sim.RunDispatch — colliding timer
// chains plus same-instant wake bursts) over both dispatch paths. Virtual
// outcomes are deterministic and diffed two-sided like any other metric;
// the wall-clock rates and the callback-over-proc speedup are real-time
// measurements and are held to committed one-sided floors instead, so the
// gate fails on a dispatch-speed regression (a slow heap, a lost batch
// path, an accidental allocation storm) without flaking on machine speed.

// simEngineSpeedupFloor is the committed floor for the callback-over-proc
// dispatch speedup. It is the PR's headline claim — the fast path must stay
// at least one order of magnitude cheaper than goroutine handoffs — kept
// below the ~25-30x typically measured so slower machines don't flake.
const simEngineSpeedupFloor = 10.0

// simEngineRateMargin divides measured events/sec rates into their committed
// floors: wide enough to absorb the race detector (bench-check runs race-
// instrumented) and slower hardware, tight enough that falling back to
// goroutine handoffs for callback work (a ~25x cliff) still fails.
const simEngineRateMargin = 50.0

// simEngineConfig is the paper-scale dispatch mix at a figures scale: 256
// concurrent chains (the per-hop transfer / device-charge population of the
// GEMM+HotSpot+SpMV profile) and 64-wide wake bursts (the serve tier's WFQ
// storms). The proc path runs a cost-identical but smaller slice of the
// same mix — rates are workload-size independent, and a million goroutine
// handoffs under the race detector would dominate the whole suite's wall
// time.
func simEngineConfig(scale int, path sim.DispatchPath) sim.DispatchConfig {
	if scale < 1 {
		scale = 1
	}
	c := sim.DispatchConfig{
		Chains:      256,
		PerChain:    2000 / scale,
		Burst:       64,
		BurstEvery:  4,
		BurstRounds: 8000 / scale,
	}
	if path == sim.PathProc {
		c.PerChain /= 8
		c.BurstRounds /= 8
	}
	return c
}

// simEnginePerf runs the dispatch workload on both paths and returns the
// profile entry plus the floors for its wall-clock metrics.
func simEnginePerf(o Options) (AppPerf, map[string]float64, error) {
	cbCfg := simEngineConfig(o.Scale, sim.PathCallback)
	prCfg := simEngineConfig(o.Scale, sim.PathProc)

	cb, err := sim.RunDispatch(cbCfg, sim.PathCallback)
	if err != nil {
		return AppPerf{}, nil, err
	}
	pr, err := sim.RunDispatch(prCfg, sim.PathProc)
	if err != nil {
		return AppPerf{}, nil, err
	}
	// Semantic guard inside the suite itself: on the proc config, the two
	// paths must produce identical virtual-time results — the fast path is
	// an optimization, not a fork of the simulation's meaning.
	cbSmall, err := sim.RunDispatch(prCfg, sim.PathCallback)
	if err != nil {
		return AppPerf{}, nil, err
	}
	if cbSmall.Fired != pr.Fired || cbSmall.VirtualNS != pr.VirtualNS {
		return AppPerf{}, nil, fmt.Errorf(
			"figures: dispatch paths disagree: callback fired=%d virtual=%d, proc fired=%d virtual=%d",
			cbSmall.Fired, cbSmall.VirtualNS, pr.Fired, pr.VirtualNS)
	}

	entry := AppPerf{
		Name:      "sim-engine",
		ElapsedNS: cb.VirtualNS,
		Metrics: map[string]float64{
			// Deterministic outcomes, two-sided like every other metric.
			`sim_engine_events{path="callback"}`: float64(cb.Events),
			`sim_engine_events{path="proc"}`:     float64(pr.Events),
			`sim_engine_fired`:                   float64(cb.Fired),
		},
	}
	if o.Scale > 1 {
		// Reduced-scale runs (tests, smoke checks) shrink the workload until
		// wall times are a few milliseconds and the rates are noise. Only the
		// committed full-scale mix carries the real-time claim, so only it
		// emits the floor-gated metrics — which also keeps reduced-scale
		// baseline documents bit-for-bit deterministic.
		return entry, nil, nil
	}
	speedup := 0.0
	if pr.EventsPerSec > 0 {
		speedup = cb.EventsPerSec / pr.EventsPerSec
	}
	// Wall-clock rates, one-sided against the committed floors.
	entry.Metrics[`sim_engine_events_per_sec{path="callback"}`] = cb.EventsPerSec
	entry.Metrics[`sim_engine_events_per_sec{path="proc"}`] = pr.EventsPerSec
	entry.Metrics[`sim_engine_speedup`] = speedup
	floors := map[string]float64{
		`sim_engine_events_per_sec{path="callback"}`: cb.EventsPerSec / simEngineRateMargin,
		`sim_engine_events_per_sec{path="proc"}`:     pr.EventsPerSec / simEngineRateMargin,
		`sim_engine_speedup`:                         simEngineSpeedupFloor,
	}
	return entry, floors, nil
}
