package figures

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/apps/gemm"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// The streaming-transfer ablation: one paper-shaped GEMM column shard moves
// storage -> DRAM -> GPU memory on the discrete tree while the GPU consumes
// each k-panel as it lands. Sweeping the sub-chunk count from 1 (pure
// store-and-forward, compute after the last byte) upward shows the §III-C
// multi-stage overlap: the curve rises steeply to ~1.3-1.6x and saturates
// once the slowest hop paces the pipeline.

// streamShardCols is the shard width (the paper's 4k DRAM blocking for 16k
// inputs). It fixes the kernel's arithmetic intensity per streamed byte, so
// the compute-vs-IO balance of the sweep matches the paper's GEMM shard
// regardless of Options.Scale.
const streamShardCols = 4096

// streamSubChunkCounts are the sweep points; 0 is the adaptive sizer.
var streamSubChunkCounts = []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 0}

// StreamRow is one sub-chunk-count point of the sweep.
type StreamRow struct {
	// SubChunks is the requested count; 0 means the adaptive sizer chose.
	SubChunks int
	// Count is the number of sub-chunks actually moved.
	Count int64
	// Elapsed is the virtual end-to-end time (move + consumer kernels).
	Elapsed sim.Time
	// Speedup is the store-and-forward (1 sub-chunk) elapsed over this
	// row's elapsed.
	Speedup float64
	// MaxInFlight is the peak number of sub-chunks simultaneously in the
	// pipeline (1 for store-and-forward, > 1 once hops overlap).
	MaxInFlight int64
}

// StreamResult carries the sweep.
type StreamResult struct {
	// PayloadBytes is the size of the streamed shard.
	PayloadBytes int64
	// Rows are the sweep points in streamSubChunkCounts order.
	Rows []StreamRow
}

// StreamOverlap sweeps the sub-chunk count of a streamed GEMM shard load on
// the discrete tree (storage -> DRAM -> GPU memory) with the tile kernel
// consuming k-panels as they arrive, and reports the end-to-end speedup
// over the store-and-forward baseline.
func StreamOverlap(o Options) (*StreamResult, error) {
	o, err := o.norm()
	if err != nil {
		return nil, err
	}
	// The shard is (denseN/2) rows x streamShardCols floats: row count sets
	// only the sweep's duration, while the fixed width keeps the kernel's
	// flops-per-byte at the paper's shard geometry across scales.
	rows := o.denseN() / 2
	payload := int64(rows) * streamShardCols * 4
	res := &StreamResult{PayloadBytes: payload}
	var baseline sim.Time
	for _, count := range streamSubChunkCounts {
		elapsed, moved, inflight, err := o.runStreamedShard(payload, count, nil)
		if err != nil {
			return nil, err
		}
		if baseline == 0 {
			baseline = elapsed
		}
		res.Rows = append(res.Rows, StreamRow{
			SubChunks:   count,
			Count:       moved,
			Elapsed:     elapsed,
			Speedup:     float64(baseline) / float64(elapsed),
			MaxInFlight: inflight,
		})
	}
	return res, nil
}

// runStreamedShard executes one sweep point on a fresh discrete tree. With
// a non-nil registry the run carries continuous metrics (the perf gate's
// stream-overlap entry) and syncs them before returning.
func (o Options) runStreamedShard(payload int64, count int, reg *obs.Registry) (sim.Time, int64, int64, error) {
	e := sim.NewEngine()
	opts := core.DefaultOptions()
	opts.Phantom = true
	opts.Metrics = reg
	tree := topo.Discrete(e, topo.DiscreteConfig{
		Storage:    topo.SSD,
		StorageMiB: o.storageMiB(),
		DRAMMiB:    o.stageMiB(),
		GPUMemMiB:  int64(paperGPUMemMiB / (o.Scale * o.Scale)),
	})
	rt := core.NewRuntime(e, tree, opts)
	root := rt.Tree().Root()
	src, err := rt.CreateInput(root, "stream-shard", payload, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	leaf := root.Children[0].Children[0]
	rowBytes := int64(streamShardCols) * 4
	stats, err := rt.Run("stream-overlap", func(c *core.Ctx) error {
		dst, err := c.AllocAt(leaf, payload)
		if err != nil {
			return err
		}
		return c.MoveDataDownStreamed(dst, src, 0, 0, payload, core.StreamOptions{
			SubChunks: count,
			OnChunk: func(sub *core.Ctx, i int, off, n int64) error {
				// Consume the landed k-panel: C(s x s) += A(s x kp)·B(kp x s),
				// the accumulation step of gemm.multiplyShard.
				kp := int(n / rowBytes)
				if kp == 0 {
					return nil
				}
				kern, groups := gemm.TileKernel(nil, nil, nil,
					streamShardCols, kp, streamShardCols, i > 0)
				_, err := sub.LaunchKernel(kern, groups)
				return err
			},
		})
	})
	if err != nil {
		return 0, 0, 0, fmt.Errorf("figures: stream overlap at %d sub-chunks: %w", count, err)
	}
	if reg != nil {
		rt.SyncMetrics()
	}
	ss := rt.StreamStats()
	return stats.Elapsed, ss.SubChunks, ss.MaxInFlight, nil
}

// String renders the sweep as a table.
func (r *StreamResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Streamed-transfer overlap: GEMM shard (%d MiB) storage->DRAM->GPU, kernel consumes k-panels\n",
		r.PayloadBytes>>20)
	fmt.Fprintf(&sb, "  %-10s %8s %12s %9s %10s\n",
		"sub-chunks", "moved", "virtual-s", "speedup", "in-flight")
	for _, row := range r.Rows {
		name := fmt.Sprintf("%d", row.SubChunks)
		if row.SubChunks == 0 {
			name = "auto"
		}
		fmt.Fprintf(&sb, "  %-10s %8d %12.4f %8.2fx %10d\n",
			name, row.Count, row.Elapsed.Seconds(), row.Speedup, row.MaxInFlight)
	}
	return sb.String()
}

// CSV renders the sweep as sub_chunks,moved,virtual_s,speedup,max_in_flight
// (sub_chunks 0 is the adaptive row).
func (r *StreamResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("sub_chunks,moved,virtual_s,speedup,max_in_flight\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%d,%d,%.6f,%.4f,%d\n",
			row.SubChunks, row.Count, row.Elapsed.Seconds(), row.Speedup, row.MaxInFlight)
	}
	return sb.String()
}

// streamJSONRow is the machine-readable form of one sweep point, consumed
// by the Makefile's bench-stream target.
type streamJSONRow struct {
	Name        string  `json:"name"`
	SubChunks   int     `json:"sub_chunks"`
	Moved       int64   `json:"moved"`
	VirtualS    float64 `json:"virtual_s"`
	Speedup     float64 `json:"speedup"`
	MaxInFlight int64   `json:"max_in_flight"`
}

// JSON renders the sweep as a JSON array (one object per sweep point).
func (r *StreamResult) JSON() string {
	rows := make([]streamJSONRow, 0, len(r.Rows))
	for _, row := range r.Rows {
		name := fmt.Sprintf("stream-s%d", row.SubChunks)
		if row.SubChunks == 0 {
			name = "stream-auto"
		}
		rows = append(rows, streamJSONRow{
			Name:        name,
			SubChunks:   row.SubChunks,
			Moved:       row.Count,
			VirtualS:    row.Elapsed.Seconds(),
			Speedup:     row.Speedup,
			MaxInFlight: row.MaxInFlight,
		})
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		panic(err) // plain structs cannot fail to marshal
	}
	return string(out) + "\n"
}

var _ Renderer = (*StreamResult)(nil)
