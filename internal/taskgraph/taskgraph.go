// Package taskgraph is the shared data-affinity task scheduler of the
// runtime: applications declare tasks with the byte extents they read and
// write plus a kernel cost hint, the graph infers dependencies from extent
// overlap in program order, and a small worker pool executes the resulting
// DAG either with locality-blind work stealing (the baseline every app
// hand-wired before) or with residency-aware affinity placement.
//
// The affinity policy prices each ready task as estimated compute time plus
// estimated bytes-to-move: input extents already staged at the scheduling
// node — resident, pinned, or in flight in the staging cache
// (internal/cache) — score zero, so the scheduler gravitates toward tasks
// whose data is already close, the placement heuristic of XKaapi-style
// affinity scheduling. Compute estimates come from a sched.ProfileScheduler
// learned online (or warm-started from an exported profile), so the scorer
// improves as the run progresses.
//
// Everything is deterministic: candidate scanning, scoring, and
// tie-breaking depend only on graph order and simulation state, so repeated
// runs with the same seed produce byte-identical schedules.
package taskgraph

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Extent is a half-open byte range of a buffer — the unit of the scheduler's
// dependence analysis and residency probing. Extents are matched the way the
// staging cache matches them: by the buffer's stable ID and exact range for
// residency, by range intersection for dependencies.
type Extent struct {
	Buf *core.Buffer
	Off int64
	Len int64
}

// overlaps reports whether two extents intersect in the same buffer.
func (e Extent) overlaps(o Extent) bool {
	if e.Buf == nil || o.Buf == nil || e.Buf.ID() != o.Buf.ID() {
		return false
	}
	return e.Off < o.Off+o.Len && o.Off < e.Off+e.Len
}

// overlapBytes returns the size of the intersection of two extents.
func overlapBytes(a, b Extent) int64 {
	if !a.overlaps(b) {
		return 0
	}
	lo, hi := a.Off, a.Off+a.Len
	if b.Off > lo {
		lo = b.Off
	}
	if b.Off+b.Len < hi {
		hi = b.Off + b.Len
	}
	return hi - lo
}

// Task is one schedulable unit: a body plus its declared data footprint.
type Task struct {
	// Name labels the task; Kind is the profile key (defaults to Name) —
	// tasks of one Kind share a fitted cost model in the ProfileScheduler.
	Name string
	Kind string

	// Reads and Writes declare the extents the body touches. The graph
	// serializes RAW, WAR and WAW overlaps in program order; disjoint tasks
	// run in any order, concurrently.
	Reads  []Extent
	Writes []Extent

	// Cost is the kernel cost hint in any consistent unit (flops, non-zeros,
	// cells); it is the size fed to the profile's linear cost model.
	Cost float64

	// Run executes the task. The context runs at the node Graph.Run was
	// called from, so bodies use the ordinary staging API
	// (MoveDataDownCached, Descend, ...) unchanged.
	Run func(*core.Ctx) error

	id     int
	outs   []int // task IDs unblocked by this task's completion
	nblock int   // predecessors not yet completed (at build time: total)
}

// ID returns the task's position in program order.
func (t *Task) ID() int { return t.id }

// Graph is an extent-declared task DAG under construction.
type Graph struct {
	tasks []*Task
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Len returns the number of tasks added so far.
func (g *Graph) Len() int { return len(g.tasks) }

// Tasks returns the tasks in program order (shared slice; callers must not
// mutate).
func (g *Graph) Tasks() []*Task { return g.tasks }

// Add appends t in program order and infers its dependencies: t waits on
// every earlier task whose writes overlap t's reads or writes, or whose
// reads overlap t's writes. Read-read sharing never orders tasks. Add
// returns t for chaining.
func (g *Graph) Add(t *Task) *Task {
	if t.Kind == "" {
		t.Kind = t.Name
	}
	t.id = len(g.tasks)
	for _, prev := range g.tasks {
		if conflicts(prev, t) {
			prev.outs = append(prev.outs, t.id)
			t.nblock++
		}
	}
	g.tasks = append(g.tasks, t)
	return t
}

// conflicts reports whether t must wait for prev: any RAW, WAW or WAR
// overlap between their declared extents.
func conflicts(prev, t *Task) bool {
	for _, w := range prev.Writes {
		for _, r := range t.Reads {
			if w.overlaps(r) {
				return true
			}
		}
		for _, w2 := range t.Writes {
			if w.overlaps(w2) {
				return true
			}
		}
	}
	for _, r := range prev.Reads {
		for _, w := range t.Writes {
			if r.overlaps(w) {
				return true
			}
		}
	}
	return false
}

// Options configures one Graph.Run.
type Options struct {
	// Workers is the worker-pool width (default 2).
	Workers int

	// Affinity switches residency-aware placement on. Off, the pool runs
	// locality-blind work stealing over per-worker deques — the baseline the
	// A/B ablation compares against.
	Affinity bool

	// Node is the staging node placement is scored against (where task
	// inputs are cached); nil uses the node Graph.Run is called at.
	Node *topo.Node

	// Profile, when non-nil, supplies compute-time estimates per task Kind
	// and is fed every completed task, so estimates sharpen as the run
	// progresses. Import a ProfileSnapshot to warm-start it.
	Profile *sched.ProfileScheduler
}

// Stats reports how the pool dispatched the graph.
type Stats struct {
	// Tasks is the number of tasks in the graph.
	Tasks int
	// Pops and Steals count baseline-mode dispatches through the owner and
	// thief deque paths.
	Pops, Steals int64
	// AffinityPicks counts affinity-mode placements.
	AffinityPicks int64
	// SavedBytes is how many declared input bytes affinity placement found
	// already resident at the staging node — edge crossings the schedule
	// avoided paying.
	SavedBytes int64
}

// fetchSeconds estimates the time to move n bytes from src's node into the
// staging node: bytes over the bottleneck of the source device's read
// bandwidth and the destination memory's write bandwidth. A coarse
// first-order price — the scorer only needs candidate ranking, not exact
// latency.
func fetchSeconds(src *core.Buffer, at *topo.Node, n int64) float64 {
	if n <= 0 {
		return 0
	}
	var bw float64
	sn := src.Node()
	switch {
	case sn.Store != nil:
		bw = sn.Store.Device().Profile().ReadBW
	case sn.Mem != nil:
		bw = sn.Mem.Profile().ReadBW
	}
	if at != nil && at.Mem != nil {
		if w := at.Mem.Profile().WriteBW; w > 0 && (bw <= 0 || w < bw) {
			bw = w
		}
	}
	if bw <= 0 {
		return 0
	}
	return float64(n) / bw
}

// firstErr latches the first error a worker reports.
type firstErr struct{ err error }

func (f *firstErr) record(err error) {
	if err != nil && f.err == nil {
		f.err = err
	}
}
func (f *firstErr) failed() bool { return f.err != nil }

// Run executes the graph on a pool of workers spawned at c's node and
// returns dispatch statistics plus the first task error (remaining tasks
// are skipped once an error is observed). Placement decisions are counted
// in the metrics registry (northup_sched_* series) and emitted as trace
// instants on the queue track, so both policies are visible in the
// existing tooling.
func (g *Graph) Run(c *core.Ctx, o Options) (*Stats, error) {
	st := &Stats{Tasks: len(g.tasks)}
	if len(g.tasks) == 0 {
		return st, nil
	}
	workers := o.Workers
	if workers < 1 {
		workers = 2
	}
	if workers > len(g.tasks) {
		workers = len(g.tasks)
	}
	node := o.Node
	if node == nil {
		node = c.Node()
	}

	rt := c.Runtime()
	engine := c.Proc().Engine()
	traceOn := rt.TraceRecorder() != nil
	metricsOn := rt.MetricsEnabled()

	nblock := make([]int, len(g.tasks))
	for i, t := range g.tasks {
		nblock[i] = t.nblock
	}

	// tokens carries one send per task that becomes ready; its capacity
	// covers the whole graph so sends never block, and closing it (all done,
	// or first error) releases every idle worker.
	tokens := sim.NewChan(engine, len(g.tasks))
	closed := false
	closeTokens := func() {
		if !closed {
			closed = true
			tokens.Close()
		}
	}
	signal := func() {
		if !closed {
			tokens.TrySend(struct{}{})
		}
	}

	var fe firstErr
	completed := 0

	depthSlot := rt.NewQueueDepthSlot(node.ID)
	defer depthSlot.Close()

	if o.Affinity {
		g.runAffinity(c, o, st, node, nblock, tokens, &fe, &completed,
			closeTokens, signal, depthSlot, traceOn, metricsOn)
	} else {
		g.runStealing(c, o, st, node, nblock, tokens, &fe, &completed,
			closeTokens, signal, depthSlot, traceOn, metricsOn)
	}
	return st, fe.err
}

// execute runs one placed task on a worker context, feeding the profile and
// emitting the placement telemetry. It returns false when the run must
// abort.
func (g *Graph) execute(sub *core.Ctx, o Options, node *topo.Node, id int,
	policy string, saved int64, fe *firstErr, traceOn, metricsOn bool) bool {

	t := g.tasks[id]
	if metricsOn {
		sub.Runtime().NoteSchedPlacement(policy, node.ID, saved)
	}
	if traceOn {
		sub.TraceInstant(trace.TrackQueue, "place", int64(t.id))
	}
	start := sub.Proc().Now()
	err := sub.Task(t.Kind, int64(t.Cost), t.Run)
	if err != nil {
		fe.record(err)
		return false
	}
	if o.Profile != nil {
		o.Profile.Record(t.Kind, t.Cost, sub.Proc().Now()-start)
	}
	return true
}

// runStealing is the locality-blind baseline: per-worker deques, initially
// round-robin partitioned, owners popping their own tails and stealing from
// siblings when dry — the same topology every app's bespoke scheduler used.
func (g *Graph) runStealing(c *core.Ctx, o Options, st *Stats, node *topo.Node,
	nblock []int, tokens *sim.Chan, fe *firstErr, completed *int,
	closeTokens, signal func(), depthSlot *core.QueueDepthSlot, traceOn, metricsOn bool) {

	workers := o.Workers
	if workers < 1 {
		workers = 2
	}
	if workers > len(g.tasks) {
		workers = len(g.tasks)
	}
	queues := make([]*sched.Deque[int], workers)
	for i := range queues {
		queues[i] = sched.NewDeque[int](fmt.Sprintf("tg%d", i))
	}
	monitors := make([]sched.Monitor, len(queues))
	for i, q := range queues {
		monitors[i] = q
	}
	detach := node.AttachQueues(monitors...)
	defer detach()

	rtm := c.Runtime()
	if traceOn || metricsOn {
		noteDepth := func() {
			if metricsOn {
				depthSlot.Set(int64(sched.TotalLen(queues)))
			}
		}
		for i, q := range queues {
			qi := int64(i)
			q.OnSteal = func() {
				if traceOn {
					c.TraceInstant(trace.TrackQueue, "steal", qi)
				}
				if metricsOn {
					rtm.NoteSteals(1)
				}
				noteDepth()
			}
			if metricsOn {
				q.OnPush = noteDepth
				q.OnPop = func() {
					rtm.NotePops(1)
					noteDepth()
				}
			}
		}
	}

	// Initially ready tasks spread round-robin in program order, the layout
	// sched.Partition gives the apps' hand-wired queues.
	k := 0
	for id := range g.tasks {
		if nblock[id] == 0 {
			queues[k%workers].PushTail(id)
			k++
			signal()
		}
	}

	wg := sim.NewWaitGroup(c.Runtime().Engine())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		w := w
		own := queues[w]
		c.Spawn(fmt.Sprintf("tg-worker%d", w), c.Node(), func(sub *core.Ctx) error {
			defer wg.Done()
			for {
				if _, ok := tokens.Recv(sub.Proc()); !ok {
					return nil
				}
				if fe.failed() {
					continue // draining after an abort
				}
				id, ok := own.PopTail()
				policy := "queue"
				if !ok {
					if id, _, ok = sched.StealFrom(queues, w); !ok {
						continue
					}
					policy = "steal"
				}
				if !g.execute(sub, o, node, id, policy, 0, fe, traceOn, metricsOn) {
					closeTokens()
					continue
				}
				*completed++
				// Newly unblocked tasks land on the completing worker's own
				// queue: successors follow their producer unless stolen.
				for _, d := range g.tasks[id].outs {
					nblock[d]--
					if nblock[d] == 0 {
						own.PushTail(d)
						signal()
					}
				}
				if *completed == len(g.tasks) {
					closeTokens()
				}
			}
		})
	}
	wg.Wait(c.Proc())
	st.Pops, st.Steals = sched.TotalStats(queues)
}

// runAffinity is the residency-aware policy: a shared ready list each idle
// worker scores in full, picking the candidate with the lowest estimated
// compute + bytes-to-move price. Ties break toward the task overlapping the
// worker's previous inputs (locality bias), then the lowest task ID, so the
// schedule is a pure function of graph order and cache state.
func (g *Graph) runAffinity(c *core.Ctx, o Options, st *Stats, node *topo.Node,
	nblock []int, tokens *sim.Chan, fe *firstErr, completed *int,
	closeTokens, signal func(), depthSlot *core.QueueDepthSlot, traceOn, metricsOn bool) {

	workers := o.Workers
	if workers < 1 {
		workers = 2
	}
	if workers > len(g.tasks) {
		workers = len(g.tasks)
	}
	rt := c.Runtime()

	var ready []int
	noteDepth := func() {
		if metricsOn {
			depthSlot.Set(int64(len(ready)))
		}
	}
	for id := range g.tasks {
		if nblock[id] == 0 {
			ready = append(ready, id)
			signal()
		}
	}
	noteDepth()

	// residency returns how many of t's declared input bytes need no edge
	// crossing right now: extents already living at the staging level, plus
	// extents of higher-level sources staged (or in flight) in node's cache.
	// missing is the complement — what a placement would have to move.
	residency := func(t *Task) (resident, missing int64, moveSec float64) {
		for _, ex := range t.Reads {
			if ex.Buf == nil || ex.Len <= 0 {
				continue
			}
			if ex.Buf.Node() == node {
				continue // already at the staging level: free either way
			}
			r := rt.CacheResidentBytes(node, ex.Buf, ex.Off, ex.Len)
			resident += r
			miss := ex.Len - r
			missing += miss
			moveSec += fetchSeconds(ex.Buf, node, miss)
		}
		return resident, missing, moveSec
	}

	score := func(t *Task) (float64, int64) {
		var computeSec float64
		if o.Profile != nil {
			if pt, ok := o.Profile.Predict(t.Kind, t.Cost); ok {
				computeSec = pt.Seconds()
			}
		}
		resident, _, moveSec := residency(t)
		return computeSec + moveSec, resident
	}

	wg := sim.NewWaitGroup(rt.Engine())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		w := w
		c.Spawn(fmt.Sprintf("tg-worker%d", w), c.Node(), func(sub *core.Ctx) error {
			defer wg.Done()
			var last *Task
			for {
				if _, ok := tokens.Recv(sub.Proc()); !ok {
					return nil
				}
				if fe.failed() || len(ready) == 0 {
					continue
				}
				// Score every ready candidate; lowest price wins.
				best, bestSaved := -1, int64(0)
				var bestScore float64
				var bestAffin int64
				for i, id := range ready {
					t := g.tasks[id]
					s, resident := score(t)
					affin := int64(0)
					if last != nil {
						for _, ex := range t.Reads {
							for _, lx := range last.Reads {
								affin += overlapBytes(ex, lx)
							}
						}
					}
					take := best < 0 || s < bestScore ||
						(s == bestScore && (affin > bestAffin ||
							(affin == bestAffin && ready[best] > id)))
					if take {
						best, bestScore, bestAffin, bestSaved = i, s, affin, resident
					}
				}
				id := ready[best]
				ready = append(ready[:best], ready[best+1:]...)
				noteDepth()
				st.AffinityPicks++
				st.SavedBytes += bestSaved
				last = g.tasks[id]
				if !g.execute(sub, o, node, id, "affinity", bestSaved, fe, traceOn, metricsOn) {
					closeTokens()
					continue
				}
				*completed++
				for _, d := range g.tasks[id].outs {
					nblock[d]--
					if nblock[d] == 0 {
						ready = append(ready, d)
						signal()
					}
				}
				noteDepth()
				if *completed == len(g.tasks) {
					closeTokens()
				}
			}
		})
	}
	wg.Wait(c.Proc())
}
