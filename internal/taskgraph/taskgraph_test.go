package taskgraph

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topo"
)

// newStagedRuntime builds a 2-level SSD+DRAM tree with the staging cache on.
func newStagedRuntime(cacheMiB int64) (*core.Runtime, *topo.Node) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64, DRAMMiB: 8, WithCPU: true})
	opts := core.DefaultOptions()
	opts.Phantom = true
	if cacheMiB > 0 {
		opts.Cache.Enabled = true
		opts.Cache.CapacityBytes = cacheMiB << 20
	}
	rt := core.NewRuntime(e, tree, opts)
	return rt, tree.Root().Children[0]
}

func extentTask(name string, reads, writes []Extent, order *[]string) *Task {
	return &Task{
		Name:   name,
		Reads:  reads,
		Writes: writes,
		Cost:   1,
		Run: func(c *core.Ctx) error {
			*order = append(*order, name)
			return nil
		},
	}
}

func TestDependencyInference(t *testing.T) {
	rt, _ := newStagedRuntime(0)
	var fa, fb *core.Buffer
	_, err := rt.Run("setup", func(c *core.Ctx) error {
		var err error
		if fa, err = c.Alloc(4096); err != nil {
			return err
		}
		fb, err = c.Alloc(4096)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	g := New()
	var order []string
	w := g.Add(extentTask("writer", nil, []Extent{{fa, 0, 1024}}, &order))
	raw := g.Add(extentTask("raw", []Extent{{fa, 512, 512}}, nil, &order))
	waw := g.Add(extentTask("waw", nil, []Extent{{fa, 0, 256}}, &order))
	war := g.Add(extentTask("war", nil, []Extent{{fa, 768, 512}}, &order)) // WAR on raw's read
	free := g.Add(extentTask("free", []Extent{{fb, 0, 1024}}, nil, &order))
	rr := g.Add(extentTask("rr", []Extent{{fb, 0, 1024}}, nil, &order)) // read-read: no edge

	if w.nblock != 0 || raw.nblock != 1 || waw.nblock != 1 {
		t.Fatalf("RAW/WAW inference wrong: %d %d %d", w.nblock, raw.nblock, waw.nblock)
	}
	// war overlaps writer's write (WAW) and raw's read (WAR).
	if war.nblock != 2 {
		t.Fatalf("WAR inference wrong: nblock=%d", war.nblock)
	}
	if free.nblock != 0 || rr.nblock != 0 {
		t.Fatalf("read-read sharing created edges: %d %d", free.nblock, rr.nblock)
	}
}

func TestRunExecutesAllRespectingDeps(t *testing.T) {
	for _, affinity := range []bool{false, true} {
		rt, dram := newStagedRuntime(4)
		var buf *core.Buffer
		if _, err := rt.Run("setup", func(c *core.Ctx) error {
			var err error
			buf, err = c.Alloc(1 << 20)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		g := New()
		var order []string
		const chains = 4
		for ch := 0; ch < chains; ch++ {
			ext := []Extent{{buf, int64(ch) * 1024, 1024}}
			for k := 0; k < 3; k++ {
				g.Add(extentTask(fmt.Sprintf("c%d.%d", ch, k), ext, ext, &order))
			}
		}
		_, err := rt.Run("run", func(c *core.Ctx) error {
			st, err := g.Run(c, Options{Workers: 3, Affinity: affinity, Node: dram})
			if err != nil {
				return err
			}
			if st.Tasks != chains*3 {
				return fmt.Errorf("st.Tasks=%d", st.Tasks)
			}
			if affinity && st.AffinityPicks != chains*3 {
				return fmt.Errorf("AffinityPicks=%d", st.AffinityPicks)
			}
			if !affinity && st.Pops+st.Steals != chains*3 {
				return fmt.Errorf("pops+steals=%d", st.Pops+st.Steals)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("affinity=%v: %v", affinity, err)
		}
		if len(order) != chains*3 {
			t.Fatalf("affinity=%v: ran %d of %d tasks", affinity, len(order), chains*3)
		}
		// Within each chain the k-order must be preserved.
		pos := map[string]int{}
		for i, name := range order {
			pos[name] = i
		}
		for ch := 0; ch < chains; ch++ {
			for k := 1; k < 3; k++ {
				a := pos[fmt.Sprintf("c%d.%d", ch, k-1)]
				b := pos[fmt.Sprintf("c%d.%d", ch, k)]
				if a >= b {
					t.Fatalf("affinity=%v: chain %d ran out of order", affinity, ch)
				}
			}
		}
	}
}

func TestFirstErrorAborts(t *testing.T) {
	for _, affinity := range []bool{false, true} {
		rt, dram := newStagedRuntime(0)
		boom := errors.New("boom")
		g := New()
		ran := 0
		g.Add(&Task{Name: "bad", Cost: 1, Run: func(c *core.Ctx) error { return boom }})
		for i := 0; i < 8; i++ {
			i := i
			var dep []Extent
			g.Add(&Task{Name: fmt.Sprintf("t%d", i), Cost: 1, Reads: dep,
				Run: func(c *core.Ctx) error { ran++; return nil }})
		}
		_, err := rt.Run("run", func(c *core.Ctx) error {
			_, err := g.Run(c, Options{Workers: 2, Affinity: affinity, Node: dram})
			return err
		})
		if !errors.Is(err, boom) {
			t.Fatalf("affinity=%v: err=%v", affinity, err)
		}
	}
}

// placements runs a fixed random graph and returns the execution order.
func placements(t *testing.T, seed int64, affinity bool, prof *sched.ProfileScheduler) []string {
	t.Helper()
	rt, dram := newStagedRuntime(2)
	var src *core.Buffer
	if _, err := rt.Run("setup", func(c *core.Ctx) error {
		var err error
		src, err = c.Alloc(8 << 20)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	g := New()
	var order []string
	// A deterministic pseudo-random extent layout derived from the seed.
	state := uint64(seed)*2654435761 + 12345
	next := func(mod int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64(state>>33) % mod
	}
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("t%02d", i)
		off := next(7) * (1 << 20)
		ln := int64(1<<20) + next(1<<19)
		g.Add(&Task{
			Name: name, Kind: "k", Cost: float64(ln),
			Reads: []Extent{{src, off, ln}},
			Run: func(c *core.Ctx) error {
				order = append(order, name)
				return c.Descend(dram, func(dc *core.Ctx) error {
					_, err := dc.RunCPU(float64(ln), float64(ln), func() {})
					return err
				})
			},
		})
	}
	if _, err := rt.Run("run", func(c *core.Ctx) error {
		_, err := g.Run(c, Options{Workers: 3, Affinity: affinity, Node: dram, Profile: prof})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return order
}

func TestPlacementDeterministic(t *testing.T) {
	// The same graph must schedule identically across repeated runs, for
	// both policies, with and without a warm-started profile.
	f := func(seed int64) bool {
		for _, affinity := range []bool{false, true} {
			a := placements(t, seed, affinity, sched.NewProfileScheduler())
			b := placements(t, seed, affinity, sched.NewProfileScheduler())
			if !reflect.DeepEqual(a, b) {
				t.Logf("seed=%d affinity=%v: %v != %v", seed, affinity, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileFeedsBack(t *testing.T) {
	prof := sched.NewProfileScheduler()
	placements(t, 1, true, prof)
	if prof.Samples("k") == 0 {
		t.Fatal("profile recorded no samples")
	}
	// Export/import round-trips the learned state for warm starts.
	data, err := prof.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	warm := sched.NewProfileScheduler()
	if err := warm.ImportJSON(data); err != nil {
		t.Fatal(err)
	}
	if warm.Samples("k") != prof.Samples("k") {
		t.Fatalf("round-trip lost samples: %d != %d", warm.Samples("k"), prof.Samples("k"))
	}
	p1, ok1 := prof.Predict("k", 1<<20)
	p2, ok2 := warm.Predict("k", 1<<20)
	if !ok1 || !ok2 || p1 != p2 {
		t.Fatalf("round-trip changed prediction: %v/%v %v/%v", p1, ok1, p2, ok2)
	}
}

func TestOverlapBytes(t *testing.T) {
	rt, _ := newStagedRuntime(0)
	var b *core.Buffer
	if _, err := rt.Run("setup", func(c *core.Ctx) error {
		var err error
		b, err = c.Alloc(4096)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, o Extent
		want int64
	}{
		{Extent{b, 0, 100}, Extent{b, 50, 100}, 50},
		{Extent{b, 0, 100}, Extent{b, 100, 100}, 0},
		{Extent{b, 0, 100}, Extent{b, 0, 100}, 100},
		{Extent{b, 10, 10}, Extent{b, 0, 100}, 10},
		{Extent{nil, 0, 100}, Extent{b, 0, 100}, 0},
	}
	for i, tc := range cases {
		if got := overlapBytes(tc.a, tc.o); got != tc.want {
			t.Fatalf("case %d: got %d want %d", i, got, tc.want)
		}
	}
}
