package xfer

import "testing"

// BenchmarkCopy2D measures the strided block-copy primitive on a 256x256
// float32 tile extracted from a 1024-wide matrix.
func BenchmarkCopy2D(b *testing.B) {
	src := make([]byte, 1024*1024*4)
	dst := make([]byte, 256*256*4)
	b.SetBytes(256 * 256 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Copy2D(dst, 0, 256*4, src, 0, 1024*4, 256, 256*4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransposeF32 measures the blocked transpose on a 512x512 tile.
func BenchmarkTransposeF32(b *testing.B) {
	src := make([]float32, 512*512)
	dst := make([]float32, 512*512)
	b.SetBytes(512 * 512 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := TransposeF32(dst, src, 512, 512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatherStride measures border packing (a 4-byte-per-8KiB-stride
// column gather, HotSpot's east/west border case).
func BenchmarkGatherStride(b *testing.B) {
	src := make([]float32, 2048*2048)
	dst := make([]float32, 2048)
	b.SetBytes(2048 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := GatherStrideF32(dst, src, 2047, 2048, 2048); err != nil {
			b.Fatal(err)
		}
	}
}
