package xfer

import (
	"testing"
	"testing/quick"

	"repro/internal/view"
)

func TestCopy2DExtractsBlock(t *testing.T) {
	// 4x4 source matrix of bytes; extract the center 2x2.
	src := []byte{
		0, 1, 2, 3,
		4, 5, 6, 7,
		8, 9, 10, 11,
		12, 13, 14, 15,
	}
	dst := make([]byte, 4)
	if err := Copy2D(dst, 0, 2, src, 4*1+1, 4, 2, 2); err != nil {
		t.Fatal(err)
	}
	want := []byte{5, 6, 9, 10}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestCopy2DInsertsBlock(t *testing.T) {
	dst := make([]byte, 16)
	src := []byte{1, 2, 3, 4}
	if err := Copy2D(dst, 4*2+2, 4, src, 0, 2, 2, 2); err != nil {
		t.Fatal(err)
	}
	if dst[10] != 1 || dst[11] != 2 || dst[14] != 3 || dst[15] != 4 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestCopy2DBoundsChecked(t *testing.T) {
	src := make([]byte, 16)
	dst := make([]byte, 4)
	if err := Copy2D(dst, 0, 2, src, 12, 4, 2, 2); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if err := Copy2D(dst, 2, 2, src, 0, 4, 2, 2); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	if err := Copy2D(dst, 0, 2, src, 0, 4, -1, 2); err == nil {
		t.Fatal("negative rows accepted")
	}
	if err := Copy2D(dst, 0, 2, src, 0, 4, 0, 0); err != nil {
		t.Fatalf("empty copy failed: %v", err)
	}
}

func TestCopy2DRoundTrip(t *testing.T) {
	// Property: extracting a block and re-inserting it restores the data.
	f := func(seed []byte, rRaw, cRaw uint8) bool {
		rows, cols := int(rRaw%6)+1, int(cRaw%6)+1
		full := make([]byte, (rows+2)*(cols+2))
		for i := range full {
			if len(seed) > 0 {
				full[i] = seed[i%len(seed)]
			}
		}
		orig := append([]byte(nil), full...)
		stride := int64(cols + 2)
		block := make([]byte, rows*cols)
		if Copy2D(block, 0, int64(cols), full, stride+1, stride, rows, cols) != nil {
			return false
		}
		// Zero the region, then re-insert.
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				full[(r+1)*int(stride)+1+c] = 0
			}
		}
		if Copy2D(full, stride+1, stride, block, 0, int64(cols), rows, cols) != nil {
			return false
		}
		for i := range full {
			if full[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(vals []float32, rRaw uint8) bool {
		rows := int(rRaw%8) + 1
		if len(vals) < rows {
			return true
		}
		cols := len(vals) / rows
		if cols == 0 {
			return true
		}
		src := vals[:rows*cols]
		tmp := make([]float32, rows*cols)
		back := make([]float32, rows*cols)
		if TransposeF32(tmp, src, rows, cols) != nil {
			return false
		}
		if TransposeF32(back, tmp, cols, rows) != nil {
			return false
		}
		for i := range src {
			if view.F32Bytes(src[i : i+1])[0] != view.F32Bytes(back[i : i+1])[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeKnown(t *testing.T) {
	src := []float32{1, 2, 3, 4, 5, 6} // 2x3
	dst := make([]float32, 6)
	if err := TransposeF32(dst, src, 2, 3); err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 4, 2, 5, 3, 6}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v", dst)
		}
	}
	if err := TransposeF32(dst[:2], src, 2, 3); err == nil {
		t.Fatal("short dst accepted")
	}
}

func TestGatherScatterInverse(t *testing.T) {
	f := func(vals []float32, startRaw, strideRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		start := int(startRaw) % len(vals)
		stride := int(strideRaw%5) + 1
		count := (len(vals) - 1 - start) / stride
		if count <= 0 {
			return true
		}
		packed := make([]float32, count)
		if GatherStrideF32(packed, vals, start, stride, count) != nil {
			return false
		}
		clone := append([]float32(nil), vals...)
		if ScatterStrideF32(clone, packed, start, stride, count) != nil {
			return false
		}
		for i := range vals {
			a, b := vals[i], clone[i]
			if a != b && !(a != a && b != b) { // NaN-tolerant
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherBounds(t *testing.T) {
	src := make([]float32, 10)
	dst := make([]float32, 5)
	if err := GatherStrideF32(dst, src, 8, 3, 3); err == nil {
		t.Fatal("out-of-range gather accepted")
	}
	if err := GatherStrideF32(dst[:1], src, 0, 1, 5); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := ScatterStrideF32(src, dst, 9, 5, 2); err == nil {
		t.Fatal("out-of-range scatter accepted")
	}
	if err := GatherStrideF32(dst, src, 0, 1, 0); err != nil {
		t.Fatal("empty gather rejected")
	}
}
