// Package xfer provides the functional data-movement primitives under
// Northup's unified move_data interface: strided 2-D block copies (the
// dCopyBlockH2D/D2H operations of the paper's Listing 2), layout
// transformation (paper §VI "Data Layout"), and border packing support.
//
// These are pure host-side byte manipulations; virtual-time charging is done
// by the runtime (package core) against the device and link models.
package xfer

import "fmt"

// Copy2D copies a rows x rowBytes block between byte slices with independent
// row strides (in bytes). Source and destination must not overlap.
func Copy2D(dst []byte, dstOff, dstStride int64, src []byte, srcOff, srcStride int64, rows int, rowBytes int) error {
	if rows < 0 || rowBytes < 0 {
		return fmt.Errorf("xfer: negative block shape %dx%d", rows, rowBytes)
	}
	if rows == 0 || rowBytes == 0 {
		return nil
	}
	lastSrc := srcOff + int64(rows-1)*srcStride + int64(rowBytes)
	lastDst := dstOff + int64(rows-1)*dstStride + int64(rowBytes)
	if srcOff < 0 || lastSrc > int64(len(src)) {
		return fmt.Errorf("xfer: source block [%d,%d) outside %d bytes", srcOff, lastSrc, len(src))
	}
	if dstOff < 0 || lastDst > int64(len(dst)) {
		return fmt.Errorf("xfer: destination block [%d,%d) outside %d bytes", dstOff, lastDst, len(dst))
	}
	for r := 0; r < rows; r++ {
		s := srcOff + int64(r)*srcStride
		d := dstOff + int64(r)*dstStride
		copy(dst[d:d+int64(rowBytes)], src[s:s+int64(rowBytes)])
	}
	return nil
}

// TransposeF32 transposes a rows x cols row-major float32 matrix into dst
// (cols x rows, row-major): the row-major <-> column-major layout transform
// the paper suggests applying as data migrates across levels (§VI).
func TransposeF32(dst, src []float32, rows, cols int) error {
	if len(src) < rows*cols || len(dst) < rows*cols {
		return fmt.Errorf("xfer: transpose %dx%d needs %d elements (src %d, dst %d)",
			rows, cols, rows*cols, len(src), len(dst))
	}
	// Blocked transpose for cache friendliness on large matrices.
	const bs = 32
	for i0 := 0; i0 < rows; i0 += bs {
		imax := i0 + bs
		if imax > rows {
			imax = rows
		}
		for j0 := 0; j0 < cols; j0 += bs {
			jmax := j0 + bs
			if jmax > cols {
				jmax = cols
			}
			for i := i0; i < imax; i++ {
				for j := j0; j < jmax; j++ {
					dst[j*rows+i] = src[i*cols+j]
				}
			}
		}
	}
	return nil
}

// GatherStrideF32 packs count elements spaced stride apart (starting at
// start) from src into dst — how HotSpot-2D's non-contiguous east/west
// borders are packed into compact vectors before moving down (§IV-B).
func GatherStrideF32(dst, src []float32, start, stride, count int) error {
	if count < 0 {
		return fmt.Errorf("xfer: negative gather count %d", count)
	}
	if count == 0 {
		return nil
	}
	last := start + (count-1)*stride
	if start < 0 || last < 0 || last >= len(src) {
		return fmt.Errorf("xfer: gather range [%d..%d] outside %d elements", start, last, len(src))
	}
	if len(dst) < count {
		return fmt.Errorf("xfer: gather dst %d < count %d", len(dst), count)
	}
	for i := 0; i < count; i++ {
		dst[i] = src[start+i*stride]
	}
	return nil
}

// ScatterStrideF32 is the inverse of GatherStrideF32.
func ScatterStrideF32(dst, src []float32, start, stride, count int) error {
	if count < 0 {
		return fmt.Errorf("xfer: negative scatter count %d", count)
	}
	if count == 0 {
		return nil
	}
	last := start + (count-1)*stride
	if start < 0 || last < 0 || last >= len(dst) {
		return fmt.Errorf("xfer: scatter range [%d..%d] outside %d elements", start, last, len(dst))
	}
	if len(src) < count {
		return fmt.Errorf("xfer: scatter src %d < count %d", len(src), count)
	}
	for i := 0; i < count; i++ {
		dst[start+i*stride] = src[i]
	}
	return nil
}
