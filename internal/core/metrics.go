package core

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file wires the continuous-metrics registry (package obs) into the
// runtime. The design mirrors tracing.go's single-charge-point rule: busy
// time, span counts and span-duration histograms are fed from chargeSpan —
// the same call that feeds the Breakdown — so metric totals reconcile with
// Breakdown totals bit-for-bit by construction. Sources that mutate state
// at scattered sites (cache stats, resilience counters, the fault
// injector, the trace ring's drop count) are mirrored into the registry by
// syncMetrics, which raises each counter to its source's cumulative total;
// the sync runs at every sampler tick and at the end of Run, so exports and
// sampled series always agree with the runtime's own accounting.
//
// With Options.Metrics nil (the default) rt.met is nil and every hook
// collapses to one branch with zero allocations, the same contract the
// trace layer keeps.

// Metric names. One namespace ("northup_"), stable across PRs: the
// committed perf baseline keys on these strings.
const (
	mBusyNS       = "northup_busy_ns_total"
	mSpans        = "northup_spans_total"
	mSpanNS       = "northup_span_ns"
	mMovedBytes   = "northup_moved_bytes_total"
	mBWUtil       = "northup_node_bw_utilization"
	mCacheHitRate = "northup_cache_hit_rate"
	mQueueDepth   = "northup_queue_depth"
	mQueuePops    = "northup_queue_pops_total"
	mQueueSteals  = "northup_queue_steals_total"
	mTraceDropped = "northup_trace_dropped_events"
	mElapsedNS    = "northup_elapsed_ns"

	mStreamMoves     = "northup_stream_moves_total"
	mStreamSubChunks = "northup_stream_subchunks_total"
	mStreamHopMoves  = "northup_stream_hop_moves_total"
	mStreamBytes     = "northup_stream_bytes_total"
	mStreamInflight  = "northup_stream_inflight"
	mStreamRing      = "northup_stream_ring_occupancy"
	mStreamHopBW     = "northup_stream_hop_bw"

	mSchedSavedBytes = "northup_sched_moved_bytes_saved_total"
	mSchedPlacements = "northup_sched_placements_total"
	mSchedTasks      = "northup_sched_tasks_total"
)

// spanNSBuckets are the fixed span-duration histogram bounds in
// nanoseconds: 1µs to 10s in decades. Fixed bounds keep cluster rollup
// associative (obs.Histogram's merge contract).
var spanNSBuckets = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// runtimeMetrics holds the registry handles the runtime's hot paths write
// through. All handles are resolved once at construction; per-node handles
// are resolved lazily on first use and memoised.
type runtimeMetrics struct {
	reg     *obs.Registry
	sampler *obs.Sampler

	// Per-category instruments, indexed by trace.Category.
	busy   []*obs.Counter
	spans  []*obs.Counter
	spanNS []*obs.Histogram

	// Per-node traffic, lazily resolved: moved bytes and the derived
	// bandwidth-utilization gauge (cumulative bytes / elapsed × nominal BW).
	movedBytes map[int]*obs.Counter
	bwUtil     map[int]*obs.Gauge
	nominalBW  map[int]float64 // node -> nominal read bandwidth, bytes/s

	// Cache counters, synced from the Breakdown's CacheStats.
	cacheHits, cacheMisses, cacheEvictions, cachePrefetches,
	cachePrefetchHits, cacheBypasses, cacheInvalidations,
	cachePrefetchErrors, cacheHitBytes, cacheMissBytes *obs.Counter
	cacheHitRate *obs.Gauge

	// Streamed-move instruments (stream.go): scalar totals synced from
	// StreamStats, the live in-flight gauge, and lazy per-node gauges for
	// staging-ring occupancy and per-hop achieved bandwidth.
	streamMoves, streamSubChunks, streamHopMoves, streamBytes *obs.Counter
	streamInflight                                            *obs.Gauge
	streamRing, streamHopBW                                   map[int]*obs.Gauge

	// Resilience counters, synced from ResilienceStats.
	resFaults, resRetries, resTimeouts, resFailovers, resGaveUp *obs.Counter

	// Injector counters, synced from fault.Injector.Stats.
	faultTransferFails, faultTransferDelays, faultAllocFails,
	faultOfflineRejects *obs.Counter

	// Scheduler instruments: per-node queue-depth gauges (lazy) plus pop
	// and steal totals, driven by the Note helpers from leaf schedulers.
	// The gauge publishes the sum over live QueueDepthSlots, so concurrent
	// schedulers on one node compose additively instead of overwriting
	// each other's absolute depth.
	queueDepth  map[int]*obs.Gauge
	depthTotal  map[int]int64           // node -> sum of live slot depths
	legacySlots map[int]*QueueDepthSlot // NoteQueueDepth's implicit slots
	queuePops   *obs.Counter
	queueSteal  *obs.Counter

	// Task-graph placement instruments (internal/taskgraph): per-policy
	// decision counts, the task total, and the per-node bytes affinity
	// placement avoided re-fetching (lazy, like movedBytes).
	schedPlace map[string]*obs.Counter
	schedSaved map[int]*obs.Counter
	schedTasks *obs.Counter

	traceDropped *obs.Gauge
	elapsed      *obs.Gauge
}

// newRuntimeMetrics registers the runtime's instruments in reg and returns
// the handle set. sampler may be nil (no time series).
func newRuntimeMetrics(rt *Runtime, reg *obs.Registry, sampler *obs.Sampler) *runtimeMetrics {
	m := &runtimeMetrics{reg: reg, sampler: sampler,
		busy:        make([]*obs.Counter, len(trace.Categories)),
		spans:       make([]*obs.Counter, len(trace.Categories)),
		spanNS:      make([]*obs.Histogram, len(trace.Categories)),
		movedBytes:  map[int]*obs.Counter{},
		bwUtil:      map[int]*obs.Gauge{},
		nominalBW:   map[int]float64{},
		queueDepth:  map[int]*obs.Gauge{},
		depthTotal:  map[int]int64{},
		legacySlots: map[int]*QueueDepthSlot{},
		streamRing:  map[int]*obs.Gauge{},
		streamHopBW: map[int]*obs.Gauge{},
		schedPlace:  map[string]*obs.Counter{},
		schedSaved:  map[int]*obs.Counter{},
	}
	for _, c := range trace.Categories {
		lbl := obs.L("cat", c.String())
		m.busy[c] = reg.Counter(mBusyNS, "virtual busy time per execution category", lbl)
		m.spans[c] = reg.Counter(mSpans, "completed spans per execution category", lbl)
		m.spanNS[c] = reg.Histogram(mSpanNS, "span duration distribution", spanNSBuckets, lbl)
	}
	for _, n := range rt.tree.Nodes() {
		if n.Mem != nil {
			m.nominalBW[n.ID] = n.Mem.Profile().ReadBW
		}
	}
	m.cacheHits = reg.Counter("northup_cache_hits_total", "staging-cache fetches served from a resident buffer")
	m.cacheMisses = reg.Counter("northup_cache_misses_total", "staging-cache fetches that crossed the edge")
	m.cacheEvictions = reg.Counter("northup_cache_evictions_total", "staging-cache entries evicted")
	m.cachePrefetches = reg.Counter("northup_cache_prefetches_total", "lookahead fetches issued")
	m.cachePrefetchHits = reg.Counter("northup_cache_prefetch_hits_total", "prefetched entries that served a demand fetch")
	m.cacheBypasses = reg.Counter("northup_cache_bypasses_total", "cached fetches that fell back to a plain move")
	m.cacheInvalidations = reg.Counter("northup_cache_invalidations_total", "entries dropped after their source was overwritten")
	m.cachePrefetchErrors = reg.Counter("northup_cache_prefetch_errors_total", "lookahead fills that failed after exhausting retries")
	m.cacheHitBytes = reg.Counter("northup_cache_hit_bytes_total", "bytes served from resident buffers")
	m.cacheMissBytes = reg.Counter("northup_cache_miss_bytes_total", "bytes fetched across the edge")
	m.cacheHitRate = reg.Gauge(mCacheHitRate, "hits / (hits + misses)")

	m.resFaults = reg.Counter("northup_faults_total", "transient failures observed before retrying")
	m.resRetries = reg.Counter("northup_retries_total", "re-attempts made")
	m.resTimeouts = reg.Counter("northup_timeouts_total", "operations that exceeded the per-op deadline")
	m.resFailovers = reg.Counter("northup_failovers_total", "leaf tasks re-routed to a sibling processor")
	m.resGaveUp = reg.Counter("northup_gave_up_total", "operations that exhausted retries")

	m.faultTransferFails = reg.Counter("northup_fault_transfer_fails_total", "transfers failed outright by the injector")
	m.faultTransferDelays = reg.Counter("northup_fault_transfer_delays_total", "transfers stalled by the injector")
	m.faultAllocFails = reg.Counter("northup_fault_alloc_fails_total", "allocations transiently refused by the injector")
	m.faultOfflineRejects = reg.Counter("northup_fault_offline_rejects_total", "operations refused inside an outage window")

	m.queuePops = reg.Counter(mQueuePops, "local deque pops across leaf schedulers")
	m.queueSteal = reg.Counter(mQueueSteals, "work-steal operations across leaf schedulers")
	m.schedTasks = reg.Counter(mSchedTasks, "tasks placed by the task-graph scheduler")

	m.streamMoves = reg.Counter(mStreamMoves, "streamed moves issued")
	m.streamSubChunks = reg.Counter(mStreamSubChunks, "sub-chunks across all streamed moves")
	m.streamHopMoves = reg.Counter(mStreamHopMoves, "per-hop sub-chunk moves driven by the stream engine")
	m.streamBytes = reg.Counter(mStreamBytes, "payload bytes delivered by streamed moves")
	m.streamInflight = reg.Gauge(mStreamInflight, "sub-chunks currently in the pipe")

	m.traceDropped = reg.Gauge(mTraceDropped, "events the bounded trace ring dropped")
	m.elapsed = reg.Gauge(mElapsedNS, "virtual time at the last metrics sync")
	return m
}

// nodeLabel renders a node-ID label. Node counts are small and stable, so
// the handle maps memoise away the strconv after first use.
func nodeLabel(node int) obs.Label { return obs.L("node", strconv.Itoa(node)) }

// noteSpan is chargeSpan's metrics half: the identical duration the
// Breakdown received, plus span count, duration histogram, and — for data
// movement — per-node byte totals.
func (m *runtimeMetrics) noteSpan(lane trace.Lane, cat trace.Category, start, end sim.Time, value int64) {
	if cat < 0 || int(cat) >= len(m.busy) {
		return
	}
	d := int64(end - start)
	m.busy[cat].Add(d)
	m.spans[cat].Inc()
	m.spanNS[cat].Observe(d)
	if (cat == trace.Transfer || cat == trace.IO) && value > 0 && lane.Node >= 0 {
		c, ok := m.movedBytes[lane.Node]
		if !ok {
			c = m.reg.Counter(mMovedBytes, "bytes moved into each node", nodeLabel(lane.Node))
			m.movedBytes[lane.Node] = c
		}
		c.Add(value)
	}
}

// MetricsEnabled reports whether a registry is attached.
func (rt *Runtime) MetricsEnabled() bool { return rt.met != nil }

// Metrics returns the runtime's registry, nil when metrics are off.
func (rt *Runtime) Metrics() *obs.Registry {
	if rt.met == nil {
		return nil
	}
	return rt.met.reg
}

// MetricsSampler returns the attached sampler (nil without one).
func (rt *Runtime) MetricsSampler() *obs.Sampler {
	if rt.met == nil {
		return nil
	}
	return rt.met.sampler
}

// maybeSample advances the sampler when a tick boundary has passed: gauges
// are refreshed by a sync first so the sampled values are current. Called
// from charge points; one comparison when no sampler is due.
func (rt *Runtime) maybeSample(now sim.Time) {
	if rt.met.sampler.Due(now) {
		rt.syncMetrics(now)
		rt.met.sampler.Observe(now)
	}
}

// SyncMetrics mirrors every scattered stat source into the registry at the
// current virtual time. Exports should call it (Run does, at completion)
// before reading the registry; it is idempotent.
func (rt *Runtime) SyncMetrics() {
	if rt.met == nil {
		return
	}
	rt.syncMetrics(rt.engine.Now())
}

// syncMetrics raises counters to their sources' cumulative totals and
// recomputes derived gauges. rt.met must be non-nil.
func (rt *Runtime) syncMetrics(now sim.Time) {
	m := rt.met

	cs := rt.bd.Cache()
	m.cacheHits.SyncTo(cs.Hits)
	m.cacheMisses.SyncTo(cs.Misses)
	m.cacheEvictions.SyncTo(cs.Evictions)
	m.cachePrefetches.SyncTo(cs.Prefetches)
	m.cachePrefetchHits.SyncTo(cs.PrefetchHits)
	m.cacheBypasses.SyncTo(cs.Bypasses)
	m.cacheInvalidations.SyncTo(cs.Invalidations)
	m.cachePrefetchErrors.SyncTo(cs.PrefetchErrors)
	m.cacheHitBytes.SyncTo(cs.HitBytes)
	m.cacheMissBytes.SyncTo(cs.MissBytes)
	m.cacheHitRate.Set(cs.HitRate())

	m.resFaults.SyncTo(rt.res.Faults)
	m.resRetries.SyncTo(rt.res.Retries)
	m.resTimeouts.SyncTo(rt.res.Timeouts)
	m.resFailovers.SyncTo(rt.res.Failovers)
	m.resGaveUp.SyncTo(rt.res.GaveUp)

	if inj := rt.opts.Faults; inj != nil {
		fs := inj.Stats()
		m.faultTransferFails.SyncTo(fs.TransferFails)
		m.faultTransferDelays.SyncTo(fs.TransferDelays)
		m.faultAllocFails.SyncTo(fs.AllocFails)
		m.faultOfflineRejects.SyncTo(fs.OfflineRejects)
	}

	m.streamMoves.SyncTo(rt.streamStats.Streams)
	m.streamSubChunks.SyncTo(rt.streamStats.SubChunks)
	m.streamHopMoves.SyncTo(rt.streamStats.HopMoves)
	m.streamBytes.SyncTo(rt.streamStats.Bytes)
	m.streamInflight.Set(float64(rt.streamInflight))
	for node, agg := range rt.streamHops {
		g, ok := m.streamHopBW[node]
		if !ok {
			g = m.reg.Gauge(mStreamHopBW, "achieved streamed-hop bandwidth into each node, bytes/s", nodeLabel(node))
			m.streamHopBW[node] = g
		}
		if agg.busy > 0 {
			g.Set(float64(agg.bytes) / (float64(agg.busy) / 1e9))
		}
	}

	if rt.rec != nil {
		m.traceDropped.Set(float64(rt.rec.Dropped()))
	}
	m.elapsed.Set(float64(now))

	// Bandwidth utilization: cumulative bytes into the node over what its
	// device could nominally have read in the elapsed time. A coarse
	// full-run average, like the trace summary's achieved-vs-nominal column.
	if now > 0 {
		sec := float64(now) / 1e9
		for node, c := range m.movedBytes {
			g, ok := m.bwUtil[node]
			if !ok {
				g = m.reg.Gauge(mBWUtil, "moved bytes over nominal read bandwidth x elapsed", nodeLabel(node))
				m.bwUtil[node] = g
			}
			if bw := m.nominalBW[node]; bw > 0 {
				g.Set(float64(c.Value()) / (sec * bw))
			}
		}
	}
}

// depthGauge resolves (and memoises) the node's queue-depth gauge.
func (m *runtimeMetrics) depthGauge(node int) *obs.Gauge {
	g, ok := m.queueDepth[node]
	if !ok {
		g = m.reg.Gauge(mQueueDepth, "work-queue depth per leaf scheduler", nodeLabel(node))
		m.queueDepth[node] = g
	}
	return g
}

// QueueDepthSlot is one scheduler's contribution to a node's queue-depth
// gauge. The gauge always publishes the sum of all live slots on the node,
// which is what makes the metric correct when several jobs run leaf
// schedulers on the same node concurrently: the old absolute-set form
// (NoteQueueDepth) made the last writer win, so one job finishing could
// freeze another job's stale depth into the gauge forever.
//
// A scheduler obtains a slot at setup (NewQueueDepthSlot), calls Set with
// its own total on every queue event, and must Close the slot when it
// winds down so its contribution returns to zero.
type QueueDepthSlot struct {
	rt     *Runtime
	node   int
	depth  int64
	closed bool
}

// NewQueueDepthSlot registers a scheduler's depth contribution for node.
// Usable (as a no-op) even when metrics are off.
func (rt *Runtime) NewQueueDepthSlot(node int) *QueueDepthSlot {
	return &QueueDepthSlot{rt: rt, node: node}
}

// Set publishes the slot's current depth; the node gauge moves by the
// delta from the slot's previous value.
func (s *QueueDepthSlot) Set(depth int64) {
	if s == nil || s.closed || s.rt.met == nil {
		return
	}
	m := s.rt.met
	m.depthTotal[s.node] += depth - s.depth
	s.depth = depth
	m.depthGauge(s.node).Set(float64(m.depthTotal[s.node]))
	s.rt.maybeSample(s.rt.engine.Now())
}

// Close withdraws the slot's contribution. Further Sets are no-ops.
func (s *QueueDepthSlot) Close() {
	if s == nil || s.closed {
		return
	}
	s.Set(0)
	s.closed = true
}

// NoteQueueDepth publishes a leaf scheduler's queue depth for node as a
// gauge (the sampler's subject). No-op without metrics.
//
// It writes through a per-node slot owned by the runtime, so a single
// scheduler per node behaves exactly as before; schedulers that can run
// concurrently on one node must hold their own slot (NewQueueDepthSlot)
// instead, or their depths overwrite each other within the shared slot.
func (rt *Runtime) NoteQueueDepth(node int, depth int64) {
	if rt.met == nil {
		return
	}
	s, ok := rt.met.legacySlots[node]
	if !ok {
		s = rt.NewQueueDepthSlot(node)
		rt.met.legacySlots[node] = s
	}
	s.Set(depth)
}

// NoteSchedPlacement records one task-graph placement decision: policy is
// how the task reached its worker ("queue", "steal", "affinity"), node is
// the staging node the scheduler placed against, and savedBytes is how many
// input bytes the decision found already resident (so no edge crossing was
// needed). No-op without metrics.
func (rt *Runtime) NoteSchedPlacement(policy string, node int, savedBytes int64) {
	if rt.met == nil {
		return
	}
	m := rt.met
	m.schedTasks.Inc()
	c, ok := m.schedPlace[policy]
	if !ok {
		c = m.reg.Counter(mSchedPlacements, "task placements per decision policy", obs.L("policy", policy))
		m.schedPlace[policy] = c
	}
	c.Inc()
	if savedBytes > 0 && node >= 0 {
		s, ok := m.schedSaved[node]
		if !ok {
			s = m.reg.Counter(mSchedSavedBytes, "bytes affinity placement served from residency instead of moving", nodeLabel(node))
			m.schedSaved[node] = s
		}
		s.Add(savedBytes)
	}
}

// NotePops adds to the pop total (leaf schedulers report their deque
// counts). No-op without metrics.
func (rt *Runtime) NotePops(n int64) {
	if rt.met != nil {
		rt.met.queuePops.Add(n)
	}
}

// NoteSteals adds to the steal total. No-op without metrics.
func (rt *Runtime) NoteSteals(n int64) {
	if rt.met != nil {
		rt.met.queueSteal.Add(n)
	}
}
