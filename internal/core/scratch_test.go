package core

import (
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestFileToFileMoveUsesScratchPool guards the hoisted scratch buffer: a
// file-to-file move must reuse pooled scratch instead of allocating n fresh
// bytes on every attempt inside the retry loop. Bookkeeping allocations
// (engine event scheduling) are small and size-independent, so the guard is
// on bytes: the steady state must allocate far less than the n-byte scratch
// copy a regression would reintroduce.
func TestFileToFileMoveUsesScratchPool(t *testing.T) {
	const n = 256 << 10
	const rounds = 16
	_, rt := newAPURuntime(t)
	src := mkInput(t, rt, "src", n)
	var bytesPerMove uint64
	_, err := rt.Run("warm", func(c *Ctx) error {
		dst, err := c.AllocAt(rt.Tree().Root(), n)
		if err != nil {
			return err
		}
		// Warm the pool, then measure steady-state allocation volume.
		if err := rt.MoveData(c.p, dst, src, 0, 0, n); err != nil {
			return err
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		for i := 0; i < rounds; i++ {
			if err := rt.moveOnce(c.p, dst, src, 0, 0, n); err != nil {
				return err
			}
		}
		runtime.ReadMemStats(&m1)
		bytesPerMove = (m1.TotalAlloc - m0.TotalAlloc) / rounds
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bytesPerMove > n/4 {
		t.Fatalf("file-to-file move allocates %d B per attempt after pool warm-up; the %d B scratch is not being pooled", bytesPerMove, n)
	}
}

// TestScratchPoolReusesBacking asserts the pool hands back the same backing
// array instead of growing without bound.
func TestScratchPoolReusesBacking(t *testing.T) {
	_, rt := newAPURuntime(t)
	a := rt.getScratch(4096)
	rt.putScratch(a)
	b := rt.getScratch(1024)
	if &a[0] != &b[0] {
		t.Fatal("pool did not reuse the larger scratch buffer for a smaller request")
	}
	rt.putScratch(b)
	if len(rt.scratch) != 1 {
		t.Fatalf("pool holds %d entries after symmetric get/put, want 1", len(rt.scratch))
	}
}

// TestPrefetchErrorsCounted guards the silent-drop fix: a lookahead fill
// that fails after exhausting retries must be counted in CacheStats and
// mirrored into the metrics registry, not swallowed.
func TestPrefetchErrorsCounted(t *testing.T) {
	const n = 64 << 10
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 256, DRAMMiB: 32})
	opts := DefaultOptions()
	opts.Cache = CacheOptions{Enabled: true, Prefetch: true, CapacityBytes: 1 << 20}
	opts.Faults = fault.New(e, fault.Config{Seed: 3, TransferFailRate: 1.0})
	opts.Retry = RetryPolicy{MaxRetries: 1, BaseBackoff: sim.Microseconds(10)}
	opts.Metrics = obs.NewRegistry()
	rt := NewRuntime(e, tree, opts)
	src := mkInput(t, rt, "in", n)
	_, err := rt.Run("prefetch-fail", func(c *Ctx) error {
		c.Prefetch(c.Children()[0], src, 0, n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := rt.CacheStats()
	if cs.PrefetchErrors == 0 {
		t.Fatal("failed prefetch not counted in CacheStats.PrefetchErrors")
	}
	rt.SyncMetrics()
	flat := opts.Metrics.Flatten()
	if got := int64(flat["northup_cache_prefetch_errors_total"]); got != cs.PrefetchErrors {
		t.Fatalf("registry prefetch errors %d != stats %d", got, cs.PrefetchErrors)
	}
}
