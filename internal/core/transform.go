package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/view"
	"repro/internal/xfer"
)

// This file implements the paper's §VI "Data Layout" extension: "when data
// migrates across memory levels, chunks can be transformed and stored in
// different formats ... Northup can be easily extended to support this with
// a special version of move_data()."
//
// MoveDataTransposeF32 is that special version for the most common case:
// a row-major float32 matrix block becomes column-major (or vice versa) as
// it moves. The transform itself costs one extra read+write pass over the
// block at the destination device's bandwidth, on top of the normal
// transfer — the first-order cost of a blocked transpose performed at the
// destination.

// MoveDataTransposeF32 moves a rows x cols float32 matrix from src (at
// srcOff bytes, row-major) to dst (at dstOff bytes), storing it transposed
// (cols x rows, row-major — i.e. column-major layout of the original).
// Both buffers must live on memory-kind nodes.
func (rt *Runtime) MoveDataTransposeF32(p *sim.Proc, dst, src *Buffer, dstOff, srcOff int64, rows, cols int) error {
	n := int64(rows) * int64(cols) * 4
	if err := checkMove(dst, src, dstOff, srcOff, n); err != nil {
		return err
	}
	if src.file != nil || dst.file != nil {
		return fmt.Errorf("core: transforming move requires memory endpoints (got %v -> %v)",
			src.node, dst.node)
	}
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("core: transforming move of %dx%d block", rows, cols)
	}
	if err := rt.checkMoveDst(dst); err != nil {
		return err
	}
	rt.invalidateRange(p, dst, dstOff, n)
	rt.chargeOverhead(p)
	return rt.withRetry(p, "move_data_transpose", func() error {
		if err := rt.faultTransfer(p, src, dst, n); err != nil {
			return err
		}
		start := p.Now()
		if !rt.opts.Phantom {
			sv := view.F32(src.data[srcOff : srcOff+n])
			dv := view.F32(dst.data[dstOff : dstOff+n])
			if err := xfer.TransposeF32(dv, sv, rows, cols); err != nil {
				return err
			}
		}
		// Normal migration cost...
		rt.link(src, dst).Transfer(p, src.node.Mem, dst.node.Mem, n)
		// ...plus the reorganization pass at the destination.
		dst.node.Mem.Access(p, device.Write, dst.ext.Off+dstOff, n)
		rt.chargeSpan(p, trace.Lane{Node: dst.node.ID, Track: trace.TrackXfer},
			trace.Transfer, spanTranspose, start, p.Now(), n)
		return nil
	})
}

// TransposeCostF32 returns the extra virtual time a transforming move adds
// over a plain move for an n-byte block landing on node's device: useful
// for the reuse-count break-even analysis of §VI ("layout transformation
// is beneficial for applications with sufficient data reuse").
func (rt *Runtime) TransposeCostF32(nodeBuf *Buffer, n int64) sim.Time {
	prof := nodeBuf.node.Mem.Profile()
	return prof.Latency + sim.TransferTime(n, prof.WriteBW)
}
