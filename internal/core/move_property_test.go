package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topo"
)

// TestMoveRoundTripAcrossKindsProperty drives random payloads at random
// offsets through every node kind of the 3-level tree — DRAM -> storage ->
// DRAM -> GPU memory -> DRAM — and demands bit-exact survival. This is the
// unified interface's core contract: the opaque handle behaves identically
// no matter which memories back it.
func TestMoveRoundTripAcrossKindsProperty(t *testing.T) {
	f := func(payload []byte, offRaw uint8) bool {
		if len(payload) == 0 {
			return true
		}
		e := sim.NewEngine()
		tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
			StorageMiB: 4, DRAMMiB: 2, GPUMemMiB: 2})
		rt := NewRuntime(e, tree, DefaultOptions())
		root, dram, gmem := tree.Node(0), tree.Node(1), tree.Node(2)
		off := int64(offRaw)
		size := int64(len(payload)) + off + 1
		ok := true
		_, err := rt.Run("prop", func(c *Ctx) error {
			stage, err := c.AllocAt(dram, size)
			if err != nil {
				return err
			}
			disk, err := c.AllocAt(root, size)
			if err != nil {
				return err
			}
			dev, err := c.AllocAt(gmem, size)
			if err != nil {
				return err
			}
			back, err := c.AllocAt(dram, size)
			if err != nil {
				return err
			}
			copy(stage.Bytes()[off:], payload)
			n := int64(len(payload))
			if err := c.MoveData(disk, stage, off, off, n); err != nil {
				return err
			}
			if err := c.MoveData(back, disk, off, off, n); err != nil {
				return err
			}
			if err := c.MoveData(dev, back, off, off, n); err != nil {
				return err
			}
			// Clear and pull back from the GPU.
			for i := range back.Bytes() {
				back.Bytes()[i] = 0
			}
			if err := c.MoveData(back, dev, off, off, n); err != nil {
				return err
			}
			ok = bytes.Equal(back.Bytes()[off:off+n], payload)
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMove2DRandomRectangles round-trips random sub-rectangles between a
// host buffer and a storage buffer with independent strides.
func TestMove2DRandomRectangles(t *testing.T) {
	f := func(seed []byte, rRaw, cRaw, strideRaw uint8) bool {
		rows := int(rRaw%6) + 1
		rowBytes := int(cRaw%24) + 1
		extra := int64(strideRaw % 32)
		srcStride := int64(rowBytes) + extra
		if len(seed) == 0 {
			seed = []byte{42}
		}
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 4, DRAMMiB: 1})
		rt := NewRuntime(e, tree, DefaultOptions())
		root, dram := tree.Node(0), tree.Node(1)
		hostSize := srcStride * int64(rows)
		ok := true
		_, err := rt.Run("rect", func(c *Ctx) error {
			host, err := c.AllocAt(dram, hostSize)
			if err != nil {
				return err
			}
			for i := range host.Bytes() {
				host.Bytes()[i] = seed[i%len(seed)]
			}
			disk, err := c.AllocAt(root, int64(rows*rowBytes))
			if err != nil {
				return err
			}
			// Strided host -> packed storage.
			if err := c.MoveData2D(disk, host, 0, int64(rowBytes), 0, srcStride, rows, rowBytes); err != nil {
				return err
			}
			// Packed storage -> strided host copy 2.
			host2, err := c.AllocAt(dram, hostSize)
			if err != nil {
				return err
			}
			if err := c.MoveData2D(host2, disk, 0, srcStride, 0, int64(rowBytes), rows, rowBytes); err != nil {
				return err
			}
			for r := 0; r < rows; r++ {
				a := host.Bytes()[int64(r)*srcStride : int64(r)*srcStride+int64(rowBytes)]
				b := host2.Bytes()[int64(r)*srcStride : int64(r)*srcStride+int64(rowBytes)]
				if !bytes.Equal(a, b) {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
