package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/view"
	"repro/internal/workload"
)

func TestMoveDataTransposeF32(t *testing.T) {
	_, rt := newAPURuntime(t)
	dram := rt.tree.Node(1)
	const rows, cols = 6, 10
	src := workload.Dense(rows, cols, 3)
	_, err := rt.Run("transpose", func(c *Ctx) error {
		a, err := c.AllocAt(dram, rows*cols*4)
		if err != nil {
			return err
		}
		bT, err := c.AllocAt(dram, rows*cols*4)
		if err != nil {
			return err
		}
		copy(view.F32(a.Bytes()), src)
		if err := c.MoveDataTransposeF32(bT, a, 0, 0, rows, cols); err != nil {
			return err
		}
		got := view.F32(bT.Bytes())
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if got[j*rows+i] != src[i*cols+j] {
					t.Fatalf("transpose wrong at (%d,%d)", i, j)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransformCostsMoreThanPlainMove(t *testing.T) {
	// §VI's premise: the transforming move costs an extra reorganization
	// pass; callers should amortize it over reuse.
	elapsed := func(transform bool) sim.Time {
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 256, DRAMMiB: 32})
		rt := NewRuntime(e, tree, DefaultOptions())
		dram := rt.tree.Node(1)
		const rows, cols = 512, 512
		if _, err := rt.Run("x", func(c *Ctx) error {
			a, err := c.AllocAt(dram, rows*cols*4)
			if err != nil {
				return err
			}
			b, err := c.AllocAt(dram, rows*cols*4)
			if err != nil {
				return err
			}
			if transform {
				return c.MoveDataTransposeF32(b, a, 0, 0, rows, cols)
			}
			return c.MoveData(b, a, 0, 0, rows*cols*4)
		}); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	plain, transformed := elapsed(false), elapsed(true)
	if transformed <= plain {
		t.Fatalf("transforming move (%v) not costlier than plain (%v)", transformed, plain)
	}
}

func TestTransformRejectsStorageEndpoints(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("bad", func(c *Ctx) error {
		disk, err := c.Alloc(1024) // root = SSD
		if err != nil {
			return err
		}
		host, err := c.AllocAt(rt.tree.Node(1), 1024)
		if err != nil {
			return err
		}
		if err := c.MoveDataTransposeF32(host, disk, 0, 0, 16, 16); err == nil {
			t.Error("transforming move accepted a storage source")
		}
		if err := c.MoveDataTransposeF32(host, host, 0, 0, 0, 16); err == nil {
			t.Error("degenerate shape accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransformPhantomTimingMatches(t *testing.T) {
	run := func(phantom bool) sim.Time {
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64, DRAMMiB: 16})
		opts := DefaultOptions()
		opts.Phantom = phantom
		rt := NewRuntime(e, tree, opts)
		dram := rt.tree.Node(1)
		if _, err := rt.Run("x", func(c *Ctx) error {
			a, err := c.AllocAt(dram, 256*256*4)
			if err != nil {
				return err
			}
			b, err := c.AllocAt(dram, 256*256*4)
			if err != nil {
				return err
			}
			return c.MoveDataTransposeF32(b, a, 0, 0, 256, 256)
		}); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	if run(false) != run(true) {
		t.Fatal("phantom transform timing diverged from functional")
	}
}
