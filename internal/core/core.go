// Package core implements the Northup runtime: recursive divide-and-conquer
// execution over a topological tree of heterogeneous memories and
// processors, with the unified data-management interface of the paper's
// Table I (alloc / move_data / move_data_down / move_data_up / release).
//
// A Runtime binds a topo.Tree to a sim.Engine. Applications are written as
// recursive functions over a task context (Ctx), exactly in the style of the
// paper's Listing 3:
//
//	func step(c *core.Ctx, bufs map[int]*core.Buffer) error {
//		if c.IsLeaf() {
//			return compute(c, bufs)          // computation at leaf nodes
//		}
//		for each chunk (m, n) {
//			setupBuffers(c, ...)             // alloc at the child level
//			c.MoveDataDown(...)              // chunk to the child
//			c.Descend(child, step)           // northup_spawn(step(...))
//			c.MoveDataUp(...)                // result back to this level
//		}
//	}
//
// The runtime keeps the paper's decoupling: data movement (Buffer, MoveData)
// and computation (LaunchKernel, RunCPU) are independent, and neither knows
// the concrete topology. Every operation charges virtual time on the device,
// link and processor models and accounts it to an execution-breakdown
// category (package trace), which is how Figures 6-9 are measured.
package core

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Options tune runtime bookkeeping costs.
type Options struct {
	// OverheadPerOp is the modeled cost of one runtime call (tree lookup,
	// task control, queue operation). The paper measures total runtime
	// overhead below 1% of execution (§V-B); the default of 1µs per
	// operation reproduces that at the paper's coarse chunk granularity
	// while still punishing overly fine-grained decomposition.
	OverheadPerOp sim.Time

	// Phantom disables functional payloads: buffers carry no bytes, moves
	// charge device/link time without copying, and kernels run with nil
	// bodies. Timing is bit-identical to a functional run, so the benchmark
	// harness uses phantom mode to reproduce the paper's figures at their
	// true scale (16k-32k matrices, 16M-row SpMV) without gigabytes of
	// host memory; functional correctness is verified separately at test
	// scale.
	Phantom bool

	// Faults, when non-nil, injects deterministic transient failures into
	// transfers and allocations (see package fault). Injected failures are
	// absorbed by the Retry policy; the run report counts what happened.
	Faults *fault.Injector

	// Retry bounds how the runtime fights transient faults. The zero value
	// is replaced by DefaultRetryPolicy when Faults is set; without an
	// injector it leaves genuine errors un-retried.
	Retry RetryPolicy

	// Cache configures the per-memory-node staging cache serving repeated
	// MoveDataDownCached calls from resident buffers (see cache.go). The
	// zero value disables it.
	Cache CacheOptions

	// Trace, when non-nil, records every simulated activity as a timeline
	// event (see tracing.go and package trace): spans for moves, I/O,
	// kernels, allocations and bookkeeping; instants for cache activity,
	// faults and steals. Nil (the default) disables tracing at zero cost.
	Trace *trace.Recorder

	// Metrics, when non-nil, is the registry the runtime continuously
	// populates (see metrics.go and package obs): busy time, span counts
	// and duration histograms per category, per-node byte totals and
	// bandwidth utilization, cache/resilience/fault counters, queue depth.
	// Nil (the default) disables metrics at zero cost.
	Metrics *obs.Registry

	// Sampler, when non-nil, snapshots the registry's gauges at its
	// virtual-time tick, producing deterministic time series. It must have
	// been built on Metrics (obs.NewSampler(Metrics, ...)); it is ignored
	// without a registry.
	Sampler *obs.Sampler
}

// DefaultOptions returns the standard bookkeeping costs.
func DefaultOptions() Options {
	return Options{OverheadPerOp: sim.Microseconds(1)}
}

// Runtime executes Northup programs on one tree.
type Runtime struct {
	engine *sim.Engine
	tree   *topo.Tree
	opts   Options

	allocs map[int]*alloc.Allocator // node ID -> allocator (mem-kind nodes)
	caches map[int]*nodeCache       // node ID -> staging cache (lazy, see cache.go)
	pcie   *device.Link
	dma    *device.Link

	bd      trace.Breakdown
	res     ResilienceStats
	rec     *trace.Recorder        // event recorder, nil when tracing is off
	met     *runtimeMetrics        // metrics handles, nil when metrics are off
	spanObs []func(trace.Event)    // span observers (profile-guided scheduling)
	sinks   map[*sim.Proc]SpanSink // per-proc charge mirrors (journey layer), lazy
	bufSeq  int
	bufIDs  int64 // stable buffer identities keying cache entries

	// Streamed-move telemetry (see stream.go): cumulative counters, the
	// current number of sub-chunks in flight, and per-hop achieved-bandwidth
	// aggregates keyed by the hop's destination node.
	streamStats    StreamStats
	streamInflight int64
	streamHops     map[int]*streamHopAgg

	// scratch recycles the file-to-file staging buffers of moveOnce and
	// move2DOnce, so retries and hot loops stop re-allocating.
	scratch [][]byte
}

// nextBufID mints the next stable buffer identity.
func (rt *Runtime) nextBufID() int64 {
	rt.bufIDs++
	return rt.bufIDs
}

// NewRuntime creates a runtime for the tree. The engine must be the one the
// tree's devices were built on.
func NewRuntime(e *sim.Engine, t *topo.Tree, opts Options) *Runtime {
	if opts.Faults != nil && opts.Retry == (RetryPolicy{}) {
		opts.Retry = DefaultRetryPolicy()
	}
	rt := &Runtime{
		engine:     e,
		tree:       t,
		opts:       opts,
		rec:        opts.Trace,
		allocs:     make(map[int]*alloc.Allocator),
		caches:     make(map[int]*nodeCache),
		pcie:       device.PCIeLink(e),
		dma:        device.DMALink(e),
		streamHops: make(map[int]*streamHopAgg),
	}
	for _, n := range t.Nodes() {
		if !n.Kind().IsFileStore() {
			rt.allocs[n.ID] = alloc.New(n.Mem)
		}
	}
	if opts.Metrics != nil {
		rt.met = newRuntimeMetrics(rt, opts.Metrics, opts.Sampler)
	}
	return rt
}

// Tree returns the topology the runtime executes on.
func (rt *Runtime) Tree() *topo.Tree { return rt.tree }

// Engine returns the simulation engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.engine }

// Breakdown returns the accumulated execution breakdown.
func (rt *Runtime) Breakdown() *trace.Breakdown { return &rt.bd }

// ResetStats clears the execution breakdown between measured phases.
func (rt *Runtime) ResetStats() { rt.bd.Reset() }

// Allocator returns the space allocator of a memory-kind node (nil for
// file-backed nodes, which allocate through their file store).
func (rt *Runtime) Allocator(n *topo.Node) *alloc.Allocator { return rt.allocs[n.ID] }

// chargeOverhead models one unit of runtime bookkeeping on the calling
// process and accounts it to the Runtime category.
func (rt *Runtime) chargeOverhead(p *sim.Proc) {
	if rt.opts.OverheadPerOp <= 0 {
		return
	}
	start := p.Now()
	p.Sleep(rt.opts.OverheadPerOp)
	rt.chargeSpan(p, laneRuntime, trace.Runtime, spanBookkeeping, start, p.Now(), 0)
}

// RunStats summarizes one Runtime.Run invocation.
type RunStats struct {
	// Elapsed is the virtual time the run took.
	Elapsed sim.Time
	// Breakdown is a snapshot of the per-category busy times accumulated
	// during the run.
	Breakdown trace.Breakdown
	// Resilience is the fault-handling activity (retries, timeouts,
	// failovers) during the run.
	Resilience ResilienceStats
}

// Start spawns fn as a root task bound to the tree root without driving
// the engine: the entry point when several runtimes share one engine (a
// cluster of simulated machines, package cluster). The caller must run the
// engine and wait on the returned handle.
func (rt *Runtime) Start(name string, fn func(c *Ctx) error) *Join {
	j := &Join{latch: sim.NewLatch(rt.engine)}
	rt.engine.Spawn(name, func(p *sim.Proc) {
		c := &Ctx{rt: rt, p: p, node: rt.tree.Root()}
		j.err = fn(c)
		j.latch.Fire()
	})
	return j
}

// Run executes fn as the root task of a Northup program: a simulation
// process bound to the tree root (level 0, the slowest storage). It drives
// the engine until the task — and everything it spawned — completes, and
// returns the elapsed virtual time with its execution breakdown.
func (rt *Runtime) Run(name string, fn func(c *Ctx) error) (RunStats, error) {
	start := rt.engine.Now()
	before := rt.bd
	resBefore := rt.res
	var taskErr error
	rt.engine.Spawn(name, func(p *sim.Proc) {
		c := &Ctx{rt: rt, p: p, node: rt.tree.Root()}
		taskErr = fn(c)
	})
	if err := rt.engine.Run(); err != nil {
		return RunStats{}, fmt.Errorf("core: run %q: %w", name, err)
	}
	if taskErr != nil {
		return RunStats{}, taskErr
	}
	elapsed := rt.engine.Now() - start
	rt.bd.SetTotal(elapsed)
	rt.SyncMetrics()
	// The snapshot reports only this run's deltas, so several phases (e.g.
	// preprocessing, then the measured pass) can share one runtime.
	snap := rt.bd.DeltaFrom(&before)
	snap.SetTotal(elapsed)
	return RunStats{Elapsed: elapsed, Breakdown: snap,
		Resilience: rt.res.DeltaFrom(resBefore)}, nil
}

// PiecesToFit returns how many equal pieces a working set of totalBytes
// must be divided into so that buffersPerPiece pieces fit simultaneously
// into freeBytes — the capacity-driven blocking-size decision of §III-B
// ("by examining the capacity and usage, a program can decide the blocking
// size"). The result is always at least 1.
func PiecesToFit(totalBytes, freeBytes int64, buffersPerPiece int) int {
	if totalBytes <= 0 || buffersPerPiece <= 0 {
		return 1
	}
	if freeBytes <= 0 {
		panic("core: PiecesToFit with no free capacity")
	}
	pieces := 1
	for int64(buffersPerPiece)*(totalBytes/int64(pieces)) > freeBytes {
		pieces++
	}
	return pieces
}
