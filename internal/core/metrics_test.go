package core

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// newMetricsRuntime builds the APU runtime with a metrics registry (and an
// optional sampler tick) attached.
func newMetricsRuntime(t *testing.T, tick sim.Time) (*Runtime, *obs.Registry) {
	t.Helper()
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 256, DRAMMiB: 32})
	opts := DefaultOptions()
	opts.Metrics = obs.NewRegistry()
	if tick > 0 {
		opts.Sampler = obs.NewSampler(opts.Metrics, obs.SamplerOptions{Tick: tick})
	}
	return NewRuntime(e, tree, opts), opts.Metrics
}

// metricsWorkload is a small move+compute program touching several charge
// categories.
func metricsWorkload(rt *Runtime) error {
	_, err := rt.Run("metrics-workload", func(c *Ctx) error {
		root := c.Node()
		dram := root.Children[0]
		src, err := c.AllocAt(root, 1<<16)
		if err != nil {
			return err
		}
		dst, err := c.AllocAt(dram, 1<<16)
		if err != nil {
			return err
		}
		if err := c.MoveData(dst, src, 0, 0, 1<<16); err != nil {
			return err
		}
		c.ChargeCPU(sim.Microseconds(500))
		c.ChargeGPU(sim.Microseconds(250))
		return nil
	})
	return err
}

// TestMetricsDisabledZeroAlloc is the acceptance criterion: without a
// registry the metrics hook in chargeSpan is one nil check.
func TestMetricsDisabledZeroAlloc(t *testing.T) {
	_, rt := newAPURuntime(t)
	if rt.MetricsEnabled() {
		t.Fatal("metrics enabled on a default runtime")
	}
	lane := trace.Lane{Node: 1, Track: trace.TrackXfer}
	allocs := testing.AllocsPerRun(200, func() {
		rt.chargeSpan(nil, lane, trace.Transfer, spanMove, 0, 10, 64)
		rt.NoteQueueDepth(1, 5)
		rt.NotePops(1)
		rt.NoteSteals(1)
		rt.SyncMetrics()
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics allocated %.1f times per round", allocs)
	}
}

// TestMetricsReconcileWithBreakdown asserts the bit-for-bit invariant: the
// registry's busy counters equal the Breakdown's per-category totals, the
// cache counters equal CacheStats, and moved bytes equal the spans' byte
// values — all fed from the same charge point or synced from the same
// source.
func TestMetricsReconcileWithBreakdown(t *testing.T) {
	rt, reg := newMetricsRuntime(t, 0)
	if err := metricsWorkload(rt); err != nil {
		t.Fatal(err)
	}
	flat := reg.Flatten()
	for _, cat := range trace.Categories {
		want := int64(rt.Breakdown().Busy(cat))
		got := int64(flat[`northup_busy_ns_total{cat="`+cat.String()+`"}`])
		if got != want {
			t.Errorf("busy[%v]: registry %d, breakdown %d", cat, got, want)
		}
	}
	cs := rt.CacheStats()
	if got := int64(flat["northup_cache_hits_total"]); got != cs.Hits {
		t.Errorf("cache hits: registry %d, stats %d", got, cs.Hits)
	}
	// Histogram sums must reconcile too: sum of span durations per category
	// equals the busy counter.
	for _, cat := range trace.Categories {
		sum := int64(flat[`northup_span_ns_sum{cat="`+cat.String()+`"}`])
		busy := int64(flat[`northup_busy_ns_total{cat="`+cat.String()+`"}`])
		if sum != busy {
			t.Errorf("span_ns sum[%v] %d != busy %d", cat, sum, busy)
		}
	}
	if flat["northup_elapsed_ns"] <= 0 {
		t.Error("elapsed gauge not set by Run")
	}
}

// TestMetricsRunDeterministic runs the same program twice and wants
// byte-identical Prometheus and JSON exports — the registry-determinism
// satellite at the runtime level.
func TestMetricsRunDeterministic(t *testing.T) {
	export := func() (string, string) {
		rt, reg := newMetricsRuntime(t, sim.Microseconds(100))
		if err := metricsWorkload(rt); err != nil {
			t.Fatal(err)
		}
		var prom, js bytes.Buffer
		if err := reg.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteJSON(&js, rt.MetricsSampler()); err != nil {
			t.Fatal(err)
		}
		return prom.String(), js.String()
	}
	p1, j1 := export()
	p2, j2 := export()
	if p1 != p2 {
		t.Fatalf("Prometheus exports differ between identical runs:\n--- 1 ---\n%s--- 2 ---\n%s", p1, p2)
	}
	if j1 != j2 {
		t.Fatalf("JSON exports differ between identical runs:\n--- 1 ---\n%s--- 2 ---\n%s", j1, j2)
	}
}

// TestMetricsSamplerSeries checks an attached sampler produces gauge
// series with in-order timestamps.
func TestMetricsSamplerSeries(t *testing.T) {
	rt, _ := newMetricsRuntime(t, sim.Microseconds(50))
	if err := metricsWorkload(rt); err != nil {
		t.Fatal(err)
	}
	series := rt.MetricsSampler().Series()
	if len(series) == 0 {
		t.Fatal("sampler produced no series")
	}
	for _, s := range series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].T <= s.Points[i-1].T {
				t.Fatalf("series %s timestamps not increasing: %+v", s.Name, s.Points)
			}
		}
	}
}

// TestMetricsMovedBytes checks per-node byte totals match what the moves
// actually carried.
func TestMetricsMovedBytes(t *testing.T) {
	rt, reg := newMetricsRuntime(t, 0)
	if err := metricsWorkload(rt); err != nil {
		t.Fatal(err)
	}
	flat := reg.Flatten()
	total := 0.0
	for name, v := range flat {
		if len(name) > len("northup_moved_bytes_total") && name[:len("northup_moved_bytes_total")] == "northup_moved_bytes_total" {
			total += v
		}
	}
	if int64(total) != 1<<16 {
		t.Fatalf("moved bytes total %v, want %d", total, 1<<16)
	}
}
