package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/gpu"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// buildPluginTree builds a leaf carrying both a GPU and an FPGA — the §VII
// "plug-in" scenario: the same data-movement code feeds either accelerator.
func buildPluginTree(e *sim.Engine) *topo.Tree {
	b := topo.NewBuilder(e)
	root := b.Root(device.SSDProfile(64*device.MiB, 1400, 600))
	dram := b.Child(root, device.DRAMProfile(8*device.MiB))
	b.Attach(dram, gpu.APUGPU(e),
		proc.NewFPGA("stencil-fpga", 250e6, 8, 20e9, 40*sim.Millisecond))
	return b.MustBuild()
}

// TestComputePlugInSwap runs an identical out-of-core element-scaling job
// twice — once with a GPU kernel, once with an FPGA bitstream at the leaf —
// and verifies that only the compute call differs: the movement code and
// the functional results are shared verbatim.
func TestComputePlugInSwap(t *testing.T) {
	const total = 1 << 20
	run := func(useFPGA bool) ([]byte, *Runtime) {
		e := sim.NewEngine()
		rt := NewRuntime(e, buildPluginTree(e), DefaultOptions())
		var out []byte
		_, err := rt.Run("plugin", func(c *Ctx) error {
			src, err := c.Alloc(total)
			if err != nil {
				return err
			}
			child := c.Children()[0]
			buf, err := c.AllocAt(child, total)
			if err != nil {
				return err
			}
			// Seed functionally through the staging buffer.
			for i := range buf.Bytes() {
				buf.Bytes()[i] = byte(i % 97)
			}
			if err := c.MoveData(src, buf, 0, 0, total); err != nil {
				return err
			}
			if err := c.MoveDataDown(buf, src, 0, 0, total); err != nil {
				return err
			}
			// The ONLY divergence between the two configurations:
			err = c.Descend(child, func(lc *Ctx) error {
				double := func() {
					bs := buf.Bytes()
					for i := range bs {
						bs[i] *= 2
					}
				}
				if useFPGA {
					_, ferr := lc.RunFPGA(proc.BitstreamSpec{
						Name: "double", II: 1, BytesPerElement: 2,
					}, total, double)
					return ferr
				}
				_, kerr := lc.LaunchKernel(gpu.Kernel{
					Name: "double", FlopsPerGroup: total / 64,
					BytesPerGroup: 2 * total / 64,
					Run:           func(g int) {},
				}, 64)
				if kerr != nil {
					return kerr
				}
				double()
				return nil
			})
			if err != nil {
				return err
			}
			if err := c.MoveDataUp(src, buf, 0, 0, total); err != nil {
				return err
			}
			out = append([]byte(nil), buf.Bytes()...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out, rt
	}
	gpuOut, gpuRT := run(false)
	fpgaOut, fpgaRT := run(true)
	for i := range gpuOut {
		if gpuOut[i] != fpgaOut[i] {
			t.Fatal("plug-in swap changed results")
		}
	}
	if gpuRT.Breakdown().Busy(trace.GPUCompute) <= 0 {
		t.Fatal("GPU path not accounted as GPU")
	}
	if fpgaRT.Breakdown().Busy(trace.FPGACompute) <= 0 {
		t.Fatal("FPGA path not accounted as FPGA")
	}
	if fpgaRT.Breakdown().Busy(trace.GPUCompute) != 0 {
		t.Fatal("FPGA path charged GPU time")
	}
	// I/O cost is identical: the movement code did not change.
	if gpuRT.Breakdown().Busy(trace.IO) != fpgaRT.Breakdown().Busy(trace.IO) {
		t.Fatal("plug-in swap changed data-movement costs")
	}
}

func TestRunFPGAWithoutFPGA(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("nofpga", func(c *Ctx) error {
		if _, err := c.RunFPGA(proc.BitstreamSpec{Name: "x", II: 1}, 10, nil); err == nil {
			t.Error("RunFPGA succeeded without an FPGA")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFPGAKeepsBitstreamAcrossChunks pins the reconfiguration economics:
// many chunks with the same bitstream pay one reconfiguration; alternating
// bitstreams pay one per switch.
func TestFPGAKeepsBitstreamAcrossChunks(t *testing.T) {
	e := sim.NewEngine()
	rt := NewRuntime(e, buildPluginTree(e), DefaultOptions())
	var fpga *proc.FPGAModel
	_, err := rt.Run("chunks", func(c *Ctx) error {
		child := c.Children()[0]
		return c.Descend(child, func(lc *Ctx) error {
			fpga = lc.FPGAModel()
			for i := 0; i < 5; i++ {
				if _, err := lc.RunFPGA(proc.BitstreamSpec{Name: "same", II: 1}, 1000, nil); err != nil {
					return err
				}
			}
			for i := 0; i < 4; i++ {
				name := "a"
				if i%2 == 1 {
					name = "b"
				}
				if _, err := lc.RunFPGA(proc.BitstreamSpec{Name: name, II: 2}, 1000, nil); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 (same) + 4 (a,b,a,b) reconfigurations.
	if got := fpga.Reconfigs(); got != 5 {
		t.Fatalf("reconfigs = %d, want 5", got)
	}
}
