package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
)

// newFaultyRuntime builds the 2-level SSD topology with the given injector
// config attached.
func newFaultyRuntime(t *testing.T, cfg fault.Config) (*sim.Engine, *Runtime, *fault.Injector) {
	t.Helper()
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 256, DRAMMiB: 32})
	inj := fault.New(e, cfg)
	opts := DefaultOptions()
	opts.Faults = inj
	return e, NewRuntime(e, tree, opts), inj
}

func TestRetryAbsorbsTransferFaults(t *testing.T) {
	_, rt, inj := newFaultyRuntime(t, fault.Config{Seed: 3, TransferFailRate: 0.3,
		TransferDelayRate: 0.2, TransferDelay: sim.Microseconds(100)})
	dram := rt.tree.Node(1)
	_, err := rt.Run("retry", func(c *Ctx) error {
		b, err := c.AllocAt(dram, 4096)
		if err != nil {
			return err
		}
		defer c.Release(b)
		src, err := rt.CreateInput(rt.tree.Root(), "in", 4096, make([]byte, 4096))
		if err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			if err := c.MoveDataDown(b, src, 0, 0, 4096); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Stats().Any() {
		t.Fatal("30% fail rate over 100 moves injected nothing")
	}
	res := rt.Resilience()
	if res.Retries == 0 || res.Faults == 0 {
		t.Fatalf("faults injected but no retries recorded: %+v", res)
	}
	if res.GaveUp != 0 {
		t.Fatalf("default policy gave up under 30%% faults: %+v", res)
	}
	if !strings.Contains(rt.ResilienceReport(), "retries") {
		t.Error("resilience report missing retry column")
	}
}

func TestAllocPressureRetried(t *testing.T) {
	_, rt, inj := newFaultyRuntime(t, fault.Config{Seed: 11, AllocFailRate: 0.4})
	dram := rt.tree.Node(1)
	_, err := rt.Run("alloc-pressure", func(c *Ctx) error {
		for i := 0; i < 50; i++ {
			b, err := c.AllocAt(dram, 1024)
			if err != nil {
				return err
			}
			if err := c.Release(b); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Stats().AllocFails == 0 {
		t.Fatal("40% alloc-fail rate over 50 allocs injected nothing")
	}
	if rt.Resilience().Retries == 0 {
		t.Fatal("alloc pressure not retried")
	}
	if used := dram.Mem.Used(); used != 0 {
		t.Fatalf("leaked %d bytes through retried allocs", used)
	}
}

func TestRealCapacityExhaustionNotRetried(t *testing.T) {
	_, rt, _ := newFaultyRuntime(t, fault.Config{Seed: 1})
	dram := rt.tree.Node(1)
	_, err := rt.Run("exhaust", func(c *Ctx) error {
		if _, err := c.AllocAt(dram, 1<<40); err == nil {
			t.Error("absurd allocation succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Resilience().Retries; got != 0 {
		t.Fatalf("genuine ENOSPC was retried %d times", got)
	}
}

func TestOfflineNodeWaitedOut(t *testing.T) {
	e, rt, inj := newFaultyRuntime(t, fault.Config{Seed: 5})
	// The staging DRAM (node 1) disappears for 5ms starting at t=0.
	recovery := sim.Milliseconds(5)
	inj.TakeNodeOffline(1, fault.Window{From: 0, Until: recovery})
	dram := rt.tree.Node(1)
	_, err := rt.Run("outage", func(c *Ctx) error {
		src, err := rt.CreateInput(rt.tree.Root(), "in", 4096, make([]byte, 4096))
		if err != nil {
			return err
		}
		b, err := c.AllocAt(dram, 4096)
		if err != nil {
			return err
		}
		defer c.Release(b)
		return c.MoveDataDown(b, src, 0, 0, 4096)
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Now() < recovery {
		t.Fatalf("run finished at %v, before the outage ended at %v", e.Now(), recovery)
	}
	if inj.Stats().OfflineRejects == 0 || rt.Resilience().Retries == 0 {
		t.Fatalf("outage not observed: inj=%+v res=%+v", inj.Stats(), rt.Resilience())
	}
}

func TestOpTimeoutRetriesSlowTransfers(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 256, DRAMMiB: 32})
	inj := fault.New(e, fault.Config{Seed: 9, TransferDelayRate: 0.5,
		TransferDelay: sim.Milliseconds(50)})
	opts := DefaultOptions()
	opts.Faults = inj
	// A 4 KiB DRAM<-SSD move takes ~microseconds; only injected 50ms delays
	// can breach a 10ms deadline.
	opts.Retry = RetryPolicy{MaxRetries: 20, BaseBackoff: sim.Microseconds(10),
		MaxBackoff: sim.Milliseconds(1), OpTimeout: sim.Milliseconds(10)}
	rt := NewRuntime(e, tree, opts)
	dram := tree.Node(1)
	_, err := rt.Run("slow", func(c *Ctx) error {
		src, err := rt.CreateInput(tree.Root(), "in", 4096, make([]byte, 4096))
		if err != nil {
			return err
		}
		b, err := c.AllocAt(dram, 4096)
		if err != nil {
			return err
		}
		defer c.Release(b)
		for i := 0; i < 20; i++ {
			if err := c.MoveDataDown(b, src, 0, 0, 4096); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Resilience().Timeouts == 0 {
		t.Fatalf("50%% x 50ms delays never breached the 10ms deadline: %+v", rt.Resilience())
	}
}

func TestGiveUpAfterMaxRetries(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 256, DRAMMiB: 32})
	inj := fault.New(e, fault.Config{Seed: 2, TransferFailRate: 1}) // every transfer fails
	opts := DefaultOptions()
	opts.Faults = inj
	opts.Retry = RetryPolicy{MaxRetries: 3, BaseBackoff: sim.Microseconds(10)}
	rt := NewRuntime(e, tree, opts)
	dram := tree.Node(1)
	_, err := rt.Run("doomed", func(c *Ctx) error {
		src, err := rt.CreateInput(tree.Root(), "in", 64, make([]byte, 64))
		if err != nil {
			return err
		}
		b, err := c.AllocAt(dram, 64)
		if err != nil {
			return err
		}
		defer c.Release(b)
		return c.MoveDataDown(b, src, 0, 0, 64)
	})
	if err == nil {
		t.Fatal("move survived a 100% failure rate")
	}
	if !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("unexpected error: %v", err)
	}
	res := rt.Resilience()
	if res.GaveUp != 1 || res.Retries != 3 {
		t.Fatalf("expected 3 retries then give-up, got %+v", res)
	}
}

func TestRunStatsCarryResilienceDeltas(t *testing.T) {
	_, rt, _ := newFaultyRuntime(t, fault.Config{Seed: 4, TransferFailRate: 0.5})
	dram := rt.tree.Node(1)
	move := func(name string) RunStats {
		stats, err := rt.Run(name, func(c *Ctx) error {
			src, err := rt.CreateInput(rt.tree.Root(), name, 4096, make([]byte, 4096))
			if err != nil {
				return err
			}
			b, err := c.AllocAt(dram, 4096)
			if err != nil {
				return err
			}
			defer c.Release(b)
			for i := 0; i < 40; i++ {
				if err := c.MoveDataDown(b, src, 0, 0, 4096); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	first := move("phase-1")
	second := move("phase-2")
	if first.Resilience.Retries == 0 || second.Resilience.Retries == 0 {
		t.Fatalf("phases saw no retries: %+v / %+v", first.Resilience, second.Resilience)
	}
	total := rt.Resilience()
	if got := first.Resilience.Retries + second.Resilience.Retries; got != total.Retries {
		t.Fatalf("per-run deltas %d don't sum to cumulative %d", got, total.Retries)
	}
}
