package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// This file implements the unified move_data of the paper's Table I and
// Listing 4: one entry point whose behaviour is chosen by examining the
// storage types of the source and destination tree nodes — file I/O for
// storage endpoints, DMA/PCIe transfers for memory endpoints.

// MoveData copies n bytes from src (at srcOff) to dst (at dstOff), charging
// the device, link and I/O times of whichever path connects the two nodes.
// Transient faults injected on the edge (failures, delays, offline
// endpoints) are retried under the runtime's RetryPolicy; a re-attempted
// move re-copies the same bytes, so retries preserve bit-correctness.
func (rt *Runtime) MoveData(p *sim.Proc, dst *Buffer, src *Buffer, dstOff, srcOff, n int64) error {
	if err := checkMove(dst, src, dstOff, srcOff, n); err != nil {
		return err
	}
	if err := rt.checkMoveDst(dst); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	// Invalidate once, outside the retry loop: cached copies of the written
	// range must vanish whether or not the move needs re-attempts, and a
	// retried move must not double-count invalidations.
	rt.invalidateRange(p, dst, dstOff, n)
	rt.chargeOverhead(p)
	return rt.withRetry(p, "move_data", func() error {
		return rt.moveOnce(p, dst, src, dstOff, srcOff, n)
	})
}

// moveOnce is one attempt of MoveData: the fault check, then the dispatch
// of Listing 4.
func (rt *Runtime) moveOnce(p *sim.Proc, dst *Buffer, src *Buffer, dstOff, srcOff, n int64) error {
	if err := rt.faultTransfer(p, src, dst, n); err != nil {
		return err
	}
	if rt.opts.Phantom {
		return rt.movePhantom(p, dst, src, dstOff, srcOff, n)
	}
	start := p.Now()
	var cat trace.Category
	var err error
	switch {
	case src.file != nil && dst.file == nil:
		cat = trace.IO
		err = src.file.ReadAt(p, dst.data[dstOff:dstOff+n], srcOff)
		if err == nil && dst.node.Kind() == device.KindGPUMem {
			// GPUDirect-style path: the storage read lands in device memory
			// through the PCIe link as well.
			rt.pcie.Transfer(p, nil, dst.node.Mem, n)
		}
	case src.file == nil && dst.file != nil:
		cat = trace.IO
		if src.node.Kind() == device.KindGPUMem {
			rt.pcie.Transfer(p, src.node.Mem, nil, n)
		}
		err = dst.file.WriteAt(p, src.data[srcOff:srcOff+n], dstOff)
	case src.file != nil && dst.file != nil:
		cat = trace.IO
		tmp := rt.getScratch(n)
		if err = src.file.ReadAt(p, tmp, srcOff); err == nil {
			err = dst.file.WriteAt(p, tmp, dstOff)
		}
		rt.putScratch(tmp)
	default: // memory to memory
		cat = trace.Transfer
		copy(dst.data[dstOff:dstOff+n], src.data[srcOff:srcOff+n])
		rt.link(src, dst).Transfer(p, src.node.Mem, dst.node.Mem, n)
	}
	rt.chargeSpan(p, moveLane(cat, dst, src), cat, spanMove, start, p.Now(), n)
	return err
}

// MoveData2D copies a rows x rowBytes block with independent strides on
// each side — the dCopyBlockH2D/D2H pattern of the paper's Listing 2,
// subsumed into the unified interface.
//
// Strided file accesses are issued row by row (each row is one I/O request,
// so discontiguous layouts pay per-row latency and seeks); strided
// memory-to-memory copies use one DMA transfer for the whole block.
func (rt *Runtime) MoveData2D(p *sim.Proc, dst *Buffer, src *Buffer,
	dstOff, dstStride, srcOff, srcStride int64, rows int, rowBytes int) error {
	if rows < 0 || rowBytes < 0 {
		return fmt.Errorf("core: move2d with negative shape %dx%d", rows, rowBytes)
	}
	if rows == 0 || rowBytes == 0 {
		return nil
	}
	if dstStride < 0 || srcStride < 0 {
		return fmt.Errorf("core: move2d with negative stride")
	}
	// Check the first and last rows; with non-negative strides every other
	// row lies between them.
	if err := checkMove(dst, src, dstOff, srcOff, int64(rowBytes)); err != nil {
		return err
	}
	if err := checkMove(dst, src,
		dstOff+int64(rows-1)*dstStride, srcOff+int64(rows-1)*srcStride, int64(rowBytes)); err != nil {
		return err
	}
	if err := rt.checkMoveDst(dst); err != nil {
		return err
	}
	rt.invalidateRange(p, dst, dstOff, int64(rows-1)*dstStride+int64(rowBytes))
	rt.chargeOverhead(p)
	return rt.withRetry(p, "move_data_2d", func() error {
		return rt.move2DOnce(p, dst, src, dstOff, dstStride, srcOff, srcStride, rows, rowBytes)
	})
}

// move2DOnce is one attempt of MoveData2D. The whole block is one
// injectable unit: a fault aborts the attempt and the retry re-issues every
// row, which matches how a failed scatter/gather DMA is re-queued whole.
func (rt *Runtime) move2DOnce(p *sim.Proc, dst *Buffer, src *Buffer,
	dstOff, dstStride, srcOff, srcStride int64, rows int, rowBytes int) error {
	if err := rt.faultTransfer(p, src, dst, int64(rows)*int64(rowBytes)); err != nil {
		return err
	}
	phantom := rt.opts.Phantom
	start := p.Now()
	var cat trace.Category
	var err error
	switch {
	case src.file != nil && dst.file == nil:
		cat = trace.IO
		for r := 0; r < rows && err == nil; r++ {
			s := srcOff + int64(r)*srcStride
			if phantom {
				err = src.file.Charge(p, device.Read, s, int64(rowBytes))
				continue
			}
			d := dstOff + int64(r)*dstStride
			err = src.file.ReadAt(p, dst.data[d:d+int64(rowBytes)], s)
		}
	case src.file == nil && dst.file != nil:
		cat = trace.IO
		for r := 0; r < rows && err == nil; r++ {
			d := dstOff + int64(r)*dstStride
			if phantom {
				err = dst.file.Charge(p, device.Write, d, int64(rowBytes))
				continue
			}
			s := srcOff + int64(r)*srcStride
			err = dst.file.WriteAt(p, src.data[s:s+int64(rowBytes)], d)
		}
	case src.file != nil && dst.file != nil:
		cat = trace.IO
		var tmp []byte
		if !phantom {
			tmp = rt.getScratch(int64(rowBytes))
		}
		for r := 0; r < rows && err == nil; r++ {
			if phantom {
				if err = src.file.Charge(p, device.Read, srcOff+int64(r)*srcStride, int64(rowBytes)); err == nil {
					err = dst.file.Charge(p, device.Write, dstOff+int64(r)*dstStride, int64(rowBytes))
				}
				continue
			}
			if err = src.file.ReadAt(p, tmp, srcOff+int64(r)*srcStride); err == nil {
				err = dst.file.WriteAt(p, tmp, dstOff+int64(r)*dstStride)
			}
		}
		rt.putScratch(tmp)
	default:
		cat = trace.Transfer
		if !phantom {
			err = xfer.Copy2D(dst.data, dstOff, dstStride, src.data, srcOff, srcStride, rows, rowBytes)
		}
		if err == nil {
			rt.link(src, dst).Transfer(p, src.node.Mem, dst.node.Mem, int64(rows)*int64(rowBytes))
			// Non-contiguous layouts pay a per-row descriptor cost on the
			// DMA path — the reason §VI's layout transformation wins once
			// data is reused enough.
			if srcStride != int64(rowBytes) || dstStride != int64(rowBytes) {
				per := src.node.Mem.Profile().Latency
				if l := dst.node.Mem.Profile().Latency; l > per {
					per = l
				}
				p.Sleep(sim.Time(rows) * per)
			}
		}
	}
	rt.chargeSpan(p, moveLane(cat, dst, src), cat, spanMove2D, start, p.Now(), int64(rows)*int64(rowBytes))
	return err
}

// movePhantom charges the timing of MoveData without moving bytes.
func (rt *Runtime) movePhantom(p *sim.Proc, dst, src *Buffer, dstOff, srcOff, n int64) error {
	start := p.Now()
	var cat trace.Category
	var err error
	switch {
	case src.file != nil && dst.file == nil:
		cat = trace.IO
		err = src.file.Charge(p, device.Read, srcOff, n)
		if err == nil && dst.node.Kind() == device.KindGPUMem {
			rt.pcie.Transfer(p, nil, dst.node.Mem, n)
		}
	case src.file == nil && dst.file != nil:
		cat = trace.IO
		if src.node.Kind() == device.KindGPUMem {
			rt.pcie.Transfer(p, src.node.Mem, nil, n)
		}
		err = dst.file.Charge(p, device.Write, dstOff, n)
	case src.file != nil && dst.file != nil:
		cat = trace.IO
		if err = src.file.Charge(p, device.Read, srcOff, n); err == nil {
			err = dst.file.Charge(p, device.Write, dstOff, n)
		}
	default:
		cat = trace.Transfer
		rt.link(src, dst).Transfer(p, src.node.Mem, dst.node.Mem, n)
	}
	rt.chargeSpan(p, moveLane(cat, dst, src), cat, spanMove, start, p.Now(), n)
	return err
}

// link selects the interconnect for a memory-to-memory move: PCIe when a
// GPU device memory is involved, the host DMA engine otherwise.
func (rt *Runtime) link(src, dst *Buffer) *device.Link {
	if src.node.Kind() == device.KindGPUMem || dst.node.Kind() == device.KindGPUMem {
		return rt.pcie
	}
	return rt.dma
}

// scratchPoolSlots bounds how many recycled file-to-file staging buffers
// the runtime keeps; the pool exists so a retried move (or a hot loop of
// them) does not re-allocate its n-byte scratch on every attempt.
const scratchPoolSlots = 4

// getScratch returns an n-byte staging buffer, recycling a pooled one when
// any is large enough. Concurrent tasks simply take distinct entries (or
// fresh ones when the pool runs dry), so a buffer is never shared while a
// blocking I/O charge is in flight.
func (rt *Runtime) getScratch(n int64) []byte {
	for i := len(rt.scratch) - 1; i >= 0; i-- {
		if int64(cap(rt.scratch[i])) >= n {
			b := rt.scratch[i]
			rt.scratch = append(rt.scratch[:i], rt.scratch[i+1:]...)
			return b[:n]
		}
	}
	return make([]byte, n)
}

// putScratch returns a staging buffer to the pool, evicting the smallest
// entry when full so the pool converges on the largest recent sizes.
func (rt *Runtime) putScratch(b []byte) {
	if cap(b) == 0 {
		return
	}
	if len(rt.scratch) < scratchPoolSlots {
		rt.scratch = append(rt.scratch, b)
		return
	}
	smallest := 0
	for i := 1; i < len(rt.scratch); i++ {
		if cap(rt.scratch[i]) < cap(rt.scratch[smallest]) {
			smallest = i
		}
	}
	if cap(rt.scratch[smallest]) < cap(b) {
		rt.scratch[smallest] = b
	}
}

// checkMove validates handles and ranges common to all move variants.
func checkMove(dst, src *Buffer, dstOff, srcOff, n int64) error {
	if dst == nil || src == nil {
		return fmt.Errorf("core: move with nil buffer")
	}
	if dst.released || src.released {
		return fmt.Errorf("core: move with released buffer")
	}
	if n < 0 {
		return fmt.Errorf("core: move of %d bytes", n)
	}
	if srcOff < 0 || srcOff+n > src.size {
		return fmt.Errorf("core: move source range [%d,%d) outside buffer of %d bytes",
			srcOff, srcOff+n, src.size)
	}
	if dstOff < 0 || dstOff+n > dst.size {
		return fmt.Errorf("core: move destination range [%d,%d) outside buffer of %d bytes",
			dstOff, dstOff+n, dst.size)
	}
	return nil
}
