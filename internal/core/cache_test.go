package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
)

// newCachedAPU builds a small SSD tree with the staging cache enabled.
func newCachedAPU(t *testing.T, co CacheOptions) (*sim.Engine, *Runtime) {
	t.Helper()
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 256, DRAMMiB: 32})
	opts := DefaultOptions()
	opts.Cache = co
	return e, NewRuntime(e, tree, opts)
}

// pat is the deterministic byte pattern mkInput fills its file with.
func pat(i int64) byte { return byte(i * 7) }

// mkInput creates a functional storage input of n bytes filled with pat.

func mkInput(t *testing.T, rt *Runtime, name string, n int64) *Buffer {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = pat(int64(i))
	}
	f, err := rt.CreateInput(rt.Tree().Root(), name, n, data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCachedMoveHitsSkipTheEdge(t *testing.T) {
	_, rt := newCachedAPU(t, CacheOptions{Enabled: true, CapacityBytes: 1 << 20})
	src := mkInput(t, rt, "in", 4096)
	dram := rt.Tree().Root().Children[0]

	var missTime, hitTime sim.Time
	_, err := rt.Run("cached", func(c *Ctx) error {
		t0 := c.Proc().Now()
		b1, err := c.MoveDataDownCached(dram, src, 0, 4096)
		if err != nil {
			return err
		}
		missTime = c.Proc().Now() - t0
		want := append([]byte(nil), b1.Bytes()...)
		if err := c.Unpin(b1); err != nil {
			return err
		}
		t1 := c.Proc().Now()
		b2, err := c.MoveDataDownCached(dram, src, 0, 4096)
		if err != nil {
			return err
		}
		hitTime = c.Proc().Now() - t1
		if b2 != b1 {
			return fmt.Errorf("hit returned a different buffer")
		}
		if !bytes.Equal(b2.Bytes(), want) {
			return fmt.Errorf("hit served different bytes")
		}
		return c.Unpin(b2)
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := rt.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", cs.Hits, cs.Misses)
	}
	if cs.HitBytes != 4096 || cs.MissBytes != 4096 {
		t.Fatalf("hitBytes=%d missBytes=%d", cs.HitBytes, cs.MissBytes)
	}
	if hitTime*10 > missTime {
		t.Fatalf("hit took %v, miss %v: hit should skip the storage edge", hitTime, missTime)
	}
}

func TestCacheDisabledFallsBackToPlainMove(t *testing.T) {
	_, rt := newCachedAPU(t, CacheOptions{})
	src := mkInput(t, rt, "in", 4096)
	dram := rt.Tree().Root().Children[0]
	_, err := rt.Run("fallback", func(c *Ctx) error {
		b, err := c.MoveDataDownCached(dram, src, 0, 4096)
		if err != nil {
			return err
		}
		if b.Bytes()[7] != pat(7) {
			return fmt.Errorf("fallback served wrong bytes")
		}
		// The private buffer supports extra pins and dies on the last Unpin.
		if err := c.Pin(b); err != nil {
			return err
		}
		if err := c.Unpin(b); err != nil {
			return err
		}
		return c.Unpin(b)
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs := rt.CacheStats(); cs.Any() {
		t.Fatalf("disabled cache counted activity: %+v", cs)
	}
	if live := rt.Allocator(rt.Tree().Root().Children[0]).LiveCount(); live != 0 {
		t.Fatalf("fallback buffer leaked: %d live extents", live)
	}
}

func TestCacheLRUEvictionAndPinning(t *testing.T) {
	// Pool of 8 KiB holds two 4 KiB extents.
	_, rt := newCachedAPU(t, CacheOptions{Enabled: true, CapacityBytes: 8 << 10})
	src := mkInput(t, rt, "in", 16<<10)
	dram := rt.Tree().Root().Children[0]
	_, err := rt.Run("evict", func(c *Ctx) error {
		fetch := func(off int64) (*Buffer, error) { return c.MoveDataDownCached(dram, src, off, 4<<10) }
		a, err := fetch(0)
		if err != nil {
			return err
		}
		b, err := fetch(4 << 10)
		if err != nil {
			return err
		}
		if err := c.Unpin(b); err != nil { // a stays pinned
			return err
		}
		// Third extent: must evict b (LRU unpinned), not pinned a.
		cbuf, err := fetch(8 << 10)
		if err != nil {
			return err
		}
		if rt.CacheStats().Evictions != 1 {
			return fmt.Errorf("evictions=%d", rt.CacheStats().Evictions)
		}
		// a must still hit.
		a2, err := fetch(0)
		if err != nil {
			return err
		}
		if a2 != a {
			return fmt.Errorf("pinned entry was evicted")
		}
		// b must miss again.
		before := rt.CacheStats().Misses
		b2, err := fetch(4 << 10)
		if err != nil {
			return err
		}
		if rt.CacheStats().Misses != before+1 {
			return fmt.Errorf("evicted entry did not miss")
		}
		for _, buf := range []*Buffer{a, a2, cbuf, b2} {
			if err := c.Unpin(buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheBypassWhenPinsBlockEviction(t *testing.T) {
	_, rt := newCachedAPU(t, CacheOptions{Enabled: true, CapacityBytes: 4 << 10})
	src := mkInput(t, rt, "in", 16<<10)
	dram := rt.Tree().Root().Children[0]
	_, err := rt.Run("bypass", func(c *Ctx) error {
		a, err := c.MoveDataDownCached(dram, src, 0, 4<<10) // fills the pool, pinned
		if err != nil {
			return err
		}
		b, err := c.MoveDataDownCached(dram, src, 4<<10, 4<<10) // nothing evictable
		if err != nil {
			return err
		}
		if rt.CacheStats().Bypasses != 1 {
			return fmt.Errorf("bypasses=%d", rt.CacheStats().Bypasses)
		}
		if b.Bytes()[0] != pat(4<<10) {
			return fmt.Errorf("bypass served wrong bytes")
		}
		// Oversized extents bypass too.
		huge, err := c.MoveDataDownCached(dram, src, 0, 8<<10)
		if err != nil {
			return err
		}
		if rt.CacheStats().Bypasses != 2 {
			return fmt.Errorf("oversized extent not bypassed")
		}
		for _, buf := range []*Buffer{a, b, huge} {
			if err := c.Unpin(buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCachedBufferReleaseRefusedAndWriteRefused(t *testing.T) {
	_, rt := newCachedAPU(t, CacheOptions{Enabled: true, CapacityBytes: 1 << 20})
	src := mkInput(t, rt, "in", 4096)
	dram := rt.Tree().Root().Children[0]
	_, err := rt.Run("guards", func(c *Ctx) error {
		b, err := c.MoveDataDownCached(dram, src, 0, 4096)
		if err != nil {
			return err
		}
		if err := c.Release(b); err == nil {
			return fmt.Errorf("release of cache-owned buffer accepted")
		}
		scratch, err := c.AllocAt(dram, 4096)
		if err != nil {
			return err
		}
		if err := c.MoveData(b, scratch, 0, 0, 4096); err == nil {
			return fmt.Errorf("move into cache-owned buffer accepted")
		}
		if err := c.Release(scratch); err != nil {
			return err
		}
		return c.Unpin(b)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheInvalidationOnWrite(t *testing.T) {
	_, rt := newCachedAPU(t, CacheOptions{Enabled: true, CapacityBytes: 1 << 20})
	src := mkInput(t, rt, "in", 8192)
	dram := rt.Tree().Root().Children[0]
	_, err := rt.Run("invalidate", func(c *Ctx) error {
		b, err := c.MoveDataDownCached(dram, src, 0, 4096)
		if err != nil {
			return err
		}
		if err := c.Unpin(b); err != nil {
			return err
		}
		// Overwrite the cached range of the source file.
		patch, err := c.AllocAt(dram, 512)
		if err != nil {
			return err
		}
		for i := range patch.Bytes() {
			patch.Bytes()[i] = 0xAA
		}
		if err := c.MoveData(src, patch, 1024, 0, 512); err != nil {
			return err
		}
		if err := c.Release(patch); err != nil {
			return err
		}
		if rt.CacheStats().Invalidations != 1 {
			return fmt.Errorf("invalidations=%d", rt.CacheStats().Invalidations)
		}
		// The re-read must miss and see the new bytes.
		before := rt.CacheStats().Misses
		b2, err := c.MoveDataDownCached(dram, src, 0, 4096)
		if err != nil {
			return err
		}
		if rt.CacheStats().Misses != before+1 {
			return fmt.Errorf("stale entry served after overwrite")
		}
		if b2.Bytes()[1024] != 0xAA {
			return fmt.Errorf("re-read missed the overwrite")
		}
		return c.Unpin(b2)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheInvalidationOfPinnedEntryDooms(t *testing.T) {
	_, rt := newCachedAPU(t, CacheOptions{Enabled: true, CapacityBytes: 1 << 20})
	src := mkInput(t, rt, "in", 8192)
	dram := rt.Tree().Root().Children[0]
	_, err := rt.Run("doom", func(c *Ctx) error {
		b, err := c.MoveDataDownCached(dram, src, 0, 4096) // pinned
		if err != nil {
			return err
		}
		patch, err := c.AllocAt(dram, 512)
		if err != nil {
			return err
		}
		if err := c.MoveData(src, patch, 0, 0, 512); err != nil {
			return err
		}
		if err := c.Release(patch); err != nil {
			return err
		}
		// The doomed entry is invisible: a fresh fetch misses and gets the
		// new bytes, while b stays usable until unpinned.
		before := rt.CacheStats().Misses
		b2, err := c.MoveDataDownCached(dram, src, 0, 4096)
		if err != nil {
			return err
		}
		if rt.CacheStats().Misses != before+1 {
			return fmt.Errorf("doomed entry served a hit")
		}
		if b2 == b {
			return fmt.Errorf("doomed entry re-surfaced")
		}
		if err := c.Unpin(b); err != nil { // frees the doomed buffer
			return err
		}
		return c.Unpin(b2)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCachedFetchUnderFaultsCountsOneMiss(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 256, DRAMMiB: 32})
	opts := DefaultOptions()
	opts.Cache = CacheOptions{Enabled: true, CapacityBytes: 1 << 20}
	opts.Faults = fault.New(e, fault.Config{Seed: 7, TransferFailRate: 0.5})
	rt := NewRuntime(e, tree, opts)
	src := mkInput(t, rt, "in", 32<<10)
	dram := tree.Root().Children[0]

	_, err := rt.Run("faulted", func(c *Ctx) error {
		for round := 0; round < 2; round++ {
			for i := int64(0); i < 4; i++ {
				off := i * (8 << 10)
				b, err := c.MoveDataDownCached(dram, src, off, 8<<10)
				if err != nil {
					return err
				}
				if b.Bytes()[7] != pat(off+7) {
					return fmt.Errorf("extent %d round %d served corrupt bytes", i, round)
				}
				if err := c.Unpin(b); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Resilience().Retries == 0 {
		t.Fatal("fault injection never engaged; test proves nothing")
	}
	cs := rt.CacheStats()
	// Retried fills must not double-count: one miss per extent, then hits.
	if cs.Misses != 4 || cs.Hits != 4 {
		t.Fatalf("hits=%d misses=%d under faults", cs.Hits, cs.Misses)
	}
}

func TestPrefetchOverlapsAndCounts(t *testing.T) {
	_, rt := newCachedAPU(t, CacheOptions{Enabled: true, CapacityBytes: 1 << 20, Prefetch: true})
	src := mkInput(t, rt, "in", 16<<10)
	dram := rt.Tree().Root().Children[0]
	_, err := rt.Run("prefetch", func(c *Ctx) error {
		c.Prefetch(dram, src, 0, 4096)
		// The demand fetch arrives while (or after) the prefetch flies; it
		// must coalesce onto the same entry, not fetch twice.
		b, err := c.MoveDataDownCached(dram, src, 0, 4096)
		if err != nil {
			return err
		}
		if b.Bytes()[7] != pat(7) {
			return fmt.Errorf("prefetched entry has wrong bytes")
		}
		cs := rt.CacheStats()
		if cs.Prefetches != 1 || cs.PrefetchHits != 1 {
			return fmt.Errorf("prefetches=%d prefetchHits=%d", cs.Prefetches, cs.PrefetchHits)
		}
		if cs.Misses != 0 {
			return fmt.Errorf("demand fetch missed despite prefetch")
		}
		// A second prefetch of a resident extent is a no-op.
		c.Prefetch(dram, src, 0, 4096)
		if rt.CacheStats().Prefetches != 1 {
			return fmt.Errorf("prefetch of resident extent issued")
		}
		// Invalid prefetches are silently ignored.
		c.Prefetch(dram, src, -1, 4096)
		c.Prefetch(dram, src, 0, 1<<30)
		return c.Unpin(b)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchDisabledIsNoOp(t *testing.T) {
	_, rt := newCachedAPU(t, CacheOptions{Enabled: true, CapacityBytes: 1 << 20})
	src := mkInput(t, rt, "in", 4096)
	dram := rt.Tree().Root().Children[0]
	_, err := rt.Run("noop", func(c *Ctx) error {
		c.Prefetch(dram, src, 0, 4096)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs := rt.CacheStats(); cs.Prefetches != 0 {
		t.Fatalf("prefetches=%d with prefetch disabled", cs.Prefetches)
	}
}

func TestAllocPressureEvictsCacheEntries(t *testing.T) {
	// An application allocation larger than the remaining free bytes must
	// squeeze resident cache entries out instead of failing.
	_, rt := newCachedAPU(t, CacheOptions{Enabled: true, CapacityBytes: 512 << 10})
	src := mkInput(t, rt, "in", 1<<20)
	dram := rt.Tree().Root().Children[0]
	free := dram.Mem.Free()
	_, err := rt.Run("pressure", func(c *Ctx) error {
		for off := int64(0); off < 512<<10; off += 128 << 10 {
			b, err := c.MoveDataDownCached(dram, src, off, 128<<10)
			if err != nil {
				return err
			}
			if err := c.Unpin(b); err != nil {
				return err
			}
		}
		// Allocate nearly everything: the cache must give ground.
		big, err := c.AllocAt(dram, free-(64<<10))
		if err != nil {
			return fmt.Errorf("allocation despite evictable cache failed: %w", err)
		}
		if rt.CacheStats().Evictions == 0 {
			return fmt.Errorf("no evictions under allocation pressure")
		}
		return c.Release(big)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCachedMoveEdgeValidation(t *testing.T) {
	_, rt := newCachedAPU(t, CacheOptions{Enabled: true, CapacityBytes: 1 << 20})
	src := mkInput(t, rt, "in", 4096)
	dram := rt.Tree().Root().Children[0]
	_, err := rt.Run("edges", func(c *Ctx) error {
		// Wrong edge: from a child context, dram is not a child of dram.
		err := c.Descend(dram, func(dc *Ctx) error {
			_, err := dc.MoveDataDownCached(dram, src, 0, 4096)
			return err
		})
		if err == nil {
			return fmt.Errorf("skip-level cached move accepted")
		}
		if _, err := c.MoveDataDownCached(dram, src, 0, 8192); err == nil {
			return fmt.Errorf("out-of-range cached move accepted")
		}
		if _, err := c.MoveDataDownCached(dram, nil, 0, 1); err == nil {
			return fmt.Errorf("nil-source cached move accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pin/Unpin of plain buffers is refused.
	_, err = rt.Run("pins", func(c *Ctx) error {
		b, err := c.AllocAt(dram, 64)
		if err != nil {
			return err
		}
		if err := c.Pin(b); err == nil {
			return fmt.Errorf("pin of a plain buffer accepted")
		}
		if err := c.Unpin(b); err == nil {
			return fmt.Errorf("unpin of a plain buffer accepted")
		}
		return c.Release(b)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheReport(t *testing.T) {
	_, rt := newCachedAPU(t, CacheOptions{Enabled: true, CapacityShare: 0.25, Prefetch: true})
	src := mkInput(t, rt, "in", 4096)
	dram := rt.Tree().Root().Children[0]
	if _, err := rt.Run("warm", func(c *Ctx) error {
		b, err := c.MoveDataDownCached(dram, src, 0, 4096)
		if err != nil {
			return err
		}
		return c.Unpin(b)
	}); err != nil {
		t.Fatal(err)
	}
	rep := rt.CacheReport()
	if !strings.Contains(rep, "lru+prefetch") || !strings.Contains(rep, "8 MiB") {
		t.Fatalf("report missing policy or 25%%-of-32MiB capacity:\n%s", rep)
	}
	if !strings.Contains(rep, "1 entries") {
		t.Fatalf("report missing occupancy:\n%s", rep)
	}
	off := NewRuntime(sim.NewEngine(), rt.Tree(), DefaultOptions())
	if rep := off.CacheReport(); !strings.Contains(rep, "off") {
		t.Fatalf("disabled report: %s", rep)
	}
}

func TestParallelForNeverDropsErrors(t *testing.T) {
	_, rt := newAPURuntime(t)
	boom := errors.New("boom")
	for _, width := range []int{1, 3, 8} {
		_, err := rt.Run("pf", func(c *Ctx) error {
			return c.ParallelFor(32, width, func(sub *Ctx, i int) error {
				sub.Proc().Sleep(sim.Microseconds(float64(i % 5)))
				if i%3 == 0 {
					return fmt.Errorf("%w at %d", boom, i)
				}
				return nil
			})
		})
		if !errors.Is(err, boom) {
			t.Fatalf("width %d: error dropped: %v", width, err)
		}
	}
}

func TestPipelineNeverDropsErrors(t *testing.T) {
	_, rt := newAPURuntime(t)
	boom := errors.New("boom")
	// Errors injected in every stage, at staggered items, with sleeps to
	// force interleaving at blocking points.
	for _, depth := range []int{1, 2, 4} {
		_, err := rt.Run("pipe", func(c *Ctx) error {
			return c.Pipeline(16, depth,
				func(sub *Ctx, i int) error {
					sub.Proc().Sleep(sim.Microseconds(2))
					if i == 11 {
						return fmt.Errorf("%w stage0 item %d", boom, i)
					}
					return nil
				},
				func(sub *Ctx, i int) error {
					sub.Proc().Sleep(sim.Microseconds(3))
					if i == 5 {
						return fmt.Errorf("%w stage1 item %d", boom, i)
					}
					return nil
				},
				func(sub *Ctx, i int) error {
					sub.Proc().Sleep(sim.Microseconds(1))
					return nil
				},
			)
		})
		if !errors.Is(err, boom) {
			t.Fatalf("depth %d: error dropped: %v", depth, err)
		}
	}
}
