package core

import (
	"testing"
)

// depthValue reads the node-1 queue-depth gauge from the registry.
func depthValue(t *testing.T, rt *Runtime) float64 {
	t.Helper()
	rt.SyncMetrics()
	flat := rt.Metrics().Flatten()
	for name, v := range flat {
		if name == `northup_queue_depth{node="1"}` {
			return v
		}
	}
	return 0
}

// TestQueueDepthSlotsAreAdditive is the regression test for the
// last-writer-wins depth-gauge bug: when two concurrent schedulers publish
// queue depth for the same node, the node gauge must read their SUM, and
// each slot's Close must withdraw exactly its own contribution — an
// absolute Set from one scheduler must not clobber the other's.
func TestQueueDepthSlotsAreAdditive(t *testing.T) {
	rt, _ := newMetricsRuntime(t, 0)

	s1 := rt.NewQueueDepthSlot(1)
	s2 := rt.NewQueueDepthSlot(1)

	s1.Set(3)
	if got := depthValue(t, rt); got != 3 {
		t.Fatalf("after s1=3: gauge = %v, want 3", got)
	}
	// The second scheduler publishing must ADD, not overwrite.
	s2.Set(5)
	if got := depthValue(t, rt); got != 8 {
		t.Fatalf("after s1=3, s2=5: gauge = %v, want 8 (additive)", got)
	}
	// Interleaved updates keep the sum.
	s1.Set(1)
	s2.Set(7)
	if got := depthValue(t, rt); got != 8 {
		t.Fatalf("after s1=1, s2=7: gauge = %v, want 8", got)
	}
	// Closing one slot withdraws only its share.
	s1.Close()
	if got := depthValue(t, rt); got != 7 {
		t.Fatalf("after s1.Close: gauge = %v, want 7", got)
	}
	// A closed slot is inert.
	s1.Set(100)
	if got := depthValue(t, rt); got != 7 {
		t.Fatalf("closed slot moved the gauge: %v, want 7", got)
	}
	s2.Close()
	if got := depthValue(t, rt); got != 0 {
		t.Fatalf("after both Close: gauge = %v, want 0", got)
	}
}

// TestNoteQueueDepthCompatibleWithSlots pins the legacy absolute-set entry
// point's coexistence with slots: NoteQueueDepth publishes through its own
// per-node slot, so it composes additively with scheduler slots instead of
// clobbering them.
func TestNoteQueueDepthCompatibleWithSlots(t *testing.T) {
	rt, _ := newMetricsRuntime(t, 0)

	s := rt.NewQueueDepthSlot(1)
	s.Set(4)
	rt.NoteQueueDepth(1, 10)
	if got := depthValue(t, rt); got != 14 {
		t.Fatalf("slot 4 + legacy 10: gauge = %v, want 14", got)
	}
	rt.NoteQueueDepth(1, 2) // legacy path replaces its own contribution
	if got := depthValue(t, rt); got != 6 {
		t.Fatalf("slot 4 + legacy 2: gauge = %v, want 6", got)
	}
	s.Close()
	if got := depthValue(t, rt); got != 2 {
		t.Fatalf("legacy 2 after slot close: gauge = %v, want 2", got)
	}
}

// TestQueueDepthSlotMetricsOff checks slots are safe no-ops on a runtime
// without a metrics registry.
func TestQueueDepthSlotMetricsOff(t *testing.T) {
	_, rt := newAPURuntime(t)
	s := rt.NewQueueDepthSlot(1)
	s.Set(5)
	s.Close()
	s.Set(1)
}
