package core

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Ctx is the task context of a recursive Northup function: it knows which
// tree node the task currently executes at and exposes the paper's query
// and data-management API relative to that node (get_cur_treenode,
// get_level, get_max_treelevel, data_down/up, northup_spawn, ...).
type Ctx struct {
	rt   *Runtime
	p    *sim.Proc
	node *topo.Node
}

// Proc returns the simulation process executing this task.
func (c *Ctx) Proc() *sim.Proc { return c.p }

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// Node returns the current tree node (the paper's get_cur_treenode()).
func (c *Ctx) Node() *topo.Node { return c.node }

// Level returns the current memory level (get_level()).
func (c *Ctx) Level() int { return c.node.Level }

// MaxLevel returns the deepest level of the tree (get_max_treelevel()).
func (c *Ctx) MaxLevel() int { return c.rt.tree.MaxLevel() }

// IsLeaf reports whether execution reached a leaf, the recursion's base
// case test in Listing 3.
func (c *Ctx) IsLeaf() bool { return c.node.IsLeaf() }

// Children returns the current node's children (get_children_list()).
func (c *Ctx) Children() []*topo.Node { return c.node.Children }

// Parent returns the current node's parent (get_parent()).
func (c *Ctx) Parent() *topo.Node { return c.node.Parent }

// Alloc reserves a buffer on the current node.
func (c *Ctx) Alloc(size int64) (*Buffer, error) {
	return c.rt.AllocAt(c.p, c.node, size)
}

// AllocAt reserves a buffer on an arbitrary node (setup_buffers typically
// allocates at a child before moving data down to it).
func (c *Ctx) AllocAt(node *topo.Node, size int64) (*Buffer, error) {
	return c.rt.AllocAt(c.p, node, size)
}

// Release frees a buffer. Releasing nil or releasing twice returns an
// error; the buffer is freed only on a nil return.
func (c *Ctx) Release(b *Buffer) error { return c.rt.Release(c.p, b) }

// MoveData is the unified move between any two buffers (Table I).
func (c *Ctx) MoveData(dst, src *Buffer, dstOff, srcOff, n int64) error {
	return c.rt.MoveData(c.p, dst, src, dstOff, srcOff, n)
}

// MoveData2D is the strided block variant of MoveData.
func (c *Ctx) MoveData2D(dst, src *Buffer, dstOff, dstStride, srcOff, srcStride int64, rows, rowBytes int) error {
	return c.rt.MoveData2D(c.p, dst, src, dstOff, dstStride, srcOff, srcStride, rows, rowBytes)
}

// MoveDataTransposeF32 is the layout-transforming move of §VI: the block
// arrives transposed (see Runtime.MoveDataTransposeF32).
func (c *Ctx) MoveDataTransposeF32(dst, src *Buffer, dstOff, srcOff int64, rows, cols int) error {
	return c.rt.MoveDataTransposeF32(c.p, dst, src, dstOff, srcOff, rows, cols)
}

// MoveDataDown moves bytes from a buffer on the current node to a buffer on
// one of its children (Table I's move_data_down, with the child as
// destination). It validates the edge so programs cannot silently skip
// levels.
func (c *Ctx) MoveDataDown(dst, src *Buffer, dstOff, srcOff, n int64) error {
	if src.node != c.node || dst.node.Parent != c.node {
		return fmt.Errorf("core: move_data_down from %v must go to a child of %v (got %v -> %v)",
			c.node, c.node, src.node, dst.node)
	}
	return c.MoveData(dst, src, dstOff, srcOff, n)
}

// MoveDataDownCached serves src[srcOff:srcOff+n) as a buffer resident on
// child, through the child's staging cache: a repeat of the same source
// extent is a hit and costs no edge crossing. The returned buffer is
// pinned for the caller and read-only; let go with Unpin (never Release),
// and never move data into it. With the cache disabled the call degrades
// to plain alloc + move (the returned buffer is then private, and Unpin
// releases it), so applications use one code path either way.
func (c *Ctx) MoveDataDownCached(child *topo.Node, src *Buffer, srcOff, n int64) (*Buffer, error) {
	return c.rt.moveDataDownCached(c.p, c.node, child, src, srcOff, n)
}

// Pin takes an extra reference on a buffer returned by MoveDataDownCached
// so the cache cannot evict it mid-compute.
func (c *Ctx) Pin(b *Buffer) error { return c.rt.Pin(c.p, b) }

// Unpin releases one reference taken by MoveDataDownCached or Pin.
func (c *Ctx) Unpin(b *Buffer) error { return c.rt.Unpin(c.p, b) }

// Prefetch asks the child's staging cache to fetch src[srcOff:srcOff+n)
// asynchronously — the lookahead a deterministic chunk schedule (a
// Pipeline's next item) makes possible. It is advisory and never fails;
// see Runtime cache.go.
func (c *Ctx) Prefetch(child *topo.Node, src *Buffer, srcOff, n int64) {
	c.rt.prefetchDown(c.p, c.node, child, src, srcOff, n)
}

// MoveDataUp moves bytes from a buffer on a child of the current node back
// to a buffer on the current node (Table I's move_data_up).
func (c *Ctx) MoveDataUp(dst, src *Buffer, dstOff, srcOff, n int64) error {
	if dst.node != c.node || src.node.Parent != c.node {
		return fmt.Errorf("core: move_data_up to %v must come from a child of %v (got %v -> %v)",
			c.node, c.node, src.node, dst.node)
	}
	return c.MoveData(dst, src, dstOff, srcOff, n)
}

// Descend runs fn synchronously as a task at a child node: the recursive
// call of Listing 3. The child must be a direct child of the current node.
func (c *Ctx) Descend(child *topo.Node, fn func(*Ctx) error) error {
	if child.Parent != c.node {
		return fmt.Errorf("core: descend from %v to non-child %v", c.node, child)
	}
	c.rt.chargeOverhead(c.p)
	return fn(&Ctx{rt: c.rt, p: c.p, node: child})
}

// Join is the handle of an asynchronously spawned task.
type Join struct {
	latch *sim.Latch
	err   error
}

// Wait blocks the calling task until the spawned task finishes and returns
// its error.
func (j *Join) Wait(c *Ctx) error { return j.WaitOn(c.p) }

// WaitOn is Wait for callers that hold a raw simulation process (cluster
// coordinators) rather than a task context.
func (j *Join) WaitOn(p *sim.Proc) error {
	j.latch.Wait(p)
	return j.err
}

// Spawn starts fn as a concurrent task at the given node (the asynchronous
// form of northup_spawn: chunks moving down different tree branches, or
// pipelined stages within one branch). The node may be the current node or
// any other; tree-edge discipline is enforced by the move operations, not
// by task placement.
func (c *Ctx) Spawn(name string, node *topo.Node, fn func(*Ctx) error) *Join {
	c.rt.chargeOverhead(c.p)
	j := &Join{latch: sim.NewLatch(c.rt.engine)}
	c.rt.engine.Spawn(name, func(p *sim.Proc) {
		sub := &Ctx{rt: c.rt, p: p, node: node}
		j.err = fn(sub)
		j.latch.Fire()
	})
	return j
}

// errOnce latches the first error a group of cooperating tasks reports, so
// no error is ever dropped between the check and the assignment. The
// single-threaded simulation interleaves tasks only at blocking points, so
// a bare field happens to work today — but check-then-assign from many
// tasks is exactly the fragile pattern a true-parallel backend (or the
// race detector, on a code motion) would break; one type with latch-once
// semantics keeps every stage runner honest.
type errOnce struct {
	err error
}

// record keeps err if it is the first non-nil error observed.
func (o *errOnce) record(err error) {
	if err != nil && o.err == nil {
		o.err = err
	}
}

// failed reports whether an error has been latched.
func (o *errOnce) failed() bool { return o.err != nil }

// first returns the latched error, or nil.
func (o *errOnce) first() error { return o.err }

// ParallelFor executes body for i in [0, n) using up to width concurrent
// tasks at the current node — the "#pragma for all (m, n)" loop of
// Listing 3. It returns the first error encountered (remaining iterations
// are skipped once an error is observed).
func (c *Ctx) ParallelFor(n, width int, body func(sub *Ctx, i int) error) error {
	if n <= 0 {
		return nil
	}
	if width < 1 {
		width = 1
	}
	if width > n {
		width = n
	}
	next := 0
	var eo errOnce
	wg := sim.NewWaitGroup(c.rt.engine)
	for w := 0; w < width; w++ {
		wg.Add(1)
		c.Spawn(fmt.Sprintf("%s-pf%d", c.p.Name(), w), c.node, func(sub *Ctx) error {
			defer wg.Done()
			for {
				if eo.failed() || next >= n {
					return nil
				}
				i := next
				next++
				eo.record(body(sub, i))
			}
		})
	}
	wg.Wait(c.p)
	return eo.first()
}

// Pipeline runs n items through the given stages with bounded buffering:
// stage s for item i starts only after stage s for item i-1 (stages are
// in-order) and stage s-1 for item i (dataflow). depth bounds how many items
// may sit between consecutive stages — the number of in-flight chunk
// buffers. This is the paper's multi-stage data transfer: "whenever the
// space of lower memory levels is freed, more chunks can be scheduled for
// movement" (§III-C), which overlaps I/O, transfers and computation.
func (c *Ctx) Pipeline(n, depth int, stages ...func(sub *Ctx, i int) error) error {
	if n <= 0 || len(stages) == 0 {
		return nil
	}
	if depth < 1 {
		depth = 1
	}
	nstages := len(stages)
	chans := make([]*sim.Chan, nstages-1)
	for i := range chans {
		chans[i] = sim.NewChan(c.rt.engine, depth-1)
	}
	var eo errOnce
	wg := sim.NewWaitGroup(c.rt.engine)
	for s := 0; s < nstages; s++ {
		wg.Add(1)
		c.Spawn(fmt.Sprintf("%s-stage%d", c.p.Name(), s), c.node, func(sub *Ctx) error {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if s > 0 {
					if _, ok := chans[s-1].Recv(sub.p); !ok {
						return nil // upstream aborted
					}
				}
				if !eo.failed() {
					eo.record(stages[s](sub, i))
				}
				if s < nstages-1 {
					chans[s].Send(sub.p, i)
				}
			}
			if s < nstages-1 {
				chans[s].Close()
			}
			return nil
		})
	}
	wg.Wait(c.p)
	return eo.first()
}

// Sequential runs n items through the stages strictly in order with no
// overlap: the baseline a Pipeline is measured against. It has the same
// signature as Pipeline so callers can switch between them.
func (c *Ctx) Sequential(n, depth int, stages ...func(sub *Ctx, i int) error) error {
	_ = depth
	for i := 0; i < n; i++ {
		for _, stage := range stages {
			if err := stage(c, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// GPUModel returns the GPU attached to the current node, or nil.
func (c *Ctx) GPUModel() *gpu.GPU {
	if g, ok := c.node.Processor(proc.GPU).(*gpu.GPU); ok {
		return g
	}
	return nil
}

// CPUModel returns the CPU attached to the current node or — following the
// paper's CPU-on-non-leaf exception — to any ancestor.
func (c *Ctx) CPUModel() *proc.CPUModel {
	return c.throughputProc(proc.CPU)
}

// PIMModel returns the processor-in-memory attached to the current node or
// an ancestor (§VI: a PIM is a Northup subtree rooted at its memory node).
func (c *Ctx) PIMModel() *proc.CPUModel {
	return c.throughputProc(proc.PIM)
}

// FPGAModel returns the FPGA attached to the current node's branch, or nil.
func (c *Ctx) FPGAModel() *proc.FPGAModel {
	for n := c.node; n != nil; n = n.Parent {
		if m, ok := n.Processor(proc.FPGA).(*proc.FPGAModel); ok {
			return m
		}
	}
	return nil
}

// RunFPGA streams elements through the FPGA pipeline configured with spec,
// charging reconfiguration when the bitstream changes (§VII: computation
// is a plug-in; swapping the GPU kernel for a bitstream touches no data
// movement code).
func (c *Ctx) RunFPGA(spec proc.BitstreamSpec, elements int64, fn func()) (sim.Time, error) {
	f := c.FPGAModel()
	if f == nil {
		return 0, fmt.Errorf("core: no FPGA at or above %v", c.node)
	}
	t, err := f.Run(c.p, spec, elements, fn)
	if err != nil {
		return 0, err
	}
	// The model slept exactly t before returning, so [now-t, now) is the
	// busy interval (the same shape every compute charge below uses).
	c.rt.chargeSpan(c.p, trace.Lane{Node: c.node.ID, Track: trace.TrackFPGA},
		trace.FPGACompute, spanFPGA, c.p.Now()-t, c.p.Now(), elements)
	return t, nil
}

// throughputProc finds a CPUModel-backed processor of the given kind on
// the current node's branch: first at the node or its ancestors (the
// paper's CPU-on-non-leaf exception), then down the first-child chain
// toward the leaf (trees that attach the host CPU at a deeper staging
// level, e.g. storage -> NVM -> DRAM+CPU).
func (c *Ctx) throughputProc(k proc.Kind) *proc.CPUModel {
	for n := c.node; n != nil; n = n.Parent {
		if m, ok := n.Processor(k).(*proc.CPUModel); ok {
			return m
		}
	}
	for n := c.node; n != nil; {
		if m, ok := n.Processor(k).(*proc.CPUModel); ok {
			return m
		}
		if n.IsLeaf() {
			break
		}
		n = n.Children[0]
	}
	return nil
}

// LaunchKernel dispatches a GPU kernel on the current node's GPU, charging
// GPU-compute time. It fails when the node has no GPU.
func (c *Ctx) LaunchKernel(k gpu.Kernel, groups int) (sim.Time, error) {
	g := c.GPUModel()
	if g == nil {
		return 0, fmt.Errorf("core: no GPU at %v", c.node)
	}
	c.rt.chargeOverhead(c.p)
	t, err := g.Launch(c.p, k, groups)
	if err != nil {
		return 0, err
	}
	c.rt.chargeSpan(c.p, trace.Lane{Node: c.node.ID, Track: trace.TrackGPU},
		trace.GPUCompute, spanKernel, c.p.Now()-t, c.p.Now(), int64(groups))
	return t, nil
}

// RunCPU executes fn functionally and charges one CPU core for the roofline
// time of (flops, bytes), accounted as CPU compute.
func (c *Ctx) RunCPU(flops, bytes float64, fn func()) (sim.Time, error) {
	return c.runThroughput(proc.CPU, trace.CPUCompute, flops, bytes, fn)
}

// RunCPUParallel executes fn functionally and occupies every CPU core for
// the data-parallel roofline time (an OpenMP-style parallel region).
func (c *Ctx) RunCPUParallel(flops, bytes float64, fn func()) (sim.Time, error) {
	m := c.throughputProc(proc.CPU)
	if m == nil {
		return 0, fmt.Errorf("core: no %v at or above %v", proc.CPU, c.node)
	}
	t := m.RunParallel(c.p, flops, bytes, fn)
	c.rt.chargeSpan(c.p, trace.Lane{Node: c.node.ID, Track: trace.TrackCPU},
		trace.CPUCompute, spanCPU, c.p.Now()-t, c.p.Now(), int64(bytes))
	return t, nil
}

// RunPIM executes fn functionally on the in-memory processor at or above
// the current node, spreading the task data-parallel over all PIM units at
// the memory's internal bandwidth. Running at the data's own node is the
// point: no move_data to a leaf is needed.
func (c *Ctx) RunPIM(flops, bytes float64, fn func()) (sim.Time, error) {
	m := c.throughputProc(proc.PIM)
	if m == nil {
		return 0, fmt.Errorf("core: no %v at or above %v", proc.PIM, c.node)
	}
	t := m.RunParallel(c.p, flops, bytes, fn)
	c.rt.chargeSpan(c.p, trace.Lane{Node: c.node.ID, Track: trace.TrackPIM},
		trace.PIMCompute, spanPIM, c.p.Now()-t, c.p.Now(), int64(bytes))
	return t, nil
}

func (c *Ctx) runThroughput(k proc.Kind, cat trace.Category, flops, bytes float64, fn func()) (sim.Time, error) {
	m := c.throughputProc(k)
	if m == nil {
		return 0, fmt.Errorf("core: no %v at or above %v", k, c.node)
	}
	t := m.Run(c.p, flops, bytes, fn)
	track, name := computeTrack(cat)
	c.rt.chargeSpan(c.p, trace.Lane{Node: c.node.ID, Track: track},
		cat, name, c.p.Now()-t, c.p.Now(), int64(bytes))
	return t, nil
}

// computeTrack maps a compute category to its lane track and span name.
func computeTrack(cat trace.Category) (track, name string) {
	switch cat {
	case trace.GPUCompute:
		return trace.TrackGPU, spanKernel
	case trace.PIMCompute:
		return trace.TrackPIM, spanPIM
	case trace.FPGACompute:
		return trace.TrackFPGA, spanFPGA
	default:
		return trace.TrackCPU, spanCPU
	}
}

// ChargeCPU accounts externally computed CPU time (used by the stealing
// scheduler, whose workers manage their own functional execution). The
// caller has just slept t, so the span covers [now-t, now) on the worker's
// own lane — each worker process renders as its own timeline track.
func (c *Ctx) ChargeCPU(t sim.Time) {
	c.rt.chargeSpan(c.p, trace.Lane{Node: c.node.ID, Track: c.p.Name()},
		trace.CPUCompute, spanWorkerTask, c.p.Now()-t, c.p.Now(), 0)
}

// ChargeGPU accounts externally computed GPU time.
func (c *Ctx) ChargeGPU(t sim.Time) {
	c.rt.chargeSpan(c.p, trace.Lane{Node: c.node.ID, Track: c.p.Name()},
		trace.GPUCompute, spanWorkerTask, c.p.Now()-t, c.p.Now(), 0)
}
