package core

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// This file interposes the staging cache (package cache) on the move path.
// The paper's one explicit reuse optimization — §IV-A's "the row shard is
// reused across column shards" — is generalized here into a runtime
// concern: repeated MoveDataDown of the same source extent is served from a
// resident buffer at the child level instead of re-crossing the storage
// edge. Entries are keyed by (source buffer ID, offset, length), capacity
// is managed by LRU eviction plus explicit pinning, and a lookahead
// prefetcher overlaps the next chunk's edge crossing with the current
// chunk's compute.
//
// Correctness rules:
//   - Buffers returned by MoveDataDownCached are read-only and pinned;
//     callers release them with Unpin, never Release, and never move data
//     into them.
//   - Writes through MoveData/MoveData2D/MoveDataTransposeF32 invalidate
//     overlapping cache entries of the written buffer, so a cached source
//     that is later overwritten (HotSpot's alternating temperature files)
//     can never serve stale bytes.
//   - A fetch that fails under injected faults is retried inside MoveData;
//     the pool entry is committed only after the move succeeds, so retries
//     neither double-count a miss nor publish a corrupt entry.
//   - With the cache disabled (or bypassed), the same call degrades to
//     plain alloc + move, which keeps results bit-identical to the
//     uncached baseline by construction.

// CacheOptions configures the per-memory-node staging cache.
type CacheOptions struct {
	// Enabled switches the policy on. Off (the default), every
	// MoveDataDownCached degrades to plain alloc + move.
	Enabled bool

	// CapacityShare is the fraction of each memory node's total capacity
	// the pool may occupy; 0 defaults to 0.5. The share is taken of the
	// node's capacity, not its current free bytes, so pool sizing does not
	// depend on allocation order.
	CapacityShare float64

	// CapacityBytes, when positive, overrides CapacityShare with an
	// absolute pool size per node (clamped to the node's capacity). The
	// ablation sweep drives this from 0 to the full staging level.
	CapacityBytes int64

	// Prefetch enables the lookahead prefetcher: Ctx.Prefetch issues the
	// next chunk's fetch asynchronously on the source device while the
	// current chunk computes.
	Prefetch bool
}

// defaultCacheShare is the staging-capacity fraction granted when the
// options name neither a share nor a byte size.
const defaultCacheShare = 0.5

// capacityAt returns the pool capacity the options grant on node.
func (o CacheOptions) capacityAt(n *topo.Node) int64 {
	if !o.Enabled || n.Mem == nil {
		return 0
	}
	total := n.Mem.Capacity()
	if o.CapacityBytes > 0 {
		if o.CapacityBytes > total {
			return total
		}
		return o.CapacityBytes
	}
	share := o.CapacityShare
	if share <= 0 {
		share = defaultCacheShare
	}
	if share > 1 {
		share = 1
	}
	return int64(share * float64(total))
}

// cacheRef ties a buffer to the cached-move path. Pool-resident buffers
// (nc != nil) are owned by the cache: pin counts live in the pool entry and
// the buffer is freed by eviction or invalidation, never by the
// application. Fallback buffers (nc == nil: cache off, or bypass) are
// private to the caller; their pin count lives here and the last Unpin
// releases them.
type cacheRef struct {
	nc    *nodeCache
	entry *cache.Entry
	pins  int
}

// nodeCache is the staging cache of one memory node.
type nodeCache struct {
	node *topo.Node
	pool *cache.Pool
}

// cacheAt returns the node's cache, creating it on first use, or nil when
// the cache is disabled or the node cannot host one (file stores).
func (rt *Runtime) cacheAt(n *topo.Node) *nodeCache {
	if !rt.opts.Cache.Enabled || n.Kind().IsFileStore() {
		return nil
	}
	if nc, ok := rt.caches[n.ID]; ok {
		return nc
	}
	nc := &nodeCache{node: n, pool: cache.New(rt.opts.Cache.capacityAt(n))}
	rt.caches[n.ID] = nc
	return nc
}

// moveDataDownCached serves the extent src[srcOff:srcOff+n) as a pinned
// resident buffer at child, from the child's cache when possible.
func (rt *Runtime) moveDataDownCached(p *sim.Proc, at, child *topo.Node, src *Buffer, srcOff, n int64) (*Buffer, error) {
	if src == nil {
		return nil, fmt.Errorf("core: cached move_data_down of nil buffer")
	}
	if src.node != at || child.Parent != at {
		return nil, fmt.Errorf("core: cached move_data_down from %v must go to a child of %v (got %v -> %v)",
			at, at, src.node, child)
	}
	if src.released {
		return nil, fmt.Errorf("core: cached move_data_down from released buffer")
	}
	if n <= 0 || srcOff < 0 || srcOff+n > src.size {
		return nil, fmt.Errorf("core: cached move_data_down range [%d,%d) outside buffer of %d bytes",
			srcOff, srcOff+n, src.size)
	}
	nc := rt.cacheAt(child)
	if nc == nil {
		return rt.fetchPinned(p, child, src, srcOff, n)
	}
	return nc.get(rt, p, child, src, srcOff, n)
}

// get resolves one cached fetch: hit, wait on an in-flight fetch, or miss
// (fill, or bypass when the extent cannot be cached).
func (nc *nodeCache) get(rt *Runtime, p *sim.Proc, child *topo.Node, src *Buffer, srcOff, n int64) (*Buffer, error) {
	key := cache.Key{Src: src.id, Off: srcOff, Len: n}
	cs := rt.bd.Cache()
	for {
		if e := nc.pool.Get(key); e != nil {
			if !e.Ready() {
				// A prefetch (or concurrent fetch) of this extent is in
				// flight; wait for it, then look again — it may have been
				// aborted or invalidated while we slept.
				e.Pending().(*sim.Latch).Wait(p)
				continue
			}
			rt.chargeOverhead(p)
			cs.Hits++
			cs.HitBytes += n
			rt.emitInstant(cacheLane(child.ID), "hit", p.Now(), n)
			if e.Prefetched() {
				e.ClearPrefetched()
				cs.PrefetchHits++
			}
			nc.pool.Pin(e)
			return e.Value().(*Buffer), nil
		}
		cs.Misses++
		cs.MissBytes += n
		rt.emitInstant(cacheLane(child.ID), "miss", p.Now(), n)
		if n > nc.pool.Capacity() {
			cs.Bypasses++
			rt.emitInstant(cacheLane(child.ID), "bypass", p.Now(), n)
			return rt.fetchPinned(p, child, src, srcOff, n)
		}
		latch := sim.NewLatch(rt.engine)
		e, err := nc.pool.StartFetch(key, latch)
		if err != nil {
			cs.Bypasses++
			rt.emitInstant(cacheLane(child.ID), "bypass", p.Now(), n)
			return rt.fetchPinned(p, child, src, srcOff, n)
		}
		buf, ferr := nc.fill(rt, p, e, child, src, srcOff, n, true)
		latch.Fire()
		return buf, ferr
	}
}

// fill makes room, crosses the edge, and commits the in-flight entry e.
// For demand fills the returned buffer is pinned for the caller (as a pool
// entry, or privately when eviction was blocked or the entry was
// invalidated mid-flight); prefetch fills leave the entry unpinned and
// return nil.
func (nc *nodeCache) fill(rt *Runtime, p *sim.Proc, e *cache.Entry,
	child *topo.Node, src *Buffer, srcOff, n int64, demand bool) (*Buffer, error) {

	cs := rt.bd.Cache()
	victims, ok := nc.pool.EvictFor(0)
	nc.release(rt, p, victims)
	if !ok {
		// Pinned entries block the needed room: serve around the cache.
		nc.pool.Abort(e)
		if !demand {
			return nil, nil
		}
		cs.Bypasses++
		rt.emitInstant(cacheLane(child.ID), "bypass", p.Now(), n)
		return rt.fetchPinned(p, child, src, srcOff, n)
	}
	buf, err := rt.fetchRaw(p, child, src, srcOff, n)
	if err != nil {
		nc.pool.Abort(e)
		return nil, err
	}
	if !demand {
		e.SetPrefetched()
	}
	if nc.pool.Commit(e, buf) {
		buf.cref = &cacheRef{nc: nc, entry: e}
		if demand {
			nc.pool.Pin(e)
		}
		return buf, nil
	}
	// The source range was overwritten while the fetch was in flight: the
	// entry is gone from the pool and we own the buffer. A demand caller
	// still gets it (a plain move issued at the same instant would have
	// read the same interleaving); a prefetch result is useless.
	if demand {
		buf.cref = &cacheRef{pins: 1}
		return buf, nil
	}
	_ = rt.Release(p, buf)
	return nil, nil
}

// fetchRaw allocates at node and moves the extent down — the plain
// (uncached) edge crossing, fault-retried inside MoveData.
func (rt *Runtime) fetchRaw(p *sim.Proc, node *topo.Node, src *Buffer, srcOff, n int64) (*Buffer, error) {
	buf, err := rt.AllocAt(p, node, n)
	if err != nil {
		return nil, err
	}
	if err := rt.MoveData(p, buf, src, 0, srcOff, n); err != nil {
		_ = rt.Release(p, buf)
		return nil, err
	}
	return buf, nil
}

// fetchPinned is fetchRaw returning a privately pinned fallback buffer:
// the shape MoveDataDownCached degrades to when the cache is off or
// bypassed, so application code is identical either way.
func (rt *Runtime) fetchPinned(p *sim.Proc, node *topo.Node, src *Buffer, srcOff, n int64) (*Buffer, error) {
	buf, err := rt.fetchRaw(p, node, src, srcOff, n)
	if err != nil {
		return nil, err
	}
	buf.cref = &cacheRef{pins: 1}
	return buf, nil
}

// release frees evicted cache buffers and counts the evictions.
func (nc *nodeCache) release(rt *Runtime, p *sim.Proc, victims []any) {
	cs := rt.bd.Cache()
	for _, v := range victims {
		cs.Evictions++
		b := v.(*Buffer)
		b.cref = nil
		rt.emitInstant(cacheLane(nc.node.ID), "evict", p.Now(), b.size)
		_ = rt.Release(p, b)
	}
}

// prefetchDown issues an asynchronous fetch of src[srcOff:srcOff+n) into
// child's cache. It is advisory: invalid arguments, a disabled prefetcher,
// an extent already present or in flight, or a blocked pool all make it a
// no-op. Fetch errors do not propagate (the demand fetch will retry and
// surface them) but are counted as CacheStats.PrefetchErrors.
func (rt *Runtime) prefetchDown(p *sim.Proc, at, child *topo.Node, src *Buffer, srcOff, n int64) {
	if !rt.opts.Cache.Enabled || !rt.opts.Cache.Prefetch {
		return
	}
	if src == nil || src.released || src.node != at || child.Parent != at {
		return
	}
	if n <= 0 || srcOff < 0 || srcOff+n > src.size {
		return
	}
	nc := rt.cacheAt(child)
	if nc == nil || n > nc.pool.Capacity() {
		return
	}
	key := cache.Key{Src: src.id, Off: srcOff, Len: n}
	if nc.pool.Get(key) != nil {
		return
	}
	latch := sim.NewLatch(rt.engine)
	e, err := nc.pool.StartFetch(key, latch)
	if err != nil {
		return
	}
	rt.chargeOverhead(p)
	rt.bd.Cache().Prefetches++
	rt.emitInstant(cacheLane(child.ID), "prefetch", p.Now(), n)
	rt.engine.Spawn(fmt.Sprintf("prefetch-%v", key), func(pp *sim.Proc) {
		if _, err := nc.fill(rt, pp, e, child, src, srcOff, n, false); err != nil {
			// The demand fetch will retry and surface its own error; what is
			// lost here is the lookahead, so count it instead of dropping it.
			rt.bd.Cache().PrefetchErrors++
			rt.emitInstant(cacheLane(child.ID), "prefetch-error", pp.Now(), n)
		}
		latch.Fire()
	})
}

// Pin takes an extra reference on a buffer returned by MoveDataDownCached,
// shielding a pool-resident entry from eviction (pinned shards can never be
// evicted mid-compute).
func (rt *Runtime) Pin(p *sim.Proc, b *Buffer) error {
	if b == nil || b.cref == nil {
		return fmt.Errorf("core: pin of a buffer not returned by the cached move path")
	}
	if b.released {
		return fmt.Errorf("core: pin of released buffer")
	}
	rt.chargeOverhead(p)
	if b.cref.entry != nil {
		b.cref.nc.pool.Pin(b.cref.entry)
	} else {
		b.cref.pins++
	}
	return nil
}

// Unpin releases one reference taken by MoveDataDownCached or Pin. An
// unpinned pool entry stays resident for future hits until evicted; a
// fallback buffer is released on its last unpin. Unpin is how applications
// let go of cached shards — Release on a pool-resident buffer is an error.
func (rt *Runtime) Unpin(p *sim.Proc, b *Buffer) error {
	if b == nil || b.cref == nil {
		return fmt.Errorf("core: unpin of a buffer not returned by the cached move path")
	}
	if b.released {
		return fmt.Errorf("core: unpin of released buffer")
	}
	rt.chargeOverhead(p)
	if e := b.cref.entry; e != nil {
		if !e.Pinned() {
			return fmt.Errorf("core: unpin of unpinned cache entry %v", e.Key())
		}
		if free := b.cref.nc.pool.Unpin(e); free != nil {
			// The entry was invalidated while pinned; its last user frees
			// the stale buffer.
			fb := free.(*Buffer)
			fb.cref = nil
			return rt.Release(p, fb)
		}
		return nil
	}
	if b.cref.pins <= 0 {
		return fmt.Errorf("core: unpin of unpinned buffer on %v", b.node)
	}
	b.cref.pins--
	if b.cref.pins > 0 {
		return nil
	}
	b.cref = nil
	return rt.Release(p, b)
}

// CacheResidentBytes reports how many of the n bytes of src at srcOff are
// already staged (ready, pinned, or in flight — an in-flight fetch lands
// before a newly placed task would read it) in node's cache. The probe is
// side-effect free: it never bumps LRU order, charges no time, and is safe
// to call while ranking candidate placements. Extents are matched exactly,
// mirroring the cache's own lookup, so the answer is n or 0.
func (rt *Runtime) CacheResidentBytes(node *topo.Node, src *Buffer, srcOff, n int64) int64 {
	if src == nil || src.released || n <= 0 {
		return 0
	}
	nc := rt.caches[node.ID]
	if nc == nil {
		return 0
	}
	if nc.pool.Peek(cache.Key{Src: src.id, Off: srcOff, Len: n}) != nil {
		return n
	}
	return 0
}

// invalidateRange drops every cache entry whose source extent overlaps the
// written range [off, off+n) of dst; the write paths call it so cached
// reads can never observe stale bytes. Pinned and in-flight entries are
// doomed (invisible at once, freed by their last user).
func (rt *Runtime) invalidateRange(p *sim.Proc, dst *Buffer, off, n int64) {
	cs := rt.bd.Cache()
	for _, nc := range rt.caches {
		victims, doomed := nc.pool.InvalidateRange(dst.id, off, n)
		cs.Invalidations += int64(len(victims)) + int64(doomed)
		if total := int64(len(victims)) + int64(doomed); total > 0 {
			rt.emitInstant(cacheLane(nc.node.ID), "invalidate", p.Now(), total)
		}
		for _, v := range victims {
			b := v.(*Buffer)
			b.cref = nil
			_ = rt.Release(p, b)
		}
	}
}

// checkMoveDst rejects writes into cache-owned buffers (they are read-only
// by contract) and returns whether invalidation is needed at all.
func (rt *Runtime) checkMoveDst(dst *Buffer) error {
	if dst.cref != nil && dst.cref.entry != nil {
		return fmt.Errorf("core: move into cache-owned buffer on %v (cached buffers are read-only)", dst.node)
	}
	return nil
}

// cacheRelieve evicts one least-recently-used unpinned cache entry on node
// to relieve allocation pressure, cooperating with internal/alloc: the
// application's own working set always wins over cached copies. It reports
// whether anything was freed.
func (rt *Runtime) cacheRelieve(p *sim.Proc, node *topo.Node) bool {
	nc := rt.caches[node.ID]
	if nc == nil {
		return false
	}
	v, ok := nc.pool.EvictOne()
	if !ok {
		return false
	}
	cs := rt.bd.Cache()
	cs.Evictions++
	b := v.(*Buffer)
	b.cref = nil
	rt.emitInstant(cacheLane(node.ID), "evict", p.Now(), b.size)
	_ = rt.Release(p, b)
	return true
}

// CacheStats returns the runtime's cumulative staging-cache counters.
func (rt *Runtime) CacheStats() trace.CacheStats { return *rt.bd.Cache() }

// CacheReport renders the cache configuration (and, for instantiated
// pools, occupancy) per memory node, so topology dumps document the
// experiment setup.
func (rt *Runtime) CacheReport() string {
	var sb strings.Builder
	if !rt.opts.Cache.Enabled {
		sb.WriteString("staging cache: off\n")
		return sb.String()
	}
	policy := "lru"
	if rt.opts.Cache.Prefetch {
		policy = "lru+prefetch"
	}
	fmt.Fprintf(&sb, "staging cache: policy=%s\n", policy)
	for _, n := range rt.tree.Nodes() {
		if n.Kind().IsFileStore() {
			continue
		}
		capBytes := rt.opts.Cache.capacityAt(n)
		fmt.Fprintf(&sb, "  %v: capacity %.0f MiB", n, float64(capBytes)/(1<<20))
		if nc, ok := rt.caches[n.ID]; ok {
			fmt.Fprintf(&sb, " (used %.0f MiB, %d entries)",
				float64(nc.pool.Used())/(1<<20), nc.pool.Len())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
