package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// streamPattern fills n bytes with a position-dependent pattern so any
// reordering or duplication of sub-chunks is visible in a byte compare.
func streamPattern(n int64) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + i>>9)
	}
	return data
}

// gpuLeaf returns the deepest first-child node of the tree.
func gpuLeaf(rt *Runtime) *topo.Node {
	n := rt.tree.Root()
	for len(n.Children) > 0 {
		n = n.Children[0]
	}
	return n
}

func TestStreamedDownBitIdentical(t *testing.T) {
	const n = 1<<20 + 13 // intentionally not a multiple of the chunk count
	want := streamPattern(n)
	for _, subChunks := range []int{1, 3, 5, 8} {
		_, rt := newDiscreteRuntime(t)
		src, err := rt.CreateInput(rt.tree.Root(), "in", n, want)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		_, err = rt.Run("stream", func(c *Ctx) error {
			dst, err := c.AllocAt(gpuLeaf(rt), n)
			if err != nil {
				return err
			}
			if err := c.MoveDataDownStreamed(dst, src, 0, 0, n,
				StreamOptions{SubChunks: subChunks}); err != nil {
				return err
			}
			got = append([]byte(nil), dst.Bytes()...)
			return c.Release(dst)
		})
		if err != nil {
			t.Fatalf("subChunks=%d: %v", subChunks, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("subChunks=%d: streamed bytes differ from source", subChunks)
		}
	}
}

func TestStreamedUpBitIdentical(t *testing.T) {
	const n = 512<<10 + 7
	want := streamPattern(n)
	_, rt := newDiscreteRuntime(t)
	_, err := rt.Run("stream-up", func(c *Ctx) error {
		leaf := gpuLeaf(rt)
		src, err := c.AllocAt(leaf, n)
		if err != nil {
			return err
		}
		copy(src.Bytes(), want)
		dst, err := c.AllocAt(rt.tree.Root(), n) // file-backed at the root
		if err != nil {
			return err
		}
		if err := c.MoveDataUpStreamed(dst, src, 0, 0, n,
			StreamOptions{SubChunks: 4}); err != nil {
			return err
		}
		// Read the file back through a monolithic move and compare.
		check, err := c.AllocAt(rt.tree.Root().Children[0], n)
		if err != nil {
			return err
		}
		if err := rt.MoveData(c.p, check, dst, 0, 0, n); err != nil {
			return err
		}
		if !bytes.Equal(check.Bytes(), want) {
			t.Error("streamed-up bytes differ from source")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStreamedMatchesMonolithicBytes(t *testing.T) {
	// The streamed path and a hand-rolled store-and-forward chain must
	// produce identical destination bytes.
	const n = 768 << 10
	want := streamPattern(n)

	runOnce := func(streamed bool) []byte {
		_, rt := newDiscreteRuntime(t)
		src, err := rt.CreateInput(rt.tree.Root(), "in", n, want)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		_, err = rt.Run("move", func(c *Ctx) error {
			leaf := gpuLeaf(rt)
			dst, err := c.AllocAt(leaf, n)
			if err != nil {
				return err
			}
			if streamed {
				if err := c.MoveDataDownStreamed(dst, src, 0, 0, n,
					StreamOptions{SubChunks: 6, Depth: 3}); err != nil {
					return err
				}
			} else {
				mid, err := c.AllocAt(rt.tree.Root().Children[0], n)
				if err != nil {
					return err
				}
				if err := rt.MoveData(c.p, mid, src, 0, 0, n); err != nil {
					return err
				}
				if err := rt.MoveData(c.p, dst, mid, 0, 0, n); err != nil {
					return err
				}
			}
			got = append([]byte(nil), dst.Bytes()...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	if !bytes.Equal(runOnce(true), runOnce(false)) {
		t.Fatal("streamed and store-and-forward bytes differ")
	}
}

func TestStreamedFaultsRetriedBitIdentical(t *testing.T) {
	const n = 1 << 20
	want := streamPattern(n)
	e := sim.NewEngine()
	tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
		StorageMiB: 256, DRAMMiB: 64, GPUMemMiB: 32})
	opts := DefaultOptions()
	opts.Faults = fault.New(e, fault.Config{Seed: 11, TransferFailRate: 0.4})
	rt := NewRuntime(e, tree, opts)
	src, err := rt.CreateInput(tree.Root(), "in", n, want)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	_, err = rt.Run("stream-faulty", func(c *Ctx) error {
		dst, err := c.AllocAt(gpuLeaf(rt), n)
		if err != nil {
			return err
		}
		if err := c.MoveDataDownStreamed(dst, src, 0, 0, n,
			StreamOptions{SubChunks: 7}); err != nil {
			return err
		}
		got = append([]byte(nil), dst.Bytes()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Resilience().Retries == 0 {
		t.Fatal("injector produced no retries; test is vacuous")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed bytes differ from source under injected faults")
	}
}

func TestStreamedSingleHopAdaptiveDegeneratesToMonolithic(t *testing.T) {
	// One hop, no consumer: the sizer must pick one sub-chunk and the
	// elapsed time must match the plain MoveDataDown exactly.
	const n = 8 << 20
	elapsed := func(streamed bool) sim.Time {
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 256, DRAMMiB: 64})
		opts := DefaultOptions()
		opts.Phantom = true
		rt := NewRuntime(e, tree, opts)
		stats, err := rt.Run("move", func(c *Ctx) error {
			src, err := c.Alloc(n)
			if err != nil {
				return err
			}
			dst, err := c.AllocAt(tree.Root().Children[0], n)
			if err != nil {
				return err
			}
			if streamed {
				return c.MoveDataDownStreamed(dst, src, 0, 0, n, StreamOptions{})
			}
			return c.MoveDataDown(dst, src, 0, 0, n)
		})
		if err != nil {
			t.Fatal(err)
		}
		if streamed {
			ss := rt.StreamStats()
			if ss.Streams != 1 || ss.SubChunks != 1 {
				t.Fatalf("adaptive single-hop stats = %+v, want 1 stream x 1 sub-chunk", ss)
			}
		}
		return stats.Elapsed
	}
	if s, m := elapsed(true), elapsed(false); s != m {
		t.Fatalf("adaptive single-hop streamed elapsed %v != monolithic %v", s, m)
	}
}

func TestStreamedSingleHopAsyncMatchesProcDriven(t *testing.T) {
	// A forced multi-chunk single-hop stream runs on the inline-callback
	// pump; a retry deadline (which the pump cannot honor) forces the
	// proc-driven hop loop instead. Both paths must charge identical virtual
	// time and deliver identical bytes, in both directions.
	const n = 4<<20 + 17
	want := streamPattern(n)
	run := func(forceProc bool) (sim.Time, []byte, StreamStats) {
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64, DRAMMiB: 32})
		opts := DefaultOptions()
		if forceProc {
			opts.Retry.OpTimeout = 1 << 40 // unreachably large; disables the async gate only
		}
		rt := NewRuntime(e, tree, opts)
		src, err := rt.CreateInput(tree.Root(), "in", n, want)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		stats, err := rt.Run("stream", func(c *Ctx) error {
			dram := tree.Root().Children[0]
			dst, err := c.AllocAt(dram, n)
			if err != nil {
				return err
			}
			if err := c.MoveDataDownStreamed(dst, src, 0, 0, n,
				StreamOptions{SubChunks: 4}); err != nil {
				return err
			}
			got = append([]byte(nil), dst.Bytes()...)
			// And back up: the memory-to-file combo of the pump.
			out, err := c.AllocAt(tree.Root(), n)
			if err != nil {
				return err
			}
			if err := c.MoveDataUpStreamed(out, dst, 0, 0, n,
				StreamOptions{SubChunks: 3}); err != nil {
				return err
			}
			return c.Release(dst)
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Elapsed, got, rt.StreamStats()
	}
	aEl, aBytes, aSS := run(false)
	pEl, pBytes, pSS := run(true)
	if aSS.AsyncHops != 7 || aSS.HopMoves != 7 {
		t.Fatalf("async stats = %+v, want 4+3 callback-driven hop moves", aSS)
	}
	if pSS.AsyncHops != 0 || pSS.HopMoves != 7 {
		t.Fatalf("proc-driven stats = %+v, want 7 proc-driven hop moves", pSS)
	}
	if aEl != pEl {
		t.Fatalf("async pump elapsed %v != proc-driven %v", aEl, pEl)
	}
	if !bytes.Equal(aBytes, want) || !bytes.Equal(pBytes, want) {
		t.Fatal("streamed bytes differ from source")
	}
}

func TestStreamedMultiHopOverlapFaster(t *testing.T) {
	// Two hops (SSD -> DRAM -> GPU memory): pipelining sub-chunks must beat
	// store-and-forward even without a consumer.
	const n = 64 << 20
	elapsed := func(subChunks int) sim.Time {
		e := sim.NewEngine()
		tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
			StorageMiB: 512, DRAMMiB: 256, GPUMemMiB: 128})
		opts := DefaultOptions()
		opts.Phantom = true
		rt := NewRuntime(e, tree, opts)
		src, err := rt.CreateInput(tree.Root(), "in", n, nil)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := rt.Run("stream", func(c *Ctx) error {
			dst, err := c.AllocAt(gpuLeaf(rt), n)
			if err != nil {
				return err
			}
			return c.MoveDataDownStreamed(dst, src, 0, 0, n,
				StreamOptions{SubChunks: subChunks})
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Elapsed
	}
	serial, streamed := elapsed(1), elapsed(8)
	if streamed >= serial {
		t.Fatalf("streamed (%v) not faster than store-and-forward (%v)", streamed, serial)
	}
	if ratio := float64(serial) / float64(streamed); ratio < 1.05 {
		t.Fatalf("transfer-only overlap speedup %.3f < 1.05", ratio)
	}
}

func TestStreamedConsumerOverlapSpeedup(t *testing.T) {
	// With a consumer whose per-chunk compute is comparable to the I/O,
	// streaming at >= 3 sub-chunks must deliver the paper's >= 1.3x win
	// over the store-and-forward + compute-at-the-end baseline.
	const n = 64 << 20
	elapsed := func(subChunks int) sim.Time {
		e := sim.NewEngine()
		tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
			StorageMiB: 512, DRAMMiB: 256, GPUMemMiB: 128})
		opts := DefaultOptions()
		opts.Phantom = true
		rt := NewRuntime(e, tree, opts)
		src, err := rt.CreateInput(tree.Root(), "in", n, nil)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := rt.Run("stream", func(c *Ctx) error {
			dst, err := c.AllocAt(gpuLeaf(rt), n)
			if err != nil {
				return err
			}
			// Model compute at ~SSD pace: the sum over chunks is constant
			// across sub-chunk counts, so only overlap changes the total.
			perByte := float64(sim.Second) / 1.4e9
			return c.MoveDataDownStreamed(dst, src, 0, 0, n, StreamOptions{
				SubChunks: subChunks,
				OnChunk: func(sub *Ctx, i int, off, sz int64) error {
					d := sim.Time(perByte * float64(sz))
					sub.Proc().Sleep(d)
					sub.ChargeGPU(d)
					return nil
				},
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Elapsed
	}
	serial, streamed := elapsed(1), elapsed(4)
	if ratio := float64(serial) / float64(streamed); ratio < 1.3 {
		t.Fatalf("consumer overlap speedup %.3f < 1.3 (serial %v, streamed %v)",
			ratio, serial, streamed)
	}
}

func TestStreamedTraceInterleavesAndTotalsMatch(t *testing.T) {
	// The trace must show per-hop spans overlapping in time on different
	// lanes, and every span total must still reconcile with the Breakdown
	// bit-for-bit (the stream engine adds only structural None spans).
	const n = 16 << 20
	rec := trace.NewRecorder(trace.Options{})
	e := sim.NewEngine()
	tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
		StorageMiB: 256, DRAMMiB: 128, GPUMemMiB: 64})
	opts := DefaultOptions()
	opts.Phantom = true
	opts.Trace = rec
	rt := NewRuntime(e, tree, opts)
	src, err := rt.CreateInput(tree.Root(), "in", n, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run("stream", func(c *Ctx) error {
		dst, err := c.AllocAt(gpuLeaf(rt), n)
		if err != nil {
			return err
		}
		return c.MoveDataDownStreamed(dst, src, 0, 0, n, StreamOptions{SubChunks: 8})
	})
	if err != nil {
		t.Fatal(err)
	}

	evs := rec.Events()
	// (a) hop spans appear on per-node stream lanes for both hops.
	hopLanes := map[trace.Lane][]trace.Event{}
	for _, ev := range evs {
		if ev.Kind == trace.KindSpan && ev.Name == spanStreamHop {
			hopLanes[ev.Lane] = append(hopLanes[ev.Lane], ev)
		}
	}
	if len(hopLanes) != 2 {
		t.Fatalf("hop spans on %d lanes, want 2 (one per hop)", len(hopLanes))
	}
	// (b) spans from different hops interleave: some hop-1 span starts
	// before the last hop-0 span ends.
	var lanes []trace.Lane
	for l := range hopLanes {
		lanes = append(lanes, l)
	}
	if lanes[0].Node > lanes[1].Node {
		lanes[0], lanes[1] = lanes[1], lanes[0]
	}
	first, second := hopLanes[lanes[0]], hopLanes[lanes[1]]
	lastFirstEnd := first[len(first)-1].Start + first[len(first)-1].Dur
	if second[0].Start >= lastFirstEnd {
		t.Fatalf("hops do not interleave: hop-1 starts at %v, hop-0 ends at %v",
			second[0].Start, lastFirstEnd)
	}
	// (c) charged span totals equal the Breakdown, category by category.
	for _, cat := range trace.Categories {
		if got, want := rec.CategoryBusy(cat), rt.bd.Busy(cat); got != want {
			t.Fatalf("%v: recorder busy %v != breakdown %v", cat, got, want)
		}
	}
	// (d) ring occupancy was telemetered and stayed within depth.
	sawRing := false
	for _, ev := range evs {
		if ev.Kind == trace.KindCounter && ev.Name == ctrStreamRing {
			sawRing = true
			if ev.Value < 0 || ev.Value > 2 {
				t.Fatalf("ring occupancy %d outside [0,2]", ev.Value)
			}
		}
	}
	if !sawRing {
		t.Fatal("no ring-occupancy counter events recorded")
	}
}

func TestStreamedStatsAndMetrics(t *testing.T) {
	const n = 4 << 20
	e := sim.NewEngine()
	tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
		StorageMiB: 256, DRAMMiB: 64, GPUMemMiB: 32})
	opts := DefaultOptions()
	opts.Phantom = true
	opts.Metrics = obs.NewRegistry()
	rt := NewRuntime(e, tree, opts)
	src, err := rt.CreateInput(tree.Root(), "in", n, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run("stream", func(c *Ctx) error {
		dst, err := c.AllocAt(gpuLeaf(rt), n)
		if err != nil {
			return err
		}
		return c.MoveDataDownStreamed(dst, src, 0, 0, n, StreamOptions{SubChunks: 4})
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := rt.StreamStats()
	if ss.Streams != 1 || ss.SubChunks != 4 || ss.HopMoves != 8 || ss.Bytes != n {
		t.Fatalf("stats = %+v", ss)
	}
	if ss.MaxInFlight < 2 || ss.MaxRing < 1 || ss.MaxRing > 2 {
		t.Fatalf("overlap telemetry out of range: %+v", ss)
	}
	rt.SyncMetrics()
	flat := opts.Metrics.Flatten()
	if flat[mStreamMoves] != 1 || flat[mStreamSubChunks] != 4 || flat[mStreamBytes] != n {
		t.Fatalf("stream metrics = %v", flat)
	}
	if flat[mStreamHopMoves] != 8 {
		t.Fatalf("hop moves metric = %v, want 8", flat[mStreamHopMoves])
	}
}

func TestStreamedConsumerErrorPropagatesAndReleasesStaging(t *testing.T) {
	const n = 4 << 20
	_, rt := newDiscreteRuntime(t)
	src, err := rt.CreateInput(rt.tree.Root(), "in", n, nil)
	if err != nil {
		t.Fatal(err)
	}
	dram := rt.tree.Root().Children[0]
	before := rt.Allocator(dram).LiveCount()
	_, err = rt.Run("stream-err", func(c *Ctx) error {
		dst, err := c.AllocAt(gpuLeaf(rt), n)
		if err != nil {
			return err
		}
		defer func() { _ = c.Release(dst) }()
		return c.MoveDataDownStreamed(dst, src, 0, 0, n, StreamOptions{
			SubChunks: 4,
			OnChunk: func(sub *Ctx, i int, off, sz int64) error {
				if i == 1 {
					return errStreamTest
				}
				return nil
			},
		})
	})
	if err == nil || !strings.Contains(err.Error(), "stream test") {
		t.Fatalf("err = %v, want the consumer error", err)
	}
	if after := rt.Allocator(dram).LiveCount(); after != before {
		t.Fatalf("staging leak at DRAM: used %d -> %d", before, after)
	}
}

func TestStreamedRejectsBadEndpoints(t *testing.T) {
	_, rt := newDiscreteRuntime(t)
	_, err := rt.Run("bad", func(c *Ctx) error {
		leaf := gpuLeaf(rt)
		a, err := c.AllocAt(leaf, 4096)
		if err != nil {
			return err
		}
		b, err := c.AllocAt(leaf, 4096)
		if err != nil {
			return err
		}
		if err := c.MoveDataDownStreamed(a, b, 0, 0, 4096, StreamOptions{}); err == nil {
			t.Error("down-stream between two leaf buffers not rejected")
		}
		if err := c.MoveDataUpStreamed(a, b, 0, 0, 4096, StreamOptions{}); err == nil {
			t.Error("up-stream between two leaf buffers not rejected")
		}
		root, err := c.Alloc(4096)
		if err != nil {
			return err
		}
		if err := c.MoveDataDownStreamed(a, root, 0, 4096, 4096, StreamOptions{}); err == nil {
			t.Error("out-of-range source not rejected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

var errStreamTest = &streamTestError{}

type streamTestError struct{}

func (*streamTestError) Error() string { return "stream test consumer failure" }
