package core

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// DeviceReport renders per-node device activity after a run: traffic, busy
// time, utilization against the elapsed window, and queueing — the
// system-level view a performance engineer reads next to the per-category
// breakdown. The elapsed window is the runtime's recorded total.
func (rt *Runtime) DeviceReport() string {
	elapsed := rt.bd.Total()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %10s %10s %12s %6s %9s %12s\n",
		"node", "read", "written", "busy", "util", "queued", "queue-wait")
	for _, n := range rt.tree.Nodes() {
		rb, wb, rt2, wt := n.Mem.Stats()
		busy := rt2 + wt
		util := 0.0
		if elapsed > 0 {
			util = float64(busy) / float64(elapsed)
		}
		_, queued, wait := n.Mem.QueueStats()
		fmt.Fprintf(&sb, "%-22s %10s %10s %12v %5.1f%% %9d %12v\n",
			n.String(), fmtMiB(rb), fmtMiB(wb), busy, 100*util, queued, wait)
	}
	fmt.Fprintf(&sb, "%-22s %46v\n", "elapsed", elapsed)
	if rt.res.Any() {
		sb.WriteString(rt.ResilienceReport())
	}
	return sb.String()
}

// ResilienceReport renders the runtime's fault-handling counters — how
// many transient faults were observed and absorbed (retries, waited-out
// outages, leaf failovers), and whether any operation gave up. With fault
// injection enabled this is how graceful degradation is observed; without
// it every line is zero.
func (rt *Runtime) ResilienceReport() string {
	var sb strings.Builder
	s := rt.res
	fmt.Fprintf(&sb, "%-22s %10s %10s %10s %10s %10s\n",
		"resilience", "faults", "retries", "timeouts", "failovers", "gave-up")
	fmt.Fprintf(&sb, "%-22s %10d %10d %10d %10d %10d\n",
		"", s.Faults, s.Retries, s.Timeouts, s.Failovers, s.GaveUp)
	if f := rt.opts.Faults; f != nil {
		fs := f.Stats()
		fmt.Fprintf(&sb, "%-22s %10s %10s %10s %10s\n",
			"injected", "xfer-fail", "xfer-delay", "alloc-fail", "offline")
		fmt.Fprintf(&sb, "%-22s %10d %10d %10d %10d\n",
			"", fs.TransferFails, fs.TransferDelays, fs.AllocFails, fs.OfflineRejects)
	}
	return sb.String()
}

// fmtMiB renders a byte count in MiB with one decimal.
func fmtMiB(n int64) string {
	return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
}

// Elapsed returns the total recorded by the last Run (zero before any run).
func (rt *Runtime) Elapsed() sim.Time { return rt.bd.Total() }
