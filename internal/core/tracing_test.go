package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// TestTraceDisabledZeroAlloc is the zero-cost-when-disabled guard: with no
// recorder and no observers, the emission helpers must allocate nothing, so
// an untraced run pays one branch per potential event and no garbage.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	_, rt := newAPURuntime(t)
	if rt.traceActive() {
		t.Fatal("tracing active on a default runtime")
	}
	lane := trace.Lane{Node: 1, Track: trace.TrackXfer}
	allocs := testing.AllocsPerRun(200, func() {
		rt.chargeSpan(nil, lane, trace.Transfer, spanMove, 0, 10, 64)
		rt.emitSpan(lane, trace.None, spanWorkerTask, 0, 10, 0)
		rt.emitInstant(lane, "steal", 5, 1)
		rt.emitCounter(lane, "depth", 5, 3)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f times per emission round", allocs)
	}
}

// BenchmarkChargeSpanDisabled is the -benchmem witness for the same
// property: the per-charge cost with tracing off is a branch, not garbage.
func BenchmarkChargeSpanDisabled(b *testing.B) {
	e := newBenchRuntime(b)
	lane := trace.Lane{Node: 1, Track: trace.TrackXfer}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.chargeSpan(nil, lane, trace.Transfer, spanMove, 0, 10, 64)
	}
}

// newBenchRuntime mirrors newAPURuntime for benchmarks.
func newBenchRuntime(b *testing.B) *Runtime {
	b.Helper()
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 256, DRAMMiB: 32})
	return NewRuntime(e, tree, DefaultOptions())
}

// TestTraceObserverWithoutRecorder checks the observer path alone activates
// tracing (the profiled scheduler's mode) and that removal deactivates it.
func TestTraceObserverWithoutRecorder(t *testing.T) {
	_, rt := newAPURuntime(t)
	var got []trace.Event
	remove := rt.AddSpanObserver(func(ev trace.Event) { got = append(got, ev) })
	if !rt.traceActive() {
		t.Fatal("observer did not activate tracing")
	}
	rt.emitSpan(trace.Lane{Node: 0, Track: trace.TrackIO}, trace.IO, spanMove, 0, 7, 9)
	if len(got) != 1 || got[0].Dur != 7 || got[0].Value != 9 {
		t.Fatalf("observer saw %+v", got)
	}
	remove()
	if rt.traceActive() {
		t.Fatal("tracing still active after observer removal")
	}
	rt.emitSpan(trace.Lane{Node: 0, Track: trace.TrackIO}, trace.IO, spanMove, 0, 7, 9)
	if len(got) != 1 {
		t.Fatal("removed observer still invoked")
	}
}

// TestChargeSpanKeepsBreakdownAndRecorderInStep asserts the single-charge-
// point invariant at its source: one chargeSpan call adds the identical
// duration to the Breakdown category and to the recorder's busy tally.
func TestChargeSpanKeepsBreakdownAndRecorderInStep(t *testing.T) {
	rec := trace.NewRecorder(trace.Options{})
	_, rt := newAPURuntime(t)
	rt.rec = rec
	before := rt.bd.Busy(trace.Transfer)
	rt.chargeSpan(nil, trace.Lane{Node: 1, Track: trace.TrackXfer}, trace.Transfer, spanMove, 100, 350, 4096)
	if d := rt.bd.Busy(trace.Transfer) - before; d != 250 {
		t.Fatalf("breakdown gained %v, want 250", d)
	}
	if d := rec.CategoryBusy(trace.Transfer); d != 250 {
		t.Fatalf("recorder tallied %v, want 250", d)
	}
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Value != 4096 || evs[0].Start != 100 || evs[0].Dur != 250 {
		t.Fatalf("recorded %+v", evs)
	}
}
