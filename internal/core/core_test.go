package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// newAPURuntime builds a small 2-level SSD topology and runtime.
func newAPURuntime(t *testing.T) (*sim.Engine, *Runtime) {
	t.Helper()
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 256, DRAMMiB: 32})
	return e, NewRuntime(e, tree, DefaultOptions())
}

// newDiscreteRuntime builds the 3-level discrete-GPU topology and runtime.
func newDiscreteRuntime(t *testing.T) (*sim.Engine, *Runtime) {
	t.Helper()
	e := sim.NewEngine()
	tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
		StorageMiB: 256, DRAMMiB: 64, GPUMemMiB: 32})
	return e, NewRuntime(e, tree, DefaultOptions())
}

func TestRunReportsElapsedAndLevelQueries(t *testing.T) {
	_, rt := newDiscreteRuntime(t)
	var levels []int
	stats, err := rt.Run("walk", func(c *Ctx) error {
		// Walk from root to leaf recording levels, like Listing 3's
		// recursion skeleton.
		var step func(c *Ctx) error
		step = func(c *Ctx) error {
			levels = append(levels, c.Level())
			if c.IsLeaf() {
				if c.Level() != c.MaxLevel() {
					t.Errorf("leaf at %d, max %d", c.Level(), c.MaxLevel())
				}
				return nil
			}
			return c.Descend(c.Children()[0], step)
		}
		return step(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 || levels[0] != 0 || levels[2] != 2 {
		t.Fatalf("levels = %v", levels)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("no time charged for runtime ops")
	}
}

func TestDescendRejectsNonChild(t *testing.T) {
	_, rt := newDiscreteRuntime(t)
	_, err := rt.Run("bad", func(c *Ctx) error {
		leaf := c.rt.tree.Node(2) // grandchild
		return c.Descend(leaf, func(*Ctx) error { return nil })
	})
	if err == nil || !strings.Contains(err.Error(), "non-child") {
		t.Fatalf("err = %v", err)
	}
}

func TestAllocReleaseOnEveryKind(t *testing.T) {
	_, rt := newDiscreteRuntime(t)
	_, err := rt.Run("alloc", func(c *Ctx) error {
		for _, n := range rt.tree.Nodes() {
			b, err := c.AllocAt(n, 4096)
			if err != nil {
				return err
			}
			if b.OnStorage() != n.Kind().IsFileStore() {
				t.Errorf("%v: OnStorage=%v", n, b.OnStorage())
			}
			if !b.OnStorage() && len(b.Bytes()) != 4096 {
				t.Errorf("%v: payload %d bytes", n, len(b.Bytes()))
			}
			c.Release(b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All space returned.
	for _, n := range rt.tree.Nodes() {
		if n.Mem.Used() != 0 {
			t.Errorf("%v: %d bytes leaked", n, n.Mem.Used())
		}
	}
	if rt.Breakdown().Busy(trace.BufferSetup) <= 0 {
		t.Fatal("no buffer-setup time accounted")
	}
}

func TestStorageBufferBytesPanics(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("x", func(c *Ctx) error {
		b, err := c.Alloc(128) // root = SSD
		if err != nil {
			return err
		}
		defer c.Release(b)
		defer func() {
			if recover() == nil {
				t.Error("Bytes() on storage buffer did not panic")
			}
		}()
		_ = b.Bytes()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMoveDataThroughTheTree(t *testing.T) {
	// storage -> DRAM -> GPU mem -> DRAM -> storage round trip, checking
	// both function (bytes) and accounting (IO vs Transfer categories).
	_, rt := newDiscreteRuntime(t)
	root := rt.tree.Node(0)
	dram := rt.tree.Node(1)
	gmem := rt.tree.Node(2)
	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	_, err := rt.Run("roundtrip", func(c *Ctx) error {
		disk, err := c.AllocAt(root, 8192)
		if err != nil {
			return err
		}
		host, err := c.AllocAt(dram, 8192)
		if err != nil {
			return err
		}
		dev, err := c.AllocAt(gmem, 8192)
		if err != nil {
			return err
		}
		// Seed the storage buffer by staging through the host.
		copy(host.Bytes(), payload)
		if err := c.MoveData(disk, host, 0, 0, 8192); err != nil {
			return err
		}
		// Clear host, then pull down the tree.
		for i := range host.Bytes() {
			host.Bytes()[i] = 0
		}
		if err := c.MoveData(host, disk, 0, 0, 8192); err != nil {
			return err
		}
		if err := c.MoveData(dev, host, 0, 0, 8192); err != nil {
			return err
		}
		if !bytes.Equal(dev.Bytes(), payload) {
			t.Error("payload corrupted on the way down")
		}
		// Mutate on "GPU", push back up.
		dev.Bytes()[0] ^= 0xFF
		if err := c.MoveData(host, dev, 0, 0, 8192); err != nil {
			return err
		}
		if err := c.MoveData(disk, host, 0, 0, 8192); err != nil {
			return err
		}
		// Read back from storage to verify.
		check, err := c.AllocAt(dram, 8192)
		if err != nil {
			return err
		}
		if err := c.MoveData(check, disk, 0, 0, 8192); err != nil {
			return err
		}
		if check.Bytes()[0] != payload[0]^0xFF || !bytes.Equal(check.Bytes()[1:], payload[1:]) {
			t.Error("payload corrupted on the way up")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	bd := rt.Breakdown()
	if bd.Busy(trace.IO) <= 0 {
		t.Fatal("no IO time accounted for storage moves")
	}
	if bd.Busy(trace.Transfer) <= 0 {
		t.Fatal("no transfer time accounted for PCIe moves")
	}
}

func TestMoveDataDownUpEnforceEdges(t *testing.T) {
	_, rt := newDiscreteRuntime(t)
	_, err := rt.Run("edges", func(c *Ctx) error {
		root := rt.tree.Node(0)
		dram := rt.tree.Node(1)
		gmem := rt.tree.Node(2)
		rb, _ := c.AllocAt(root, 64)
		db, _ := c.AllocAt(dram, 64)
		gb, _ := c.AllocAt(gmem, 64)
		// Legal: root ctx moving root->dram.
		if err := c.MoveDataDown(db, rb, 0, 0, 64); err != nil {
			t.Errorf("legal move_data_down failed: %v", err)
		}
		// Illegal: root ctx moving root->gmem skips a level.
		if err := c.MoveDataDown(gb, rb, 0, 0, 64); err == nil {
			t.Error("level-skipping move_data_down allowed")
		}
		// Legal: dram ctx moving gmem->dram (up one level).
		return c.Descend(dram, func(dc *Ctx) error {
			if err := dc.MoveDataUp(db, gb, 0, 0, 64); err != nil {
				t.Errorf("legal move_data_up failed: %v", err)
			}
			if err := dc.MoveDataUp(rb, gb, 0, 0, 64); err == nil {
				t.Error("move_data_up to non-current node allowed")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMoveDataValidation(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("validate", func(c *Ctx) error {
		dram := rt.tree.Node(1)
		a, _ := c.AllocAt(dram, 100)
		b, _ := c.AllocAt(dram, 100)
		if err := c.MoveData(a, b, 90, 0, 20); err == nil {
			t.Error("destination overflow accepted")
		}
		if err := c.MoveData(a, b, 0, 90, 20); err == nil {
			t.Error("source overflow accepted")
		}
		if err := c.MoveData(a, b, 0, 0, -1); err == nil {
			t.Error("negative size accepted")
		}
		if err := c.MoveData(a, nil, 0, 0, 1); err == nil {
			t.Error("nil source accepted")
		}
		if err := c.MoveData(a, b, 0, 0, 0); err != nil {
			t.Errorf("zero-size move failed: %v", err)
		}
		c.Release(b)
		if err := c.MoveData(a, b, 0, 0, 10); err == nil {
			t.Error("released source accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMoveData2DStorageVsMem(t *testing.T) {
	_, rt := newAPURuntime(t)
	root, dram := rt.tree.Node(0), rt.tree.Node(1)
	const rows, rowBytes = 4, 16
	_, err := rt.Run("move2d", func(c *Ctx) error {
		disk, _ := c.AllocAt(root, 1024)
		host, _ := c.AllocAt(dram, 1024)
		for i := range host.Bytes() {
			host.Bytes()[i] = byte(i)
		}
		// Host block -> strided storage layout and back.
		if err := c.MoveData2D(disk, host, 0, 64, 0, int64(rowBytes), rows, rowBytes); err != nil {
			return err
		}
		back, _ := c.AllocAt(dram, int64(rows*rowBytes))
		if err := c.MoveData2D(back, disk, 0, int64(rowBytes), 0, 64, rows, rowBytes); err != nil {
			return err
		}
		if !bytes.Equal(back.Bytes(), host.Bytes()[:rows*rowBytes]) {
			t.Error("2-D storage round trip mismatch")
		}
		// Mem->mem strided extraction.
		sub, _ := c.AllocAt(dram, 32)
		if err := c.MoveData2D(sub, host, 0, 8, 16, 64, 4, 8); err != nil {
			return err
		}
		for r := 0; r < 4; r++ {
			for j := 0; j < 8; j++ {
				if sub.Bytes()[r*8+j] != byte(16+r*64+j) {
					t.Fatalf("sub[%d,%d] = %d", r, j, sub.Bytes()[r*8+j])
				}
			}
		}
		if err := c.MoveData2D(sub, host, 0, 8, 1000, 64, 4, 8); err == nil {
			t.Error("out-of-range 2-D move accepted")
		}
		if err := c.MoveData2D(sub, host, 0, -8, 0, 64, 4, 8); err == nil {
			t.Error("negative stride accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleReleaseReturnsError(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("dblfree", func(c *Ctx) error {
		b, err := c.AllocAt(rt.tree.Node(1), 64)
		if err != nil {
			return err
		}
		if err := c.Release(b); err != nil {
			t.Errorf("first release failed: %v", err)
		}
		used := rt.tree.Node(1).Mem.Used()
		if err := c.Release(b); err == nil {
			t.Error("double release did not return an error")
		}
		if got := rt.tree.Node(1).Mem.Used(); got != used {
			t.Errorf("double release changed reservation: %d -> %d", used, got)
		}
		if err := c.Release(nil); err == nil {
			t.Error("nil release did not return an error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllocBeyondCapacityFails(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("big", func(c *Ctx) error {
		if _, err := c.AllocAt(rt.tree.Node(1), 1<<40); err == nil {
			t.Error("absurd allocation succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	_, rt := newAPURuntime(t)
	seen := make([]int, 20)
	_, err := rt.Run("pf", func(c *Ctx) error {
		return c.ParallelFor(20, 4, func(sub *Ctx, i int) error {
			sub.Proc().Sleep(sim.Time(i%3) * sim.Microsecond)
			seen[i]++
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d executed %d times", i, n)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("pf-err", func(c *Ctx) error {
		return c.ParallelFor(10, 3, func(sub *Ctx, i int) error {
			if i == 4 {
				return errBoom
			}
			return nil
		})
	})
	if err != errBoom {
		t.Fatalf("err = %v", err)
	}
}

var errBoom = &testError{"boom"}

type testError struct{ s string }

func (e *testError) Error() string { return e.s }

func TestPipelineOverlapsStages(t *testing.T) {
	// Two stages of 10ms over 4 items: serial = 80ms, pipelined ~ 50ms.
	_, rt := newAPURuntime(t)
	var order []string
	stats, err := rt.Run("pipe", func(c *Ctx) error {
		stage := func(name string) func(*Ctx, int) error {
			return func(sub *Ctx, i int) error {
				sub.Proc().Sleep(10 * sim.Millisecond)
				order = append(order, name)
				return nil
			}
		}
		return c.Pipeline(4, 2, stage("load"), stage("compute"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Elapsed >= 80*sim.Millisecond {
		t.Fatalf("no overlap: elapsed %v", stats.Elapsed)
	}
	if stats.Elapsed < 50*sim.Millisecond {
		t.Fatalf("impossible overlap: elapsed %v", stats.Elapsed)
	}
	if len(order) != 8 {
		t.Fatalf("%d stage executions", len(order))
	}
}

func TestPipelineDepthLimitsBuffering(t *testing.T) {
	// With depth 1, the loader may run at most 1 item ahead of compute:
	// item i+1 loads only after compute finishes item i. Slow compute,
	// fast load -> elapsed ~= load(0) + n*compute.
	_, rt := newAPURuntime(t)
	stats, err := rt.Run("pipe1", func(c *Ctx) error {
		load := func(sub *Ctx, i int) error {
			sub.Proc().Sleep(1 * sim.Millisecond)
			return nil
		}
		compute := func(sub *Ctx, i int) error {
			sub.Proc().Sleep(10 * sim.Millisecond)
			return nil
		}
		return c.Pipeline(5, 1, load, compute)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 51 * sim.Millisecond
	if stats.Elapsed < want || stats.Elapsed > want+sim.Millisecond {
		t.Fatalf("elapsed %v, want ~%v", stats.Elapsed, want)
	}
}

func TestPipelinePropagatesError(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("pipe-err", func(c *Ctx) error {
		return c.Pipeline(6, 2,
			func(sub *Ctx, i int) error { return nil },
			func(sub *Ctx, i int) error {
				if i == 2 {
					return errBoom
				}
				return nil
			})
	})
	if err != errBoom {
		t.Fatalf("err = %v", err)
	}
}

func TestSpawnJoin(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("spawn", func(c *Ctx) error {
		leaf := rt.tree.Node(1)
		j1 := c.Spawn("a", leaf, func(sub *Ctx) error {
			sub.Proc().Sleep(5 * sim.Millisecond)
			return nil
		})
		j2 := c.Spawn("b", leaf, func(sub *Ctx) error {
			sub.Proc().Sleep(3 * sim.Millisecond)
			return errBoom
		})
		if err := j1.Wait(c); err != nil {
			t.Errorf("j1 err = %v", err)
		}
		if err := j2.Wait(c); err != errBoom {
			t.Errorf("j2 err = %v", err)
		}
		if c.Proc().Now() < 5*sim.Millisecond {
			t.Error("join returned before spawned tasks finished")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeAtLeaf(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64,
		DRAMMiB: 32, WithCPU: true})
	rt := NewRuntime(e, tree, DefaultOptions())
	ran := false
	_, err := rt.Run("leafcompute", func(c *Ctx) error {
		return c.Descend(c.Children()[0], func(lc *Ctx) error {
			if lc.GPUModel() == nil {
				t.Error("no GPU at leaf")
			}
			if lc.CPUModel() == nil {
				t.Error("no CPU at leaf")
			}
			if _, err := lc.LaunchKernel(gpuNoopKernel(&ran), 8); err != nil {
				return err
			}
			_, err := lc.RunCPU(1e6, 1e5, nil)
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("kernel body did not run")
	}
	bd := rt.Breakdown()
	if bd.Busy(trace.GPUCompute) <= 0 || bd.Busy(trace.CPUCompute) <= 0 {
		t.Fatalf("compute not accounted: %s", bd)
	}
}

func TestCPUModelFoundOnAncestor(t *testing.T) {
	// In the discrete topology the CPU sits on the DRAM (non-leaf) node;
	// a leaf ctx must still find it (the paper's exception).
	_, rt := newDiscreteRuntime(t)
	_, err := rt.Run("cpu-up", func(c *Ctx) error {
		leaf := rt.tree.Node(2)
		return c.Spawn("leaf", leaf, func(lc *Ctx) error {
			if lc.CPUModel() == nil {
				t.Error("leaf ctx cannot see ancestor CPU")
			}
			return nil
		}).Wait(c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLaunchKernelWithoutGPU(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("nogpu", func(c *Ctx) error {
		// Root (SSD) has no GPU.
		_, err := c.LaunchKernel(gpuNoopKernel(nil), 1)
		if err == nil {
			t.Error("kernel launch without GPU succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeOverheadStaysBelowOnePercent(t *testing.T) {
	// §V-B: with coarse-grained chunks, runtime bookkeeping is <1% of
	// total. Do a plausible chunked copy workload and check.
	_, rt := newAPURuntime(t)
	root, dram := rt.tree.Node(0), rt.tree.Node(1)
	_, err := rt.Run("overhead", func(c *Ctx) error {
		const chunk = 1 << 20
		disk, err := c.AllocAt(root, 16*chunk)
		if err != nil {
			return err
		}
		for i := 0; i < 16; i++ {
			hb, err := c.AllocAt(dram, chunk)
			if err != nil {
				return err
			}
			if err := c.MoveData(hb, disk, 0, int64(i)*chunk, chunk); err != nil {
				return err
			}
			if err := c.MoveData(disk, hb, int64(i)*chunk, 0, chunk); err != nil {
				return err
			}
			c.Release(hb)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	bd := rt.Breakdown()
	frac := bd.FractionOfTotal(trace.Runtime)
	if frac >= 0.01 {
		t.Fatalf("runtime overhead %.2f%% of total, paper claims <1%%", 100*frac)
	}
	if frac <= 0 {
		t.Fatal("runtime overhead not accounted at all")
	}
}

func TestPiecesToFit(t *testing.T) {
	cases := []struct {
		total, free int64
		bufs        int
		want        int
	}{
		{100, 1000, 1, 1},
		{1000, 1000, 1, 1},
		{1000, 999, 1, 2},
		{1 << 30, 1 << 28, 3, 12},
		{0, 100, 1, 1},
	}
	for _, c := range cases {
		if got := PiecesToFit(c.total, c.free, c.bufs); got != c.want {
			t.Errorf("PiecesToFit(%d,%d,%d) = %d, want %d",
				c.total, c.free, c.bufs, got, c.want)
		}
	}
	// Feasibility property: the chosen piece count always fits.
	for _, c := range cases {
		if c.total == 0 {
			continue
		}
		got := PiecesToFit(c.total, c.free, c.bufs)
		if int64(c.bufs)*(c.total/int64(got)) > c.free {
			t.Errorf("PiecesToFit(%d,%d,%d) = %d does not fit",
				c.total, c.free, c.bufs, got)
		}
	}
}

func TestDeviceReport(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("traffic", func(c *Ctx) error {
		disk, err := c.Alloc(1 << 20)
		if err != nil {
			return err
		}
		host, err := c.AllocAt(rt.tree.Node(1), 1<<20)
		if err != nil {
			return err
		}
		return c.MoveData(host, disk, 0, 0, 1<<20)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := rt.DeviceReport()
	for _, frag := range []string{"node0(ssd,L0)", "node1(mem,L1)", "1.0MiB", "util", "elapsed"} {
		if !strings.Contains(rep, frag) {
			t.Fatalf("device report missing %q:\n%s", frag, rep)
		}
	}
	if rt.Elapsed() <= 0 {
		t.Fatal("Elapsed not recorded")
	}
}

func TestCapacityExhaustionFailsCleanly(t *testing.T) {
	// An application that overfills a level must get an error back through
	// the recursive call chain — no deadlock, no panic, engine reusable.
	_, rt := newAPURuntime(t)
	_, err := rt.Run("overfill", func(c *Ctx) error {
		dram := rt.tree.Node(1)
		var bufs []*Buffer
		for {
			b, err := c.AllocAt(dram, 8<<20)
			if err != nil {
				for _, old := range bufs {
					c.Release(old)
				}
				return err
			}
			bufs = append(bufs, b)
		}
	})
	if err == nil {
		t.Fatal("overfill did not error")
	}
	// The runtime survives for a subsequent run.
	if _, err := rt.Run("again", func(c *Ctx) error { return nil }); err != nil {
		t.Fatalf("runtime unusable after capacity error: %v", err)
	}
	if rt.tree.Node(1).Mem.Used() != 0 {
		t.Fatal("capacity not restored after failed run")
	}
}

func TestSequentialRunsStagesInOrder(t *testing.T) {
	_, rt := newAPURuntime(t)
	var order []string
	stats, err := rt.Run("seq", func(c *Ctx) error {
		return c.Sequential(3, 2,
			func(sub *Ctx, i int) error {
				sub.Proc().Sleep(10 * sim.Millisecond)
				order = append(order, "load")
				return nil
			},
			func(sub *Ctx, i int) error {
				sub.Proc().Sleep(10 * sim.Millisecond)
				order = append(order, "compute")
				return nil
			})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "load,compute,load,compute,load,compute"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s", got)
	}
	// No overlap: exactly 6 x 10ms.
	if stats.Elapsed < 60*sim.Millisecond {
		t.Fatalf("sequential elapsed %v < 60ms", stats.Elapsed)
	}
}

func TestSequentialPropagatesError(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("seq-err", func(c *Ctx) error {
		return c.Sequential(5, 1, func(sub *Ctx, i int) error {
			if i == 2 {
				return errBoom
			}
			return nil
		})
	})
	if err != errBoom {
		t.Fatalf("err = %v", err)
	}
}
