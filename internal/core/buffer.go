package core

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Buffer is the paper's opaque buffer handle (the "void pointer" of Table I
// and §III-D): space on some tree node, usable with MoveData regardless of
// whether the node is a file storage, host DRAM, or GPU device memory.
//
// For memory-kind nodes the buffer carries a real byte payload (kernels
// compute on it); for file-backed nodes the payload lives in a simulated
// file and is only reachable through MoveData — exactly the load/store
// versus I/O split the unified interface hides.
type Buffer struct {
	node *topo.Node
	size int64
	id   int64 // stable identity; cache entries key on it

	ext  alloc.Extent  // mem-kind nodes
	data []byte        // mem-kind nodes: functional payload
	file *storage.File // file-backed nodes

	cref     *cacheRef // non-nil when the cached move path owns/tracks it
	released bool
}

// ID returns the buffer's stable identity (the Src half of a cache key).
func (b *Buffer) ID() int64 { return b.id }

// Node returns the tree node the buffer lives on.
func (b *Buffer) Node() *topo.Node { return b.node }

// Size returns the buffer's size in bytes.
func (b *Buffer) Size() int64 { return b.size }

// OnStorage reports whether the buffer is file-backed (I/O access only).
func (b *Buffer) OnStorage() bool { return b.file != nil }

// Bytes returns the functional payload of a memory-kind buffer. It panics
// for file-backed buffers: storage content is only reachable via MoveData,
// as dereferencing a disk address would be on real hardware.
func (b *Buffer) Bytes() []byte {
	if b.file != nil {
		panic(fmt.Sprintf("core: Bytes() on storage buffer %q", b.file.Name()))
	}
	return b.data
}

// File returns the backing file of a storage buffer (nil otherwise);
// used by preprocessing utilities.
func (b *Buffer) File() *storage.File { return b.file }

// allocSetupCost models the buffer-creation overhead per device kind:
// file creation is a metadata operation; clCreateBuffer-style device
// allocations cost tens of microseconds; host mallocs are cheap.
func allocSetupCost(k device.Kind) sim.Time {
	switch {
	case k.IsFileStore():
		return sim.Microseconds(150)
	case k == device.KindGPUMem:
		return sim.Microseconds(30)
	default:
		return sim.Microseconds(2)
	}
}

// AllocAt reserves size bytes on node and returns the buffer handle,
// charging buffer-setup time. This is Table I's alloc(size, tree_node).
// Injected transient ENOSPC (allocation pressure) and node outages are
// retried under the runtime's RetryPolicy; genuine capacity exhaustion
// surfaces as *device.ErrCapacity without retrying.
func (rt *Runtime) AllocAt(p *sim.Proc, node *topo.Node, size int64) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: alloc %d bytes on %v", size, node)
	}
	rt.chargeOverhead(p)
	var b *Buffer
	err := rt.withRetry(p, "alloc", func() error {
		// Each attempt pays the setup cost: a refused clCreateBuffer or
		// file creation still burns the round trip.
		cost := allocSetupCost(node.Kind())
		costStart := p.Now()
		p.Sleep(cost)
		rt.chargeSpan(p, trace.Lane{Node: node.ID, Track: trace.TrackAlloc},
			trace.BufferSetup, spanAlloc, costStart, p.Now(), size)
		if rt.opts.Faults != nil {
			if err := rt.opts.Faults.Alloc(p, node.ID, size); err != nil {
				return err
			}
		}
		b = &Buffer{node: node, size: size}
		if node.Kind().IsFileStore() {
			rt.bufSeq++
			name := fmt.Sprintf("nubuf-%04d", rt.bufSeq)
			f, err := node.Store.Create(name, size)
			if err != nil {
				return err
			}
			b.file = f
			return nil
		}
		ext, err := rt.allocs[node.ID].Alloc(size)
		// Under pressure the node's staging cache gives ground: evict one
		// LRU entry at a time until the allocation fits or nothing
		// evictable remains — the application's working set always wins
		// over cached copies.
		for err != nil && rt.cacheRelieve(p, node) {
			ext, err = rt.allocs[node.ID].Alloc(size)
		}
		if err != nil {
			return fmt.Errorf("core: alloc on %v: %w", node, err)
		}
		b.ext = ext
		if !rt.opts.Phantom {
			b.data = make([]byte, size)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	b.id = rt.nextBufID()
	return b, nil
}

// Release frees the buffer's space (Table I's release). Releasing nil or
// releasing twice returns an error (and frees nothing), so recovery paths
// that double-release under fault cleanup degrade to an error instead of
// crashing the whole simulation. Buffers owned by the staging cache are
// refused — their lifetime belongs to the pool; let go with Unpin.
func (rt *Runtime) Release(p *sim.Proc, b *Buffer) error {
	if b == nil {
		return fmt.Errorf("core: release of nil buffer")
	}
	if b.cref != nil && b.cref.entry != nil {
		return fmt.Errorf("core: release of cache-owned buffer on %v (use Unpin)", b.node)
	}
	if b.released {
		return fmt.Errorf("core: double release of buffer on %v", b.node)
	}
	b.released = true
	rt.chargeOverhead(p)
	if b.file != nil {
		if err := b.node.Store.Remove(b.file.Name()); err != nil {
			return fmt.Errorf("core: releasing storage buffer: %w", err)
		}
		return nil
	}
	rt.allocs[b.node.ID].Free(b.ext)
	b.data = nil
	return nil
}

// WrapFile adopts an existing file (e.g. a preloaded input dataset) as a
// storage buffer on the file's node, so applications can MoveData from it.
func (rt *Runtime) WrapFile(node *topo.Node, f *storage.File) *Buffer {
	if node.Store == nil {
		panic(fmt.Sprintf("core: WrapFile on non-storage node %v", node))
	}
	return &Buffer{node: node, size: f.Size(), file: f, id: rt.nextBufID()}
}

// Phantom reports whether the runtime is in timing-only mode.
func (rt *Runtime) Phantom() bool { return rt.opts.Phantom }

// CreateInput creates a file of the given size on a storage node and — in
// functional mode — preloads it with data, all outside simulated time. It
// models an input dataset that is already resident on the storage level
// when measurement begins, the paper's starting condition ("a program
// starts execution from the storage level", §V-B). In phantom mode data is
// ignored and may be nil.
func (rt *Runtime) CreateInput(node *topo.Node, name string, size int64, data []byte) (*Buffer, error) {
	if node.Store == nil {
		return nil, fmt.Errorf("core: CreateInput on non-storage node %v", node)
	}
	f, err := node.Store.Create(name, size)
	if err != nil {
		return nil, err
	}
	if !rt.opts.Phantom && data != nil {
		if err := f.Preload(data, 0); err != nil {
			return nil, err
		}
	}
	return rt.WrapFile(node, f), nil
}
