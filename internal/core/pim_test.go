package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/gpu"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// buildPIMTree builds §VI's PIM-subtree shape: an SSD root with an NVM
// node that carries in-memory compute units, and a conventional DRAM+GPU
// leaf below it.
func buildPIMTree(e *sim.Engine) *topo.Tree {
	b := topo.NewBuilder(e)
	root := b.Root(device.SSDProfile(256*device.MiB, 1400, 600))
	nvm := b.Child(root, device.NVMProfile(64*device.MiB))
	// The PIM sees its host memory's full internal bandwidth but has
	// modest arithmetic.
	b.Attach(nvm, proc.NewPIM(e, "nvm-pim", 8, 4e9, 6.5e9))
	dram := b.Child(nvm, device.DRAMProfile(16*device.MiB))
	b.Attach(dram, gpu.APUGPU(e))
	return b.MustBuild()
}

func TestPIMDiscoveryAndAccounting(t *testing.T) {
	e := sim.NewEngine()
	rt := NewRuntime(e, buildPIMTree(e), DefaultOptions())
	ran := false
	_, err := rt.Run("pim", func(c *Ctx) error {
		nvm := rt.tree.Node(1)
		return c.Descend(nvm, func(nc *Ctx) error {
			if nc.PIMModel() == nil {
				t.Error("PIM not found at its own node")
			}
			_, err := nc.RunPIM(1e6, 1e6, func() { ran = true })
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("PIM functional body did not run")
	}
	if rt.Breakdown().Busy(trace.PIMCompute) <= 0 {
		t.Fatal("PIM compute not accounted")
	}
	if rt.Breakdown().Busy(trace.CPUCompute) != 0 {
		t.Fatal("PIM compute misfiled as CPU")
	}
}

func TestPIMVisibleFromDescendants(t *testing.T) {
	// A leaf context can also reach the ancestor PIM (subtree semantics).
	e := sim.NewEngine()
	rt := NewRuntime(e, buildPIMTree(e), DefaultOptions())
	_, err := rt.Run("pim-leaf", func(c *Ctx) error {
		leaf := rt.tree.Node(2)
		return c.Spawn("l", leaf, func(lc *Ctx) error {
			if lc.PIMModel() == nil {
				t.Error("leaf cannot see ancestor PIM")
			}
			return nil
		}).Wait(c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPIMWithoutPIMFails(t *testing.T) {
	_, rt := newAPURuntime(t)
	_, err := rt.Run("nopim", func(c *Ctx) error {
		_, err := c.RunPIM(1, 1, nil)
		if err == nil {
			t.Error("RunPIM succeeded without a PIM")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPIMBeatsLeafForBandwidthBoundChunk(t *testing.T) {
	// The §VI promise: for a streaming (bandwidth-bound, low-arithmetic)
	// operation over data already resident at the NVM level, computing in
	// place on the PIM beats moving the chunk down to the GPU leaf and
	// back — the move costs more than the compute.
	const chunk = 8 * device.MiB
	streamBytes := float64(2 * chunk) // read + write one pass

	elapsed := func(usePIM bool) sim.Time {
		e := sim.NewEngine()
		rt := NewRuntime(e, buildPIMTree(e), DefaultOptions())
		nvm := rt.tree.Node(1)
		dram := rt.tree.Node(2)
		if _, err := rt.Run("x", func(c *Ctx) error {
			buf, err := c.AllocAt(nvm, chunk)
			if err != nil {
				return err
			}
			return c.Descend(nvm, func(nc *Ctx) error {
				if usePIM {
					_, err := nc.RunPIM(float64(chunk)/4, streamBytes, nil)
					return err
				}
				// Conventional path: move to the leaf, compute, move back.
				down, err := nc.AllocAt(dram, chunk)
				if err != nil {
					return err
				}
				if err := nc.MoveDataDown(down, buf, 0, 0, chunk); err != nil {
					return err
				}
				err = nc.Descend(dram, func(lc *Ctx) error {
					_, kerr := lc.LaunchKernel(gpu.Kernel{
						Name:          "stream",
						FlopsPerGroup: float64(chunk) / 4 / 64,
						BytesPerGroup: streamBytes / 64,
					}, 64)
					return kerr
				})
				if err != nil {
					return err
				}
				return nc.MoveDataUp(buf, down, 0, 0, chunk)
			})
		}); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	viaPIM, viaLeaf := elapsed(true), elapsed(false)
	if viaPIM >= viaLeaf {
		t.Fatalf("PIM in-place (%v) not faster than move-to-leaf (%v) for streaming work",
			viaPIM, viaLeaf)
	}
}
