package core

import "repro/internal/gpu"

// gpuNoopKernel returns a minimal kernel for plumbing tests; ran (if
// non-nil) observes whether the functional body executed.
func gpuNoopKernel(ran *bool) gpu.Kernel {
	return gpu.Kernel{
		Name:          "noop",
		FlopsPerGroup: 1e6,
		BytesPerGroup: 1e3,
		Run: func(int) {
			if ran != nil {
				*ran = true
			}
		},
	}
}
