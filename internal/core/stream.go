package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/topo"
	"repro/internal/trace"
)

// This file implements streamed (multi-stage, pipelined) moves: a multi-hop
// move split into S sub-chunks, each hop driven by its own sim.Proc, with
// bounded double-buffered staging rings at the intermediate nodes. Hop k of
// sub-chunk i overlaps hop k-1 of sub-chunk i+1, so disk->DRAM and
// DRAM->GPU bandwidth are in flight simultaneously inside a single logical
// move — the paper's §III-C multi-stage data transfer, generalized to any
// ancestor/descendant pair of the tree.
//
// Ring protocol. Every intermediate node j holds depth staging slots (plain
// runtime buffers, so allocation pressure and cache relief apply as usual)
// and two FIFO credit channels: free[j] carries empty-slot indices (seeded
// with all slots), full[j] carries filled-slot indices. The hop feeding
// node j takes a credit from free[j], moves a sub-chunk into that slot with
// the ordinary MoveData (same retry, invalidation, charge and trace path as
// a monolithic move), and posts the slot to full[j]; the hop draining node
// j does the reverse. Slots cannot be overwritten while still being read —
// a writer cannot touch a slot until its index has traveled the full
// free-channel round trip — and channel FIFO order plus the deterministic
// engine makes the whole interleaving reproducible bit-for-bit.
//
// Failure drain. The first error is latched (errOnce) and every later
// sub-chunk move is skipped, but each hop still cycles all count tokens
// through its rings, so no proc is left blocked and the engine terminates
// deterministically; per-sub-chunk faults inside a hop are retried by
// MoveData itself and a re-attempt re-copies the same bytes.

// StreamOptions tunes a streamed move. The zero value asks the adaptive
// sizer to pick the sub-chunk count from the device profiles along the
// path and uses double-buffered (depth 2) staging rings.
type StreamOptions struct {
	// SubChunks fixes the number of sub-chunks. 0 means adaptive: the sizer
	// balances per-hop service times from the device/link profiles
	// (stream.Size) and degenerates to 1 when splitting cannot help.
	SubChunks int
	// SubChunkBytes fixes the sub-chunk size instead; it takes precedence
	// over SubChunks when both are set.
	SubChunkBytes int64
	// Depth is the number of staging slots per intermediate node. 0 means 2
	// (double buffering).
	Depth int
	// MaxSubChunks caps the adaptive sizer's search. 0 means 32.
	MaxSubChunks int
	// MinSubChunkBytes floors the adaptive sub-chunk size so latency-bound
	// slivers are never profitable. 0 means 256 KiB.
	MinSubChunkBytes int64
	// OnChunk, when set, is invoked at the destination node as each
	// sub-chunk lands (index i, payload range [off, off+n) relative to the
	// move), on its own proc — compute overlaps the remaining transfers.
	// An error aborts the stream after the in-flight sub-chunks drain.
	OnChunk func(sub *Ctx, i int, off, n int64) error
}

const (
	defaultStreamDepth       = 2
	defaultStreamMaxChunks   = 32
	defaultStreamMinSubChunk = 256 << 10
)

// StreamStats counts streamed-move activity.
type StreamStats struct {
	// Streams is the number of streamed moves issued (including ones that
	// degenerated to a single monolithic hop).
	Streams int64
	// SubChunks is the total number of sub-chunks across all streams.
	SubChunks int64
	// HopMoves is the number of per-hop sub-chunk moves driven.
	HopMoves int64
	// AsyncHops counts the sub-chunk moves driven on the engine's
	// inline-callback fast path (single-hop pumps) rather than by a
	// dedicated hop process.
	AsyncHops int64
	// Bytes is the total payload delivered by streamed moves.
	Bytes int64
	// MaxInFlight is the high-water mark of sub-chunks simultaneously in
	// the pipe (entered hop 0, not yet landed).
	MaxInFlight int64
	// MaxRing is the high-water mark of staging-ring occupancy.
	MaxRing int64
}

// Any reports whether any streamed move ran.
func (s StreamStats) Any() bool { return s.Streams > 0 }

func (s StreamStats) String() string {
	return fmt.Sprintf("streams %d | sub-chunks %d | hop moves %d | %d MiB | max in-flight %d | max ring %d",
		s.Streams, s.SubChunks, s.HopMoves, s.Bytes>>20, s.MaxInFlight, s.MaxRing)
}

// StreamStats returns the accumulated streamed-move counters.
func (rt *Runtime) StreamStats() StreamStats { return rt.streamStats }

// streamHopAgg accumulates achieved-bandwidth inputs for one hop,
// keyed by the hop's destination node.
type streamHopAgg struct {
	bytes int64
	busy  sim.Time
}

// MoveDataDownStreamed moves src[srcOff:srcOff+n) on the current node into
// dst on a strict descendant, streamed: the move is split into sub-chunks
// that traverse every intermediate level through double-buffered staging
// rings, so all hops (and the optional OnChunk consumer) overlap. Results
// are bit-identical to a chain of monolithic MoveData hops.
func (c *Ctx) MoveDataDownStreamed(dst, src *Buffer, dstOff, srcOff, n int64, o StreamOptions) error {
	if err := checkMove(dst, src, dstOff, srcOff, n); err != nil {
		return err
	}
	if src.node != c.node || !nodeIsProperDescendant(dst.node, c.node) {
		return fmt.Errorf("core: move_data_down_streamed from %v must go to a descendant of %v (got %v -> %v)",
			c.node, c.node, src.node, dst.node)
	}
	return c.rt.moveDataStreamed(c, dst, src, dstOff, srcOff, n, o)
}

// MoveDataUpStreamed is the ascending mirror: src on a strict descendant of
// the current node streams up into dst on the current node.
func (c *Ctx) MoveDataUpStreamed(dst, src *Buffer, dstOff, srcOff, n int64, o StreamOptions) error {
	if err := checkMove(dst, src, dstOff, srcOff, n); err != nil {
		return err
	}
	if dst.node != c.node || !nodeIsProperDescendant(src.node, c.node) {
		return fmt.Errorf("core: move_data_up_streamed to %v must come from a descendant of %v (got %v -> %v)",
			c.node, c.node, src.node, dst.node)
	}
	return c.rt.moveDataStreamed(c, dst, src, dstOff, srcOff, n, o)
}

// nodeIsProperDescendant reports whether n is a strict descendant of anc.
func nodeIsProperDescendant(n, anc *topo.Node) bool {
	for x := n.Parent; x != nil; x = x.Parent {
		if x == anc {
			return true
		}
	}
	return false
}

// streamPath returns the node chain [from ... to] walking tree edges, or
// nil when the endpoints are not on one root-to-leaf line.
func streamPath(from, to *topo.Node) []*topo.Node {
	if from == to {
		return []*topo.Node{from}
	}
	if nodeIsProperDescendant(to, from) { // down: to is deeper
		var rev []*topo.Node
		for x := to; x != from; x = x.Parent {
			rev = append(rev, x)
		}
		rev = append(rev, from)
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}
	if nodeIsProperDescendant(from, to) { // up: from is deeper
		var path []*topo.Node
		for x := from; x != to; x = x.Parent {
			path = append(path, x)
		}
		return append(path, to)
	}
	return nil
}

// hopProfile folds the device and link profiles of one tree edge into the
// effective (latency, bandwidth) pair the sizer models, mirroring exactly
// what moveOnce charges on that edge.
func (rt *Runtime) hopProfile(src, dst *topo.Node) stream.Hop {
	sp, dp := src.Mem.Profile(), dst.Mem.Profile()
	h := stream.Hop{Name: sp.Name + "->" + dp.Name}
	switch {
	case src.Kind().IsFileStore() && !dst.Kind().IsFileStore():
		h.Latency, h.BW = sp.Latency, sp.ReadBW
		if dst.Kind() == device.KindGPUMem {
			h.Latency += rt.pcie.Latency
			if rt.pcie.BW < h.BW {
				h.BW = rt.pcie.BW
			}
		}
	case !src.Kind().IsFileStore() && dst.Kind().IsFileStore():
		h.Latency, h.BW = dp.Latency, dp.WriteBW
		if src.Kind() == device.KindGPUMem {
			h.Latency += rt.pcie.Latency
			if rt.pcie.BW < h.BW {
				h.BW = rt.pcie.BW
			}
		}
	case src.Kind().IsFileStore() && dst.Kind().IsFileStore():
		h.Latency = sp.Latency + dp.Latency
		h.BW = sp.ReadBW
		if dp.WriteBW < h.BW {
			h.BW = dp.WriteBW
		}
	default:
		link := rt.dma
		if src.Kind() == device.KindGPUMem || dst.Kind() == device.KindGPUMem {
			link = rt.pcie
		}
		h.Latency = link.Latency
		h.BW = link.BW
		if sp.ReadBW < h.BW {
			h.BW = sp.ReadBW
		}
		if dp.WriteBW < h.BW {
			h.BW = dp.WriteBW
		}
	}
	return h
}

// streamPlan resolves the options into a concrete sub-chunking plan.
func streamPlan(hops []stream.Hop, n int64, o StreamOptions) stream.Plan {
	switch {
	case o.SubChunkBytes > 0:
		return stream.FixedBytes(hops, n, o.SubChunkBytes)
	case o.SubChunks > 0:
		return stream.Fixed(hops, n, o.SubChunks)
	}
	maxC := o.MaxSubChunks
	if maxC <= 0 {
		maxC = defaultStreamMaxChunks
	}
	minS := o.MinSubChunkBytes
	if minS <= 0 {
		minS = defaultStreamMinSubChunk
	}
	sizeHops := hops
	if o.OnChunk != nil && len(hops) > 0 {
		// The consumer is one more pipeline stage; model it as a twin of the
		// bottleneck hop (its cost is unknown, but assuming balance makes
		// overlap worth splitting for — the asymptotic win is bounded by the
		// bottleneck either way).
		bot := hops[0]
		for _, h := range hops[1:] {
			if h.ServiceTime(n) > bot.ServiceTime(n) {
				bot = h
			}
		}
		sizeHops = append(append(make([]stream.Hop, 0, len(hops)+1), hops...), bot)
	}
	return stream.Size(sizeHops, n, maxC, minS)
}

// moveDataStreamed drives a streamed move along the tree path between
// src.node and dst.node. The caller has validated buffer ranges and the
// ancestor/descendant relationship.
func (rt *Runtime) moveDataStreamed(c *Ctx, dst, src *Buffer, dstOff, srcOff, n int64, o StreamOptions) error {
	if err := rt.checkMoveDst(dst); err != nil {
		return err
	}
	path := streamPath(src.node, dst.node)
	if path == nil {
		return fmt.Errorf("core: streamed move endpoints %v -> %v not on one tree line", src.node, dst.node)
	}
	hops := make([]stream.Hop, len(path)-1)
	for k := range hops {
		hops[k] = rt.hopProfile(path[k], path[k+1])
	}
	plan := streamPlan(hops, n, o)
	count, nhops := plan.Count, len(hops)

	rt.streamStats.Streams++
	rt.streamStats.SubChunks += int64(count)
	rt.streamStats.Bytes += n

	// A single sub-chunk over a single hop with no consumer is exactly the
	// monolithic move; skip the machinery so timing stays identical.
	if count == 1 && nhops == 1 && o.OnChunk == nil {
		rt.streamStats.HopMoves++
		return rt.MoveData(c.p, dst, src, dstOff, srcOff, n)
	}
	rt.chargeOverhead(c.p)
	if n == 0 {
		if o.OnChunk != nil {
			return o.OnChunk(c, 0, 0, 0)
		}
		return nil
	}

	// A multi-chunk single-hop stream has no rings and no overlap: its hop
	// proc would just issue the sub-chunk moves back to back. Drive those
	// leaf, non-blocking charges through the engine's inline-callback fast
	// path instead of parking a process on each one. Gated to configurations
	// whose per-chunk sequence has no blocking side work — no consumer, no
	// fault injection or retry deadline (both may sleep/backoff), and not
	// file-to-file (its scratch staging is worth a real proc) — so the
	// timing is identical to the proc-driven loop by construction.
	if nhops == 1 && o.OnChunk == nil &&
		rt.opts.Faults == nil && rt.opts.Retry.OpTimeout <= 0 &&
		!(src.file != nil && dst.file != nil) {
		return rt.streamSingleHopAsync(c, dst, src, dstOff, srcOff, n, plan)
	}

	depth := o.Depth
	if depth < 1 {
		depth = defaultStreamDepth
	}
	if depth > count {
		depth = count
	}

	// Staging rings at the intermediate nodes path[1..nhops-1]. Slots are
	// ordinary runtime buffers, so allocation pressure triggers the same
	// cache relief as any AllocAt.
	stageBuf := make([][]*Buffer, nhops)
	free := make([]*sim.Chan, nhops)
	full := make([]*sim.Chan, nhops)
	for j := 1; j < nhops; j++ {
		free[j] = sim.NewChan(rt.engine, depth)
		full[j] = sim.NewChan(rt.engine, depth)
		slots := make([]*Buffer, depth)
		for s := range slots {
			b, err := rt.AllocAt(c.p, path[j], plan.SubChunk)
			if err != nil {
				for jj := 1; jj <= j; jj++ {
					for _, sb := range stageBuf[jj] {
						if sb != nil {
							_ = rt.Release(c.p, sb)
						}
					}
				}
				return fmt.Errorf("core: streamed move staging at %v: %w", path[j], err)
			}
			slots[s] = b
			free[j].TrySend(s)
		}
		stageBuf[j] = slots
	}

	var eo errOnce
	ringOcc := make([]int64, nhops)
	wg := sim.NewWaitGroup(rt.engine)

	var landed *sim.Chan
	var consumerDone *sim.Latch
	if o.OnChunk != nil {
		landed = sim.NewChan(rt.engine, count)
		consumerDone = sim.NewLatch(rt.engine)
		rt.engine.Spawn(c.p.Name()+"-stream-consume", func(p *sim.Proc) {
			sub := &Ctx{rt: rt, p: p, node: dst.node}
			for i := 0; i < count; i++ {
				v, ok := landed.Recv(p)
				if !ok {
					break
				}
				idx := v.(int)
				if !eo.failed() {
					off, sz := plan.ChunkRange(idx)
					eo.record(o.OnChunk(sub, idx, off, sz))
				}
			}
			consumerDone.Fire()
		})
	}

	for k := 0; k < nhops; k++ {
		k := k
		wg.Add(1)
		rt.engine.Spawn(fmt.Sprintf("%s-stream-hop%d", c.p.Name(), k), func(p *sim.Proc) {
			defer wg.Done()
			for i := 0; i < count; i++ {
				if k == 0 {
					rt.noteStreamInflight(p.Now(), dst.node.ID, +1)
				}
				inSlot, outSlot := -1, -1
				if k > 0 {
					if v, ok := full[k].Recv(p); ok {
						inSlot = v.(int)
					}
				}
				if k < nhops-1 {
					if v, ok := free[k+1].Recv(p); ok {
						outSlot = v.(int)
					}
				}
				if !eo.failed() {
					sb, so := src, srcOff
					if k > 0 {
						sb, so = stageBuf[k][inSlot], 0
					} else {
						off, _ := plan.ChunkRange(i)
						so = srcOff + off
					}
					db, do := dst, dstOff
					if k < nhops-1 {
						db, do = stageBuf[k+1][outSlot], 0
					} else {
						off, _ := plan.ChunkRange(i)
						do = dstOff + off
					}
					_, sz := plan.ChunkRange(i)
					start := p.Now()
					err := rt.MoveData(p, db, sb, do, so, sz)
					rt.noteStreamHop(path[k+1].ID, start, p.Now(), sz)
					eo.record(err)
				}
				if k > 0 {
					free[k].Send(p, inSlot)
					ringOcc[k]--
					rt.noteStreamRing(p.Now(), path[k].ID, ringOcc[k])
				}
				if k < nhops-1 {
					full[k+1].Send(p, outSlot)
					ringOcc[k+1]++
					rt.noteStreamRing(p.Now(), path[k+1].ID, ringOcc[k+1])
				}
				if k == nhops-1 {
					rt.noteStreamInflight(p.Now(), dst.node.ID, -1)
					if landed != nil {
						landed.Send(p, i)
					}
				}
			}
		})
	}

	wg.Wait(c.p)
	if consumerDone != nil {
		consumerDone.Wait(c.p)
	}
	for j := 1; j < nhops; j++ {
		for _, b := range stageBuf[j] {
			eo.record(rt.Release(c.p, b))
		}
	}
	return eo.first()
}

// streamSingleHopAsync pumps a single-hop stream's sub-chunks through the
// engine's inline-callback path: each chunk queues its device/link charges
// with AccessAsync/TransferAsync and the completion callback starts the next
// chunk, so the whole move needs no process beyond the blocked caller. The
// per-chunk sequence (overhead, service charges, hop/in-flight notes) mirrors
// the proc-driven loop exactly; chunks are sequential either way, so elapsed
// time and charge totals are identical.
//
// The destination range is invalidated whole, up front, on the caller's
// process: releasing cache victims may sleep (per-op overhead), which a
// callback must not do. Per-chunk moves then skip re-invalidation.
func (rt *Runtime) streamSingleHopAsync(c *Ctx, dst, src *Buffer, dstOff, srcOff, n int64, plan stream.Plan) error {
	rt.invalidateRange(c.p, dst, dstOff, n)

	count := plan.Count
	dstNode := dst.node.ID
	done := sim.NewLatch(rt.engine)
	var eo errOnce

	var pump func(i int)
	pump = func(i int) {
		if i == count || eo.failed() {
			done.Fire()
			return
		}
		start := rt.engine.Now()
		rt.noteStreamInflight(start, dstNode, +1)
		off, sz := plan.ChunkRange(i)
		service := func() {
			rt.streamStats.AsyncHops++
			rt.asyncMoveOnce(dst, src, dstOff+off, srcOff+off, sz, func(err error) {
				eo.record(err)
				end := rt.engine.Now()
				rt.noteStreamHop(dstNode, start, end, sz)
				rt.noteStreamInflight(end, dstNode, -1)
				pump(i + 1)
			})
		}
		if ovh := rt.opts.OverheadPerOp; ovh > 0 {
			rt.engine.After(ovh, func() {
				rt.chargeSpan(nil, laneRuntime, trace.Runtime, spanBookkeeping, start, rt.engine.Now(), 0)
				service()
			})
		} else {
			service()
		}
	}
	pump(0)
	done.Wait(c.p)
	return eo.first()
}

// asyncMoveOnce is one attempt of MoveData on the inline-callback path,
// mirroring moveOnce's dispatch (and movePhantom's in phantom mode) charge
// for charge. The caller has validated ranges, invalidated the destination
// and charged per-op overhead, and gates on the absence of fault injection,
// retry deadlines, and file-to-file endpoints. done receives the move's
// error once every timed charge has completed; it runs as an engine callback
// and must not block.
func (rt *Runtime) asyncMoveOnce(dst, src *Buffer, dstOff, srcOff, n int64, done func(error)) {
	start := rt.engine.Now()
	phantom := rt.opts.Phantom
	finish := func(cat trace.Category, err error) {
		rt.chargeSpan(nil, moveLane(cat, dst, src), cat, spanMove, start, rt.engine.Now(), n)
		done(err)
	}
	switch {
	case src.file != nil && dst.file == nil:
		err := src.file.ChargeAsync(device.Read, srcOff, n, func() {
			var err error
			if !phantom {
				err = src.file.Peek(dst.data[dstOff:dstOff+n], srcOff)
			}
			if err == nil && dst.node.Kind() == device.KindGPUMem {
				// GPUDirect-style path: the storage read lands in device
				// memory through the PCIe link as well.
				rt.pcie.TransferAsync(nil, dst.node.Mem, n, func(sim.Time) {
					finish(trace.IO, nil)
				})
				return
			}
			finish(trace.IO, err)
		})
		if err != nil {
			finish(trace.IO, err)
		}
	case src.file == nil && dst.file != nil:
		write := func() {
			err := dst.file.ChargeAsync(device.Write, dstOff, n, func() {
				var err error
				if !phantom {
					err = dst.file.Preload(src.data[srcOff:srcOff+n], dstOff)
				}
				finish(trace.IO, err)
			})
			if err != nil {
				finish(trace.IO, err)
			}
		}
		if src.node.Kind() == device.KindGPUMem {
			rt.pcie.TransferAsync(src.node.Mem, nil, n, func(sim.Time) { write() })
			return
		}
		write()
	default: // memory to memory (file-to-file is gated out by the caller)
		if !phantom {
			copy(dst.data[dstOff:dstOff+n], src.data[srcOff:srcOff+n])
		}
		rt.link(src, dst).TransferAsync(src.node.Mem, dst.node.Mem, n, func(sim.Time) {
			finish(trace.Transfer, nil)
		})
	}
}

// noteStreamHop records one per-hop sub-chunk move: a structural span on
// the destination node's stream lane (category None, so the underlying
// MoveData's charge remains the single accounting point and event totals
// still equal the Breakdown), plus the achieved-bandwidth aggregate.
func (rt *Runtime) noteStreamHop(dstNode int, start, end sim.Time, n int64) {
	rt.streamStats.HopMoves++
	agg := rt.streamHops[dstNode]
	if agg == nil {
		agg = &streamHopAgg{}
		rt.streamHops[dstNode] = agg
	}
	agg.bytes += n
	agg.busy += end - start
	if rt.traceActive() {
		rt.emitSpan(trace.Lane{Node: dstNode, Track: trace.TrackStream}, trace.None,
			spanStreamHop, start, end, n)
	}
}

// noteStreamInflight tracks the number of sub-chunks in the pipe. It takes
// the current virtual time rather than a process so the callback-driven
// single-hop pump can report alongside the proc-driven hop drivers.
func (rt *Runtime) noteStreamInflight(now sim.Time, dstNode int, delta int64) {
	rt.streamInflight += delta
	if rt.streamInflight > rt.streamStats.MaxInFlight {
		rt.streamStats.MaxInFlight = rt.streamInflight
	}
	if rt.met != nil {
		rt.met.streamInflight.Set(float64(rt.streamInflight))
		rt.maybeSample(now)
	}
	if rt.traceActive() {
		rt.emitCounter(trace.Lane{Node: dstNode, Track: trace.TrackStream},
			ctrStreamInflight, now, rt.streamInflight)
	}
}

// noteStreamRing tracks one staging ring's occupancy.
func (rt *Runtime) noteStreamRing(now sim.Time, node int, occ int64) {
	if occ > rt.streamStats.MaxRing {
		rt.streamStats.MaxRing = occ
	}
	if rt.met != nil {
		g, ok := rt.met.streamRing[node]
		if !ok {
			g = rt.met.reg.Gauge(mStreamRing, "staging-ring occupancy per intermediate node", nodeLabel(node))
			rt.met.streamRing[node] = g
		}
		g.Set(float64(occ))
	}
	if rt.traceActive() {
		rt.emitCounter(trace.Lane{Node: node, Track: trace.TrackStream},
			ctrStreamRing, now, occ)
	}
}
