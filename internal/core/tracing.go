package core

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file wires the event recorder (package trace) into the runtime.
// Every busy-time charge in the runtime goes through chargeSpan, which
// pairs the legacy Breakdown accounting with a span emission — one code
// path, so event-derived category totals equal Breakdown totals
// bit-for-bit by construction. With no recorder and no observers the
// emission side collapses to a nil check and the runtime behaves (and
// allocates) exactly as before; the tests guard both properties.

// laneRuntime is the pseudo-lane of node-less bookkeeping.
var laneRuntime = trace.Lane{Node: trace.NoNode, Track: trace.TrackRuntime}

// Static span names. Emitters must not build names dynamically on the hot
// path — details ride in the event's Value field instead.
const (
	spanBookkeeping = "bookkeeping"
	spanBackoff     = "retry-backoff"
	spanMove        = "move"
	spanMove2D      = "move2d"
	spanTranspose   = "transpose"
	spanAlloc       = "alloc"
	spanKernel      = "kernel"
	spanCPU         = "cpu"
	spanPIM         = "pim"
	spanFPGA        = "fpga"
	spanWorkerTask  = "task"

	// Streamed-move telemetry (stream.go). The hop span is structural
	// (category None): the MoveData underneath it owns the charge.
	spanStreamHop     = "stream-hop"
	ctrStreamInflight = "stream-inflight"
	ctrStreamRing     = "ring-occupancy"
)

// TraceRecorder returns the runtime's event recorder, nil when tracing is
// off.
func (rt *Runtime) TraceRecorder() *trace.Recorder { return rt.rec }

// SpanSink observes, from inside the charge point, every busy-time span
// charged by one proc. It is how a per-job journey (internal/journey)
// learns its phases: the serve tier attaches a sink on the job's root
// proc, and every chargeSpan on that proc — staging moves, allocs,
// kernels, CPU compute, bookkeeping — is mirrored to the sink with the
// exact interval the Breakdown was charged. Sinks run on the simulation
// goroutine, must not block, and must not interact with the engine: they
// are observation only, so an attached sink never changes the schedule.
type SpanSink interface {
	NoteSpan(cat trace.Category, lane trace.Lane, name string, start, end sim.Time, value int64)
}

// AttachSpanSink registers s to observe every span charged by this
// context's proc, and returns the detach function. One sink per proc:
// attaching again replaces the previous sink. Spans charged by child
// procs (Spawn, ParallelFor, streamed-move hops) are NOT forwarded —
// only work on the attached proc itself — which is exactly right for the
// serve tier's sequential job bodies.
func (c *Ctx) AttachSpanSink(s SpanSink) (detach func()) {
	rt, p := c.rt, c.p
	if rt.sinks == nil {
		rt.sinks = make(map[*sim.Proc]SpanSink)
	}
	rt.sinks[p] = s
	return func() { delete(rt.sinks, p) }
}

// traceActive reports whether anything consumes span events. It is the
// guard in front of every span emission: false (the default) short-circuits
// tracing to one branch and zero allocations.
func (rt *Runtime) traceActive() bool {
	return rt.rec != nil || len(rt.spanObs) > 0
}

// AddSpanObserver registers fn to be called with every completed span
// (after it is recorded). Observers run on the simulation goroutine and
// must not block; they work with or without a recorder, which is how
// profile-guided scheduling taps the event stream without retaining a
// trace. The returned function unregisters the observer.
func (rt *Runtime) AddSpanObserver(fn func(trace.Event)) (remove func()) {
	rt.spanObs = append(rt.spanObs, fn)
	idx := len(rt.spanObs) - 1
	return func() {
		rt.spanObs[idx] = nil
		// Trim trailing empty slots so removing the last observer turns the
		// traceActive guard back off entirely.
		for len(rt.spanObs) > 0 && rt.spanObs[len(rt.spanObs)-1] == nil {
			rt.spanObs = rt.spanObs[:len(rt.spanObs)-1]
		}
	}
}

// emitSpan records a completed span and notifies observers.
func (rt *Runtime) emitSpan(lane trace.Lane, cat trace.Category, name string, start, end sim.Time, value int64) {
	if rt.rec != nil {
		rt.rec.Span(lane, cat, name, start, end, value)
	}
	if len(rt.spanObs) > 0 {
		ev := trace.Event{Kind: trace.KindSpan, Cat: cat, Name: name, Lane: lane,
			Start: start, Dur: end - start, Value: value}
		for _, fn := range rt.spanObs {
			if fn != nil {
				fn(ev)
			}
		}
	}
}

// emitInstant records a point event (steal, eviction, fault) when tracing
// is on.
func (rt *Runtime) emitInstant(lane trace.Lane, name string, t sim.Time, value int64) {
	if rt.rec != nil {
		rt.rec.Instant(lane, name, t, value)
	}
}

// emitCounter records a sampled value (queue depth) when tracing is on.
func (rt *Runtime) emitCounter(lane trace.Lane, name string, t sim.Time, value int64) {
	if rt.rec != nil {
		rt.rec.Counter(lane, name, t, value)
	}
}

// chargeSpan is the single charge point pairing Breakdown accounting with
// span emission, metrics, and per-proc span sinks: d = end-start goes to
// the category; when tracing is active the same interval becomes a span on
// lane; when metrics are on the identical duration feeds the registry's
// busy counter and span histogram (metrics.go); when a sink is attached to
// the charging proc the same interval is mirrored to it (journey phases) —
// one code path, so all four accountings agree bit for bit. p is the proc
// doing the work (nil from charge-only unit tests), used solely to key the
// sink lookup.
func (rt *Runtime) chargeSpan(p *sim.Proc, lane trace.Lane, cat trace.Category, name string, start, end sim.Time, value int64) {
	rt.bd.Add(cat, end-start)
	if rt.traceActive() {
		rt.emitSpan(lane, cat, name, start, end, value)
	}
	if rt.met != nil {
		rt.met.noteSpan(lane, cat, start, end, value)
		rt.maybeSample(end)
	}
	if rt.sinks != nil && p != nil {
		if s := rt.sinks[p]; s != nil {
			s.NoteSpan(cat, lane, name, start, end, value)
		}
	}
}

// moveLane places a move span: I/O lands on the storage endpoint's lane,
// memory-to-memory transfers on the destination node's transfer lane.
func moveLane(cat trace.Category, dst, src *Buffer) trace.Lane {
	if cat == trace.IO && src.file != nil && dst.file == nil {
		return trace.Lane{Node: src.node.ID, Track: trace.TrackIO}
	}
	if cat == trace.IO {
		return trace.Lane{Node: dst.node.ID, Track: trace.TrackIO}
	}
	return trace.Lane{Node: dst.node.ID, Track: trace.TrackXfer}
}

// cacheLane is the staging-cache activity lane of a node.
func cacheLane(node int) trace.Lane {
	return trace.Lane{Node: node, Track: trace.TrackCache}
}

// Task runs fn as a named application-level unit of work and emits a
// structural span for it on the current node's task lane (category None:
// the compute and transfer spans inside it charge busy time; the task span
// only gives the timeline its application-level shape). value labels the
// task's size — chunk bytes, rows, elements — and is what profile-guided
// scheduling observes. With tracing inactive the only cost is one branch.
func (c *Ctx) Task(name string, value int64, fn func(*Ctx) error) error {
	if !c.rt.traceActive() {
		return fn(c)
	}
	start := c.p.Now()
	err := fn(c)
	c.rt.emitSpan(trace.Lane{Node: c.node.ID, Track: trace.TrackTask}, trace.None,
		name, start, c.p.Now(), value)
	return err
}

// TraceInstant records a point event on the current node's lane of the
// given track. It is a no-op without a recorder.
func (c *Ctx) TraceInstant(track, name string, value int64) {
	c.rt.emitInstant(trace.Lane{Node: c.node.ID, Track: track}, name, c.p.Now(), value)
}

// TraceCounter samples a value on the current node's lane of the given
// track (queue depths, occupancy). It is a no-op without a recorder.
func (c *Ctx) TraceCounter(track, name string, value int64) {
	c.rt.emitCounter(trace.Lane{Node: c.node.ID, Track: track}, name, c.p.Now(), value)
}
