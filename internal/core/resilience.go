package core

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file implements the runtime's resilience policy: transient faults
// injected by a fault.Injector (failed transfers, offline nodes, allocation
// pressure) are absorbed by bounded retries with exponential backoff and
// optional per-operation deadlines, so recursive Northup programs survive
// the failure modes of the paper's real devices without application-level
// error handling. Non-transient errors (range violations, true capacity
// exhaustion) pass through untouched.

// RetryPolicy bounds how hard the runtime fights transient faults on
// DataDown/DataUp/MoveData/Alloc before surfacing the error.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure of
	// one operation (0 disables retrying).
	MaxRetries int

	// BaseBackoff is the sleep before the first retry; each further retry
	// doubles it (exponential backoff), capped at MaxBackoff.
	BaseBackoff sim.Time

	// MaxBackoff caps the exponential growth (0 means uncapped).
	MaxBackoff sim.Time

	// OpTimeout is the per-operation deadline: an operation whose virtual
	// duration exceeds it — typically because the injector stalled the
	// transfer — counts as timed out and is retried like a failure.
	// Zero disables deadlines.
	OpTimeout sim.Time
}

// DefaultRetryPolicy returns the standard resilience settings: 8 retries
// with 50µs..10ms exponential backoff and no per-op deadline. At the 1-5%
// transfer-failure rates of the fault-injection experiments, eight retries
// make an unrecoverable move astronomically unlikely.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries:  8,
		BaseBackoff: sim.Microseconds(50),
		MaxBackoff:  sim.Milliseconds(10),
	}
}

// backoff returns the sleep before retry number attempt (0-based),
// doubling from BaseBackoff and saturating at MaxBackoff.
func (p RetryPolicy) backoff(attempt int) sim.Time {
	b := p.BaseBackoff
	if b <= 0 {
		b = sim.Microseconds(50)
	}
	for i := 0; i < attempt; i++ {
		b *= 2
		if p.MaxBackoff > 0 && b >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		b = p.MaxBackoff
	}
	return b
}

// ResilienceStats counts the runtime's fault-handling activity. It is the
// observability half of graceful degradation: a run that survived faults
// reports how.
type ResilienceStats struct {
	// Faults is the number of transient failures observed (before retrying).
	Faults int64
	// Retries is the number of re-attempts made.
	Retries int64
	// Timeouts is the number of operations that exceeded OpTimeout.
	Timeouts int64
	// Failovers is the number of leaf tasks re-routed to a sibling
	// processor because their home processor was offline.
	Failovers int64
	// GaveUp is the number of operations that exhausted MaxRetries.
	GaveUp int64
}

// Any reports whether any resilience machinery engaged.
func (s ResilienceStats) Any() bool {
	return s.Faults+s.Retries+s.Timeouts+s.Failovers+s.GaveUp > 0
}

// DeltaFrom returns the activity that happened since prev was captured.
func (s ResilienceStats) DeltaFrom(prev ResilienceStats) ResilienceStats {
	return ResilienceStats{
		Faults:    s.Faults - prev.Faults,
		Retries:   s.Retries - prev.Retries,
		Timeouts:  s.Timeouts - prev.Timeouts,
		Failovers: s.Failovers - prev.Failovers,
		GaveUp:    s.GaveUp - prev.GaveUp,
	}
}

// String renders a one-line summary.
func (s ResilienceStats) String() string {
	return fmt.Sprintf("faults %d | retries %d | timeouts %d | failovers %d | gave-up %d",
		s.Faults, s.Retries, s.Timeouts, s.Failovers, s.GaveUp)
}

// Resilience returns the runtime's cumulative fault-handling counters.
func (rt *Runtime) Resilience() ResilienceStats { return rt.res }

// NoteFailover records one leaf task re-routed to a sibling processor.
// Leaf schedulers (package hotspot's steal path) call it when an offline
// processor's work is absorbed elsewhere.
func (rt *Runtime) NoteFailover() { rt.res.Failovers++ }

// Faults returns the runtime's fault injector, nil when fault injection is
// off. Leaf schedulers use it to poll processor outages.
func (rt *Runtime) Faults() *fault.Injector { return rt.opts.Faults }

// timeoutError marks an operation that exceeded the per-op deadline; it is
// transient so the retry loop re-attempts it.
type timeoutError struct {
	what     string
	took     sim.Time
	deadline sim.Time
}

func (e *timeoutError) Error() string {
	return fmt.Sprintf("core: %s took %v, deadline %v", e.what, e.took, e.deadline)
}

// Transient marks the timeout as retryable.
func (e *timeoutError) Transient() bool { return true }

// faultTransfer consults the injector (if any) before a transfer on the
// src -> dst edge.
func (rt *Runtime) faultTransfer(p *sim.Proc, src, dst *Buffer, n int64) error {
	if rt.opts.Faults == nil {
		return nil
	}
	return rt.opts.Faults.Transfer(p, src.node.ID, dst.node.ID, n)
}

// withRetry runs op under the runtime's retry policy. Transient failures
// (injected faults, offline components, deadline overruns) are retried up
// to MaxRetries times with exponential backoff; an offline component's
// known recovery time extends the backoff so retries don't burn out before
// the outage ends. Backoff sleeps are accounted as runtime time. The moves
// and allocations wrapped here are idempotent, so re-running a timed-out
// (but completed) operation is safe.
func (rt *Runtime) withRetry(p *sim.Proc, what string, op func() error) error {
	pol := rt.opts.Retry
	for attempt := 0; ; attempt++ {
		start := p.Now()
		err := op()
		if err == nil && pol.OpTimeout > 0 {
			if took := p.Now() - start; took > pol.OpTimeout {
				rt.res.Timeouts++
				err = &timeoutError{what: what, took: took, deadline: pol.OpTimeout}
			}
		}
		if err == nil {
			return nil
		}
		if !fault.IsTransient(err) {
			return err
		}
		rt.res.Faults++
		// what is a static per-call-site label ("move_data", "alloc"), so
		// the instant costs no allocation.
		rt.emitInstant(laneRuntime, what, p.Now(), int64(attempt))
		if attempt >= pol.MaxRetries {
			rt.res.GaveUp++
			return fmt.Errorf("core: %s: giving up after %d attempt(s): %w", what, attempt+1, err)
		}
		rt.res.Retries++
		sleep := pol.backoff(attempt)
		var off *fault.OfflineError
		if errors.As(err, &off) && off.Until > p.Now() {
			// Wait out the outage rather than retrying into it.
			if wake := off.Until - p.Now(); wake > sleep {
				sleep = wake
			}
		}
		backoffStart := p.Now()
		p.Sleep(sleep)
		rt.chargeSpan(p, laneRuntime, trace.Runtime, spanBackoff, backoffStart, p.Now(), int64(attempt))
	}
}
