// Package fault is a seeded, deterministic fault injector for the Northup
// runtime. It models the failure surface of the paper's real hardware — a
// SATA disk that drops a request, a PCIe transfer that times out, a device
// memory that transiently refuses an allocation, a whole device falling off
// the bus — inside the discrete-event simulation, so resilience policies can
// be exercised reproducibly.
//
// Three fault classes are supported:
//
//   - per-transfer faults: any move_data crossing a tree edge may be delayed
//     or failed outright, at configured probabilities drawn from a seeded
//     PRNG (the engine serializes execution, so the draw order — and hence
//     the whole fault schedule — is a pure function of the seed);
//   - outages: a tree node, or one processor class at a node, goes offline
//     for a window of virtual time; operations touching it fail with an
//     *OfflineError carrying the recovery time;
//   - allocation pressure: alloc on a node transiently reports no space
//     (an injected ENOSPC), independent of real capacity.
//
// All injected failures are transient: IsTransient reports true for them,
// which is the contract the runtime's retry policy (core.RetryPolicy)
// dispatches on. Genuine program errors (range violations, real capacity
// exhaustion) never originate here and are never retried.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Config sets the probabilistic fault rates. All rates are probabilities in
// [0, 1] evaluated independently per operation.
type Config struct {
	// Seed drives the PRNG behind all probabilistic draws. Runs with equal
	// seeds (and equal workloads) produce identical fault schedules.
	Seed int64

	// TransferFailRate is the probability that one transfer (move_data on
	// any edge, including file I/O) fails with a transient error.
	TransferFailRate float64

	// TransferDelayRate is the probability that one transfer is delayed by
	// TransferDelay before proceeding normally.
	TransferDelayRate float64

	// TransferDelay is the injected per-transfer stall (default 500µs, a
	// retried-request/ECC-recovery-scale hiccup).
	TransferDelay sim.Time

	// AllocFailRate is the probability that one allocation transiently
	// reports no space.
	AllocFailRate float64
}

// Stats counts injected events; read it after a run to confirm the injector
// actually exercised the resilience path.
type Stats struct {
	// TransferFails counts transfers failed outright.
	TransferFails int64
	// TransferDelays counts transfers stalled by TransferDelay.
	TransferDelays int64
	// AllocFails counts allocations transiently refused.
	AllocFails int64
	// OfflineRejects counts operations refused because an endpoint was
	// inside an outage window.
	OfflineRejects int64
}

// Any reports whether any fault was injected.
func (s Stats) Any() bool {
	return s.TransferFails+s.TransferDelays+s.AllocFails+s.OfflineRejects > 0
}

// Window is a half-open interval [From, Until) of virtual time during which
// a component is offline.
type Window struct {
	From, Until sim.Time
}

// contains reports whether t falls inside the window.
func (w Window) contains(t sim.Time) bool { return t >= w.From && t < w.Until }

// Processor class names for TakeProcOffline/ProcOffline, shared vocabulary
// between the injector and leaf schedulers.
const (
	ClassCPU = "cpu"
	ClassGPU = "gpu"
)

// procKey identifies one processor class at one tree node.
type procKey struct {
	node  int
	class string
}

// Injector injects faults into runtime operations. Create one per engine
// and hand it to the runtime via core.Options.Faults. All methods must be
// called from simulation processes (or before the engine runs); the engine's
// serialization makes the injector safe without locks.
type Injector struct {
	engine *sim.Engine
	cfg    Config
	rng    *rand.Rand

	nodeOut map[int][]Window
	procOut map[procKey][]Window

	stats Stats
}

// New creates an injector bound to the engine. A zero Config injects
// nothing until outage windows are scheduled.
func New(e *sim.Engine, cfg Config) *Injector {
	if cfg.TransferDelay <= 0 {
		cfg.TransferDelay = sim.Microseconds(500)
	}
	return &Injector{
		engine:  e,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nodeOut: make(map[int][]Window),
		procOut: make(map[procKey][]Window),
	}
}

// Config returns the injector's configuration (with defaults applied).
func (in *Injector) Config() Config { return in.cfg }

// Stats returns the counts of injected events so far.
func (in *Injector) Stats() Stats { return in.stats }

// TakeNodeOffline schedules an outage window for a tree node: transfers
// touching the node and allocations on it fail with *OfflineError while the
// window is open. Windows may be scheduled before or during a run.
func (in *Injector) TakeNodeOffline(nodeID int, w Window) {
	if w.Until <= w.From {
		panic(fmt.Sprintf("fault: empty outage window [%v,%v) for node %d", w.From, w.Until, nodeID))
	}
	in.nodeOut[nodeID] = insertWindow(in.nodeOut[nodeID], w)
}

// TakeProcOffline schedules an outage window for one processor class
// ("gpu", "cpu", ...) at a node: the device stays reachable, but leaf
// schedulers should re-route that class's work (see ProcOffline).
func (in *Injector) TakeProcOffline(nodeID int, class string, w Window) {
	if w.Until <= w.From {
		panic(fmt.Sprintf("fault: empty outage window [%v,%v) for node %d %s", w.From, w.Until, nodeID, class))
	}
	k := procKey{node: nodeID, class: class}
	in.procOut[k] = insertWindow(in.procOut[k], w)
}

// insertWindow keeps windows sorted by start time.
func insertWindow(ws []Window, w Window) []Window {
	i := sort.Search(len(ws), func(i int) bool { return ws[i].From > w.From })
	ws = append(ws, Window{})
	copy(ws[i+1:], ws[i:])
	ws[i] = w
	return ws
}

// NodeOfflineAt reports whether the node is inside an outage window at time
// t, and if so when it recovers.
func (in *Injector) NodeOfflineAt(nodeID int, t sim.Time) (until sim.Time, offline bool) {
	for _, w := range in.nodeOut[nodeID] {
		if w.contains(t) {
			return w.Until, true
		}
	}
	return 0, false
}

// ProcOfflineAt reports whether the processor class at the node is inside an
// outage window at time t, and if so when it recovers.
func (in *Injector) ProcOfflineAt(nodeID int, class string, t sim.Time) (until sim.Time, offline bool) {
	for _, w := range in.procOut[procKey{node: nodeID, class: class}] {
		if w.contains(t) {
			return w.Until, true
		}
	}
	return 0, false
}

// ProcOffline reports whether the processor class at the node is offline at
// the engine's current time: the check leaf schedulers poll before taking
// work (package hotspot's steal path fails GPU tasks over to the CPU on it).
func (in *Injector) ProcOffline(nodeID int, class string) bool {
	_, off := in.ProcOfflineAt(nodeID, class, in.engine.Now())
	return off
}

// Transfer evaluates the fault schedule for one transfer on the edge
// srcNode -> dstNode. It may stall the calling process (injected delay),
// and returns a transient error when the transfer fails or an endpoint is
// offline. A nil return means the transfer proceeds.
func (in *Injector) Transfer(p *sim.Proc, srcNode, dstNode int, n int64) error {
	now := p.Now()
	for _, id := range [2]int{srcNode, dstNode} {
		if until, off := in.NodeOfflineAt(id, now); off {
			in.stats.OfflineRejects++
			return &OfflineError{Node: id, Until: until}
		}
	}
	if in.cfg.TransferDelayRate > 0 && in.rng.Float64() < in.cfg.TransferDelayRate {
		in.stats.TransferDelays++
		p.Sleep(in.cfg.TransferDelay)
	}
	if in.cfg.TransferFailRate > 0 && in.rng.Float64() < in.cfg.TransferFailRate {
		in.stats.TransferFails++
		return &Error{Op: "transfer",
			Detail: fmt.Sprintf("injected failure on edge node%d->node%d (%d bytes)", srcNode, dstNode, n)}
	}
	return nil
}

// Alloc evaluates the fault schedule for one allocation on the node,
// returning a transient error for injected ENOSPC or an outage.
func (in *Injector) Alloc(p *sim.Proc, nodeID int, size int64) error {
	if until, off := in.NodeOfflineAt(nodeID, p.Now()); off {
		in.stats.OfflineRejects++
		return &OfflineError{Node: nodeID, Until: until}
	}
	if in.cfg.AllocFailRate > 0 && in.rng.Float64() < in.cfg.AllocFailRate {
		in.stats.AllocFails++
		return &Error{Op: "alloc",
			Detail: fmt.Sprintf("injected transient ENOSPC on node%d (%d bytes)", nodeID, size)}
	}
	return nil
}

// Error is an injected transient fault (a failed transfer or a transient
// allocation refusal).
type Error struct {
	Op     string
	Detail string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("fault: %s: %s", e.Op, e.Detail) }

// Transient marks the error as retryable.
func (e *Error) Transient() bool { return true }

// OfflineError reports an operation that touched a component inside an
// outage window. Until is the virtual time the component recovers, which
// retry policies use to wait out the outage instead of backing off blindly.
type OfflineError struct {
	Node  int
	Class string // empty for whole-node outages
	Until sim.Time
}

// Error implements the error interface.
func (e *OfflineError) Error() string {
	what := fmt.Sprintf("node%d", e.Node)
	if e.Class != "" {
		what += "/" + e.Class
	}
	return fmt.Sprintf("fault: %s offline until %v", what, e.Until)
}

// Transient marks the error as retryable.
func (e *OfflineError) Transient() bool { return true }

// IsTransient reports whether err (or anything it wraps) is a retryable
// injected fault. Real program errors — range violations, true capacity
// exhaustion — report false and must not be retried.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
