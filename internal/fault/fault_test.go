package fault

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// runOne drives a single process through fn and fails the test on engine
// errors.
func runOne(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	e.Spawn("t", fn)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSeededScheduleIsDeterministic(t *testing.T) {
	schedule := func() string {
		e := sim.NewEngine()
		in := New(e, Config{Seed: 7, TransferFailRate: 0.2, TransferDelayRate: 0.2,
			AllocFailRate: 0.2})
		var log string
		runOne(t, e, func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				terr := in.Transfer(p, 0, 1, 4096)
				aerr := in.Alloc(p, 1, 64)
				log += fmt.Sprintf("%d:%v:%v:%v\n", i, p.Now(), terr, aerr)
			}
		})
		return log
	}
	if schedule() != schedule() {
		t.Fatal("same seed produced different fault schedules")
	}

	e := sim.NewEngine()
	other := New(e, Config{Seed: 8, TransferFailRate: 0.2, TransferDelayRate: 0.2,
		AllocFailRate: 0.2})
	var otherLog string
	runOne(t, e, func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			terr := other.Transfer(p, 0, 1, 4096)
			aerr := other.Alloc(p, 1, 64)
			otherLog += fmt.Sprintf("%d:%v:%v:%v\n", i, p.Now(), terr, aerr)
		}
	})
	if otherLog == schedule() {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	e := sim.NewEngine()
	in := New(e, Config{Seed: 42, TransferFailRate: 0.05})
	const n = 4000
	runOne(t, e, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			_ = in.Transfer(p, 0, 1, 1)
		}
	})
	fails := in.Stats().TransferFails
	// 5% of 4000 = 200 expected; accept a generous band.
	if fails < 120 || fails > 300 {
		t.Fatalf("5%% fail rate injected %d/%d failures", fails, n)
	}
	if in.Stats().TransferDelays != 0 || in.Stats().AllocFails != 0 {
		t.Fatalf("unconfigured fault classes fired: %+v", in.Stats())
	}
}

func TestInjectedDelayStallsProcess(t *testing.T) {
	e := sim.NewEngine()
	in := New(e, Config{Seed: 1, TransferDelayRate: 1, TransferDelay: sim.Milliseconds(2)})
	runOne(t, e, func(p *sim.Proc) {
		if err := in.Transfer(p, 0, 1, 1); err != nil {
			t.Errorf("delay-only config failed transfer: %v", err)
		}
		if p.Now() != sim.Milliseconds(2) {
			t.Errorf("expected 2ms stall, clock at %v", p.Now())
		}
	})
}

func TestOutageWindows(t *testing.T) {
	e := sim.NewEngine()
	in := New(e, Config{Seed: 1})
	in.TakeNodeOffline(2, Window{From: sim.Milliseconds(1), Until: sim.Milliseconds(3)})
	in.TakeProcOffline(1, "gpu", Window{From: 0, Until: sim.Microseconds(10)})

	runOne(t, e, func(p *sim.Proc) {
		if err := in.Transfer(p, 0, 2, 1); err != nil {
			t.Errorf("transfer before outage failed: %v", err)
		}
		if !in.ProcOffline(1, "gpu") {
			t.Error("gpu outage window not open at t=0")
		}
		p.Sleep(sim.Milliseconds(1))
		err := in.Transfer(p, 0, 2, 1)
		var off *OfflineError
		if !asOffline(err, &off) {
			t.Fatalf("transfer inside outage returned %v", err)
		}
		if off.Node != 2 || off.Until != sim.Milliseconds(3) {
			t.Errorf("offline error %+v, want node 2 until 3ms", off)
		}
		if !IsTransient(err) {
			t.Error("offline error not transient")
		}
		if err := in.Alloc(p, 2, 64); !IsTransient(err) {
			t.Errorf("alloc on offline node returned %v", err)
		}
		p.Sleep(sim.Milliseconds(2))
		if err := in.Transfer(p, 0, 2, 1); err != nil {
			t.Errorf("transfer after recovery failed: %v", err)
		}
		if in.ProcOffline(1, "gpu") {
			t.Error("gpu outage window still open after recovery")
		}
	})
	if in.Stats().OfflineRejects != 2 {
		t.Errorf("expected 2 offline rejects, got %d", in.Stats().OfflineRejects)
	}
}

func asOffline(err error, target **OfflineError) bool {
	if e, ok := err.(*OfflineError); ok {
		*target = e
		return true
	}
	return false
}

func TestIsTransientRejectsOrdinaryErrors(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is transient")
	}
	if IsTransient(fmt.Errorf("plain error")) {
		t.Error("plain error is transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", &Error{Op: "transfer", Detail: "x"})) {
		t.Error("wrapped injected fault not transient")
	}
}
