package gpu

import (
	"repro/internal/device"
	"repro/internal/proc"
	"repro/internal/sim"
)

// APUGPU models the integrated GPU of the paper's A10-7850K/7860K-class APU:
// 8 GCN compute units sharing the host memory system. Sustained arithmetic
// is derated from the ~740 GFLOP/s peak.
func APUGPU(e *sim.Engine) *GPU {
	return New(e, Model{
		Name:          "apu-gpu",
		CUs:           8,
		FLOPS:         500e9,
		MemBW:         22e9, // shares the dual-channel DDR3 system bus
		GroupsPerCU:   4,
		LocalMemPerCU: 64 * device.KiB,
		LaunchLatency: sim.Microseconds(20),
	})
}

// DiscreteGPU models the FirePro W9100: 44 CUs, 16 GiB GDDR5 at 320 GB/s,
// 5.24 TFLOP/s peak derated by the ~80%-of-peak GEMM efficiency the paper's
// baseline kernel achieves.
func DiscreteGPU(e *sim.Engine) *GPU {
	return New(e, Model{
		Name:          "w9100",
		CUs:           44,
		FLOPS:         4.2e12,
		MemBW:         320e9,
		GroupsPerCU:   4,
		LocalMemPerCU: 64 * device.KiB,
		LaunchLatency: sim.Microseconds(25),
	})
}

// APUCPU models the CPU side of the APU: 4 cores. Its effective streaming
// throughput is calibrated to ~1/3.5 of the integrated GPU's on stencil
// work. (The paper quotes Rodinia's 8x GPU speedup for HotSpot, measured
// against a discrete-GPU setup; on an APU, where CPU and GPU share the same
// DDR3 channels, the gap is necessarily smaller — and the ~24% work-stealing
// gain of Fig. 11 is only reachable if the CPU contributes roughly 1/4 of
// the combined throughput, i.e. ~1/3.5 of the GPU's.)
func APUCPU(e *sim.Engine) *proc.CPUModel {
	return proc.NewCPU(e, "apu-cpu",
		4,    // cores
		12e9, // per-core sustained FLOP/s
		6e9,  // effective aggregate streaming bandwidth (bytes/s)
		4*device.MiB)
}
