package gpu

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testModel() Model {
	return Model{
		Name: "test", CUs: 4, FLOPS: 1e9, MemBW: 1e9,
		GroupsPerCU: 2, LocalMemPerCU: 64 << 10,
		LaunchLatency: sim.Microseconds(10),
	}
}

func TestLaunchRunsEveryGroup(t *testing.T) {
	e := sim.NewEngine()
	g := New(e, testModel())
	var ran int64
	k := Kernel{
		Name: "count", FlopsPerGroup: 1e6, BytesPerGroup: 0,
		Run: func(i int) { atomic.AddInt64(&ran, 1) },
	}
	e.Spawn("host", func(p *sim.Proc) {
		if _, err := g.Launch(p, k, 37); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 37 {
		t.Fatalf("ran %d groups, want 37", ran)
	}
	busy, kernels := g.Stats()
	if busy <= 0 || kernels != 1 {
		t.Fatalf("stats = %v, %d", busy, kernels)
	}
}

func TestComputeVsMemoryBound(t *testing.T) {
	e := sim.NewEngine()
	g := New(e, testModel())
	// Same flops; kernel B adds heavy memory traffic -> must be slower.
	a := g.LaunchTime(Kernel{FlopsPerGroup: 1e6, BytesPerGroup: 1e3}, 64)
	b := g.LaunchTime(Kernel{FlopsPerGroup: 1e6, BytesPerGroup: 1e7}, 64)
	if b <= a {
		t.Fatalf("memory-bound kernel %v not slower than compute-bound %v", b, a)
	}
}

func TestWaveQuantization(t *testing.T) {
	// 8 slots (4 CUs x 2): 9 groups need two waves; the second wave is
	// mostly idle, so 9 groups cost clearly more than 8.
	e := sim.NewEngine()
	g := New(e, testModel())
	k := Kernel{FlopsPerGroup: 1e7}
	t8 := g.LaunchTime(k, 8)
	t9 := g.LaunchTime(k, 9)
	if t9 <= t8 {
		t.Fatalf("9 groups (%v) not slower than 8 (%v)", t9, t8)
	}
	// And far more than linear scaling would suggest.
	linear := t8 + (t8-g.model.LaunchLatency)/8
	if t9 <= linear {
		t.Fatalf("no quantization penalty: t9=%v, linear=%v", t9, linear)
	}
}

func TestLaunchTimeMonotonicInGroups(t *testing.T) {
	e := sim.NewEngine()
	g := New(e, testModel())
	k := Kernel{FlopsPerGroup: 5e5, BytesPerGroup: 1e4}
	f := func(a, b uint8) bool {
		x, y := int(a%64), int(b%64)
		if x > y {
			x, y = y, x
		}
		return g.LaunchTime(k, x) <= g.LaunchTime(k, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalMemoryLimit(t *testing.T) {
	e := sim.NewEngine()
	g := New(e, testModel())
	k := Kernel{Name: "fat", LocalBytes: 1 << 20}
	var launchErr error
	e.Spawn("host", func(p *sim.Proc) {
		_, launchErr = g.Launch(p, k, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var lm *ErrLocalMem
	if !errors.As(launchErr, &lm) {
		t.Fatalf("err = %v, want ErrLocalMem", launchErr)
	}
}

func TestKernelsSerialize(t *testing.T) {
	e := sim.NewEngine()
	g := New(e, testModel())
	k := Kernel{FlopsPerGroup: 1e8}
	single := g.LaunchTime(k, 8)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		e.Spawn("host", func(p *sim.Proc) {
			g.Launch(p, k, 8)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != single || ends[1] != 2*single {
		t.Fatalf("ends = %v, want %v and %v", ends, single, 2*single)
	}
}

func TestUtilizationRisesWithResidency(t *testing.T) {
	// Fig. 11's premise: more resident groups -> more aggregate throughput,
	// with diminishing returns.
	e := sim.NewEngine()
	g := New(e, testModel())
	thru := func(resident int) float64 {
		t := g.GroupTaskTime(resident, 1e6, 0)
		return float64(resident) * 1e6 / t.Seconds()
	}
	t8, t16, t32 := thru(8), thru(16), thru(32)
	if !(t8 < t16 && t16 < t32) {
		t.Fatalf("throughput not increasing: %g %g %g", t8, t16, t32)
	}
	if t32 > g.model.FLOPS {
		t.Fatalf("throughput %g exceeds device peak %g", t32, g.model.FLOPS)
	}
	if (t32-t16)/t16 > (t16-t8)/t8 {
		t.Fatal("no diminishing returns in latency-hiding curve")
	}
}

func TestProfilesSane(t *testing.T) {
	e := sim.NewEngine()
	apu, w9100 := APUGPU(e), DiscreteGPU(e)
	if apu.Model().FLOPS >= w9100.Model().FLOPS {
		t.Fatal("APU not slower than discrete GPU")
	}
	cpu := APUCPU(e)
	// Calibration check: on the APU, the GPU should beat the CPU by ~3.5x
	// on bandwidth-bound stencil work (see APUCPU's comment; this ratio is
	// what makes Fig. 11's ~24% stealing gain reachable).
	gput := apu.LaunchTime(Kernel{FlopsPerGroup: 15 * 256, BytesPerGroup: 6 * 256 * 4}, 1024)
	// Spread the same 1024 tasks over 4 CPU cores.
	perCore := 256
	cput := cpu.TaskTime(15*256*float64(perCore), 6*256*4*float64(perCore))
	ratio := float64(cput) / float64(gput)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("CPU/GPU stencil ratio = %.1f, want ~3.5", ratio)
	}
}

func TestNegativeGroupsRejected(t *testing.T) {
	e := sim.NewEngine()
	g := New(e, testModel())
	var err error
	e.Spawn("h", func(p *sim.Proc) { _, err = g.Launch(p, Kernel{}, -1) })
	if e.Run() != nil || err == nil {
		t.Fatal("negative group count accepted")
	}
}
