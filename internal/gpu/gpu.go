// Package gpu implements a functional-plus-timed GPU model.
//
// The paper runs OpenCL kernels on an APU's integrated GPU and on a discrete
// FirePro W9100. Neither is available here, so this model substitutes both:
//
//   - Functionally, a kernel is a Go closure executed once per workgroup, so
//     out-of-core runs produce real, bit-checkable results.
//   - Temporally, a launch charges virtual time from a roofline cost model:
//     each wave of resident workgroups takes max(compute, memory) time at
//     the device's sustained rates, scaled by a latency-hiding utilization
//     factor that grows with the number of resident groups (why the paper's
//     32-queue configuration wins in Fig. 11).
//
// The model also supports persistent workgroups — long-lived groups that pop
// tasks from queues — which is how the paper implements CPU–GPU work
// stealing at a leaf (§V-E, Figure 10).
package gpu

import (
	"fmt"

	"repro/internal/proc"
	"repro/internal/sim"
)

// Model describes a GPU's sustained performance characteristics.
type Model struct {
	Name string
	CUs  int // compute units

	// FLOPS is the sustained aggregate arithmetic rate in FLOP/s (peak
	// derated by the achievable kernel efficiency; the paper's GEMM baseline
	// reaches >80% of peak, which is folded in here).
	FLOPS float64
	// MemBW is the aggregate device/local memory bandwidth in bytes/s.
	MemBW float64

	// GroupsPerCU is the occupancy limit: resident workgroups per CU.
	GroupsPerCU int
	// LocalMemPerCU is the per-CU local (shared) memory in bytes; kernels
	// requesting more fail to launch.
	LocalMemPerCU int64
	// LaunchLatency is the fixed host-side cost of a kernel dispatch.
	LaunchLatency sim.Time

	// HideFactor tunes the latency-hiding curve: utilization with g
	// resident groups is g/(g + HideFactor*CUs). A quarter of a group per
	// CU of "slack" matches the modest queue-count sensitivity of Fig. 11.
	HideFactor float64
}

// GPU is a simulated device executing kernels in virtual time.
type GPU struct {
	model   Model
	engine  *sim.Engine
	compute *sim.Resource // serializes kernel execution (one kernel at a time)

	kernelTime  sim.Time
	kernelCount int64
}

// New creates a GPU bound to the engine.
func New(e *sim.Engine, m Model) *GPU {
	if m.CUs < 1 || m.FLOPS <= 0 || m.MemBW <= 0 {
		panic(fmt.Sprintf("gpu: underspecified model %+v", m))
	}
	if m.GroupsPerCU < 1 {
		m.GroupsPerCU = 4
	}
	if m.HideFactor <= 0 {
		m.HideFactor = 0.25
	}
	return &GPU{model: m, engine: e, compute: sim.NewResource(e, 1)}
}

// Model returns the performance description.
func (g *GPU) Model() Model { return g.model }

// ProcName implements proc.Processor.
func (g *GPU) ProcName() string { return g.model.Name }

// ProcKind implements proc.Processor.
func (g *GPU) ProcKind() proc.Kind { return proc.GPU }

// LLCSize implements proc.Processor: the local-memory size is the
// software/hardware management transition point at a GPU leaf.
func (g *GPU) LLCSize() int64 { return g.model.LocalMemPerCU }

var _ proc.Processor = (*GPU)(nil)

// Kernel describes one dispatch: per-workgroup arithmetic and device-memory
// traffic (for the roofline), local-memory need, and the functional body.
type Kernel struct {
	Name string
	// FlopsPerGroup and BytesPerGroup drive the cost model.
	FlopsPerGroup float64
	BytesPerGroup float64
	// LocalBytes is the local-memory allocation per workgroup.
	LocalBytes int64
	// Run executes workgroup i functionally. May be nil for timing-only
	// studies.
	Run func(group int)
}

// utilization returns the latency-hiding factor for g resident groups.
func (m Model) utilization(groups int) float64 {
	if groups <= 0 {
		return 0
	}
	gf := float64(groups)
	return gf / (gf + m.HideFactor*float64(m.CUs))
}

// slots returns the device-wide resident-group capacity.
func (m Model) slots() int { return m.CUs * m.GroupsPerCU }

// LaunchTime returns the modeled duration of dispatching the kernel over
// the given number of workgroups, without executing or charging anything.
func (g *GPU) LaunchTime(k Kernel, groups int) sim.Time {
	if groups <= 0 {
		return g.model.LaunchLatency
	}
	slots := g.model.slots()
	t := g.model.LaunchLatency
	remaining := groups
	for remaining > 0 {
		active := remaining
		if active > slots {
			active = slots
		}
		eta := g.model.utilization(active)
		compute := sim.Seconds(float64(active) * k.FlopsPerGroup / (g.model.FLOPS * eta))
		mem := sim.Seconds(float64(active) * k.BytesPerGroup / (g.model.MemBW * eta))
		if mem > compute {
			t += mem
		} else {
			t += compute
		}
		remaining -= active
	}
	return t
}

// ErrLocalMem reports a kernel whose local-memory request exceeds the CU.
type ErrLocalMem struct {
	Kernel string
	Need   int64
	Have   int64
}

func (e *ErrLocalMem) Error() string {
	return fmt.Sprintf("gpu: kernel %s needs %d bytes of local memory, CU has %d",
		e.Kernel, e.Need, e.Have)
}

// Launch executes k over the given number of workgroups: the functional body
// runs for every group, and the calling process is charged the modeled time.
// Kernels serialize on the device, as on a single OpenCL in-order queue.
func (g *GPU) Launch(p *sim.Proc, k Kernel, groups int) (sim.Time, error) {
	if k.LocalBytes > g.model.LocalMemPerCU {
		return 0, &ErrLocalMem{Kernel: k.Name, Need: k.LocalBytes, Have: g.model.LocalMemPerCU}
	}
	if groups < 0 {
		return 0, fmt.Errorf("gpu: kernel %s: negative group count %d", k.Name, groups)
	}
	if k.Run != nil {
		for i := 0; i < groups; i++ {
			k.Run(i)
		}
	}
	t := g.LaunchTime(k, groups)
	g.compute.Acquire(p)
	p.Sleep(t)
	g.compute.Release()
	g.kernelTime += t
	g.kernelCount++
	return t, nil
}

// GroupTaskTime returns the time for one persistent workgroup to execute a
// task of the given cost while `resident` groups share the device. Aggregate
// throughput saturates via the latency-hiding curve, so few large groups run
// below peak — the effect behind the paper's queue-count sweep.
func (g *GPU) GroupTaskTime(resident int, flops, bytes float64) sim.Time {
	if resident < 1 {
		resident = 1
	}
	eta := g.model.utilization(resident)
	perGroupFLOPS := g.model.FLOPS * eta / float64(resident)
	perGroupBW := g.model.MemBW * eta / float64(resident)
	compute := sim.Seconds(flops / perGroupFLOPS)
	mem := sim.Seconds(bytes / perGroupBW)
	if mem > compute {
		return mem
	}
	return compute
}

// Stats returns cumulative kernel busy time and dispatch count.
func (g *GPU) Stats() (busy sim.Time, kernels int64) {
	return g.kernelTime, g.kernelCount
}

// ResetStats zeroes the cumulative counters.
func (g *GPU) ResetStats() { g.kernelTime, g.kernelCount = 0, 0 }
