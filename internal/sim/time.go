package sim

import (
	"fmt"
	"math"
)

// Time is a virtual time instant or duration, measured in nanoseconds.
// The zero Time is the start of the simulation.
type Time int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time,
// rounding to the nearest nanosecond.
func Seconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// Microseconds converts a floating-point number of microseconds to a Time,
// rounding to the nearest nanosecond.
func Microseconds(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// Milliseconds converts a floating-point number of milliseconds to a Time,
// rounding to the nearest nanosecond.
func Milliseconds(ms float64) Time { return Time(math.Round(ms * float64(Millisecond))) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with a unit chosen by magnitude, e.g. "12.3ms".
func (t Time) String() string {
	neg := ""
	v := t
	if v < 0 {
		neg, v = "-", -v
	}
	switch {
	case v >= Second:
		return fmt.Sprintf("%s%.4gs", neg, float64(v)/float64(Second))
	case v >= Millisecond:
		return fmt.Sprintf("%s%.4gms", neg, float64(v)/float64(Millisecond))
	case v >= Microsecond:
		return fmt.Sprintf("%s%.4gµs", neg, float64(v)/float64(Microsecond))
	default:
		return fmt.Sprintf("%s%dns", neg, int64(v))
	}
}

// TransferTime returns the time to move n bytes at bw bytes/second.
// A non-positive bandwidth yields zero time (an "infinitely fast" component),
// which keeps degenerate configurations safe in tests.
func TransferTime(n int64, bw float64) Time {
	if bw <= 0 || n <= 0 {
		return 0
	}
	return Time(float64(n) / bw * float64(Second))
}
