package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
)

// goldenTraceSHA256 is the SHA-256 of the resumption trace produced by
// goldenWorkload on the pre-fast-path engine (container/heap scheduling, one
// pop per event, every event a goroutine handoff). The rebuilt dispatch path
// — concrete 4-ary heap, same-instant batch dispatch, callback fast path —
// must reproduce the sequence byte for byte: virtual timestamps, resumption
// order and tie-breaks are observable semantics, not implementation detail.
const goldenTraceSHA256 = "80b09e47d354ab069350c4f457c7ccca8f83b5be34f5f8762127e9b478a78a46"

// goldenWorkload stresses every scheduling shape the runtime generates at
// paper scale: timer storms with same-instant collisions (stencil halo
// exchanges), FIFO resource contention (device service slots), rendezvous
// and buffered channel handoffs (staging rings), barriers (per-iteration
// phases), and nested spawn bursts (per-hop transfer procs).
func goldenWorkload(e *Engine) {
	r := NewResource(e, 3)
	bar := NewBarrier(e, 4)
	wg := NewWaitGroup(e)
	ch := NewChan(e, 2)
	done := NewLatch(e)

	for i := 0; i < 64; i++ {
		i := i
		wg.Add(1)
		e.Spawn(fmt.Sprintf("timer%02d", i), func(p *Proc) {
			defer wg.Done()
			for j := 0; j < 120; j++ {
				p.Sleep(Time(1 + (i*j)%7))
				if j%5 == i%5 {
					r.Use(p, Time(2+i%3))
				}
			}
		})
	}
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		e.Spawn(fmt.Sprintf("stencil%d", i), func(p *Proc) {
			defer wg.Done()
			for round := 0; round < 24; round++ {
				p.Sleep(Time(3 + (i+round)%4))
				bar.Wait(p)
			}
		})
	}
	wg.Add(1)
	e.Spawn("producer", func(p *Proc) {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			p.Sleep(2)
			ch.Send(p, i)
			if i%6 == 0 {
				i := i
				e.Spawn(fmt.Sprintf("burst%02d", i), func(q *Proc) {
					q.Sleep(1)
					r.Use(q, 1)
				})
			}
		}
		ch.Close()
	})
	wg.Add(1)
	e.Spawn("consumer", func(p *Proc) {
		defer wg.Done()
		for {
			v, ok := ch.Recv(p)
			if !ok {
				break
			}
			p.Sleep(Time(1 + v.(int)%4))
		}
		done.Fire()
	})
	e.Spawn("join", func(p *Proc) {
		done.Wait(p)
		wg.Wait(p)
	})
}

// goldenTrace runs the workload and renders every resumption as "t:name;".
func goldenTrace(t testing.TB) string {
	t.Helper()
	e := NewEngine()
	var sb strings.Builder
	e.SetTrace(func(tm Time, p *Proc) { fmt.Fprintf(&sb, "%d:%s;", tm, p.Name()) })
	goldenWorkload(e)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestGoldenResumptionOrder holds the engine to the legacy dispatch path's
// exact resumption sequence, and to reproducing it across repeated runs.
func TestGoldenResumptionOrder(t *testing.T) {
	a := goldenTrace(t)
	b := goldenTrace(t)
	if a != b {
		t.Fatal("repeated runs produced different resumption traces")
	}
	sum := sha256.Sum256([]byte(a))
	if got := hex.EncodeToString(sum[:]); got != goldenTraceSHA256 {
		tail := a
		if len(tail) > 120 {
			tail = "..." + tail[len(tail)-120:]
		}
		t.Fatalf("resumption trace diverged from the legacy dispatch path:\n got sha256 %s\nwant sha256 %s\n(%d resumptions, trace ends %q)",
			got, goldenTraceSHA256, strings.Count(a, ";"), tail)
	}
}
