package sim

import "fmt"

// waitList is a FIFO of blocked processes. Because the engine serializes
// execution, wait lists need no locking.
type waitList struct {
	procs []*Proc
}

func (w *waitList) push(p *Proc) { w.procs = append(w.procs, p) }
func (w *waitList) empty() bool  { return len(w.procs) == 0 }
func (w *waitList) popFront() *Proc {
	p := w.procs[0]
	// Shift rather than re-slice so the backing array does not grow without
	// bound across a long simulation.
	copy(w.procs, w.procs[1:])
	w.procs = w.procs[:len(w.procs)-1]
	return p
}

// wakeAll wakes every waiter (in FIFO order) and empties the list.
func (w *waitList) wakeAll(e *Engine) {
	for _, p := range w.procs {
		e.wake(p)
	}
	w.procs = w.procs[:0]
}

// wakeOne wakes the first waiter, if any.
func (w *waitList) wakeOne(e *Engine) {
	if !w.empty() {
		e.wake(w.popFront())
	}
}

// WaitGroup mirrors sync.WaitGroup in virtual time.
type WaitGroup struct {
	e       *Engine
	n       int
	waiters waitList
}

// NewWaitGroup returns a WaitGroup bound to e with a zero counter.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{e: e} }

// Add adds delta (which may be negative) to the counter. When the counter
// reaches zero, all processes blocked in Wait resume. The counter going
// negative is a bug and panics.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: WaitGroup counter negative")
	}
	if wg.n == 0 {
		wg.waiters.wakeAll(wg.e)
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the counter is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.n == 0 {
		return
	}
	wg.waiters.push(p)
	p.block()
}

// Latch is a one-shot event: processes Wait until some process Fires it.
// Waiting on an already-fired latch returns immediately.
type Latch struct {
	e       *Engine
	fired   bool
	waiters waitList
}

// NewLatch returns an unfired latch bound to e.
func NewLatch(e *Engine) *Latch { return &Latch{e: e} }

// Fire releases all current and future waiters. Firing twice is a no-op.
func (l *Latch) Fire() {
	if l.fired {
		return
	}
	l.fired = true
	l.waiters.wakeAll(l.e)
}

// Fired reports whether the latch has been fired.
func (l *Latch) Fired() bool { return l.fired }

// Wait blocks p until the latch fires.
func (l *Latch) Wait(p *Proc) {
	if l.fired {
		return
	}
	l.waiters.push(p)
	p.block()
}

// Barrier is a cyclic barrier: Wait blocks until `parties` processes have
// arrived, then releases them all and resets for the next round — the
// synchronization shape of per-iteration stencil phases.
type Barrier struct {
	e       *Engine
	parties int
	arrived int
	waiters waitList
	rounds  int
}

// NewBarrier returns a barrier for the given number of parties (>= 1).
func NewBarrier(e *Engine, parties int) *Barrier {
	if parties < 1 {
		panic("sim: Barrier with no parties")
	}
	return &Barrier{e: e, parties: parties}
}

// Wait blocks p until all parties arrive. The last arriver does not block;
// it trips the barrier and wakes everyone.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.rounds++
		b.waiters.wakeAll(b.e)
		return
	}
	b.waiters.push(p)
	p.block()
}

// Rounds returns how many times the barrier has tripped.
func (b *Barrier) Rounds() int { return b.rounds }

// Resource is a counting semaphore with FIFO wakeup. With capacity 1 it is a
// fair mutex; device models use it to serialize (or K-way parallelize)
// requests so queueing delay emerges naturally.
//
// Release transfers ownership of the freed unit directly to the oldest
// waiter, so acquisition order equals arrival order and no process observes
// a spurious wakeup.
type Resource struct {
	e     *Engine
	cap   int
	inUse int
	// waiters holds blocked acquirers in arrival order. A waiter is either a
	// blocked process (p != nil) or an inline-callback continuation queued by
	// AcquireAsync (fn != nil); keeping both in one FIFO preserves fairness
	// when proc-driven and callback-driven users contend for one device.
	waiters []resWaiter

	// Queueing statistics: how many acquisitions waited, and for how long
	// in total. They quantify contention in device models.
	acquires  int64
	waited    int64
	waitTotal Time
	enqueued  map[*Proc]Time
}

// resWaiter is one queued acquirer: a blocked process or a continuation.
type resWaiter struct {
	p  *Proc
	fn func()
	at Time // enqueue time, for callback wait accounting
}

// popWaiter removes and returns the oldest waiter.
func (r *Resource) popWaiter() resWaiter {
	w := r.waiters[0]
	// Shift rather than re-slice so the backing array does not grow without
	// bound across a long simulation.
	copy(r.waiters, r.waiters[1:])
	r.waiters[len(r.waiters)-1] = resWaiter{}
	r.waiters = r.waiters[:len(r.waiters)-1]
	return w
}

// NewResource returns a semaphore with the given capacity (>= 1).
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: Resource capacity %d < 1", capacity))
	}
	return &Resource{e: e, cap: capacity}
}

// Acquire blocks p until a unit of the resource is free, then takes it.
func (r *Resource) Acquire(p *Proc) {
	r.acquires++
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	if r.enqueued == nil {
		r.enqueued = make(map[*Proc]Time)
	}
	r.enqueued[p] = r.e.now
	r.waiters = append(r.waiters, resWaiter{p: p})
	p.block()
	// Release reserved the unit for us before waking us; account the wait.
	r.waited++
	r.waitTotal += r.e.now - r.enqueued[p]
	delete(r.enqueued, p)
}

// AcquireAsync takes a unit of the resource and runs fn holding it — inline
// when one is immediately free, otherwise as an engine callback when Release
// hands the unit over, in the same FIFO position a blocked process would
// occupy. fn must follow the inline-callback contract (Engine.At): it may
// schedule, fire, try-send — never block. fn must eventually lead to a
// Release, exactly like a successful Acquire.
func (r *Resource) AcquireAsync(fn func()) {
	r.acquires++
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.inUse++
		fn()
		return
	}
	r.waiters = append(r.waiters, resWaiter{fn: fn, at: r.e.now})
}

// QueueStats reports contention: total acquisitions, how many had to wait,
// and the cumulative waiting time.
func (r *Resource) QueueStats() (acquires, waited int64, waitTotal Time) {
	return r.acquires, r.waited, r.waitTotal
}

// TryAcquire takes a unit if one is immediately available and no earlier
// waiter is queued; it reports whether it succeeded.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.acquires++
		r.inUse++
		return true
	}
	return false
}

// Release returns a unit of the resource. If acquirers are waiting, the unit
// is handed to the oldest waiter without ever becoming free: a blocked
// process is woken, a queued continuation is scheduled as a same-instant
// engine callback.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Resource released more than acquired")
	}
	if len(r.waiters) > 0 {
		w := r.popWaiter()
		if w.p != nil {
			r.e.wake(w.p)
		} else {
			r.waited++
			r.waitTotal += r.e.now - w.at
			r.e.At(r.e.now, w.fn)
		}
		return // ownership transferred; inUse unchanged
	}
	r.inUse--
}

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.cap }

// QueueLen returns the number of acquirers waiting for a unit.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Use acquires the resource, sleeps for d, and releases it: the basic
// "request a server for a service time" pattern of queueing models.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// Chan is a bounded FIFO channel in virtual time. A capacity of zero gives
// rendezvous (unbuffered) semantics. Values are handed to receivers in send
// order; blocked senders and receivers are served in arrival order.
type Chan struct {
	e      *Engine
	buf    []interface{}
	cap    int
	closed bool

	sendq []*chanSender
	recvq []*chanReceiver
}

type chanSender struct {
	p *Proc
	v interface{}
}

type chanReceiver struct {
	p      *Proc
	v      interface{}
	filled bool
}

// NewChan returns a channel bound to e with the given buffer capacity.
func NewChan(e *Engine, capacity int) *Chan {
	if capacity < 0 {
		panic("sim: negative Chan capacity")
	}
	return &Chan{e: e, cap: capacity}
}

// Len returns the number of buffered (sent but not yet received) values.
func (c *Chan) Len() int { return len(c.buf) }

// Closed reports whether Close has been called.
func (c *Chan) Closed() bool { return c.closed }

// Send enqueues v, blocking p while the buffer is full (or, for a rendezvous
// channel, until a receiver arrives). Sending on a closed channel panics.
func (c *Chan) Send(p *Proc, v interface{}) {
	if c.closed {
		panic("sim: send on closed Chan")
	}
	if len(c.recvq) > 0 {
		// Hand the value directly to the oldest waiting receiver.
		rx := c.recvq[0]
		c.recvq = c.recvq[:copy(c.recvq, c.recvq[1:])]
		rx.v, rx.filled = v, true
		c.e.wake(rx.p)
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	// Buffer full (or rendezvous with no receiver): queue and block. A
	// receiver (or Close) will wake us after consuming our value.
	s := &chanSender{p: p, v: v}
	c.sendq = append(c.sendq, s)
	p.block()
	if c.closed && s.v != nil {
		// Close woke us without a receiver taking the value.
		panic("sim: send on closed Chan")
	}
}

// TrySend enqueues v if the channel can accept it without blocking,
// reporting whether it did.
func (c *Chan) TrySend(v interface{}) bool {
	if c.closed {
		panic("sim: send on closed Chan")
	}
	if len(c.recvq) > 0 {
		rx := c.recvq[0]
		c.recvq = c.recvq[:copy(c.recvq, c.recvq[1:])]
		rx.v, rx.filled = v, true
		c.e.wake(rx.p)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv dequeues a value, blocking p while the channel is empty. ok is false
// only when the channel is closed and fully drained.
func (c *Chan) Recv(p *Proc) (v interface{}, ok bool) {
	if v, ok = c.takeReady(); ok {
		return v, true
	}
	if c.closed {
		return nil, false
	}
	rx := &chanReceiver{p: p}
	c.recvq = append(c.recvq, rx)
	p.block()
	if rx.filled {
		return rx.v, true
	}
	// Woken by Close with nothing delivered.
	return nil, false
}

// TryRecv dequeues a value without blocking; ok is false when nothing is
// immediately available.
func (c *Chan) TryRecv() (v interface{}, ok bool) {
	return c.takeReady()
}

// takeReady removes and returns the next deliverable value: from the buffer
// first, otherwise directly from a blocked sender (rendezvous).
func (c *Chan) takeReady() (interface{}, bool) {
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[:copy(c.buf, c.buf[1:])]
		// A freed buffer slot admits the oldest blocked sender.
		if len(c.sendq) > 0 {
			s := c.sendq[0]
			c.sendq = c.sendq[:copy(c.sendq, c.sendq[1:])]
			c.buf = append(c.buf, s.v)
			s.v = nil
			c.e.wake(s.p)
		}
		return v, true
	}
	if len(c.sendq) > 0 { // rendezvous (cap == 0)
		s := c.sendq[0]
		c.sendq = c.sendq[:copy(c.sendq, c.sendq[1:])]
		v := s.v
		s.v = nil
		c.e.wake(s.p)
		return v, true
	}
	return nil, false
}

// Close marks the channel closed, waking all blocked receivers (which see
// ok == false once the buffer drains) and panicking any blocked senders.
// Closing twice panics, as with native channels.
func (c *Chan) Close() {
	if c.closed {
		panic("sim: close of closed Chan")
	}
	c.closed = true
	for _, rx := range c.recvq {
		c.e.wake(rx.p)
	}
	c.recvq = nil
	for _, s := range c.sendq {
		c.e.wake(s.p) // wakes into the "send on closed Chan" panic
	}
	c.sendq = nil
}
