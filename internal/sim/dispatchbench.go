package sim

import "fmt"

// This file is the engine's self-measurement harness: a synthetic dispatch
// workload shaped like the paper-scale event mix — many concurrent timer
// chains with colliding periods (the per-hop transfer and device-charge
// cadence of the GEMM/HotSpot/SpMV profile) plus periodic same-instant
// fan-out bursts (the wake storms the serve tier's fair queue and the
// HotSpot steal path generate). The same workload runs on either dispatch
// path, so the wall-clock ratio between them is the measured cost of full
// Proc semantics over inline callbacks. The perf gate (figures/perf.go)
// runs both paths, asserts their virtual-time results are identical, and
// holds the rates and the speedup to committed floors.

// DispatchPath selects the dispatch mechanism a dispatch workload exercises.
type DispatchPath int

const (
	// PathCallback drives the workload with Engine.After timer chains:
	// every event is an inline callback, zero goroutine handoffs.
	PathCallback DispatchPath = iota
	// PathProc drives the identical workload with full processes: every
	// event is a goroutine resumption, the engine's legacy-shaped cost.
	PathProc
)

func (p DispatchPath) String() string {
	if p == PathCallback {
		return "callback"
	}
	return "proc"
}

// DispatchConfig shapes a dispatch workload. All counts are exact, so the
// virtual-time outcome is a pure function of the config regardless of path.
type DispatchConfig struct {
	// Chains is the number of concurrent timer chains; chain i fires with
	// period 1 + i%7 ns, so chains continually collide on shared instants.
	Chains int
	// PerChain is how many times each chain fires.
	PerChain int
	// Burst is the width of each same-instant fan-out burst (0 disables).
	Burst int
	// BurstEvery is the virtual period between bursts (default 64ns).
	BurstEvery Time
	// BurstRounds is how many bursts fire.
	BurstRounds int
}

// Firings returns the workload-level firing count the config produces on
// either path: timer ticks plus burst leaf firings plus burst rounds.
func (c DispatchConfig) Firings() int64 {
	return int64(c.Chains)*int64(c.PerChain) +
		int64(c.BurstRounds)*int64(c.Burst+1)
}

// DispatchResult is one dispatch run's outcome. Fired and VirtualNS depend
// only on the config — the two paths must agree on them — while Events,
// WallNS and EventsPerSec measure the engine's cost on the chosen path.
type DispatchResult struct {
	Path         DispatchPath
	Events       int64   // engine events dispatched
	Fired        int64   // workload-level firings (path-invariant)
	VirtualNS    int64   // final virtual clock (path-invariant)
	WallNS       int64   // real time inside Run
	EventsPerSec float64 // Events / wall seconds
}

// RunDispatch executes the workload on the given path and reports the cost.
func RunDispatch(cfg DispatchConfig, path DispatchPath) (DispatchResult, error) {
	if cfg.Chains < 1 || cfg.PerChain < 1 {
		return DispatchResult{}, fmt.Errorf("sim: dispatch config needs chains and per-chain counts, got %+v", cfg)
	}
	burstEvery := cfg.BurstEvery
	if burstEvery <= 0 {
		burstEvery = 64
	}
	e := NewEngine()
	var fired int64
	leaf := func() { fired++ }

	for i := 0; i < cfg.Chains; i++ {
		period := Time(1 + i%7)
		if path == PathCallback {
			n := 0
			var tick func()
			tick = func() {
				fired++
				n++
				if n < cfg.PerChain {
					e.After(period, tick)
				}
			}
			e.After(period, tick)
			continue
		}
		e.Spawn(fmt.Sprintf("chain%03d", i), func(p *Proc) {
			for n := 0; n < cfg.PerChain; n++ {
				p.Sleep(period)
				fired++
			}
		})
	}

	if cfg.Burst > 0 && cfg.BurstRounds > 0 {
		if path == PathCallback {
			round := 0
			var burst func()
			burst = func() {
				fired++
				for k := 0; k < cfg.Burst; k++ {
					e.After(0, leaf)
				}
				round++
				if round < cfg.BurstRounds {
					e.After(burstEvery, burst)
				}
			}
			e.After(burstEvery, burst)
		} else {
			e.Spawn("burst-driver", func(p *Proc) {
				for round := 0; round < cfg.BurstRounds; round++ {
					p.Sleep(burstEvery)
					fired++
					for k := 0; k < cfg.Burst; k++ {
						e.Spawn(fmt.Sprintf("burst%04d-%03d", round, k), func(q *Proc) {
							fired++
						})
					}
				}
			})
		}
	}

	if err := e.Run(); err != nil {
		return DispatchResult{}, fmt.Errorf("sim: dispatch workload (%v path): %w", path, err)
	}
	st := e.Stats()
	return DispatchResult{
		Path:         path,
		Events:       st.Events,
		Fired:        fired,
		VirtualNS:    int64(e.Now()),
		WallNS:       int64(st.Wall),
		EventsPerSec: st.EventsPerSec(),
	}, nil
}
