package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Spawn("a", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		at = append(at, p.Now())
		p.Sleep(5 * Millisecond)
		at = append(at, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != 10*Millisecond || at[1] != 15*Millisecond {
		t.Fatalf("got wakeups at %v", at)
	}
	if e.Now() != 15*Millisecond {
		t.Fatalf("final time %v", e.Now())
	}
}

func TestInterleavingIsByTimestamp(t *testing.T) {
	e := NewEngine()
	var order []string
	mark := func(s string) { order = append(order, s) }
	e.Spawn("slow", func(p *Proc) {
		p.Sleep(30)
		mark("slow")
	})
	e.Spawn("fast", func(p *Proc) {
		p.Sleep(10)
		mark("fast")
		p.Sleep(30) // wakes at 40
		mark("fast2")
	})
	e.Spawn("mid", func(p *Proc) {
		p.Sleep(20)
		mark("mid")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(order, ",")
	if got != "fast,mid,slow,fast2" {
		t.Fatalf("order = %s", got)
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	// Processes scheduled for the same instant run in scheduling order.
	e := NewEngine()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(100)
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEngine()
	var childTime Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(5)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(7)
			childTime = c.Now()
		})
		p.Sleep(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 12 {
		t.Fatalf("child finished at %d, want 12", childTime)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	l := NewLatch(e)
	e.Spawn("stuck", func(p *Proc) { l.Wait(p) })
	err := e.Run()
	d, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(d.Blocked) != 1 || d.Blocked[0] != "stuck" {
		t.Fatalf("blocked = %v", d.Blocked)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", func(p *Proc) {
		p.Sleep(1)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUntilResumes(t *testing.T) {
	e := NewEngine()
	done := false
	e.Spawn("late", func(p *Proc) {
		p.Sleep(100)
		done = true
	})
	if err := e.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if done || e.Now() != 50 {
		t.Fatalf("done=%v now=%v after first half", done, e.Now())
	}
	if err := e.RunUntil(-1); err != nil {
		t.Fatal(err)
	}
	if !done || e.Now() != 100 {
		t.Fatalf("done=%v now=%v after resume", done, e.Now())
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical multi-process simulations produce identical traces.
	run := func() string {
		e := NewEngine()
		var sb strings.Builder
		e.SetTrace(func(tm Time, p *Proc) {
			fmt.Fprintf(&sb, "%d:%s;", tm, p.Name())
		})
		r := NewResource(e, 2)
		wg := NewWaitGroup(e)
		for i := 0; i < 6; i++ {
			i := i
			wg.Add(1)
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				defer wg.Done()
				for j := 0; j < 3; j++ {
					r.Use(p, Time(10+i*3+j))
				}
			})
		}
		e.Spawn("join", func(p *Proc) { wg.Wait(p) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("traces differ:\n%s\n%s", a, b)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t Time
		s string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1500, "1.5µs"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
		{-2 * Millisecond, "-2ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.s {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.s)
		}
	}
}

func TestTransferTime(t *testing.T) {
	if d := TransferTime(1000, 1000); d != Second {
		t.Fatalf("1000B at 1000B/s = %v", d)
	}
	if d := TransferTime(0, 100); d != 0 {
		t.Fatalf("zero bytes = %v", d)
	}
	if d := TransferTime(100, 0); d != 0 {
		t.Fatalf("zero bandwidth = %v", d)
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	// Property: more bytes never take less time at a fixed bandwidth.
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return TransferTime(x, 1e9) <= TransferTime(y, 1e9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		d := Seconds(float64(ms) / 1000)
		return d == Time(ms)*Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStats(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Procs != 1 {
		t.Fatalf("procs = %d", st.Procs)
	}
	if st.Live != 0 {
		t.Fatalf("live = %d after drain", st.Live)
	}
	// Start event + 5 sleeps.
	if st.Events != 6 {
		t.Fatalf("events = %d, want 6", st.Events)
	}
	if st.Callbacks != 0 {
		t.Fatalf("callbacks = %d, want 0", st.Callbacks)
	}
	if st.Wall <= 0 || st.EventsPerSec() <= 0 {
		t.Fatalf("wall-clock stats not recorded: %+v", st)
	}
}
