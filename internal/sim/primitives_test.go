package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestWaitGroupJoins(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	var finished Time
	for i := 1; i <= 4; i++ {
		i := i
		wg.Add(1)
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i) * 10)
			wg.Done()
		})
	}
	e.Spawn("join", func(p *Proc) {
		wg.Wait(p)
		finished = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 40 {
		t.Fatalf("join at %v, want 40", finished)
	}
}

func TestWaitGroupZeroIsImmediate(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	ok := false
	e.Spawn("w", func(p *Proc) {
		wg.Wait(p)
		ok = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestLatch(t *testing.T) {
	e := NewEngine()
	l := NewLatch(e)
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			l.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(25)
		l.Fire()
		l.Fire() // idempotent
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters", len(woke))
	}
	for _, w := range woke {
		if w != 25 {
			t.Fatalf("woke at %v, want 25", w)
		}
	}
	if !l.Fired() {
		t.Fatal("latch not marked fired")
	}
}

func TestResourceSerializes(t *testing.T) {
	// Three jobs of 10 units each on a capacity-1 server finish at 10,20,30.
	e := NewEngine()
	r := NewResource(e, 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
			r.Use(p, 10)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	// Capacity 2: four 10-unit jobs finish at 10,10,20,20.
	e := NewEngine()
	r := NewResource(e, 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
			r.Use(p, 10)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
			p.Sleep(Time(i)) // stagger arrivals: 0,1,2,3,4
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(100)
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("service order = %v", order)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var got []bool
	e.Spawn("a", func(p *Proc) {
		got = append(got, r.TryAcquire()) // true
		got = append(got, r.TryAcquire()) // false: full
		r.Release()
		got = append(got, r.TryAcquire()) // true again
		r.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TryAcquire results = %v", got)
		}
	}
}

func TestResourceOverRelease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine()
	r := NewResource(e, 1)
	r.Release()
}

func TestResourceQueueingDelay(t *testing.T) {
	// Property: on a capacity-1 server, n equal jobs arriving together
	// finish at k*d for k = 1..n, i.e. total queueing is the arithmetic sum.
	f := func(nRaw, dRaw uint8) bool {
		n := int(nRaw%8) + 1
		d := Time(dRaw%50) + 1
		e := NewEngine()
		r := NewResource(e, 1)
		ends := make([]Time, 0, n)
		for i := 0; i < n; i++ {
			e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
				r.Use(p, d)
				ends = append(ends, p.Now())
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for k, end := range ends {
			if end != Time(k+1)*d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChanBuffered(t *testing.T) {
	e := NewEngine()
	c := NewChan(e, 2)
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			c.Send(p, i)
			p.Sleep(1)
		}
		c.Close()
	})
	e.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := c.Recv(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
			p.Sleep(3)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("received %d values", len(got))
	}
}

func TestChanRendezvous(t *testing.T) {
	e := NewEngine()
	c := NewChan(e, 0)
	var sendDone, recvAt Time
	e.Spawn("s", func(p *Proc) {
		c.Send(p, "x")
		sendDone = p.Now()
	})
	e.Spawn("r", func(p *Proc) {
		p.Sleep(42)
		v, ok := c.Recv(p)
		if !ok || v.(string) != "x" {
			t.Errorf("recv = %v,%v", v, ok)
		}
		recvAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != 42 || recvAt != 42 {
		t.Fatalf("send done %v, recv %v; want both 42", sendDone, recvAt)
	}
}

func TestChanBlockingBackpressure(t *testing.T) {
	// A capacity-1 channel with a slow consumer throttles the producer.
	e := NewEngine()
	c := NewChan(e, 1)
	var lastSend Time
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			c.Send(p, i)
		}
		lastSend = p.Now()
		c.Close()
	})
	e.Spawn("consumer", func(p *Proc) {
		for {
			if _, ok := c.Recv(p); !ok {
				return
			}
			p.Sleep(10)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Consumer takes v0 at t=0, sleeps to 10, takes v1 (buffered), ...
	// The 4th send can only complete once a slot frees at t=20.
	if lastSend != 20 {
		t.Fatalf("last send at %v, want 20", lastSend)
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	e := NewEngine()
	c := NewChan(e, 4)
	okSeen := true
	e.Spawn("r", func(p *Proc) {
		_, ok := c.Recv(p)
		okSeen = ok
	})
	e.Spawn("closer", func(p *Proc) {
		p.Sleep(5)
		c.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if okSeen {
		t.Fatal("Recv on closed empty chan returned ok=true")
	}
}

func TestChanDrainAfterClose(t *testing.T) {
	e := NewEngine()
	c := NewChan(e, 4)
	var got []int
	e.Spawn("p", func(p *Proc) {
		c.Send(p, 1)
		c.Send(p, 2)
		c.Close()
	})
	e.Spawn("r", func(p *Proc) {
		p.Sleep(10) // start after close
		for {
			v, ok := c.Recv(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drained %v", got)
	}
}

func TestChanTryOps(t *testing.T) {
	e := NewEngine()
	c := NewChan(e, 1)
	e.Spawn("t", func(p *Proc) {
		if _, ok := c.TryRecv(); ok {
			t.Error("TryRecv on empty chan succeeded")
		}
		if !c.TrySend(7) {
			t.Error("TrySend on empty chan failed")
		}
		if c.TrySend(8) {
			t.Error("TrySend on full chan succeeded")
		}
		v, ok := c.TryRecv()
		if !ok || v.(int) != 7 {
			t.Errorf("TryRecv = %v,%v", v, ok)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanFIFOThroughManyValues(t *testing.T) {
	// Property: for any (cap, count), the consumer sees 0..count-1 in order.
	f := func(capRaw, nRaw uint8) bool {
		capacity := int(capRaw % 5)
		n := int(nRaw%64) + 1
		e := NewEngine()
		c := NewChan(e, capacity)
		var got []int
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < n; i++ {
				c.Send(p, i)
			}
			c.Close()
		})
		e.Spawn("r", func(p *Proc) {
			for {
				v, ok := c.Recv(p)
				if !ok {
					return
				}
				got = append(got, v.(int))
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 3)
	var releases []Time
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(10 * (i + 1))) // arrive at 10, 20, 30
			b.Wait(p)
			releases = append(releases, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(releases) != 3 {
		t.Fatalf("%d releases", len(releases))
	}
	for _, r := range releases {
		if r != 30 {
			t.Fatalf("released at %v, want 30 (last arriver)", r)
		}
	}
	if b.Rounds() != 1 {
		t.Fatalf("rounds = %d", b.Rounds())
	}
}

func TestBarrierCycles(t *testing.T) {
	// Two processes alternate through 5 rounds; the barrier must reset
	// each time.
	e := NewEngine()
	b := NewBarrier(e, 2)
	var aRounds, bRounds int
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			b.Wait(p)
			aRounds++
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(7)
			b.Wait(p)
			bRounds++
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if aRounds != 5 || bRounds != 5 || b.Rounds() != 5 {
		t.Fatalf("rounds: a=%d b=%d barrier=%d", aRounds, bRounds, b.Rounds())
	}
	if e.Now() != 35 {
		t.Fatalf("final time %v, want 35 (slower process paces rounds)", e.Now())
	}
}

func TestBarrierSingleParty(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, 1)
	e.Spawn("solo", func(p *Proc) {
		b.Wait(p) // must not block
		b.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Rounds() != 2 {
		t.Fatalf("rounds = %d", b.Rounds())
	}
}

func TestResourceQueueStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("j%d", i), func(p *Proc) {
			r.Use(p, 10)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	acq, waited, total := r.QueueStats()
	if acq != 3 {
		t.Fatalf("acquires = %d", acq)
	}
	if waited != 2 {
		t.Fatalf("waited = %d", waited)
	}
	// Job 2 waits 10, job 3 waits 20.
	if total != 30 {
		t.Fatalf("wait total = %v, want 30", total)
	}
}
