// Package sim implements a deterministic discrete-event simulation (DES)
// engine used as the timing substrate for the Northup reproduction.
//
// The paper's evaluation ran on real hardware (an AMD APU, a discrete GPU, a
// PCIe SSD and a SATA disk drive). This repository replaces wall-clock time
// on that hardware with virtual time: every simulated activity (an I/O
// request, a DMA transfer, a GPU kernel, a CPU thread) is a process that
// advances a shared virtual clock. Because all the paper's results are
// relative (normalized runtimes, breakdown fractions, speedups), a calibrated
// virtual clock preserves the shapes of the figures while keeping runs
// deterministic and fast.
//
// # Model
//
// A Proc is a goroutine that cooperates with a single-threaded Engine:
// exactly one Proc runs at any instant, and it hands control back to the
// Engine whenever it sleeps or blocks on a synchronization primitive. Events
// with equal timestamps fire in the order they were scheduled (a strictly
// increasing sequence number breaks ties), so a simulation is a pure function
// of its inputs.
//
// The package provides the usual structured primitives on top of the engine:
// WaitGroup, Latch, Resource (counting semaphore with FIFO wakeup), and Chan
// (bounded FIFO channel). These mirror their Go standard-library namesakes
// but block in virtual time rather than real time.
//
// # Dispatch fast path
//
// Blocking is what a Proc's goroutine buys; leaf work that never blocks can
// skip the goroutine entirely. Engine.At and Engine.After schedule a bare
// callback that the dispatch loop runs inline — zero handoffs, roughly 25x
// cheaper per event — under the same (time, seq) ordering as process
// wakeups. Callbacks may Spawn, fire latches and use the Try* primitives,
// but must not block, and SetTrace does not report them (they are not
// resumptions). Internally the engine keeps pending events in an
// allocation-free 4-ary heap of concrete values, dispatches all events
// sharing an instant as one batch, and recycles the IDs of finished
// processes through a free list; Stats reports event counts, live/spawned
// processes and wall-clock dispatch throughput, and RunDispatch measures
// both dispatch paths on a paper-shaped event mix.
package sim
