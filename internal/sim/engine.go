package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Engine is a single-threaded discrete-event simulation scheduler.
//
// An Engine must be driven from a single goroutine: Spawn processes, then
// call Run (or RunUntil). While Run executes, processes may spawn further
// processes and schedule events; the engine guarantees that at most one
// process executes at any moment, so simulation state needs no locking.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan yieldMsg
	procs   []*Proc
	live    int // spawned but not finished
	running bool
	fatal   error
	fired   int64 // events dispatched (simulator-cost observability)

	// trace, when non-nil, receives a line for every process resumption.
	// Used by determinism tests.
	trace func(t Time, p *Proc)
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan yieldMsg)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTrace installs a hook invoked each time a process is resumed.
// Pass nil to disable. Intended for tests.
func (e *Engine) SetTrace(fn func(t Time, p *Proc)) { e.trace = fn }

// Stats reports the engine's lifetime counters: events dispatched and
// processes spawned. Useful for quantifying simulation cost.
func (e *Engine) Stats() (events int64, procs int) { return e.fired, len(e.procs) }

type yieldKind int

const (
	yieldBlocked yieldKind = iota // process parked (sleep or condition wait)
	yieldDone                     // process function returned
	yieldPanic                    // process panicked
)

type yieldMsg struct {
	kind yieldKind
	p    *Proc
	err  error
}

type event struct {
	t   Time
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// schedule enqueues a wakeup for p at time t. It panics if p already has a
// pending wakeup: primitives in this package never double-schedule, so a
// double schedule indicates a bug in client code (e.g. waking a process that
// is not blocked on the caller's primitive).
func (e *Engine) schedule(p *Proc, t Time) {
	if p.state == procFinished {
		panic(fmt.Sprintf("sim: scheduling finished process %q", p.name))
	}
	if p.pending {
		panic(fmt.Sprintf("sim: double-scheduling process %q", p.name))
	}
	if t < e.now {
		t = e.now
	}
	p.pending = true
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, p: p})
}

// wake schedules p to resume at the current time. It is the mechanism used
// by synchronization primitives to hand control to a blocked process.
func (e *Engine) wake(p *Proc) { e.schedule(p, e.now) }

// DeadlockError reports that the event queue drained while processes were
// still blocked on conditions that nothing can ever signal.
type DeadlockError struct {
	At      Time
	Blocked []string // names of the stuck processes
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked: %s",
		d.At, len(d.Blocked), strings.Join(d.Blocked, ", "))
}

// Run executes events until the queue drains. It returns nil when every
// spawned process has finished, a *DeadlockError when processes remain
// blocked forever, or the panic value (as an error) if a process panicked.
func (e *Engine) Run() error { return e.RunUntil(-1) }

// RunUntil executes events with timestamps <= deadline (a negative deadline
// means "no limit"). If the deadline stops the run early while processes are
// still runnable, RunUntil returns nil and the simulation may be resumed by
// calling RunUntil again with a later deadline.
func (e *Engine) RunUntil(deadline Time) error {
	if e.running {
		panic("sim: Engine.Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	for e.events.Len() > 0 {
		if deadline >= 0 && e.events[0].t > deadline {
			e.now = deadline
			return nil
		}
		ev := heap.Pop(&e.events).(event)
		e.fired++
		if ev.t > e.now {
			e.now = ev.t
		}
		p := ev.p
		p.pending = false
		p.state = procRunning
		if e.trace != nil {
			e.trace(e.now, p)
		}
		p.resume <- struct{}{}
		msg := <-e.yield
		switch msg.kind {
		case yieldBlocked:
			// The process parked itself; its next wakeup (if any) is
			// already in the heap or held by a primitive's wait list.
		case yieldDone:
			msg.p.state = procFinished
			e.live--
		case yieldPanic:
			msg.p.state = procFinished
			e.live--
			e.fatal = msg.err
			return e.fatal
		}
	}
	if e.live > 0 {
		d := &DeadlockError{At: e.now}
		for _, p := range e.procs {
			if p.state == procBlocked {
				d.Blocked = append(d.Blocked, p.name)
			}
		}
		sort.Strings(d.Blocked)
		return d
	}
	return nil
}
