package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Engine is a single-threaded discrete-event simulation scheduler.
//
// An Engine must be driven from a single goroutine: Spawn processes, then
// call Run (or RunUntil). While Run executes, processes may spawn further
// processes and schedule events; the engine guarantees that at most one
// process executes at any moment, so simulation state needs no locking.
//
// Dispatch hot path. Events live in a hand-rolled 4-ary min-heap of concrete
// event values (no container/heap, no interface{} boxing), so scheduling a
// wakeup performs no allocation in steady state. When the clock advances to
// an instant, every event carrying that timestamp is drained from the heap
// in one pass into a ready ring and dispatched in sequence order; events
// scheduled *for the current instant while it is being dispatched* are
// appended directly to the ring and never touch the heap at all — the wake
// storms of FIFO resources, barriers and fair queues cost one append each.
// Timed callbacks (Engine.At / Engine.After) run inline in the dispatch
// loop with no goroutine and no channel handoff; only full processes pay
// the two context switches of a resumption. None of this changes observable
// semantics: events still fire in exactly (time, sequence) order.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	// ready holds the current instant's dispatch batch in sequence order;
	// readyAt is the cursor of the next event to dispatch. The slice is
	// reused across instants, so steady-state dispatch does not allocate.
	ready   []event
	readyAt int

	yield   chan yieldMsg
	procs   []*Proc // live (spawned but not finished) processes
	freeIDs []int   // recycled IDs of finished processes
	nextID  int
	spawned int64
	live    int
	running bool
	fatal   error

	fired     int64 // events dispatched (simulator-cost observability)
	callbacks int64 // of which ran on the inline callback fast path
	wall      time.Duration

	// trace, when non-nil, receives a line for every process resumption.
	// Used by determinism tests. Inline callbacks are not resumptions and
	// are not traced.
	trace func(t Time, p *Proc)
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan yieldMsg)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTrace installs a hook invoked each time a process is resumed.
// Pass nil to disable. Intended for tests.
func (e *Engine) SetTrace(fn func(t Time, p *Proc)) { e.trace = fn }

// Stats is the engine's lifetime cost profile: how many events it
// dispatched, on which path, and how fast in real time.
type Stats struct {
	// Events is the number of events dispatched: process resumptions plus
	// inline callbacks.
	Events int64
	// Callbacks is how many of those ran on the inline callback fast path
	// (no goroutine, no channel handoff).
	Callbacks int64
	// Procs is the number of processes spawned over the engine's lifetime.
	// Finished processes are released, so this exceeds Live.
	Procs int64
	// Live is the number of processes spawned but not yet finished.
	Live int
	// Wall is the real time spent inside Run/RunUntil.
	Wall time.Duration
}

// EventsPerSec is the wall-clock dispatch rate: events per real second
// across all Run calls so far. Zero when the engine has not run.
func (s Stats) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// Stats reports the engine's lifetime counters and wall-clock dispatch rate.
func (e *Engine) Stats() Stats {
	return Stats{
		Events:    e.fired,
		Callbacks: e.callbacks,
		Procs:     e.spawned,
		Live:      e.live,
		Wall:      e.wall,
	}
}

type yieldKind int

const (
	yieldBlocked yieldKind = iota // process parked (sleep or condition wait)
	yieldDone                     // process function returned
	yieldPanic                    // process panicked
)

type yieldMsg struct {
	kind yieldKind
	p    *Proc
	err  error
}

// event is one scheduled dispatch: a process wakeup (p != nil) or an inline
// callback (fn != nil). Events order by (t, seq); seq is strictly increasing
// per schedule call, so equal-time events fire in scheduling order.
type event struct {
	t   Time
	seq uint64
	p   *Proc
	fn  func()
}

func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// eventHeap is a 4-ary min-heap of concrete event values. A wider node
// halves the tree depth of the binary layout, trading a few extra compares
// per level for fewer cache-missing swaps — the classic d-ary win for
// DES event queues — and the concrete element type keeps push/pop free of
// the interface{} boxing allocation container/heap would impose.
type eventHeap struct{ ev []event }

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) push(ev event) {
	h.ev = append(h.ev, ev)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(&h.ev[i], &h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	ev := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = event{} // drop the proc/closure references
	h.ev = h.ev[:n]
	if n > 1 {
		h.siftDown()
	}
	return ev
}

func (h *eventHeap) siftDown() {
	n := len(h.ev)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(&h.ev[c], &h.ev[min]) {
				min = c
			}
		}
		if !eventLess(&h.ev[min], &h.ev[i]) {
			return
		}
		h.ev[i], h.ev[min] = h.ev[min], h.ev[i]
		i = min
	}
}

// enqueue stamps the event with a clamped time and the next sequence number
// and routes it: events for the instant currently being dispatched go
// straight onto the ready ring (they cannot precede anything already there,
// because their sequence numbers are larger), everything else into the heap.
func (e *Engine) enqueue(ev event, t Time) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.t, ev.seq = t, e.seq
	if e.running && t == e.now {
		e.ready = append(e.ready, ev)
		return
	}
	e.events.push(ev)
}

// schedule enqueues a wakeup for p at time t. It panics if p already has a
// pending wakeup: primitives in this package never double-schedule, so a
// double schedule indicates a bug in client code (e.g. waking a process that
// is not blocked on the caller's primitive).
func (e *Engine) schedule(p *Proc, t Time) {
	if p.state == procFinished {
		panic(fmt.Sprintf("sim: scheduling finished process %q", p.name))
	}
	if p.pending {
		panic(fmt.Sprintf("sim: double-scheduling process %q", p.name))
	}
	p.pending = true
	e.enqueue(event{p: p}, t)
}

// wake schedules p to resume at the current time. It is the mechanism used
// by synchronization primitives to hand control to a blocked process.
func (e *Engine) wake(p *Proc) { e.schedule(p, e.now) }

// At schedules fn to run at virtual time t (clamped to now), inline in the
// dispatch loop: no goroutine, no channel handoff, just a heap pop and a
// call. It is the fast path for leaf, non-blocking work — timer chains,
// arrival generators, completion notifications. fn must not block: it has
// no Proc, so it may read Now, schedule further callbacks, Spawn processes,
// Fire latches or use TrySend/TryRecv, but never Sleep, Acquire, Wait,
// Send or Recv. Code that blocks keeps full Proc semantics.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: Engine.At with nil callback")
	}
	e.enqueue(event{fn: fn}, t)
}

// After schedules fn to run d from now on the inline callback fast path;
// see At. A non-positive delay runs fn after every event already scheduled
// at the current instant.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Peek returns the timestamp of the next pending event, or false when the
// queue is empty. It is meaningful between Run/RunUntil calls — the paced
// serve driver uses it to decide whether a resumed RunUntil has more work
// or the simulation has drained.
func (e *Engine) Peek() (Time, bool) {
	if e.events.len() == 0 {
		return 0, false
	}
	return e.events.ev[0].t, true
}

// DeadlockError reports that the event queue drained while processes were
// still blocked on conditions that nothing can ever signal.
type DeadlockError struct {
	At      Time
	Blocked []string // names of the stuck processes
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked: %s",
		d.At, len(d.Blocked), strings.Join(d.Blocked, ", "))
}

// Run executes events until the queue drains. It returns nil when every
// spawned process has finished, a *DeadlockError when processes remain
// blocked forever, or the panic value (as an error) if a process panicked.
func (e *Engine) Run() error { return e.RunUntil(-1) }

// RunUntil executes events with timestamps <= deadline (a negative deadline
// means "no limit"). If the deadline stops the run early while processes are
// still runnable, RunUntil returns nil and the simulation may be resumed by
// calling RunUntil again with a later deadline.
func (e *Engine) RunUntil(deadline Time) error {
	if e.running {
		panic("sim: Engine.Run called reentrantly")
	}
	e.running = true
	start := time.Now()
	defer func() {
		e.running = false
		e.wall += time.Since(start)
	}()

	for {
		// Drain the current instant's batch. Dispatching may append more
		// same-instant events to the ring; they run in this same pass, in
		// sequence order.
		for e.readyAt < len(e.ready) {
			ev := e.ready[e.readyAt]
			e.ready[e.readyAt] = event{}
			e.readyAt++
			if err := e.dispatch(ev); err != nil {
				return err
			}
		}
		e.ready = e.ready[:0]
		e.readyAt = 0
		if e.events.len() == 0 {
			break
		}
		t := e.events.ev[0].t
		if deadline >= 0 && t > deadline {
			e.now = deadline
			return nil
		}
		e.now = t
		// Batch pop: every event at this instant leaves the heap in one
		// pass (in sequence order), so a same-timestamp storm pays the
		// heap's log once per event popped and nothing for re-wakes.
		for e.events.len() > 0 && e.events.ev[0].t == t {
			e.ready = append(e.ready, e.events.pop())
		}
	}
	if e.live > 0 {
		d := &DeadlockError{At: e.now}
		for _, p := range e.procs {
			if p.state == procBlocked {
				d.Blocked = append(d.Blocked, p.name)
			}
		}
		sort.Strings(d.Blocked)
		return d
	}
	return nil
}

// dispatch fires one event: an inline callback, or a process resumption
// through the goroutine handoff pair.
func (e *Engine) dispatch(ev event) error {
	e.fired++
	if ev.fn != nil {
		e.callbacks++
		ev.fn()
		return nil
	}
	p := ev.p
	p.pending = false
	p.state = procRunning
	if e.trace != nil {
		e.trace(e.now, p)
	}
	p.resume <- struct{}{}
	msg := <-e.yield
	switch msg.kind {
	case yieldBlocked:
		// The process parked itself; its next wakeup (if any) is already
		// queued or held by a primitive's wait list.
	case yieldDone:
		e.release(msg.p)
	case yieldPanic:
		e.release(msg.p)
		e.fatal = msg.err
		return e.fatal
	}
	return nil
}

// release retires a finished process: it leaves the live table and its ID
// returns to the free list, so a long run spawning short-lived processes
// (per-hop transfer procs, serve-tier jobs) holds memory proportional to
// the processes alive, not to every process that ever existed.
func (e *Engine) release(p *Proc) {
	p.state = procFinished
	e.live--
	last := len(e.procs) - 1
	e.procs[p.slot] = e.procs[last]
	e.procs[p.slot].slot = p.slot
	e.procs[last] = nil
	e.procs = e.procs[:last]
	e.freeIDs = append(e.freeIDs, p.id)
	p.slot = -1
}
