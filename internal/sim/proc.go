package sim

import "fmt"

type procState int

const (
	procBlocked procState = iota // parked, waiting for a wakeup
	procRunning
	procFinished
)

// Proc is a simulated process: a goroutine whose blocking operations take
// virtual time instead of real time. All Proc methods must be called from
// the process's own goroutine (the function passed to Spawn).
type Proc struct {
	e       *Engine
	name    string
	id      int
	slot    int // index in the engine's live-process table; -1 once finished
	resume  chan struct{}
	state   procState
	pending bool // a wakeup event for this proc is queued in the engine
}

// Spawn creates a process executing fn and schedules its start at the
// current virtual time. It may be called before Run (to seed the simulation)
// or from inside another process (or an At/After callback).
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	id := e.nextID
	if n := len(e.freeIDs); n > 0 {
		id = e.freeIDs[n-1]
		e.freeIDs = e.freeIDs[:n-1]
	} else {
		e.nextID++
	}
	p := &Proc{
		e:      e,
		name:   name,
		id:     id,
		slot:   len(e.procs),
		resume: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	e.spawned++
	e.live++
	go func() {
		<-p.resume // wait for the engine to start us
		defer func() {
			if r := recover(); r != nil {
				e.yield <- yieldMsg{kind: yieldPanic, p: p,
					err: fmt.Errorf("sim: process %q panicked: %v", p.name, r)}
			}
		}()
		fn(p)
		e.yield <- yieldMsg{kind: yieldDone, p: p}
	}()
	e.schedule(p, e.now)
	return p
}

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns a small integer unique among the engine's live processes.
// IDs of finished processes are recycled (deterministically), so a lifetime
// of short-lived spawns reuses a compact ID range.
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Sleep advances this process's local time by d. Other processes run in the
// meantime. A non-positive duration yields the processor for one scheduling
// round without advancing the clock.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.e.schedule(p, p.e.now+d)
	p.park()
}

// Yield reschedules the process at the current time, letting every other
// process that is ready at this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// park blocks the process until some event or primitive wakes it.
// The caller must have arranged for a future wakeup (an event in the heap or
// membership in a primitive's wait list); otherwise the run ends in deadlock.
func (p *Proc) park() {
	p.state = procBlocked
	p.e.yield <- yieldMsg{kind: yieldBlocked, p: p}
	<-p.resume
}

// block parks the process with no scheduled wakeup. Primitives call it after
// adding p to their wait list.
func (p *Proc) block() { p.park() }
