package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEventThroughput measures raw engine speed: one process sleeping
// repeatedly (two context handoffs per event).
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcesses measures scheduling with a wide ready set.
func BenchmarkManyProcesses(b *testing.B) {
	e := NewEngine()
	const procs = 64
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(Time(1 + j%7))
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures a FIFO server under load.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, 2)
	const workers = 16
	per := b.N/workers + 1
	for i := 0; i < workers; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for j := 0; j < per; j++ {
				r.Use(p, 3)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCallbackThroughput measures the inline fast path: one callback
// chain rescheduling itself (zero goroutine handoffs per event).
func BenchmarkCallbackThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCallbackFanOut measures same-instant batch dispatch: wide bursts
// of callbacks sharing one timestamp, the serve tier's wake-storm shape.
func BenchmarkCallbackFanOut(b *testing.B) {
	e := NewEngine()
	const width = 64
	leaf := func() {}
	rounds := b.N/width + 1
	r := 0
	var burst func()
	burst = func() {
		for k := 0; k < width; k++ {
			e.After(0, leaf)
		}
		r++
		if r < rounds {
			e.After(1, burst)
		}
	}
	e.After(1, burst)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSpawnChurn measures short-lived process turnover: spawn, one
// sleep, finish — the per-hop transfer proc shape — exercising the
// finished-proc release path and the ID free list.
func BenchmarkSpawnChurn(b *testing.B) {
	e := NewEngine()
	const width = 8
	e.Spawn("driver", func(p *Proc) {
		wg := NewWaitGroup(e)
		for i := 0; i < b.N; i += width {
			for k := 0; k < width; k++ {
				wg.Add(1)
				e.Spawn("w", func(q *Proc) {
					defer wg.Done()
					q.Sleep(1)
				})
			}
			wg.Wait(p)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChanPingPong measures rendezvous channel handoffs.
func BenchmarkChanPingPong(b *testing.B) {
	e := NewEngine()
	c := NewChan(e, 0)
	e.Spawn("sender", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Send(p, i)
		}
		c.Close()
	})
	e.Spawn("receiver", func(p *Proc) {
		for {
			if _, ok := c.Recv(p); !ok {
				return
			}
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
