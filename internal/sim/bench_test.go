package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEventThroughput measures raw engine speed: one process sleeping
// repeatedly (two context handoffs per event).
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcesses measures scheduling with a wide ready set.
func BenchmarkManyProcesses(b *testing.B) {
	e := NewEngine()
	const procs = 64
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(Time(1 + j%7))
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures a FIFO server under load.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, 2)
	const workers = 16
	per := b.N/workers + 1
	for i := 0; i < workers; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for j := 0; j < per; j++ {
				r.Use(p, 3)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChanPingPong measures rendezvous channel handoffs.
func BenchmarkChanPingPong(b *testing.B) {
	e := NewEngine()
	c := NewChan(e, 0)
	e.Spawn("sender", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Send(p, i)
		}
		c.Close()
	})
	e.Spawn("receiver", func(p *Proc) {
		for {
			if _, ok := c.Recv(p); !ok {
				return
			}
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
