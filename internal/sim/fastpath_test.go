package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestCallbackOrdering pins the callback fast path to the engine's ordering
// contract: callbacks interleave with process wakeups in exact (time,
// schedule-order) sequence.
func TestCallbackOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	mark := func(s string) func() {
		return func() { order = append(order, s) }
	}
	e.At(10, mark("cb@10"))
	e.Spawn("p", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "proc@10")
		p.Sleep(10)
		order = append(order, "proc@20")
	})
	e.At(20, mark("cb@20"))
	e.After(15, mark("cb@15"))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(order, ",")
	// At 10: the callback was scheduled before the proc's sleep, so it
	// fires first. At 20: cb@20 was scheduled at setup, before the proc's
	// second sleep existed.
	want := "cb@10,proc@10,cb@15,cb@20,proc@20"
	if got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

// TestCallbackSameInstantAppend verifies that a callback scheduling more
// work for the current instant runs it in the same dispatch batch, after
// everything already queued there.
func TestCallbackSameInstantAppend(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(5, func() {
		order = append(order, "a")
		e.After(0, func() { order = append(order, "a-tail") })
	})
	e.At(5, func() { order = append(order, "b") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "a,b,a-tail" {
		t.Fatalf("order = %s, want a,b,a-tail", got)
	}
	if e.Now() != 5 {
		t.Fatalf("now = %v, want 5", e.Now())
	}
}

// TestCallbackPastTimeClamps checks that At with a stale timestamp fires at
// the current instant rather than rewinding the clock.
func TestCallbackPastTimeClamps(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.At(10, func() {
		e.At(3, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10 {
		t.Fatalf("stale callback fired at %v, want 10", at)
	}
}

// TestCallbackSpawnsProc checks the handoff from the fast path back to full
// Proc semantics: a callback may spawn blocking work.
func TestCallbackSpawnsProc(t *testing.T) {
	e := NewEngine()
	var done Time
	e.After(7, func() {
		e.Spawn("w", func(p *Proc) {
			p.Sleep(5)
			done = p.Now()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 12 {
		t.Fatalf("spawned proc finished at %v, want 12", done)
	}
	st := e.Stats()
	if st.Callbacks != 1 || st.Procs != 1 {
		t.Fatalf("stats = %+v, want 1 callback and 1 proc", st)
	}
}

// TestCallbackFiresPrimitives checks that callbacks can release blocked
// processes through the non-blocking primitive surface.
func TestCallbackFiresPrimitives(t *testing.T) {
	e := NewEngine()
	l := NewLatch(e)
	c := NewChan(e, 1)
	var got interface{}
	e.Spawn("waiter", func(p *Proc) {
		l.Wait(p)
		got, _ = c.Recv(p)
	})
	e.After(9, func() {
		if !c.TrySend(42) {
			t.Error("TrySend failed on empty buffered chan")
		}
		l.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("received %v, want 42", got)
	}
}

// TestRunUntilWithCallbacks checks deadline stop/resume across the fast path.
func TestRunUntilWithCallbacks(t *testing.T) {
	e := NewEngine()
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < 10 {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	if err := e.RunUntil(35); err != nil {
		t.Fatal(err)
	}
	if fired != 3 || e.Now() != 35 {
		t.Fatalf("fired=%d now=%v at deadline", fired, e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 10 || e.Now() != 100 {
		t.Fatalf("fired=%d now=%v after resume", fired, e.Now())
	}
}

// TestDispatchPathsAgree holds the two dispatch paths of the bench workload
// to identical virtual-time results: the callback fast path is an
// optimization, not a semantic fork.
func TestDispatchPathsAgree(t *testing.T) {
	cfg := DispatchConfig{Chains: 32, PerChain: 200, Burst: 16, BurstRounds: 8}
	cb, err := RunDispatch(cfg, PathCallback)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RunDispatch(cfg, PathProc)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Fired != pr.Fired || cb.VirtualNS != pr.VirtualNS {
		t.Fatalf("paths disagree: callback fired=%d virtual=%d, proc fired=%d virtual=%d",
			cb.Fired, cb.VirtualNS, pr.Fired, pr.VirtualNS)
	}
	if want := cfg.Firings(); cb.Fired != want {
		t.Fatalf("fired = %d, want %d", cb.Fired, want)
	}
	if cb.Events <= 0 || pr.Events <= 0 || cb.EventsPerSec <= 0 || pr.EventsPerSec <= 0 {
		t.Fatalf("cost counters missing: cb=%+v proc=%+v", cb, pr)
	}
}

// TestProcReleaseAndIDRecycling verifies the finished-process free list: a
// long run of short-lived spawns keeps the live table small and reuses a
// compact ID range, while Stats still counts every spawn.
func TestProcReleaseAndIDRecycling(t *testing.T) {
	e := NewEngine()
	const waves, width = 50, 4
	maxID := 0
	e.Spawn("driver", func(p *Proc) {
		for w := 0; w < waves; w++ {
			wg := NewWaitGroup(e)
			for k := 0; k < width; k++ {
				wg.Add(1)
				q := e.Spawn(fmt.Sprintf("w%d-%d", w, k), func(q *Proc) {
					defer wg.Done()
					q.Sleep(1)
				})
				if q.ID() > maxID {
					maxID = q.ID()
				}
			}
			wg.Wait(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Procs != waves*width+1 {
		t.Fatalf("spawned = %d, want %d", st.Procs, waves*width+1)
	}
	if st.Live != 0 {
		t.Fatalf("live = %d after drain", st.Live)
	}
	// The driver plus one wave's workers coexist, so recycled IDs must stay
	// within a small constant range rather than growing with every spawn.
	if maxID > 2*width+1 {
		t.Fatalf("IDs grew to %d; free list not recycling (want <= %d)", maxID, 2*width+1)
	}
}

// TestDeadlockReportAfterRelease checks that releasing finished procs does
// not lose the blocked-proc names DeadlockError reports.
func TestDeadlockReportAfterRelease(t *testing.T) {
	e := NewEngine()
	l := NewLatch(e)
	e.Spawn("transient", func(p *Proc) { p.Sleep(5) })
	e.Spawn("stuck-b", func(p *Proc) { l.Wait(p) })
	e.Spawn("stuck-a", func(p *Proc) { p.Sleep(1); l.Wait(p) })
	err := e.Run()
	d, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(d.Blocked) != 2 || d.Blocked[0] != "stuck-a" || d.Blocked[1] != "stuck-b" {
		t.Fatalf("blocked = %v", d.Blocked)
	}
}

// TestScheduleZeroAlloc is the AllocsPerRun guard for the scheduling hot
// path: steady-state heap push/pop, same-instant batch dispatch, callback
// dispatch and process resumption must not allocate (tracing and metrics
// disabled — the same discipline the trace and obs layers are held to).
func TestScheduleZeroAlloc(t *testing.T) {
	e := NewEngine()
	// One long-lived proc (exercises schedule + resume), one self-renewing
	// callback chain (exercises the inline path), plus a same-instant burst
	// pair (exercises the ready ring) — all pre-warmed before measuring.
	stop := false
	e.Spawn("ticker", func(p *Proc) {
		for !stop {
			p.Sleep(3)
		}
	})
	var tick func()
	tick = func() {
		if !stop {
			e.After(2, tick)
			e.After(2, func() {})
		}
	}
	e.After(2, tick)
	// Warm: grow the heap, the ready ring and the proc table.
	if err := e.RunUntil(1000); err != nil {
		t.Fatal(err)
	}
	horizon := e.Now()
	allocs := testing.AllocsPerRun(200, func() {
		horizon += 60
		if err := e.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
	})
	stop = true
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The ticker's closure environment and the burst's anonymous func are
	// shared, not per-event; steady-state dispatch must be allocation-free.
	if allocs > 0 {
		t.Fatalf("steady-state dispatch allocates: %.1f allocs/run", allocs)
	}
}
