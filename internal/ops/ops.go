// Package ops is the live operations plane of the Northup reproduction:
// the layer that turns the obs registry's cumulative counters into a
// watchable, alertable view of a run while it is still in flight.
//
// Where package obs answers "how much, in total so far", ops answers the
// SRE questions: how fast is tenant X burning its error budget *right
// now*, what was its p99 over the last five minutes, which rule is firing
// and since when, and which nodes were hottest inside the burn window. It
// is built from three parts:
//
//   - Windowed aggregation (this file): a Plane owns a set of watches —
//     counters, gauges and histograms sampled at a fixed virtual-time step
//     into obs window rings — and publishes, at every step, the trailing
//     windowed value of each (rate deltas, window extremes, windowed
//     quantiles) both as gauges in its own registry (northup_window_*) and
//     as an append-only series for JSON export.
//
//   - A multiwindow burn-rate alert engine (alerts.go): declarative rules
//     (name, subject, threshold, fast/slow windows) evaluated at every
//     step, producing a deterministic fire/resolve timeline and
//     northup_alert_* metrics.
//
//   - Health attribution (attr.go): when a rule fires, a top-K query over
//     the trace event stream names the busiest lanes and span names inside
//     the burn window, reconciling bit-for-bit with trace.Summarize.
//
// Everything is evaluated in virtual time from the single simulation
// goroutine: the same scenario and seed produce byte-identical window
// series, alert timelines and health snapshots, which is what makes the
// plane's output testable and its alerts replayable. TREES-style epoch
// synchronization is the model: periodic global evaluation points that
// are part of the deterministic schedule, not wall-clock observers.
package ops

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultStep is the evaluation period when a Config leaves it zero.
const DefaultStep = sim.Second

// DefaultWidth is the rolling-window width when a Config leaves it zero.
const DefaultWidth = 10 * sim.Second

// Config sizes a Plane.
type Config struct {
	// Width is the default trailing-window width for watched series.
	Width sim.Time
	// Step is the evaluation period: watches are sampled and rules
	// evaluated at every multiple of Step (plus one final evaluation at
	// drain time).
	Step sim.Time
	// MaxWindow is the widest trailing window any rule will query; rings
	// retain this much history. Queries past the retained horizon clip to
	// the oldest sample. Defaults to Width.
	MaxWindow sim.Time
}

// watch is one windowed source: a cumulative counter read (delta
// semantics), a gauge read (max semantics), or a histogram quantile.
type watch struct {
	name  string // full metric name (family + labels), the series key
	gauge *obs.Gauge
	win   *obs.Window
	hwin  *obs.HistWindow
	read  func() float64
	mode  watchMode
	q     float64 // quantile for mode watchQuantile
	width sim.Time
}

type watchMode uint8

const (
	watchDelta    watchMode = iota // windowed change of a cumulative value
	watchMax                       // windowed max of a sampled value
	watchQuantile                  // windowed histogram quantile
	watchCount                     // windowed histogram observation count
)

// Plane is the live-operations evaluator: watches + rules + their outputs.
// It is driven from the simulation goroutine via Tick and needs no locking
// of its own; callers that expose it over HTTP serialize around the
// simulation (see internal/serve's live server).
type Plane struct {
	width, step sim.Time
	maxWindow   sim.Time // widest window any watch or rule needs
	reg         *obs.Registry

	watches []*watch
	hwins   map[*obs.Histogram]*obs.HistWindow // shared snapshot rings
	rules   []*ruleState

	series   map[string][]obs.SamplePoint
	order    []string // series registration order, for deterministic export
	events   []AlertEvent
	lastTick sim.Time
	ticks    int64

	evals *obs.Counter

	// OnFire, when non-nil, is invoked for every rule transition into the
	// firing state, before the event is appended — the attribution hook.
	// It may fill ev.Attribution; it must not re-enter the Plane.
	OnFire func(ev *AlertEvent)

	sealed bool
}

// NewPlane builds a plane with its own private registry for
// northup_window_* and northup_alert_* instruments.
func NewPlane(cfg Config) *Plane {
	if cfg.Step <= 0 {
		cfg.Step = DefaultStep
	}
	if cfg.Width <= 0 {
		cfg.Width = DefaultWidth
	}
	if cfg.Width < cfg.Step {
		cfg.Width = cfg.Step
	}
	if cfg.MaxWindow < cfg.Width {
		cfg.MaxWindow = cfg.Width
	}
	p := &Plane{
		width:     cfg.Width,
		step:      cfg.Step,
		maxWindow: cfg.MaxWindow,
		reg:       obs.NewRegistry(),
		hwins:     map[*obs.Histogram]*obs.HistWindow{},
		series:    map[string][]obs.SamplePoint{},
		lastTick:  -1,
	}
	p.evals = p.reg.Counter("northup_ops_evals_total", "window/rule evaluation passes run by the ops plane")
	return p
}

// Step returns the plane's evaluation period.
func (p *Plane) Step() sim.Time { return p.step }

// Width returns the plane's default window width.
func (p *Plane) Width() sim.Time { return p.width }

// Registry returns the plane's own registry (window gauges, alert metrics).
func (p *Plane) Registry() *obs.Registry { return p.reg }

// Handle is a windowed view over one watched source, usable by rule value
// functions to read the same rings the series are built from.
type Handle struct {
	p *Plane
	w *watch
}

// Over returns the watch's windowed value over the trailing width: the
// delta for counters, the max for gauges, the quantile or count for
// histograms.
func (h Handle) Over(width sim.Time) float64 {
	switch h.w.mode {
	case watchDelta:
		return h.w.win.DeltaOver(width)
	case watchMax:
		return h.w.win.MaxOver(width)
	case watchQuantile:
		return float64(h.w.hwin.Over(width).Quantile(h.w.q))
	case watchCount:
		return float64(h.w.hwin.Over(width).Count())
	}
	return 0
}

// WatchCounter registers a cumulative source; its windowed series is the
// delta over the plane width, and the handle answers DeltaOver queries.
// name/help/labels shape the northup_window_* gauge in the plane registry.
func (p *Plane) WatchCounter(name, help string, read func() float64, labels ...obs.Label) Handle {
	return p.addWatch(name, help, read, watchDelta, 0, nil, labels)
}

// WatchGauge registers an instantaneous source; its windowed series is the
// max over the plane width.
func (p *Plane) WatchGauge(name, help string, read func() float64, labels ...obs.Label) Handle {
	return p.addWatch(name, help, read, watchMax, 0, nil, labels)
}

// WatchQuantile registers a windowed quantile of a fixed-bucket histogram.
// Multiple quantiles of one histogram share a single snapshot ring.
func (p *Plane) WatchQuantile(name, help string, h *obs.Histogram, q float64, labels ...obs.Label) Handle {
	return p.addWatch(name, help, nil, watchQuantile, q, h, labels)
}

// WatchHistCount registers the windowed observation count of a histogram.
func (p *Plane) WatchHistCount(name, help string, h *obs.Histogram, labels ...obs.Label) Handle {
	return p.addWatch(name, help, nil, watchCount, 0, h, labels)
}

func (p *Plane) addWatch(name, help string, read func() float64, mode watchMode, q float64, h *obs.Histogram, labels []obs.Label) Handle {
	if p.sealed {
		panic("ops: watches and rules must be added before the first Tick")
	}
	w := &watch{
		gauge: p.reg.Gauge(name, help, labels...),
		read:  read,
		mode:  mode,
		q:     q,
		width: p.width,
	}
	w.name = fullName(name, labels)
	if _, dup := p.series[w.name]; dup {
		panic(fmt.Sprintf("ops: duplicate watch %q", w.name))
	}
	if h != nil {
		hw := p.hwins[h]
		if hw == nil {
			hw = obs.NewHistWindow(h, p.ringWidth(), p.step)
			p.hwins[h] = hw
		}
		w.hwin = hw
	} else {
		w.win = obs.NewWindow(p.ringWidth(), p.step)
	}
	p.watches = append(p.watches, w)
	p.series[w.name] = nil
	p.order = append(p.order, w.name)
	return Handle{p: p, w: w}
}

// ringWidth is the retention every ring is sized for: the widest window
// any watch or rule will query (Config.MaxWindow).
func (p *Plane) ringWidth() sim.Time { return p.maxWindow }

// fullName renders family+labels exactly like the obs registry keys its
// instruments, so plane series names match the registry's gauge names.
func fullName(name string, labels []obs.Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]obs.Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	out := name + "{"
	for i, l := range ls {
		if i > 0 {
			out += ","
		}
		out += l.Name + `="` + l.Value + `"`
	}
	return out + "}"
}

// Tick runs one evaluation pass at virtual instant now: sample every
// watch, publish windowed values (gauge + series point), then evaluate
// every rule. Repeated calls at one instant collapse to the first; the
// caller drives Tick from step-aligned callbacks plus one final call at
// drain time.
func (p *Plane) Tick(now sim.Time) {
	if now == p.lastTick {
		return
	}
	p.sealed = true
	p.lastTick = now
	p.ticks++
	p.evals.Inc()

	recorded := map[*obs.HistWindow]bool{}
	for _, w := range p.watches {
		if w.hwin != nil {
			if !recorded[w.hwin] {
				w.hwin.Record(now)
				recorded[w.hwin] = true
			}
		} else {
			w.win.Record(now, w.read())
		}
	}
	for _, w := range p.watches {
		v := (Handle{p: p, w: w}).Over(w.width)
		w.gauge.Set(v)
		p.series[w.name] = append(p.series[w.name], obs.SamplePoint{T: now, V: v})
	}
	p.evalRules(now)
}

// Ticks returns how many evaluation passes have run.
func (p *Plane) Ticks() int64 { return p.ticks }

// Series returns every windowed series in watch-registration order —
// deterministic, like everything else the plane emits.
func (p *Plane) Series() []obs.Series {
	out := make([]obs.Series, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, obs.Series{Name: name,
			Points: append([]obs.SamplePoint(nil), p.series[name]...)})
	}
	return out
}
