package ops

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Health attribution: when a rule fires, name what was hot inside the burn
// window. The query is a thin composition of the trace layer's windowed
// per-node metrics (trace.Summarize clipped to [start, end]) — attribution
// numbers are therefore the trace numbers, bit for bit, which the
// reconciliation test in internal/serve holds them to. This is the
// DaPPA-style step past tenant aggregates: a burning SLO is pinned to the
// nodes and kernels that consumed the window.

// HotLane is one (node, track) lane ranked by busy time in a burn window.
type HotLane struct {
	Node   int    `json:"node"`
	Track  string `json:"track"`
	Spans  int    `json:"spans"`
	BusyNS int64  `json:"busy_ns"`
	Bytes  int64  `json:"bytes,omitempty"`
}

// HotName is one span name (a kernel, a move, a task stage) ranked by
// window-clipped duration.
type HotName struct {
	Name   string `json:"name"`
	Node   int    `json:"node"`
	Spans  int    `json:"spans"`
	BusyNS int64  `json:"busy_ns"`
}

// Attribution is the top-K health report attached to a firing alert.
type Attribution struct {
	// StartNS/EndNS delimit the analysed burn window in virtual time.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Events is how many trace events fell inside the window's analysis.
	Events int `json:"events"`
	// Lanes are the top-K lanes by interval-union busy time.
	Lanes []HotLane `json:"lanes,omitempty"`
	// Names are the top-K span names by summed clipped duration.
	Names []HotName `json:"names,omitempty"`
}

// Attribute builds the top-K report for a burn window from a trace event
// stream. k bounds both lists; events outside [start, end) contribute only
// their overlap. A nil/empty stream yields an empty report (the recorder
// may have dropped the window's events, or tracing may be off).
func Attribute(events []trace.Event, start, end sim.Time, k int) *Attribution {
	if k <= 0 {
		k = 3
	}
	sum := trace.Summarize(events, trace.SummaryOptions{Start: start, End: end})
	a := &Attribution{StartNS: int64(start), EndNS: int64(end), Events: sum.Events}
	for _, lm := range sum.TopLanes(k) {
		a.Lanes = append(a.Lanes, HotLane{
			Node:   lm.Lane.Node,
			Track:  lm.Lane.Track,
			Spans:  lm.Spans,
			BusyNS: int64(lm.Busy),
			Bytes:  lm.Bytes,
		})
	}
	for _, na := range trace.TopNames(events, start, end, k) {
		a.Names = append(a.Names, HotName{
			Name:   na.Name,
			Node:   na.Node,
			Spans:  na.Spans,
			BusyNS: int64(na.Busy),
		})
	}
	return a
}
