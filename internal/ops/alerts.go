package ops

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the SLO burn-rate alert engine: declarative rules evaluated
// at every plane tick, in virtual time, producing a deterministic
// fire/resolve timeline.
//
// Rules follow the multiwindow burn-rate pattern: a rule names a value
// function (typically an error-budget burn rate) and two trailing windows,
// fast and slow. It fires only when the value exceeds the threshold over
// BOTH windows — the fast window makes the alert responsive, the slow
// window keeps a brief blip from paging — and resolves as soon as either
// window drops back under the threshold. Fire and resolve instants land on
// plane ticks, so the timeline is exactly reproducible for a given
// scenario and seed.

// Severity levels a rule may declare. Free-form strings are accepted by
// the engine; these are the conventional ones the serve DSL validates.
const (
	SeverityPage   = "page"
	SeverityTicket = "ticket"
	SeverityWarn   = "warn"
)

// Rule is one declarative alert: fire when Value exceeds Threshold over
// both the fast and the slow trailing window.
type Rule struct {
	// Name identifies the rule in the timeline and metrics.
	Name string
	// Subject labels what the rule watches (a tenant name in serve).
	Subject string
	// Severity is the operator-facing urgency (page/ticket/warn).
	Severity string
	// Threshold is the firing level for Value over both windows.
	Threshold float64
	// Fast and Slow are the two trailing windows. Fast <= Slow.
	Fast, Slow sim.Time
	// Value returns the rule's metric over the trailing width at the
	// current tick — e.g. an error-budget burn rate assembled from watch
	// handles. It must be deterministic and side-effect free.
	Value func(width sim.Time) float64
}

// ruleState is a rule plus its live alerting state and metric handles.
type ruleState struct {
	Rule
	firing      bool
	firingG     *obs.Gauge
	fired       *obs.Counter
	resolved    *obs.Counter
	activeSince sim.Time
}

// AlertState names the two timeline transitions.
const (
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// AlertEvent is one transition of one rule: the deterministic unit of the
// alert timeline.
type AlertEvent struct {
	// Rule and Subject identify the transitioned rule instance.
	Rule    string `json:"rule"`
	Subject string `json:"subject,omitempty"`
	// Severity echoes the rule's severity.
	Severity string `json:"severity"`
	// State is "firing" or "resolved".
	State string `json:"state"`
	// TNS is the transition instant in virtual nanoseconds.
	TNS int64 `json:"t_ns"`
	// Fast and Slow are the rule value over each window at the transition.
	Fast float64 `json:"fast"`
	Slow float64 `json:"slow"`
	// Attribution, on firing transitions, names the hottest lanes and
	// span names inside the fast burn window (nil when no trace recorder
	// is attached).
	Attribution *Attribution `json:"attribution,omitempty"`
	// Exemplars, on firing transitions, names the subject's worst-offender
	// jobs (per-job trace IDs with their latencies), so a page carries the
	// exact jobs to walk with `northup-trace -job`. Empty unless the serve
	// journey layer is enabled.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Exemplar ties a firing alert to one worst-offender job.
type Exemplar struct {
	TraceID string `json:"trace_id"`
	ValueNS int64  `json:"value_ns"`
}

// AddRule registers a rule. Rules are evaluated in registration order at
// every tick, after the watches refresh.
func (p *Plane) AddRule(r Rule) error {
	if p.sealed {
		panic("ops: rules must be added before the first Tick")
	}
	if r.Name == "" {
		return fmt.Errorf("ops: rule has no name")
	}
	if r.Value == nil {
		return fmt.Errorf("ops: rule %q has no value function", r.Name)
	}
	if r.Fast <= 0 || r.Slow <= 0 {
		return fmt.Errorf("ops: rule %q windows must be positive", r.Name)
	}
	if r.Fast > r.Slow {
		return fmt.Errorf("ops: rule %q fast window %v exceeds slow window %v", r.Name, r.Fast, r.Slow)
	}
	if r.Severity == "" {
		r.Severity = SeverityPage
	}
	for _, s := range p.rules {
		if s.Name == r.Name && s.Subject == r.Subject {
			return fmt.Errorf("ops: duplicate rule %q for subject %q", r.Name, r.Subject)
		}
	}
	lbls := []obs.Label{obs.L("rule", r.Name)}
	if r.Subject != "" {
		lbls = append(lbls, obs.L("subject", r.Subject))
	}
	s := &ruleState{Rule: r}
	s.firingG = p.reg.Gauge("northup_alert_firing", "1 while the rule's burn condition holds", lbls...)
	s.fired = p.reg.Counter("northup_alert_transitions_total", "alert state transitions",
		append(append([]obs.Label(nil), lbls...), obs.L("state", StateFiring))...)
	s.resolved = p.reg.Counter("northup_alert_transitions_total", "alert state transitions",
		append(append([]obs.Label(nil), lbls...), obs.L("state", StateResolved))...)
	p.rules = append(p.rules, s)
	return nil
}

// evalRules runs every rule against the freshly recorded windows.
func (p *Plane) evalRules(now sim.Time) {
	for _, s := range p.rules {
		fast := s.Value(s.Fast)
		slow := s.Value(s.Slow)
		burning := fast > s.Threshold && slow > s.Threshold
		if burning == s.firing {
			continue
		}
		s.firing = burning
		ev := AlertEvent{
			Rule:     s.Name,
			Subject:  s.Subject,
			Severity: s.Severity,
			TNS:      int64(now),
			Fast:     fast,
			Slow:     slow,
		}
		if burning {
			ev.State = StateFiring
			s.activeSince = now
			s.fired.Inc()
			s.firingG.Set(1)
			if p.OnFire != nil {
				p.OnFire(&ev)
			}
		} else {
			ev.State = StateResolved
			s.resolved.Inc()
			s.firingG.Set(0)
		}
		p.events = append(p.events, ev)
	}
}

// Events returns the alert timeline so far, in transition order.
func (p *Plane) Events() []AlertEvent { return p.events }

// FiringAlert is one currently-active alert in a health snapshot.
type FiringAlert struct {
	Rule     string `json:"rule"`
	Subject  string `json:"subject,omitempty"`
	Severity string `json:"severity"`
	SinceNS  int64  `json:"since_ns"`
}

// Firing returns the currently-active alerts in rule registration order.
func (p *Plane) Firing() []FiringAlert {
	var out []FiringAlert
	for _, s := range p.rules {
		if s.firing {
			out = append(out, FiringAlert{Rule: s.Name, Subject: s.Subject,
				Severity: s.Severity, SinceNS: int64(s.activeSince)})
		}
	}
	return out
}

// FiringFor returns the active alerts whose subject matches.
func (p *Plane) FiringFor(subject string) []FiringAlert {
	var out []FiringAlert
	for _, a := range p.Firing() {
		if a.Subject == subject {
			out = append(out, a)
		}
	}
	return out
}
