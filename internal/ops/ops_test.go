package ops

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestWatchModes drives one plane tick per virtual second and checks that
// each watch mode publishes the expected windowed value, both through its
// handle and in the exported series.
func TestWatchModes(t *testing.T) {
	p := NewPlane(Config{Step: sim.Second, Width: 2 * sim.Second})
	reg := obs.NewRegistry()

	var total float64
	var depth float64
	hist := reg.Histogram("lat_ns", "latency", []int64{10, 100, 1000})

	hc := p.WatchCounter("northup_window_errs", "windowed errors", func() float64 { return total })
	hg := p.WatchGauge("northup_window_depth", "windowed depth", func() float64 { return depth })
	hq := p.WatchQuantile("northup_window_p50_ns", "windowed p50", hist, 0.50)
	hn := p.WatchHistCount("northup_window_lat_count", "windowed observations", hist)

	// t=0: empty baseline.
	p.Tick(0)
	// t=1s: +5 errors, depth spikes to 9, two fast observations.
	total, depth = 5, 9
	hist.Observe(5)
	hist.Observe(5)
	p.Tick(1 * sim.Second)
	// t=2s: +1 error, depth settles, one slow observation.
	total, depth = 6, 2
	hist.Observe(500)
	p.Tick(2 * sim.Second)

	if got := hc.Over(2 * sim.Second); got != 6 {
		t.Errorf("counter delta over 2s = %v, want 6", got)
	}
	if got := hc.Over(1 * sim.Second); got != 1 {
		t.Errorf("counter delta over 1s = %v, want 1", got)
	}
	if got := hg.Over(2 * sim.Second); got != 9 {
		t.Errorf("gauge max over 2s = %v, want 9", got)
	}
	if got := hn.Over(1 * sim.Second); got != 1 {
		t.Errorf("hist count over 1s = %v, want 1", got)
	}
	if got := hn.Over(2 * sim.Second); got != 3 {
		t.Errorf("hist count over 2s = %v, want 3", got)
	}
	// Trailing 1s holds only the 500ns observation; p50 clamps to the
	// histogram's lifetime max.
	if got := hq.Over(1 * sim.Second); got != 500 {
		t.Errorf("p50 over 1s = %v, want 500", got)
	}

	// The registry gauges and the series mirror the handles at plane width.
	flat := p.Registry().Flatten()
	if got := flat["northup_window_errs"]; got != 6 {
		t.Errorf("window gauge = %v, want 6", got)
	}
	series := p.Series()
	if len(series) != 4 {
		t.Fatalf("got %d series, want 4", len(series))
	}
	if series[0].Name != "northup_window_errs" {
		t.Fatalf("series[0] = %q, want registration order", series[0].Name)
	}
	pts := series[0].Points
	if len(pts) != 3 || pts[2].V != 6 {
		t.Fatalf("errs series = %+v, want 3 points ending at 6", pts)
	}
}

// TestTickDedupesAndSeals checks that repeated ticks at one instant
// collapse, and that registration after the first tick panics.
func TestTickDedupesAndSeals(t *testing.T) {
	p := NewPlane(Config{})
	p.WatchCounter("northup_window_x", "x", func() float64 { return 0 })
	p.Tick(0)
	p.Tick(0) // duplicate: final drain tick may land on a step boundary
	if got := p.Ticks(); got != 1 {
		t.Fatalf("Ticks = %d, want 1 after deduped pair", got)
	}
	if got := len(p.Series()[0].Points); got != 1 {
		t.Fatalf("series has %d points, want 1", got)
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s after first Tick did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("WatchCounter", func() {
		p.WatchCounter("northup_window_y", "y", func() float64 { return 0 })
	})
	mustPanic("AddRule", func() {
		p.AddRule(Rule{Name: "r", Fast: sim.Second, Slow: sim.Second,
			Value: func(sim.Time) float64 { return 0 }})
	})
}

// TestDuplicateWatchPanics checks the series-name collision guard.
func TestDuplicateWatchPanics(t *testing.T) {
	p := NewPlane(Config{})
	p.WatchCounter("northup_window_x", "x", func() float64 { return 0 }, obs.L("tenant", "a"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate watch did not panic")
		}
	}()
	p.WatchCounter("northup_window_x", "x", func() float64 { return 0 }, obs.L("tenant", "a"))
}

// TestAddRuleValidation walks the rule-rejection paths.
func TestAddRuleValidation(t *testing.T) {
	p := NewPlane(Config{})
	v := func(sim.Time) float64 { return 0 }
	ok := Rule{Name: "r", Subject: "t", Fast: sim.Second, Slow: 2 * sim.Second, Value: v}
	if err := p.AddRule(ok); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	for name, r := range map[string]Rule{
		"no name":          {Subject: "t", Fast: sim.Second, Slow: sim.Second, Value: v},
		"no value":         {Name: "r2", Fast: sim.Second, Slow: sim.Second},
		"zero fast window": {Name: "r3", Fast: 0, Slow: sim.Second, Value: v},
		"fast > slow":      {Name: "r4", Fast: 2 * sim.Second, Slow: sim.Second, Value: v},
		"duplicate":        ok,
	} {
		if err := p.AddRule(r); err == nil {
			t.Errorf("%s: rule accepted, want error", name)
		}
	}
	// Same name under a different subject is a distinct rule instance.
	dup := ok
	dup.Subject = "u"
	if err := p.AddRule(dup); err != nil {
		t.Fatalf("same rule name for another subject rejected: %v", err)
	}
}

// driveBurn runs a fixed multiwindow burn scenario against a fresh plane
// and returns it: a cumulative error counter jumps at t=4s, holds through
// t=6s, and goes quiet, so a (fast 2s, slow 4s) rule fires once and
// resolves once at deterministic instants.
func driveBurn(t *testing.T, onFire func(*AlertEvent)) *Plane {
	t.Helper()
	p := NewPlane(Config{Step: sim.Second, Width: 2 * sim.Second, MaxWindow: 4 * sim.Second})
	var total float64
	h := p.WatchCounter("northup_window_errs", "windowed errors",
		func() float64 { return total }, obs.L("tenant", "bursty"))
	err := p.AddRule(Rule{
		Name: "err-burn", Subject: "bursty", Severity: SeverityTicket,
		Threshold: 0.5, Fast: 2 * sim.Second, Slow: 4 * sim.Second,
		Value: func(w sim.Time) float64 { return h.Over(w) },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.OnFire = onFire
	for i := 0; i <= 8; i++ {
		switch i {
		case 4:
			total += 3
		case 5:
			total += 3
		}
		p.Tick(sim.Time(i) * sim.Second)
	}
	return p
}

// TestMultiwindowFireResolve checks the burn-rate state machine: the rule
// fires only when the value clears the threshold over BOTH windows, and
// resolves as soon as the fast window drops back under.
func TestMultiwindowFireResolve(t *testing.T) {
	p := driveBurn(t, nil)

	evs := p.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d alert events, want 2: %+v", len(evs), evs)
	}
	fire, res := evs[0], evs[1]
	if fire.State != StateFiring || fire.TNS != int64(4*sim.Second) {
		t.Fatalf("fire event = %+v, want firing at t=4s", fire)
	}
	if fire.Rule != "err-burn" || fire.Subject != "bursty" || fire.Severity != SeverityTicket {
		t.Fatalf("fire identity = %+v", fire)
	}
	if fire.Fast != 3 || fire.Slow != 3 {
		t.Fatalf("fire values fast=%v slow=%v, want 3/3", fire.Fast, fire.Slow)
	}
	// Fast window (2s) empties two steps after the last jump at t=5s.
	if res.State != StateResolved || res.TNS != int64(7*sim.Second) {
		t.Fatalf("resolve event = %+v, want resolved at t=7s", res)
	}

	if got := p.Firing(); len(got) != 0 {
		t.Fatalf("Firing after resolve = %+v, want none", got)
	}
	flat := p.Registry().Flatten()
	if got := flat[`northup_alert_firing{rule="err-burn",subject="bursty"}`]; got != 0 {
		t.Errorf("firing gauge = %v, want 0", got)
	}
	if got := flat[`northup_alert_transitions_total{rule="err-burn",state="firing",subject="bursty"}`]; got != 1 {
		t.Errorf("firing transitions = %v, want 1", got)
	}
	if got := flat[`northup_alert_transitions_total{rule="err-burn",state="resolved",subject="bursty"}`]; got != 1 {
		t.Errorf("resolved transitions = %v, want 1", got)
	}
}

// TestFiringSnapshotMidBurn re-drives the burn partway and checks the
// active-alert view while the rule holds.
func TestFiringSnapshotMidBurn(t *testing.T) {
	p := NewPlane(Config{Step: sim.Second, Width: 2 * sim.Second, MaxWindow: 4 * sim.Second})
	var total float64
	h := p.WatchCounter("northup_window_errs", "windowed errors", func() float64 { return total })
	if err := p.AddRule(Rule{Name: "err-burn", Subject: "bursty", Threshold: 0.5,
		Fast: 2 * sim.Second, Slow: 4 * sim.Second,
		Value: func(w sim.Time) float64 { return h.Over(w) }}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 5; i++ {
		if i >= 4 {
			total += 3
		}
		p.Tick(sim.Time(i) * sim.Second)
	}
	firing := p.Firing()
	if len(firing) != 1 || firing[0].SinceNS != int64(4*sim.Second) {
		t.Fatalf("Firing = %+v, want err-burn since t=4s", firing)
	}
	if got := p.FiringFor("bursty"); len(got) != 1 {
		t.Fatalf("FiringFor(bursty) = %+v, want 1 alert", got)
	}
	if got := p.FiringFor("steady"); len(got) != 0 {
		t.Fatalf("FiringFor(steady) = %+v, want none", got)
	}
}

// TestOnFireAttribution checks the hook runs on firing transitions only and
// that what it attaches lands in the timeline.
func TestOnFireAttribution(t *testing.T) {
	calls := 0
	p := driveBurn(t, func(ev *AlertEvent) {
		calls++
		ev.Attribution = &Attribution{StartNS: ev.TNS - int64(2*sim.Second), EndNS: ev.TNS}
	})
	if calls != 1 {
		t.Fatalf("OnFire ran %d times, want 1 (firing transitions only)", calls)
	}
	evs := p.Events()
	if evs[0].Attribution == nil || evs[0].Attribution.EndNS != evs[0].TNS {
		t.Fatalf("fire attribution = %+v", evs[0].Attribution)
	}
	if evs[1].Attribution != nil {
		t.Fatalf("resolve event carries attribution: %+v", evs[1])
	}
}

// TestPlaneDeterminism drives the same scenario twice and asserts the
// series, timeline and registry export are byte-identical.
func TestPlaneDeterminism(t *testing.T) {
	render := func() (string, string, string) {
		p := driveBurn(t, nil)
		series, err := json.Marshal(p.Series())
		if err != nil {
			t.Fatal(err)
		}
		events, err := json.Marshal(p.Events())
		if err != nil {
			t.Fatal(err)
		}
		var reg bytes.Buffer
		if err := p.Registry().WritePrometheus(&reg); err != nil {
			t.Fatal(err)
		}
		return string(series), string(events), reg.String()
	}
	s1, e1, r1 := render()
	s2, e2, r2 := render()
	if s1 != s2 {
		t.Errorf("window series differ:\n%s\n%s", s1, s2)
	}
	if e1 != e2 {
		t.Errorf("alert timelines differ:\n%s\n%s", e1, e2)
	}
	if r1 != r2 {
		t.Errorf("registry exports differ:\n%s\n%s", r1, r2)
	}
}
