package alloc

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/sim"
)

func newAlloc(capacity int64) *Allocator {
	e := sim.NewEngine()
	return New(device.New(e, device.DRAMProfile(capacity)))
}

func TestAllocFreeReuse(t *testing.T) {
	a := newAlloc(1 << 20)
	x, err := a.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if x.Size != roundUp(1000) || x.Off%Align != 0 {
		t.Fatalf("extent = %+v", x)
	}
	y, err := a.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if y.Off < x.End() {
		t.Fatalf("y %+v overlaps x %+v", y, x)
	}
	a.Free(x)
	z, err := a.Alloc(500)
	if err != nil {
		t.Fatal(err)
	}
	if z.Off != x.Off {
		t.Fatalf("freed space not reused first-fit: z=%+v", z)
	}
	if a.LiveCount() != 2 {
		t.Fatalf("live = %d", a.LiveCount())
	}
}

func TestExhaustion(t *testing.T) {
	a := newAlloc(4096)
	if _, err := a.Alloc(4096); err != nil {
		t.Fatal(err)
	}
	_, err := a.Alloc(64)
	var ce *device.ErrCapacity
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v", err)
	}
}

func TestFragmentationReported(t *testing.T) {
	a := newAlloc(64 * 10)
	var xs []Extent
	for i := 0; i < 10; i++ {
		x, err := a.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, x)
	}
	// Free every other extent: 5*64 free but max contiguous 64.
	for i := 0; i < 10; i += 2 {
		a.Free(xs[i])
	}
	_, err := a.Alloc(128)
	if err == nil {
		t.Fatal("fragmented alloc succeeded")
	}
	var ce *device.ErrCapacity
	if errors.As(err, &ce) {
		t.Fatalf("expected fragmentation error, got capacity error: %v", err)
	}
}

func TestCoalescing(t *testing.T) {
	a := newAlloc(1 << 16)
	x, _ := a.Alloc(64)
	y, _ := a.Alloc(64)
	z, _ := a.Alloc(64)
	a.Free(x)
	a.Free(z)
	if a.FreeExtents() != 3 { // [x] [z..rest] are separate; plus trailing
		t.Logf("free extents = %d", a.FreeExtents())
	}
	a.Free(y) // bridges x and z+rest into one extent
	if a.FreeExtents() != 1 {
		t.Fatalf("free extents after full free = %d, want 1", a.FreeExtents())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	big, err := a.Alloc(1 << 16 / Align * Align)
	if err != nil {
		t.Fatalf("full-range alloc after coalesce failed: %v", err)
	}
	_ = big
}

func TestDoubleFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := newAlloc(4096)
	x, _ := a.Alloc(64)
	a.Free(x)
	a.Free(x)
}

func TestZeroAllocRejected(t *testing.T) {
	a := newAlloc(4096)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("zero alloc succeeded")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Fatal("negative alloc succeeded")
	}
}

func TestDeviceAccountingTracksAllocator(t *testing.T) {
	e := sim.NewEngine()
	dev := device.New(e, device.DRAMProfile(1<<20))
	a := New(dev)
	x, _ := a.Alloc(1000)
	if dev.Used() != x.Size {
		t.Fatalf("device used %d, extent %d", dev.Used(), x.Size)
	}
	a.Free(x)
	if dev.Used() != 0 {
		t.Fatalf("device used %d after free", dev.Used())
	}
}

// TestRandomWorkloadInvariants drives the allocator with arbitrary
// alloc/free sequences and checks invariants throughout.
func TestRandomWorkloadInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		a := newAlloc(1 << 16)
		var livePool []Extent
		for _, op := range ops {
			if op%3 == 0 && len(livePool) > 0 {
				// Free a pseudo-random live extent.
				i := int(op/3) % len(livePool)
				a.Free(livePool[i])
				livePool = append(livePool[:i], livePool[i+1:]...)
			} else {
				size := int64(op%2048) + 1
				if x, err := a.Alloc(size); err == nil {
					livePool = append(livePool, x)
				}
			}
			if err := a.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		// Free everything: the allocator must return to one maximal extent.
		for _, x := range livePool {
			a.Free(x)
		}
		return a.FreeExtents() == 1 && a.LiveCount() == 0 &&
			a.FreeBytes() == (1<<16)/Align*Align
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
