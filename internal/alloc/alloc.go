// Package alloc implements the per-node space allocator behind Northup's
// unified alloc()/release() interface (paper Table I).
//
// Every memory or storage node of the tree owns one Allocator managing its
// byte range [0, capacity). Buffers receive extents (offset + size) within
// that range; offsets matter because the mechanical-drive seek model and the
// paper's blocking-size decisions ("by examining the capacity and usage, a
// program can decide the blocking size", §III-B) both read them.
//
// The allocator is a first-fit free list with coalescing on free — simple,
// deterministic, and O(extents), which is plenty for coarse-grained chunk
// buffers.
package alloc

import (
	"fmt"
	"sort"

	"repro/internal/device"
)

// Align is the allocation granularity: extents start and end on 64-byte
// boundaries, matching typical DMA alignment requirements.
const Align = 64

// Extent is an allocated byte range on a node's device.
type Extent struct {
	Off  int64
	Size int64 // rounded up to Align
}

// End returns the first byte past the extent.
func (x Extent) End() int64 { return x.Off + x.Size }

// Allocator manages the address range of one device.
type Allocator struct {
	dev  *device.Device
	free []Extent        // sorted by Off, coalesced, non-overlapping
	live map[int64]int64 // offset -> size of live allocations (for checking)
}

// New creates an allocator covering the device's full capacity.
func New(dev *device.Device) *Allocator {
	return &Allocator{
		dev:  dev,
		free: []Extent{{Off: 0, Size: dev.Capacity() / Align * Align}},
		live: make(map[int64]int64),
	}
}

// Device returns the device this allocator manages.
func (a *Allocator) Device() *device.Device { return a.dev }

func roundUp(n int64) int64 { return (n + Align - 1) / Align * Align }

// Alloc reserves size bytes (rounded up to Align) and returns the extent.
// It fails with the device's *device.ErrCapacity when space is exhausted,
// or an error mentioning fragmentation when total free space would suffice
// but no single extent does.
func (a *Allocator) Alloc(size int64) (Extent, error) {
	if size <= 0 {
		return Extent{}, fmt.Errorf("alloc: non-positive size %d", size)
	}
	need := roundUp(size)
	for i, f := range a.free {
		if f.Size >= need {
			if err := a.dev.Reserve(need); err != nil {
				return Extent{}, err
			}
			x := Extent{Off: f.Off, Size: need}
			if f.Size == need {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = Extent{Off: f.Off + need, Size: f.Size - need}
			}
			a.live[x.Off] = x.Size
			return x, nil
		}
	}
	totalFree := int64(0)
	for _, f := range a.free {
		totalFree += f.Size
	}
	if totalFree >= need {
		return Extent{}, fmt.Errorf("alloc: %s: %d bytes requested, %d free but fragmented across %d extents",
			a.dev.Name(), need, totalFree, len(a.free))
	}
	return Extent{}, &device.ErrCapacity{Device: a.dev.Name(), Need: need,
		Free: totalFree, Capacity: a.dev.Capacity()}
}

// Free returns an extent to the pool, coalescing with neighbours. Freeing
// an extent that was not allocated (or double-freeing) panics: that is
// always a runtime bug.
func (a *Allocator) Free(x Extent) {
	size, ok := a.live[x.Off]
	if !ok || size != x.Size {
		panic(fmt.Sprintf("alloc: %s: freeing unallocated extent {%d,%d}",
			a.dev.Name(), x.Off, x.Size))
	}
	delete(a.live, x.Off)
	a.dev.Unreserve(x.Size)

	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].Off > x.Off })
	a.free = append(a.free, Extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = x
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].End() == a.free[i+1].Off {
		a.free[i].Size += a.free[i+1].Size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].End() == a.free[i].Off {
		a.free[i-1].Size += a.free[i].Size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// LiveCount returns the number of outstanding allocations.
func (a *Allocator) LiveCount() int { return len(a.live) }

// FreeExtents returns the number of extents on the free list (a
// fragmentation indicator).
func (a *Allocator) FreeExtents() int { return len(a.free) }

// FreeBytes returns the total allocatable bytes remaining.
func (a *Allocator) FreeBytes() int64 {
	var total int64
	for _, f := range a.free {
		total += f.Size
	}
	return total
}

// CheckInvariants verifies internal consistency: the free list is sorted,
// coalesced and in range, and free extents overlap no live allocation.
// It is exported for property-based tests.
func (a *Allocator) CheckInvariants() error {
	limit := a.dev.Capacity()
	for i, f := range a.free {
		if f.Off < 0 || f.End() > limit || f.Size <= 0 {
			return fmt.Errorf("free extent %d out of range: %+v", i, f)
		}
		if i > 0 {
			prev := a.free[i-1]
			if prev.End() > f.Off {
				return fmt.Errorf("free extents %d,%d overlap", i-1, i)
			}
			if prev.End() == f.Off {
				return fmt.Errorf("free extents %d,%d not coalesced", i-1, i)
			}
		}
		for off, size := range a.live {
			if f.Off < off+size && off < f.End() {
				return fmt.Errorf("free extent %+v overlaps live {%d,%d}", f, off, size)
			}
		}
	}
	for off, size := range a.live {
		for off2, size2 := range a.live {
			if off != off2 && off < off2+size2 && off2 < off+size {
				return fmt.Errorf("live allocations overlap: {%d,%d} and {%d,%d}",
					off, size, off2, size2)
			}
		}
	}
	return nil
}
