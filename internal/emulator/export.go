package emulator

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/sim"
)

// I/O-trace persistence: a recorded run's accesses serialize to JSON lines,
// so projections (and offline analysis) can run long after the simulation —
// the workflow the paper's emulator implies (record once, sweep many
// bandwidth hypotheses).

// jsonRecord is the serialized form of one access.
type jsonRecord struct {
	Device string `json:"device"`
	Op     string `json:"op"`
	Bytes  int64  `json:"bytes"`
	Seek   bool   `json:"seek,omitempty"`
	TimeNS int64  `json:"time_ns"`
}

// WriteJSON streams the trace as one JSON object per line.
func (t *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range t.records {
		jr := jsonRecord{
			Device: r.Device, Op: r.Op.String(), Bytes: r.Bytes,
			Seek: r.Seek, TimeNS: int64(r.Time),
		}
		if err := enc.Encode(&jr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON reconstructs a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	t := &Trace{}
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var jr jsonRecord
		if err := dec.Decode(&jr); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("emulator: decoding trace: %w", err)
		}
		op := device.Read
		switch jr.Op {
		case "read":
		case "write":
			op = device.Write
		default:
			return nil, fmt.Errorf("emulator: unknown op %q", jr.Op)
		}
		if jr.Bytes < 0 || jr.TimeNS < 0 {
			return nil, fmt.Errorf("emulator: negative record %+v", jr)
		}
		t.Record(device.IORecord{Device: jr.Device, Op: op, Bytes: jr.Bytes,
			Seek: jr.Seek, Time: sim.Time(jr.TimeNS)})
	}
	return t, nil
}
