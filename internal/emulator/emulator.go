// Package emulator implements the paper's faster-storage projection
// (§V-D): "an emulator capable of performing a first-order projection by
// keeping track of reads/writes issued by application I/Os and considering
// read/write bandwidths of the storage. We also include the I/O time into
// the overall runtime (the other components being constant)."
//
// A Trace records every storage access of a measured run (via the device
// recorder hook); Project replays the byte counts under a different
// bandwidth assumption and rebuilds the total runtime as
// total - oldIOTime + newIOTime.
package emulator

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/sim"
)

// Trace accumulates the I/O activity of one measured run.
type Trace struct {
	records []device.IORecord

	readBytes, writeBytes int64
	readTime, writeTime   sim.Time
}

// Attach registers the trace as dev's recorder and returns a detach func.
func (t *Trace) Attach(dev *device.Device) func() {
	dev.SetRecorder(t.Record)
	return func() { dev.SetRecorder(nil) }
}

// Record adds one I/O record (the device.Device recorder signature).
func (t *Trace) Record(r device.IORecord) {
	t.records = append(t.records, r)
	if r.Op == device.Read {
		t.readBytes += r.Bytes
		t.readTime += r.Time
	} else {
		t.writeBytes += r.Bytes
		t.writeTime += r.Time
	}
}

// Len returns the number of recorded accesses.
func (t *Trace) Len() int { return len(t.records) }

// Bytes returns total bytes moved per direction.
func (t *Trace) Bytes() (read, write int64) { return t.readBytes, t.writeBytes }

// IOTime returns the recorded I/O service time per direction.
func (t *Trace) IOTime() (read, write sim.Time) { return t.readTime, t.writeTime }

// Target describes a projected storage device, in the paper's (read/write)
// MB/s notation.
type Target struct {
	Name      string
	ReadMBps  float64
	WriteMBps float64
	// Latency is the per-request cost of the projected device; zero keeps
	// each record's size-independent share implicit (pure bandwidth
	// scaling, as the paper's first-order model does).
	Latency sim.Time
}

// String formats the target like the paper's axis labels, e.g. "2100/900".
func (tg Target) String() string {
	if tg.Name != "" {
		return tg.Name
	}
	return fmt.Sprintf("%.0f/%.0f", tg.ReadMBps, tg.WriteMBps)
}

// Projection is the emulator's output for one target.
type Projection struct {
	Target Target
	// IOTime is the projected total I/O time.
	IOTime sim.Time
	// Total is the projected overall runtime: measured total with the I/O
	// component swapped (other components constant, per the paper; if the
	// original run overlapped I/O with compute, the projection keeps the
	// same overlapped fraction).
	Total sim.Time
}

// Project replays the trace against the target bandwidths. measuredTotal
// and measuredIO come from the original run; overlap in the original run
// is preserved proportionally: newTotal = measuredTotal - f*measuredIO +
// f*newIO where f is the fraction of I/O time that contributed to the
// critical path (pass 1 for fully serial I/O).
func (t *Trace) Project(target Target, measuredTotal sim.Time, criticalFraction float64) Projection {
	if criticalFraction < 0 {
		criticalFraction = 0
	}
	if criticalFraction > 1 {
		criticalFraction = 1
	}
	var newIO sim.Time
	for _, r := range t.records {
		bw := target.ReadMBps * 1e6
		if r.Op == device.Write {
			bw = target.WriteMBps * 1e6
		}
		newIO += target.Latency + sim.TransferTime(r.Bytes, bw)
	}
	oldIO := t.readTime + t.writeTime
	delta := sim.Time(float64(newIO-oldIO) * criticalFraction)
	return Projection{
		Target: target,
		IOTime: newIO,
		Total:  measuredTotal + delta,
	}
}

// Sweep projects the trace across several targets.
func (t *Trace) Sweep(targets []Target, measuredTotal sim.Time, criticalFraction float64) []Projection {
	out := make([]Projection, len(targets))
	for i, tg := range targets {
		out[i] = t.Project(tg, measuredTotal, criticalFraction)
	}
	return out
}

// PaperSweep returns the §V-D target spectrum: from the measured
// 1400/600 MB/s SSD to the 3500/2100 "fastest PCIe SSDs on the market".
func PaperSweep() []Target {
	return []Target{
		{ReadMBps: 1400, WriteMBps: 600},
		{ReadMBps: 2000, WriteMBps: 1000},
		{ReadMBps: 2500, WriteMBps: 1400},
		{ReadMBps: 3000, WriteMBps: 1800},
		{ReadMBps: 3500, WriteMBps: 2100},
	}
}
