package emulator

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/sim"
)

func recordedRun(t *testing.T) (*Trace, sim.Time) {
	t.Helper()
	e := sim.NewEngine()
	dev := device.New(e, device.SSDProfile(device.GiB, 1400, 600))
	tr := &Trace{}
	detach := tr.Attach(dev)
	defer detach()
	e.Spawn("io", func(p *sim.Proc) {
		dev.Access(p, device.Read, 0, 70*device.MiB)
		dev.Access(p, device.Write, 70*device.MiB, 30*device.MiB)
		p.Sleep(50 * sim.Millisecond) // "compute"
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return tr, e.Now()
}

func TestTraceAccumulates(t *testing.T) {
	tr, total := recordedRun(t)
	if tr.Len() != 2 {
		t.Fatalf("records = %d", tr.Len())
	}
	r, w := tr.Bytes()
	if r != 70*device.MiB || w != 30*device.MiB {
		t.Fatalf("bytes = %d/%d", r, w)
	}
	rt, wt := tr.IOTime()
	if rt <= 0 || wt <= 0 || rt+wt >= total {
		t.Fatalf("io time %v/%v vs total %v", rt, wt, total)
	}
}

func TestIdentityProjection(t *testing.T) {
	// Projecting onto the measured device reproduces the measured time
	// (modulo the fixed per-request latency the pure-bandwidth model
	// drops).
	tr, total := recordedRun(t)
	p := tr.Project(Target{ReadMBps: 1400, WriteMBps: 600,
		Latency: sim.Microseconds(60)}, total, 1)
	if d := p.Total - total; d > sim.Millisecond || d < -sim.Millisecond {
		t.Fatalf("identity projection drifted by %v", d)
	}
}

func TestFasterStorageImproves(t *testing.T) {
	tr, total := recordedRun(t)
	projections := tr.Sweep(PaperSweep(), total, 1)
	for i := 1; i < len(projections); i++ {
		if projections[i].IOTime >= projections[i-1].IOTime {
			t.Fatalf("I/O time not decreasing: %v then %v",
				projections[i-1].IOTime, projections[i].IOTime)
		}
		if projections[i].Total >= projections[i-1].Total {
			t.Fatalf("total not decreasing across sweep")
		}
	}
	// §V-D headline: (3500/2100) versus (1400/600) improves I/O by ~60%.
	first, last := projections[0], projections[len(projections)-1]
	gain := 1 - float64(last.IOTime)/float64(first.IOTime)
	if gain < 0.5 || gain > 0.75 {
		t.Fatalf("I/O improvement %.0f%% outside the paper's ~65%% band", 100*gain)
	}
	// Overall gain is smaller: compute is untouched.
	overall := 1 - float64(last.Total)/float64(first.Total)
	if overall >= gain {
		t.Fatal("overall gain not damped by constant components")
	}
}

func TestCriticalFractionDamping(t *testing.T) {
	tr, total := recordedRun(t)
	fast := Target{ReadMBps: 3500, WriteMBps: 2100}
	full := tr.Project(fast, total, 1)
	half := tr.Project(fast, total, 0.5)
	none := tr.Project(fast, total, 0)
	if none.Total != total {
		t.Fatalf("zero critical fraction changed total: %v vs %v", none.Total, total)
	}
	if !(full.Total < half.Total && half.Total < none.Total) {
		t.Fatalf("damping not monotone: %v %v %v", full.Total, half.Total, none.Total)
	}
	// Fraction is clamped.
	if p := tr.Project(fast, total, 7); p.Total != full.Total {
		t.Fatal("criticalFraction not clamped to 1")
	}
}

func TestProjectionMonotoneInBandwidth(t *testing.T) {
	tr, total := recordedRun(t)
	f := func(a, b uint16) bool {
		lo, hi := float64(a%3000)+100, float64(b%3000)+100
		if lo > hi {
			lo, hi = hi, lo
		}
		pLo := tr.Project(Target{ReadMBps: lo, WriteMBps: lo}, total, 1)
		pHi := tr.Project(Target{ReadMBps: hi, WriteMBps: hi}, total, 1)
		return pHi.IOTime <= pLo.IOTime
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTargetString(t *testing.T) {
	if s := (Target{ReadMBps: 2100, WriteMBps: 900}).String(); s != "2100/900" {
		t.Fatalf("String = %q", s)
	}
	if s := (Target{Name: "nvme-gen4"}).String(); s != "nvme-gen4" {
		t.Fatalf("named String = %q", s)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr, total := recordedRun(t)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("records: %d vs %d", got.Len(), tr.Len())
	}
	gr, gw := got.Bytes()
	or, ow := tr.Bytes()
	if gr != or || gw != ow {
		t.Fatal("byte counts diverged through JSON")
	}
	// Projections from the reloaded trace are identical.
	target := Target{ReadMBps: 3500, WriteMBps: 2100}
	a := tr.Project(target, total, 1)
	b := got.Project(target, total, 1)
	if a.IOTime != b.IOTime || a.Total != b.Total {
		t.Fatal("projection diverged through JSON")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"device":"d","op":"levitate","bytes":1,"time_ns":1}`))); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"device":"d","op":"read","bytes":-1,"time_ns":1}`))); err == nil {
		t.Fatal("negative bytes accepted")
	}
	got, err := ReadJSON(bytes.NewReader(nil))
	if err != nil || got.Len() != 0 {
		t.Fatal("empty trace should load cleanly")
	}
}
