// Package storage implements a simulated file store on top of a block
// device model.
//
// The paper manages the tree root (SSD or disk drive) through POSIX file
// I/O opened with O_DIRECT and O_SYNC, so that reads and writes go straight
// to the device with no page-cache interference (§III-D). This store models
// exactly that regime: every ReadAt/WriteAt is synchronous and charges the
// device's service time; there is no caching layer.
//
// Functionally, a File holds real bytes, so out-of-core runs produce
// bit-checkable results. Content is kept in a lazily grown buffer: bytes
// never written read back as zero, like a sparse file, which keeps host
// memory proportional to the touched working set even when the simulated
// device is large.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/sim"
)

// Store is a flat namespace of files on one device.
type Store struct {
	dev     *device.Device
	files   map[string]*File
	nextOff int64 // bump allocator for device extents (drives the seek model)
}

// NewStore creates an empty file store on dev.
func NewStore(dev *device.Device) *Store {
	if !dev.Kind().IsFileStore() && dev.Kind() != device.KindNVM {
		// NVM is allowed: §II notes NVM may be exposed as fast storage.
		panic(fmt.Sprintf("storage: device kind %v is not file-backed", dev.Kind()))
	}
	return &Store{dev: dev, files: make(map[string]*File)}
}

// Device returns the underlying device model.
func (s *Store) Device() *device.Device { return s.dev }

// File is a simulated file. It supports concurrent access from multiple
// simulation processes; the device model serializes their requests.
type File struct {
	store *Store
	name  string
	off   int64 // device extent start, for seek modeling
	size  int64 // logical size (fixed at Create)
	data  []byte
	live  bool
}

// Create allocates a file of the given fixed size, reserving device
// capacity. It fails if the name exists or capacity is exhausted.
func (s *Store) Create(name string, size int64) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("storage: create %q: negative size %d", name, size)
	}
	if _, ok := s.files[name]; ok {
		return nil, fmt.Errorf("storage: create %q: file exists", name)
	}
	if err := s.dev.Reserve(size); err != nil {
		return nil, fmt.Errorf("storage: create %q: %w", name, err)
	}
	f := &File{store: s, name: name, off: s.nextOff, size: size, live: true}
	s.nextOff += size
	s.files[name] = f
	return f, nil
}

// Open returns the named file.
func (s *Store) Open(name string) (*File, error) {
	f, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("storage: open %q: no such file", name)
	}
	return f, nil
}

// Remove deletes the named file and releases its capacity. Device extents
// are not recycled (a bump allocator suffices for the seek model).
func (s *Store) Remove(name string) error {
	f, ok := s.files[name]
	if !ok {
		return fmt.Errorf("storage: remove %q: no such file", name)
	}
	delete(s.files, name)
	f.live = false
	s.dev.Unreserve(f.size)
	return nil
}

// List returns the file names in lexical order.
func (s *Store) List() []string {
	names := make([]string, 0, len(s.files))
	for n := range s.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the file's fixed logical size.
func (f *File) Size() int64 { return f.size }

// DeviceOffset returns the start of the file's extent on the device.
func (f *File) DeviceOffset() int64 { return f.off }

func (f *File) checkRange(op string, off int64, n int) error {
	if !f.live {
		return fmt.Errorf("storage: %s %q: file removed", op, f.name)
	}
	if off < 0 || off+int64(n) > f.size {
		return fmt.Errorf("storage: %s %q: range [%d,%d) outside size %d",
			op, f.name, off, off+int64(n), f.size)
	}
	return nil
}

// ReadAt fills buf from the file starting at off, charging the device for a
// synchronous read. Unwritten regions read as zero.
func (f *File) ReadAt(p *sim.Proc, buf []byte, off int64) error {
	if err := f.Charge(p, device.Read, off, int64(len(buf))); err != nil {
		return err
	}
	return f.Peek(buf, off)
}

// WriteAt writes buf to the file starting at off, charging the device for a
// synchronous (O_SYNC-style) write.
func (f *File) WriteAt(p *sim.Proc, buf []byte, off int64) error {
	if err := f.Charge(p, device.Write, off, int64(len(buf))); err != nil {
		return err
	}
	return f.Preload(buf, off)
}

// Charge performs a timed access of n bytes at off without touching file
// content. It backs the runtime's phantom mode, where full-paper-scale runs
// are timed without materializing gigabytes of payload.
func (f *File) Charge(p *sim.Proc, op device.Op, off int64, n int64) error {
	if err := f.checkRange(op.String(), off, int(n)); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	f.store.dev.Access(p, op, f.off+off, n)
	return nil
}

// ChargeAsync is Charge without a driving process: it queues the timed device
// access through the inline-callback path and invokes done once the access
// completes. Range errors are reported synchronously; done runs as an engine
// callback and must not block. A zero-length charge completes inline.
func (f *File) ChargeAsync(op device.Op, off, n int64, done func()) error {
	if err := f.checkRange(op.String(), off, int(n)); err != nil {
		return err
	}
	if n == 0 {
		if done != nil {
			done()
		}
		return nil
	}
	f.store.dev.AccessAsync(op, f.off+off, n, func(sim.Time) {
		if done != nil {
			done()
		}
	})
	return nil
}

// Preload sets file content functionally, with no simulated time: the way
// input datasets "already on storage" are seeded (the paper likewise starts
// measurement with inputs resident on the SSD/disk).
func (f *File) Preload(data []byte, off int64) error {
	if err := f.checkRange("preload", off, len(data)); err != nil {
		return err
	}
	end := off + int64(len(data))
	if int64(len(f.data)) < end {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], data)
	return nil
}

// Peek reads file content functionally with no simulated time: used by
// tests and result verification outside the measured region.
func (f *File) Peek(buf []byte, off int64) error {
	if err := f.checkRange("peek", off, len(buf)); err != nil {
		return err
	}
	end := off + int64(len(buf))
	have := int64(len(f.data))
	switch {
	case off >= have:
		for i := range buf {
			buf[i] = 0
		}
	case end <= have:
		copy(buf, f.data[off:end])
	default:
		n := copy(buf, f.data[off:have])
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
	}
	return nil
}

// ReadAt2D reads a 2-D block of rows*rowBytes bytes laid out with the given
// stride between row starts, issuing one device request per row. On a
// mechanical drive each row hop pays the seek penalty, which is exactly the
// "border elements stored non-contiguously" inefficiency the paper calls out
// for HotSpot-2D (§IV-B) and the motivation for chunk-major preprocessing.
func (f *File) ReadAt2D(p *sim.Proc, dst []byte, off int64, rows, rowBytes int, stride int64) error {
	if int64(rows)*int64(rowBytes) > int64(len(dst)) {
		return fmt.Errorf("storage: read2d %q: dst too small", f.name)
	}
	for r := 0; r < rows; r++ {
		src := off + int64(r)*stride
		d := dst[r*rowBytes : (r+1)*rowBytes]
		if err := f.ReadAt(p, d, src); err != nil {
			return err
		}
	}
	return nil
}

// WriteAt2D is the write counterpart of ReadAt2D.
func (f *File) WriteAt2D(p *sim.Proc, src []byte, off int64, rows, rowBytes int, stride int64) error {
	if int64(rows)*int64(rowBytes) > int64(len(src)) {
		return fmt.Errorf("storage: write2d %q: src too small", f.name)
	}
	for r := 0; r < rows; r++ {
		dst := off + int64(r)*stride
		s := src[r*rowBytes : (r+1)*rowBytes]
		if err := f.WriteAt(p, s, dst); err != nil {
			return err
		}
	}
	return nil
}
