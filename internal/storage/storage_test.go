package storage

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/sim"
)

func newTestStore(e *sim.Engine) *Store {
	return NewStore(device.New(e, device.SSDProfile(64*device.MiB, 1400, 600)))
}

// runIO runs fn as a single simulation process and fails the test on error.
func runIO(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	e.Spawn("io", fn)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateWriteRead(t *testing.T) {
	e := sim.NewEngine()
	s := newTestStore(e)
	f, err := s.Create("a", 1024)
	if err != nil {
		t.Fatal(err)
	}
	runIO(t, e, func(p *sim.Proc) {
		msg := []byte("hello northup")
		if err := f.WriteAt(p, msg, 100); err != nil {
			t.Error(err)
		}
		got := make([]byte, len(msg))
		if err := f.ReadAt(p, got, 100); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("read %q", got)
		}
	})
	if e.Now() <= 0 {
		t.Fatal("I/O consumed no virtual time")
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	e := sim.NewEngine()
	s := newTestStore(e)
	f, _ := s.Create("a", 4096)
	runIO(t, e, func(p *sim.Proc) {
		f.WriteAt(p, []byte{1, 2, 3}, 0)
		buf := []byte{9, 9, 9, 9}
		if err := f.ReadAt(p, buf, 1); err != nil {
			t.Error(err)
		}
		want := []byte{2, 3, 0, 0} // partially past written region
		if !bytes.Equal(buf, want) {
			t.Errorf("read %v, want %v", buf, want)
		}
		buf2 := []byte{9, 9}
		f.ReadAt(p, buf2, 3000) // fully past written region
		if buf2[0] != 0 || buf2[1] != 0 {
			t.Errorf("far read %v, want zeros", buf2)
		}
	})
}

func TestRangeErrors(t *testing.T) {
	e := sim.NewEngine()
	s := newTestStore(e)
	f, _ := s.Create("a", 100)
	runIO(t, e, func(p *sim.Proc) {
		if err := f.ReadAt(p, make([]byte, 10), 95); err == nil {
			t.Error("read past EOF succeeded")
		}
		if err := f.WriteAt(p, make([]byte, 10), -1); err == nil {
			t.Error("negative-offset write succeeded")
		}
		if err := f.ReadAt(p, nil, 0); err != nil {
			t.Errorf("empty read failed: %v", err)
		}
	})
}

func TestNamespace(t *testing.T) {
	e := sim.NewEngine()
	s := newTestStore(e)
	if _, err := s.Create("b", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("a", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("a", 10); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := s.Open("c"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	names := s.List()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v", names)
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("a"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestCapacityEnforced(t *testing.T) {
	e := sim.NewEngine()
	dev := device.New(e, device.SSDProfile(1000, 1400, 600))
	s := NewStore(dev)
	if _, err := s.Create("big", 800); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("more", 300); err == nil {
		t.Fatal("create beyond capacity succeeded")
	}
	if err := s.Remove("big"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("more", 300); err != nil {
		t.Fatalf("create after remove failed: %v", err)
	}
}

func TestUseAfterRemove(t *testing.T) {
	e := sim.NewEngine()
	s := newTestStore(e)
	f, _ := s.Create("a", 100)
	s.Remove("a")
	runIO(t, e, func(p *sim.Proc) {
		if err := f.ReadAt(p, make([]byte, 1), 0); err == nil {
			t.Error("read of removed file succeeded")
		}
		if err := f.WriteAt(p, []byte{1}, 0); err == nil {
			t.Error("write of removed file succeeded")
		}
	})
}

func TestReadWrite2DRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	s := newTestStore(e)
	const rows, rowBytes = 8, 16
	stride := int64(64) // row starts 64 bytes apart inside the file
	f, _ := s.Create("m", stride*rows+100)
	src := make([]byte, rows*rowBytes)
	for i := range src {
		src[i] = byte(i * 7)
	}
	got := make([]byte, rows*rowBytes)
	runIO(t, e, func(p *sim.Proc) {
		if err := f.WriteAt2D(p, src, 10, rows, rowBytes, stride); err != nil {
			t.Error(err)
		}
		if err := f.ReadAt2D(p, got, 10, rows, rowBytes, stride); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Equal(src, got) {
		t.Fatal("2-D round trip mismatch")
	}
}

func TestStrided2DCostsMoreOnHDD(t *testing.T) {
	// The motivation for chunk-major preprocessing: a strided block read on
	// a seeky device is far slower than a contiguous read of the same bytes.
	elapsed := func(strided bool) sim.Time {
		e := sim.NewEngine()
		dev := device.New(e, device.HDDProfile(64*device.MiB))
		s := NewStore(dev)
		f, _ := s.Create("m", 32*device.MiB)
		buf := make([]byte, 64*1024)
		e.Spawn("io", func(p *sim.Proc) {
			if strided {
				f.ReadAt2D(p, buf, 0, 64, 1024, 128*1024)
			} else {
				f.ReadAt(p, buf, 0)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	seq, str := elapsed(false), elapsed(true)
	if str < 10*seq {
		t.Fatalf("strided read %v vs sequential %v: expected >=10x penalty", str, seq)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any write at any in-range offset reads back identically.
	f := func(data []byte, offRaw uint16) bool {
		if len(data) == 0 {
			return true
		}
		e := sim.NewEngine()
		s := newTestStore(e)
		size := int64(len(data)) + int64(offRaw) + 1
		file, err := s.Create("f", size)
		if err != nil {
			return false
		}
		ok := true
		e.Spawn("io", func(p *sim.Proc) {
			off := int64(offRaw)
			if err := file.WriteAt(p, data, off); err != nil {
				ok = false
				return
			}
			got := make([]byte, len(data))
			if err := file.ReadAt(p, got, off); err != nil {
				ok = false
				return
			}
			ok = bytes.Equal(got, data)
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNVMStoreAllowed(t *testing.T) {
	e := sim.NewEngine()
	dev := device.New(e, device.NVMProfile(device.GiB))
	s := NewStore(dev) // must not panic: NVM-as-storage is a paper use case
	if _, err := s.Create("x", 10); err != nil {
		t.Fatal(err)
	}
}

func TestMemStoreRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for DRAM-backed store")
		}
	}()
	e := sim.NewEngine()
	NewStore(device.New(e, device.DRAMProfile(device.GiB)))
}
