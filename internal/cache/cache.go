// Package cache implements the policy core of the runtime's staging cache:
// a per-memory-node buffer pool keyed by source extent, with LRU eviction,
// explicit pinning, in-flight (being-fetched) entries, and write-path
// invalidation. The pool is pure bookkeeping — it never allocates device
// space or moves bytes itself; package core owns the resident buffers and
// threads them through as opaque values. Keeping the policy free of
// simulation and device types makes it testable in isolation and reusable
// for any node of the tree.
package cache

import (
	"container/list"
	"fmt"
)

// Key identifies one cached extent: a half-open byte range of a source
// buffer, named by the source's stable buffer ID. Two reads of the same
// range of the same source hit the same entry; overlapping-but-different
// ranges are distinct entries (no sub-range matching — the applications'
// chunk schedules re-read exact extents).
type Key struct {
	Src int64 // source buffer ID
	Off int64 // byte offset within the source
	Len int64 // extent length in bytes
}

// String renders the key for error messages.
func (k Key) String() string {
	return fmt.Sprintf("buf%d[%d:%d]", k.Src, k.Off, k.Off+k.Len)
}

// Entry is one pool slot. An entry is either ready (Value holds the
// resident buffer) or in flight (Pending holds the fetch-completion signal
// a concurrent reader can wait on). Pinned entries are never evicted;
// doomed entries have been invalidated while pinned or in flight and are
// already invisible to lookups, lingering only until their last user lets
// go.
type Entry struct {
	key        Key
	value      any
	pending    any
	pins       int
	prefetched bool
	doomed     bool
	elem       *list.Element
}

// Key returns the extent the entry caches.
func (e *Entry) Key() Key { return e.key }

// Value returns the resident buffer of a ready entry (nil while in flight).
func (e *Entry) Value() any { return e.value }

// Pending returns the fetch-completion signal of an in-flight entry.
func (e *Entry) Pending() any { return e.pending }

// Ready reports whether the fetch completed and Value is usable.
func (e *Entry) Ready() bool { return e.pending == nil }

// Pinned reports whether any user holds the entry.
func (e *Entry) Pinned() bool { return e.pins > 0 }

// Prefetched reports whether the entry was filled by the prefetcher and has
// not yet served a demand lookup.
func (e *Entry) Prefetched() bool { return e.prefetched }

// SetPrefetched marks the entry as filled by the prefetcher.
func (e *Entry) SetPrefetched() { e.prefetched = true }

// ClearPrefetched marks the prefetched entry as consumed by demand.
func (e *Entry) ClearPrefetched() { e.prefetched = false }

// Doomed reports whether the entry was invalidated while pinned or in
// flight; its buffer must be freed by the last user instead of re-entering
// the pool.
func (e *Entry) Doomed() bool { return e.doomed }

// Pool is the buffer pool of one memory node. It is not safe for true
// concurrent use; the discrete-event simulation interleaves tasks only at
// blocking points, and the pool's mutating methods never block.
type Pool struct {
	capacity int64
	used     int64
	entries  map[Key]*Entry            // visible (non-doomed) entries
	bySrc    map[int64]map[*Entry]bool // source ID -> entries, for invalidation
	lru      *list.List                // front = most recently used ready entry
}

// New creates a pool with the given byte capacity. A zero or negative
// capacity is legal and makes every insert fail — the "cache off" point of
// a capacity sweep.
func New(capacity int64) *Pool {
	return &Pool{
		capacity: capacity,
		entries:  make(map[Key]*Entry),
		bySrc:    make(map[int64]map[*Entry]bool),
		lru:      list.New(),
	}
}

// Capacity returns the pool's byte capacity.
func (p *Pool) Capacity() int64 { return p.capacity }

// Used returns the bytes accounted to resident, in-flight and doomed
// entries.
func (p *Pool) Used() int64 { return p.used }

// Len returns the number of visible entries (ready or in flight).
func (p *Pool) Len() int { return len(p.entries) }

// Get returns the entry caching k, or nil. A ready entry is bumped to the
// front of the LRU order.
func (p *Pool) Get(k Key) *Entry {
	e := p.entries[k]
	if e != nil && e.Ready() {
		p.lru.MoveToFront(e.elem)
	}
	return e
}

// Peek returns the entry caching k without touching the LRU order — the
// read-only residency probe affinity scoring uses, so ranking candidate
// placements can never perturb which entry a real fetch would evict.
func (p *Pool) Peek(k Key) *Entry { return p.entries[k] }

// StartFetch reserves an in-flight entry for k, carrying pending as the
// completion signal for concurrent readers. The reservation counts against
// capacity immediately so parallel fetches cannot oversubscribe the pool;
// callers follow up with EvictFor(0) to make the accounting fit. It fails
// if k is already present or larger than the whole pool.
func (p *Pool) StartFetch(k Key, pending any) (*Entry, error) {
	if k.Len <= 0 {
		return nil, fmt.Errorf("cache: fetch of %d bytes", k.Len)
	}
	if k.Len > p.capacity {
		return nil, fmt.Errorf("cache: %v exceeds pool capacity %d", k, p.capacity)
	}
	if _, ok := p.entries[k]; ok {
		return nil, fmt.Errorf("cache: %v already present", k)
	}
	if pending == nil {
		return nil, fmt.Errorf("cache: StartFetch without a pending signal")
	}
	e := &Entry{key: k, pending: pending}
	p.entries[k] = e
	p.addBySrc(e)
	p.used += k.Len
	return e, nil
}

// Commit completes an in-flight fetch with the resident buffer value. It
// returns true when the entry became visible; false when the entry was
// doomed (invalidated) while in flight, in which case the pool has dropped
// it and the caller owns the buffer.
func (p *Pool) Commit(e *Entry, value any) bool {
	if e.Ready() {
		panic(fmt.Sprintf("cache: commit of ready entry %v", e.key))
	}
	e.pending = nil
	if e.doomed {
		p.used -= e.key.Len
		return false
	}
	e.value = value
	e.elem = p.lru.PushFront(e)
	return true
}

// Abort drops a failed in-flight fetch so the key can be retried.
func (p *Pool) Abort(e *Entry) {
	if e.Ready() {
		panic(fmt.Sprintf("cache: abort of ready entry %v", e.key))
	}
	p.used -= e.key.Len
	if e.doomed {
		return // already removed from the maps by invalidation
	}
	delete(p.entries, e.key)
	p.dropBySrc(e)
}

// Pin takes a reference on a ready entry, shielding it from eviction.
func (p *Pool) Pin(e *Entry) {
	if !e.Ready() {
		panic(fmt.Sprintf("cache: pin of in-flight entry %v", e.key))
	}
	e.pins++
}

// Unpin releases one reference. If the entry was doomed and this was the
// last reference, the pool drops its accounting and returns the buffer for
// the caller to free; otherwise it returns nil.
func (p *Pool) Unpin(e *Entry) any {
	if e.pins <= 0 {
		panic(fmt.Sprintf("cache: unpin of unpinned entry %v", e.key))
	}
	e.pins--
	if e.doomed && e.pins == 0 {
		p.used -= e.key.Len
		p.lru.Remove(e.elem)
		return e.value
	}
	return nil
}

// EvictFor evicts least-recently-used unpinned ready entries until the pool
// can account need more bytes within capacity, returning the evicted
// buffers for the caller to free. ok is false when pinned or in-flight
// entries block the way; whatever room was reclaimed stays reclaimed.
func (p *Pool) EvictFor(need int64) (victims []any, ok bool) {
	for p.used+need > p.capacity {
		e := p.lruVictim()
		if e == nil {
			return victims, false
		}
		victims = append(victims, p.remove(e))
	}
	return victims, true
}

// EvictOne evicts the single least-recently-used unpinned ready entry —
// the allocator's pressure valve — returning its buffer, or ok=false when
// nothing is evictable.
func (p *Pool) EvictOne() (victim any, ok bool) {
	e := p.lruVictim()
	if e == nil {
		return nil, false
	}
	return p.remove(e), true
}

// lruVictim returns the least-recently-used unpinned ready entry, or nil.
func (p *Pool) lruVictim() *Entry {
	for el := p.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*Entry); !e.Pinned() {
			return e
		}
	}
	return nil
}

// remove drops a ready unpinned entry from the pool and returns its buffer.
func (p *Pool) remove(e *Entry) any {
	p.lru.Remove(e.elem)
	delete(p.entries, e.key)
	p.dropBySrc(e)
	p.used -= e.key.Len
	return e.value
}

// InvalidateRange removes every entry whose cached extent overlaps the
// written range [off, off+n) of source src. Ready unpinned entries are
// returned as victims for the caller to free; pinned and in-flight entries
// are doomed instead — immediately invisible to lookups, freed when their
// last user unpins (or the fetch commits). doomed reports how many took
// that path.
func (p *Pool) InvalidateRange(src, off, n int64) (victims []any, doomed int) {
	for e := range p.bySrc[src] {
		if e.key.Off >= off+n || e.key.Off+e.key.Len <= off {
			continue
		}
		if e.Ready() && !e.Pinned() {
			victims = append(victims, p.remove(e))
			continue
		}
		e.doomed = true
		delete(p.entries, e.key)
		p.dropBySrc(e)
		doomed++
	}
	return victims, doomed
}

func (p *Pool) addBySrc(e *Entry) {
	m := p.bySrc[e.key.Src]
	if m == nil {
		m = make(map[*Entry]bool)
		p.bySrc[e.key.Src] = m
	}
	m[e] = true
}

func (p *Pool) dropBySrc(e *Entry) {
	m := p.bySrc[e.key.Src]
	delete(m, e)
	if len(m) == 0 {
		delete(p.bySrc, e.key.Src)
	}
}

// CheckInvariants panics if the pool's internal accounting is inconsistent;
// tests call it after every mutation sequence.
func (p *Pool) CheckInvariants() {
	var used int64
	ready := 0
	for k, e := range p.entries {
		if e.key != k {
			panic(fmt.Sprintf("cache: entry keyed %v thinks it is %v", k, e.key))
		}
		if e.doomed {
			panic(fmt.Sprintf("cache: doomed entry %v still visible", k))
		}
		used += k.Len
		if e.Ready() {
			ready++
		}
		if !p.bySrc[k.Src][e] {
			panic(fmt.Sprintf("cache: entry %v missing from source index", k))
		}
	}
	if p.lru.Len() != ready {
		// Doomed-but-pinned ready entries also sit in the LRU list until
		// their last unpin; account for them.
		extra := 0
		for el := p.lru.Front(); el != nil; el = el.Next() {
			if e := el.Value.(*Entry); e.doomed {
				extra++
				used += e.key.Len
			}
		}
		if p.lru.Len() != ready+extra {
			panic(fmt.Sprintf("cache: %d LRU elements for %d ready entries", p.lru.Len(), ready))
		}
	}
	// Doomed in-flight entries keep their reservation until commit/abort.
	for _, m := range p.bySrc {
		for e := range m {
			if _, ok := p.entries[e.key]; !ok {
				panic(fmt.Sprintf("cache: source index holds unmapped entry %v", e.key))
			}
		}
	}
	if used > p.used {
		panic(fmt.Sprintf("cache: accounted %d bytes but used=%d", used, p.used))
	}
}
