package cache

import "testing"

// fill commits a ready entry for k holding val.
func fill(t *testing.T, p *Pool, k Key, val any) *Entry {
	t.Helper()
	e, err := p.StartFetch(k, "pending")
	if err != nil {
		t.Fatalf("StartFetch(%v): %v", k, err)
	}
	if !p.Commit(e, val) {
		t.Fatalf("Commit(%v) reported doomed", k)
	}
	p.CheckInvariants()
	return e
}

func TestGetHitAndMiss(t *testing.T) {
	p := New(100)
	k := Key{Src: 1, Off: 0, Len: 40}
	if p.Get(k) != nil {
		t.Fatal("hit on empty pool")
	}
	fill(t, p, k, "a")
	e := p.Get(k)
	if e == nil || e.Value() != "a" {
		t.Fatalf("expected ready entry holding a, got %+v", e)
	}
	if p.Used() != 40 || p.Len() != 1 {
		t.Fatalf("used=%d len=%d", p.Used(), p.Len())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p := New(100)
	a := Key{Src: 1, Off: 0, Len: 40}
	b := Key{Src: 1, Off: 40, Len: 40}
	fill(t, p, a, "a")
	fill(t, p, b, "b")
	p.Get(a) // bump a: b is now least recently used

	victims, ok := p.EvictFor(40)
	if !ok || len(victims) != 1 || victims[0] != "b" {
		t.Fatalf("expected to evict b, got %v ok=%v", victims, ok)
	}
	if p.Get(b) != nil {
		t.Fatal("evicted entry still visible")
	}
	if p.Get(a) == nil {
		t.Fatal("recently used entry evicted")
	}
	p.CheckInvariants()
}

func TestPinBlocksEviction(t *testing.T) {
	p := New(80)
	a := Key{Src: 1, Off: 0, Len: 40}
	b := Key{Src: 1, Off: 40, Len: 40}
	ea := fill(t, p, a, "a")
	fill(t, p, b, "b")
	p.Pin(ea)
	p.Get(b) // a is LRU but pinned

	victims, ok := p.EvictFor(40)
	if !ok || len(victims) != 1 || victims[0] != "b" {
		t.Fatalf("eviction should skip pinned a and take b, got %v ok=%v", victims, ok)
	}
	// Only the pinned entry remains: nothing more is evictable.
	if _, ok := p.EvictFor(41); ok {
		t.Fatal("eviction succeeded with only a pinned entry left")
	}
	if free := p.Unpin(ea); free != nil {
		t.Fatalf("unpin of live entry returned %v to free", free)
	}
	if _, ok := p.EvictFor(41); !ok {
		t.Fatal("eviction still blocked after unpin")
	}
	p.CheckInvariants()
}

func TestStartFetchRules(t *testing.T) {
	p := New(100)
	k := Key{Src: 1, Off: 0, Len: 40}
	if _, err := p.StartFetch(Key{Src: 1, Off: 0, Len: 200}, "x"); err == nil {
		t.Fatal("fetch larger than the pool accepted")
	}
	e, err := p.StartFetch(k, "latch")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartFetch(k, "latch2"); err == nil {
		t.Fatal("double fetch of one key accepted")
	}
	got := p.Get(k)
	if got == nil || got.Ready() || got.Pending() != "latch" {
		t.Fatalf("in-flight entry not surfaced: %+v", got)
	}
	// In-flight entries are reserved but never evicted.
	if _, ok := p.EvictFor(80); ok {
		t.Fatal("evicted through an in-flight entry")
	}
	p.Abort(e)
	if p.Get(k) != nil || p.Used() != 0 {
		t.Fatalf("abort left state: used=%d", p.Used())
	}
	if _, err := p.StartFetch(k, "latch3"); err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
	p.CheckInvariants()
}

func TestEvictOne(t *testing.T) {
	p := New(100)
	fill(t, p, Key{Src: 1, Off: 0, Len: 40}, "a")
	fill(t, p, Key{Src: 1, Off: 40, Len: 40}, "b")
	v, ok := p.EvictOne()
	if !ok || v != "a" {
		t.Fatalf("expected LRU a, got %v ok=%v", v, ok)
	}
	v, ok = p.EvictOne()
	if !ok || v != "b" {
		t.Fatalf("expected b, got %v ok=%v", v, ok)
	}
	if _, ok = p.EvictOne(); ok {
		t.Fatal("evicted from empty pool")
	}
	p.CheckInvariants()
}

func TestInvalidateRangeOverlap(t *testing.T) {
	p := New(1000)
	a := Key{Src: 7, Off: 0, Len: 100}
	b := Key{Src: 7, Off: 100, Len: 100}
	c := Key{Src: 8, Off: 0, Len: 100} // different source
	fill(t, p, a, "a")
	fill(t, p, b, "b")
	fill(t, p, c, "c")

	// Write [50, 120) of source 7: overlaps a and b, not c.
	victims, doomed := p.InvalidateRange(7, 50, 70)
	if len(victims) != 2 || doomed != 0 {
		t.Fatalf("victims=%v doomed=%d", victims, doomed)
	}
	if p.Get(a) != nil || p.Get(b) != nil {
		t.Fatal("invalidated entries still visible")
	}
	if p.Get(c) == nil {
		t.Fatal("unrelated source invalidated")
	}
	// Adjacent (non-overlapping) write leaves c alone.
	if victims, _ := p.InvalidateRange(8, 100, 50); len(victims) != 0 {
		t.Fatalf("adjacent write invalidated %v", victims)
	}
	p.CheckInvariants()
}

func TestInvalidatePinnedDooms(t *testing.T) {
	p := New(100)
	k := Key{Src: 1, Off: 0, Len: 40}
	e := fill(t, p, k, "a")
	p.Pin(e)
	victims, doomed := p.InvalidateRange(1, 0, 100)
	if len(victims) != 0 || doomed != 1 {
		t.Fatalf("victims=%v doomed=%d", victims, doomed)
	}
	if p.Get(k) != nil {
		t.Fatal("doomed entry still visible")
	}
	if p.Used() != 40 {
		t.Fatal("doomed-but-pinned entry lost its accounting early")
	}
	// The last unpin hands the buffer back for freeing.
	if free := p.Unpin(e); free != "a" {
		t.Fatalf("unpin returned %v", free)
	}
	if p.Used() != 0 {
		t.Fatalf("used=%d after doomed entry freed", p.Used())
	}
	p.CheckInvariants()
}

func TestInvalidateInFlightDooms(t *testing.T) {
	p := New(100)
	k := Key{Src: 1, Off: 0, Len: 40}
	e, err := p.StartFetch(k, "latch")
	if err != nil {
		t.Fatal(err)
	}
	if _, doomed := p.InvalidateRange(1, 0, 40); doomed != 1 {
		t.Fatal("in-flight entry not doomed")
	}
	if p.Get(k) != nil {
		t.Fatal("doomed in-flight entry still visible")
	}
	// Commit of a doomed fetch hands the buffer back to the fetcher.
	if p.Commit(e, "a") {
		t.Fatal("doomed commit became visible")
	}
	if p.Used() != 0 || p.Len() != 0 {
		t.Fatalf("used=%d len=%d after doomed commit", p.Used(), p.Len())
	}
	p.CheckInvariants()
}

func TestZeroCapacityPool(t *testing.T) {
	p := New(0)
	if _, err := p.StartFetch(Key{Src: 1, Off: 0, Len: 1}, "x"); err == nil {
		t.Fatal("zero-capacity pool accepted a fetch")
	}
}
