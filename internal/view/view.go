// Package view reinterprets raw byte buffers as typed element slices.
//
// Northup's unified data-management interface is deliberately untyped: the
// paper uses void pointers and lets each operation decide how to interpret
// them (§III-D, "the current implementation uses void pointers"). Buffers in
// this reproduction carry []byte payloads; view provides the checked,
// zero-copy reinterpretations the applications need (float32 matrices,
// int32 CSR index arrays), playing the role the paper assigns to a future
// "UniversalType".
package view

import (
	"fmt"
	"unsafe"
)

// F32 reinterprets b as a []float32 sharing b's storage.
// len(b) must be a multiple of 4.
func F32(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	if len(b)%4 != 0 {
		panic(fmt.Sprintf("view: F32 of %d bytes", len(b)))
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// I32 reinterprets b as a []int32 sharing b's storage.
// len(b) must be a multiple of 4.
func I32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if len(b)%4 != 0 {
		panic(fmt.Sprintf("view: I32 of %d bytes", len(b)))
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// F32Bytes reinterprets a []float32 as bytes sharing its storage.
func F32Bytes(f []float32) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), len(f)*4)
}

// I32Bytes reinterprets a []int32 as bytes sharing its storage.
func I32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}
