package view

import (
	"testing"
	"testing/quick"
)

func TestF32RoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		b := F32Bytes(vals)
		got := F32(b)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// Compare bit patterns so NaNs round-trip too.
			if got[i] != vals[i] && !(got[i] != got[i] && vals[i] != vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestI32RoundTrip(t *testing.T) {
	f := func(vals []int32) bool {
		b := I32Bytes(vals)
		got := I32(b)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestViewsAlias(t *testing.T) {
	b := make([]byte, 8)
	f := F32(b)
	f[1] = 1.0
	if b[4] == 0 && b[5] == 0 && b[6] == 0 && b[7] == 0 {
		t.Fatal("write through view did not reach backing bytes")
	}
	g := F32(b)
	if g[1] != 1.0 {
		t.Fatal("second view does not alias")
	}
}

func TestEmptyViews(t *testing.T) {
	if F32(nil) != nil || I32(nil) != nil {
		t.Fatal("nil input should give nil view")
	}
	if F32Bytes(nil) != nil || I32Bytes(nil) != nil {
		t.Fatal("nil input should give nil bytes")
	}
}

func TestMisalignedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	F32(make([]byte, 7))
}
