package device

import "repro/internal/sim"

// This file is the single calibration point for the reproduction: every
// figure harness builds its devices from these constructors. The constants
// follow §V-A of the paper and public specifications of the named parts.

// Byte-size constants.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30

	// MBps converts the paper's "MB/s" figures to bytes/second.
	MBps = 1e6
	// GBps is 1e9 bytes/second.
	GBps = 1e9
)

// HDDProfile models the paper's SATA Western Digital WD5000AAKX drive:
// ~125 MB/s sustained sequential transfer, 7200 RPM (4.2 ms half-rotation),
// 8.9 ms average seek. The SeekTime constant folds rotational latency into
// the seek penalty, charged whenever an access is discontiguous.
func HDDProfile(capacity int64) Profile {
	return Profile{
		Name:     "hdd",
		Kind:     KindHDD,
		Capacity: capacity,
		ReadBW:   125 * MBps,
		WriteBW:  120 * MBps,
		Latency:  sim.Microseconds(100),  // controller + syscall path
		SeekTime: sim.Milliseconds(13.1), // 8.9 ms seek + 4.2 ms rotation
	}
}

// SSDProfile models a PCIe SSD with the given sequential read/write
// bandwidths in MB/s. The paper's HyperX Predator baseline is (1400, 600);
// §V-D sweeps up to (3500, 2100).
func SSDProfile(capacity int64, readMBps, writeMBps float64) Profile {
	return Profile{
		Name:     "ssd",
		Kind:     KindSSD,
		Capacity: capacity,
		ReadBW:   readMBps * MBps,
		WriteBW:  writeMBps * MBps,
		Latency:  sim.Microseconds(60),
	}
}

// NVMProfile models byte-addressable non-volatile memory (§VI "Northup for
// HPC" positions NVM as a per-node slow-memory level above SSD speed).
func NVMProfile(capacity int64) Profile {
	return Profile{
		Name:     "nvm",
		Kind:     KindNVM,
		Capacity: capacity,
		ReadBW:   6.5 * GBps,
		WriteBW:  2.3 * GBps,
		Latency:  sim.Microseconds(1),
	}
}

// DRAMProfile models the host DRAM staging buffer (2 GiB in the paper's
// out-of-core runs, 16 GiB for in-memory baselines).
func DRAMProfile(capacity int64) Profile {
	return Profile{
		Name:        "dram",
		Kind:        KindMem,
		Capacity:    capacity,
		ReadBW:      20 * GBps,
		WriteBW:     20 * GBps,
		Latency:     sim.Microseconds(0.1),
		Parallelism: 2, // dual channel
	}
}

// HBMProfile models die-stacked DRAM used as a fast software-managed level.
func HBMProfile(capacity int64) Profile {
	return Profile{
		Name:        "hbm",
		Kind:        KindHBM,
		Capacity:    capacity,
		ReadBW:      250 * GBps,
		WriteBW:     250 * GBps,
		Latency:     sim.Microseconds(0.08),
		Parallelism: 8,
	}
}

// GPUMemProfile models a discrete GPU's device memory (FirePro W9100-class:
// 16 GiB GDDR5 at 320 GB/s).
func GPUMemProfile(capacity int64) Profile {
	return Profile{
		Name:        "gpumem",
		Kind:        KindGPUMem,
		Capacity:    capacity,
		ReadBW:      320 * GBps,
		WriteBW:     320 * GBps,
		Latency:     sim.Microseconds(0.2),
		Parallelism: 8,
	}
}

// PCIeLink creates the host-to-device interconnect used for OpenCL
// H2D/D2H block transfers (PCIe 3.0 x16-class, ~12 GB/s effective, with a
// per-transfer launch cost that penalizes fine-grained copies).
func PCIeLink(e *sim.Engine) *Link {
	return NewLink(e, "pcie", 12*GBps, sim.Microseconds(10), 2)
}

// DMALink creates the engine used for memory-to-memory staging copies within
// the host (bounded by DRAM bandwidth itself, so the link is fast).
func DMALink(e *sim.Engine) *Link {
	return NewLink(e, "dma", 40*GBps, sim.Microseconds(0.5), 2)
}
