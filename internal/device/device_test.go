package device

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testDRAM(e *sim.Engine) *Device {
	return New(e, DRAMProfile(1*GiB))
}

func TestReserveAccounting(t *testing.T) {
	e := sim.NewEngine()
	d := testDRAM(e)
	if err := d.Reserve(600 * MiB); err != nil {
		t.Fatal(err)
	}
	if err := d.Reserve(600 * MiB); err == nil {
		t.Fatal("over-reservation succeeded")
	} else {
		var ce *ErrCapacity
		if !errors.As(err, &ce) {
			t.Fatalf("error type %T", err)
		}
		if ce.Free != 1*GiB-600*MiB {
			t.Fatalf("reported free %d", ce.Free)
		}
	}
	d.Unreserve(600 * MiB)
	if d.Used() != 0 {
		t.Fatalf("used = %d after full unreserve", d.Used())
	}
	if err := d.Reserve(1 * GiB); err != nil {
		t.Fatalf("full-capacity reserve failed: %v", err)
	}
}

func TestReserveNeverOverbooks(t *testing.T) {
	// Property: for any sequence of reservation sizes, used <= capacity and
	// used equals the sum of successful reservations.
	f := func(sizes []uint32) bool {
		e := sim.NewEngine()
		d := New(e, Profile{Name: "d", Kind: KindMem, Capacity: 1 << 20,
			ReadBW: 1e9, WriteBW: 1e9})
		var want int64
		for _, s := range sizes {
			n := int64(s % (1 << 18))
			if d.Reserve(n) == nil {
				want += n
			}
		}
		return d.Used() == want && d.Used() <= d.Capacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessTiming(t *testing.T) {
	e := sim.NewEngine()
	// 1000 B/s read, 500 B/s write, no latency: timing is pure bandwidth.
	d := New(e, Profile{Name: "d", Kind: KindSSD, Capacity: 1 << 20,
		ReadBW: 1000, WriteBW: 500})
	var rt, wt sim.Time
	e.Spawn("io", func(p *sim.Proc) {
		rt = d.Access(p, Read, 0, 1000)
		wt = d.Access(p, Write, 1000, 1000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rt != sim.Second {
		t.Fatalf("read time %v, want 1s", rt)
	}
	if wt != 2*sim.Second {
		t.Fatalf("write time %v, want 2s", wt)
	}
	if e.Now() != 3*sim.Second {
		t.Fatalf("clock %v, want 3s", e.Now())
	}
}

func TestSeekPenalty(t *testing.T) {
	e := sim.NewEngine()
	d := New(e, Profile{Name: "hdd", Kind: KindHDD, Capacity: 1 << 30,
		ReadBW: 1e6, WriteBW: 1e6,
		SeekTime: 10 * sim.Millisecond})
	var seq, rand sim.Time
	e.Spawn("io", func(p *sim.Proc) {
		d.Access(p, Read, 0, 1000)             // first access seeks (lastEnd=0 -> offset 0 is sequential, actually)
		seq = d.Access(p, Read, 1000, 1000)    // sequential: no seek
		rand = d.Access(p, Read, 500000, 1000) // jump: seek
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if seq >= rand {
		t.Fatalf("sequential %v not cheaper than random %v", seq, rand)
	}
	if rand-seq != 10*sim.Millisecond {
		t.Fatalf("seek penalty = %v, want 10ms", rand-seq)
	}
}

func TestDeviceContention(t *testing.T) {
	// Two 1-second reads on a serial device finish at 1s and 2s.
	e := sim.NewEngine()
	d := New(e, Profile{Name: "d", Kind: KindSSD, Capacity: 1 << 20,
		ReadBW: 1000, WriteBW: 1000})
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			d.Access(p, Read, 0, 1000)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != sim.Second || ends[1] != 2*sim.Second {
		t.Fatalf("ends = %v", ends)
	}
}

func TestDeviceParallelism(t *testing.T) {
	// With Parallelism 2, two equal accesses complete together.
	e := sim.NewEngine()
	d := New(e, Profile{Name: "d", Kind: KindMem, Capacity: 1 << 20,
		ReadBW: 1000, WriteBW: 1000, Parallelism: 2})
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			d.Access(p, Read, 0, 1000)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != sim.Second || ends[1] != sim.Second {
		t.Fatalf("ends = %v", ends)
	}
}

func TestStatsAndRecorder(t *testing.T) {
	e := sim.NewEngine()
	d := New(e, SSDProfile(1*GiB, 1400, 600))
	var recs []IORecord
	d.SetRecorder(func(r IORecord) { recs = append(recs, r) })
	e.Spawn("io", func(p *sim.Proc) {
		d.Access(p, Read, 0, 7*MiB)
		d.Access(p, Write, 7*MiB, 3*MiB)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rb, wb, rt, wt := d.Stats()
	if rb != 7*MiB || wb != 3*MiB {
		t.Fatalf("bytes = %d/%d", rb, wb)
	}
	if rt <= 0 || wt <= 0 {
		t.Fatalf("times = %v/%v", rt, wt)
	}
	if len(recs) != 2 || recs[0].Op != Read || recs[1].Op != Write {
		t.Fatalf("records = %+v", recs)
	}
	d.ResetStats()
	rb, wb, _, _ = d.Stats()
	if rb != 0 || wb != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestLinkBottleneck(t *testing.T) {
	e := sim.NewEngine()
	slow := New(e, Profile{Name: "slow", Kind: KindSSD, Capacity: 1 << 20,
		ReadBW: 100, WriteBW: 100})
	fast := New(e, Profile{Name: "fast", Kind: KindMem, Capacity: 1 << 20,
		ReadBW: 1e6, WriteBW: 1e6})
	l := NewLink(e, "l", 1e3, 0, 1)
	var t1, t2 sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		t1 = l.Transfer(p, slow, fast, 100) // bottleneck: slow reads at 100 B/s
		t2 = l.Transfer(p, fast, fast, 100) // bottleneck: the link at 1e3 B/s
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 != sim.Second {
		t.Fatalf("slow-source transfer = %v, want 1s", t1)
	}
	if t2 != sim.Second/10 {
		t.Fatalf("link-bound transfer = %v, want 100ms", t2)
	}
}

func TestServiceTimeMonotonicInSize(t *testing.T) {
	e := sim.NewEngine()
	d := New(e, HDDProfile(1*GiB))
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return d.ServiceTime(Read, 0, x, false) <= d.ServiceTime(Read, 0, y, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = e
}

func TestProfileSanity(t *testing.T) {
	profiles := []Profile{
		HDDProfile(500 * GiB),
		SSDProfile(480*GiB, 1400, 600),
		NVMProfile(64 * GiB),
		DRAMProfile(2 * GiB),
		HBMProfile(8 * GiB),
		GPUMemProfile(16 * GiB),
	}
	// The paper's premise: each level up the hierarchy is faster.
	for i := 1; i < len(profiles); i++ {
		if profiles[i].ReadBW <= profiles[i-1].ReadBW {
			t.Errorf("%s read BW %.0f not faster than %s %.0f",
				profiles[i].Name, profiles[i].ReadBW,
				profiles[i-1].Name, profiles[i-1].ReadBW)
		}
	}
	for _, p := range profiles {
		if p.Capacity <= 0 || p.WriteBW <= 0 {
			t.Errorf("profile %s not fully specified: %+v", p.Name, p)
		}
	}
}

func TestNegativeReserveRejected(t *testing.T) {
	e := sim.NewEngine()
	d := testDRAM(e)
	if err := d.Reserve(-1); err == nil {
		t.Fatal("negative reserve accepted")
	}
}

func TestUnreserveTooMuchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := sim.NewEngine()
	d := testDRAM(e)
	d.Unreserve(1)
}

func TestDeviceQueueStats(t *testing.T) {
	e := sim.NewEngine()
	d := New(e, Profile{Name: "d", Kind: KindSSD, Capacity: 1 << 20,
		ReadBW: 1000, WriteBW: 1000})
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			d.Access(p, Read, 0, 1000) // 1s each, serialized
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	requests, queued, wait := d.QueueStats()
	if requests != 2 || queued != 1 {
		t.Fatalf("requests=%d queued=%d", requests, queued)
	}
	if wait != sim.Second {
		t.Fatalf("wait = %v, want 1s", wait)
	}
}
