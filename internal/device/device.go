// Package device models the memory and storage components of a heterogeneous
// node: DRAM, die-stacked DRAM (HBM), NVM, SSD, hard disk, and GPU device
// memory, plus the interconnect links (PCIe, DMA engines) between them.
//
// A Device is a timing and capacity model only: it charges virtual time on a
// sim.Engine for each access and tracks how many bytes are reserved. The
// actual payload bytes live in runtime buffers (package core) or simulated
// files (package storage); keeping function and timing separate lets kernels
// operate on ordinary Go slices at full host speed while the clock still
// reflects the modeled hardware.
//
// Access timing follows a first-order queueing model, the same one the paper
// itself uses for its faster-storage projection (§V-D): a request occupies
// one of the device's service slots for latency + size/bandwidth, with an
// extra seek penalty for discontiguous accesses on mechanical drives.
package device

import (
	"fmt"

	"repro/internal/sim"
)

// Kind classifies a device. It plays the role of the paper's storage_type
// field (Listing 1): the unified move_data dispatches on the Kinds of the
// source and destination tree nodes.
type Kind int

const (
	// KindMem is byte-addressable host memory (DRAM).
	KindMem Kind = iota
	// KindHBM is die-stacked, high-bandwidth memory.
	KindHBM
	// KindNVM is byte-addressable non-volatile memory.
	KindNVM
	// KindSSD is a flash-based block storage device.
	KindSSD
	// KindHDD is a mechanical disk drive.
	KindHDD
	// KindGPUMem is a GPU's private device memory.
	KindGPUMem
)

// String returns the conventional short name of the kind.
func (k Kind) String() string {
	switch k {
	case KindMem:
		return "mem"
	case KindHBM:
		return "hbm"
	case KindNVM:
		return "nvm"
	case KindSSD:
		return "ssd"
	case KindHDD:
		return "hdd"
	case KindGPUMem:
		return "gpumem"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsFileStore reports whether the kind is accessed through file-style I/O
// (open/read/write) rather than load/store, mirroring the paper's FILE_TYPE
// versus MEM_TYPE distinction.
func (k Kind) IsFileStore() bool { return k == KindSSD || k == KindHDD }

// Profile describes a device's performance characteristics. All bandwidths
// are in bytes per second.
type Profile struct {
	Name     string
	Kind     Kind
	Capacity int64 // usable bytes

	ReadBW  float64 // sequential read bandwidth
	WriteBW float64 // sequential write bandwidth

	// Latency is the fixed per-request cost (controller / syscall / DMA
	// setup). SeekTime is charged additionally on mechanical devices when a
	// request is not sequential with the previous one.
	Latency  sim.Time
	SeekTime sim.Time

	// Parallelism is how many requests proceed concurrently at full
	// bandwidth (e.g. DRAM channels). Zero means 1.
	Parallelism int
}

// Op distinguishes read and write accesses.
type Op int

const (
	// Read is a device read access.
	Read Op = iota
	// Write is a device write access.
	Write
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// IORecord describes one completed device access. The §V-D emulator replays
// sequences of these records under different bandwidth assumptions.
type IORecord struct {
	Device string
	Op     Op
	Bytes  int64
	Seek   bool
	Time   sim.Time // service time actually charged (excluding queueing)
}

// Device is a simulated memory or storage component.
type Device struct {
	noCopy noCopy

	engine *sim.Engine
	server *sim.Resource

	profile Profile
	used    int64
	lastEnd int64 // end offset of the previous access, for the seek model

	// accounting
	readBytes, writeBytes int64
	readTime, writeTime   sim.Time
	recorder              func(IORecord)
}

// noCopy makes accidental copying of a Device a `go vet -copylocks` error.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// New creates a device bound to the engine.
func New(e *sim.Engine, p Profile) *Device {
	if p.Capacity <= 0 {
		panic(fmt.Sprintf("device %q: non-positive capacity", p.Name))
	}
	par := p.Parallelism
	if par < 1 {
		par = 1
	}
	return &Device{
		engine:  e,
		server:  sim.NewResource(e, par),
		profile: p,
	}
}

// Profile returns the device's performance description.
func (d *Device) Profile() Profile { return d.profile }

// Name returns the profile name.
func (d *Device) Name() string { return d.profile.Name }

// Kind returns the device kind.
func (d *Device) Kind() Kind { return d.profile.Kind }

// Capacity returns the total usable bytes.
func (d *Device) Capacity() int64 { return d.profile.Capacity }

// Used returns the bytes currently reserved by Reserve.
func (d *Device) Used() int64 { return d.used }

// Free returns the bytes available for Reserve.
func (d *Device) Free() int64 { return d.profile.Capacity - d.used }

// SetRecorder installs a hook that receives an IORecord for every access.
// Pass nil to disable.
func (d *Device) SetRecorder(fn func(IORecord)) { d.recorder = fn }

// ErrCapacity is returned when a reservation would exceed device capacity.
type ErrCapacity struct {
	Device   string
	Need     int64
	Free     int64
	Capacity int64
}

func (e *ErrCapacity) Error() string {
	return fmt.Sprintf("device %s: need %d bytes, %d free of %d",
		e.Device, e.Need, e.Free, e.Capacity)
}

// Reserve marks n bytes as in use. It fails with *ErrCapacity when the
// device cannot hold them.
func (d *Device) Reserve(n int64) error {
	if n < 0 {
		return fmt.Errorf("device %s: negative reservation %d", d.profile.Name, n)
	}
	if d.used+n > d.profile.Capacity {
		return &ErrCapacity{Device: d.profile.Name, Need: n,
			Free: d.Free(), Capacity: d.profile.Capacity}
	}
	d.used += n
	return nil
}

// Unreserve releases n bytes previously reserved.
func (d *Device) Unreserve(n int64) {
	if n < 0 || n > d.used {
		panic(fmt.Sprintf("device %s: unreserve %d with %d used", d.profile.Name, n, d.used))
	}
	d.used -= n
}

// ServiceTime returns the raw service time for an access, excluding
// queueing: fixed latency, plus a seek penalty if the device has one and the
// access is discontiguous, plus size over bandwidth.
func (d *Device) ServiceTime(op Op, offset, n int64, seek bool) sim.Time {
	t := d.profile.Latency
	if seek && d.profile.SeekTime > 0 {
		t += d.profile.SeekTime
	}
	bw := d.profile.ReadBW
	if op == Write {
		bw = d.profile.WriteBW
	}
	return t + sim.TransferTime(n, bw)
}

// Access performs a timed access of n bytes at the given offset: the calling
// process queues for one of the device's service slots and holds it for the
// service time. It returns the service time charged (excluding queueing).
func (d *Device) Access(p *sim.Proc, op Op, offset, n int64) sim.Time {
	seek := d.profile.SeekTime > 0 && offset != d.lastEnd
	t := d.ServiceTime(op, offset, n, seek)
	d.server.Acquire(p)
	// Re-evaluate sequentiality at service start: an interleaved request
	// may have moved the head while we queued.
	seekNow := d.profile.SeekTime > 0 && offset != d.lastEnd
	if seekNow != seek {
		t = d.ServiceTime(op, offset, n, seekNow)
		seek = seekNow
	}
	d.lastEnd = offset + n
	p.Sleep(t)
	d.server.Release()

	if op == Read {
		d.readBytes += n
		d.readTime += t
	} else {
		d.writeBytes += n
		d.writeTime += t
	}
	if d.recorder != nil {
		d.recorder(IORecord{Device: d.profile.Name, Op: op, Bytes: n, Seek: seek, Time: t})
	}
	return t
}

// AccessAsync performs the same timed access as Access without a driving
// process: it queues for a service slot via the inline-callback path, holds
// it for the service time with an engine timer, and invokes done with the
// service time charged once the access completes. done runs as an engine
// callback and must not block. The seek model, slot FIFO position, and
// accounting are identical to Access, so proc-driven and callback-driven
// requests can share one device without perturbing each other's timing.
func (d *Device) AccessAsync(op Op, offset, n int64, done func(sim.Time)) {
	d.server.AcquireAsync(func() {
		// Sequentiality is evaluated at service start, exactly as Access does
		// after its Acquire returns.
		seek := d.profile.SeekTime > 0 && offset != d.lastEnd
		t := d.ServiceTime(op, offset, n, seek)
		d.lastEnd = offset + n
		d.engine.After(t, func() {
			d.server.Release()
			if op == Read {
				d.readBytes += n
				d.readTime += t
			} else {
				d.writeBytes += n
				d.writeTime += t
			}
			if d.recorder != nil {
				d.recorder(IORecord{Device: d.profile.Name, Op: op, Bytes: n, Seek: seek, Time: t})
			}
			if done != nil {
				done(t)
			}
		})
	})
}

// Stats reports cumulative traffic and busy time per direction.
func (d *Device) Stats() (readBytes, writeBytes int64, readTime, writeTime sim.Time) {
	return d.readBytes, d.writeBytes, d.readTime, d.writeTime
}

// QueueStats reports contention at the device's service queue: total
// requests, how many queued behind another request, and the cumulative
// queueing delay — the first-order view of a saturated component.
func (d *Device) QueueStats() (requests, queued int64, waitTotal sim.Time) {
	return d.server.QueueStats()
}

// ResetStats zeroes the cumulative counters (reservations are unaffected).
func (d *Device) ResetStats() {
	d.readBytes, d.writeBytes = 0, 0
	d.readTime, d.writeTime = 0, 0
}

// Link models an interconnect (PCIe, on-package fabric) between two memory
// spaces. Transfers across a link are bottlenecked by the slowest of the
// link and the two endpoint devices, and occupy one link slot for the
// duration, which is how OpenCL H2D/D2H transfers serialize on PCIe.
type Link struct {
	Name    string
	BW      float64  // bytes per second
	Latency sim.Time // per-transfer setup cost

	engine *sim.Engine
	server *sim.Resource
}

// NewLink creates a link with the given parallelism (number of concurrent
// transfers at full bandwidth; duplex links use 2).
func NewLink(e *sim.Engine, name string, bw float64, latency sim.Time, parallelism int) *Link {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Link{Name: name, BW: bw, Latency: latency,
		engine: e, server: sim.NewResource(e, parallelism)}
}

// Transfer moves n bytes between src and dst across the link, charging the
// calling process for setup latency plus the bottleneck bandwidth time.
// Either endpoint may be nil (meaning "not a modeled bottleneck").
func (l *Link) Transfer(p *sim.Proc, src, dst *Device, n int64) sim.Time {
	bw := l.BW
	if src != nil && src.profile.ReadBW > 0 && src.profile.ReadBW < bw {
		bw = src.profile.ReadBW
	}
	if dst != nil && dst.profile.WriteBW > 0 && dst.profile.WriteBW < bw {
		bw = dst.profile.WriteBW
	}
	t := l.Latency + sim.TransferTime(n, bw)
	l.server.Use(p, t)
	return t
}

// TransferAsync is Transfer without a driving process: it queues for a link
// slot via the inline-callback path, occupies it for the transfer time with
// an engine timer, and invokes done with the time charged. done runs as an
// engine callback and must not block.
func (l *Link) TransferAsync(src, dst *Device, n int64, done func(sim.Time)) {
	bw := l.BW
	if src != nil && src.profile.ReadBW > 0 && src.profile.ReadBW < bw {
		bw = src.profile.ReadBW
	}
	if dst != nil && dst.profile.WriteBW > 0 && dst.profile.WriteBW < bw {
		bw = dst.profile.WriteBW
	}
	t := l.Latency + sim.TransferTime(n, bw)
	l.server.AcquireAsync(func() {
		l.engine.After(t, func() {
			l.server.Release()
			if done != nil {
				done(t)
			}
		})
	})
}
