package stream

import (
	"testing"

	"repro/internal/sim"
)

const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
)

func balancedHops() []Hop {
	return []Hop{
		{Name: "io", Latency: 60 * sim.Microsecond, BW: 1.4e9},
		{Name: "pcie", Latency: 10 * sim.Microsecond, BW: 1.5e9},
	}
}

func TestServiceTime(t *testing.T) {
	h := Hop{Latency: 10 * sim.Microsecond, BW: 1e9}
	got := h.ServiceTime(1e9)
	want := 10*sim.Microsecond + sim.Second
	if got != want {
		t.Fatalf("ServiceTime = %v, want %v", got, want)
	}
}

func TestMakespanSingleChunkIsSumOfHops(t *testing.T) {
	hops := balancedHops()
	total := 64 * MiB
	want := hops[0].ServiceTime(total) + hops[1].ServiceTime(total)
	if got := Makespan(hops, total, 1); got != want {
		t.Fatalf("Makespan(1) = %v, want store-and-forward sum %v", got, want)
	}
}

func TestMakespanImprovesWithBalancedHops(t *testing.T) {
	hops := balancedHops()
	total := 256 * MiB
	m1 := Makespan(hops, total, 1)
	m8 := Makespan(hops, total, 8)
	if m8 >= m1 {
		t.Fatalf("8 sub-chunks (%v) should beat store-and-forward (%v)", m8, m1)
	}
	// With two nearly equal hops the pipelined bound approaches the
	// bottleneck hop alone; expect at least a 1.5x model-level win.
	if float64(m1)/float64(m8) < 1.5 {
		t.Fatalf("speedup %.2f < 1.5 for balanced hops", float64(m1)/float64(m8))
	}
}

func TestMakespanLatencyPenalty(t *testing.T) {
	// Latency-dominated hops punish high sub-chunk counts.
	hops := []Hop{
		{Latency: 10 * sim.Millisecond, BW: 100e9},
		{Latency: 10 * sim.Millisecond, BW: 100e9},
	}
	if m2, m64 := Makespan(hops, 1*MiB, 2), Makespan(hops, 1*MiB, 64); m64 <= m2 {
		t.Fatalf("64 chunks (%v) should lose to 2 (%v) when latency dominates", m64, m2)
	}
}

func TestSizePicksMoreThanOneForBalancedHops(t *testing.T) {
	p := Size(balancedHops(), 256*MiB, 32, 256*KiB)
	if p.Count < 3 {
		t.Fatalf("Size picked %d sub-chunks; want >= 3 for balanced hops", p.Count)
	}
	if p.Predicted >= Makespan(balancedHops(), 256*MiB, 1) {
		t.Fatalf("chosen plan %v no better than store-and-forward", p)
	}
	if got := Makespan(balancedHops(), 256*MiB, p.Count); got != p.Predicted {
		t.Fatalf("Predicted %v != Makespan(%d) %v", p.Predicted, p.Count, got)
	}
}

func TestSizeDegeneratesForTinyPayload(t *testing.T) {
	// Payload below twice the min sub-chunk cannot split.
	p := Size(balancedHops(), 100*KiB, 32, 256*KiB)
	if p.Count != 1 || p.SubChunk != 100*KiB {
		t.Fatalf("tiny payload plan = %+v, want count 1", p)
	}
}

func TestSizeRespectsMinSubChunk(t *testing.T) {
	p := Size(balancedHops(), 4*MiB, 64, 1*MiB)
	if p.Count > 4 {
		t.Fatalf("count %d violates 1 MiB min sub-chunk on 4 MiB payload", p.Count)
	}
	if p.Count > 1 && p.SubChunk < 1*MiB {
		t.Fatalf("sub-chunk %d below the 1 MiB floor", p.SubChunk)
	}
}

func TestSizeSingleHopStaysMonolithic(t *testing.T) {
	// One hop, no consumer: pipelining cannot help, so ties must break to 1
	// and the streamed path stays identical to the monolithic move.
	one := []Hop{{Latency: 60 * sim.Microsecond, BW: 1.4e9}}
	p := Size(one, 256*MiB, 32, 256*KiB)
	if p.Count != 1 {
		t.Fatalf("single-hop Size picked %d sub-chunks, want 1", p.Count)
	}
}

func TestChunkRangeCoversPayloadExactly(t *testing.T) {
	p := Fixed(balancedHops(), 10*MiB+3, 7)
	var sum int64
	for i := 0; i < p.Count; i++ {
		off, n := p.ChunkRange(i)
		if off != sum {
			t.Fatalf("chunk %d starts at %d, want %d", i, off, sum)
		}
		if n <= 0 {
			t.Fatalf("chunk %d has size %d", i, n)
		}
		sum += n
	}
	if sum != p.Total {
		t.Fatalf("chunks cover %d bytes, want %d", sum, p.Total)
	}
}

func TestFixedClampsCount(t *testing.T) {
	if p := Fixed(nil, 3, 10); p.Count != 3 || p.SubChunk != 1 {
		t.Fatalf("Fixed(3 bytes, 10) = %+v, want 3 x 1", p)
	}
	if p := Fixed(nil, 0, 4); p.Count != 1 {
		t.Fatalf("Fixed(0 bytes) = %+v, want count 1", p)
	}
}

func TestFixedBytes(t *testing.T) {
	p := FixedBytes(balancedHops(), 10*MiB, 4*MiB)
	if p.Count != 3 || p.SubChunk != 4*MiB {
		t.Fatalf("FixedBytes = %+v, want 3 x 4 MiB", p)
	}
	if p := FixedBytes(nil, 10, 0); p.Count != 1 || p.SubChunk != 10 {
		t.Fatalf("FixedBytes zero sub = %+v", p)
	}
}
