// Package stream plans multi-stage (pipelined) transfers down the memory
// tree: it models each hop of a move as a latency + bandwidth stage and
// picks the sub-chunk count that minimizes the predicted pipeline makespan.
//
// The package is pure arithmetic over device profiles — no simulator state,
// no allocation — so the sizer can be unit-tested exhaustively and reused by
// schedulers that want to predict transfer times without running them.
//
// Model. A move of total bytes T split into c sub-chunks flows through hops
// h_0..h_{H-1}; sub-chunk i may not start hop k before (a) it finished hop
// k-1 and (b) sub-chunk i-1 finished hop k. With double buffering at every
// intermediate node the steady state is paced by the slowest hop, giving
//
//	makespan(c) ≈ Σ_k s_k(T/c)  +  (c-1) · max_k s_k(T/c)
//
// where s_k(n) = L_k + n/BW_k is hop k's service time for n bytes. The first
// term is the pipeline fill (sub-chunk 0 traversing every hop), the second
// the drain of the remaining c-1 sub-chunks through the bottleneck. Raising
// c shrinks the fill but multiplies the per-hop latency term c·L_k; the
// minimum sits where the two balance, and Size finds it by direct search.
package stream

import (
	"fmt"

	"repro/internal/sim"
)

// Hop models one edge of a transfer path: a fixed per-request latency plus
// a bandwidth. For device-backed hops the caller folds the link and endpoint
// profiles into a single effective (latency, bandwidth) pair.
type Hop struct {
	Name    string
	Latency sim.Time
	BW      float64 // bytes per second
}

// ServiceTime returns the modeled time for n bytes to traverse the hop.
func (h Hop) ServiceTime(n int64) sim.Time {
	return h.Latency + sim.TransferTime(n, h.BW)
}

// Makespan predicts the completion time of total bytes split into count
// uniform sub-chunks flowing through hops with double-buffered staging.
// count < 1 is treated as 1.
func Makespan(hops []Hop, total int64, count int) sim.Time {
	if count < 1 {
		count = 1
	}
	if len(hops) == 0 || total <= 0 {
		return 0
	}
	sub := ceilDiv(total, int64(count))
	var fill, bottleneck sim.Time
	for _, h := range hops {
		s := h.ServiceTime(sub)
		fill += s
		if s > bottleneck {
			bottleneck = s
		}
	}
	return fill + sim.Time(count-1)*bottleneck
}

// Plan is a resolved sub-chunking decision.
type Plan struct {
	Total     int64    // payload bytes
	Count     int      // number of sub-chunks (>= 1)
	SubChunk  int64    // bytes per sub-chunk (last one may be short)
	Predicted sim.Time // modeled makespan under the pipeline model
}

// ChunkRange returns the byte range [off, off+n) of sub-chunk i relative to
// the start of the payload.
func (p Plan) ChunkRange(i int) (off, n int64) {
	off = int64(i) * p.SubChunk
	n = p.SubChunk
	if off+n > p.Total {
		n = p.Total - off
	}
	return off, n
}

func (p Plan) String() string {
	return fmt.Sprintf("%d sub-chunks x %d B (total %d B, predicted %v)",
		p.Count, p.SubChunk, p.Total, p.Predicted)
}

// Size picks the sub-chunk count in [1, maxCount] minimizing the modeled
// makespan, subject to sub-chunks being at least minSub bytes (except when
// the whole payload is smaller). Ties break toward fewer sub-chunks, so a
// single-hop move with no pipelining benefit degenerates to count 1 and the
// streamed path stays bit- and time-identical to the monolithic one.
func Size(hops []Hop, total int64, maxCount int, minSub int64) Plan {
	if maxCount < 1 {
		maxCount = 1
	}
	if minSub < 1 {
		minSub = 1
	}
	best := Plan{Total: total, Count: 1, SubChunk: total,
		Predicted: Makespan(hops, total, 1)}
	if total <= 0 {
		best.SubChunk = 0
		return best
	}
	for c := 2; c <= maxCount; c++ {
		sub := ceilDiv(total, int64(c))
		if sub < minSub {
			break
		}
		if got := Makespan(hops, total, c); got < best.Predicted {
			best = Plan{Total: total, Count: c, SubChunk: sub, Predicted: got}
		}
	}
	return best
}

// Fixed builds a plan with an explicit sub-chunk count (clamped to the
// payload so no sub-chunk is empty).
func Fixed(hops []Hop, total int64, count int) Plan {
	if count < 1 || total <= 0 {
		count = 1
	}
	if total > 0 && int64(count) > total {
		count = int(total)
	}
	sub := total
	if total > 0 {
		sub = ceilDiv(total, int64(count))
	}
	return Plan{Total: total, Count: count, SubChunk: sub,
		Predicted: Makespan(hops, total, count)}
}

// FixedBytes builds a plan from an explicit sub-chunk size.
func FixedBytes(hops []Hop, total, subChunk int64) Plan {
	if subChunk < 1 || subChunk > total {
		subChunk = total
	}
	count := 1
	if total > 0 {
		count = int(ceilDiv(total, subChunk))
	}
	return Plan{Total: total, Count: count, SubChunk: subChunk,
		Predicted: Makespan(hops, total, count)}
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
