package obs

import (
	"fmt"

	"repro/internal/sim"
)

// This file holds the rolling-window primitives the live operations plane
// (package ops) aggregates with: rings of cumulative samples taken at
// virtual-time step boundaries, answering "how much did this change over
// the trailing W of virtual time" for counters, "what was the extreme"
// for gauges, and "what was the windowed quantile" for fixed-bucket
// histograms. Everything is driven from the single simulation goroutine at
// deterministic instants, so — like the rest of the package — identical
// runs produce identical window series, byte for byte.

// HistSnapshot is an immutable copy of a histogram's state at one instant.
// Two snapshots of the same histogram subtract to the distribution of the
// observations made between them, which is what windowed quantiles are
// computed from.
type HistSnapshot struct {
	bounds []int64
	counts []int64
	sum    int64
	n      int64
	max    int64
}

// Snap copies the histogram's current state. The bounds slice is shared
// (bounds are immutable after registration); counts are copied.
func (h *Histogram) Snap() HistSnapshot {
	return HistSnapshot{
		bounds: h.bounds,
		counts: append([]int64(nil), h.counts...),
		sum:    h.sum,
		n:      h.n,
		max:    h.max,
	}
}

// Sub returns the distribution observed between base and s (s must be the
// later snapshot of the same histogram). Mismatched bucket layouts panic,
// mirroring Merge: silently subtracting different buckets would fabricate
// a distribution.
func (s HistSnapshot) Sub(base HistSnapshot) HistSnapshot {
	if len(s.counts) != len(base.counts) {
		panic(fmt.Sprintf("obs: snapshot subtraction across different bucket layouts (%d vs %d buckets)",
			len(s.counts), len(base.counts)))
	}
	for i := range s.bounds {
		if s.bounds[i] != base.bounds[i] {
			panic("obs: snapshot subtraction across different bucket bounds")
		}
	}
	out := HistSnapshot{bounds: s.bounds, counts: make([]int64, len(s.counts)),
		sum: s.sum - base.sum, n: s.n - base.n, max: s.max}
	for i := range s.counts {
		out.counts[i] = s.counts[i] - base.counts[i]
	}
	return out
}

// Count returns the number of observations in the snapshot.
func (s HistSnapshot) Count() int64 { return s.n }

// Sum returns the sum of observations in the snapshot.
func (s HistSnapshot) Sum() int64 { return s.sum }

// Quantile returns the q-quantile of the snapshot with the same
// bucket-granularity semantics as Histogram.Quantile. For a subtracted
// (windowed) snapshot, observations beyond the last bound resolve to the
// source histogram's lifetime max — a deterministic upper estimate.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.n <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.n))
	if float64(rank) < q*float64(s.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, b := range s.bounds {
		cum += s.counts[i]
		if cum >= rank {
			if b > s.max {
				return s.max
			}
			return b
		}
	}
	return s.max
}

// winSample is one ring entry: a cumulative value observed at instant t.
type winSample struct {
	t sim.Time
	v float64
}

// Window is a bounded ring of cumulative scalar samples recorded at step
// boundaries. DeltaOver answers "change over the trailing width": the
// difference between the latest sample and the newest sample at least
// width older. Windows older than the ring's horizon are clipped to the
// oldest retained sample, so early in a run every window degrades
// gracefully to "since the start".
type Window struct {
	ring  []winSample
	head  int // index of the oldest retained sample
	count int
}

// NewWindow sizes a ring to retain maxWidth/step samples plus the endpoints.
func NewWindow(maxWidth, step sim.Time) *Window {
	if step <= 0 {
		panic("obs: NewWindow with non-positive step")
	}
	n := int(maxWidth/step) + 2
	return &Window{ring: make([]winSample, n)}
}

// Record appends one cumulative sample at instant t. Samples must arrive in
// non-decreasing time order.
func (w *Window) Record(t sim.Time, v float64) {
	if w.count == len(w.ring) {
		w.head = (w.head + 1) % len(w.ring)
		w.count--
	}
	w.ring[(w.head+w.count)%len(w.ring)] = winSample{t: t, v: v}
	w.count++
}

// at returns the i-th retained sample (0 = oldest).
func (w *Window) at(i int) winSample { return w.ring[(w.head+i)%len(w.ring)] }

// Latest returns the most recent sample's value (0 before any Record).
func (w *Window) Latest() float64 {
	if w.count == 0 {
		return 0
	}
	return w.at(w.count - 1).v
}

// base returns the newest retained sample at least width older than the
// latest, falling back to the oldest retained sample (clipped window).
func (w *Window) base(width sim.Time) winSample {
	latest := w.at(w.count - 1)
	cutoff := latest.t - width
	for i := w.count - 1; i >= 0; i-- {
		if s := w.at(i); s.t <= cutoff {
			return s
		}
	}
	return w.at(0)
}

// DeltaOver returns latest - base over the trailing width (0 with fewer
// than two samples).
func (w *Window) DeltaOver(width sim.Time) float64 {
	if w.count < 2 {
		return 0
	}
	return w.at(w.count-1).v - w.base(width).v
}

// MaxOver returns the largest sample value within the trailing width
// (inclusive of the window's base sample), for gauge-style sources where
// the extreme matters more than the change.
func (w *Window) MaxOver(width sim.Time) float64 {
	if w.count == 0 {
		return 0
	}
	latest := w.at(w.count - 1)
	cutoff := latest.t - width
	max := latest.v
	for i := w.count - 1; i >= 0; i-- {
		s := w.at(i)
		if s.v > max {
			max = s.v
		}
		if s.t <= cutoff {
			break
		}
	}
	return max
}

// HistWindow is the histogram counterpart of Window: a ring of snapshots
// taken at step boundaries. Over returns the distribution observed within
// the trailing width (clipped like Window.DeltaOver).
type HistWindow struct {
	h     *Histogram
	ring  []histSample
	head  int
	count int
}

type histSample struct {
	t    sim.Time
	snap HistSnapshot
}

// NewHistWindow sizes a snapshot ring for h over maxWidth at the given step.
func NewHistWindow(h *Histogram, maxWidth, step sim.Time) *HistWindow {
	if step <= 0 {
		panic("obs: NewHistWindow with non-positive step")
	}
	n := int(maxWidth/step) + 2
	return &HistWindow{h: h, ring: make([]histSample, n)}
}

// Record snapshots the histogram at instant t.
func (w *HistWindow) Record(t sim.Time) {
	if w.count == len(w.ring) {
		w.head = (w.head + 1) % len(w.ring)
		w.count--
	}
	w.ring[(w.head+w.count)%len(w.ring)] = histSample{t: t, snap: w.h.Snap()}
	w.count++
}

func (w *HistWindow) at(i int) histSample { return w.ring[(w.head+i)%len(w.ring)] }

// Over returns the distribution observed within the trailing width: the
// latest snapshot minus the newest snapshot at least width older (or the
// oldest retained — the clipped window). A zero-value snapshot is returned
// before two samples exist.
func (w *HistWindow) Over(width sim.Time) HistSnapshot {
	if w.count < 2 {
		return HistSnapshot{}
	}
	latest := w.at(w.count - 1)
	cutoff := latest.t - width
	base := w.at(0)
	for i := w.count - 1; i >= 0; i-- {
		if s := w.at(i); s.t <= cutoff {
			base = s
			break
		}
	}
	return latest.snap.Sub(base.snap)
}
