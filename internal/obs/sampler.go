package obs

import (
	"sort"

	"repro/internal/sim"
)

// DefaultMaxPoints bounds every sampled series; past it the sampler
// coarsens (thins each series and doubles its tick) instead of growing.
const DefaultMaxPoints = 1024

// SamplerOptions configures a virtual-time sampler.
type SamplerOptions struct {
	// Tick is the sampling period in virtual time. Zero disables the
	// sampler (NewSampler returns nil), which is the zero-alloc default.
	Tick sim.Time
	// MaxPoints caps each series' length; 0 means DefaultMaxPoints. When a
	// series would exceed the cap the sampler drops every other point and
	// doubles the tick, keeping memory bounded and the series deterministic
	// regardless of run length.
	MaxPoints int
}

// SamplePoint is one (virtual time, value) observation of a gauge.
type SamplePoint struct {
	T sim.Time `json:"t_ns"`
	V float64  `json:"v"`
}

// Series is the sampled history of one gauge.
type Series struct {
	Name   string        `json:"name"`
	Points []SamplePoint `json:"points"`
}

// Sampler snapshots every gauge in a registry at a fixed virtual-time tick,
// producing deterministic time series: the "continuous" half of the
// observability layer, giving queue depth, hit rate and bandwidth
// utilization as functions of virtual time rather than end-of-run totals.
//
// The runtime drives it from charge points: Due(now) is the cheap inline
// check, Observe(now) records one point per gauge at each elapsed tick
// boundary. Because virtual time only advances inside the single simulation
// goroutine, the sampler needs no locking; because ticks are aligned to
// multiples of Tick, two identical runs sample at identical instants.
type Sampler struct {
	reg       *Registry
	tick      sim.Time
	maxPoints int
	next      sim.Time // next tick boundary to record
	series    map[string][]SamplePoint
}

// NewSampler attaches a sampler to a registry. A zero tick returns nil: a
// nil *Sampler is the disabled state and is safe to pass around.
func NewSampler(reg *Registry, opts SamplerOptions) *Sampler {
	if opts.Tick <= 0 {
		return nil
	}
	mp := opts.MaxPoints
	if mp <= 0 {
		mp = DefaultMaxPoints
	}
	return &Sampler{reg: reg, tick: opts.Tick, maxPoints: mp,
		next: 0, series: map[string][]SamplePoint{}}
}

// Due reports whether now has reached the next tick boundary. Nil-safe and
// allocation-free: the disabled path is one comparison.
func (s *Sampler) Due(now sim.Time) bool {
	return s != nil && now >= s.next
}

// Observe records one point per gauge for every tick boundary elapsed up
// to now. Call after updating the gauges for the current instant; the
// runtime does this from its charge points whenever Due reports true.
func (s *Sampler) Observe(now sim.Time) {
	if s == nil {
		return
	}
	for now >= s.next {
		t := s.next
		s.reg.sorted() // refresh the gauge list
		over := false
		for _, m := range s.reg.gauges {
			pts := append(s.series[m.full], SamplePoint{T: t, V: m.g.Value()})
			s.series[m.full] = pts
			over = over || len(pts) > s.maxPoints
		}
		if over {
			// Coarsen every series together so they stay aligned: keep
			// even-indexed points and double the tick once per overflow.
			for name, pts := range s.series {
				s.series[name] = thin(pts)
			}
			s.tick *= 2
		}
		s.next = t + s.tick
	}
}

// thin halves a series by keeping even-indexed points, preserving the
// first sample and the overall shape at twice the spacing.
func thin(pts []SamplePoint) []SamplePoint {
	out := pts[:0]
	for i := 0; i < len(pts); i += 2 {
		out = append(out, pts[i])
	}
	return out
}

// Tick returns the current sampling period (it grows when series coarsen).
func (s *Sampler) Tick() sim.Time {
	if s == nil {
		return 0
	}
	return s.tick
}

// Series returns every sampled series sorted by gauge name, points in
// virtual-time order. Nil-safe: a disabled sampler has no series.
func (s *Sampler) Series() []Series {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.series))
	for name := range s.series {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Series, 0, len(names))
	for _, name := range names {
		out = append(out, Series{Name: name,
			Points: append([]SamplePoint(nil), s.series[name]...)})
	}
	return out
}
