package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

var exBounds = []int64{10, 100, 1000}

func TestObserveExemplarMatchesObserveNumerically(t *testing.T) {
	plain := NewRegistry().Histogram("h", "", exBounds)
	ex := NewRegistry().Histogram("h", "", exBounds)
	vals := []int64{1, 5, 50, 500, 5000, 50, 7}
	for i, v := range vals {
		plain.Observe(v)
		ex.ObserveExemplar(v, TraceIDForTest(i))
	}
	if plain.Count() != ex.Count() || plain.Sum() != ex.Sum() || plain.Max() != ex.Max() {
		t.Fatalf("exemplar observation changed the numbers: count %d/%d sum %d/%d max %d/%d",
			plain.Count(), ex.Count(), plain.Sum(), ex.Sum(), plain.Max(), ex.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if plain.Quantile(q) != ex.Quantile(q) {
			t.Fatalf("q%g diverges: %d vs %d", q, plain.Quantile(q), ex.Quantile(q))
		}
	}
}

// TraceIDForTest derives a distinct fake trace ID per index.
func TraceIDForTest(i int) string {
	return strings.Repeat("0", 15-i%10) + string(rune('a'+i%10))
}

func TestExemplarSelectionDeterministic(t *testing.T) {
	h := NewRegistry().Histogram("h", "", exBounds)
	h.ObserveExemplar(700, "bbb")
	h.ObserveExemplar(900, "aaa")
	h.ObserveExemplar(800, "ccc")
	h.ObserveExemplar(850, "ddd") // 4th into a K=3 bucket: evicts 700/bbb
	h.ObserveExemplar(600, "aaa") // smaller repeat of an ID: ignored
	h.ObserveExemplar(950, "ccc") // larger repeat: replaces 800

	want := []Exemplar{{TraceID: "ccc", Value: 950}, {TraceID: "aaa", Value: 900}, {TraceID: "ddd", Value: 850}}
	if got := h.TopExemplars(3); !reflect.DeepEqual(got, want) {
		t.Fatalf("top exemplars = %+v, want %+v", got, want)
	}
	worst, ok := h.BucketExemplar(3 - 1) // bucket le=1000
	if !ok || worst != want[0] {
		t.Fatalf("bucket exemplar = %+v %v", worst, ok)
	}
	if !h.HasExemplars() {
		t.Fatal("HasExemplars = false")
	}
	// Top-K across buckets ranks by value regardless of bucket.
	h.ObserveExemplar(5000, "inf")
	if got := h.TopExemplars(2); got[0].TraceID != "inf" || got[1].TraceID != "ccc" {
		t.Fatalf("cross-bucket top = %+v", got)
	}
}

func TestExemplarMergeAssociative(t *testing.T) {
	build := func(obs ...[2]any) *Registry {
		r := NewRegistry()
		h := r.Histogram("h", "", exBounds)
		for _, o := range obs {
			h.ObserveExemplar(int64(o[0].(int)), o[1].(string))
		}
		return r
	}
	a := build([2]any{50, "a1"}, [2]any{60, "a2"})
	b := build([2]any{70, "b1"}, [2]any{55, "b2"})

	ab := NewRegistry()
	ab.Merge(a)
	ab.Merge(b)
	ba := NewRegistry()
	ba.Merge(b)
	ba.Merge(a)
	var s1, s2 bytes.Buffer
	if err := ab.WritePrometheus(&s1); err != nil {
		t.Fatal(err)
	}
	if err := ba.WritePrometheus(&s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatalf("merge order changed exemplar export:\n%s\n%s", s1.String(), s2.String())
	}
	if !strings.Contains(s1.String(), `# {trace_id="b1"} 70`) {
		t.Fatalf("merged export missing b1 exemplar:\n%s", s1.String())
	}
}

func TestPrometheusExemplarSyntax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("northup_lat", "latency", exBounds, L("tenant", "a"))
	h.ObserveExemplar(50, "cafe")
	h.ObserveExemplar(5000, "dead") // +Inf bucket
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`le="100"} 1 # {trace_id="cafe"} 50`,
		`le="+Inf"} 2 # {trace_id="dead"} 5000`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	// A histogram without exemplars keeps the pre-exemplar byte format.
	r2 := NewRegistry()
	r2.Histogram("northup_lat", "latency", exBounds, L("tenant", "a")).Observe(50)
	var plain bytes.Buffer
	if err := r2.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "trace_id") {
		t.Fatalf("exemplar syntax leaked into a plain histogram:\n%s", plain.String())
	}
}

func TestJSONExportCarriesExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("northup_lat", "latency", exBounds)
	h.ObserveExemplar(5000, "beef")
	doc := r.Export(nil)
	if len(doc.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v", doc.Exemplars)
	}
	x := doc.Exemplars[0]
	if x.Metric != "northup_lat" || x.LE != "+Inf" || x.TraceID != "beef" || x.Value != 5000 {
		t.Fatalf("exemplar doc %+v", x)
	}
}
