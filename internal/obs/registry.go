// Package obs is the continuous-observability layer of the Northup
// reproduction: a typed metrics registry (counters, gauges, fixed-bucket
// histograms) populated by the runtime's charge points, plus a virtual-time
// sampler that snapshots gauges at a configurable tick to produce
// deterministic time series (sampler.go).
//
// Where package trace answers "what happened when" for one run, this
// package answers "how much, continuously": the counters TREES- and
// DaPPA-style runtimes watch across runs — busy time per category, bytes
// per node, cache hit rates, steal balance — in a form that exports to
// Prometheus text and JSON (export.go) and diffs against a committed
// baseline (the perf-regression gate in internal/figures).
//
// Everything here follows the simulation's concurrency contract: a
// registry is driven from the single simulation goroutine (like the trace
// Recorder and the Breakdown) and therefore needs no locking. Exports are
// deterministic byte for byte — metric families and label sets are sorted,
// values are formatted from integers or via strconv's shortest-round-trip
// float form, and no map iteration order leaks into the output — so two
// identical runs produce identical artifacts, which is what makes a
// committed baseline meaningful.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind distinguishes the metric types a registry holds.
type Kind uint8

const (
	// KindCounter is a monotonically increasing int64 total.
	KindCounter Kind = iota
	// KindGauge is an instantaneous float64 value (the sampler's subject).
	KindGauge
	// KindHistogram is a fixed-bucket distribution of int64 observations.
	KindHistogram
)

// String names the kind as the Prometheus text format does.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Label is one name="value" dimension of a metric.
type Label struct {
	Name, Value string
}

// L builds a label (shorthand for call sites).
func L(name, value string) Label { return Label{Name: name, Value: value} }

// renderLabels renders a sorted {a="x",b="y"} suffix, or "" without labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(l.Value)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter is a monotonically increasing total.
type Counter struct {
	v int64
}

// Add increases the counter. Negative deltas panic: a counter that goes
// backward means two charge points disagree about the source of truth.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("obs: counter decreased by %d", d))
	}
	c.v += d
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Value returns the accumulated total.
func (c *Counter) Value() int64 { return c.v }

// SyncTo raises the counter to total — the sync path mirroring an external
// monotonic source (CacheStats, ResilienceStats, injector counters) into
// the registry without instrumenting every mutation site. Totals below the
// current value panic, as for any counter decrease.
func (c *Counter) SyncTo(total int64) {
	c.Add(total - c.v)
}

// Gauge is an instantaneous value.
type Gauge struct {
	v float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket distribution of int64 observations
// (virtual-time durations in nanoseconds, byte sizes). Buckets are
// cumulative upper bounds like Prometheus's: an observation lands in every
// bucket whose bound is >= the value, plus the implicit +Inf bucket.
// Fixed bounds are what make cluster rollup associative: merging is
// element-wise addition, in any order.
type Histogram struct {
	bounds []int64 // sorted upper bounds, exclusive of +Inf
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	sum    int64
	n      int64
	max    int64 // largest observation; bounds Quantile's +Inf bucket

	// ex, when non-nil, retains the top-K worst exemplars per bucket
	// (exemplar.go). Lazily allocated by the first ObserveExemplar, so
	// plain histograms pay nothing.
	ex  [][]Exemplar
	exK int
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Max returns the largest observation (0 before any Observe).
func (h *Histogram) Max() int64 { return h.max }

// Bounds returns the bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []int64 { return append([]int64(nil), h.bounds...) }

// Quantile returns the q-quantile (q in [0,1]) as the upper bound of the
// bucket where the cumulative count reaches ceil(q*n): a deterministic,
// merge-stable estimate with bucket-granularity resolution, which is how
// per-tenant latency percentiles (p50/p99) are reported from fixed-bucket
// histograms. Observations beyond the last bound resolve to Max(). Returns
// 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		if cum >= rank {
			if b > h.max {
				return h.max
			}
			return b
		}
	}
	return h.max
}

// metric is one registered instrument.
type metric struct {
	family string
	full   string // family + rendered labels
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the metrics sharing one name.
type family struct {
	name string
	help string
	kind Kind
}

// Registry holds the metrics of one runtime (or one cluster machine).
// Metrics register lazily and idempotently: asking twice for the same
// (name, labels) returns the same instrument.
type Registry struct {
	fams    map[string]*family
	metrics map[string]*metric // keyed by full name
	order   []string           // sorted full names, rebuilt lazily
	dirty   bool
	gauges  []*metric // sorted by full name, rebuilt lazily with order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}, metrics: map[string]*metric{}}
}

// register resolves or creates the instrument for (name, labels).
func (r *Registry) register(name, help string, kind Kind, labels []Label) *metric {
	fam, ok := r.fams[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind}
		r.fams[name] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v and %v", name, fam.kind, kind))
	}
	full := name + renderLabels(labels)
	if m, ok := r.metrics[full]; ok {
		return m
	}
	m := &metric{family: name, full: full, kind: kind}
	r.metrics[full] = m
	r.dirty = true
	return m
}

// Counter resolves or creates a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, KindCounter, labels)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge resolves or creates a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, KindGauge, labels)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram resolves or creates a fixed-bucket histogram. bounds must be
// sorted ascending; re-registering with different bounds panics, because
// mismatched buckets would make merges silently wrong.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	m := r.register(name, help, KindHistogram, labels)
	if m.h == nil {
		m.h = &Histogram{bounds: append([]int64(nil), bounds...),
			counts: make([]int64, len(bounds)+1)}
		return m.h
	}
	if len(m.h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	for i := range bounds {
		if m.h.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
		}
	}
	return m.h
}

// sorted rebuilds the deterministic iteration order on demand.
func (r *Registry) sorted() []string {
	if r.dirty {
		r.order = r.order[:0]
		for full := range r.metrics {
			r.order = append(r.order, full)
		}
		sort.Strings(r.order)
		r.gauges = r.gauges[:0]
		for _, full := range r.order {
			if m := r.metrics[full]; m.kind == KindGauge {
				r.gauges = append(r.gauges, m)
			}
		}
		r.dirty = false
	}
	return r.order
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int { return len(r.metrics) }

// Merge adds o's values into r: counters and histogram buckets add,
// gauges add as well (queue depths and byte totals sum meaningfully across
// machines; ratio gauges like hit rates should be recomputed from the
// merged counters instead of read off a merged registry). Instruments
// missing from r are created. Histograms must share bucket bounds — fixed
// bounds are the contract that makes this merge associative and
// order-independent, which the cluster rollup tests assert.
func (r *Registry) Merge(o *Registry) {
	for _, full := range o.sorted() {
		om := o.metrics[full]
		r.mergeOne(full, om, o.fams[om.family])
	}
}

// mergeOne folds one of o's instruments into r by full name.
func (r *Registry) mergeOne(full string, om *metric, fam *family) {
	m, ok := r.metrics[full]
	if !ok {
		if f, ok := r.fams[om.family]; ok && f.kind != om.kind {
			panic(fmt.Sprintf("obs: merge of %q as %v into registry holding %v", om.family, om.kind, f.kind))
		}
		if _, ok := r.fams[om.family]; !ok {
			r.fams[om.family] = &family{name: fam.name, help: fam.help, kind: fam.kind}
		}
		m = &metric{family: om.family, full: full, kind: om.kind}
		r.metrics[full] = m
		r.dirty = true
	} else if m.kind != om.kind {
		panic(fmt.Sprintf("obs: merge of %q as %v into %v", full, om.kind, m.kind))
	}
	switch om.kind {
	case KindCounter:
		if m.c == nil {
			m.c = &Counter{}
		}
		m.c.Add(om.c.Value())
	case KindGauge:
		if m.g == nil {
			m.g = &Gauge{}
		}
		m.g.Set(m.g.Value() + om.g.Value())
	case KindHistogram:
		if m.h == nil {
			m.h = &Histogram{bounds: append([]int64(nil), om.h.bounds...),
				counts: make([]int64, len(om.h.counts))}
		}
		if len(m.h.counts) != len(om.h.counts) {
			panic(fmt.Sprintf("obs: merge of histogram %q with different buckets", full))
		}
		for i := range om.h.bounds {
			if m.h.bounds[i] != om.h.bounds[i] {
				panic(fmt.Sprintf("obs: merge of histogram %q with different buckets", full))
			}
		}
		for i, c := range om.h.counts {
			m.h.counts[i] += c
		}
		m.h.sum += om.h.sum
		m.h.n += om.h.n
		if om.h.max > m.h.max {
			m.h.max = om.h.max
		}
		m.h.mergeExemplars(om.h)
	}
}

// Point is one exported scalar: a counter's total, a gauge's value, or one
// histogram component (bucket, sum, count) flattened to a named number.
type Point struct {
	// Name is the full metric name including labels; histogram components
	// carry _bucket{le=...}, _sum and _count suffixes.
	Name string
	// Kind is the owning instrument's kind.
	Kind Kind
	// Value is the scalar. Counter and histogram components are integral.
	Value float64
}

// Snapshot flattens the registry into sorted points — the single source
// the Prometheus writer, the JSON writer and the perf profile all consume,
// so the three views can never disagree.
func (r *Registry) Snapshot() []Point {
	var out []Point
	for _, full := range r.sorted() {
		m := r.metrics[full]
		switch m.kind {
		case KindCounter:
			out = append(out, Point{Name: full, Kind: KindCounter, Value: float64(m.c.Value())})
		case KindGauge:
			out = append(out, Point{Name: full, Kind: KindGauge, Value: m.g.Value()})
		case KindHistogram:
			cum := int64(0)
			for i, b := range m.h.bounds {
				cum += m.h.counts[i]
				out = append(out, Point{Name: histName(full, "_bucket", strconv.FormatInt(b, 10)),
					Kind: KindHistogram, Value: float64(cum)})
			}
			cum += m.h.counts[len(m.h.bounds)]
			out = append(out, Point{Name: histName(full, "_bucket", "+Inf"), Kind: KindHistogram, Value: float64(cum)})
			out = append(out, Point{Name: histName(full, "_sum", ""), Kind: KindHistogram, Value: float64(m.h.sum)})
			out = append(out, Point{Name: histName(full, "_count", ""), Kind: KindHistogram, Value: float64(m.h.n)})
		}
	}
	return out
}

// Flatten returns the snapshot as a name -> value map (the perf profile's
// metric table).
func (r *Registry) Flatten() map[string]float64 {
	pts := r.Snapshot()
	out := make(map[string]float64, len(pts))
	for _, p := range pts {
		out[p.Name] = p.Value
	}
	return out
}

// histName splices a histogram component suffix into a full metric name,
// keeping any label set: name{a="x"} + _bucket/le=10 ->
// name_bucket{a="x",le="10"}.
func histName(full, suffix, le string) string {
	name, labels := full, ""
	if i := strings.IndexByte(full, '{'); i >= 0 {
		name, labels = full[:i], full[i+1:len(full)-1]
	}
	if le != "" {
		leLabel := `le="` + le + `"`
		if labels == "" {
			labels = leLabel
		} else {
			labels += "," + leLabel
		}
	}
	if labels == "" {
		return name + suffix
	}
	return name + suffix + "{" + labels + "}"
}

// formatValue renders a scalar deterministically: integral values as
// integers, others in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
