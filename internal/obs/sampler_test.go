package obs

import (
	"testing"

	"repro/internal/sim"
)

func TestSamplerDisabledNil(t *testing.T) {
	var s *Sampler
	if s.Due(100) {
		t.Fatal("nil sampler reported due")
	}
	s.Observe(100) // must not panic
	if s.Series() != nil {
		t.Fatal("nil sampler has series")
	}
	if NewSampler(NewRegistry(), SamplerOptions{Tick: 0}) != nil {
		t.Fatal("zero tick did not disable the sampler")
	}
}

// TestSamplerDisabledZeroAlloc is the acceptance criterion: the disabled
// sampler path (the one every untraced charge takes) allocates nothing.
func TestSamplerDisabledZeroAlloc(t *testing.T) {
	var s *Sampler
	allocs := testing.AllocsPerRun(200, func() {
		if s.Due(12345) {
			s.Observe(12345)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled sampler allocated %.1f times per check", allocs)
	}
}

func TestSamplerTickSeries(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	s := NewSampler(r, SamplerOptions{Tick: 100})
	// Gauge changes between observations; points must land on boundaries.
	g.Set(1)
	if !s.Due(0) {
		t.Fatal("sampler not due at t=0")
	}
	s.Observe(0) // records t=0
	if s.Due(99) {
		t.Fatal("due before the next boundary")
	}
	g.Set(2)
	s.Observe(250) // records t=100 and t=200 with the current value
	g.Set(7)
	s.Observe(300) // records t=300
	series := s.Series()
	if len(series) != 1 || series[0].Name != "depth" {
		t.Fatalf("series = %+v", series)
	}
	want := []SamplePoint{{0, 1}, {100, 2}, {200, 2}, {300, 7}}
	if len(series[0].Points) != len(want) {
		t.Fatalf("points = %+v, want %+v", series[0].Points, want)
	}
	for i, p := range series[0].Points {
		if p != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, p, want[i])
		}
	}
}

// TestSamplerCoarsens drives a sampler past MaxPoints and checks it thins
// and doubles the tick instead of growing without bound.
func TestSamplerCoarsens(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	s := NewSampler(r, SamplerOptions{Tick: 10, MaxPoints: 8})
	for now := sim.Time(0); now <= 1000; now += 10 {
		g.Set(float64(now))
		if s.Due(now) {
			s.Observe(now)
		}
	}
	series := s.Series()
	if len(series) != 1 {
		t.Fatalf("series = %+v", series)
	}
	pts := series[0].Points
	if len(pts) > 8 {
		t.Fatalf("series grew to %d points despite MaxPoints=8", len(pts))
	}
	if s.Tick() <= 10 {
		t.Fatalf("tick did not coarsen: %v", s.Tick())
	}
	if pts[0].T != 0 {
		t.Fatalf("thinning lost the first sample: %+v", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			t.Fatalf("points out of order: %+v", pts)
		}
	}
}

// TestSamplerDeterministic runs the same schedule twice and wants
// identical series — the property that lets sampled series live in the
// committed metrics artifacts.
func TestSamplerDeterministic(t *testing.T) {
	run := func() []Series {
		r := NewRegistry()
		g := r.Gauge("depth", "queue depth")
		h := r.Gauge("rate", "hit rate")
		s := NewSampler(r, SamplerOptions{Tick: 7, MaxPoints: 16})
		for now := sim.Time(0); now < 2000; now += 13 {
			g.Set(float64(now % 31))
			h.Set(float64(now%17) / 17)
			if s.Due(now) {
				s.Observe(now)
			}
		}
		return s.Series()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("series counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Points) != len(b[i].Points) {
			t.Fatalf("series %d differ: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Points {
			if a[i].Points[j] != b[i].Points[j] {
				t.Fatalf("series %s point %d: %+v vs %+v", a[i].Name, j, a[i].Points[j], b[i].Points[j])
			}
		}
	}
}
