package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format. The output is deterministic byte for byte: families are sorted by
// name, label sets within a family are sorted, and every value is formatted
// without map-order or float-noise dependence, so two identical runs
// produce identical files (asserted by the determinism tests).
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Group full names by family, in sorted family order.
	byFam := map[string][]string{}
	for _, full := range r.sorted() {
		m := r.metrics[full]
		byFam[m.family] = append(byFam[m.family], full)
	}
	famNames := make([]string, 0, len(byFam))
	for name := range byFam {
		famNames = append(famNames, name)
	}
	sort.Strings(famNames)

	var sb strings.Builder
	for _, name := range famNames {
		fam := r.fams[name]
		if fam.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", name, fam.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, fam.kind)
		for _, full := range byFam[name] {
			m := r.metrics[full]
			switch m.kind {
			case KindCounter:
				fmt.Fprintf(&sb, "%s %d\n", full, m.c.Value())
			case KindGauge:
				fmt.Fprintf(&sb, "%s %s\n", full, formatValue(m.g.Value()))
			case KindHistogram:
				cum := int64(0)
				for i, b := range m.h.bounds {
					cum += m.h.counts[i]
					fmt.Fprintf(&sb, "%s %d%s\n", histName(full, "_bucket", fmt.Sprintf("%d", b)), cum,
						exemplarSuffix(m.h, i))
				}
				cum += m.h.counts[len(m.h.bounds)]
				fmt.Fprintf(&sb, "%s %d%s\n", histName(full, "_bucket", "+Inf"), cum,
					exemplarSuffix(m.h, len(m.h.bounds)))
				fmt.Fprintf(&sb, "%s %d\n", histName(full, "_sum", ""), m.h.sum)
				fmt.Fprintf(&sb, "%s %d\n", histName(full, "_count", ""), m.h.n)
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// exemplarSuffix renders bucket i's worst exemplar in the OpenMetrics
// exemplar syntax (" # {trace_id=\"...\"} value"), or "" when the bucket
// has none — so histograms without exemplars export byte-identically to
// before exemplars existed.
func exemplarSuffix(h *Histogram, i int) string {
	e, ok := h.BucketExemplar(i)
	if !ok {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %d", e.TraceID, e.Value)
}

// JSONMetric is one entry of the JSON export: a flattened scalar with its
// owning instrument's kind.
type JSONMetric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
}

// JSONExemplar is one exported histogram exemplar: the owning metric, the
// bucket it annotates, and the (trace ID, value) pair.
type JSONExemplar struct {
	Metric  string `json:"metric"`
	LE      string `json:"le"`
	TraceID string `json:"trace_id"`
	Value   int64  `json:"value"`
}

// JSONExport is the document WriteJSON produces: the flattened snapshot
// plus any sampled time series and histogram exemplars. Exemplars are
// omitted entirely when no histogram retains any, so exports without them
// are byte-identical to the pre-exemplar format.
type JSONExport struct {
	Schema    string         `json:"schema"`
	Metrics   []JSONMetric   `json:"metrics"`
	Series    []Series       `json:"series,omitempty"`
	Exemplars []JSONExemplar `json:"exemplars,omitempty"`
}

// jsonSchema versions the export document.
const jsonSchema = "northup-metrics/v1"

// Export builds the JSON document from the registry's snapshot and an
// optional sampler's series (nil sampler contributes none).
func (r *Registry) Export(s *Sampler) *JSONExport {
	pts := r.Snapshot()
	doc := &JSONExport{Schema: jsonSchema, Metrics: make([]JSONMetric, 0, len(pts))}
	for _, p := range pts {
		doc.Metrics = append(doc.Metrics, JSONMetric{Name: p.Name, Kind: p.Kind.String(), Value: p.Value})
	}
	doc.Series = s.Series()
	doc.Exemplars = r.exemplars()
	return doc
}

// exemplars flattens every histogram bucket's retained exemplars, in
// sorted metric order then bucket order then rank order.
func (r *Registry) exemplars() []JSONExemplar {
	var out []JSONExemplar
	for _, full := range r.sorted() {
		m := r.metrics[full]
		if m.kind != KindHistogram || m.h.ex == nil {
			continue
		}
		for i, bucket := range m.h.ex {
			le := "+Inf"
			if i < len(m.h.bounds) {
				le = fmt.Sprintf("%d", m.h.bounds[i])
			}
			for _, e := range bucket {
				out = append(out, JSONExemplar{Metric: full, LE: le, TraceID: e.TraceID, Value: e.Value})
			}
		}
	}
	return out
}

// WriteJSON writes the registry (and optional sampler series) as indented
// JSON, deterministically: metrics are in snapshot (sorted-name) order and
// series in gauge-name order.
func (r *Registry) WriteJSON(w io.Writer, s *Sampler) error {
	data, err := json.MarshalIndent(r.Export(s), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
