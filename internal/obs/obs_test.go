package obs

import (
	"bytes"
	"strings"
	"testing"
)

// populate fills a registry with one instrument of each kind, labelled and
// bare, using interleaved registration order to exercise sorting.
func populate(r *Registry) {
	r.Counter("z_total", "a total", L("node", "1")).Add(5)
	r.Gauge("depth", "queue depth", L("node", "0")).Set(3)
	r.Histogram("span_ns", "span durations", []int64{10, 100, 1000}).Observe(7)
	r.Histogram("span_ns", "span durations", []int64{10, 100, 1000}).Observe(500)
	r.Counter("a_total", "another total").Add(2)
	r.Counter("z_total", "a total", L("node", "0")).Add(9)
	r.Gauge("rate", "a ratio").Set(0.375)
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "x", L("a", "1"), L("b", "2"))
	c2 := r.Counter("x_total", "x", L("b", "2"), L("a", "1")) // label order irrelevant
	if c1 != c2 {
		t.Fatal("same name+labels resolved to different counters")
	}
	c1.Add(3)
	if c2.Value() != 3 {
		t.Fatalf("aliased counter reads %d, want 3", c2.Value())
	}
	if r.Len() != 1 {
		t.Fatalf("registry holds %d metrics, want 1", r.Len())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "m")
}

func TestHistogramBucketMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "h", []int64{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different buckets did not panic")
		}
	}()
	r.Histogram("h", "h", []int64{1, 2, 4})
}

func TestCounterNegativePanics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter delta did not panic")
		}
	}()
	c.Add(-1)
}

// TestExportDeterminism builds the same registry twice with different
// registration order and asserts byte-identical Prometheus and JSON
// output — the property the committed baseline depends on.
func TestExportDeterminism(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	populate(a)
	// Same content, different registration order.
	b.Gauge("rate", "a ratio").Set(0.375)
	b.Gauge("depth", "queue depth", L("node", "0")).Set(3)
	b.Counter("a_total", "another total").Add(2)
	b.Counter("z_total", "a total", L("node", "0")).Add(9)
	b.Histogram("span_ns", "span durations", []int64{10, 100, 1000}).Observe(500)
	b.Histogram("span_ns", "span durations", []int64{10, 100, 1000}).Observe(7)
	b.Counter("z_total", "a total", L("node", "1")).Add(5)

	var pa, pb, ja, jb bytes.Buffer
	if err := a.WritePrometheus(&pa); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	if pa.String() != pb.String() {
		t.Fatalf("Prometheus exports differ:\n--- a ---\n%s--- b ---\n%s", pa.String(), pb.String())
	}
	if err := a.WriteJSON(&ja, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb, nil); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Fatalf("JSON exports differ:\n--- a ---\n%s--- b ---\n%s", ja.String(), jb.String())
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	populate(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		"a_total 2",
		"# TYPE depth gauge",
		`depth{node="0"} 3`,
		"rate 0.375",
		"# TYPE span_ns histogram",
		`span_ns_bucket{le="10"} 1`,
		`span_ns_bucket{le="100"} 1`,
		`span_ns_bucket{le="1000"} 2`,
		`span_ns_bucket{le="+Inf"} 2`,
		"span_ns_sum 507",
		"span_ns_count 2",
		`z_total{node="0"} 9`,
		`z_total{node="1"} 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// Families must appear in sorted order.
	ia, iz := strings.Index(out, "# TYPE a_total"), strings.Index(out, "# TYPE z_total")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("family order wrong:\n%s", out)
	}
}

func TestHistogramLabelledBucketNames(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_ns", "h", []int64{50}, L("cat", "xfer")).Observe(10)
	flat := r.Flatten()
	for _, want := range []string{
		`h_ns_bucket{cat="xfer",le="50"}`,
		`h_ns_bucket{cat="xfer",le="+Inf"}`,
		`h_ns_sum{cat="xfer"}`,
		`h_ns_count{cat="xfer"}`,
	} {
		if _, ok := flat[want]; !ok {
			t.Errorf("flatten missing %q; have %v", want, flat)
		}
	}
}

// TestMergeAssociative merges three registries in every order and asserts
// byte-identical exports: the cluster rollup must not depend on machine
// enumeration order.
func TestMergeAssociative(t *testing.T) {
	build := func(seed int64) *Registry {
		r := NewRegistry()
		r.Counter("moved_bytes_total", "bytes", L("node", "2")).Add(100 * seed)
		r.Counter("moved_bytes_total", "bytes", L("node", "3")).Add(10 + seed)
		h := r.Histogram("span_ns", "spans", []int64{100, 10000})
		h.Observe(seed * 90)
		h.Observe(seed * 9000)
		r.Gauge("depth", "depth").Set(float64(seed))
		// Windowed gauges as published by the ops plane merge like any
		// other gauge (summed across sources).
		r.Gauge("northup_window_arrivals", "windowed arrivals", L("tenant", "t")).Set(float64(seed * 7))
		return r
	}
	exportOf := func(order []int64) string {
		merged := NewRegistry()
		for _, seed := range order {
			merged.Merge(build(seed))
		}
		var buf bytes.Buffer
		if err := merged.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref := exportOf([]int64{1, 2, 3})
	for _, order := range [][]int64{{1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1}} {
		if got := exportOf(order); got != ref {
			t.Fatalf("merge order %v changed the export:\n--- ref ---\n%s--- got ---\n%s", order, ref, got)
		}
	}
	// Spot-check the merged values.
	merged := NewRegistry()
	for _, seed := range []int64{1, 2, 3} {
		merged.Merge(build(seed))
	}
	flat := merged.Flatten()
	if got := flat[`moved_bytes_total{node="2"}`]; got != 600 {
		t.Fatalf("merged counter = %v, want 600", got)
	}
	if got := flat["depth"]; got != 6 {
		t.Fatalf("merged gauge = %v, want 6", got)
	}
	if got := flat["span_ns_count"]; got != 6 {
		t.Fatalf("merged histogram count = %v, want 6", got)
	}
	if got := flat[`northup_window_arrivals{tenant="t"}`]; got != 42 {
		t.Fatalf("merged window gauge = %v, want 42", got)
	}
}

// TestMergeHistogramBucketMismatchPanics checks that folding together two
// histograms with different bucket layouts fails loudly instead of
// producing a silently corrupt distribution.
func TestMergeHistogramBucketMismatchPanics(t *testing.T) {
	for _, tc := range []struct {
		name   string
		bounds []int64
	}{
		{"different length", []int64{100}},
		{"different bounds", []int64{100, 20000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dst := NewRegistry()
			dst.Histogram("span_ns", "spans", []int64{100, 10000}).Observe(50)
			src := NewRegistry()
			src.Histogram("span_ns", "spans", tc.bounds).Observe(50)
			defer func() {
				if recover() == nil {
					t.Fatal("merge across bucket layouts did not panic")
				}
			}()
			dst.Merge(src)
		})
	}
}

func TestMergeIntoEmptyEqualsCopy(t *testing.T) {
	src := NewRegistry()
	populate(src)
	dst := NewRegistry()
	dst.Merge(src)
	var a, b bytes.Buffer
	if err := src.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := dst.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("merge into empty differs from source:\n--- src ---\n%s--- dst ---\n%s", a.String(), b.String())
	}
}

func TestSnapshotHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", []int64{10, 20, 30})
	for _, v := range []int64{5, 15, 15, 25, 99} {
		h.Observe(v)
	}
	flat := r.Flatten()
	if flat[`h_bucket{le="10"}`] != 1 || flat[`h_bucket{le="20"}`] != 3 ||
		flat[`h_bucket{le="30"}`] != 4 || flat[`h_bucket{le="+Inf"}`] != 5 {
		t.Fatalf("cumulative buckets wrong: %v", flat)
	}
	if flat["h_sum"] != 159 || flat["h_count"] != 5 {
		t.Fatalf("sum/count wrong: %v", flat)
	}
}
