package obs

// Histogram exemplars: each bucket optionally retains the top-K worst
// observations together with the trace ID of the job that produced them,
// so a latency histogram can name its p99 offenders instead of
// aggregating them away. ObserveExemplar is a strict superset of Observe
// — counts, sum and max are identical either way — so enabling exemplars
// never changes a histogram's numeric exports, quantiles or merges; only
// the exemplar annotations appear. Storage is lazy: a histogram that
// never sees ObserveExemplar carries no exemplar state at all.
//
// Selection is deterministic: within a bucket, exemplars are kept sorted
// by value descending, ties by trace ID ascending, capped at K. Merging
// two histograms merges their exemplar lists under the same order, so
// rollups stay associative and byte-stable.

// DefaultExemplarK is the per-bucket exemplar retention.
const DefaultExemplarK = 3

// Exemplar ties one observation to the trace ID that produced it.
type Exemplar struct {
	TraceID string `json:"trace_id"`
	Value   int64  `json:"value"`
}

// ObserveExemplar records one value exactly like Observe and, when
// traceID is non-empty, retains it as a candidate exemplar of its bucket.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	if h.ex == nil {
		h.ex = make([][]Exemplar, len(h.bounds)+1)
		h.exK = DefaultExemplarK
	}
	i := h.bucketIdx(v)
	h.ex[i] = insertExemplar(h.ex[i], Exemplar{TraceID: traceID, Value: v}, h.exK)
}

// bucketIdx returns the bucket an observation lands in (the same walk
// Observe does; the last index is the +Inf bucket).
func (h *Histogram) bucketIdx(v int64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// insertExemplar folds e into the sorted (value desc, trace ID asc) list,
// capped at k. A trace ID already present keeps only its worst value.
func insertExemplar(list []Exemplar, e Exemplar, k int) []Exemplar {
	for i, x := range list {
		if x.TraceID == e.TraceID {
			if e.Value <= x.Value {
				return list
			}
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	pos := len(list)
	for i, x := range list {
		if e.Value > x.Value || (e.Value == x.Value && e.TraceID < x.TraceID) {
			pos = i
			break
		}
	}
	list = append(list, Exemplar{})
	copy(list[pos+1:], list[pos:])
	list[pos] = e
	if len(list) > k {
		list = list[:k]
	}
	return list
}

// BucketExemplar returns the worst exemplar of bucket i (i in
// [0, len(bounds)]; the last index is +Inf), or false when the bucket has
// none.
func (h *Histogram) BucketExemplar(i int) (Exemplar, bool) {
	if h.ex == nil || i < 0 || i >= len(h.ex) || len(h.ex[i]) == 0 {
		return Exemplar{}, false
	}
	return h.ex[i][0], true
}

// TopExemplars returns the k worst exemplars across all buckets, value
// descending (ties by trace ID ascending).
func (h *Histogram) TopExemplars(k int) []Exemplar {
	if h.ex == nil || k <= 0 {
		return nil
	}
	var out []Exemplar
	for i := len(h.ex) - 1; i >= 0; i-- {
		for _, e := range h.ex[i] {
			out = insertExemplar(out, e, k)
		}
	}
	return out
}

// HasExemplars reports whether any bucket retains an exemplar.
func (h *Histogram) HasExemplars() bool {
	for _, b := range h.ex {
		if len(b) > 0 {
			return true
		}
	}
	return false
}

// mergeExemplars folds o's exemplars into h (same bucket layout, already
// checked by mergeOne).
func (h *Histogram) mergeExemplars(o *Histogram) {
	if o.ex == nil {
		return
	}
	if h.ex == nil {
		h.ex = make([][]Exemplar, len(h.bounds)+1)
		h.exK = o.exK
	}
	for i, bucket := range o.ex {
		for _, e := range bucket {
			h.ex[i] = insertExemplar(h.ex[i], e, h.exK)
		}
	}
}
