package obs

import (
	"testing"

	"repro/internal/sim"
)

// TestWindowDeltaOver drives a cumulative counter through step-boundary
// samples and checks the trailing delta at several widths, including the
// clipped (wider-than-history) case.
func TestWindowDeltaOver(t *testing.T) {
	w := NewWindow(10*sim.Second, sim.Second)
	// Cumulative value grows 0,1,3,6,10,... (+i at step i).
	v := 0.0
	for i := 0; i <= 5; i++ {
		v += float64(i)
		w.Record(sim.Time(i)*sim.Second, v)
	}
	if got := w.Latest(); got != 15 {
		t.Fatalf("Latest = %v, want 15", got)
	}
	// Trailing 2s: latest(15) - sample at t=3 (6) = 9.
	if got := w.DeltaOver(2 * sim.Second); got != 9 {
		t.Fatalf("DeltaOver(2s) = %v, want 9", got)
	}
	// Wider than history: clips to the oldest sample (0 at t=0).
	if got := w.DeltaOver(time100); got != 15 {
		t.Fatalf("DeltaOver(100s) = %v, want 15 (clipped)", got)
	}
	// Width 0: base is the latest sample itself, delta 0.
	if got := w.DeltaOver(0); got != 0 {
		t.Fatalf("DeltaOver(0) = %v, want 0", got)
	}
}

const time100 = 100 * sim.Second

// TestWindowRingEviction overfills the ring and checks that wide queries
// degrade to the oldest retained sample instead of reading stale slots.
func TestWindowRingEviction(t *testing.T) {
	w := NewWindow(3*sim.Second, sim.Second) // retains 5 samples
	for i := 0; i <= 9; i++ {
		w.Record(sim.Time(i)*sim.Second, float64(i))
	}
	// Oldest retained sample is t=5s, value 5; latest is 9.
	if got := w.DeltaOver(time100); got != 4 {
		t.Fatalf("clipped DeltaOver = %v, want 4 (latest 9 - oldest retained 5)", got)
	}
	if got := w.DeltaOver(2 * sim.Second); got != 2 {
		t.Fatalf("DeltaOver(2s) = %v, want 2", got)
	}
}

// TestWindowMaxOver checks the gauge-style windowed extreme.
func TestWindowMaxOver(t *testing.T) {
	w := NewWindow(10*sim.Second, sim.Second)
	for i, v := range []float64{1, 7, 3, 2, 5} {
		w.Record(sim.Time(i)*sim.Second, v)
	}
	if got := w.MaxOver(2 * sim.Second); got != 5 {
		t.Fatalf("MaxOver(2s) = %v, want 5 (samples 3,2,5)", got)
	}
	if got := w.MaxOver(time100); got != 7 {
		t.Fatalf("MaxOver(100s) = %v, want 7", got)
	}
}

// TestHistSnapshotSubQuantile observes two batches into one histogram and
// checks the subtracted snapshot isolates the second batch's distribution.
func TestHistSnapshotSubQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency", []int64{10, 100, 1000})
	h.Observe(5)
	h.Observe(5)
	h.Observe(5)
	base := h.Snap()
	h.Observe(500)
	h.Observe(500)
	cur := h.Snap()

	win := cur.Sub(base)
	if got := win.Count(); got != 2 {
		t.Fatalf("windowed Count = %d, want 2", got)
	}
	if got := win.Sum(); got != 1000 {
		t.Fatalf("windowed Sum = %d, want 1000", got)
	}
	// Both windowed observations land past the 100 bound; the estimate
	// clamps to the source's lifetime max (500) below the 1000 bound.
	if got := win.Quantile(0.5); got != 500 {
		t.Fatalf("windowed p50 = %d, want 500", got)
	}
	// The full histogram's p50 is still dominated by the early 5s.
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("lifetime p50 = %d, want 10", got)
	}
}

// TestHistSnapshotSubMismatchPanics mirrors Merge's contract: subtracting
// snapshots with different bucket layouts must fail loudly.
func TestHistSnapshotSubMismatchPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("a_ns", "a", []int64{10, 100}).Snap()
	b := r.Histogram("b_ns", "b", []int64{10, 100, 1000}).Snap()
	defer func() {
		if recover() == nil {
			t.Fatal("Sub across bucket layouts did not panic")
		}
	}()
	_ = b.Sub(a)
}

// TestHistWindowOver drives a snapshot ring and checks the windowed
// distribution at a narrow and a clipped width.
func TestHistWindowOver(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency", []int64{10, 100, 1000})
	w := NewHistWindow(h, 10*sim.Second, sim.Second)

	w.Record(0)
	h.Observe(5)
	w.Record(1 * sim.Second)
	h.Observe(500)
	h.Observe(500)
	w.Record(2 * sim.Second)

	// Trailing 1s: only the two 500s (quantile clamps to the lifetime max).
	s := w.Over(1 * sim.Second)
	if s.Count() != 2 || s.Quantile(0.5) != 500 {
		t.Fatalf("Over(1s): count=%d p50=%d, want 2 and 500", s.Count(), s.Quantile(0.5))
	}
	// Clipped: everything.
	s = w.Over(time100)
	if s.Count() != 3 {
		t.Fatalf("Over(100s): count=%d, want 3", s.Count())
	}
	// Before two snapshots exist the window is empty.
	w2 := NewHistWindow(h, sim.Second, sim.Second)
	w2.Record(0)
	if got := w2.Over(sim.Second).Count(); got != 0 {
		t.Fatalf("single-snapshot Over count = %d, want 0", got)
	}
}
