package cluster

import (
	"fmt"

	"repro/internal/apps/gemm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/view"
	"repro/internal/workload"
)

// DistributedGEMM computes C = A·B across the cluster: C's rows are
// partitioned over machines, A row-strips are scattered, B is broadcast,
// every machine runs a local out-of-core Northup computation on its own
// tree, and the C strips are gathered back — the classic 1-D decomposition,
// expressed with the same recursive per-node machinery as the single-node
// application.

// GEMMConfig parameterizes a distributed multiply.
type GEMMConfig struct {
	// N is the (square) matrix dimension; it must divide evenly by the
	// machine count and the shard sizes.
	N    int
	Seed int64
	// RowShard and ColShard bound the per-machine DRAM blocking (0 = auto
	// from the staging capacity).
	RowShard, ColShard int
}

// GEMMResult reports the distributed run.
type GEMMResult struct {
	// C is the assembled row-major product on the root machine (nil in
	// phantom mode).
	C []float32
	// Elapsed is the total virtual time, input distribution and result
	// gathering included.
	Elapsed sim.Time
	// DistributionTime covers scatter+broadcast; GatherTime the collect.
	DistributionTime, GatherTime sim.Time
	// ComputeTime is the span of the parallel local-compute phase.
	ComputeTime sim.Time
}

// DistributedGEMM runs the decomposition. Machine trees must be
// storage-rooted with a single staging child (the APU/NVM shapes).
func DistributedGEMM(cl *Cluster, cfg GEMMConfig) (*GEMMResult, error) {
	k := cl.Size()
	n := cfg.N
	if n <= 0 || n%(k*gemm.TileDim) != 0 {
		return nil, fmt.Errorf("cluster: N=%d must be a positive multiple of machines*%d", n, gemm.TileDim)
	}
	rows := n / k // C rows per machine
	elems := int64(n) * int64(n)
	stripBytes := int64(rows) * int64(n) * 4

	root := cl.Machine(0)
	functional := !root.RT.Phantom()

	// Column-shard width for the broadcast (B is presharded once at the
	// root, as in the single-node preprocessing).
	colShard := cfg.ColShard
	if colShard == 0 {
		colShard = autoColShard(cl, rows)
	}
	if n%colShard != 0 || colShard%gemm.TileDim != 0 {
		return nil, fmt.Errorf("cluster: column shard %d invalid for N=%d", colShard, n)
	}

	// Root-machine inputs.
	var aData, bPre []float32
	if functional {
		aData = workload.Dense(n, n, cfg.Seed)
		bPre = gemm.PreshardB(workload.Dense(n, n, cfg.Seed+1), n, colShard)
	}
	rootTree := root.Tree.Root()
	fA, err := root.RT.CreateInput(rootTree, "dist-A", elems*4, view.F32Bytes(aData))
	if err != nil {
		return nil, err
	}
	fB, err := root.RT.CreateInput(rootTree, "dist-B", elems*4, view.F32Bytes(bPre))
	if err != nil {
		return nil, err
	}
	fC, err := root.RT.CreateInput(rootTree, "dist-C", elems*4, nil)
	if err != nil {
		return nil, err
	}

	// Per-machine local files.
	aStrips := make([]*core.Buffer, k)
	bLocal := make([]*core.Buffer, k)
	cStrips := make([]*core.Buffer, k)
	for i := 0; i < k; i++ {
		m := cl.Machine(i)
		mr := m.Tree.Root()
		if aStrips[i], err = m.RT.CreateInput(mr, "dist-a-strip", stripBytes, nil); err != nil {
			return nil, err
		}
		if bLocal[i], err = m.RT.CreateInput(mr, "dist-b-local", elems*4, nil); err != nil {
			return nil, err
		}
		if cStrips[i], err = m.RT.CreateInput(mr, "dist-c-strip", stripBytes, nil); err != nil {
			return nil, err
		}
	}
	// Row-shard size used by every local run (identical capacities give
	// identical decisions; computing it once keeps assembly exact).
	rowShard := cfg.RowShard
	if rowShard == 0 {
		free := cl.Machine(0).Tree.Root().Children[0].Mem.Free()
		for s := rows; s >= gemm.TileDim; s -= gemm.TileDim {
			if rows%s != 0 {
				continue
			}
			if 4*(int64(s)*int64(n)*2+int64(s)*int64(colShard)) <= free*8/10 {
				rowShard = s
				break
			}
		}
		if rowShard == 0 {
			return nil, fmt.Errorf("cluster: no row shard fits the staging level for N=%d over %d machines", n, k)
		}
	}
	if rows%rowShard != 0 {
		return nil, fmt.Errorf("cluster: row shard %d does not divide strip of %d rows", rowShard, rows)
	}

	res := &GEMMResult{}

	elapsed, err := cl.Run("dist-gemm", func(p *sim.Proc) error {
		t0 := p.Now()
		// Distribute: scatter A strips (machine 0's slice stays in fA),
		// broadcast the presharded B.
		if err := cl.Scatter(p, 0, fA, aStrips, stripBytes); err != nil {
			return err
		}
		if err := cl.Broadcast(p, 0, fB, bLocal); err != nil {
			return err
		}
		res.DistributionTime = p.Now() - t0

		// Parallel local computation.
		t1 := p.Now()
		joins := make([]*core.Join, k)
		for i := 0; i < k; i++ {
			i := i
			m := cl.Machine(i)
			b := bLocal[i]
			if i == 0 {
				b = fB // root computes from its original copy
			}
			joins[i] = m.RT.Start(fmt.Sprintf("machine%d", i), func(c *core.Ctx) error {
				return localStripGEMM(c, aStrips[i], b, cStrips[i],
					rows, n, colShard, rowShard, functional)
			})
		}
		for _, j := range joins {
			if err := j.WaitOn(p); err != nil {
				return err
			}
		}
		res.ComputeTime = p.Now() - t1

		// Gather the C strips.
		t2 := p.Now()
		if err := cl.Gather(p, 0, cStrips, fC, stripBytes); err != nil {
			return err
		}
		res.GatherTime = p.Now() - t2
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = elapsed

	if functional {
		// Strips are block-major within each machine's slice; reassemble.
		raw := make([]float32, elems)
		if err := fC.File().Peek(view.F32Bytes(raw), 0); err != nil {
			return nil, err
		}
		res.C = assembleStrips(raw, n, k, colShard, rowShard)
	}
	return res, nil
}

// autoColShard picks the largest TileDim multiple that lets one row shard,
// two column shards and a C block fit the smallest machine's staging level.
func autoColShard(cl *Cluster, rows int) int {
	minFree := int64(1) << 62
	for i := 0; i < cl.Size(); i++ {
		free := cl.Machine(i).Tree.Root().Children[0].Mem.Free()
		if free < minFree {
			minFree = free
		}
	}
	n := rows * cl.Size()
	for w := n; w >= gemm.TileDim; w -= gemm.TileDim {
		if n%w != 0 {
			continue
		}
		s := rows
		if s > w {
			s = w
		}
		need := 4 * (int64(s)*int64(n) + 2*int64(n)*int64(w) + int64(s)*int64(w))
		if need <= minFree*8/10 {
			return w
		}
	}
	return gemm.TileDim
}

// localStripGEMM computes one machine's C strip (rows x n) = A strip
// (rows x n) · B (n x n, shard-major with width w) out of core: row shards
// of the strip stream through the staging level, each multiplied against
// every column shard. C blocks are written block-major into the strip file.
func localStripGEMM(c *core.Ctx, fa, fb, fc *core.Buffer, rows, n, w, s int, functional bool) error {
	dram := c.Children()[0]
	if s <= 0 || rows%s != 0 {
		return fmt.Errorf("cluster: row shard %d does not divide strip of %d rows", s, rows)
	}
	shardBytes := int64(s) * int64(n) * 4
	colBytes := int64(n) * int64(w) * 4
	blockBytes := int64(s) * int64(w) * 4
	nShards := rows / s
	nCols := n / w

	aBuf, err := c.AllocAt(dram, shardBytes)
	if err != nil {
		return err
	}
	defer c.Release(aBuf)
	bBuf, err := c.AllocAt(dram, colBytes)
	if err != nil {
		return err
	}
	defer c.Release(bBuf)
	cBuf, err := c.AllocAt(dram, blockBytes)
	if err != nil {
		return err
	}
	defer c.Release(cBuf)

	for si := 0; si < nShards; si++ {
		if err := c.MoveDataDown(aBuf, fa, 0, int64(si)*shardBytes, shardBytes); err != nil {
			return err
		}
		for j := 0; j < nCols; j++ {
			if err := c.MoveDataDown(bBuf, fb, 0, int64(j)*colBytes, colBytes); err != nil {
				return err
			}
			err := c.Descend(dram, func(lc *core.Ctx) error {
				var cv, av, bv []float32
				if functional {
					cv = view.F32(cBuf.Bytes())
					av = view.F32(aBuf.Bytes())
					bv = view.F32(bBuf.Bytes())
				}
				kern, groups := gemm.TileKernel(cv, av, bv, s, n, w, false)
				_, kerr := lc.LaunchKernel(kern, groups)
				return kerr
			})
			if err != nil {
				return err
			}
			off := (int64(si)*int64(nCols) + int64(j)) * blockBytes
			if err := c.MoveDataUp(fc, cBuf, off, 0, blockBytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// assembleStrips converts the gathered C file (strip-major, block-major
// within each strip) back to a row-major n x n matrix.
func assembleStrips(raw []float32, n, k, w, s int) []float32 {
	rows := n / k
	nCols := n / w
	out := make([]float32, n*n)
	for bi := 0; bi < k; bi++ {
		base := bi * rows * n
		for si := 0; si < rows/s; si++ {
			for j := 0; j < nCols; j++ {
				blockBase := base + (si*nCols+j)*s*w
				for r := 0; r < s; r++ {
					row := bi*rows + si*s + r
					copy(out[row*n+j*w:row*n+(j+1)*w],
						raw[blockBase+r*w:blockBase+(r+1)*w])
				}
			}
		}
	}
	return out
}
