package cluster

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// newMetricsCluster builds k APU machines with metrics on and runs a
// distributed GEMM so every machine accumulates real counters.
func newMetricsCluster(t *testing.T, k int) *Cluster {
	t.Helper()
	e := sim.NewEngine()
	opts := core.DefaultOptions()
	opts.Phantom = true
	opts.Metrics = obs.NewRegistry()
	cl, err := New(e, k, DefaultFabric(), opts, func(e *sim.Engine, i int) *topo.Tree {
		return topo.APU(e, topo.APUConfig{Storage: topo.SSD,
			StorageMiB: 8192, DRAMMiB: 512})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DistributedGEMM(cl, GEMMConfig{N: 1920, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestClusterPerMachineRegistries checks each machine carries its own
// registry with its own totals, and that the caller's template registry is
// not aliased into any machine.
func TestClusterPerMachineRegistries(t *testing.T) {
	cl := newMetricsCluster(t, 2)
	r0, r1 := cl.Machine(0).RT.Metrics(), cl.Machine(1).RT.Metrics()
	if r0 == nil || r1 == nil {
		t.Fatal("machines built without registries")
	}
	if r0 == r1 {
		t.Fatal("machines share one registry")
	}
	cl.Machine(0).RT.SyncMetrics()
	cl.Machine(1).RT.SyncMetrics()
	if r0.Flatten()[`northup_busy_ns_total{cat="gpu"}`] <= 0 {
		t.Fatal("machine 0 accumulated no GPU busy time")
	}
}

// TestClusterMergedMetricsRollsUp checks the cluster-wide registry holds
// the sum of the machines' counters and reconciles with each runtime's
// Breakdown.
func TestClusterMergedMetricsRollsUp(t *testing.T) {
	cl := newMetricsCluster(t, 3)
	merged := cl.MergedMetrics()
	if merged == nil {
		t.Fatal("MergedMetrics returned nil on a metrics-enabled cluster")
	}
	flat := merged.Flatten()
	var wantGPU int64
	for i := 0; i < cl.Size(); i++ {
		m := cl.Machine(i).RT
		wantGPU += int64(m.Metrics().Flatten()[`northup_busy_ns_total{cat="gpu"}`])
	}
	if got := int64(flat[`northup_busy_ns_total{cat="gpu"}`]); got != wantGPU {
		t.Fatalf("merged GPU busy %d, want sum of machines %d", got, wantGPU)
	}
}

// TestClusterMergeOrderIndependent is the rollup-associativity satellite:
// merging the machines' registries in any order yields byte-identical
// Prometheus exports.
func TestClusterMergeOrderIndependent(t *testing.T) {
	cl := newMetricsCluster(t, 3)
	for i := 0; i < cl.Size(); i++ {
		cl.Machine(i).RT.SyncMetrics()
	}
	exportOf := func(order []int) string {
		merged := obs.NewRegistry()
		for _, i := range order {
			merged.Merge(cl.Machine(i).RT.Metrics())
		}
		var buf bytes.Buffer
		if err := merged.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref := exportOf([]int{0, 1, 2})
	for _, order := range [][]int{{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		if got := exportOf(order); got != ref {
			t.Fatalf("merge order %v changed the cluster export", order)
		}
	}
	// And MergedMetrics (machine order) agrees with the reference.
	var buf bytes.Buffer
	if err := cl.MergedMetrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != ref {
		t.Fatal("MergedMetrics disagrees with a manual in-order merge")
	}
}

// TestClusterWithoutMetrics checks the nil path: no registry in opts means
// no per-machine registries and a nil rollup.
func TestClusterWithoutMetrics(t *testing.T) {
	cl := newCluster(t, 2, true, 16, 2)
	if cl.Machine(0).RT.Metrics() != nil {
		t.Fatal("registry appeared without opts.Metrics")
	}
	if cl.MergedMetrics() != nil {
		t.Fatal("MergedMetrics non-nil without opts.Metrics")
	}
}
