package cluster

import (
	"testing"

	"repro/internal/apps/gemm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// newCluster builds k identical APU machines on one engine.
func newCluster(t *testing.T, k int, phantom bool, storageMiB, dramMiB int64) *Cluster {
	t.Helper()
	e := sim.NewEngine()
	opts := core.DefaultOptions()
	opts.Phantom = phantom
	cl, err := New(e, k, DefaultFabric(), opts, func(e *sim.Engine, i int) *topo.Tree {
		return topo.APU(e, topo.APUConfig{Storage: topo.SSD,
			StorageMiB: storageMiB, DRAMMiB: dramMiB})
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestCollectivesMoveBytes(t *testing.T) {
	cl := newCluster(t, 3, false, 16, 2)
	const n = 3 * 1024
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	src, err := cl.Machine(0).RT.CreateInput(cl.Machine(0).Tree.Root(), "src", n, payload)
	if err != nil {
		t.Fatal(err)
	}
	dsts := make([]*core.Buffer, 3)
	for i := 0; i < 3; i++ {
		if dsts[i], err = cl.Machine(i).RT.CreateInput(cl.Machine(i).Tree.Root(), "dst", 1024, nil); err != nil {
			t.Fatal(err)
		}
	}
	gathered, err := cl.Machine(0).RT.CreateInput(cl.Machine(0).Tree.Root(), "gathered", n, nil)
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := cl.Run("coll", func(p *sim.Proc) error {
		if err := cl.Scatter(p, 0, src, dsts, 1024); err != nil {
			return err
		}
		return cl.Gather(p, 0, dsts, gathered, 1024)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("collectives took no time")
	}
	got := make([]byte, n)
	if err := gathered.File().Peek(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("scatter+gather corrupted byte %d", i)
		}
	}
	// Per-slice spot check: machine 1 received the middle slice.
	slice := make([]byte, 1024)
	if err := dsts[1].File().Peek(slice, 0); err != nil {
		t.Fatal(err)
	}
	if slice[0] != payload[1024] {
		t.Fatal("scatter slice misplaced")
	}
}

func TestDistributedGEMMMatchesReference(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		cl := newCluster(t, k, false, 64, 1)
		cfg := GEMMConfig{N: 256, Seed: 9}
		res, err := DistributedGEMM(cl, cfg)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := make([]float32, cfg.N*cfg.N)
		gemm.Reference(want, workload.Dense(cfg.N, cfg.N, cfg.Seed),
			workload.Dense(cfg.N, cfg.N, cfg.Seed+1), cfg.N, cfg.N, cfg.N)
		for i := range want {
			d := res.C[i] - want[i]
			if d > 0.05 || d < -0.05 {
				t.Fatalf("k=%d: distributed result differs from reference at %d", k, i)
			}
		}
		if res.ComputeTime <= 0 {
			t.Fatalf("k=%d: no compute span", k)
		}
		if k > 1 && res.DistributionTime <= 0 {
			t.Fatalf("k=%d: no distribution span", k)
		}
	}
}

func TestDistributedGEMMScales(t *testing.T) {
	// Strong scaling: more machines cut compute time, but broadcast of B
	// grows, so total speedup is sublinear — the classic communication
	// bound the paper's future-work direction would have to manage.
	run := func(k int) *GEMMResult {
		cl := newCluster(t, k, true, 8192, 512)
		res, err := DistributedGEMM(cl, GEMMConfig{N: 4096})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2, r4 := run(1), run(2), run(4)
	if !(r4.ComputeTime < r2.ComputeTime && r2.ComputeTime < r1.ComputeTime) {
		t.Fatalf("compute not scaling: %v %v %v",
			r1.ComputeTime, r2.ComputeTime, r4.ComputeTime)
	}
	if !(r4.Elapsed < r2.Elapsed && r2.Elapsed < r1.Elapsed) {
		t.Fatalf("total not improving: %v %v %v", r1.Elapsed, r2.Elapsed, r4.Elapsed)
	}
	ideal := float64(r1.Elapsed) / 4
	if float64(r4.Elapsed) <= ideal {
		t.Fatalf("4-machine run beat ideal scaling (%v <= %v): communication free?",
			r4.Elapsed, sim.Time(ideal))
	}
	if r4.DistributionTime <= r2.DistributionTime {
		t.Fatalf("broadcast cost did not grow with machines: %v vs %v",
			r4.DistributionTime, r2.DistributionTime)
	}
}

func TestFabricSlowerThanNVM(t *testing.T) {
	// §VI's premise, pinned as a property of the defaults: the network
	// link is slower than local NVM reads, so node-local staging wins.
	e := sim.NewEngine()
	nvmBW := topo.APUWithNVM(e, topo.NVMConfig{Storage: topo.SSD,
		StorageMiB: 16, NVMMiB: 8, DRAMMiB: 2}).Node(1).Mem.Profile().ReadBW
	if f := DefaultFabric(); f.BW >= nvmBW {
		t.Fatalf("fabric (%g B/s) not slower than NVM (%g B/s)", f.BW, nvmBW)
	}
}

func TestClusterValidation(t *testing.T) {
	e := sim.NewEngine()
	if _, err := New(e, 0, DefaultFabric(), core.DefaultOptions(), nil); err == nil {
		t.Fatal("zero machines accepted")
	}
	cl := newCluster(t, 2, true, 16, 2)
	if _, err := DistributedGEMM(cl, GEMMConfig{N: 100}); err == nil {
		t.Fatal("indivisible N accepted")
	}
}

func TestDistributedPhantomTimingMatchesFunctional(t *testing.T) {
	cfg := GEMMConfig{N: 256, Seed: 9}
	run := func(phantom bool) sim.Time {
		cl := newCluster(t, 2, phantom, 64, 1)
		res, err := DistributedGEMM(cl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if fun, ph := run(false), run(true); fun != ph {
		t.Fatalf("functional %v != phantom %v", fun, ph)
	}
}
