// Package cluster is a prototype of the paper's stated future work
// (§VII: "Future work includes extending the model to support distributed
// systems"): several simulated Northup machines connected by a network
// fabric, sharing one virtual clock.
//
// Each machine is a complete topological tree with its own runtime; the
// fabric provides timed point-to-point transfers and the collectives a
// distributed divide-and-conquer needs (scatter, broadcast, gather).
// Per §VI's observation that NVM bandwidth "is already beginning to eclipse
// available point-to-point network bandwidth", the default fabric is slower
// than the NVM device model — so keeping data node-local wins, which is the
// design pressure Northup's per-node hierarchy responds to.
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Fabric models the interconnect: full-duplex point-to-point links of the
// given bandwidth, with a per-message latency. Concurrency is limited to
// one in-flight transfer per (src,dst) direction pair, approximated by a
// capacity-per-machine resource.
type Fabric struct {
	BW      float64  // bytes/s per link
	Latency sim.Time // per-message cost

	ports []*sim.Resource // one per machine: serializes its NIC
}

// DefaultFabric returns an InfiniBand-class fabric: 5 GB/s per link, 2 µs
// latency — deliberately below the NVM profile's 6.5 GB/s read bandwidth.
func DefaultFabric() FabricSpec {
	return FabricSpec{BW: 5e9, Latency: sim.Microseconds(2)}
}

// FabricSpec parameterizes the fabric.
type FabricSpec struct {
	BW      float64
	Latency sim.Time
}

// Machine is one node of the cluster: a Northup tree and its runtime.
type Machine struct {
	ID   int
	Tree *topo.Tree
	RT   *core.Runtime
}

// Cluster holds the machines and fabric on one shared engine.
type Cluster struct {
	engine   *sim.Engine
	machines []*Machine
	fabric   *Fabric
}

// New builds a cluster of n machines. buildTree constructs machine i's
// topology on the shared engine; opts apply to every machine's runtime.
//
// A non-nil opts.Metrics turns continuous metrics on for the whole cluster,
// but each machine gets its own fresh registry (and, when opts.Sampler is
// set, its own sampler at the same tick) so per-machine accounting stays
// separable — read them via Machine(i).RT.Metrics(), and roll them up into
// one cluster-wide registry with MergedMetrics. The registry passed in opts
// itself is not shared with any machine.
func New(e *sim.Engine, n int, spec FabricSpec, opts core.Options,
	buildTree func(e *sim.Engine, i int) *topo.Tree) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: %d machines", n)
	}
	cl := &Cluster{
		engine: e,
		fabric: &Fabric{BW: spec.BW, Latency: spec.Latency},
	}
	for i := 0; i < n; i++ {
		mopts := opts
		if opts.Metrics != nil {
			mopts.Metrics = obs.NewRegistry()
			if opts.Sampler != nil {
				mopts.Sampler = obs.NewSampler(mopts.Metrics,
					obs.SamplerOptions{Tick: opts.Sampler.Tick()})
			}
		}
		tree := buildTree(e, i)
		cl.machines = append(cl.machines, &Machine{
			ID: i, Tree: tree, RT: core.NewRuntime(e, tree, mopts),
		})
		cl.fabric.ports = append(cl.fabric.ports, sim.NewResource(e, 1))
	}
	return cl, nil
}

// MergedMetrics syncs every machine's registry and merges them into one
// fresh cluster-wide registry: counters and histogram buckets add (the
// fixed bucket bounds make the merge associative, so the result is
// independent of machine order), and additive gauges like queue depth sum.
// Ratio gauges (cache hit rate, bandwidth utilization) are per-machine
// quantities; recompute cluster-wide ratios from the merged counters rather
// than reading them off the merged registry. Returns nil when the cluster
// was built without metrics.
func (cl *Cluster) MergedMetrics() *obs.Registry {
	merged := obs.NewRegistry()
	any := false
	for _, m := range cl.machines {
		reg := m.RT.Metrics()
		if reg == nil {
			continue
		}
		m.RT.SyncMetrics()
		merged.Merge(reg)
		any = true
	}
	if !any {
		return nil
	}
	return merged
}

// Size returns the machine count.
func (cl *Cluster) Size() int { return len(cl.machines) }

// Machine returns machine i.
func (cl *Cluster) Machine(i int) *Machine { return cl.machines[i] }

// Engine returns the shared engine.
func (cl *Cluster) Engine() *sim.Engine { return cl.engine }

// Run executes fn as the cluster coordinator process and drives the engine
// until everything spawned completes, returning the elapsed virtual time.
func (cl *Cluster) Run(name string, fn func(p *sim.Proc) error) (sim.Time, error) {
	start := cl.engine.Now()
	var err error
	cl.engine.Spawn(name, func(p *sim.Proc) { err = fn(p) })
	if derr := cl.engine.Run(); derr != nil {
		return 0, derr
	}
	if err != nil {
		return 0, err
	}
	return cl.engine.Now() - start, nil
}

// send charges a timed message of n bytes from machine src to machine dst:
// both NIC ports are held for the transfer duration.
func (cl *Cluster) send(p *sim.Proc, src, dst int, n int64) {
	if src == dst || n <= 0 {
		return
	}
	t := cl.fabric.Latency + sim.TransferTime(n, cl.fabric.BW)
	a, b := cl.fabric.ports[src], cl.fabric.ports[dst]
	// Deterministic lock order by machine ID avoids port deadlocks.
	first, second := a, b
	if dst < src {
		first, second = b, a
	}
	first.Acquire(p)
	second.Acquire(p)
	p.Sleep(t)
	second.Release()
	first.Release()
}

// TransferFile moves bytes between two machines' storage buffers: a timed
// read on the source machine's root device, the network message, and a
// timed write on the destination's, with the functional payload following
// when the runtimes are not phantom. Both buffers must be file-backed.
func (cl *Cluster) TransferFile(p *sim.Proc, dst *core.Buffer, dstMachine int,
	src *core.Buffer, srcMachine int, dstOff, srcOff, n int64) error {
	if n == 0 {
		return nil
	}
	if src.File() == nil || dst.File() == nil {
		return fmt.Errorf("cluster: TransferFile needs storage buffers on both machines")
	}
	srcRT := cl.machines[srcMachine].RT
	var payload []byte
	if !srcRT.Phantom() {
		payload = make([]byte, n)
		if err := src.File().Peek(payload, srcOff); err != nil {
			return err
		}
	}
	if err := src.File().Charge(p, device.Read, srcOff, n); err != nil {
		return err
	}
	cl.send(p, srcMachine, dstMachine, n)
	if err := dst.File().Charge(p, device.Write, dstOff, n); err != nil {
		return err
	}
	if payload != nil && !cl.machines[dstMachine].RT.Phantom() {
		if err := dst.File().Preload(payload, dstOff); err != nil {
			return err
		}
	}
	return nil
}

// Scatter distributes equal slices of a source buffer on machine root to
// each machine's destination buffer: slice i (size sliceBytes at offset
// i*sliceBytes) goes to machine i. Transfers proceed concurrently, bounded
// by the fabric ports.
func (cl *Cluster) Scatter(p *sim.Proc, rootMachine int, src *core.Buffer,
	dsts []*core.Buffer, sliceBytes int64) error {
	if len(dsts) != cl.Size() {
		return fmt.Errorf("cluster: scatter with %d destinations for %d machines",
			len(dsts), cl.Size())
	}
	wg := sim.NewWaitGroup(cl.engine)
	var firstErr error
	for i := range dsts {
		i := i
		wg.Add(1)
		cl.engine.Spawn(fmt.Sprintf("scatter-%d", i), func(sp *sim.Proc) {
			defer wg.Done()
			err := cl.TransferFile(sp, dsts[i], i, src, rootMachine,
				0, int64(i)*sliceBytes, sliceBytes)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	wg.Wait(p)
	return firstErr
}

// Broadcast copies a whole buffer from the root machine to every other
// machine's destination buffer.
func (cl *Cluster) Broadcast(p *sim.Proc, rootMachine int, src *core.Buffer,
	dsts []*core.Buffer) error {
	if len(dsts) != cl.Size() {
		return fmt.Errorf("cluster: broadcast with %d destinations for %d machines",
			len(dsts), cl.Size())
	}
	wg := sim.NewWaitGroup(cl.engine)
	var firstErr error
	for i := range dsts {
		i := i
		if i == rootMachine {
			continue
		}
		wg.Add(1)
		cl.engine.Spawn(fmt.Sprintf("bcast-%d", i), func(sp *sim.Proc) {
			defer wg.Done()
			err := cl.TransferFile(sp, dsts[i], i, src, rootMachine, 0, 0, src.Size())
			if err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	wg.Wait(p)
	return firstErr
}

// Gather collects each machine's source buffer into slice i of the root
// machine's destination buffer.
func (cl *Cluster) Gather(p *sim.Proc, rootMachine int, srcs []*core.Buffer,
	dst *core.Buffer, sliceBytes int64) error {
	if len(srcs) != cl.Size() {
		return fmt.Errorf("cluster: gather with %d sources for %d machines",
			len(srcs), cl.Size())
	}
	wg := sim.NewWaitGroup(cl.engine)
	var firstErr error
	for i := range srcs {
		i := i
		wg.Add(1)
		cl.engine.Spawn(fmt.Sprintf("gather-%d", i), func(sp *sim.Proc) {
			defer wg.Done()
			err := cl.TransferFile(sp, dst, rootMachine, srcs[i], i,
				int64(i)*sliceBytes, 0, sliceBytes)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	wg.Wait(p)
	return firstErr
}
