package proc

import (
	"fmt"

	"repro/internal/sim"
)

// FPGAModel is a reconfigurable accelerator: once configured with a
// bitstream for one kernel, it processes elements through a deep pipeline
// at a fixed initiation interval — extremely efficient for the configured
// computation, useless for anything else until reconfigured (which costs
// milliseconds). The paper's abstraction treats FPGAs as first-class leaf
// processors ("computation can be a standalone plug in ... regardless of
// which acceleration approach to use (FPGA, GPU, and other many-core
// processors)", §VII); this model makes that trade-off concrete.
type FPGAModel struct {
	Name string
	// ClockHz is the fabric clock.
	ClockHz float64
	// Lanes is how many pipeline instances fit the fabric.
	Lanes int
	// ReconfigTime is the cost of loading a new bitstream.
	ReconfigTime sim.Time
	// MemBW bounds streaming throughput from the attached memory.
	MemBW float64

	configured string
	reconfigs  int64
	busy       sim.Time
}

// NewFPGA builds an FPGA model bound (implicitly) to its leaf memory.
func NewFPGA(name string, clockHz float64, lanes int, membw float64, reconfig sim.Time) *FPGAModel {
	if lanes < 1 || clockHz <= 0 {
		panic("proc: underspecified FPGA")
	}
	return &FPGAModel{Name: name, ClockHz: clockHz, Lanes: lanes,
		MemBW: membw, ReconfigTime: reconfig}
}

// ProcName implements Processor.
func (f *FPGAModel) ProcName() string { return f.Name }

// ProcKind implements Processor.
func (f *FPGAModel) ProcKind() Kind { return FPGA }

// LLCSize implements Processor: on-fabric BRAM, the software/hardware
// management boundary at an FPGA leaf.
func (f *FPGAModel) LLCSize() int64 { return 4 << 20 }

var _ Processor = (*FPGAModel)(nil)

// Configured returns the currently loaded bitstream name ("" when blank).
func (f *FPGAModel) Configured() string { return f.configured }

// Reconfigs returns how many bitstream loads have been charged.
func (f *FPGAModel) Reconfigs() int64 { return f.reconfigs }

// BitstreamSpec describes one configured computation: elements emerge from
// the pipeline every II cycles per lane, each element touching the given
// bytes of memory traffic.
type BitstreamSpec struct {
	Name string
	// II is the initiation interval in cycles (1 = fully pipelined).
	II int
	// BytesPerElement bounds the memory side.
	BytesPerElement float64
}

// Run streams `elements` through the configured pipeline, charging
// reconfiguration first if a different bitstream is loaded. The functional
// body fn (may be nil) executes on the host, as with the other processor
// models.
func (f *FPGAModel) Run(p *sim.Proc, spec BitstreamSpec, elements int64, fn func()) (sim.Time, error) {
	if spec.Name == "" || spec.II < 1 {
		return 0, fmt.Errorf("proc: invalid bitstream %+v", spec)
	}
	var total sim.Time
	if f.configured != spec.Name {
		p.Sleep(f.ReconfigTime)
		f.configured = spec.Name
		f.reconfigs++
		total += f.ReconfigTime
	}
	if fn != nil {
		fn()
	}
	// Pipeline throughput: lanes elements per II cycles, bounded by memory.
	perSec := f.ClockHz / float64(spec.II) * float64(f.Lanes)
	t := sim.Seconds(float64(elements) / perSec)
	if f.MemBW > 0 {
		mem := sim.Seconds(float64(elements) * spec.BytesPerElement / f.MemBW)
		if mem > t {
			t = mem
		}
	}
	p.Sleep(t)
	f.busy += t
	total += t
	return total, nil
}

// Busy returns cumulative pipeline-busy time (excluding reconfiguration).
func (f *FPGAModel) Busy() sim.Time { return f.busy }
