package proc

import (
	"testing"

	"repro/internal/sim"
)

func TestCPUTaskTimeRoofline(t *testing.T) {
	e := sim.NewEngine()
	c := NewCPU(e, "c", 4, 1e9, 4e9, 1<<20)
	// Compute-bound: 1e9 flops on one core at 1e9 flop/s = 1s.
	if got := c.TaskTime(1e9, 0); got != sim.Second {
		t.Fatalf("compute-bound = %v", got)
	}
	// Memory-bound: 1e9 bytes at 1e9 B/s per core (4e9/4) = 1s.
	if got := c.TaskTime(0, 1e9); got != sim.Second {
		t.Fatalf("memory-bound = %v", got)
	}
	// Parallel: all 4 cores: 1e9 flops at 4e9 flop/s = 0.25s.
	if got := c.TaskTimeParallel(1e9, 0); got != sim.Second/4 {
		t.Fatalf("parallel = %v", got)
	}
}

func TestCPUChargeOccupiesCore(t *testing.T) {
	e := sim.NewEngine()
	c := NewCPU(e, "c", 1, 1e9, 1e9, 1<<20)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		e.Spawn("w", func(p *sim.Proc) {
			c.Charge(p, 1e9, 0)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != sim.Second || ends[1] != 2*sim.Second {
		t.Fatalf("single core did not serialize: %v", ends)
	}
}

func TestRunParallelGatesOtherWork(t *testing.T) {
	// RunParallel occupies every core: a concurrent single-core Charge
	// must wait for it.
	e := sim.NewEngine()
	c := NewCPU(e, "c", 4, 1e9, 4e9, 1<<20)
	var singleEnd sim.Time
	e.Spawn("parallel", func(p *sim.Proc) {
		c.RunParallel(p, 4e9, 0, nil) // 1s across all cores
	})
	e.Spawn("single", func(p *sim.Proc) {
		p.Sleep(1) // arrive just after the parallel region grabbed cores
		c.Charge(p, 1e9, 0)
		singleEnd = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if singleEnd < 2*sim.Second {
		t.Fatalf("single-core task finished at %v; parallel region did not gate it", singleEnd)
	}
}

func TestPIMKind(t *testing.T) {
	e := sim.NewEngine()
	pim := NewPIM(e, "p", 8, 1e9, 10e9)
	if pim.ProcKind() != PIM {
		t.Fatalf("kind = %v", pim.ProcKind())
	}
	if PIM.String() != "pim" || FPGA.String() != "fpga" {
		t.Fatal("kind names wrong")
	}
}

func TestFPGAPipelineThroughput(t *testing.T) {
	e := sim.NewEngine()
	f := NewFPGA("f", 200e6, 4, 0, 10*sim.Millisecond)
	var t1, t2 sim.Time
	ran := false
	e.Spawn("h", func(p *sim.Proc) {
		var err error
		// First run pays reconfiguration.
		t1, err = f.Run(p, BitstreamSpec{Name: "fir", II: 1}, 800e6, func() { ran = true })
		if err != nil {
			t.Error(err)
		}
		// Second run of the same bitstream does not.
		t2, err = f.Run(p, BitstreamSpec{Name: "fir", II: 1}, 800e6, nil)
		if err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("functional body skipped")
	}
	// 800e6 elements at 200 MHz x 4 lanes = 1s.
	if t2 != sim.Second {
		t.Fatalf("pipeline time %v, want 1s", t2)
	}
	if t1 != sim.Second+10*sim.Millisecond {
		t.Fatalf("first run %v, want 1.01s (with reconfig)", t1)
	}
	if f.Reconfigs() != 1 || f.Configured() != "fir" {
		t.Fatalf("reconfig bookkeeping: %d, %q", f.Reconfigs(), f.Configured())
	}
}

func TestFPGAReconfigurationCharged(t *testing.T) {
	e := sim.NewEngine()
	f := NewFPGA("f", 100e6, 1, 0, 50*sim.Millisecond)
	e.Spawn("h", func(p *sim.Proc) {
		f.Run(p, BitstreamSpec{Name: "a", II: 1}, 1000, nil)
		f.Run(p, BitstreamSpec{Name: "b", II: 1}, 1000, nil) // swap
		f.Run(p, BitstreamSpec{Name: "a", II: 1}, 1000, nil) // swap back
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Reconfigs() != 3 {
		t.Fatalf("reconfigs = %d, want 3", f.Reconfigs())
	}
	if e.Now() < 150*sim.Millisecond {
		t.Fatalf("reconfiguration time not charged: %v", e.Now())
	}
}

func TestFPGAMemoryBound(t *testing.T) {
	e := sim.NewEngine()
	f := NewFPGA("f", 1e9, 8, 1e9, 0) // fabric could do 8e9/s; memory caps at 1e9 B/s
	var elapsed sim.Time
	e.Spawn("h", func(p *sim.Proc) {
		elapsed, _ = f.Run(p, BitstreamSpec{Name: "x", II: 1, BytesPerElement: 8}, 1e9, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 8*sim.Second {
		t.Fatalf("memory-bound run %v, want 8s", elapsed)
	}
}

func TestFPGAValidation(t *testing.T) {
	e := sim.NewEngine()
	f := NewFPGA("f", 1e6, 1, 0, 0)
	var err error
	e.Spawn("h", func(p *sim.Proc) {
		_, err = f.Run(p, BitstreamSpec{Name: "", II: 0}, 10, nil)
	})
	if e.Run() != nil || err == nil {
		t.Fatal("invalid bitstream accepted")
	}
}
