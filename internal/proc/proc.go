// Package proc defines the processor abstraction attached to leaf nodes of
// the Northup tree (paper §III-B, Listing 1: processor_t) and the CPU model.
//
// The paper treats processors uniformly: a leaf queries the attached
// processor's type and launches the right kernel (§III-E). The GPU model
// lives in package gpu; both satisfy the Processor interface here.
package proc

import (
	"fmt"

	"repro/internal/sim"
)

// Kind identifies the processor class, mirroring the paper's processor_type.
type Kind int

const (
	// CPU is a general-purpose multicore processor.
	CPU Kind = iota
	// GPU is a throughput-oriented accelerator.
	GPU
	// FPGA is a reconfigurable accelerator (modeled, unused by the paper's
	// evaluation but part of the abstraction).
	FPGA
	// PIM is a processor-in-memory: modest arithmetic attached directly to
	// a memory node, with that memory's full internal bandwidth. §VI: "PIM
	// can be naturally supported as a Northup subtree."
	PIM
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	case FPGA:
		return "fpga"
	case PIM:
		return "pim"
	default:
		return fmt.Sprintf("proc(%d)", int(k))
	}
}

// Processor is any compute element attachable to a tree leaf.
type Processor interface {
	// ProcName returns a human-readable identifier.
	ProcName() string
	// ProcKind returns the processor class.
	ProcKind() Kind
	// LLCSize returns the last-level-cache (or local-memory) size in bytes,
	// the transition point from software- to hardware-managed memory.
	LLCSize() int64
}

// CPUModel is a simple throughput processor: a fixed number of cores (or
// in-memory compute units), each with a scalar arithmetic rate and a share
// of streaming bandwidth. It models both conventional CPUs and — with Kind
// set to PIM — processor-in-memory units, which differ only in their
// bandwidth-to-flops balance.
type CPUModel struct {
	Name     string
	Kind     Kind // CPU by default; PIM for in-memory compute
	Cores    int
	GFLOPS   float64 // per-core peak, in FLOP/s (not 1e9 FLOP/s)
	MemBW    float64 // aggregate bytes/s the cores can stream
	LLCBytes int64

	cores *sim.Resource
}

// NewCPU builds a CPU model bound to the engine. gflops is per-core FLOP/s;
// membw is aggregate streaming bandwidth in bytes/s.
func NewCPU(e *sim.Engine, name string, cores int, gflops, membw float64, llc int64) *CPUModel {
	if cores < 1 {
		panic("proc: CPU with no cores")
	}
	return &CPUModel{
		Name: name, Kind: CPU, Cores: cores, GFLOPS: gflops, MemBW: membw, LLCBytes: llc,
		cores: sim.NewResource(e, cores),
	}
}

// NewPIM builds a processor-in-memory model: units see the host memory
// node's internal bandwidth (pass the full device bandwidth) but have
// modest arithmetic. Attach it to the memory node it lives in; computation
// scheduled there skips the move to a leaf entirely.
func NewPIM(e *sim.Engine, name string, units int, gflops, membw float64) *CPUModel {
	m := NewCPU(e, name, units, gflops, membw, 256<<10)
	m.Kind = PIM
	return m
}

// ProcName implements Processor.
func (c *CPUModel) ProcName() string { return c.Name }

// ProcKind implements Processor.
func (c *CPUModel) ProcKind() Kind { return c.Kind }

// LLCSize implements Processor.
func (c *CPUModel) LLCSize() int64 { return c.LLCBytes }

// TaskTime returns the roofline time for one core to execute a task with
// the given arithmetic and traffic: max(compute, memory), where memory
// bandwidth is the aggregate divided evenly among cores.
func (c *CPUModel) TaskTime(flops, bytes float64) sim.Time {
	compute := sim.Seconds(flops / c.GFLOPS)
	mem := sim.Seconds(bytes / (c.MemBW / float64(c.Cores)))
	if mem > compute {
		return mem
	}
	return compute
}

// Charge occupies one core for the roofline time of the task. Use it when a
// simulation process plays the role of a CPU worker thread.
func (c *CPUModel) Charge(p *sim.Proc, flops, bytes float64) sim.Time {
	t := c.TaskTime(flops, bytes)
	c.cores.Use(p, t)
	return t
}

// Run executes fn functionally and charges one core for the roofline time.
// The functional work happens at virtual-time zero cost; only the model's
// time is charged, keeping function and timing separate.
func (c *CPUModel) Run(p *sim.Proc, flops, bytes float64, fn func()) sim.Time {
	if fn != nil {
		fn()
	}
	return c.Charge(p, flops, bytes)
}

// TaskTimeParallel returns the roofline time when the task is spread
// data-parallel across all cores/units: aggregate arithmetic against
// aggregate bandwidth.
func (c *CPUModel) TaskTimeParallel(flops, bytes float64) sim.Time {
	compute := sim.Seconds(flops / (c.GFLOPS * float64(c.Cores)))
	mem := sim.Seconds(bytes / c.MemBW)
	if mem > compute {
		return mem
	}
	return compute
}

// RunParallel executes fn functionally and occupies every core for the
// parallel roofline time — how PIM units process a resident chunk.
func (c *CPUModel) RunParallel(p *sim.Proc, flops, bytes float64, fn func()) sim.Time {
	if fn != nil {
		fn()
	}
	t := c.TaskTimeParallel(flops, bytes)
	for i := 0; i < c.Cores; i++ {
		c.cores.Acquire(p)
	}
	p.Sleep(t)
	for i := 0; i < c.Cores; i++ {
		c.cores.Release()
	}
	return t
}
