package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestFractionsSumToOne(t *testing.T) {
	var b Breakdown
	b.Add(GPUCompute, 55*sim.Millisecond)
	b.Add(IO, 30*sim.Millisecond)
	b.Add(Transfer, 12*sim.Millisecond)
	b.Add(BufferSetup, 2*sim.Millisecond)
	b.Add(Runtime, 1*sim.Millisecond)
	var sum float64
	for _, c := range Categories {
		sum += b.Fraction(c)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %g", sum)
	}
	if got := b.Fraction(GPUCompute); math.Abs(got-0.55) > 1e-9 {
		t.Fatalf("gpu fraction %g", got)
	}
}

func TestEmptyBreakdownSafe(t *testing.T) {
	var b Breakdown
	if b.Fraction(IO) != 0 || b.FractionOfTotal(IO) != 0 {
		t.Fatal("empty breakdown produced nonzero fractions")
	}
}

func TestFractionOfTotalWithOverlap(t *testing.T) {
	var b Breakdown
	b.Add(GPUCompute, 80*sim.Millisecond)
	b.Add(IO, 80*sim.Millisecond)
	b.SetTotal(100 * sim.Millisecond) // overlapped run
	if got := b.FractionOfTotal(GPUCompute); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("gpu of total = %g", got)
	}
	if b.Sum() != 160*sim.Millisecond {
		t.Fatalf("sum = %v", b.Sum())
	}
}

func TestMergeAndReset(t *testing.T) {
	var a, b Breakdown
	a.Add(CPUCompute, 10)
	b.Add(CPUCompute, 5)
	b.Add(IO, 7)
	a.Merge(&b)
	if a.Busy(CPUCompute) != 15 || a.Busy(IO) != 7 {
		t.Fatalf("merge result: cpu=%v io=%v", a.Busy(CPUCompute), a.Busy(IO))
	}
	a.Reset()
	if a.Sum() != 0 || a.Total() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var b Breakdown
	b.Add(IO, -1)
}

func TestReportContents(t *testing.T) {
	var b Breakdown
	b.Add(GPUCompute, 90*sim.Millisecond)
	b.Add(IO, 10*sim.Millisecond)
	b.SetTotal(100 * sim.Millisecond)
	r := b.Report()
	for _, frag := range []string{"gpu", "io", "90.0%", "10.0%", "elapsed"} {
		if !strings.Contains(r, frag) {
			t.Fatalf("report missing %q:\n%s", frag, r)
		}
	}
	s := b.String()
	if !strings.Contains(s, "gpu 90.0%") {
		t.Fatalf("String() = %s", s)
	}
}

func TestCacheStatsHitRateAndAny(t *testing.T) {
	var s CacheStats
	if s.Any() || s.HitRate() != 0 {
		t.Fatal("zero stats report activity")
	}
	s.Hits, s.Misses = 3, 1
	if !s.Any() {
		t.Fatal("hits not counted as activity")
	}
	if got := s.HitRate(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("hit rate %g", got)
	}
}

func TestCacheStatsDeltaMergeReset(t *testing.T) {
	var b Breakdown
	b.Cache().Hits = 10
	b.Cache().Misses = 4
	b.Cache().HitBytes = 4096
	prev := b
	b.Cache().Hits = 15
	b.Cache().Evictions = 2

	d := b.DeltaFrom(&prev)
	if d.Cache().Hits != 5 || d.Cache().Misses != 0 || d.Cache().Evictions != 2 {
		t.Fatalf("delta %+v", *d.Cache())
	}

	var m Breakdown
	m.Merge(&b)
	m.Merge(&b)
	if m.Cache().Hits != 30 || m.Cache().HitBytes != 8192 {
		t.Fatalf("merge %+v", *m.Cache())
	}

	b.Reset()
	if b.Cache().Any() {
		t.Fatal("reset left cache counters")
	}
}

func TestReportIncludesCacheLineOnlyWithTraffic(t *testing.T) {
	var b Breakdown
	b.Add(IO, 5*sim.Millisecond)
	if strings.Contains(b.Report(), "cache") {
		t.Fatal("cache line printed with no cache traffic")
	}
	b.Cache().Hits = 7
	b.Cache().Misses = 7
	rep := b.Report()
	if !strings.Contains(rep, "cache") || !strings.Contains(rep, "hits 7 (50.0%)") {
		t.Fatalf("cache line missing or wrong:\n%s", rep)
	}
}
