package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// This file writes and reads the Chrome trace_event JSON format (the
// "JSON Array Format" both chrome://tracing and Perfetto load): each tree
// node becomes a process, each of its lanes a thread, so a run renders as
// a Gantt chart of per-node timelines — the view that makes multi-stage
// transfer overlap (paper Fig. 5) visible instead of inferred.
//
// The writer is deterministic byte for byte: lanes are sorted, events are
// sorted by (start, emission sequence), floats are formatted from integer
// nanoseconds, and no map iteration order leaks into the output. Two runs
// of the same deterministic simulation therefore export identical files.

// ChromeExportOptions customizes the export.
type ChromeExportOptions struct {
	// NodeLabel names a tree node in the process metadata (e.g.
	// "node1(dram,L1)"). Nil falls back to "node<id>"; NoNode is always
	// labelled "runtime".
	NodeLabel func(node int) string

	// DroppedEvents is the recorder's Dropped() count at export time. It is
	// written into the file as metadata (droppedMetaName) so a saved trace
	// carries its own completeness: ValidateChromeTrace fails a trace whose
	// ring overflowed, instead of analyses silently running on a truncated
	// event stream.
	DroppedEvents int64
}

// droppedMetaName is the metadata event name carrying the ring's drop
// count through the trace file.
const droppedMetaName = "northup_dropped_events"

// catLabel is the "cat" field of an exported event.
func catLabel(ev Event) string {
	switch {
	case ev.Kind == KindInstant:
		return "instant"
	case ev.Kind == KindCounter:
		return "counter"
	case ev.Cat >= 0 && ev.Cat < numCategories:
		return ev.Cat.String()
	default:
		return "task"
	}
}

// tsMicros renders virtual nanoseconds as the microsecond float the
// trace_event format expects, exactly (three decimals cover nanosecond
// precision) and deterministically.
func tsMicros(t sim.Time) string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	return fmt.Sprintf("%s%d.%03d", neg, t/1000, t%1000)
}

// chromePID maps a lane node to an export process ID (pid 0 is the
// node-less runtime pseudo-process).
func chromePID(node int) int {
	if node == NoNode {
		return 0
	}
	return node + 1
}

// WriteChromeTrace writes the events as trace_event JSON loadable by
// Perfetto (https://ui.perfetto.dev) and chrome://tracing.
func WriteChromeTrace(w io.Writer, events []Event, opt ChromeExportOptions) error {
	// Lane inventory: tid per (node, track), assigned in sorted order so
	// the mapping is independent of emission order.
	lanes := map[Lane]bool{}
	for _, ev := range events {
		lanes[ev.Lane] = true
	}
	ordered := make([]Lane, 0, len(lanes))
	for l := range lanes {
		ordered = append(ordered, l)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Node != ordered[j].Node {
			return ordered[i].Node < ordered[j].Node
		}
		return ordered[i].Track < ordered[j].Track
	})
	tids := make(map[Lane]int, len(ordered))
	nextTID := map[int]int{} // per pid
	for _, l := range ordered {
		pid := chromePID(l.Node)
		nextTID[pid]++
		tids[l] = nextTID[pid]
	}

	sorted := append([]Event(nil), events...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Seq < sorted[j].Seq
	})

	bw := &errWriter{w: w}
	bw.printf("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	comma := func() {
		if !first {
			bw.printf(",")
		}
		first = false
	}

	// Completeness metadata: always present, so a reader can distinguish
	// "no drops" from "exporter predates drop accounting".
	comma()
	bw.printf(`{"ph":"M","pid":0,"name":%s,"args":{"value":%d}}`,
		jsonString(droppedMetaName), opt.DroppedEvents)

	// Metadata: process and thread names, in lane order.
	seenPID := map[int]bool{}
	for _, l := range ordered {
		pid := chromePID(l.Node)
		if !seenPID[pid] {
			seenPID[pid] = true
			label := "runtime"
			if l.Node != NoNode {
				if opt.NodeLabel != nil {
					label = opt.NodeLabel(l.Node)
				} else {
					label = fmt.Sprintf("node%d", l.Node)
				}
			}
			comma()
			bw.printf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
				pid, jsonString(label))
			comma()
			bw.printf(`{"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}}`,
				pid, pid)
		}
		comma()
		bw.printf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			pid, tids[l], jsonString(l.Track))
	}

	for _, ev := range sorted {
		pid, tid := chromePID(ev.Lane.Node), tids[ev.Lane]
		comma()
		switch ev.Kind {
		case KindSpan:
			bw.printf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"value":%d}}`,
				jsonString(ev.Name), jsonString(catLabel(ev)), tsMicros(ev.Start), tsMicros(ev.Dur),
				pid, tid, ev.Value)
		case KindInstant:
			bw.printf(`{"name":%s,"cat":"instant","ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{"value":%d}}`,
				jsonString(ev.Name), tsMicros(ev.Start), pid, tid, ev.Value)
		case KindCounter:
			bw.printf(`{"name":%s,"cat":"counter","ph":"C","ts":%s,"pid":%d,"tid":%d,"args":{%s:%d}}`,
				jsonString(ev.Name), tsMicros(ev.Start), pid, tid, jsonString(ev.Name), ev.Value)
		}
	}
	bw.printf("]}\n")
	return bw.err
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// errWriter latches the first write error so the export loop stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) printf(format string, args ...interface{}) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}

// ParsedTrace is a trace file read back into analyzable form.
type ParsedTrace struct {
	// Events are the reconstructed span/instant/counter events, in file
	// order (Seq reassigned sequentially).
	Events []Event
	// NodeLabels maps tree node IDs to the exported process names.
	NodeLabels map[int]string
	// Dropped is the recorder's drop count carried in the file's metadata
	// (0 for files written before drop accounting, and for complete traces).
	Dropped int64
}

// jsonEvent mirrors one trace_event entry for decoding.
type jsonEvent struct {
	Name string                     `json:"name"`
	Cat  string                     `json:"cat"`
	Ph   string                     `json:"ph"`
	TS   *float64                   `json:"ts"`
	Dur  *float64                   `json:"dur"`
	PID  int                        `json:"pid"`
	TID  int                        `json:"tid"`
	Args map[string]json.RawMessage `json:"args"`
}

// jsonTrace mirrors the file's top-level object.
type jsonTrace struct {
	TraceEvents []jsonEvent `json:"traceEvents"`
}

// microsToTime converts a trace_event microsecond float back to integer
// nanoseconds, rounding to the nearest.
func microsToTime(us float64) sim.Time {
	if us < 0 {
		return -microsToTime(-us)
	}
	return sim.Time(us*1000 + 0.5)
}

// ParseChromeTrace reads trace_event JSON written by WriteChromeTrace (or
// anything structurally compatible) back into events, so a saved trace can
// be summarised offline by northup-trace.
func ParseChromeTrace(data []byte) (*ParsedTrace, error) {
	var raw jsonTrace
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("trace: parsing trace_event JSON: %w", err)
	}
	pt := &ParsedTrace{NodeLabels: map[int]string{}}
	threadNames := map[[2]int]string{} // (pid, tid) -> track
	var seq uint64
	for i, je := range raw.TraceEvents {
		switch je.Ph {
		case "M":
			var name string
			if rawName, ok := je.Args["name"]; ok {
				_ = json.Unmarshal(rawName, &name)
			}
			switch je.Name {
			case "process_name":
				if je.PID > 0 {
					pt.NodeLabels[je.PID-1] = name
				}
			case "thread_name":
				threadNames[[2]int{je.PID, je.TID}] = name
			case droppedMetaName:
				if rawV, ok := je.Args["value"]; ok {
					_ = json.Unmarshal(rawV, &pt.Dropped)
				}
			}
		case "X", "i", "I", "C":
			if je.TS == nil {
				return nil, fmt.Errorf("trace: event %d (%q) has no ts", i, je.Name)
			}
			lane := Lane{Node: je.PID - 1, Track: threadNames[[2]int{je.PID, je.TID}]}
			if lane.Track == "" {
				lane.Track = fmt.Sprintf("tid%d", je.TID)
			}
			ev := Event{Name: je.Name, Lane: lane, Start: microsToTime(*je.TS), Cat: None, Seq: seq}
			seq++
			switch je.Ph {
			case "X":
				ev.Kind = KindSpan
				if je.Dur != nil {
					ev.Dur = microsToTime(*je.Dur)
				}
				if c, ok := ParseCategory(je.Cat); ok {
					ev.Cat = c
				}
				if rawV, ok := je.Args["value"]; ok {
					_ = json.Unmarshal(rawV, &ev.Value)
				}
			case "i", "I":
				ev.Kind = KindInstant
				if rawV, ok := je.Args["value"]; ok {
					_ = json.Unmarshal(rawV, &ev.Value)
				}
			case "C":
				ev.Kind = KindCounter
				if rawV, ok := je.Args[je.Name]; ok {
					_ = json.Unmarshal(rawV, &ev.Value)
				}
			}
			pt.Events = append(pt.Events, ev)
		default:
			// Other phases (flow, async, ...) are valid trace_event content
			// we simply do not produce; skip them.
		}
	}
	return pt, nil
}

// ValidateChromeTrace checks that data is structurally valid trace_event
// JSON of the subset this package writes: a traceEvents array whose entries
// carry a known phase, timestamps on all timed phases, non-negative
// durations, and thread metadata for every lane that events reference.
// It returns a descriptive error for the first violation.
func ValidateChromeTrace(data []byte) error {
	var raw jsonTrace
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if len(raw.TraceEvents) == 0 {
		return fmt.Errorf("trace: empty traceEvents array")
	}
	known := map[string]bool{"M": true, "X": true, "i": true, "I": true, "C": true}
	threads := map[[2]int]bool{}
	for _, je := range raw.TraceEvents {
		if je.Ph != "M" {
			continue
		}
		switch je.Name {
		case "thread_name":
			threads[[2]int{je.PID, je.TID}] = true
		case droppedMetaName:
			// An incomplete trace is an invalid trace: the ring overflowed
			// and analyses would silently run on a truncated event stream.
			var dropped int64
			if rawV, ok := je.Args["value"]; ok {
				_ = json.Unmarshal(rawV, &dropped)
			}
			if dropped > 0 {
				return fmt.Errorf("trace: incomplete: ring dropped %d event(s); raise the recorder's MaxEvents", dropped)
			}
		}
	}
	for i, je := range raw.TraceEvents {
		if !known[je.Ph] {
			return fmt.Errorf("trace: event %d (%q): unknown phase %q", i, je.Name, je.Ph)
		}
		if je.Ph == "M" {
			continue
		}
		if je.Name == "" {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		if je.TS == nil {
			return fmt.Errorf("trace: event %d (%q): missing ts", i, je.Name)
		}
		if *je.TS < 0 {
			return fmt.Errorf("trace: event %d (%q): negative ts %v", i, je.Name, *je.TS)
		}
		if je.Ph == "X" {
			if je.Dur == nil {
				return fmt.Errorf("trace: event %d (%q): complete event without dur", i, je.Name)
			}
			if *je.Dur < 0 {
				return fmt.Errorf("trace: event %d (%q): negative dur %v", i, je.Name, *je.Dur)
			}
		}
		if !threads[[2]int{je.PID, je.TID}] {
			return fmt.Errorf("trace: event %d (%q): no thread_name metadata for pid=%d tid=%d",
				i, je.Name, je.PID, je.TID)
		}
	}
	return nil
}

// LaneNames returns the distinct lanes referenced by the events, sorted.
func LaneNames(events []Event) []string {
	seen := map[string]bool{}
	for _, ev := range events {
		seen[ev.Lane.String()] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// sortEventsForAnalysis orders events by (Start, Seq), the canonical order
// of the metrics and critical-path passes.
func sortEventsForAnalysis(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// joinNonEmpty joins the non-empty strings with sep.
func joinNonEmpty(sep string, parts ...string) string {
	var keep []string
	for _, p := range parts {
		if p != "" {
			keep = append(keep, p)
		}
	}
	return strings.Join(keep, sep)
}
