package trace

import (
	"fmt"

	"repro/internal/sim"
)

// This file implements the event-level half of the package: where Breakdown
// answers "how much time went where in total", the Recorder answers "what
// happened when, and on which lane". Every simulated activity — transfers,
// I/O, kernel launches, allocations, cache fills, fault retries — is a span
// with a start and duration; steals, evictions and faults are instants;
// queue depths are counter samples. The stream is what the Chrome-trace
// exporter, the per-node metrics and the critical-path walker consume, and
// it is the single observation path profile-guided scheduling feeds from.
//
// The recorder is deterministic (events carry virtual time only), bounded
// (a ring buffer of configurable capacity; the oldest events are dropped
// and counted once it fills), and costs nothing when absent: the runtime
// guards every emission behind a nil check and uses only static name
// strings, so a disabled run performs no tracing work and no allocations.

// NoNode is the Lane.Node of activities not tied to a tree node (runtime
// bookkeeping, retry backoff).
const NoNode = -1

// Standard lane tracks. A Lane is (tree node, track); these constants name
// the tracks the runtime emits on. Worker-private lanes (per-workgroup
// task execution) use the worker's process name as the track instead.
const (
	TrackXfer    = "xfer"    // memory-to-memory transfers landing on the node
	TrackIO      = "io"      // file I/O on a storage node
	TrackAlloc   = "alloc"   // buffer setup
	TrackGPU     = "gpu"     // GPU kernel execution
	TrackCPU     = "cpu"     // CPU compute
	TrackPIM     = "pim"     // processor-in-memory compute
	TrackFPGA    = "fpga"    // FPGA pipeline execution
	TrackCache   = "cache"   // staging-cache hits/misses/evictions
	TrackRuntime = "runtime" // bookkeeping and retry backoff
	TrackTask    = "task"    // application-level task spans (chunks, stages)
	TrackQueue   = "queue"   // work-queue pops/steals/depth samples
	TrackStream  = "stream"  // streamed-move sub-chunk hops and ring telemetry
)

// Lane identifies one horizontal track of the execution timeline: a tree
// node plus an activity class on it. In the Chrome export a node becomes a
// process and each of its tracks a thread, so a run renders as a Gantt
// chart with distinct lanes per memory node and processor.
type Lane struct {
	// Node is the topo tree node ID, or NoNode.
	Node int
	// Track is the activity class within the node (TrackXfer, TrackGPU,
	// ... or a worker name).
	Track string
}

// String renders the lane as "node3/gpu".
func (l Lane) String() string {
	if l.Node == NoNode {
		return l.Track
	}
	return fmt.Sprintf("node%d/%s", l.Node, l.Track)
}

// EventKind distinguishes spans, instants and counter samples.
type EventKind uint8

const (
	// KindSpan is a completed activity with a start and a duration.
	KindSpan EventKind = iota
	// KindInstant is a point event (a steal, an eviction, a fault).
	KindInstant
	// KindCounter is a sampled value (queue depth).
	KindCounter
)

// None is the category of events that do not charge busy time: structural
// task spans (which would double-count the compute and transfer spans they
// contain), instants, and counters.
const None Category = -1

// Event is one element of the trace stream.
type Event struct {
	// Kind says whether Start/Dur describe a span, an instant, or a
	// counter sample.
	Kind EventKind
	// Cat is the busy-time category a span was charged to, or None.
	Cat Category
	// Name labels the event ("move", "kernel", "steal", ...). Emitters use
	// static strings so disabled tracing allocates nothing.
	Name string
	// Lane is the timeline track the event belongs to.
	Lane Lane
	// Start is the span start, or the instant/sample timestamp.
	Start sim.Time
	// Dur is the span duration (zero for instants and counters).
	Dur sim.Time
	// Value carries the span's payload bytes, the counter's sampled value,
	// or an emitter-specific detail (queue index, task size).
	Value int64
	// Seq is the emission sequence number, the deterministic tiebreaker
	// for events sharing a timestamp.
	Seq uint64
}

// End returns Start+Dur.
func (e Event) End() sim.Time { return e.Start + e.Dur }

// DefaultMaxEvents is the ring capacity when Options leaves it zero:
// enough for the repository's demo workloads without unbounded growth.
const DefaultMaxEvents = 1 << 19

// Options configures a Recorder.
type Options struct {
	// MaxEvents bounds the ring buffer; once full, the oldest events are
	// dropped (and counted in Dropped). Zero or negative selects
	// DefaultMaxEvents.
	MaxEvents int
}

// Recorder accumulates the event stream of a run. It must be driven from
// the single simulation goroutine (like every other simulation structure)
// and therefore needs no locking.
type Recorder struct {
	max     int
	buf     []Event // grows to max, then wraps
	head    int     // index of the oldest event once wrapped
	wrapped bool
	seq     uint64
	dropped int64
	busy    [numCategories]sim.Time
}

// NewRecorder returns an empty recorder with the given bounds.
func NewRecorder(o Options) *Recorder {
	max := o.MaxEvents
	if max <= 0 {
		max = DefaultMaxEvents
	}
	return &Recorder{max: max}
}

// Span records a completed activity on lane covering [start, end). Spans
// with a real category also accumulate into the recorder's own per-category
// busy totals, which stay exact even when the ring drops events — that is
// what the event-vs-Breakdown equality check audits.
func (r *Recorder) Span(lane Lane, cat Category, name string, start, end sim.Time, value int64) {
	if end < start {
		panic(fmt.Sprintf("trace: span %q on %v ends (%v) before it starts (%v)", name, lane, end, start))
	}
	if cat >= 0 && cat < numCategories {
		r.busy[cat] += end - start
	}
	r.emit(Event{Kind: KindSpan, Cat: cat, Name: name, Lane: lane,
		Start: start, Dur: end - start, Value: value})
}

// Instant records a point event on lane at time t.
func (r *Recorder) Instant(lane Lane, name string, t sim.Time, value int64) {
	r.emit(Event{Kind: KindInstant, Cat: None, Name: name, Lane: lane, Start: t, Value: value})
}

// Counter records a sampled value on lane at time t.
func (r *Recorder) Counter(lane Lane, name string, t sim.Time, value int64) {
	r.emit(Event{Kind: KindCounter, Cat: None, Name: name, Lane: lane, Start: t, Value: value})
}

// emit appends the event to the ring, dropping the oldest when full.
func (r *Recorder) emit(ev Event) {
	ev.Seq = r.seq
	r.seq++
	if len(r.buf) < r.max {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.head] = ev
	r.head = (r.head + 1) % r.max
	r.wrapped = true
	r.dropped++
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.buf) }

// Dropped returns how many events the bounded ring discarded.
func (r *Recorder) Dropped() int64 { return r.dropped }

// CategoryBusy returns the busy time accumulated by spans of the category,
// including spans the ring has since dropped.
func (r *Recorder) CategoryBusy(c Category) sim.Time {
	if c < 0 || c >= numCategories {
		return 0
	}
	return r.busy[c]
}

// Events returns the retained events in emission order (completion order
// for spans). The slice is a copy; callers may sort it freely.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.head:]...)
		out = append(out, r.buf[:r.head]...)
		return out
	}
	return append(out, r.buf...)
}

// Window returns the earliest start and latest end over the retained
// events, the default analysis window of the trace tools. ok is false for
// an empty recorder.
func (r *Recorder) Window() (start, end sim.Time, ok bool) {
	if len(r.buf) == 0 {
		return 0, 0, false
	}
	first := true
	for i := range r.buf {
		ev := &r.buf[i]
		if first || ev.Start < start {
			start = ev.Start
		}
		if first || ev.End() > end {
			end = ev.End()
		}
		first = false
	}
	return start, end, true
}

// Reset clears the ring, counters and totals between measured phases.
func (r *Recorder) Reset() {
	r.buf = r.buf[:0]
	r.head = 0
	r.wrapped = false
	r.seq = 0
	r.dropped = 0
	r.busy = [numCategories]sim.Time{}
}

// ParseCategory inverts Category.String; ok is false for labels that are
// not busy-time categories ("task", "instant", ...).
func ParseCategory(s string) (Category, bool) {
	for _, c := range Categories {
		if c.String() == s {
			return c, true
		}
	}
	return None, false
}
