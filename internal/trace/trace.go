// Package trace accumulates the execution-time breakdown of a Northup run:
// CPU compute, GPU compute, buffer setup, transfers, and I/O — the
// categories of the paper's Figures 7 and 8 — plus the runtime's own
// bookkeeping, which §V-B bounds below 1% of total execution.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Category labels one component of execution time.
type Category int

const (
	// CPUCompute is time spent computing on CPU cores.
	CPUCompute Category = iota
	// GPUCompute is time spent in GPU kernels.
	GPUCompute
	// PIMCompute is time spent on processor-in-memory units (§VI).
	PIMCompute
	// FPGACompute is time spent in configured FPGA pipelines (§VII's
	// "plug in ... regardless of which acceleration approach").
	FPGACompute
	// BufferSetup is allocation/creation of buffers at each level.
	BufferSetup
	// Transfer is memory-to-memory data movement (DMA, PCIe / "OpenCL
	// transfers" in the paper's Figure 8).
	Transfer
	// IO is file-storage traffic (open/read/write on SSD or disk).
	IO
	// Runtime is Northup bookkeeping: tree lookups, task control, queue
	// operations.
	Runtime

	numCategories
)

// Categories lists all categories in display order.
var Categories = []Category{CPUCompute, GPUCompute, PIMCompute, FPGACompute, BufferSetup, Transfer, IO, Runtime}

// String returns the category's display name.
func (c Category) String() string {
	switch c {
	case CPUCompute:
		return "cpu"
	case GPUCompute:
		return "gpu"
	case PIMCompute:
		return "pim"
	case FPGACompute:
		return "fpga"
	case BufferSetup:
		return "setup"
	case Transfer:
		return "transfer"
	case IO:
		return "io"
	case Runtime:
		return "runtime"
	default:
		return fmt.Sprintf("cat(%d)", int(c))
	}
}

// CacheStats counts staging-cache activity (package cache, wired through
// core): how often a MoveDataDownCached was served from a resident buffer
// instead of re-crossing the storage edge, and what the pool did to make
// room. Byte counters let reports weigh hits by traffic, not just count.
type CacheStats struct {
	// Hits is the number of cached fetches served from a resident buffer.
	Hits int64
	// Misses is the number of cached fetches that had to cross the edge.
	// A retried (fault-injected) fetch still counts as one miss.
	Misses int64
	// Evictions is the number of entries evicted to make room, including
	// evictions forced by allocation pressure from the allocator.
	Evictions int64
	// Prefetches is the number of lookahead fetches issued.
	Prefetches int64
	// PrefetchHits is the number of prefetched entries that later served a
	// demand fetch (Prefetches - PrefetchHits were wasted).
	PrefetchHits int64
	// Bypasses is the number of cached fetches that fell back to a plain
	// move because the extent could not be cached (pool too small, or
	// pinned entries blocked eviction).
	Bypasses int64
	// Invalidations is the number of entries dropped because their source
	// range was overwritten.
	Invalidations int64
	// PrefetchErrors is the number of lookahead fills that failed after
	// exhausting retries. Demand fetches are unaffected (they re-fetch and
	// surface their own error), so these are silent efficiency losses.
	PrefetchErrors int64
	// HitBytes and MissBytes weigh the counters by traffic.
	HitBytes  int64
	MissBytes int64
}

// Any reports whether the cache saw any traffic.
func (s CacheStats) Any() bool {
	return s.Hits+s.Misses+s.Prefetches+s.Bypasses+s.Invalidations > 0
}

// HitRate returns hits / (hits + misses), or 0 with no traffic.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// DeltaFrom returns the activity since prev was captured.
func (s CacheStats) DeltaFrom(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:           s.Hits - prev.Hits,
		Misses:         s.Misses - prev.Misses,
		Evictions:      s.Evictions - prev.Evictions,
		Prefetches:     s.Prefetches - prev.Prefetches,
		PrefetchHits:   s.PrefetchHits - prev.PrefetchHits,
		Bypasses:       s.Bypasses - prev.Bypasses,
		Invalidations:  s.Invalidations - prev.Invalidations,
		PrefetchErrors: s.PrefetchErrors - prev.PrefetchErrors,
		HitBytes:       s.HitBytes - prev.HitBytes,
		MissBytes:      s.MissBytes - prev.MissBytes,
	}
}

// add accumulates o into s (Breakdown.Merge's cache half).
func (s *CacheStats) add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Prefetches += o.Prefetches
	s.PrefetchHits += o.PrefetchHits
	s.Bypasses += o.Bypasses
	s.Invalidations += o.Invalidations
	s.PrefetchErrors += o.PrefetchErrors
	s.HitBytes += o.HitBytes
	s.MissBytes += o.MissBytes
}

// String renders a one-line summary.
func (s CacheStats) String() string {
	line := fmt.Sprintf("hits %d (%.1f%%) | misses %d | evictions %d | prefetches %d (%d hit) | bypasses %d | invalidations %d",
		s.Hits, 100*s.HitRate(), s.Misses, s.Evictions, s.Prefetches, s.PrefetchHits,
		s.Bypasses, s.Invalidations)
	if s.PrefetchErrors > 0 {
		line += fmt.Sprintf(" | prefetch-errors %d", s.PrefetchErrors)
	}
	return line
}

// Breakdown accumulates busy time per category over a run.
//
// Components may overlap in time (that is the point of multi-stage
// transfers), so the category sum can exceed the elapsed total; the paper's
// stacked-to-100% bars correspond to Fraction, which normalizes by the
// category sum.
type Breakdown struct {
	busy  [numCategories]sim.Time
	total sim.Time
	cache CacheStats
}

// Cache returns the breakdown's staging-cache counters for accumulation.
func (b *Breakdown) Cache() *CacheStats { return &b.cache }

// Add accumulates d into the category.
func (b *Breakdown) Add(c Category, d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("trace: negative duration %v for %v", d, c))
	}
	b.busy[c] += d
}

// Busy returns the accumulated busy time of a category.
func (b *Breakdown) Busy(c Category) sim.Time { return b.busy[c] }

// SetTotal records the elapsed (wall-clock, virtual) duration of the run.
func (b *Breakdown) SetTotal(d sim.Time) { b.total = d }

// Total returns the recorded elapsed duration.
func (b *Breakdown) Total() sim.Time { return b.total }

// Sum returns the sum of all category busy times.
func (b *Breakdown) Sum() sim.Time {
	var s sim.Time
	for _, t := range b.busy {
		s += t
	}
	return s
}

// Fraction returns the category's share of the busy sum, the quantity the
// paper's breakdown figures plot.
func (b *Breakdown) Fraction(c Category) float64 {
	s := b.Sum()
	if s == 0 {
		return 0
	}
	return float64(b.busy[c]) / float64(s)
}

// FractionOfTotal returns the category's share of elapsed time, which can
// exceed 1 summed across categories when activities overlap.
func (b *Breakdown) FractionOfTotal(c Category) float64 {
	if b.total == 0 {
		return 0
	}
	return float64(b.busy[c]) / float64(b.total)
}

// DeltaFrom returns a breakdown holding b's busy times minus prev's: the
// activity that happened between the two snapshots.
func (b *Breakdown) DeltaFrom(prev *Breakdown) Breakdown {
	var d Breakdown
	for i := range b.busy {
		d.busy[i] = b.busy[i] - prev.busy[i]
	}
	d.cache = b.cache.DeltaFrom(prev.cache)
	return d
}

// Merge adds another breakdown's busy times and cache counters into b
// (totals are not merged).
func (b *Breakdown) Merge(o *Breakdown) {
	for i := range b.busy {
		b.busy[i] += o.busy[i]
	}
	b.cache.add(o.cache)
}

// Reset zeroes all counters.
func (b *Breakdown) Reset() {
	b.busy = [numCategories]sim.Time{}
	b.total = 0
	b.cache = CacheStats{}
}

// String renders a one-line percentage summary, e.g.
// "cpu 2.1% | gpu 55.0% | setup 0.4% | transfer 12.0% | io 30.0% | runtime 0.5%".
func (b *Breakdown) String() string {
	parts := make([]string, 0, len(Categories))
	for _, c := range Categories {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", c, 100*b.Fraction(c)))
	}
	return strings.Join(parts, " | ")
}

// Report renders a multi-line table with absolute times and two shares:
// of the busy sum (the paper's stacked bars) and of elapsed time — the
// latter is what §V-B's "runtime bookkeeping below 1%" bounds, and can sum
// past 100% across categories when activities overlap.
func (b *Breakdown) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %14s %8s %11s\n", "component", "busy", "share", "of-elapsed")
	for _, c := range Categories {
		fmt.Fprintf(&sb, "%-10s %14v %7.1f%% %10.1f%%\n",
			c, b.busy[c], 100*b.Fraction(c), 100*b.FractionOfTotal(c))
	}
	fmt.Fprintf(&sb, "%-10s %14v\n", "elapsed", b.total)
	if b.cache.Any() {
		fmt.Fprintf(&sb, "%-10s %s\n", "cache", b.cache)
	}
	return sb.String()
}
