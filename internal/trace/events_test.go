package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRecorderSpanAccumulatesBusy(t *testing.T) {
	r := NewRecorder(Options{})
	l := Lane{Node: 1, Track: TrackGPU}
	r.Span(l, GPUCompute, "kernel", 100, 400, 64)
	r.Span(l, GPUCompute, "kernel", 500, 900, 64)
	r.Span(Lane{Node: 0, Track: TrackXfer}, Transfer, "move", 0, 250, 1024)
	r.Span(l, None, "task", 0, 900, 0) // structural span: no busy charge

	if got := r.CategoryBusy(GPUCompute); got != 700 {
		t.Fatalf("GPU busy = %v, want 700", got)
	}
	if got := r.CategoryBusy(Transfer); got != 250 {
		t.Fatalf("Transfer busy = %v, want 250", got)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	start, end, ok := r.Window()
	if !ok || start != 0 || end != 900 {
		t.Fatalf("Window = (%v, %v, %v), want (0, 900, true)", start, end, ok)
	}
}

func TestRecorderRingDropsOldestButKeepsTotals(t *testing.T) {
	r := NewRecorder(Options{MaxEvents: 4})
	l := Lane{Node: 0, Track: TrackCPU}
	for i := 0; i < 10; i++ {
		r.Span(l, CPUCompute, "step", sim.Time(i*10), sim.Time(i*10+5), 0)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	// Busy totals include the dropped spans (10 spans x 5ns each).
	if got := r.CategoryBusy(CPUCompute); got != 50 {
		t.Fatalf("CPU busy = %v, want 50", got)
	}
	// Events come back in emission order despite the wrap.
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	if evs[0].Start != 60 {
		t.Fatalf("oldest retained start = %v, want 60", evs[0].Start)
	}
}

func TestRecorderSpanPanicsOnNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on end < start")
		}
	}()
	NewRecorder(Options{}).Span(Lane{}, CPUCompute, "bad", 10, 5, 0)
}

func TestParseCategoryRoundTrips(t *testing.T) {
	for _, c := range Categories {
		got, ok := ParseCategory(c.String())
		if !ok || got != c {
			t.Fatalf("ParseCategory(%q) = (%v, %v), want (%v, true)", c.String(), got, ok, c)
		}
	}
	if _, ok := ParseCategory("task"); ok {
		t.Fatal("ParseCategory(task) should not match a busy category")
	}
}

// sampleEvents builds a small fixed stream used by the export tests.
func sampleEvents() []Event {
	r := NewRecorder(Options{})
	r.Span(Lane{Node: 1, Track: TrackXfer}, Transfer, "move", 0, 300, 4096)
	r.Span(Lane{Node: 1, Track: TrackGPU}, GPUCompute, "kernel", 300, 800, 0)
	r.Span(Lane{Node: 2, Track: TrackIO}, IO, "move", 0, 450, 8192)
	r.Instant(Lane{Node: 1, Track: TrackQueue}, "steal", 350, 2)
	r.Counter(Lane{Node: 1, Track: TrackQueue}, "depth", 400, 3)
	r.Span(Lane{NoNode, TrackRuntime}, Runtime, "bookkeeping", 800, 810, 0)
	return r.Events()
}

func TestChromeExportDeterministicAndValid(t *testing.T) {
	evs := sampleEvents()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, evs, ChromeExportOptions{}); err != nil {
		t.Fatal(err)
	}
	// Shuffle the input; the writer must normalise the order away.
	shuffled := append([]Event(nil), evs...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if err := WriteChromeTrace(&b, shuffled, ChromeExportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("export not deterministic under input reordering:\n%s\nvs\n%s", a.String(), b.String())
	}
	if err := ValidateChromeTrace(a.Bytes()); err != nil {
		t.Fatalf("export failed validation: %v", err)
	}
	for _, want := range []string{`"ph":"X"`, `"ph":"i"`, `"ph":"C"`, `"process_name"`, `"thread_name"`, `"displayTimeUnit":"ns"`} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("export missing %s:\n%s", want, a.String())
		}
	}
}

func TestChromeExportRoundTrip(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs, ChromeExportOptions{
		NodeLabel: func(n int) string { return fmt.Sprintf("mem%d", n) },
	}); err != nil {
		t.Fatal(err)
	}
	pt, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if pt.NodeLabels[1] != "mem1" || pt.NodeLabels[2] != "mem2" {
		t.Fatalf("node labels = %v", pt.NodeLabels)
	}
	if len(pt.Events) != len(evs) {
		t.Fatalf("round trip kept %d events, want %d", len(pt.Events), len(evs))
	}
	// Compare against the writer's canonical order.
	want := sortEventsForAnalysis(evs)
	for i, ev := range pt.Events {
		w := want[i]
		if ev.Kind != w.Kind || ev.Name != w.Name || ev.Lane != w.Lane ||
			ev.Start != w.Start || ev.Dur != w.Dur || ev.Value != w.Value {
			t.Fatalf("event %d round-tripped as %+v, want %+v", i, ev, w)
		}
		if ev.Kind == KindSpan && ev.Cat != w.Cat {
			t.Fatalf("event %d category round-tripped as %v, want %v", i, ev.Cat, w.Cat)
		}
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":         `{"traceEvents":`,
		"empty":            `{"traceEvents":[]}`,
		"unknown phase":    `{"traceEvents":[{"ph":"Z","name":"x","ts":1,"pid":1,"tid":1}]}`,
		"missing ts":       `{"traceEvents":[{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"t"}},{"ph":"X","name":"x","dur":1,"pid":1,"tid":1}]}`,
		"negative dur":     `{"traceEvents":[{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"t"}},{"ph":"X","name":"x","ts":1,"dur":-2,"pid":1,"tid":1}]}`,
		"orphan lane":      `{"traceEvents":[{"ph":"X","name":"x","ts":1,"dur":2,"pid":1,"tid":9}]}`,
		"span without dur": `{"traceEvents":[{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"t"}},{"ph":"X","name":"x","ts":1,"pid":1,"tid":1}]}`,
		"unnamed event":    `{"traceEvents":[{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"t"}},{"ph":"i","ts":1,"pid":1,"tid":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

func TestTsMicrosExact(t *testing.T) {
	cases := map[sim.Time]string{
		0:       "0.000",
		1:       "0.001",
		999:     "0.999",
		1000:    "1.000",
		1234567: "1234.567",
		-1500:   "-1.500",
	}
	for in, want := range cases {
		if got := tsMicros(in); got != want {
			t.Errorf("tsMicros(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSummarizeUtilizationAndUnion(t *testing.T) {
	r := NewRecorder(Options{})
	l := Lane{Node: 0, Track: TrackGPU}
	// Overlapping spans: [0,100) and [50,150) must union to 150, not 200.
	r.Span(l, GPUCompute, "kernel", 0, 100, 0)
	r.Span(l, GPUCompute, "kernel", 50, 150, 0)
	// A second lane defines the window end at 200.
	r.Span(Lane{Node: 0, Track: TrackXfer}, Transfer, "move", 0, 200, 2000)

	s := Summarize(r.Events(), SummaryOptions{})
	if s.Window() != 200 {
		t.Fatalf("window = %v, want 200", s.Window())
	}
	nm := s.Node(0)
	if nm == nil {
		t.Fatal("no node 0 metrics")
	}
	gpu := nm.Lane(TrackGPU)
	if gpu.Busy != 150 {
		t.Fatalf("gpu busy = %v, want 150 (interval union)", gpu.Busy)
	}
	if u := gpu.Utilization(s.Window()); u != 0.75 {
		t.Fatalf("gpu utilization = %v, want 0.75", u)
	}
	xfer := nm.Lane(TrackXfer)
	if xfer.Bytes != 2000 {
		t.Fatalf("xfer bytes = %d, want 2000", xfer.Bytes)
	}
	if bw := xfer.BandwidthGBs(); bw != 10 {
		t.Fatalf("xfer bandwidth = %v GB/s, want 10", bw)
	}
}

func TestSummarizeNeverExceedsFullUtilization(t *testing.T) {
	// Many random overlapping spans on one lane: union-based busy can
	// never exceed the window.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		r := NewRecorder(Options{})
		l := Lane{Node: 3, Track: TrackCPU}
		for i := 0; i < 40; i++ {
			start := sim.Time(rng.Intn(1000))
			dur := sim.Time(rng.Intn(500))
			r.Span(l, CPUCompute, "step", start, start+dur, 0)
		}
		s := Summarize(r.Events(), SummaryOptions{})
		for _, nm := range s.Nodes {
			for _, lm := range nm.Lanes {
				if u := lm.Utilization(s.Window()); u > 1.0 {
					t.Fatalf("trial %d: %v utilization %v > 1", trial, lm.Lane, u)
				}
			}
		}
	}
}

func TestSummarizeStealsAndQueueDepth(t *testing.T) {
	r := NewRecorder(Options{})
	ql := Lane{Node: 2, Track: TrackQueue}
	r.Instant(ql, "steal", 10, 0)
	r.Instant(ql, "steal", 20, 0)
	r.Counter(ql, "depth", 10, 4)
	r.Counter(ql, "depth", 20, 8)
	r.Counter(ql, "depth", 30, 0)
	r.Span(Lane{Node: 2, Track: TrackCPU}, CPUCompute, "w", 0, 40, 0)

	s := Summarize(r.Events(), SummaryOptions{})
	nm := s.Node(2)
	if nm.Steals != 2 || s.Steals != 2 {
		t.Fatalf("steals = %d/%d, want 2/2", nm.Steals, s.Steals)
	}
	if nm.QueueMax != 8 {
		t.Fatalf("queue max = %d, want 8", nm.QueueMax)
	}
	if nm.QueueMean != 4 {
		t.Fatalf("queue mean = %v, want 4", nm.QueueMean)
	}
	if !strings.Contains(s.Report(), "steals 2") {
		t.Fatalf("report missing steal line:\n%s", s.Report())
	}
}

func TestCriticalPathTilesWindow(t *testing.T) {
	r := NewRecorder(Options{})
	// load [0,100) -> compute [100,300) -> idle -> store [350,400)
	r.Span(Lane{Node: 1, Track: TrackXfer}, Transfer, "load", 0, 100, 100)
	r.Span(Lane{Node: 1, Track: TrackGPU}, GPUCompute, "compute", 100, 300, 0)
	r.Span(Lane{Node: 1, Track: TrackXfer}, Transfer, "store", 350, 400, 50)
	// A short span shadowed by compute must not appear on the path.
	r.Span(Lane{Node: 0, Track: TrackCPU}, CPUCompute, "minor", 120, 140, 0)

	p := CriticalPath(r.Events(), SummaryOptions{})
	if p.Length() != 400 {
		t.Fatalf("path length = %v, want 400", p.Length())
	}
	var covered sim.Time
	prev := p.Start
	for _, s := range p.Segments {
		if s.Start != prev {
			t.Fatalf("segments do not tile: gap/overlap at %v (segment starts %v)", prev, s.Start)
		}
		if s.End < s.Start {
			t.Fatalf("segment with negative length: %+v", s)
		}
		covered += s.Dur()
		prev = s.End
	}
	if prev != p.End || covered != p.Length() {
		t.Fatalf("segments cover %v ending %v, want %v ending %v", covered, prev, p.Length(), p.End)
	}
	if p.IdleTime() != 50 {
		t.Fatalf("idle = %v, want 50", p.IdleTime())
	}
	labels := make([]string, 0, len(p.Segments))
	for _, s := range p.Segments {
		labels = append(labels, s.Label())
	}
	got := strings.Join(labels, ",")
	want := "node1/xfer load,node1/gpu compute,idle,node1/xfer store"
	if got != want {
		t.Fatalf("path = %s, want %s", got, want)
	}
}

func TestCriticalPathRandomAlwaysEqualsMakespan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		r := NewRecorder(Options{})
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			start := sim.Time(rng.Intn(2000))
			dur := sim.Time(rng.Intn(800))
			lane := Lane{Node: rng.Intn(3), Track: TrackCPU}
			r.Span(lane, CPUCompute, "s", start, start+dur, 0)
		}
		start, end, _ := r.Window()
		p := CriticalPath(r.Events(), SummaryOptions{})
		if p.Length() != end-start {
			t.Fatalf("trial %d: path %v != makespan %v", trial, p.Length(), end-start)
		}
		var sum sim.Time
		prev := p.Start
		for _, s := range p.Segments {
			if s.Start != prev {
				t.Fatalf("trial %d: segments do not tile at %v", trial, prev)
			}
			sum += s.Dur()
			prev = s.End
		}
		if sum != p.Length() || prev != p.End {
			t.Fatalf("trial %d: segment sum %v != length %v", trial, sum, p.Length())
		}
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	p := CriticalPath(nil, SummaryOptions{})
	if p.Length() != 0 || len(p.Segments) != 0 {
		t.Fatalf("empty path = %+v", p)
	}
	// Report must not panic on an empty path.
	_ = p.Report(5)
}

func TestLaneString(t *testing.T) {
	if got := (Lane{Node: 3, Track: TrackGPU}).String(); got != "node3/gpu" {
		t.Fatalf("lane = %q", got)
	}
	if got := (Lane{Node: NoNode, Track: TrackRuntime}).String(); got != "runtime" {
		t.Fatalf("runtime lane = %q", got)
	}
}

// TestChromeExportDroppedEvents checks the completeness metadata: the drop
// count round-trips through the file, a clean trace validates, and a trace
// whose ring overflowed fails validation instead of silently analysing a
// truncated stream.
func TestChromeExportDroppedEvents(t *testing.T) {
	evs := sampleEvents()

	var clean bytes.Buffer
	if err := WriteChromeTrace(&clean, evs, ChromeExportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(clean.String(), `"northup_dropped_events"`) {
		t.Fatal("export missing the dropped-events metadata")
	}
	if err := ValidateChromeTrace(clean.Bytes()); err != nil {
		t.Fatalf("clean trace failed validation: %v", err)
	}
	pt, err := ParseChromeTrace(clean.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if pt.Dropped != 0 {
		t.Fatalf("clean trace parsed with Dropped=%d", pt.Dropped)
	}

	var lossy bytes.Buffer
	if err := WriteChromeTrace(&lossy, evs, ChromeExportOptions{DroppedEvents: 42}); err != nil {
		t.Fatal(err)
	}
	pt, err = ParseChromeTrace(lossy.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if pt.Dropped != 42 {
		t.Fatalf("Dropped round-tripped as %d, want 42", pt.Dropped)
	}
	err = ValidateChromeTrace(lossy.Bytes())
	if err == nil {
		t.Fatal("incomplete trace passed validation")
	}
	if !strings.Contains(err.Error(), "dropped 42") {
		t.Fatalf("validation error does not name the drop count: %v", err)
	}
}

// TestTopLanesOrderingAndTruncation checks the attribution ranking: busy
// desc, ties by node then track, zero-busy lanes skipped, k truncates.
func TestTopLanesOrderingAndTruncation(t *testing.T) {
	r := NewRecorder(Options{})
	// node0/gpu: overlapping spans union to 150.
	r.Span(Lane{Node: 0, Track: TrackGPU}, GPUCompute, "gemm", 0, 100, 0)
	r.Span(Lane{Node: 0, Track: TrackGPU}, GPUCompute, "gemm", 50, 150, 0)
	// node2/gpu: busy 150 too — ties break toward the lower node ID.
	r.Span(Lane{Node: 2, Track: TrackGPU}, GPUCompute, "gemm", 0, 150, 0)
	// node1/cpu: busy 100.
	r.Span(Lane{Node: 1, Track: TrackCPU}, CPUCompute, "sort", 0, 100, 0)
	// node0/xfer: busy 50.
	r.Span(Lane{Node: 0, Track: TrackXfer}, Transfer, "move", 100, 150, 500)

	s := Summarize(r.Events(), SummaryOptions{})
	want := []Lane{
		{Node: 0, Track: TrackGPU},
		{Node: 2, Track: TrackGPU},
		{Node: 1, Track: TrackCPU},
		{Node: 0, Track: TrackXfer},
	}
	top := s.TopLanes(0)
	if len(top) != len(want) {
		t.Fatalf("TopLanes(0) returned %d lanes, want %d", len(top), len(want))
	}
	for i, lm := range top {
		if lm.Lane != want[i] {
			t.Fatalf("rank %d = %v, want %v (full: %+v)", i, lm.Lane, want[i], top)
		}
	}
	if top[0].Busy != 150 || top[1].Busy != 150 {
		t.Fatalf("tied busy = %v/%v, want 150/150", top[0].Busy, top[1].Busy)
	}
	if got := s.TopLanes(2); len(got) != 2 || got[1].Lane != want[1] {
		t.Fatalf("TopLanes(2) = %+v, want first two ranks", got)
	}

	// Clip the window to [100, 150): node1/cpu leaves the union entirely
	// and must not appear.
	clipped := Summarize(r.Events(), SummaryOptions{Start: 100, End: 150})
	for _, lm := range clipped.TopLanes(0) {
		if lm.Lane == (Lane{Node: 1, Track: TrackCPU}) {
			t.Fatalf("zero-busy lane ranked in clipped window: %+v", lm)
		}
	}
	if got := clipped.TopLanes(1); len(got) != 1 || got[0].Busy != 50 {
		t.Fatalf("clipped TopLanes(1) = %+v, want one 50ns lane", got)
	}
}

// TestTopNamesAggregationAndClipping checks the kernel-level ranking:
// same-name spans sum (no interval union), clipping trims overlap, and
// fully-excluded names vanish.
func TestTopNamesAggregationAndClipping(t *testing.T) {
	r := NewRecorder(Options{})
	r.Span(Lane{Node: 0, Track: TrackGPU}, GPUCompute, "gemm", 0, 100, 0)
	r.Span(Lane{Node: 0, Track: TrackGPU}, GPUCompute, "gemm", 50, 150, 0)
	r.Span(Lane{Node: 1, Track: TrackCPU}, CPUCompute, "sort", 0, 100, 0)
	r.Span(Lane{Node: 0, Track: TrackXfer}, Transfer, "move", 0, 50, 500)

	// Full extent: concurrent gemm spans add to 200 (busy, not union).
	top := TopNames(r.Events(), 0, 0, 0)
	if len(top) != 3 {
		t.Fatalf("TopNames = %+v, want 3 entries", top)
	}
	if top[0].Name != "gemm" || top[0].Busy != 200 || top[0].Spans != 2 {
		t.Fatalf("top name = %+v, want gemm busy 200 over 2 spans", top[0])
	}
	if top[1].Name != "sort" || top[1].Busy != 100 {
		t.Fatalf("second name = %+v, want sort busy 100", top[1])
	}

	// k truncates.
	if got := TopNames(r.Events(), 0, 0, 1); len(got) != 1 || got[0].Name != "gemm" {
		t.Fatalf("TopNames(k=1) = %+v", got)
	}

	// Window [50, 150): gemm clips to 50+100, sort to 50, move drops out.
	win := TopNames(r.Events(), 50, 150, 0)
	if len(win) != 2 {
		t.Fatalf("windowed TopNames = %+v, want move excluded", win)
	}
	if win[0].Name != "gemm" || win[0].Busy != 150 {
		t.Fatalf("windowed gemm = %+v, want busy 150", win[0])
	}
	if win[1].Name != "sort" || win[1].Busy != 50 {
		t.Fatalf("windowed sort = %+v, want busy 50", win[1])
	}
}
