package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// This file walks the critical path of a run: the chain of spans (and idle
// gaps) that explains why the makespan is what it is. The simulator records
// no explicit dependency edges, so the walker uses the temporal structure
// instead: starting from the end of the window it repeatedly charges the
// interval back to the span that, among all spans starting earlier, ends
// latest — the activity whose completion gated that moment. Where no span
// covers an interval the path records an idle segment. The segments tile
// the window exactly, so the path length equals the virtual makespan by
// construction (the acceptance criterion northup-trace checks).

// PathSegment is one link of the critical path.
type PathSegment struct {
	// Start and End delimit the portion of the window this segment covers.
	Start, End sim.Time
	// Idle marks a gap no span covered.
	Idle bool
	// Span is the event the segment charges (zero value when Idle).
	Span Event
}

// Dur returns the segment length.
func (s PathSegment) Dur() sim.Time { return s.End - s.Start }

// Label names the segment for reports: "node1/gpu kernel" or "idle".
func (s PathSegment) Label() string {
	if s.Idle {
		return "idle"
	}
	return s.Span.Lane.String() + " " + s.Span.Name
}

// CritPath is the critical path of an event stream over a window.
type CritPath struct {
	// Start and End delimit the analysed window.
	Start, End sim.Time
	// Segments tile [Start, End] in chronological order.
	Segments []PathSegment
}

// Length returns End - Start; by construction it equals the sum of the
// segment durations.
func (p *CritPath) Length() sim.Time { return p.End - p.Start }

// IdleTime returns the total length of the idle segments.
func (p *CritPath) IdleTime() sim.Time {
	var t sim.Time
	for _, s := range p.Segments {
		if s.Idle {
			t += s.Dur()
		}
	}
	return t
}

// Contributor aggregates the path time charged to one (lane, name) pair.
type Contributor struct {
	// Label is the segment label ("node1/gpu kernel", "idle").
	Label string
	// Total is the path time the label accounts for.
	Total sim.Time
	// Count is the number of path segments with the label.
	Count int
}

// Top returns the n largest contributors to the path, by total time.
func (p *CritPath) Top(n int) []Contributor {
	acc := map[string]*Contributor{}
	for _, s := range p.Segments {
		label := s.Label()
		c := acc[label]
		if c == nil {
			c = &Contributor{Label: label}
			acc[label] = c
		}
		c.Total += s.Dur()
		c.Count++
	}
	out := make([]Contributor, 0, len(acc))
	for _, c := range acc {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Label < out[j].Label
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// CriticalPath computes the critical path of the spans in events over the
// window [opt.Start, opt.End] (both zero: the extent of the events).
// Instants and counters are ignored.
func CriticalPath(events []Event, opt SummaryOptions) *CritPath {
	spans := make([]Event, 0, len(events))
	lo, hi := opt.Start, opt.End
	auto := lo == 0 && hi == 0
	first := true
	for _, ev := range events {
		if ev.Kind != KindSpan {
			continue
		}
		spans = append(spans, ev)
		if auto {
			if first || ev.Start < lo {
				lo = ev.Start
			}
			if first || ev.End() > hi {
				hi = ev.End()
			}
			first = false
		}
	}
	p := &CritPath{Start: lo, End: hi}
	if hi <= lo {
		return p
	}

	// Sort by (Start, Seq) and precompute, for every prefix, which span ends
	// latest — the candidate that gates any instant after its start.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Seq < spans[j].Seq
	})
	bestEnd := make([]int, len(spans)) // bestEnd[k]: argmax End over spans[:k+1]
	for i := range spans {
		bestEnd[i] = i
		if i > 0 && spans[bestEnd[i-1]].End() >= spans[i].End() {
			bestEnd[i] = bestEnd[i-1]
		}
	}

	// Walk backward from the window end, charging each interval to the
	// latest-ending span that started before it; uncovered intervals become
	// idle segments. Every step strictly decreases t (chosen spans start
	// strictly before t; idle steps end strictly before t), so the walk
	// terminates and the emitted segments tile [lo, hi].
	t := hi
	for t > lo {
		// Spans with Start < t form the prefix [0, k).
		k := sort.Search(len(spans), func(i int) bool { return spans[i].Start >= t })
		if k == 0 {
			p.Segments = append(p.Segments, PathSegment{Start: lo, End: t, Idle: true})
			break
		}
		sp := spans[bestEnd[k-1]]
		if sp.End() < t {
			p.Segments = append(p.Segments, PathSegment{Start: sp.End(), End: t, Idle: true})
			t = sp.End()
			continue
		}
		segStart := sp.Start
		if segStart < lo {
			segStart = lo
		}
		p.Segments = append(p.Segments, PathSegment{Start: segStart, End: t, Span: sp})
		t = segStart
	}
	// The walk emitted segments latest-first; present them chronologically.
	for i, j := 0, len(p.Segments)-1; i < j; i, j = i+1, j-1 {
		p.Segments[i], p.Segments[j] = p.Segments[j], p.Segments[i]
	}
	return p
}

// Report renders the path summary: length, idle share, the top n
// contributors, and the chronological chain (elided in the middle when
// longer than 2n segments).
func (p *CritPath) Report(n int) string {
	if n <= 0 {
		n = 10
	}
	var sb strings.Builder
	length := p.Length()
	idle := p.IdleTime()
	fmt.Fprintf(&sb, "critical path: %v over [%v, %v] in %d segments",
		length, p.Start, p.End, len(p.Segments))
	if length > 0 {
		fmt.Fprintf(&sb, " (idle %v, %.1f%%)", idle, 100*float64(idle)/float64(length))
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "top contributors:\n")
	for _, c := range p.Top(n) {
		share := 0.0
		if length > 0 {
			share = 100 * float64(c.Total) / float64(length)
		}
		fmt.Fprintf(&sb, "  %-28s %14v %6.1f%%  (%d segments)\n", c.Label, c.Total, share, c.Count)
	}
	segs := p.Segments
	if len(segs) > 2*n {
		fmt.Fprintf(&sb, "chain (first and last %d of %d segments):\n", n, len(segs))
		segs = append(append([]PathSegment{}, segs[:n]...), segs[len(segs)-n:]...)
	} else {
		fmt.Fprintf(&sb, "chain:\n")
	}
	for _, s := range segs {
		fmt.Fprintf(&sb, "  [%12v +%12v] %s\n", s.Start, s.Dur(), s.Label())
	}
	return sb.String()
}
