package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// This file derives per-node metrics from the event stream: lane busy time
// and utilization (computed as an interval union, so overlapping spans on a
// lane can never push utilization past 100%), achieved transfer/IO
// bandwidth from span payload bytes, steal counts, and queue-depth
// statistics from counter samples. These are the numbers the ISSUE's
// "utilization table" prints and the property tests audit.

// LaneMetrics summarises one timeline lane over the analysis window.
type LaneMetrics struct {
	// Lane is the (node, track) the metrics describe.
	Lane Lane
	// Spans is the number of span events on the lane.
	Spans int
	// Busy is the union of the lane's span intervals clipped to the
	// window — concurrent spans are not double-counted, so
	// Busy <= window length always holds.
	Busy sim.Time
	// Bytes is the summed payload of the lane's spans (meaningful on
	// transfer/IO lanes, where emitters set Value to bytes moved).
	Bytes int64
}

// Utilization returns Busy as a fraction of the window ([0,1]).
func (m LaneMetrics) Utilization(window sim.Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(m.Busy) / float64(window)
}

// BandwidthGBs returns the lane's achieved bandwidth in GB/s (bytes over
// busy time), or 0 when the lane was never busy.
func (m LaneMetrics) BandwidthGBs() float64 {
	if m.Busy <= 0 {
		return 0
	}
	return float64(m.Bytes) / float64(m.Busy) // bytes/ns == GB/s
}

// NodeMetrics aggregates the lanes of one tree node.
type NodeMetrics struct {
	// Node is the topo node ID, or NoNode for the runtime pseudo-node.
	Node int
	// Lanes holds the node's lane metrics sorted by track name.
	Lanes []LaneMetrics
	// Steals counts "steal" instants attributed to the node.
	Steals int64
	// QueueSamples, QueueMax and QueueMean summarise the node's
	// queue-depth counter samples.
	QueueSamples int
	QueueMax     int64
	QueueMean    float64
}

// Lane returns the node's metrics for a track, or a zero value.
func (n *NodeMetrics) Lane(track string) LaneMetrics {
	for _, lm := range n.Lanes {
		if lm.Lane.Track == track {
			return lm
		}
	}
	return LaneMetrics{Lane: Lane{Node: n.Node, Track: track}}
}

// Summary is the derived-metrics view of an event stream.
type Summary struct {
	// Start and End delimit the analysis window.
	Start, End sim.Time
	// Nodes holds per-node metrics sorted by node ID (NoNode first).
	Nodes []NodeMetrics
	// Events, Spans, Instants and Counters count the analysed stream.
	Events, Spans, Instants, Counters int
	// Steals is the total steal count across nodes.
	Steals int64
	// NominalBW optionally maps a node to its nominal bandwidth in GB/s
	// for the "achieved vs nominal" column (set via SummaryOptions).
	NominalBW map[int]float64
}

// Window returns the analysis window length.
func (s *Summary) Window() sim.Time { return s.End - s.Start }

// Node returns the metrics of one node, or nil.
func (s *Summary) Node(id int) *NodeMetrics {
	for i := range s.Nodes {
		if s.Nodes[i].Node == id {
			return &s.Nodes[i]
		}
	}
	return nil
}

// SummaryOptions customises Summarize.
type SummaryOptions struct {
	// Start and End override the analysis window; both zero means "use the
	// extent of the events".
	Start, End sim.Time
	// NominalBW maps node IDs to nominal bandwidth (GB/s) for the
	// achieved-vs-nominal comparison. May be nil.
	NominalBW map[int]float64
}

// unionLen returns the total length of the union of [start,end) intervals,
// clipped to [lo, hi). ivs must be sorted by start.
func unionLen(ivs [][2]sim.Time, lo, hi sim.Time) sim.Time {
	var total sim.Time
	curLo, curHi := sim.Time(0), sim.Time(0)
	open := false
	for _, iv := range ivs {
		s, e := iv[0], iv[1]
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e <= s {
			continue
		}
		if !open {
			curLo, curHi, open = s, e, true
			continue
		}
		if s > curHi {
			total += curHi - curLo
			curLo, curHi = s, e
		} else if e > curHi {
			curHi = e
		}
	}
	if open {
		total += curHi - curLo
	}
	return total
}

// Summarize derives per-node metrics from an event stream.
func Summarize(events []Event, opt SummaryOptions) *Summary {
	s := &Summary{Start: opt.Start, End: opt.End, NominalBW: opt.NominalBW}
	if s.Start == 0 && s.End == 0 {
		first := true
		for _, ev := range events {
			if first || ev.Start < s.Start {
				s.Start = ev.Start
			}
			if first || ev.End() > s.End {
				s.End = ev.End()
			}
			first = false
		}
	}

	type laneAcc struct {
		spans int
		bytes int64
		ivs   [][2]sim.Time
	}
	type nodeAcc struct {
		lanes    map[string]*laneAcc
		steals   int64
		qSamples int
		qMax     int64
		qSum     int64
	}
	nodes := map[int]*nodeAcc{}
	getNode := func(id int) *nodeAcc {
		na := nodes[id]
		if na == nil {
			na = &nodeAcc{lanes: map[string]*laneAcc{}}
			nodes[id] = na
		}
		return na
	}

	for _, ev := range sortEventsForAnalysis(events) {
		s.Events++
		na := getNode(ev.Lane.Node)
		switch ev.Kind {
		case KindSpan:
			s.Spans++
			la := na.lanes[ev.Lane.Track]
			if la == nil {
				la = &laneAcc{}
				na.lanes[ev.Lane.Track] = la
			}
			la.spans++
			la.bytes += ev.Value
			la.ivs = append(la.ivs, [2]sim.Time{ev.Start, ev.End()})
		case KindInstant:
			s.Instants++
			if ev.Name == "steal" {
				na.steals++
				s.Steals++
			}
		case KindCounter:
			s.Counters++
			if ev.Lane.Track == TrackQueue {
				na.qSamples++
				na.qSum += ev.Value
				if ev.Value > na.qMax {
					na.qMax = ev.Value
				}
			}
		}
	}

	ids := make([]int, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		na := nodes[id]
		nm := NodeMetrics{Node: id, Steals: na.steals,
			QueueSamples: na.qSamples, QueueMax: na.qMax}
		if na.qSamples > 0 {
			nm.QueueMean = float64(na.qSum) / float64(na.qSamples)
		}
		tracks := make([]string, 0, len(na.lanes))
		for t := range na.lanes {
			tracks = append(tracks, t)
		}
		sort.Strings(tracks)
		for _, t := range tracks {
			la := na.lanes[t]
			// Spans are emitted at completion, so ivs is sorted by end, not
			// start; sort by start for the union walk.
			sort.Slice(la.ivs, func(i, j int) bool { return la.ivs[i][0] < la.ivs[j][0] })
			nm.Lanes = append(nm.Lanes, LaneMetrics{
				Lane:  Lane{Node: id, Track: t},
				Spans: la.spans,
				Bytes: la.bytes,
				Busy:  unionLen(la.ivs, s.Start, s.End),
			})
		}
		s.Nodes = append(s.Nodes, nm)
	}
	return s
}

// TopLanes returns the summary's k busiest lanes across all nodes, ranked
// by interval-union busy time (ties break by node ID, then track name, so
// the ranking is deterministic). Zero-busy lanes are skipped. This is the
// windowed attribution query the ops plane builds burn-window health
// reports from: the numbers are the Summary's own, bit for bit.
func (s *Summary) TopLanes(k int) []LaneMetrics {
	var all []LaneMetrics
	for _, nm := range s.Nodes {
		for _, lm := range nm.Lanes {
			if lm.Busy > 0 {
				all = append(all, lm)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Busy != b.Busy {
			return a.Busy > b.Busy
		}
		if a.Lane.Node != b.Lane.Node {
			return a.Lane.Node < b.Lane.Node
		}
		return a.Lane.Track < b.Lane.Track
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// NameAgg aggregates the spans sharing one name on one node within an
// analysis window: the kernel/move/stage-level counterpart of LaneMetrics.
type NameAgg struct {
	// Name is the span name ("kernel", "move", a task label...).
	Name string
	// Node is the lane node the spans ran on.
	Node int
	// Spans counts the aggregated spans.
	Spans int
	// Busy is the summed span duration clipped to the window. Unlike lane
	// busy it is not an interval union: concurrent same-name spans add, so
	// it answers "how much of this work ran", not "how long was the lane
	// occupied".
	Busy sim.Time
}

// TopNames returns the k span names with the most summed window-clipped
// duration in [start, end), aggregated by (name, node). Ties break by
// node, then name. Zero start and end mean "the events' full extent".
func TopNames(events []Event, start, end sim.Time, k int) []NameAgg {
	if start == 0 && end == 0 {
		first := true
		for _, ev := range events {
			if first || ev.Start < start {
				start = ev.Start
			}
			if first || ev.End() > end {
				end = ev.End()
			}
			first = false
		}
	}
	type key struct {
		name string
		node int
	}
	acc := map[key]*NameAgg{}
	for _, ev := range events {
		if ev.Kind != KindSpan {
			continue
		}
		s, e := ev.Start, ev.End()
		if s < start {
			s = start
		}
		if e > end {
			e = end
		}
		if e <= s {
			continue
		}
		kk := key{name: ev.Name, node: ev.Lane.Node}
		na := acc[kk]
		if na == nil {
			na = &NameAgg{Name: ev.Name, Node: ev.Lane.Node}
			acc[kk] = na
		}
		na.Spans++
		na.Busy += e - s
	}
	all := make([]NameAgg, 0, len(acc))
	for _, na := range acc {
		all = append(all, *na)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Busy != b.Busy {
			return a.Busy > b.Busy
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Name < b.Name
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Report renders the utilization table: one row per lane with busy time,
// utilization, moved bytes and achieved bandwidth (with the nominal figure
// alongside when known), followed by per-node steal and queue-depth lines.
func (s *Summary) Report() string {
	var sb strings.Builder
	window := s.Window()
	fmt.Fprintf(&sb, "window %v (%d events: %d spans, %d instants, %d counters)\n",
		window, s.Events, s.Spans, s.Instants, s.Counters)
	fmt.Fprintf(&sb, "%-18s %6s %14s %8s %10s %12s\n",
		"lane", "spans", "busy", "util", "bytes", "bandwidth")
	for _, nm := range s.Nodes {
		for _, lm := range nm.Lanes {
			bwCol := "-"
			// Payload/busy is a bandwidth only on movement lanes; on task or
			// alloc lanes Value is a work size, not bytes crossing an edge.
			if lm.Bytes > 0 && lm.Busy > 0 &&
				(lm.Lane.Track == TrackXfer || lm.Lane.Track == TrackIO) {
				bwCol = fmt.Sprintf("%.2fGB/s", lm.BandwidthGBs())
				if nom, ok := s.NominalBW[nm.Node]; ok && nom > 0 {
					bwCol = fmt.Sprintf("%.2f/%.0fGB/s", lm.BandwidthGBs(), nom)
				}
			}
			bytesCol := "-"
			if lm.Bytes > 0 {
				bytesCol = fmtBytes(lm.Bytes)
			}
			fmt.Fprintf(&sb, "%-18s %6d %14v %7.1f%% %10s %12s\n",
				lm.Lane, lm.Spans, lm.Busy, 100*lm.Utilization(window), bytesCol, bwCol)
		}
	}
	for _, nm := range s.Nodes {
		if nm.Steals == 0 && nm.QueueSamples == 0 {
			continue
		}
		label := "runtime"
		if nm.Node != NoNode {
			label = fmt.Sprintf("node%d", nm.Node)
		}
		fmt.Fprintf(&sb, "%-18s steals %d | queue depth max %d mean %.1f (%d samples)\n",
			label, nm.Steals, nm.QueueMax, nm.QueueMean, nm.QueueSamples)
	}
	return sb.String()
}
