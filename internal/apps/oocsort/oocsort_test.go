package oocsort

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func newSortRuntime(phantom bool, dramKiB int64) *core.Runtime {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64,
		DRAMMiB: (dramKiB + 1023) / 1024, WithCPU: true})
	opts := core.DefaultOptions()
	opts.Phantom = phantom
	return core.NewRuntime(e, tree, opts)
}

func isSorted(v []float32) bool {
	return sort.SliceIsSorted(v, func(i, j int) bool { return v[i] < v[j] })
}

func TestSortSingleChunk(t *testing.T) {
	// Everything fits one chunk: phase 1 alone sorts.
	rt := newSortRuntime(false, 1024)
	res, err := Run(rt, Config{N: 10_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1 || res.MergePasses != 0 {
		t.Fatalf("runs=%d passes=%d, want 1/0", res.Runs, res.MergePasses)
	}
	if !isSorted(res.Sorted) {
		t.Fatal("output not sorted")
	}
}

func TestSortMultiRunMerge(t *testing.T) {
	// Forces several runs and a combine pass; output must be the exact
	// multiset, sorted.
	rt := newSortRuntime(false, 64) // 64 KiB staging: ~8Ki-key chunks
	cfg := Config{N: 50_000, Seed: 2, ChunkKeys: 8_000, MergeBlockKeys: 1024}
	res, err := Run(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs < 2 {
		t.Fatalf("runs = %d, want >1", res.Runs)
	}
	if res.MergePasses < 1 {
		t.Fatal("no combine pass")
	}
	if !isSorted(res.Sorted) {
		t.Fatal("output not sorted")
	}
	want := Keys(cfg.N, cfg.Seed)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if res.Sorted[i] != want[i] {
			t.Fatalf("multiset mismatch at %d: %g vs %g", i, res.Sorted[i], want[i])
		}
	}
	bd := &res.Stats.Breakdown
	if bd.Busy(trace.GPUCompute) <= 0 || bd.Busy(trace.CPUCompute) <= 0 || bd.Busy(trace.IO) <= 0 {
		t.Fatalf("missing phases in breakdown: %s", bd)
	}
}

func TestSortMultiPassMerge(t *testing.T) {
	// A tiny merge buffer caps the fan-in, forcing recursion over passes.
	rt := newSortRuntime(false, 64)
	cfg := Config{N: 60_000, Seed: 3, ChunkKeys: 4_000, MergeBlockKeys: 30_000}
	res, err := Run(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MergePasses < 2 {
		t.Fatalf("merge passes = %d, want >= 2 (fan-in capped)", res.MergePasses)
	}
	if !isSorted(res.Sorted) {
		t.Fatal("output not sorted after multi-pass merge")
	}
}

func TestSortPhantomTimingMatches(t *testing.T) {
	cfg := Config{N: 50_000, Seed: 2, ChunkKeys: 8_000, MergeBlockKeys: 1024}
	fun, err := Run(newSortRuntime(false, 64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Run(newSortRuntime(true, 64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fun.Stats.Elapsed != ph.Stats.Elapsed {
		t.Fatalf("functional %v != phantom %v", fun.Stats.Elapsed, ph.Stats.Elapsed)
	}
	if ph.Sorted != nil {
		t.Fatal("phantom produced output")
	}
}

func TestSortValidation(t *testing.T) {
	rt := newSortRuntime(true, 64)
	if _, err := Run(rt, Config{N: 0}); err == nil {
		t.Fatal("zero N accepted")
	}
}

// BenchmarkSortPaperScale sorts a working set eight times the 2 GiB staging
// buffer in phantom mode (the out-of-core regime at realistic scale).
func BenchmarkSortPaperScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
			StorageMiB: 65536, DRAMMiB: 2048, WithCPU: true})
		opts := core.DefaultOptions()
		opts.Phantom = true
		rt := core.NewRuntime(e, tree, opts)
		res, err := Run(rt, Config{N: 4 << 30}) // 4Gi keys = 16 GiB
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Stats.Elapsed.Seconds(), "virtual-s")
		b.ReportMetric(float64(res.Runs), "runs")
		b.ReportMetric(float64(res.MergePasses), "merge-passes")
	}
}
