// Package oocsort implements out-of-core sorting as a fourth Northup
// application. The paper argues its framework "is generic to a variety of
// problems" (§IV); sorting exercises the one divide-and-conquer phase the
// three evaluation applications barely touch — the *combine* step
// ("finally, the solutions of subproblems are combined to generate the
// final result", §I):
//
//   - Divide: the key file is cut into staging-sized chunks.
//   - Conquer: each chunk moves to the leaf and is sorted there (a bitonic
//     GPU kernel in the cost model), then written back as a sorted run.
//   - Combine: runs k-way merge on the CPU, streaming block-buffered run
//     heads through the staging level; when more runs exist than the
//     staging level can buffer, merging recurses over multiple passes.
package oocsort

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/topo"
	"repro/internal/view"
)

// Config parameterizes a sort run.
type Config struct {
	// N is the number of float32 keys.
	N int
	// Seed drives input generation.
	Seed int64
	// ChunkKeys is the leaf-sort chunk size in keys (0 = derive from the
	// staging capacity).
	ChunkKeys int
	// MergeBlockKeys is the per-run streaming buffer during merges
	// (default 64Ki keys).
	MergeBlockKeys int
}

func (cfg *Config) setDefaults() error {
	if cfg.N <= 0 {
		return fmt.Errorf("oocsort: N=%d invalid", cfg.N)
	}
	if cfg.MergeBlockKeys <= 0 {
		cfg.MergeBlockKeys = 64 << 10
	}
	return nil
}

// Result carries a run's output and measurements.
type Result struct {
	// Sorted is the output (nil in phantom mode).
	Sorted []float32
	// Stats is the measured run.
	Stats core.RunStats
	// Runs is the number of sorted runs phase 1 produced; MergePasses how
	// many combine passes phase 2 needed.
	Runs, MergePasses int
}

// Keys generates the deterministic input sequence.
func Keys(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

// bitonicKernel models the leaf sort of one chunk: a bitonic network of
// log2^2/2 stages over the chunk, functionally a host sort.
func bitonicKernel(keys []float32, chunk int) (gpu.Kernel, int) {
	const groupKeys = 1024
	groups := (chunk + groupKeys - 1) / groupKeys
	stages := math.Log2(float64(chunk))
	kern := gpu.Kernel{
		Name:          "bitonic-sort",
		FlopsPerGroup: groupKeys * stages * (stages + 1) / 2,
		BytesPerGroup: groupKeys * 4 * stages, // one pass per merge stage
		LocalBytes:    groupKeys * 4,
	}
	if keys != nil {
		// Functionally the whole chunk is sorted once, by group 0; the
		// cost model still reflects the full network.
		kern.Run = func(g int) {
			if g == 0 {
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			}
		}
	}
	return kern, groups
}

// mergeCost returns the CPU roofline inputs for merging n keys from fanIn
// runs: ~log2(fanIn) comparisons per key, read+write traffic.
func mergeCost(n int64, fanIn int) (flops, bytes float64) {
	cmp := math.Log2(float64(fanIn))
	if cmp < 1 {
		cmp = 1
	}
	return float64(n) * cmp, float64(n) * 8
}

// Run executes the out-of-core sort on a 2-level (storage -> staging+GPU
// +CPU) tree.
func Run(rt *core.Runtime, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	root := rt.Tree().Root()
	if root.Store == nil {
		return nil, fmt.Errorf("oocsort: tree root %v is not storage", root)
	}
	dram := root.Children[0]
	functional := !rt.Phantom()
	n := cfg.N
	totalBytes := int64(n) * 4

	chunk := cfg.ChunkKeys
	if chunk == 0 {
		// One chunk buffer, double-buffered, within 90% of staging.
		free := dram.Mem.Free() * 9 / 10
		chunk = int(free / (2 * 4))
		if chunk > n {
			chunk = n
		}
		if chunk < 2 {
			return nil, fmt.Errorf("oocsort: staging level too small to sort")
		}
	}
	runs := (n + chunk - 1) / chunk

	var inputBytes []byte
	if functional {
		inputBytes = view.F32Bytes(Keys(n, cfg.Seed))
	}
	fIn, err := rt.CreateInput(root, "sort-in", totalBytes, inputBytes)
	if err != nil {
		return nil, err
	}
	// Two ping-pong run files for the merge passes.
	fPing, err := rt.CreateInput(root, "sort-ping", totalBytes, nil)
	if err != nil {
		return nil, err
	}
	fPong, err := rt.CreateInput(root, "sort-pong", totalBytes, nil)
	if err != nil {
		return nil, err
	}

	res := &Result{Runs: runs}
	stats, err := rt.Run("oocsort", func(c *core.Ctx) error {
		// Phase 1: sort chunks at the leaf, writing sorted runs to fPing.
		buf, err := c.AllocAt(dram, int64(chunk)*4)
		if err != nil {
			return err
		}
		for r := 0; r < runs; r++ {
			lo := r * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			bytes := int64(hi-lo) * 4
			if err := c.MoveDataDown(buf, fIn, 0, int64(lo)*4, bytes); err != nil {
				return err
			}
			err := c.Descend(dram, func(lc *core.Ctx) error {
				var keys []float32
				if functional {
					keys = view.F32(buf.Bytes())[:hi-lo]
				}
				kern, groups := bitonicKernel(keys, hi-lo)
				_, kerr := lc.LaunchKernel(kern, groups)
				return kerr
			})
			if err != nil {
				return err
			}
			if err := c.MoveDataUp(fPing, buf, int64(lo)*4, 0, bytes); err != nil {
				return err
			}
		}
		c.Release(buf)

		// Phase 2: combine. Merge up to fanIn runs per pass, ping-ponging
		// between the two run files, until one run remains.
		src, dst := fPing, fPong
		runLen := chunk
		liveRuns := runs
		for liveRuns > 1 {
			res.MergePasses++
			fanIn := maxFanIn(dram.Mem.Free(), cfg.MergeBlockKeys)
			if fanIn < 2 {
				return fmt.Errorf("oocsort: staging level cannot buffer two merge streams")
			}
			if err := mergePass(c, cfg, src, dst, n, runLen, fanIn, functional); err != nil {
				return err
			}
			src, dst = dst, src
			runLen *= fanIn
			liveRuns = (liveRuns + fanIn - 1) / fanIn
		}
		if src != fPing {
			// Result landed in fPong; expose it under fPing's role by one
			// last streamed copy (storage-to-storage through staging).
			if err := c.MoveData(fPing, src, 0, 0, totalBytes); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	if functional {
		out := make([]float32, n)
		if err := fPing.File().Peek(view.F32Bytes(out), 0); err != nil {
			return nil, err
		}
		res.Sorted = out
	}
	return res, nil
}

// maxFanIn returns how many run streams (plus one output stream) the
// staging level can block-buffer at once.
func maxFanIn(free int64, blockKeys int) int {
	streams := int(free * 9 / 10 / (int64(blockKeys) * 4))
	return streams - 1 // one stream is the output buffer
}

// mergePass merges consecutive groups of fanIn runs of runLen keys from src
// into dst. Functionally the merge is exact (block-buffered k-way); the
// timing charges block reads per stream, CPU merge work, and block writes.
func mergePass(c *core.Ctx, cfg Config, src, dst *core.Buffer, n, runLen, fanIn int, functional bool) error {
	dram := c.Node().Children[0]
	blockKeys := cfg.MergeBlockKeys
	for group := 0; group*runLen*fanIn < n; group++ {
		lo := group * runLen * fanIn
		hi := lo + runLen*fanIn
		if hi > n {
			hi = n
		}
		// Runs inside this group.
		type stream struct {
			pos, end int // key offsets in src
		}
		var streams []stream
		for s := lo; s < hi; s += runLen {
			e := s + runLen
			if e > hi {
				e = hi
			}
			streams = append(streams, stream{pos: s, end: e})
		}
		if len(streams) == 1 {
			// Lone run at the tail of the pass: copy through staging.
			if err := copyThrough(c, dram, dst, src, int64(lo)*4, int64(hi-lo)*4, blockKeys); err != nil {
				return err
			}
			if functional {
				region := make([]byte, (hi-lo)*4)
				if err := src.File().Peek(region, int64(lo)*4); err != nil {
					return err
				}
				if err := dst.File().Preload(region, int64(lo)*4); err != nil {
					return err
				}
			}
			continue
		}

		// Timing: every key is read once (block-granular I/O), merged on
		// the CPU, written once.
		keys := int64(hi - lo)
		blocks := func(k int64) int64 {
			b := int64(blockKeys)
			return (k + b - 1) / b
		}
		// Block reads per stream + block writes for the output.
		ioBuf, err := c.AllocAt(dram, int64(blockKeys)*4)
		if err != nil {
			return err
		}
		totalBlocks := blocks(keys) // output
		for _, st := range streams {
			totalBlocks += blocks(int64(st.end - st.pos))
		}
		for b := int64(0); b < totalBlocks; b++ {
			// Alternate read/write accounting over the same staging buffer;
			// offsets walk the group region so seek models stay honest.
			off := int64(lo)*4 + (b * int64(blockKeys) * 4 % (keys * 4))
			sz := int64(blockKeys) * 4
			if off+sz > int64(hi)*4 {
				sz = int64(hi)*4 - off
			}
			if sz <= 0 {
				continue
			}
			if b < totalBlocks-blocks(keys) {
				if err := c.MoveData(ioBuf, src, 0, off, sz); err != nil {
					return err
				}
			} else if err := c.MoveData(dst, ioBuf, off, 0, sz); err != nil {
				return err
			}
		}
		flops, bytes := mergeCost(keys, len(streams))
		if err := c.Descend(dram, func(dc *core.Ctx) error {
			_, err := dc.RunCPUParallel(flops, bytes, nil)
			return err
		}); err != nil {
			c.Release(ioBuf)
			return err
		}
		c.Release(ioBuf)

		// Functional merge, exact and independent of the timing model.
		if functional {
			merged := make([]float32, 0, keys)
			heads := make([]stream, len(streams))
			copy(heads, streams)
			// Read the whole group region once (functional only).
			region := make([]float32, keys)
			if err := src.File().Peek(view.F32Bytes(region), int64(lo)*4); err != nil {
				return err
			}
			idx := make([]int, len(streams))
			for i := range idx {
				idx[i] = heads[i].pos - lo
			}
			for len(merged) < int(keys) {
				best, bestVal := -1, float32(0)
				for i, st := range heads {
					if idx[i] >= st.end-lo {
						continue
					}
					v := region[idx[i]]
					if best == -1 || v < bestVal {
						best, bestVal = i, v
					}
				}
				merged = append(merged, bestVal)
				idx[best]++
			}
			if err := dst.File().Preload(view.F32Bytes(merged), int64(lo)*4); err != nil {
				return err
			}
		}
	}
	return nil
}

// copyThrough streams a region storage->staging->storage in blocks.
func copyThrough(c *core.Ctx, dram *topo.Node, dst, src *core.Buffer, off, size int64, blockKeys int) error {
	buf, err := c.AllocAt(dram, int64(blockKeys)*4)
	if err != nil {
		return err
	}
	defer c.Release(buf)
	for pos := int64(0); pos < size; pos += int64(blockKeys) * 4 {
		sz := int64(blockKeys) * 4
		if pos+sz > size {
			sz = size - pos
		}
		if err := c.MoveData(buf, src, 0, off+pos, sz); err != nil {
			return err
		}
		if err := c.MoveData(dst, buf, off+pos, 0, sz); err != nil {
			return err
		}
	}
	return nil
}
