package hotspot

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file implements the paper's load-balancing case study (§V-E,
// Figures 10 and 11): HotSpot-2D spread simultaneously over the CPU and the
// GPU of a shared-virtual-memory APU, with lock-free work stealing.
//
// Per Figure 10: when a chunk reaches main memory it is broken into rows of
// 16-tall blocks; each row is a task pushed onto one of several queues. GPU
// persistent workgroups and CPU threads pop tasks from the tails of their
// own queues; a GPU workgroup that runs dry steals from the head of a CPU
// queue (GPU workgroups process tasks faster, so stealing flows that way).

// StealMode selects the leaf execution strategy of a RunSteal.
type StealMode int

const (
	// GPUOnly runs all tasks on GPU queues (Fig. 11's baseline).
	GPUOnly StealMode = iota
	// CPUGPU spreads tasks over CPU and GPU queues with stealing.
	CPUGPU
)

// String names the mode.
func (m StealMode) String() string {
	if m == GPUOnly {
		return "gpu-only"
	}
	return "cpu+gpu"
}

// CPUThreads is the number of CPU worker threads (one per APU core).
const CPUThreads = 4

// StealConfig parameterizes a load-balancing run. M and ChunkDim correspond
// to the paper's (m, n): the square input lives on the SSD at dimension M
// and moves to main memory in ChunkDim-sized chunks.
type StealConfig struct {
	M        int
	ChunkDim int
	Seed     int64
	// Iters is the per-pass stencil iteration count (default 60).
	Iters int
	// GPUQueues is the number of GPU work queues (the paper sweeps 8, 16,
	// 32).
	GPUQueues int
	Mode      StealMode
	// Depth is the chunk pipeline depth (default 1).
	Depth int
}

func (cfg *StealConfig) setDefaults() error {
	if cfg.M <= 0 || cfg.ChunkDim <= 0 ||
		cfg.M%cfg.ChunkDim != 0 || cfg.ChunkDim%BlockDim != 0 {
		return fmt.Errorf("hotspot: invalid steal config M=%d chunk=%d", cfg.M, cfg.ChunkDim)
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 60
	}
	if cfg.GPUQueues <= 0 {
		cfg.GPUQueues = 32
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	return nil
}

// StealResult extends Result with scheduling statistics.
type StealResult struct {
	Result
	// Steals counts tasks taken from a victim queue's head.
	Steals int64
	// Pops counts tasks taken by their own queue's worker (the owner path);
	// Pops+Steals is the total task-execution count the deques saw.
	Pops int64
	// TasksByGPU and TasksByCPU count task executions per processor class.
	TasksByGPU, TasksByCPU int64
	// Failovers counts GPU-queue tasks executed by a CPU thread while the
	// GPU was offline (fault-injected outages only).
	Failovers int64
}

// rowTask identifies one row of BlockDim-tall tiles within the chunk.
type rowTask int

// stealAcross tries the other processor class's queues first, then the
// thief's siblings (skipping its own queue, index ownIdx). fromOther
// reports whether the task was taken from the other class — what failover
// accounting needs when the other class's processors are offline.
func stealAcross(other, siblings []*sched.Deque[rowTask], ownIdx int) (t rowTask, fromOther, ok bool) {
	for _, victim := range other {
		if t, ok := victim.StealHead(); ok {
			return t, true, true
		}
	}
	if t, _, ok := sched.StealFrom(siblings, ownIdx); ok {
		return t, false, true
	}
	return 0, false, false
}

// RunSteal executes the out-of-core stencil with queue-based leaf
// scheduling. The runtime's tree must be the APU topology with a CPU
// attached when Mode is CPUGPU.
func RunSteal(rt *core.Runtime, cfg StealConfig) (*StealResult, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	inner := Config{
		N: cfg.M, Seed: cfg.Seed, ChunkDim: cfg.ChunkDim,
		Iters: cfg.Iters, Depth: cfg.Depth,
	}
	root := rt.Tree().Root()
	if root.Store == nil {
		return nil, fmt.Errorf("hotspot: steal run needs a storage root")
	}
	res := &StealResult{}
	compute := func(lc *core.Ctx, blk *Block, d int) error {
		return stealCompute(lc, blk, d, cfg, res)
	}
	r, err := runChunked(rt, inner, compute)
	if err != nil {
		return nil, err
	}
	res.Result = *r
	return res, nil
}

// stealCompute runs cfg.Iters stencil iterations over one chunk using work
// queues. blk is nil in phantom mode.
func stealCompute(lc *core.Ctx, blk *Block, d int, cfg StealConfig, res *StealResult) error {
	g := lc.GPUModel()
	if g == nil {
		return fmt.Errorf("hotspot: no GPU at %v", lc.Node())
	}
	cpu := lc.CPUModel()
	if cfg.Mode == CPUGPU && cpu == nil {
		return fmt.Errorf("hotspot: CPU+GPU mode needs a CPU at the leaf (build the APU topology WithCPU)")
	}
	rows := d / BlockDim
	tilesPerRow := (d + BlockDim - 1) / BlockDim
	rowFlops := float64(TileFlops) * float64(tilesPerRow)
	rowBytes := float64(TileBytes) * float64(tilesPerRow)
	gpuTaskTime := g.GroupTaskTime(cfg.GPUQueues, rowFlops, rowBytes)
	var cpuTaskTime sim.Time
	if cpu != nil {
		cpuTaskTime = cpu.TaskTime(rowFlops, rowBytes)
	}

	engine := lc.Proc().Engine()

	// With fault injection active, the leaf scheduler degrades gracefully
	// when its GPU is taken offline: in CPUGPU mode offline workgroups stop
	// popping and their queued tasks fail over to the CPU threads through
	// the existing steal path; in GPUOnly mode there is nothing to fail over
	// to, so workgroups stall until the outage window closes.
	inj := lc.Runtime().Faults()
	nodeID := lc.Node().ID
	gpuOffline := func() (sim.Time, bool) {
		if inj == nil {
			return 0, false
		}
		return inj.ProcOfflineAt(nodeID, fault.ClassGPU, engine.Now())
	}

	nCPUQ := 0
	if cfg.Mode == CPUGPU {
		nCPUQ = CPUThreads
	}
	nq := cfg.GPUQueues + nCPUQ

	// Persistent queues for the chunk's lifetime (refilled every
	// iteration), GPU queues first, CPU queues after.
	tasks := make([]rowTask, rows)
	for i := range tasks {
		tasks[i] = rowTask(i)
	}
	queues := sched.Partition(tasks, nq, "q")
	gpuQueues := queues[:cfg.GPUQueues]
	cpuQueues := queues[cfg.GPUQueues:]

	// Expose the queues on the tree node so subtree load is observable, as
	// Listing 1's work_queue links intend. Attach/detach (rather than an
	// assignment) keeps the registration correct when several jobs schedule
	// on this node concurrently, and removes the monitors when the chunk is
	// done so no stale queues linger on the shared tree.
	monitors := make([]sched.Monitor, len(queues))
	for i, q := range queues {
		monitors[i] = q
	}
	detach := lc.Node().AttachQueues(monitors...)
	defer detach()

	// With tracing active, every steal becomes an instant on the victim
	// queue's lane; with metrics active, pushes/pops/steals maintain the
	// node's live depth gauge and the pop/steal totals. The depth goes
	// through this scheduler's own additive slot, so concurrent jobs on
	// the node sum instead of overwriting each other; Close withdraws the
	// contribution when the chunk is done. Hook closures are only built
	// when someone listens.
	rtm := lc.Runtime()
	traceOn := rtm.TraceRecorder() != nil
	metricsOn := rtm.MetricsEnabled()
	depthSlot := rtm.NewQueueDepthSlot(nodeID)
	defer depthSlot.Close()
	if traceOn || metricsOn {
		noteDepth := func() {
			if metricsOn {
				depthSlot.Set(int64(sched.TotalLen(queues)))
			}
		}
		for i, q := range queues {
			qi := int64(i)
			q.OnSteal = func() {
				if traceOn {
					lc.TraceInstant(trace.TrackQueue, "steal", qi)
				}
				if metricsOn {
					rtm.NoteSteals(1)
				}
				noteDepth()
			}
			if metricsOn {
				q.OnPush = noteDepth
				q.OnPop = func() {
					rtm.NotePops(1)
					noteDepth()
				}
			}
		}
	}

	runRow := func(t rowTask) {
		if blk != nil {
			for tx := 0; tx < tilesPerRow; tx++ {
				blk.StepTile(int(t), tx)
			}
		}
	}

	// Workers persist across iterations (the paper's persistent GPU
	// workgroups); a latch per iteration releases them and a WaitGroup
	// forms the inter-iteration barrier, after which queues are refilled.
	start := make([]*sim.Latch, cfg.Iters)
	for i := range start {
		start[i] = sim.NewLatch(engine)
	}
	done := sim.NewWaitGroup(engine)
	workers := sim.NewWaitGroup(engine)

	for qi := range gpuQueues {
		workers.Add(1)
		own := gpuQueues[qi]
		lc.Spawn(fmt.Sprintf("gpu-wg%d", qi), lc.Node(), func(sub *core.Ctx) error {
			defer workers.Done()
			qi := qi
			for it := 0; it < cfg.Iters; it++ {
				start[it].Wait(sub.Proc())
				for {
					if until, off := gpuOffline(); off {
						if cfg.Mode == CPUGPU {
							// Leave the rest of this queue to the CPU
							// thieves and sit out the iteration.
							break
						}
						// GPUOnly: nothing to fail over to, so stall
						// until the outage window closes.
						sub.Proc().Sleep(until - sub.Proc().Now())
						continue
					}
					t, ok := own.PopTail()
					if !ok {
						// Run dry: steal — from a CPU queue's head first
						// (the direction §V-E highlights), then from a
						// sibling GPU queue.
						if t, _, ok = stealAcross(cpuQueues, gpuQueues, qi); ok {
							res.Steals++
						} else {
							break
						}
					}
					runRow(t)
					sub.Proc().Sleep(gpuTaskTime)
					sub.ChargeGPU(gpuTaskTime)
					res.TasksByGPU++
				}
				done.Done()
			}
			return nil
		})
	}
	for qi := range cpuQueues {
		workers.Add(1)
		own := cpuQueues[qi]
		qi := qi
		lc.Spawn(fmt.Sprintf("cpu-th%d", qi), lc.Node(), func(sub *core.Ctx) error {
			defer workers.Done()
			for it := 0; it < cfg.Iters; it++ {
				start[it].Wait(sub.Proc())
				for {
					t, ok := own.PopTail()
					if !ok {
						// Dry CPU threads pull from GPU queues (stealing is
						// "across the CPU and the GPU", §V-E), keeping all
						// processors busy until the barrier.
						var fromGPU bool
						if t, fromGPU, ok = stealAcross(gpuQueues, cpuQueues, qi); ok {
							res.Steals++
							if fromGPU {
								if _, off := gpuOffline(); off {
									res.Failovers++
									lc.Runtime().NoteFailover()
								}
							}
						} else {
							break
						}
					}
					runRow(t)
					sub.Proc().Sleep(cpuTaskTime)
					sub.ChargeCPU(cpuTaskTime)
					res.TasksByCPU++
				}
				done.Done()
			}
			return nil
		})
	}

	for it := 0; it < cfg.Iters; it++ {
		if it > 0 {
			// Refill the queues for the next Jacobi step.
			for i, t := range tasks {
				queues[i%nq].PushTail(t)
			}
		}
		// Sample the queue depth at each iteration barrier: full after the
		// refill, and (once the iteration drains) empty again — the sawtooth
		// a traced timeline shows per Jacobi step. The metrics gauge sees the
		// same instants (plus every push/pop/steal through the hooks above).
		lc.TraceCounter(trace.TrackQueue, "depth", int64(sched.TotalLen(queues)))
		depthSlot.Set(int64(sched.TotalLen(queues)))
		done.Add(nq)
		start[it].Fire()
		done.Wait(lc.Proc())
		lc.TraceCounter(trace.TrackQueue, "depth", int64(sched.TotalLen(queues)))
		depthSlot.Set(int64(sched.TotalLen(queues)))
		if blk != nil {
			blk.Swap()
		}
	}
	workers.Wait(lc.Proc())
	pops, _ := sched.TotalStats(queues)
	res.Pops += pops
	return nil
}
