package hotspot

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func newMultiBranchRuntime(phantom bool, fast []bool, dramMiB int64) *core.Runtime {
	e := sim.NewEngine()
	drams := make([]int64, len(fast))
	for i := range drams {
		drams[i] = dramMiB
	}
	tree := topo.MultiBranch(e, topo.MultiBranchConfig{
		Storage: topo.SSD, StorageMiB: 512,
		BranchDRAMMiB: drams, FastBranches: fast,
	})
	opts := core.DefaultOptions()
	opts.Phantom = phantom
	return core.NewRuntime(e, tree, opts)
}

func TestMultiBranchMatchesReference(t *testing.T) {
	for _, policy := range []BranchPolicy{StaticPartition, DynamicQueue} {
		cfg := MultiBranchConfig{N: 64, Seed: 8, ChunkDim: 16, Iters: 3, Policy: policy}
		rt := newMultiBranchRuntime(false, []bool{false, true}, 8)
		res, err := RunMultiBranch(rt, cfg)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		g := workload.HotSpotGrid(cfg.N, cfg.Seed)
		want, err := ReferenceBlocked(g.Temp, g.Power, cfg.N, cfg.ChunkDim, cfg.Iters)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(res.Temp, want) {
			t.Fatalf("%v: multi-branch result differs from blocked reference", policy)
		}
		total := 0
		for _, n := range res.ChunksByBranch {
			total += n
		}
		if total != 16 {
			t.Fatalf("%v: %d chunks processed, want 16", policy, total)
		}
	}
}

func TestDynamicQueueBalancesAsymmetricBranches(t *testing.T) {
	// One integrated-GPU branch, one discrete-GPU branch: the fast branch
	// must take more chunks under the dynamic policy, and the dynamic
	// policy must beat the static even split.
	cfg := MultiBranchConfig{N: 4096, ChunkDim: 512, Iters: 30}
	run := func(policy BranchPolicy) *MultiBranchResult {
		cfg := cfg
		cfg.Policy = policy
		rt := newMultiBranchRuntime(true, []bool{false, true}, 16)
		res, err := RunMultiBranch(rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(StaticPartition)
	dynamic := run(DynamicQueue)
	if dynamic.ChunksByBranch[1] <= dynamic.ChunksByBranch[0] {
		t.Fatalf("fast branch took %d chunks, slow took %d",
			dynamic.ChunksByBranch[1], dynamic.ChunksByBranch[0])
	}
	if static.ChunksByBranch[0] != static.ChunksByBranch[1] {
		t.Fatalf("static partition uneven: %v", static.ChunksByBranch)
	}
	if dynamic.Stats.Elapsed >= static.Stats.Elapsed {
		t.Fatalf("dynamic (%v) not faster than static (%v) on asymmetric branches",
			dynamic.Stats.Elapsed, static.Stats.Elapsed)
	}
}

func TestMultiBranchSymmetricSplitsEvenly(t *testing.T) {
	cfg := MultiBranchConfig{N: 1024, ChunkDim: 256, Iters: 8, Policy: DynamicQueue}
	rt := newMultiBranchRuntime(true, []bool{false, false}, 8)
	res, err := RunMultiBranch(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.ChunksByBranch[0], res.ChunksByBranch[1]
	if a+b != 16 {
		t.Fatalf("chunks = %d+%d", a, b)
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > 4 {
		t.Fatalf("symmetric branches unbalanced: %d vs %d", a, b)
	}
}

func TestMultiBranchValidation(t *testing.T) {
	rt := newMultiBranchRuntime(true, []bool{false}, 8)
	if _, err := RunMultiBranch(rt, MultiBranchConfig{N: 100, ChunkDim: 30}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
