package hotspot

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestProfiledMatchesReference(t *testing.T) {
	cfg := Config{N: 128, Seed: 4, ChunkDim: 32, Iters: 2}
	rt := newStealRuntime(false, true)
	res, err := RunProfiled(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.HotSpotGrid(cfg.N, cfg.Seed)
	want, err := ReferenceBlocked(g.Temp, g.Power, cfg.N, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Temp, want) {
		t.Fatal("profiled-mapping result differs from reference")
	}
	// 16 chunks: both processors sampled, decisions recorded for all.
	if res.ChunksOnGPU+res.ChunksOnCPU != 16 {
		t.Fatalf("placed %d+%d chunks, want 16", res.ChunksOnGPU, res.ChunksOnCPU)
	}
	if res.ChunksOnCPU == 0 {
		t.Fatal("CPU never sampled (no exploration)")
	}
}

func TestProfiledConvergesToGPU(t *testing.T) {
	// For stencil chunks of this size the GPU is clearly faster; after the
	// exploration phase every remaining chunk must go there.
	cfg := Config{N: 1024, ChunkDim: 256, Iters: 8}
	rt := newStealRuntime(true, true)
	res, err := RunProfiled(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 16 chunks; exploration needs 2 samples per processor.
	if res.ChunksOnCPU > 3 {
		t.Fatalf("%d chunks stayed on the CPU after profiling", res.ChunksOnCPU)
	}
	if res.ChunksOnGPU < 12 {
		t.Fatalf("only %d chunks reached the GPU", res.ChunksOnGPU)
	}
}

func TestProfiledWarmStartSkipsExploration(t *testing.T) {
	// A profile exported from one run and imported into the next carries
	// enough samples that the warm run never explores: every chunk goes
	// straight to the processor the prior run learned was faster.
	cfg := Config{N: 1024, ChunkDim: 256, Iters: 8}
	cold, err := RunProfiled(newStealRuntime(true, true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.ChunksOnCPU == 0 {
		t.Fatal("cold run never explored the CPU")
	}
	data, err := cold.Profile.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	warm := sched.NewProfileScheduler()
	if err := warm.ImportJSON(data); err != nil {
		t.Fatal(err)
	}
	res, err := RunProfiledWarm(newStealRuntime(true, true), cfg, warm)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksOnCPU != 0 {
		t.Fatalf("warm run still sent %d chunks to the CPU", res.ChunksOnCPU)
	}
	if res.ChunksOnGPU != cold.ChunksOnGPU+cold.ChunksOnCPU {
		t.Fatalf("warm run placed %d chunks, want %d", res.ChunksOnGPU,
			cold.ChunksOnGPU+cold.ChunksOnCPU)
	}
}

func TestProfiledNeedsBothProcessors(t *testing.T) {
	cfg := Config{N: 64, ChunkDim: 32, Iters: 1}
	rt := newStealRuntime(true, false) // no CPU
	if _, err := RunProfiled(rt, cfg); err == nil {
		t.Fatal("profiled mapping ran without a CPU")
	}
}
