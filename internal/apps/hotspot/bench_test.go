package hotspot

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

// BenchmarkStencilStepFunctional measures the host-side stencil throughput.
func BenchmarkStencilStepFunctional(b *testing.B) {
	const d = 512
	blk := &Block{
		D:     d,
		In:    make([]float32, d*d),
		Out:   make([]float32, d*d),
		Power: make([]float32, d*d),
	}
	tiles := d / BlockDim
	b.SetBytes(d * d * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ty := 0; ty < tiles; ty++ {
			for tx := 0; tx < tiles; tx++ {
				blk.StepTile(ty, tx)
			}
		}
		blk.Swap()
	}
}

// BenchmarkNorthupPaperScalePhantom measures the wall cost of one
// paper-scale out-of-core stencil simulation.
func BenchmarkNorthupPaperScalePhantom(b *testing.B) {
	var elapsed sim.Time
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
			StorageMiB: 24576, DRAMMiB: 2048})
		opts := core.DefaultOptions()
		opts.Phantom = true
		rt := core.NewRuntime(e, tree, opts)
		res, err := RunNorthup(rt, Config{N: 16384, ChunkDim: 8192, Iters: 60})
		if err != nil {
			b.Fatal(err)
		}
		elapsed = res.Stats.Elapsed
	}
	b.ReportMetric(elapsed.Seconds(), "virtual-s")
}

// BenchmarkStealPaperScale measures the Figure 11 inner loop (one cell).
func BenchmarkStealPaperScale(b *testing.B) {
	var elapsed sim.Time
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
			StorageMiB: 8192, DRAMMiB: 2048, WithCPU: true})
		opts := core.DefaultOptions()
		opts.Phantom = true
		rt := core.NewRuntime(e, tree, opts)
		res, err := RunSteal(rt, StealConfig{M: 16384, ChunkDim: 8192,
			Iters: 60, GPUQueues: 32, Mode: CPUGPU})
		if err != nil {
			b.Fatal(err)
		}
		elapsed = res.Stats.Elapsed
	}
	b.ReportMetric(elapsed.Seconds(), "virtual-s")
}
