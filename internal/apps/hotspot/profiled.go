package hotspot

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
)

// This file implements §III-E's profile-guided task-processor mapping for
// the stencil: "By profiling the execution of earlier scheduled chunks, the
// system can provide useful information to subsequent scheduling and
// task-processor mapping." Each chunk runs wholly on one processor; the
// first chunks sample each candidate, after which every chunk goes to the
// predicted-fastest one.

// ProfiledResult extends Result with the mapping decisions taken.
type ProfiledResult struct {
	Result
	// ChunksOnGPU and ChunksOnCPU count the placement decisions.
	ChunksOnGPU, ChunksOnCPU int
	// Profile is the scheduler state learned during the run. Export it
	// (sched.ProfileScheduler.ExportJSON) to warm-start a later run via
	// RunProfiledWarm, skipping the exploration phase.
	Profile *sched.ProfileScheduler
}

// RunProfiled executes the out-of-core stencil with profile-guided chunk
// placement between the leaf CPU and GPU, starting from a cold profile. The
// tree must have both attached (the APU WithCPU topology).
func RunProfiled(rt *core.Runtime, cfg Config) (*ProfiledResult, error) {
	return RunProfiledWarm(rt, cfg, nil)
}

// RunProfiledWarm is RunProfiled seeded with a prior run's learned profile
// (nil means cold start). A warm profile that already holds enough samples
// skips the exploration phase entirely, so the first chunks land on the
// predicted-fastest processor instead of sampling both.
func RunProfiledWarm(rt *core.Runtime, cfg Config, warm *sched.ProfileScheduler) (*ProfiledResult, error) {
	profiler := warm
	if profiler == nil {
		profiler = sched.NewProfileScheduler()
	}
	res := &ProfiledResult{Profile: profiler}
	// Profile-guided mapping and tracing share one observation path: each
	// chunk runs as a task span named after its processor, and the profiler
	// learns from span completions instead of ad-hoc timing calls. The
	// observer makes tracing active even without a recorder, so the spans
	// flow regardless of whether the run keeps a trace.
	remove := rt.AddSpanObserver(func(ev trace.Event) {
		if ev.Lane.Track == trace.TrackTask {
			profiler.Record(ev.Name, float64(ev.Value), ev.Dur)
		}
	})
	defer remove()
	compute := func(lc *core.Ctx, blk *Block, d int) error {
		g := lc.GPUModel()
		cpu := lc.CPUModel()
		if g == nil || cpu == nil {
			return fmt.Errorf("hotspot: profiled mapping needs both CPU and GPU at %v", lc.Node())
		}
		iters := cfg.itersResolved()
		size := float64(d) * float64(d) * float64(iters)
		pick, err := profiler.Pick([]string{g.ProcName(), cpu.ProcName()}, size)
		if err != nil {
			return err
		}
		return lc.Task(pick, int64(size), func(lc *core.Ctx) error {
			if pick == g.ProcName() {
				res.ChunksOnGPU++
				for it := 0; it < iters; it++ {
					kern, groups := TileKernelFor(blk, d)
					if _, err := lc.LaunchKernel(kern, groups); err != nil {
						return err
					}
					if blk != nil {
						blk.Swap()
					}
				}
				return nil
			}
			res.ChunksOnCPU++
			tiles := (d + BlockDim - 1) / BlockDim
			for it := 0; it < iters; it++ {
				fn := func() {
					if blk == nil {
						return
					}
					for ty := 0; ty < tiles; ty++ {
						for tx := 0; tx < tiles; tx++ {
							blk.StepTile(ty, tx)
						}
					}
				}
				flops := float64(TileFlops) * float64(tiles*tiles)
				bytes := float64(TileBytes) * float64(tiles*tiles)
				if _, err := lc.RunCPUParallel(flops, bytes, fn); err != nil {
					return err
				}
				if blk != nil {
					blk.Swap()
				}
			}
			return nil
		})
	}
	r, err := runChunked(rt, cfg, compute)
	if err != nil {
		return nil, err
	}
	res.Result = *r
	return res, nil
}
