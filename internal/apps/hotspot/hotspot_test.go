package hotspot

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

func almostEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := float64(a[i] - b[i])
		if math.Abs(d) > 1e-3 {
			return false
		}
	}
	return true
}

func TestReferenceBlockedMatchesGlobalForOneIter(t *testing.T) {
	// One iteration with exact pass-start borders IS the global step.
	const n = 64
	g := workload.HotSpotGrid(n, 1)
	want := Reference(g.Temp, g.Power, n, 1)
	for _, chunk := range []int{16, 32, 64} {
		got, err := ReferenceBlocked(g.Temp, g.Power, n, chunk, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, want) {
			t.Fatalf("chunk %d: blocked single-step differs from global", chunk)
		}
	}
}

func TestReferenceBlockedFullGridIsGlobal(t *testing.T) {
	// With one chunk covering the grid, any iteration count matches.
	const n, iters = 48, 7
	g := workload.HotSpotGrid(n, 2)
	want := Reference(g.Temp, g.Power, n, iters)
	got, err := ReferenceBlocked(g.Temp, g.Power, n, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, want) {
		t.Fatal("full-grid blocked differs from global reference")
	}
}

func TestStencilCoolsTowardAmbientWithoutPower(t *testing.T) {
	// Physics sanity: with zero power, max temperature decreases toward
	// ambient monotonically.
	const n = 32
	temp := make([]float32, n*n)
	power := make([]float32, n*n)
	for i := range temp {
		temp[i] = 400
	}
	prevMax := float32(400)
	cur := temp
	for it := 0; it < 10; it++ {
		cur = Reference(cur, power, n, 1)
		var mx float32
		for _, v := range cur {
			if v > mx {
				mx = v
			}
		}
		if mx >= prevMax {
			t.Fatalf("iteration %d: max temp %g did not decrease from %g", it, mx, prevMax)
		}
		if mx < ambient {
			t.Fatalf("overshot ambient: %g", mx)
		}
		prevMax = mx
	}
}

func newHotspotRuntime(phantom bool, dramMiB int64) *core.Runtime {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64, DRAMMiB: dramMiB})
	opts := core.DefaultOptions()
	opts.Phantom = phantom
	return core.NewRuntime(e, tree, opts)
}

func TestNorthupMatchesBlockedReference(t *testing.T) {
	cfg := Config{N: 64, Seed: 5, ChunkDim: 32, Iters: 4, Depth: 2}
	rt := newHotspotRuntime(false, 8)
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.HotSpotGrid(cfg.N, cfg.Seed)
	want, err := ReferenceBlocked(g.Temp, g.Power, cfg.N, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Temp, want) {
		t.Fatal("out-of-core result differs from blocked reference")
	}
	bd := &res.Stats.Breakdown
	if bd.Busy(trace.IO) <= 0 || bd.Busy(trace.GPUCompute) <= 0 {
		t.Fatalf("missing breakdown components: %s", bd)
	}
}

func TestNorthupSingleIterMatchesGlobalReference(t *testing.T) {
	// The strongest functional check: 1 iteration out-of-core equals the
	// global Jacobi step bit-for-bit (borders are exact).
	cfg := Config{N: 64, Seed: 9, ChunkDim: 16, Iters: 1}
	rt := newHotspotRuntime(false, 8)
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.HotSpotGrid(cfg.N, cfg.Seed)
	want := Reference(g.Temp, g.Power, cfg.N, 1)
	if !almostEqual(res.Temp, want) {
		t.Fatal("single-iteration Northup differs from global reference")
	}
}

func TestMultiPassRegeneratesBorders(t *testing.T) {
	// Two passes of K iterations must equal two sequential blocked runs
	// where the second pass starts from the first pass's result (including
	// fresh borders) — proving the border-regeneration path works.
	cfg := Config{N: 64, Seed: 7, ChunkDim: 32, Iters: 3, Passes: 2}
	rt := newHotspotRuntime(false, 8)
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.HotSpotGrid(cfg.N, cfg.Seed)
	mid, err := ReferenceBlocked(g.Temp, g.Power, cfg.N, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceBlocked(mid, g.Power, cfg.N, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Temp, want) {
		t.Fatal("two-pass result differs from sequential two-pass reference")
	}
}

func TestPhantomTimingMatchesFunctional(t *testing.T) {
	cfg := Config{N: 64, Seed: 5, ChunkDim: 32, Iters: 4}
	fun, err := RunNorthup(newHotspotRuntime(false, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := RunNorthup(newHotspotRuntime(true, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fun.Stats.Elapsed != ph.Stats.Elapsed {
		t.Fatalf("functional %v != phantom %v", fun.Stats.Elapsed, ph.Stats.Elapsed)
	}
}

func TestInMemoryMatchesGlobalReference(t *testing.T) {
	e := sim.NewEngine()
	rt := core.NewRuntime(e, topo.InMemory(e, 16), core.DefaultOptions())
	cfg := Config{N: 64, Seed: 3, Iters: 5}
	res, err := RunInMemory(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.HotSpotGrid(cfg.N, cfg.Seed)
	want := Reference(g.Temp, g.Power, cfg.N, cfg.Iters)
	if !almostEqual(res.Temp, want) {
		t.Fatal("in-memory result differs from reference")
	}
	if res.Stats.Breakdown.Busy(trace.IO) != 0 {
		t.Fatal("in-memory baseline charged I/O")
	}
}

func TestNorthup3LevelMatchesReference(t *testing.T) {
	// The discrete-GPU tree adds a device-memory level (Figure 8's setup);
	// results must be identical to the blocked reference.
	e := sim.NewEngine()
	tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
		StorageMiB: 64, DRAMMiB: 8, GPUMemMiB: 4})
	rt := core.NewRuntime(e, tree, core.DefaultOptions())
	cfg := Config{N: 64, Seed: 6, ChunkDim: 32, Iters: 3}
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.HotSpotGrid(cfg.N, cfg.Seed)
	want, err := ReferenceBlocked(g.Temp, g.Power, cfg.N, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Temp, want) {
		t.Fatal("3-level result differs from blocked reference")
	}
	if res.Stats.Breakdown.Busy(trace.Transfer) <= 0 {
		t.Fatal("no PCIe transfer time on the 3-level tree")
	}
}

func TestAutoChunkRespectsCapacity(t *testing.T) {
	// A 256x256 grid (256 KiB per plane) with a 256 KiB staging buffer
	// must subdivide.
	rt := newHotspotRuntime(true, 1)
	cfg := Config{N: 256, Iters: 2}
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunkDim >= cfg.N {
		t.Fatalf("chunk %d not out-of-core", res.ChunkDim)
	}
}

func TestConfigValidation(t *testing.T) {
	rt := newHotspotRuntime(true, 8)
	if _, err := RunNorthup(rt, Config{N: 100}); err == nil {
		t.Fatal("non-multiple N accepted")
	}
	if _, err := RunNorthup(rt, Config{N: 64, ChunkDim: 24}); err == nil {
		t.Fatal("invalid chunk accepted")
	}
	if _, err := RunInMemory(rt, Config{N: 64}); err == nil {
		t.Fatal("in-memory baseline ran on storage tree")
	}
}
