package hotspot

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

func newStealRuntime(phantom, withCPU bool) *core.Runtime {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64,
		DRAMMiB: 16, WithCPU: withCPU})
	opts := core.DefaultOptions()
	opts.Phantom = phantom
	return core.NewRuntime(e, tree, opts)
}

// newPaperScaleStealRuntime builds the paper's full-size APU topology
// (8 GiB of SSD inputs, the 2 GiB staging buffer) in phantom mode.
func newPaperScaleStealRuntime() *core.Runtime {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 8192,
		DRAMMiB: 2048, WithCPU: true})
	opts := core.DefaultOptions()
	opts.Phantom = true
	return core.NewRuntime(e, tree, opts)
}

func TestStealMatchesBlockedReference(t *testing.T) {
	// The queue-scheduled execution must compute exactly what the simple
	// kernel path computes: scheduling cannot change results.
	cfg := StealConfig{M: 64, ChunkDim: 64, Seed: 5, Iters: 4, GPUQueues: 2, Mode: CPUGPU}
	res, err := RunSteal(newStealRuntime(false, true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.HotSpotGrid(cfg.M, cfg.Seed)
	want, err := ReferenceBlocked(g.Temp, g.Power, cfg.M, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Temp, want) {
		t.Fatal("stolen-schedule result differs from blocked reference")
	}
	if res.TasksByCPU == 0 || res.TasksByGPU == 0 {
		t.Fatalf("work not spread: cpu=%d gpu=%d", res.TasksByCPU, res.TasksByGPU)
	}
	total := res.TasksByCPU + res.TasksByGPU
	wantTasks := int64((cfg.M / cfg.ChunkDim) * (cfg.M / cfg.ChunkDim) * cfg.Iters * (cfg.ChunkDim / BlockDim))
	if total != wantTasks {
		t.Fatalf("executed %d tasks, want %d", total, wantTasks)
	}
}

func TestGPUOnlyMatchesReferenceToo(t *testing.T) {
	cfg := StealConfig{M: 64, ChunkDim: 32, Seed: 5, Iters: 3, GPUQueues: 8, Mode: GPUOnly}
	res, err := RunSteal(newStealRuntime(false, false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.HotSpotGrid(cfg.M, cfg.Seed)
	want, err := ReferenceBlocked(g.Temp, g.Power, cfg.M, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Temp, want) {
		t.Fatal("GPU-only queue result differs from reference")
	}
	if res.TasksByCPU != 0 {
		t.Fatalf("GPU-only mode ran %d CPU tasks", res.TasksByCPU)
	}
	if res.Stats.Breakdown.Busy(trace.CPUCompute) != 0 {
		t.Fatal("GPU-only mode charged CPU compute")
	}
}

func TestStealingImprovesOnGPUOnly(t *testing.T) {
	// Fig. 11's headline: CPU+GPU work stealing beats GPU-only execution.
	mk := func(mode StealMode) sim.Time {
		// The paper's (16k, 8k) configuration, feasible in phantom mode:
		// 512 row-tasks per chunk over 36 queues give each queue enough
		// elements for stealing to balance the load (§V-E's requirement
		// that "the parameter n has to be big enough").
		cfg := StealConfig{M: 16384, ChunkDim: 8192, Iters: 60, GPUQueues: 32, Mode: mode}
		res, err := RunSteal(newPaperScaleStealRuntime(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Elapsed
	}
	gpuOnly := mk(GPUOnly)
	stolen := mk(CPUGPU)
	if stolen >= gpuOnly {
		t.Fatalf("stealing (%v) not faster than GPU-only (%v)", stolen, gpuOnly)
	}
	gain := 1 - float64(stolen)/float64(gpuOnly)
	if gain < 0.05 || gain > 0.40 {
		t.Fatalf("stealing gain %.1f%% outside the plausible Fig. 11 band", 100*gain)
	}
}

func TestStealsActuallyHappen(t *testing.T) {
	cfg := StealConfig{M: 512, ChunkDim: 512, Iters: 4, GPUQueues: 4, Mode: CPUGPU}
	res, err := RunSteal(newStealRuntime(true, true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Fatal("no steals occurred; CPU queues never relieved")
	}
}

func TestMoreQueuesHelp(t *testing.T) {
	// The paper finds 32 queues best: more resident workgroups hide
	// latency better.
	elapsed := func(q int) sim.Time {
		cfg := StealConfig{M: 1024, ChunkDim: 512, Iters: 60, GPUQueues: q, Mode: GPUOnly}
		res, err := RunSteal(newStealRuntime(true, false), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Elapsed
	}
	t8, t16, t32 := elapsed(8), elapsed(16), elapsed(32)
	if !(t32 < t16 && t16 < t8) {
		t.Fatalf("queue scaling not monotone: 8q=%v 16q=%v 32q=%v", t8, t16, t32)
	}
}

func TestCPUGPUNeedsCPU(t *testing.T) {
	cfg := StealConfig{M: 64, ChunkDim: 32, Iters: 1, Mode: CPUGPU}
	if _, err := RunSteal(newStealRuntime(true, false), cfg); err == nil {
		t.Fatal("CPU+GPU mode ran without a CPU")
	}
}

// newOutageRuntime builds the small APU with a fault injector whose GPU at
// the leaf is offline for the given window.
func newOutageRuntime(withCPU bool, w fault.Window) (*core.Runtime, *fault.Injector) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64,
		DRAMMiB: 16, WithCPU: withCPU})
	inj := fault.New(e, fault.Config{Seed: 7})
	inj.TakeProcOffline(tree.Leaves()[0].ID, fault.ClassGPU, w)
	opts := core.DefaultOptions()
	opts.Faults = inj
	return core.NewRuntime(e, tree, opts), inj
}

func TestGPUOutageFailsOverToCPU(t *testing.T) {
	// The GPU is down for the whole run: every queued GPU task must drain
	// through the CPU steal path, bit-correct, with failovers accounted.
	rt, _ := newOutageRuntime(true, fault.Window{From: 0, Until: sim.Seconds(1e6)})
	cfg := StealConfig{M: 64, ChunkDim: 64, Seed: 5, Iters: 4, GPUQueues: 2, Mode: CPUGPU}
	res, err := RunSteal(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.HotSpotGrid(cfg.M, cfg.Seed)
	want, err := ReferenceBlocked(g.Temp, g.Power, cfg.M, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Temp, want) {
		t.Fatal("failed-over result differs from reference")
	}
	if res.TasksByGPU != 0 {
		t.Fatalf("offline GPU still ran %d tasks", res.TasksByGPU)
	}
	wantTasks := int64((cfg.M / cfg.ChunkDim) * (cfg.M / cfg.ChunkDim) * cfg.Iters * (cfg.ChunkDim / BlockDim))
	if res.TasksByCPU != wantTasks {
		t.Fatalf("CPU absorbed %d tasks, want all %d", res.TasksByCPU, wantTasks)
	}
	if res.Failovers == 0 {
		t.Fatal("no failovers recorded despite a full-run GPU outage")
	}
	if got := rt.Resilience().Failovers; got != res.Failovers {
		t.Fatalf("runtime counted %d failovers, steal result %d", got, res.Failovers)
	}
}

func TestGPURecoveryResumesWork(t *testing.T) {
	// A transient outage: once the window closes the GPU rejoins, so both
	// classes execute tasks and the result still matches the reference.
	// Size the window off a fault-free baseline so it ends mid-computation
	// regardless of the simulated device speeds.
	cfg := StealConfig{M: 64, ChunkDim: 64, Seed: 5, Iters: 8, GPUQueues: 2, Mode: CPUGPU}
	base, err := RunSteal(newStealRuntime(false, true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := newOutageRuntime(true, fault.Window{From: 0, Until: base.Stats.Elapsed / 2})
	res, err := RunSteal(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.HotSpotGrid(cfg.M, cfg.Seed)
	want, err := ReferenceBlocked(g.Temp, g.Power, cfg.M, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Temp, want) {
		t.Fatal("post-recovery result differs from reference")
	}
	if res.TasksByGPU == 0 {
		t.Fatal("GPU never resumed after the outage window closed")
	}
}

func TestGPUOnlyOutageStallsUntilRecovery(t *testing.T) {
	// Without a CPU there is nothing to fail over to: GPU-only execution
	// must wait out the outage and then finish correctly.
	recovery := sim.Milliseconds(5)
	rt, _ := newOutageRuntime(false, fault.Window{From: 0, Until: recovery})
	cfg := StealConfig{M: 64, ChunkDim: 32, Seed: 5, Iters: 3, GPUQueues: 8, Mode: GPUOnly}
	res, err := RunSteal(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Elapsed < recovery {
		t.Fatalf("run finished at %v, inside the outage ending at %v", res.Stats.Elapsed, recovery)
	}
	g := workload.HotSpotGrid(cfg.M, cfg.Seed)
	want, err := ReferenceBlocked(g.Temp, g.Power, cfg.M, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Temp, want) {
		t.Fatal("stalled GPU-only result differs from reference")
	}
	if res.Failovers != 0 {
		t.Fatalf("GPU-only mode recorded %d failovers", res.Failovers)
	}
}

func TestStealConfigValidation(t *testing.T) {
	rt := newStealRuntime(true, true)
	if _, err := RunSteal(rt, StealConfig{M: 100, ChunkDim: 30}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
