package hotspot

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// newMeteredStealRuntime is newStealRuntime with a metrics registry, so
// the depth gauge the scheduler publishes can be inspected after the run.
func newMeteredStealRuntime() (*core.Runtime, *obs.Registry) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64,
		DRAMMiB: 16, WithCPU: true})
	opts := core.DefaultOptions()
	opts.Metrics = obs.NewRegistry()
	return core.NewRuntime(e, tree, opts), opts.Metrics
}

// TestStealSchedulerCleansUpNodeState is the regression test for the
// scheduler's shared-node-state bugs: RunSteal used to overwrite
// Node.Queues with its own monitors (clobbering any concurrent job's
// registration and leaking stale monitors after the run) and to publish
// queue depth with an absolute gauge write (last-writer-wins across
// concurrent schedulers). After the fix, a finished run must leave the
// node's queue list empty and the depth gauge withdrawn to zero.
func TestStealSchedulerCleansUpNodeState(t *testing.T) {
	rt, reg := newMeteredStealRuntime()
	cfg := StealConfig{M: 64, ChunkDim: 64, Seed: 5, Iters: 4, GPUQueues: 2, Mode: CPUGPU}
	if _, err := RunSteal(rt, cfg); err != nil {
		t.Fatal(err)
	}
	for _, n := range rt.Tree().Nodes() {
		if len(n.Queues) != 0 {
			t.Fatalf("%v still has %d queue monitors after the run", n, len(n.Queues))
		}
	}
	rt.SyncMetrics()
	for name, v := range reg.Flatten() {
		if len(name) >= len("northup_queue_depth") &&
			name[:len("northup_queue_depth")] == "northup_queue_depth" && v != 0 {
			t.Fatalf("depth gauge %s = %v after the run, want 0", name, v)
		}
	}
}

// TestStealSchedulerRepeatedRunsDoNotAccumulate reruns the scheduler on
// one runtime: with AttachQueues/detach pairing, the second run must see
// (and leave) a clean node, not a growing monitor list — the leak the old
// absolute assignment hid.
func TestStealSchedulerRepeatedRunsDoNotAccumulate(t *testing.T) {
	rt, _ := newMeteredStealRuntime()
	cfg := StealConfig{M: 64, ChunkDim: 64, Seed: 5, Iters: 2, GPUQueues: 2, Mode: CPUGPU}
	root := rt.Tree().Root()
	for run := 0; run < 3; run++ {
		if _, err := RunSteal(rt, cfg); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for _, n := range rt.Tree().Nodes() {
			if len(n.Queues) != 0 {
				t.Fatalf("run %d: %v accumulated %d monitors", run, n, len(n.Queues))
			}
		}
		// Clear this run's input files so the next run starts fresh on the
		// same shared tree (what distinguishes reuse from a new runtime).
		for _, name := range root.Store.List() {
			if err := root.Store.Remove(name); err != nil {
				t.Fatalf("run %d: remove %s: %v", run, name, err)
			}
		}
	}
}
