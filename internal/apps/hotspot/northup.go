package hotspot

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/view"
	"repro/internal/workload"
)

// Config parameterizes a HotSpot-2D run.
type Config struct {
	// N is the grid dimension.
	N int
	// Seed drives input generation (functional runs only).
	Seed int64
	// ChunkDim forces the out-of-core blocking (the paper's 8k for 16k
	// inputs); 0 derives it from the staging capacity.
	ChunkDim int
	// Iters is the number of Jacobi steps per pass (Rodinia's default
	// simulation runs 60 steps).
	Iters int
	// Passes repeats the whole out-of-core sweep, regenerating border
	// vectors between passes.
	Passes int
	// Depth is the chunk-pipeline depth (default 1: double buffering of
	// whole chunks, which is what 2 GiB of staging admits at 8k blocking).
	Depth int
	// Streamed routes the chunk loads and stores — including the halo
	// (border) loads and the GPU staging moves on 3-level trees — through
	// the streaming transfer engine, sub-chunking each move so successive
	// hops overlap. Adaptive sizing degenerates to the monolithic path
	// when sub-chunking cannot help.
	Streamed bool
	// StreamOpts tunes the streamed moves (zero value = adaptive sizing).
	StreamOpts core.StreamOptions
}

func (cfg *Config) setDefaults() error {
	if cfg.N <= 0 || cfg.N%BlockDim != 0 {
		return fmt.Errorf("hotspot: N=%d must be a positive multiple of %d", cfg.N, BlockDim)
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 60
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 1
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	return nil
}

// Result carries the run's output and measurements.
type Result struct {
	// Temp is the final temperature grid (nil in phantom mode).
	Temp []float32
	// Stats is the measured run (excluding input preprocessing).
	Stats core.RunStats
	// ChunkDim is the blocking actually used.
	ChunkDim int
}

// chooseChunkDim picks the largest chunk edge (multiple of BlockDim,
// dividing n) whose in/out/power buffers and borders fit depth+1 times into
// the free staging bytes.
func chooseChunkDim(n, depth int, free int64) (int, error) {
	for d := n; d >= BlockDim; d -= BlockDim {
		if n%d != 0 {
			continue
		}
		per := 4 * (3*int64(d)*int64(d) + 4*int64(d))
		if per*int64(depth+1) <= free*9/10 {
			return d, nil
		}
	}
	return 0, fmt.Errorf("hotspot: no chunk size fits %d free bytes for N=%d", free, n)
}

// borderOff returns the file offset of chunk ci's packed border record
// (four vectors of d floats: N, S, W, E; absent sides are zero-filled and
// identified by chunk position).
func borderOff(ci, d int) int64 { return int64(ci) * 4 * int64(d) * 4 }

// TileKernelFor builds the GPU kernel advancing blk by one Jacobi step.
// A nil blk gives the phantom (timing-only) kernel.
func TileKernelFor(blk *Block, d int) (gpu.Kernel, int) {
	tiles := (d + BlockDim - 1) / BlockDim
	groups := tiles * tiles
	kern := gpu.Kernel{
		Name:          "hotspot-tile",
		FlopsPerGroup: TileFlops,
		BytesPerGroup: TileBytes,
		LocalBytes:    TileLocalBytes,
	}
	if blk != nil {
		kern.Run = func(g int) { blk.StepTile(g/tiles, g%tiles) }
	}
	return kern, groups
}

// RunNorthup executes the out-of-core thermal simulation per §IV-B: the
// grid lives chunk-major on the storage root (the one-time preprocessing),
// each pass pipelines chunks through the staging level, runs Iters stencil
// steps on the GPU with pass-start border vectors, writes results back, and
// regenerates the border file for the next pass from chunk edges.
func RunNorthup(rt *core.Runtime, cfg Config) (*Result, error) {
	return runChunked(rt, cfg, func(lc *core.Ctx, blk *Block, d int) error {
		for it := 0; it < cfg.itersResolved(); it++ {
			kern, groups := TileKernelFor(blk, d)
			if _, err := lc.LaunchKernel(kern, groups); err != nil {
				return err
			}
			if blk != nil {
				blk.Swap()
			}
		}
		return nil
	})
}

// itersResolved returns the per-pass iteration count after defaulting.
func (cfg *Config) itersResolved() int {
	if cfg.Iters <= 0 {
		return 60
	}
	return cfg.Iters
}

// chunkComputeFn advances one chunk by the configured iteration count.
// blk is nil in phantom mode; implementations must call blk.Swap() after
// every iteration so the final state lands per the odd/even convention
// runChunked folds up.
type chunkComputeFn func(lc *core.Ctx, blk *Block, d int) error

// runChunked is the shared out-of-core skeleton: preprocessing, the
// load / compute / store pipeline over chunks, border regeneration between
// passes, and result assembly. RunNorthup plugs in the kernel-launch
// compute; RunSteal plugs in the queue-based CPU+GPU scheduler.
func runChunked(rt *core.Runtime, cfg Config, compute chunkComputeFn) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	root := rt.Tree().Root()
	if root.Store == nil {
		return nil, fmt.Errorf("hotspot: tree root %v is not storage", root)
	}
	dram := root.Children[0]
	n := cfg.N
	d := cfg.ChunkDim
	if d == 0 {
		var err error
		if d, err = chooseChunkDim(n, cfg.Depth, dram.Mem.Free()); err != nil {
			return nil, err
		}
	}
	if n%d != 0 || d%BlockDim != 0 {
		return nil, fmt.Errorf("hotspot: chunk %d invalid for N=%d", d, n)
	}
	cb := n / d
	chunks := cb * cb
	chunkBytes := int64(d) * int64(d) * 4
	borderBytes := int64(4*d) * 4

	// Preprocess inputs (untimed, as in the paper): chunk-major temp and
	// power files, plus the initial border file.
	functional := !rt.Phantom()
	var tempPre, powerPre, border0 []byte
	var grid *workload.Grid
	if functional {
		grid = workload.HotSpotGrid(n, cfg.Seed)
		tempPre = view.F32Bytes(toChunkMajor(grid.Temp, n, d))
		powerPre = view.F32Bytes(toChunkMajor(grid.Power, n, d))
		border0 = view.F32Bytes(packAllBorders(grid.Temp, n, d))
	}
	gridBytes := int64(n) * int64(n) * 4
	fT := [2]*core.Buffer{}
	var err error
	if fT[0], err = rt.CreateInput(root, "hs-temp-0", gridBytes, tempPre); err != nil {
		return nil, err
	}
	if fT[1], err = rt.CreateInput(root, "hs-temp-1", gridBytes, nil); err != nil {
		return nil, err
	}
	fP, err := rt.CreateInput(root, "hs-power", gridBytes, powerPre)
	if err != nil {
		return nil, err
	}
	fB := [2]*core.Buffer{}
	if fB[0], err = rt.CreateInput(root, "hs-border-0", int64(chunks)*borderBytes, border0); err != nil {
		return nil, err
	}
	if fB[1], err = rt.CreateInput(root, "hs-border-1", int64(chunks)*borderBytes, nil); err != nil {
		return nil, err
	}

	type inflight struct {
		tin, tout, pow, bord *core.Buffer
	}
	slots := make([]inflight, chunks)

	stats, err := rt.Run("hotspot-northup", func(c *core.Ctx) error {
		for pass := 0; pass < cfg.Passes; pass++ {
			src, dst := fT[pass%2], fT[(pass+1)%2]
			bSrc, bDst := fB[pass%2], fB[(pass+1)%2]
			// Stage bodies run as named task spans: a traced pass shows the
			// load lane running ahead of compute-store (Fig. 5's overlap).
			err := c.Pipeline(chunks, cfg.Depth,
				func(sub *core.Ctx, ci int) error { // load chunk + borders
					return sub.Task("load-chunk", chunkBytes, func(sub *core.Ctx) error {
						var s inflight
						var err error
						if s.tin, err = sub.AllocAt(dram, chunkBytes); err != nil {
							return err
						}
						if s.tout, err = sub.AllocAt(dram, chunkBytes); err != nil {
							return err
						}
						// Power never changes across iterations or passes, so
						// its chunks come through the staging cache: pass 2+
						// re-reads hit instead of going back to storage. The
						// temperature and border files are rewritten every pass
						// and must not be cached.
						if s.pow, err = sub.MoveDataDownCached(dram, fP, int64(ci)*chunkBytes, chunkBytes); err != nil {
							return err
						}
						if ci+1 < chunks {
							sub.Prefetch(dram, fP, int64(ci+1)*chunkBytes, chunkBytes)
						}
						if s.bord, err = sub.AllocAt(dram, borderBytes); err != nil {
							return err
						}
						slots[ci] = s
						if cfg.Streamed {
							if err := sub.MoveDataDownStreamed(s.tin, src, 0, int64(ci)*chunkBytes, chunkBytes, cfg.StreamOpts); err != nil {
								return err
							}
							return sub.MoveDataDownStreamed(s.bord, bSrc, 0, borderOff(ci, d), borderBytes, cfg.StreamOpts)
						}
						if err := sub.MoveData(s.tin, src, 0, int64(ci)*chunkBytes, chunkBytes); err != nil {
							return err
						}
						return sub.MoveData(s.bord, bSrc, 0, borderOff(ci, d), borderBytes)
					})
				},
				func(sub *core.Ctx, ci int) error { // compute at the leaf, then store
					return sub.Task("compute-store", chunkBytes, func(sub *core.Ctx) error {
						s := slots[ci]
						err := sub.Descend(dram, func(dc *core.Ctx) error {
							return computeChunk(dc, cfg, compute, s.tin, s.tout, s.pow, s.bord,
								d, cb, ci, functional)
						})
						if err != nil {
							return err
						}
						// Store the chunk and the borders its neighbours will
						// read next pass. Keeping store in the compute stage
						// bounds in-flight chunks to depth+1, which is what a
						// 2 GiB staging buffer admits at the paper's 8k
						// blocking.
						if cfg.Streamed {
							if err := sub.MoveDataUpStreamed(dst, s.tin, int64(ci)*chunkBytes, 0, chunkBytes, cfg.StreamOpts); err != nil {
								return err
							}
						} else if err := sub.MoveData(dst, s.tin, int64(ci)*chunkBytes, 0, chunkBytes); err != nil {
							return err
						}
						if err := writeNeighborBorders(sub, bDst, s.tin, d, cb, ci); err != nil {
							return err
						}
						sub.Release(s.tin)
						sub.Release(s.tout)
						sub.Unpin(s.pow)
						sub.Release(s.bord)
						slots[ci] = inflight{}
						return nil
					})
				},
			)
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Stats: stats, ChunkDim: d}
	if functional {
		final := make([]float32, n*n)
		if err := fT[cfg.Passes%2].File().Peek(view.F32Bytes(final), 0); err != nil {
			return nil, err
		}
		res.Temp = fromChunkMajor(final, n, d)
	}
	return res, nil
}

// computeChunk runs the per-chunk iterations at the leaf. On the 2-level
// APU tree dc already is the leaf; on the 3-level discrete tree (Figure 8)
// the chunk and its borders move one more level down into GPU device
// memory, compute there, and the result moves back up over PCIe.
func computeChunk(dc *core.Ctx, cfg Config, compute chunkComputeFn,
	tin, tout, pow, bord *core.Buffer, d, cb, ci int, functional bool) error {

	foldOdd := func(in, out *core.Buffer) {
		if functional && cfg.itersResolved()%2 == 1 {
			// An odd iteration count leaves the result in the out backing
			// array; fold it back so the store path always reads in.
			copy(view.F32(in.Bytes()), view.F32(out.Bytes()))
		}
	}
	mkBlock := func(in, out, power, borders *core.Buffer) *Block {
		if !functional {
			return nil
		}
		return &Block{
			D:     d,
			In:    view.F32(in.Bytes()),
			Out:   view.F32(out.Bytes()),
			Power: view.F32(power.Bytes()),
			B:     unpackBorders(view.F32(borders.Bytes()), d, cb, ci),
		}
	}

	if dc.IsLeaf() {
		if err := compute(dc, mkBlock(tin, tout, pow, bord), d); err != nil {
			return err
		}
		foldOdd(tin, tout)
		return nil
	}

	// 3-level path: stage the chunk into the child (GPU device) memory.
	child := dc.Children()[0]
	chunkBytes := tin.Size()
	gin, err := dc.AllocAt(child, chunkBytes)
	if err != nil {
		return err
	}
	gout, err := dc.AllocAt(child, chunkBytes)
	if err != nil {
		return err
	}
	gpow, err := dc.AllocAt(child, chunkBytes)
	if err != nil {
		return err
	}
	gbord, err := dc.AllocAt(child, bord.Size())
	if err != nil {
		return err
	}
	defer func() {
		dc.Release(gin)
		dc.Release(gout)
		dc.Release(gpow)
		dc.Release(gbord)
	}()
	moveDown := func(dst, src *core.Buffer, n int64) error {
		if cfg.Streamed {
			return dc.MoveDataDownStreamed(dst, src, 0, 0, n, cfg.StreamOpts)
		}
		return dc.MoveDataDown(dst, src, 0, 0, n)
	}
	if err := moveDown(gin, tin, chunkBytes); err != nil {
		return err
	}
	if err := moveDown(gpow, pow, chunkBytes); err != nil {
		return err
	}
	if err := moveDown(gbord, bord, bord.Size()); err != nil {
		return err
	}
	err = dc.Descend(child, func(lc *core.Ctx) error {
		if !lc.IsLeaf() {
			return fmt.Errorf("hotspot: trees deeper than 3 levels are not supported")
		}
		if err := compute(lc, mkBlock(gin, gout, gpow, gbord), d); err != nil {
			return err
		}
		foldOdd(gin, gout)
		return nil
	})
	if err != nil {
		return err
	}
	if cfg.Streamed {
		return dc.MoveDataUpStreamed(tin, gin, 0, 0, chunkBytes, cfg.StreamOpts)
	}
	return dc.MoveDataUp(tin, gin, 0, 0, chunkBytes)
}

// writeNeighborBorders packs the result chunk's edge rows/columns and
// writes them into the border records its four neighbors will read next
// pass. Column edges are gathered into compact vectors first — the §IV-B
// fix for non-contiguous east/west borders.
func writeNeighborBorders(sub *core.Ctx, bDst *core.Buffer, tin *core.Buffer, d, cb, ci int) error {
	bi, bj := ci/cb, ci%cb
	rowBytes := int64(d) * 4
	functional := !sub.Runtime().Phantom()

	// South neighbor's NORTH border = our bottom row (contiguous).
	if bi+1 < cb {
		off := borderOff((bi+1)*cb+bj, d) + 0
		if err := sub.MoveData(bDst, tin, off, int64(d-1)*rowBytes, rowBytes); err != nil {
			return err
		}
	}
	// North neighbor's SOUTH border = our top row (contiguous).
	if bi > 0 {
		off := borderOff((bi-1)*cb+bj, d) + rowBytes
		if err := sub.MoveData(bDst, tin, off, 0, rowBytes); err != nil {
			return err
		}
	}
	// East neighbor's WEST border = our rightmost column (strided; pack it).
	if bj+1 < cb {
		if err := writePackedColumn(sub, bDst, tin, d, functional,
			d-1, borderOff(bi*cb+bj+1, d)+2*rowBytes); err != nil {
			return err
		}
	}
	// West neighbor's EAST border = our leftmost column.
	if bj > 0 {
		if err := writePackedColumn(sub, bDst, tin, d, functional,
			0, borderOff(bi*cb+bj-1, d)+3*rowBytes); err != nil {
			return err
		}
	}
	return nil
}

// writePackedColumn gathers column col of the d x d chunk in tin into a
// compact staging vector (a strided 2-D move, charged as such) and writes
// the packed vector to the border file at fileOff.
func writePackedColumn(sub *core.Ctx, bDst, tin *core.Buffer, d int, functional bool, col int, fileOff int64) error {
	vec, err := sub.AllocAt(tin.Node(), int64(d)*4)
	if err != nil {
		return err
	}
	defer sub.Release(vec)
	if err := sub.MoveData2D(vec, tin, 0, 4, int64(col)*4, int64(d)*4, d, 4); err != nil {
		return err
	}
	return sub.MoveData(bDst, vec, fileOff, 0, int64(d)*4)
}

// toChunkMajor reorders a row-major n x n grid into chunk-major layout
// (chunk (bi,bj) of d x d stored contiguously, row-major within the chunk).
func toChunkMajor(g []float32, n, d int) []float32 {
	cb := n / d
	out := make([]float32, n*n)
	for bi := 0; bi < cb; bi++ {
		for bj := 0; bj < cb; bj++ {
			base := (bi*cb + bj) * d * d
			for r := 0; r < d; r++ {
				copy(out[base+r*d:base+(r+1)*d], g[(bi*d+r)*n+bj*d:(bi*d+r)*n+(bj+1)*d])
			}
		}
	}
	return out
}

// fromChunkMajor inverts toChunkMajor.
func fromChunkMajor(g []float32, n, d int) []float32 {
	cb := n / d
	out := make([]float32, n*n)
	for bi := 0; bi < cb; bi++ {
		for bj := 0; bj < cb; bj++ {
			base := (bi*cb + bj) * d * d
			for r := 0; r < d; r++ {
				copy(out[(bi*d+r)*n+bj*d:(bi*d+r)*n+(bj+1)*d], g[base+r*d:base+(r+1)*d])
			}
		}
	}
	return out
}

// packAllBorders builds the initial border file content from the row-major
// grid: for each chunk, four d-vectors (N, S, W, E), zeros where the chunk
// touches the grid edge.
func packAllBorders(temp []float32, n, d int) []float32 {
	cb := n / d
	out := make([]float32, cb*cb*4*d)
	for bi := 0; bi < cb; bi++ {
		for bj := 0; bj < cb; bj++ {
			ci := bi*cb + bj
			base := ci * 4 * d
			i0, j0 := bi*d, bj*d
			if i0 > 0 {
				copy(out[base:base+d], temp[(i0-1)*n+j0:(i0-1)*n+j0+d])
			}
			if i0+d < n {
				copy(out[base+d:base+2*d], temp[(i0+d)*n+j0:(i0+d)*n+j0+d])
			}
			if j0 > 0 {
				for r := 0; r < d; r++ {
					out[base+2*d+r] = temp[(i0+r)*n+j0-1]
				}
			}
			if j0+d < n {
				for r := 0; r < d; r++ {
					out[base+3*d+r] = temp[(i0+r)*n+j0+d]
				}
			}
		}
	}
	return out
}

// unpackBorders builds a Borders view over a chunk's border buffer,
// nil-ing the sides where chunk ci touches the grid edge.
func unpackBorders(b []float32, d, cb, ci int) Borders {
	bi, bj := ci/cb, ci%cb
	var out Borders
	if bi > 0 {
		out.North = b[0:d]
	}
	if bi+1 < cb {
		out.South = b[d : 2*d]
	}
	if bj > 0 {
		out.West = b[2*d : 3*d]
	}
	if bj+1 < cb {
		out.East = b[3*d : 4*d]
	}
	return out
}

// RunInMemory executes the in-memory baseline: the whole grid resident in
// DRAM, Iters kernel launches, no I/O in the measured region.
func RunInMemory(rt *core.Runtime, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rootNode := rt.Tree().Root()
	if rootNode.Store != nil {
		return nil, fmt.Errorf("hotspot: in-memory baseline needs a DRAM root (got %v)", rootNode)
	}
	n := cfg.N
	gridBytes := int64(n) * int64(n) * 4
	functional := !rt.Phantom()
	iters := cfg.Iters * cfg.Passes

	var res *Result
	stats, err := rt.Run("hotspot-inmemory", func(c *core.Ctx) error {
		tin, err := c.Alloc(gridBytes)
		if err != nil {
			return err
		}
		tout, err := c.Alloc(gridBytes)
		if err != nil {
			return err
		}
		pow, err := c.Alloc(gridBytes)
		if err != nil {
			return err
		}
		var blk *Block
		if functional {
			grid := workload.HotSpotGrid(n, cfg.Seed)
			blk = &Block{D: n, In: view.F32(tin.Bytes()), Out: view.F32(tout.Bytes()),
				Power: view.F32(pow.Bytes())}
			copy(blk.In, grid.Temp)
			copy(blk.Power, grid.Power)
		}
		for it := 0; it < iters; it++ {
			kern, groups := TileKernelFor(blk, n)
			if _, err := c.LaunchKernel(kern, groups); err != nil {
				return err
			}
			if blk != nil {
				blk.Swap()
			}
		}
		res = &Result{ChunkDim: n}
		if functional {
			res.Temp = append([]float32(nil), blk.In...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}
