package hotspot

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// TestStreamed3LevelMatchesReference asserts streaming the chunk, halo, and
// GPU staging moves is functionally transparent on the discrete tree.
func TestStreamed3LevelMatchesReference(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
		StorageMiB: 64, DRAMMiB: 8, GPUMemMiB: 4})
	rt := core.NewRuntime(e, tree, core.DefaultOptions())
	cfg := Config{N: 64, Seed: 6, ChunkDim: 32, Iters: 3, Passes: 2, Streamed: true,
		StreamOpts: core.StreamOptions{SubChunks: 3, MinSubChunkBytes: 512}}
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.HotSpotGrid(cfg.N, cfg.Seed)
	mid, err := ReferenceBlocked(g.Temp, g.Power, cfg.N, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceBlocked(mid, g.Power, cfg.N, cfg.ChunkDim, cfg.Iters)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Temp, want) {
		t.Fatal("streamed 3-level result differs from blocked reference")
	}
	if ss := rt.StreamStats(); ss.Streams == 0 {
		t.Fatalf("streaming engine not exercised: %+v", ss)
	}
}

// TestStreamedAdaptiveNoWorse asserts adaptive streaming never slows the
// 2-level run down (single-hop moves degenerate to the monolithic path).
func TestStreamedAdaptiveNoWorse(t *testing.T) {
	elapsed := func(streamed bool) sim.Time {
		rt := newHotspotRuntime(true, 8)
		res, err := RunNorthup(rt, Config{N: 128, Seed: 5, ChunkDim: 64, Iters: 2,
			Streamed: streamed})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Elapsed
	}
	if s, m := elapsed(true), elapsed(false); s > m {
		t.Fatalf("adaptive streamed run slower than monolithic: %v > %v", s, m)
	}
}
