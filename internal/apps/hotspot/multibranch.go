package hotspot

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/view"
	"repro/internal/workload"
)

// This file exercises the asymmetric, multi-branch trees of the paper's
// Figure 2: a storage root with several staging children, each with its own
// processor. §V-E: "The system is subject to load imbalance when uneven
// workloads are assigned to different subtrees. Northup's topological tree
// structure is able to naturally support dynamic load balancing when tree
// nodes store information such as on-going tasks at different subtrees."
//
// Chunks are tracked in a root-level work queue (Listing 1's work_queue on
// the root node); each branch runs a worker that pops the next chunk, pulls
// it into its own staging memory, computes on its own processor, and writes
// the result back. Faster branches naturally take more chunks.

// BranchPolicy selects how chunks are assigned to subtrees.
type BranchPolicy int

const (
	// StaticPartition splits chunks evenly across branches up front: the
	// imbalance-prone baseline.
	StaticPartition BranchPolicy = iota
	// DynamicQueue lets branches pop chunks from a shared root queue as
	// they finish: the tree-supported balancing of §V-E.
	DynamicQueue
)

// String names the policy.
func (p BranchPolicy) String() string {
	if p == StaticPartition {
		return "static"
	}
	return "dynamic"
}

// MultiBranchConfig parameterizes a multi-branch stencil run.
type MultiBranchConfig struct {
	N        int
	Seed     int64
	ChunkDim int
	Iters    int
	Policy   BranchPolicy
}

// MultiBranchResult reports the run and the per-branch chunk counts.
type MultiBranchResult struct {
	Temp           []float32
	Stats          core.RunStats
	ChunksByBranch []int
}

// RunMultiBranch executes one out-of-core pass with chunks spread across
// all of the root's staging branches. Each branch must be a memory node
// with a GPU leaf context (the branch node itself may be the leaf).
// Borders are taken from the pass-start state, as in RunNorthup; the result
// is identical to the single-branch blocked execution regardless of policy
// or branch count.
func RunMultiBranch(rt *core.Runtime, cfg MultiBranchConfig) (*MultiBranchResult, error) {
	if cfg.N <= 0 || cfg.ChunkDim <= 0 || cfg.N%cfg.ChunkDim != 0 || cfg.ChunkDim%BlockDim != 0 {
		return nil, fmt.Errorf("hotspot: invalid multibranch config N=%d chunk=%d", cfg.N, cfg.ChunkDim)
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 60
	}
	root := rt.Tree().Root()
	if root.Store == nil {
		return nil, fmt.Errorf("hotspot: tree root %v is not storage", root)
	}
	branches := root.Children
	if len(branches) < 1 {
		return nil, fmt.Errorf("hotspot: no staging branches under the root")
	}

	n, d := cfg.N, cfg.ChunkDim
	cb := n / d
	chunks := cb * cb
	chunkBytes := int64(d) * int64(d) * 4
	borderBytes := int64(4*d) * 4
	gridBytes := int64(n) * int64(n) * 4
	functional := !rt.Phantom()

	var tempPre, powerPre, border0 []byte
	if functional {
		grid := workload.HotSpotGrid(n, cfg.Seed)
		tempPre = view.F32Bytes(toChunkMajor(grid.Temp, n, d))
		powerPre = view.F32Bytes(toChunkMajor(grid.Power, n, d))
		border0 = view.F32Bytes(packAllBorders(grid.Temp, n, d))
	}
	fIn, err := rt.CreateInput(root, "mb-temp-in", gridBytes, tempPre)
	if err != nil {
		return nil, err
	}
	fOut, err := rt.CreateInput(root, "mb-temp-out", gridBytes, nil)
	if err != nil {
		return nil, err
	}
	fP, err := rt.CreateInput(root, "mb-power", gridBytes, powerPre)
	if err != nil {
		return nil, err
	}
	fB, err := rt.CreateInput(root, "mb-border", int64(chunks)*borderBytes, border0)
	if err != nil {
		return nil, err
	}

	res := &MultiBranchResult{ChunksByBranch: make([]int, len(branches))}

	stats, err := rt.Run("hotspot-multibranch", func(c *core.Ctx) error {
		// The root work queue tracks chunk tasks (Listing 1); with the
		// static policy each branch gets its own pre-filled queue instead.
		var shared *sched.Deque[int]
		var perBranch []*sched.Deque[int]
		ids := make([]int, chunks)
		for i := range ids {
			ids[i] = i
		}
		if cfg.Policy == DynamicQueue {
			shared = sched.NewDeque[int]("root-chunks")
			for _, id := range ids {
				shared.PushTail(id)
			}
			root.Queues = []sched.Monitor{shared}
		} else {
			perBranch = sched.Partition(ids, len(branches), "branch")
			mons := make([]sched.Monitor, len(perBranch))
			for i, q := range perBranch {
				mons[i] = q
			}
			root.Queues = mons
		}

		wg := sim.NewWaitGroup(c.Runtime().Engine())
		for bi, branch := range branches {
			bi, branch := bi, branch
			wg.Add(1)
			c.Spawn(fmt.Sprintf("branch%d", bi), c.Node(), func(sub *core.Ctx) error {
				defer wg.Done()
				next := func() (int, bool) {
					if cfg.Policy == DynamicQueue {
						return shared.StealHead()
					}
					return perBranch[bi].StealHead()
				}
				for {
					ci, ok := next()
					if !ok {
						return nil
					}
					if err := processBranchChunk(sub, branch, cfg, ci, cb,
						chunkBytes, borderBytes, fIn, fOut, fP, fB, functional); err != nil {
						return err
					}
					res.ChunksByBranch[bi]++
				}
			})
		}
		wg.Wait(c.Proc())
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	if functional {
		final := make([]float32, n*n)
		if err := fOut.File().Peek(view.F32Bytes(final), 0); err != nil {
			return nil, err
		}
		res.Temp = fromChunkMajor(final, n, d)
	}
	return res, nil
}

// processBranchChunk runs one chunk through one branch: load into the
// branch's staging memory, iterate at its leaf, store back.
func processBranchChunk(sub *core.Ctx, branch *topo.Node, cfg MultiBranchConfig,
	ci, cb int, chunkBytes, borderBytes int64,
	fIn, fOut, fP, fB *core.Buffer, functional bool) error {

	d := cfg.ChunkDim
	tin, err := sub.AllocAt(branch, chunkBytes)
	if err != nil {
		return err
	}
	tout, err := sub.AllocAt(branch, chunkBytes)
	if err != nil {
		return err
	}
	pow, err := sub.AllocAt(branch, chunkBytes)
	if err != nil {
		return err
	}
	bord, err := sub.AllocAt(branch, borderBytes)
	if err != nil {
		return err
	}
	defer func() {
		sub.Release(tin)
		sub.Release(tout)
		sub.Release(pow)
		sub.Release(bord)
	}()
	if err := sub.MoveData(tin, fIn, 0, int64(ci)*chunkBytes, chunkBytes); err != nil {
		return err
	}
	if err := sub.MoveData(pow, fP, 0, int64(ci)*chunkBytes, chunkBytes); err != nil {
		return err
	}
	if err := sub.MoveData(bord, fB, 0, borderOff(ci, d), borderBytes); err != nil {
		return err
	}
	err = sub.Descend(branch, func(lc *core.Ctx) error {
		var blk *Block
		if functional {
			blk = &Block{
				D:     d,
				In:    view.F32(tin.Bytes()),
				Out:   view.F32(tout.Bytes()),
				Power: view.F32(pow.Bytes()),
				B:     unpackBorders(view.F32(bord.Bytes()), d, cb, ci),
			}
		}
		for it := 0; it < cfg.Iters; it++ {
			kern, groups := TileKernelFor(blk, d)
			if _, err := lc.LaunchKernel(kern, groups); err != nil {
				return err
			}
			if blk != nil {
				blk.Swap()
			}
		}
		if functional && cfg.Iters%2 == 1 {
			copy(view.F32(tin.Bytes()), view.F32(tout.Bytes()))
		}
		return nil
	})
	if err != nil {
		return err
	}
	return sub.MoveData(fOut, tin, int64(ci)*chunkBytes, 0, chunkBytes)
}
