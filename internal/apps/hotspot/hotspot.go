// Package hotspot implements the paper's second case study (§IV-B): the
// HotSpot-2D thermal simulation (a 5-point Jacobi stencil over temperature
// and power grids, after Rodinia), as an in-memory GPU baseline, a Northup
// out-of-core version with packed border vectors, and a CPU+GPU
// work-stealing variant (§V-E, Figure 10) used by the load-balancing study.
//
// Out-of-core semantics: a pass loads each chunk once, runs Iters Jacobi
// steps on it with the chunk's four border vectors fixed at their pass-start
// values (the paper moves the borders down once per chunk, §IV-B), and
// writes the chunk back. With Iters=1 this is exactly the global Jacobi
// step; with more iterations it is the standard blocked approximation, and
// correctness is verified against ReferenceBlocked, which implements the
// identical semantics sequentially.
package hotspot

import "fmt"

// BlockDim is the GPU workgroup tile edge (16x16 in the paper, with
// (BlockDim+2)^2 local-memory staging).
const BlockDim = 16

// Physical constants of the thermal model (Rodinia-flavored, folded into
// three update coefficients; values keep the Jacobi iteration stable).
const (
	coefN   = 0.125 // vertical-neighbor coupling (dt / (cap * Ry))
	coefE   = 0.125 // horizontal-neighbor coupling (dt / (cap * Rx))
	coefAmb = 0.05  // coupling to ambient (dt / (cap * Rz))
	ambient = 300.0 // Kelvin
	powerK  = 1e4   // power-to-temperature scale (dt / cap)
)

// updateCell computes one Jacobi update given the cell's neighbors.
func updateCell(t, tn, ts, tw, te, p float32) float32 {
	return t +
		coefN*(tn+ts-2*t) +
		coefE*(tw+te-2*t) +
		coefAmb*(ambient-t) +
		powerK*p
}

// Borders holds a chunk's four packed border vectors: the rows/columns just
// outside the chunk, each of length D (the chunk edge). A nil vector means
// the chunk touches the grid boundary on that side (clamped, as in Rodinia).
type Borders struct {
	North, South, West, East []float32
}

// Block describes one stencil operand: a D x D temperature chunk with its
// borders and power map.
type Block struct {
	D       int
	In, Out []float32 // D*D each
	Power   []float32
	B       Borders
}

// at reads the pass-start temperature at (i, j), which may lie one cell
// outside the chunk; border vectors supply those values, and missing
// borders clamp to the nearest in-chunk cell.
func (blk *Block) at(i, j int) float32 {
	d := blk.D
	switch {
	case i < 0:
		if blk.B.North != nil {
			return blk.B.North[j]
		}
		i = 0
	case i >= d:
		if blk.B.South != nil {
			return blk.B.South[j]
		}
		i = d - 1
	case j < 0:
		if blk.B.West != nil {
			return blk.B.West[i]
		}
		j = 0
	case j >= d:
		if blk.B.East != nil {
			return blk.B.East[i]
		}
		j = d - 1
	}
	return blk.In[i*d+j]
}

// StepTile advances one BlockDim x BlockDim tile (tile coordinates ty, tx)
// of the block by one Jacobi iteration: the functional body of one GPU
// workgroup.
func (blk *Block) StepTile(ty, tx int) {
	d := blk.D
	i1, j1 := (ty+1)*BlockDim, (tx+1)*BlockDim
	if i1 > d {
		i1 = d
	}
	if j1 > d {
		j1 = d
	}
	for i := ty * BlockDim; i < i1; i++ {
		for j := tx * BlockDim; j < j1; j++ {
			blk.Out[i*d+j] = updateCell(
				blk.In[i*d+j],
				blk.at(i-1, j), blk.at(i+1, j),
				blk.at(i, j-1), blk.at(i, j+1),
				blk.Power[i*d+j],
			)
		}
	}
}

// Swap exchanges the in and out grids between iterations.
func (blk *Block) Swap() { blk.In, blk.Out = blk.Out, blk.In }

// TileFlops and TileBytes are the per-workgroup roofline inputs: ~15 flops
// per cell, and traffic of the (BlockDim+2)^2 halo load, the power map and
// the output store.
const (
	TileFlops = 15 * BlockDim * BlockDim
	TileBytes = 4 * ((BlockDim+2)*(BlockDim+2) + 2*BlockDim*BlockDim)
)

// TileLocalBytes is the local-memory allocation per workgroup: the
// (BlockDim+2)^2 staging array of §IV-B.
const TileLocalBytes = (BlockDim + 2) * (BlockDim + 2) * 4

// Reference advances the full n x n grid by iters global Jacobi steps —
// the ground truth for single-iteration passes and the in-memory baseline.
func Reference(temp, power []float32, n, iters int) []float32 {
	in := append([]float32(nil), temp...)
	out := make([]float32, n*n)
	clamp := func(i, lo, hi int) int {
		if i < lo {
			return lo
		}
		if i > hi {
			return hi
		}
		return i
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				out[i*n+j] = updateCell(
					in[i*n+j],
					in[clamp(i-1, 0, n-1)*n+j], in[clamp(i+1, 0, n-1)*n+j],
					in[i*n+clamp(j-1, 0, n-1)], in[i*n+clamp(j+1, 0, n-1)],
					power[i*n+j],
				)
			}
		}
		in, out = out, in
	}
	return in
}

// ReferenceBlocked advances the grid with the blocked out-of-core
// semantics: the grid is divided into chunkDim x chunkDim chunks; each
// chunk runs iters Jacobi steps with border vectors frozen at their
// pass-start values. It is the oracle the Northup run must match exactly.
func ReferenceBlocked(temp, power []float32, n, chunkDim, iters int) ([]float32, error) {
	if n%chunkDim != 0 {
		return nil, fmt.Errorf("hotspot: chunk %d does not divide %d", chunkDim, n)
	}
	cb := n / chunkDim
	result := make([]float32, n*n)
	for bi := 0; bi < cb; bi++ {
		for bj := 0; bj < cb; bj++ {
			blk := ExtractBlock(temp, power, n, chunkDim, bi, bj)
			for it := 0; it < iters; it++ {
				for ty := 0; ty < (chunkDim+BlockDim-1)/BlockDim; ty++ {
					for tx := 0; tx < (chunkDim+BlockDim-1)/BlockDim; tx++ {
						blk.StepTile(ty, tx)
					}
				}
				blk.Swap()
			}
			// After the final Swap, In holds the result.
			for r := 0; r < chunkDim; r++ {
				copy(result[(bi*chunkDim+r)*n+bj*chunkDim:(bi*chunkDim+r)*n+(bj+1)*chunkDim],
					blk.In[r*chunkDim:(r+1)*chunkDim])
			}
		}
	}
	return result, nil
}

// ExtractBlock cuts chunk (bi, bj) out of the full grids, packing its
// border vectors, entirely on the host (used by the oracle and by
// preprocessing).
func ExtractBlock(temp, power []float32, n, d, bi, bj int) *Block {
	blk := &Block{
		D:     d,
		In:    make([]float32, d*d),
		Out:   make([]float32, d*d),
		Power: make([]float32, d*d),
	}
	i0, j0 := bi*d, bj*d
	for r := 0; r < d; r++ {
		copy(blk.In[r*d:(r+1)*d], temp[(i0+r)*n+j0:(i0+r)*n+j0+d])
		copy(blk.Power[r*d:(r+1)*d], power[(i0+r)*n+j0:(i0+r)*n+j0+d])
	}
	if i0 > 0 {
		blk.B.North = append([]float32(nil), temp[(i0-1)*n+j0:(i0-1)*n+j0+d]...)
	}
	if i0+d < n {
		blk.B.South = append([]float32(nil), temp[(i0+d)*n+j0:(i0+d)*n+j0+d]...)
	}
	if j0 > 0 {
		blk.B.West = make([]float32, d)
		for r := 0; r < d; r++ {
			blk.B.West[r] = temp[(i0+r)*n+j0-1]
		}
	}
	if j0+d < n {
		blk.B.East = make([]float32, d)
		for r := 0; r < d; r++ {
			blk.B.East[r] = temp[(i0+r)*n+j0+d]
		}
	}
	return blk
}
