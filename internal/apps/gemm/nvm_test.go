package gemm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// newNVMRuntime builds the §VI deep hierarchy: HDD -> NVM -> DRAM(+GPU).
// The NVM level is large enough to hold B; DRAM is small enough to force
// chunking.
func newNVMRuntime(phantom bool, storageMiB, nvmMiB, dramMiB int64) *core.Runtime {
	e := sim.NewEngine()
	tree := topo.APUWithNVM(e, topo.NVMConfig{Storage: topo.HDD,
		StorageMiB: storageMiB, NVMMiB: nvmMiB, DRAMMiB: dramMiB})
	opts := core.DefaultOptions()
	opts.Phantom = phantom
	return core.NewRuntime(e, tree, opts)
}

func TestNorthupOnNVMTreeMatchesReference(t *testing.T) {
	// The unchanged application must run on the deeper tree: shards stage
	// at NVM, k-panels move to DRAM, the kernel runs at the leaf.
	cfg := Config{N: 256, Seed: 31}
	rt := newNVMRuntime(false, 64, 2, 1)
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	A := workload.Dense(cfg.N, cfg.N, cfg.Seed)
	B := workload.Dense(cfg.N, cfg.N, cfg.Seed+1)
	want := make([]float32, cfg.N*cfg.N)
	Reference(want, A, B, cfg.N, cfg.N, cfg.N)
	if !almostEqual(res.C, want, cfg.N) {
		t.Fatal("NVM-tree result differs from reference")
	}
}

func TestStageBMatchesReference(t *testing.T) {
	cfg := Config{N: 256, Seed: 31, StageB: true}
	rt := newNVMRuntime(false, 64, 4, 1)
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BStaged {
		t.Fatal("StageB not honoured")
	}
	A := workload.Dense(cfg.N, cfg.N, cfg.Seed)
	B := workload.Dense(cfg.N, cfg.N, cfg.Seed+1)
	want := make([]float32, cfg.N*cfg.N)
	Reference(want, A, B, cfg.N, cfg.N, cfg.N)
	if !almostEqual(res.C, want, cfg.N) {
		t.Fatal("StageB result differs from reference")
	}
}

func TestStageBReducesStorageTraffic(t *testing.T) {
	// §VI's claim, quantified: with B resident at the NVM level, storage
	// reads drop from ~(CB+1)·N² to ~2·N² floats, and on a disk-backed
	// root the run gets substantially faster.
	// NVM is sized like real NVM: far larger than B, so staging does not
	// shrink the shard working set.
	run := func(stage bool) (elapsed sim.Time, rootReadBytes int64) {
		rt := newNVMRuntime(true, 256, 64, 4)
		// Fix the shard size so both runs chunk identically (4x4 grid).
		res, err := RunNorthup(rt, Config{N: 1024, Seed: 1, ShardDim: 256, StageB: stage})
		if err != nil {
			t.Fatal(err)
		}
		reads, _, _, _ := rt.Tree().Root().Mem.Stats()
		return res.Stats.Elapsed, reads
	}
	tPlain, readsPlain := run(false)
	tStaged, readsStaged := run(true)
	if readsStaged >= readsPlain {
		t.Fatalf("staging did not reduce storage reads: %d vs %d", readsStaged, readsPlain)
	}
	// B re-reads should drop by roughly the chunk-grid factor.
	if float64(readsPlain)/float64(readsStaged) < 1.5 {
		t.Fatalf("read reduction too small: %d -> %d", readsPlain, readsStaged)
	}
	if tStaged >= tPlain {
		t.Fatalf("staging not faster on disk root: %v vs %v", tStaged, tPlain)
	}
}

func TestStageBRequiresCapacity(t *testing.T) {
	// A staging level too small for B must be rejected up front.
	rt := newNVMRuntime(true, 64, 1, 1) // NVM 1 MiB < B (4 MiB at N=1024)
	if _, err := RunNorthup(rt, Config{N: 1024, StageB: true}); err == nil {
		t.Fatal("StageB accepted without capacity")
	}
}
