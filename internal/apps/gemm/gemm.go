// Package gemm implements the paper's first case study (§IV-A): tiled dense
// matrix multiply C = A·B, as an in-memory GPU baseline and as a Northup
// out-of-core recursive program with row/column shards.
//
// The GPU kernel follows the paper's optimized tiled OpenCL baseline: each
// workgroup produces one TileDim x TileDim block of C, staging KTile-wide
// panels of A and B through local memory (the paper's 16x16 local blocking).
package gemm

import (
	"fmt"

	"repro/internal/gpu"
)

const (
	// TileDim is the C-tile edge computed by one workgroup.
	TileDim = 64
	// KTile is the local-memory blocking depth (16x16 tiles in the paper).
	KTile = 16
)

// Reference computes C = A(n x k) * B(k x m) on the host, row-major.
// It is the correctness oracle for both the baseline and Northup runs.
func Reference(C, A, B []float32, n, k, m int) {
	for i := 0; i < n; i++ {
		ci := C[i*m : (i+1)*m]
		for j := range ci {
			ci[j] = 0
		}
		for kk := 0; kk < k; kk++ {
			a := A[i*k+kk]
			if a == 0 {
				continue
			}
			bk := B[kk*m : kk*m+m]
			for j, bv := range bk {
				ci[j] += a * bv
			}
		}
	}
}

// Groups returns the workgroup count of a TileKernel over an n x m output.
func Groups(n, m int) int {
	tx := (m + TileDim - 1) / TileDim
	ty := (n + TileDim - 1) / TileDim
	return tx * ty
}

// TileKernel builds the tiled GEMM kernel computing C(n x m) = A(n x k) *
// B(k x m), or += when accumulate is set (used for k-panel accumulation on
// the 3-level topology). Pass nil slices for a phantom (timing-only) kernel.
//
// Cost model: 2*TileDim^2*k flops per group; device traffic of one A strip,
// one B strip and the C tile per group (local-memory reuse folded in).
func TileKernel(C, A, B []float32, n, k, m int, accumulate bool) (gpu.Kernel, int) {
	tilesX := (m + TileDim - 1) / TileDim
	groups := Groups(n, m)
	kern := gpu.Kernel{
		Name:          "gemm-tile",
		FlopsPerGroup: 2 * float64(TileDim) * float64(TileDim) * float64(k),
		BytesPerGroup: 4 * (2*float64(TileDim)*float64(k) + float64(TileDim*TileDim)),
		LocalBytes:    2 * TileDim * KTile * 4,
	}
	if C == nil {
		return kern, groups
	}
	if len(A) < n*k || len(B) < k*m || len(C) < n*m {
		panic(fmt.Sprintf("gemm: kernel operands too small for %dx%dx%d", n, k, m))
	}
	kern.Run = func(g int) {
		ty, tx := g/tilesX, g%tilesX
		i0, j0 := ty*TileDim, tx*TileDim
		i1, j1 := i0+TileDim, j0+TileDim
		if i1 > n {
			i1 = n
		}
		if j1 > m {
			j1 = m
		}
		for i := i0; i < i1; i++ {
			out := C[i*m+j0 : i*m+j1]
			if !accumulate {
				for j := range out {
					out[j] = 0
				}
			}
			// KTile-stepped inner blocking mirrors the local-memory
			// staging; functionally it is a plain dot-product update.
			for kk0 := 0; kk0 < k; kk0 += KTile {
				kk1 := kk0 + KTile
				if kk1 > k {
					kk1 = k
				}
				for kk := kk0; kk < kk1; kk++ {
					a := A[i*k+kk]
					if a == 0 {
						continue
					}
					brow := B[kk*m+j0 : kk*m+j1]
					for j, bv := range brow {
						out[j] += a * bv
					}
				}
			}
		}
	}
	return kern, groups
}

// PreshardB reorders B (n x n row-major) into column-shard-major layout:
// shard j holds rows 0..n of columns [j*S, (j+1)*S), stored row-major and
// contiguously at offset j*n*S. This is the paper's one-time preprocessing
// that makes every out-of-core read sequential (§V-B).
func PreshardB(B []float32, n, S int) []float32 {
	if n%S != 0 {
		panic(fmt.Sprintf("gemm: shard width %d does not divide %d", S, n))
	}
	shards := n / S
	out := make([]float32, n*n)
	for j := 0; j < shards; j++ {
		base := j * n * S
		for r := 0; r < n; r++ {
			copy(out[base+r*S:base+(r+1)*S], B[r*n+j*S:r*n+(j+1)*S])
		}
	}
	return out
}
