package gemm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/view"
	"repro/internal/workload"
)

// Config parameterizes a GEMM run.
type Config struct {
	// N is the matrix dimension (C = A·B, all N x N).
	N int
	// Seed drives input generation (functional runs only).
	Seed int64
	// ShardDim forces the DRAM blocking size S (the paper's 4k for 16k
	// inputs); 0 derives it from the staging buffer's capacity.
	ShardDim int
	// Depth is the chunk-pipeline depth (in-flight column shards); the
	// default 2 gives double buffering.
	Depth int
	// Sequential disables the chunk pipeline: each column shard is
	// loaded, multiplied and stored strictly in order, with no overlap
	// between I/O and compute. It is the baseline the §III-C multi-stage
	// transfer optimization is measured against.
	Sequential bool
	// StageB keeps the whole B matrix resident at the staging level for
	// the duration of the run, so column shards re-read it from there
	// instead of from storage — the §VI "NVM as per-node slower memory"
	// optimization. It requires the staging level (typically an NVM node,
	// see topo.APUWithNVM) to hold B on top of the shard working set.
	StageB bool
	// Streamed routes the A row-shard loads, the B k-panel loads, and the
	// C stores through the streaming transfer engine (§III-C multi-stage
	// transfers): each move is split into sub-chunks so successive hops of
	// the path overlap. On single-hop moves with adaptive sizing the
	// streamed path degenerates to the monolithic one bit- and
	// time-identically.
	Streamed bool
	// StreamOpts tunes the streamed moves (zero value = adaptive sizing
	// with double-buffered staging rings).
	StreamOpts core.StreamOptions
}

func (cfg *Config) setDefaults() error {
	if cfg.N <= 0 || cfg.N%TileDim != 0 {
		return fmt.Errorf("gemm: N=%d must be a positive multiple of %d", cfg.N, TileDim)
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 2
	}
	return nil
}

// Result carries a run's output and measurements.
type Result struct {
	// C is the row-major product (nil in phantom mode).
	C []float32
	// Stats is the measured run (excludes input preprocessing, as the
	// paper excludes its one-time file reorganization).
	Stats core.RunStats
	// ShardDim is the DRAM blocking size actually used.
	ShardDim int
	// BStaged reports whether B was kept resident at the staging level.
	BStaged bool
}

// chooseShardDim picks the largest S that divides n, is a multiple of
// TileDim, and lets a row shard, depth+1 column shards and depth+1 C blocks
// fit the free bytes (the §III-B capacity-driven blocking decision).
func chooseShardDim(n, depth int, free int64) (int, error) {
	for s := n; s >= TileDim; s -= TileDim {
		if n%s != 0 || s%TileDim != 0 {
			continue
		}
		need := 4 * (int64(s)*int64(n)*int64(depth+2) + int64(s)*int64(s)*int64(depth+1))
		if need <= free*9/10 {
			return s, nil
		}
	}
	return 0, fmt.Errorf("gemm: no shard size fits %d free bytes for N=%d", free, n)
}

// RunNorthup executes out-of-core GEMM on the runtime's tree. The tree root
// must be a storage node holding the inputs; the algorithm follows §IV-A:
// row and column shards move to the staging level, a row shard is reused
// across all column shards of its row of C blocks, and on 3-level trees the
// shard product is further decomposed into k-panels accumulated in GPU
// device memory.
func RunNorthup(rt *core.Runtime, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	root := rt.Tree().Root()
	if root.Store == nil {
		return nil, fmt.Errorf("gemm: tree root %v is not storage", root)
	}
	if len(root.Children) != 1 {
		return nil, fmt.Errorf("gemm: expected a single staging child under the root")
	}
	dram := root.Children[0]

	n := cfg.N
	elems := int64(n) * int64(n)
	freeForShards := dram.Mem.Free()
	if cfg.StageB {
		freeForShards -= elems * 4
		if freeForShards <= 0 {
			return nil, fmt.Errorf("gemm: StageB needs %d bytes at %v on top of the shard working set",
				elems*4, dram)
		}
	}
	s := cfg.ShardDim
	if s == 0 {
		var err error
		if s, err = chooseShardDim(n, cfg.Depth, freeForShards); err != nil {
			return nil, err
		}
	}
	if n%s != 0 {
		return nil, fmt.Errorf("gemm: shard %d does not divide N=%d", s, n)
	}
	cb := n / s // chunk grid is cb x cb

	// Inputs resident on storage. B is presharded (the paper's one-time
	// preprocessing); in phantom mode only the file extents exist.
	var aData, bPre []float32
	functional := !rt.Phantom()
	if functional {
		aData = workload.Dense(n, n, cfg.Seed)
		b := workload.Dense(n, n, cfg.Seed+1)
		bPre = PreshardB(b, n, s)
	}
	fa, err := rt.CreateInput(root, "gemm-A", elems*4, view.F32Bytes(aData))
	if err != nil {
		return nil, err
	}
	fb, err := rt.CreateInput(root, "gemm-B", elems*4, view.F32Bytes(bPre))
	if err != nil {
		return nil, err
	}
	fc, err := rt.CreateInput(root, "gemm-C", elems*4, nil)
	if err != nil {
		return nil, err
	}

	shardBytes := int64(s) * int64(n) * 4
	blockBytes := int64(s) * int64(s) * 4

	stats, err := rt.Run("gemm-northup", func(c *core.Ctx) error {
		// §VI staging: read B from storage once and keep it resident at
		// the (large, NVM-class) staging level; all column-shard reloads
		// then stay on-node instead of going back to the root. Residency is
		// a pinned whole-B fetch through the staging cache; with the cache
		// disabled the fetch degrades to a private staged copy with the
		// same bytes and timing.
		colSrc := fb
		if cfg.StageB {
			bRes, err := c.MoveDataDownCached(dram, fb, 0, elems*4)
			if err != nil {
				return err
			}
			defer c.Unpin(bRes)
			colSrc = bRes
		}
		rowShard, err := c.AllocAt(dram, shardBytes)
		if err != nil {
			return err
		}
		defer c.Release(rowShard)
		colShards := make([]*core.Buffer, cb)
		cBlocks := make([]*core.Buffer, cb)
		for i := 0; i < cb; i++ {
			// Load the row shard once; it is reused by every column shard
			// of this block row (the §IV-A reuse optimization).
			if cfg.Streamed {
				if err := c.MoveDataDownStreamed(rowShard, fa, 0, int64(i)*shardBytes, shardBytes, cfg.StreamOpts); err != nil {
					return err
				}
			} else if err := c.MoveDataDown(rowShard, fa, 0, int64(i)*shardBytes, shardBytes); err != nil {
				return err
			}
			depth := cfg.Depth
			stageRunner := c.Pipeline
			if cfg.Sequential {
				stageRunner = c.Sequential
			}
			// Each stage body runs as a named task span, so a traced run
			// renders the pipeline's load/multiply/store overlap (the
			// paper's Fig. 5 picture) as staggered task lanes.
			err := stageRunner(cb, depth,
				func(sub *core.Ctx, j int) error { // load column shard
					return sub.Task("load-shard", shardBytes, func(sub *core.Ctx) error {
						if cfg.StageB {
							// B is already resident at the staging level: the
							// reload is an on-node copy out of the pinned image.
							buf, err := sub.AllocAt(dram, shardBytes)
							if err != nil {
								return err
							}
							colShards[j] = buf
							return sub.MoveData(buf, colSrc, 0, int64(j)*shardBytes, shardBytes)
						}
						// Without StageB the column shard comes straight from
						// storage; the staging cache turns the cb-1 re-reads of
						// each shard (one per block row) into hits, and the
						// pipeline's deterministic schedule makes j+1 the next
						// load — prefetch it behind this one.
						buf, err := sub.MoveDataDownCached(dram, fb, int64(j)*shardBytes, shardBytes)
						if err != nil {
							return err
						}
						colShards[j] = buf
						if j+1 < cb {
							sub.Prefetch(dram, fb, int64(j+1)*shardBytes, shardBytes)
						}
						return nil
					})
				},
				func(sub *core.Ctx, j int) error { // recursive multiply
					return sub.Task("multiply-shard", blockBytes, func(sub *core.Ctx) error {
						buf, err := sub.AllocAt(dram, blockBytes)
						if err != nil {
							return err
						}
						cBlocks[j] = buf
						err = sub.Descend(dram, func(dc *core.Ctx) error {
							return multiplyShard(dc, rowShard, colShards[j], buf, s, n, s, functional, cfg)
						})
						if cfg.StageB {
							sub.Release(colShards[j])
						} else {
							sub.Unpin(colShards[j])
						}
						colShards[j] = nil
						return err
					})
				},
				func(sub *core.Ctx, j int) error { // store result block
					return sub.Task("store-block", blockBytes, func(sub *core.Ctx) error {
						var err error
						off := (int64(i)*int64(cb) + int64(j)) * blockBytes
						if cfg.Streamed {
							err = sub.MoveDataUpStreamed(fc, cBlocks[j], off, 0, blockBytes, cfg.StreamOpts)
						} else {
							err = sub.MoveData(fc, cBlocks[j], off, 0, blockBytes)
						}
						sub.Release(cBlocks[j])
						cBlocks[j] = nil
						return err
					})
				},
			)
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Stats: stats, ShardDim: s, BStaged: cfg.StageB}
	if functional {
		res.C = assembleBlockMajor(fcPeek(rt, fc, elems), n, s)
	}
	return res, nil
}

// multiplyShard computes cBuf(n x m) = aBuf(n x k) · bBuf(k x m), with all
// three buffers on the current node. At a leaf it launches the tile kernel;
// otherwise it decomposes along k into panels sized for the child level and
// accumulates there — the recursive step of Listing 3 applied one level
// further down (the discrete-GPU case of §V-C).
func multiplyShard(c *core.Ctx, aBuf, bBuf, cBuf *core.Buffer, n, k, m int, functional bool, cfg Config) error {
	if c.IsLeaf() {
		var cv, av, bv []float32
		if functional {
			cv, av, bv = view.F32(cBuf.Bytes()), view.F32(aBuf.Bytes()), view.F32(bBuf.Bytes())
		}
		kern, groups := TileKernel(cv, av, bv, n, k, m, false)
		_, err := c.LaunchKernel(kern, groups)
		return err
	}
	child := c.Children()[0]
	kp, err := choosePanelDepth(n, k, m, child.Mem.Free())
	if err != nil {
		return err
	}
	// Two panel slots implement the paper's stream overlap at the leaf
	// (§III-C: "overlapping computation and communications (i.e.,
	// OpenCL/CUDA streams)"): while the kernel consumes slot p%2 the PCIe
	// link fills the other.
	var gA, gB [2]*core.Buffer
	for s := 0; s < 2; s++ {
		if gA[s], err = c.AllocAt(child, int64(n)*int64(kp)*4); err != nil {
			return err
		}
		if gB[s], err = c.AllocAt(child, int64(kp)*int64(m)*4); err != nil {
			return err
		}
	}
	gC, err := c.AllocAt(child, int64(n)*int64(m)*4)
	if err != nil {
		return err
	}
	defer func() {
		for s := 0; s < 2; s++ {
			c.Release(gA[s])
			c.Release(gB[s])
		}
		c.Release(gC)
	}()
	panels := k / kp
	err = c.Pipeline(panels, 2,
		func(sub *core.Ctx, p int) error { // stream the panel pair down
			s := p % 2
			// A panel: n rows of kp floats, strided by the row length k.
			if err := sub.MoveData2D(gA[s], aBuf, 0, int64(kp)*4,
				int64(p)*int64(kp)*4, int64(k)*4, n, kp*4); err != nil {
				return err
			}
			// B panel: kp full rows, contiguous — the streamed path
			// sub-chunks it so the PCIe hop overlaps itself across
			// sub-chunks (and degenerates to one chunk when not worth it).
			if cfg.Streamed {
				return sub.MoveDataDownStreamed(gB[s], bBuf, 0,
					int64(p)*int64(kp)*int64(m)*4, int64(kp)*int64(m)*4, cfg.StreamOpts)
			}
			return sub.MoveData(gB[s], bBuf, 0,
				int64(p)*int64(kp)*int64(m)*4, int64(kp)*int64(m)*4)
		},
		func(sub *core.Ctx, p int) error { // accumulate on the GPU
			s := p % 2
			accumulate := p > 0
			return sub.Descend(child, func(lc *core.Ctx) error {
				if !lc.IsLeaf() {
					return fmt.Errorf("gemm: trees deeper than 3 levels need recursive panels")
				}
				var cv, av, bv []float32
				if functional {
					cv, av, bv = view.F32(gC.Bytes()), view.F32(gA[s].Bytes()), view.F32(gB[s].Bytes())
				}
				kern, groups := TileKernel(cv, av, bv, n, kp, m, accumulate)
				_, kerr := lc.LaunchKernel(kern, groups)
				return kerr
			})
		},
	)
	if err != nil {
		return err
	}
	if cfg.Streamed {
		return c.MoveDataUpStreamed(cBuf, gC, 0, 0, int64(n)*int64(m)*4, cfg.StreamOpts)
	}
	return c.MoveDataUp(cBuf, gC, 0, 0, int64(n)*int64(m)*4)
}

// choosePanelDepth picks the largest k-panel depth (multiple of KTile,
// dividing k) whose double-buffered panel slots plus the C accumulator fit
// the child's free bytes.
func choosePanelDepth(n, k, m int, free int64) (int, error) {
	for kp := k; kp >= KTile; kp -= KTile {
		if k%kp != 0 {
			continue
		}
		need := 4 * (2*(int64(n)*int64(kp)+int64(kp)*int64(m)) + int64(n)*int64(m))
		if need <= free*9/10 {
			return kp, nil
		}
	}
	return 0, fmt.Errorf("gemm: no k-panel fits %d free bytes (n=%d k=%d m=%d)", free, n, k, m)
}

// fcPeek reads the whole C file functionally (untimed verification path).
func fcPeek(rt *core.Runtime, fc *core.Buffer, elems int64) []float32 {
	out := make([]float32, elems)
	if err := fc.File().Peek(view.F32Bytes(out), 0); err != nil {
		panic(err)
	}
	return out
}

// assembleBlockMajor converts the block-major C file layout (block (i,j) of
// s x s stored contiguously) back to a row-major n x n matrix.
func assembleBlockMajor(blocks []float32, n, s int) []float32 {
	cb := n / s
	out := make([]float32, n*n)
	for bi := 0; bi < cb; bi++ {
		for bj := 0; bj < cb; bj++ {
			base := (bi*cb + bj) * s * s
			for r := 0; r < s; r++ {
				row := (bi*s + r) * n
				copy(out[row+bj*s:row+(bj+1)*s], blocks[base+r*s:base+(r+1)*s])
			}
		}
	}
	return out
}

// RunInMemory executes the paper's in-memory baseline: inputs already
// resident in a DRAM-only "tree" large enough for the whole working set,
// one kernel over the full matrices, no I/O in the measured region (§V-B).
func RunInMemory(rt *core.Runtime, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rootNode := rt.Tree().Root()
	if rootNode.Store != nil {
		return nil, fmt.Errorf("gemm: in-memory baseline needs a DRAM root (got %v)", rootNode)
	}
	n := cfg.N
	elems := int64(n) * int64(n)
	functional := !rt.Phantom()

	var res *Result
	stats, err := rt.Run("gemm-inmemory", func(c *core.Ctx) error {
		a, err := c.Alloc(elems * 4)
		if err != nil {
			return err
		}
		b, err := c.Alloc(elems * 4)
		if err != nil {
			return err
		}
		cc, err := c.Alloc(elems * 4)
		if err != nil {
			return err
		}
		var cv, av, bv []float32
		if functional {
			// Inputs appear in memory outside the measured region.
			av, bv, cv = view.F32(a.Bytes()), view.F32(b.Bytes()), view.F32(cc.Bytes())
			copy(av, workload.Dense(n, n, cfg.Seed))
			copy(bv, workload.Dense(n, n, cfg.Seed+1))
		}
		kern, groups := TileKernel(cv, av, bv, n, n, n, false)
		if _, err := c.LaunchKernel(kern, groups); err != nil {
			return err
		}
		res = &Result{ShardDim: n}
		if functional {
			res.C = append([]float32(nil), cv...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}
