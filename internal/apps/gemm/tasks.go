package gemm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/taskgraph"
	"repro/internal/view"
	"repro/internal/workload"
)

// RunTasks executes out-of-core GEMM as an extent-declared task graph: one
// task per C block, reading its A row shard and B column shard from storage
// and writing its block of C. The blocks are independent (every write extent
// is disjoint), so the whole cb x cb grid is a parallel graph and the
// scheduler's placement order decides how often each shard crosses the
// storage edge. With affinity on, the residency scorer walks the grid in a
// shard-reuse order (the generalization of §IV-A's hand-wired row-shard
// reuse); with affinity off, locality-blind stealing reloads whatever the
// deque order happens to evict first.
func RunTasks(rt *core.Runtime, cfg Config, opts taskgraph.Options) (*Result, *taskgraph.Stats, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, nil, err
	}
	root := rt.Tree().Root()
	if root.Store == nil {
		return nil, nil, fmt.Errorf("gemm: tree root %v is not storage", root)
	}
	if len(root.Children) != 1 {
		return nil, nil, fmt.Errorf("gemm: expected a single staging child under the root")
	}
	dram := root.Children[0]

	n := cfg.N
	elems := int64(n) * int64(n)
	s := cfg.ShardDim
	if s == 0 {
		var err error
		if s, err = chooseShardDim(n, cfg.Depth, dram.Mem.Free()); err != nil {
			return nil, nil, err
		}
	}
	if n%s != 0 {
		return nil, nil, fmt.Errorf("gemm: shard %d does not divide N=%d", s, n)
	}
	cb := n / s

	var aData, bPre []float32
	functional := !rt.Phantom()
	if functional {
		aData = workload.Dense(n, n, cfg.Seed)
		b := workload.Dense(n, n, cfg.Seed+1)
		bPre = PreshardB(b, n, s)
	}
	fa, err := rt.CreateInput(root, "gemm-A", elems*4, view.F32Bytes(aData))
	if err != nil {
		return nil, nil, err
	}
	fb, err := rt.CreateInput(root, "gemm-B", elems*4, view.F32Bytes(bPre))
	if err != nil {
		return nil, nil, err
	}
	fc, err := rt.CreateInput(root, "gemm-C", elems*4, nil)
	if err != nil {
		return nil, nil, err
	}

	shardBytes := int64(s) * int64(n) * 4
	blockBytes := int64(s) * int64(s) * 4

	// One task per C block. A row shards live at row-major offsets of the A
	// file; B column shards at shard-major offsets of the presharded B file.
	g := taskgraph.New()
	for i := 0; i < cb; i++ {
		for j := 0; j < cb; j++ {
			i, j := i, j
			cOff := (int64(i)*int64(cb) + int64(j)) * blockBytes
			g.Add(&taskgraph.Task{
				Name: fmt.Sprintf("gemm-block[%d,%d]", i, j),
				Kind: "gemm-block",
				Reads: []taskgraph.Extent{
					{Buf: fa, Off: int64(i) * shardBytes, Len: shardBytes},
					{Buf: fb, Off: int64(j) * shardBytes, Len: shardBytes},
				},
				Writes: []taskgraph.Extent{
					{Buf: fc, Off: cOff, Len: blockBytes},
				},
				Cost: 2 * float64(s) * float64(s) * float64(n),
				Run: func(sub *core.Ctx) error {
					aShard, err := sub.MoveDataDownCached(dram, fa, int64(i)*shardBytes, shardBytes)
					if err != nil {
						return err
					}
					defer sub.Unpin(aShard)
					bShard, err := sub.MoveDataDownCached(dram, fb, int64(j)*shardBytes, shardBytes)
					if err != nil {
						return err
					}
					defer sub.Unpin(bShard)
					blk, err := sub.AllocAt(dram, blockBytes)
					if err != nil {
						return err
					}
					defer sub.Release(blk)
					if err := sub.Descend(dram, func(dc *core.Ctx) error {
						return multiplyShard(dc, aShard, bShard, blk, s, n, s, functional, cfg)
					}); err != nil {
						return err
					}
					return sub.MoveData(fc, blk, cOff, 0, blockBytes)
				},
			})
		}
	}

	var tstats *taskgraph.Stats
	stats, err := rt.Run("gemm-tasks", func(c *core.Ctx) error {
		if opts.Node == nil {
			opts.Node = dram
		}
		var gerr error
		tstats, gerr = g.Run(c, opts)
		return gerr
	})
	if err != nil {
		return nil, tstats, err
	}

	res := &Result{Stats: stats, ShardDim: s}
	if functional {
		res.C = assembleBlockMajor(fcPeek(rt, fc, elems), n, s)
	}
	return res, tstats, nil
}
