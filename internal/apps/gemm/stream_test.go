package gemm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// TestStreamedNorthupMatchesReference3Level asserts the streamed staging
// path is functionally transparent: routing the A/B/C moves through the
// streaming engine must reproduce the reference product exactly.
func TestStreamedNorthupMatchesReference3Level(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
		StorageMiB: 64, DRAMMiB: 4, GPUMemMiB: 1})
	rt := core.NewRuntime(e, tree, core.DefaultOptions())
	cfg := Config{N: 256, Seed: 13, Streamed: true,
		StreamOpts: core.StreamOptions{SubChunks: 4, MinSubChunkBytes: 4096}}
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	A := workload.Dense(cfg.N, cfg.N, cfg.Seed)
	B := workload.Dense(cfg.N, cfg.N, cfg.Seed+1)
	want := make([]float32, cfg.N*cfg.N)
	Reference(want, A, B, cfg.N, cfg.N, cfg.N)
	if !almostEqual(res.C, want, cfg.N) {
		t.Fatal("streamed result differs from reference")
	}
	if ss := rt.StreamStats(); ss.Streams == 0 || ss.SubChunks <= ss.Streams {
		t.Fatalf("streaming engine not exercised: %+v", ss)
	}
}

// TestStreamedAdaptiveNoWorseThanMonolithic asserts the adaptive sizer
// never slows a run down: on single-hop staging moves it degenerates to one
// sub-chunk and the virtual time matches the monolithic path.
func TestStreamedAdaptiveNoWorseThanMonolithic(t *testing.T) {
	elapsed := func(streamed bool) sim.Time {
		rt := newOutOfCoreRuntime(true)
		res, err := RunNorthup(rt, Config{N: 512, Seed: 7, Streamed: streamed})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Elapsed
	}
	if s, m := elapsed(true), elapsed(false); s > m {
		t.Fatalf("adaptive streamed run slower than monolithic: %v > %v", s, m)
	}
}
