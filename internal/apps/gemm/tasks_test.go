package gemm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/taskgraph"
	"repro/internal/topo"
	"repro/internal/workload"
)

// newTaskRuntime builds the out-of-core APU runtime with the staging cache
// sized to cacheBytes and a metrics registry attached.
func newTaskRuntime(phantom bool, cacheBytes int64) (*core.Runtime, *obs.Registry) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64, DRAMMiB: 1})
	opts := core.DefaultOptions()
	opts.Phantom = phantom
	opts.Metrics = obs.NewRegistry()
	if cacheBytes > 0 {
		opts.Cache.Enabled = true
		opts.Cache.CapacityBytes = cacheBytes
	}
	return core.NewRuntime(e, tree, opts), opts.Metrics
}

// movedBytes sums the per-node northup_moved_bytes_total series.
func movedBytes(reg *obs.Registry) float64 {
	total := 0.0
	for name, v := range reg.Flatten() {
		if strings.HasPrefix(name, "northup_moved_bytes_total") {
			total += v
		}
	}
	return total
}

func TestTasksMatchReference(t *testing.T) {
	cfg := Config{N: 256, Seed: 11}
	want := make([]float32, cfg.N*cfg.N)
	Reference(want, workload.Dense(cfg.N, cfg.N, cfg.Seed),
		workload.Dense(cfg.N, cfg.N, cfg.Seed+1), cfg.N, cfg.N, cfg.N)
	for _, affinity := range []bool{false, true} {
		rt, _ := newTaskRuntime(false, 256<<10)
		res, st, err := RunTasks(rt, cfg, taskgraph.Options{Affinity: affinity})
		if err != nil {
			t.Fatalf("affinity=%v: %v", affinity, err)
		}
		if !almostEqual(res.C, want, cfg.N) {
			t.Fatalf("affinity=%v: task-mode result differs from reference", affinity)
		}
		cb := cfg.N / res.ShardDim
		if st.Tasks != cb*cb {
			t.Fatalf("affinity=%v: %d tasks for a %dx%d grid", affinity, st.Tasks, cb, cb)
		}
	}
}

func TestTasksAffinityDeterministic(t *testing.T) {
	// Repeated affinity-on runs must produce bit-identical schedules:
	// identical virtual time, identical placement statistics.
	f := func(seed int64) bool {
		cfg := Config{N: 256, Seed: seed}
		run := func() (sim.Time, int64) {
			rt, _ := newTaskRuntime(true, 256<<10)
			res, st, err := RunTasks(rt, cfg, taskgraph.Options{Affinity: true})
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats.Elapsed, st.SavedBytes
		}
		e1, s1 := run()
		e2, s2 := run()
		return e1 == e2 && s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestTasksAffinityOffLegacyByteIdentical(t *testing.T) {
	// The -affinity off contract: the legacy recursive path is untouched by
	// the scheduler work, so for any seed repeated runs on fresh engines
	// reproduce the schedule bit for bit (identical virtual time and moved
	// bytes — the byte-identity the CLI's off route relies on).
	f := func(seed int64) bool {
		cfg := Config{N: 128, Seed: seed}
		run := func() (sim.Time, float64) {
			rt, reg := newTaskRuntime(true, 0)
			res, err := RunNorthup(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rt.SyncMetrics()
			return res.Stats.Elapsed, movedBytes(reg)
		}
		e1, m1 := run()
		e2, m2 := run()
		return e1 == e2 && m1 == m2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestTasksAffinityDeterministicUnderFaults(t *testing.T) {
	// Affinity-on placement must stay deterministic with the staging cache
	// on and the fault injector perturbing transfers: equal fault seeds
	// give bit-identical schedules (virtual time, saved bytes, moved bytes)
	// even though retries and delays reshuffle the timing the scorer sees.
	f := func(faultSeed int64) bool {
		cfg := Config{N: 256, Seed: 11, ShardDim: 32}
		run := func() (sim.Time, int64, float64) {
			e := sim.NewEngine()
			tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64, DRAMMiB: 1})
			opts := core.DefaultOptions()
			opts.Phantom = true
			opts.Metrics = obs.NewRegistry()
			opts.Cache.Enabled = true
			opts.Cache.CapacityBytes = 256 << 10
			opts.Faults = fault.New(e, fault.Config{Seed: faultSeed,
				TransferFailRate: 0.05, TransferDelayRate: 0.2})
			rt := core.NewRuntime(e, tree, opts)
			res, st, err := RunTasks(rt, cfg, taskgraph.Options{Affinity: true})
			if err != nil {
				t.Fatal(err)
			}
			rt.SyncMetrics()
			return res.Stats.Elapsed, st.SavedBytes, movedBytes(opts.Metrics)
		}
		e1, s1, m1 := run()
		e2, s2, m2 := run()
		return e1 == e2 && s1 == s2 && m1 == m2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestTasksAffinityReducesMovedBytes(t *testing.T) {
	// The A/B direction the ablation figure reports: with a cache smaller
	// than the distinct shard working set, residency-aware placement re-reads
	// less from storage than locality-blind stealing.
	cfg := Config{N: 256, Seed: 11, ShardDim: 32}
	run := func(affinity bool) (float64, int64) {
		rt, reg := newTaskRuntime(true, 256<<10)
		_, st, err := RunTasks(rt, cfg, taskgraph.Options{Affinity: affinity})
		if err != nil {
			t.Fatal(err)
		}
		return movedBytes(reg), st.SavedBytes
	}
	base, baseSaved := run(false)
	aff, affSaved := run(true)
	if baseSaved != 0 {
		t.Fatalf("stealing baseline claimed %d saved bytes", baseSaved)
	}
	if affSaved <= 0 {
		t.Fatal("affinity placement found no resident bytes")
	}
	if aff >= base {
		t.Fatalf("affinity moved %.0f bytes, baseline %.0f — no reduction", aff, base)
	}
}
