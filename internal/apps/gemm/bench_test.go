package gemm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

// BenchmarkTileKernelFunctional measures the host-side functional GEMM
// throughput (what bounds functional-mode test sizes).
func BenchmarkTileKernelFunctional(b *testing.B) {
	const n = 256
	A := make([]float32, n*n)
	B := make([]float32, n*n)
	C := make([]float32, n*n)
	for i := range A {
		A[i] = float32(i%7) * 0.25
		B[i] = float32(i%5) * 0.5
	}
	e := sim.NewEngine()
	rt := core.NewRuntime(e, topo.InMemory(e, 64), core.DefaultOptions())
	b.SetBytes(2 * n * n * n * 4 / n) // matrix traffic per op, not flops
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := rt.Run("k", func(c *core.Ctx) error {
			kern, groups := TileKernel(C, A, B, n, n, n, false)
			_, err := c.LaunchKernel(kern, groups)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNorthupPaperScalePhantom measures the wall cost of one
// paper-scale out-of-core GEMM simulation (the Figure 6 inner loop).
func BenchmarkNorthupPaperScalePhantom(b *testing.B) {
	var elapsed sim.Time
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
			StorageMiB: 24576, DRAMMiB: 2048})
		opts := core.DefaultOptions()
		opts.Phantom = true
		rt := core.NewRuntime(e, tree, opts)
		res, err := RunNorthup(rt, Config{N: 16384})
		if err != nil {
			b.Fatal(err)
		}
		elapsed = res.Stats.Elapsed
	}
	b.ReportMetric(elapsed.Seconds(), "virtual-s")
}

// BenchmarkNorthupFunctionalSmall measures a fully functional out-of-core
// run (computation included) at test scale.
func BenchmarkNorthupFunctionalSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
			StorageMiB: 64, DRAMMiB: 1})
		rt := core.NewRuntime(e, tree, core.DefaultOptions())
		if _, err := RunNorthup(rt, Config{N: 256, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
