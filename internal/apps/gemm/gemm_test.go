package gemm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

// almostEqual compares float32 results with a tolerance scaled to the
// accumulation length.
func almostEqual(a, b []float32, k int) bool {
	if len(a) != len(b) {
		return false
	}
	tol := 1e-4 * float32(math.Sqrt(float64(k)))
	for i := range a {
		d := a[i] - b[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}

func TestTileKernelMatchesReference(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.InMemory(e, 64)
	rt := core.NewRuntime(e, tree, core.DefaultOptions())
	const n, k, m = 96, 128, 160 // non-multiples of TileDim in n,m
	A := workload.Dense(n, k, 1)
	B := workload.Dense(k, m, 2)
	C := make([]float32, n*m)
	want := make([]float32, n*m)
	Reference(want, A, B, n, k, m)

	_, err := rt.Run("kern", func(c *core.Ctx) error {
		kern, groups := TileKernel(C, A, B, n, k, m, false)
		_, err := c.LaunchKernel(kern, groups)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(C, want, k) {
		t.Fatal("tile kernel result differs from reference")
	}
}

func TestTileKernelAccumulates(t *testing.T) {
	e := sim.NewEngine()
	rt := core.NewRuntime(e, topo.InMemory(e, 64), core.DefaultOptions())
	const n = 64
	A := workload.Dense(n, n, 3)
	B := workload.Dense(n, n, 4)
	C := make([]float32, n*n)
	want := make([]float32, n*n)
	Reference(want, A, B, n, n, n)
	for i := range want {
		want[i] *= 2
	}
	_, err := rt.Run("acc", func(c *core.Ctx) error {
		k1, g := TileKernel(C, A, B, n, n, n, false)
		if _, err := c.LaunchKernel(k1, g); err != nil {
			return err
		}
		k2, g := TileKernel(C, A, B, n, n, n, true)
		_, err := c.LaunchKernel(k2, g)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(C, want, 2*n) {
		t.Fatal("accumulation wrong")
	}
}

func TestPreshardBLayout(t *testing.T) {
	const n, s = 8, 4
	B := workload.Dense(n, n, 5)
	pre := PreshardB(B, n, s)
	// Shard j, row r, col c == B[r][j*s+c].
	for j := 0; j < n/s; j++ {
		for r := 0; r < n; r++ {
			for c := 0; c < s; c++ {
				if pre[j*n*s+r*s+c] != B[r*n+j*s+c] {
					t.Fatalf("preshard mismatch at j=%d r=%d c=%d", j, r, c)
				}
			}
		}
	}
}

// newOutOfCoreRuntime builds a 2-level SSD topology whose DRAM is too small
// for the whole working set, forcing chunked execution.
func newOutOfCoreRuntime(phantom bool) *core.Runtime {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64, DRAMMiB: 1})
	opts := core.DefaultOptions()
	opts.Phantom = phantom
	return core.NewRuntime(e, tree, opts)
}

func TestNorthupMatchesReference2Level(t *testing.T) {
	rt := newOutOfCoreRuntime(false)
	cfg := Config{N: 256, Seed: 11}
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardDim >= cfg.N {
		t.Fatalf("shard %d not out-of-core for N=%d", res.ShardDim, cfg.N)
	}
	A := workload.Dense(cfg.N, cfg.N, cfg.Seed)
	B := workload.Dense(cfg.N, cfg.N, cfg.Seed+1)
	want := make([]float32, cfg.N*cfg.N)
	Reference(want, A, B, cfg.N, cfg.N, cfg.N)
	if !almostEqual(res.C, want, cfg.N) {
		t.Fatal("out-of-core result differs from reference")
	}
	bd := &res.Stats.Breakdown
	if bd.Busy(trace.IO) <= 0 || bd.Busy(trace.GPUCompute) <= 0 {
		t.Fatalf("missing breakdown components: %s", bd)
	}
}

func TestNorthupMatchesReference3Level(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
		StorageMiB: 64, DRAMMiB: 4, GPUMemMiB: 1})
	rt := core.NewRuntime(e, tree, core.DefaultOptions())
	cfg := Config{N: 256, Seed: 13}
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	A := workload.Dense(cfg.N, cfg.N, cfg.Seed)
	B := workload.Dense(cfg.N, cfg.N, cfg.Seed+1)
	want := make([]float32, cfg.N*cfg.N)
	Reference(want, A, B, cfg.N, cfg.N, cfg.N)
	if !almostEqual(res.C, want, cfg.N) {
		t.Fatal("3-level result differs from reference")
	}
	// The discrete topology must show PCIe transfer time (Fig. 8's
	// "OpenCL transfers").
	if res.Stats.Breakdown.Busy(trace.Transfer) <= 0 {
		t.Fatal("no transfer time on the 3-level tree")
	}
}

func TestPhantomTimingMatchesFunctional(t *testing.T) {
	// The phantom (timing-only) mode must charge exactly the same virtual
	// time as a functional run — that is what makes paper-scale benches
	// trustworthy.
	cfg := Config{N: 256, Seed: 11}
	fun, err := RunNorthup(newOutOfCoreRuntime(false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := RunNorthup(newOutOfCoreRuntime(true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fun.Stats.Elapsed != ph.Stats.Elapsed {
		t.Fatalf("functional %v != phantom %v", fun.Stats.Elapsed, ph.Stats.Elapsed)
	}
	if ph.C != nil {
		t.Fatal("phantom run produced functional output")
	}
}

func TestInMemoryBaseline(t *testing.T) {
	e := sim.NewEngine()
	rt := core.NewRuntime(e, topo.InMemory(e, 16), core.DefaultOptions())
	cfg := Config{N: 128, Seed: 17}
	res, err := RunInMemory(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float32, cfg.N*cfg.N)
	Reference(want, workload.Dense(cfg.N, cfg.N, cfg.Seed),
		workload.Dense(cfg.N, cfg.N, cfg.Seed+1), cfg.N, cfg.N, cfg.N)
	if !almostEqual(res.C, want, cfg.N) {
		t.Fatal("in-memory result differs from reference")
	}
	if res.Stats.Breakdown.Busy(trace.IO) != 0 {
		t.Fatal("in-memory baseline charged I/O")
	}
}

func TestOutOfCoreSlowerThanInMemory(t *testing.T) {
	// Fig. 6's sanity direction: Northup out-of-core cannot be faster than
	// the in-memory baseline on the same GPU.
	cfg := Config{N: 256, Seed: 11}
	e := sim.NewEngine()
	rtIM := core.NewRuntime(e, topo.InMemory(e, 16), core.DefaultOptions())
	im, err := RunInMemory(rtIM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ooc, err := RunNorthup(newOutOfCoreRuntime(true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ooc.Stats.Elapsed <= im.Stats.Elapsed {
		t.Fatalf("out-of-core %v not slower than in-memory %v",
			ooc.Stats.Elapsed, im.Stats.Elapsed)
	}
}

func TestConfigValidation(t *testing.T) {
	rt := newOutOfCoreRuntime(true)
	if _, err := RunNorthup(rt, Config{N: 100}); err == nil {
		t.Fatal("non-multiple N accepted")
	}
	if _, err := RunNorthup(rt, Config{N: 0}); err == nil {
		t.Fatal("zero N accepted")
	}
	// In-memory on a storage-rooted tree must be rejected.
	if _, err := RunInMemory(rt, Config{N: 128}); err == nil {
		t.Fatal("in-memory baseline ran on storage tree")
	}
}

func TestReferenceProperties(t *testing.T) {
	// Identity: A·I = A.
	f := func(seed int64) bool {
		const n = 24
		A := workload.Dense(n, n, seed)
		I := make([]float32, n*n)
		for i := 0; i < n; i++ {
			I[i*n+i] = 1
		}
		C := make([]float32, n*n)
		Reference(C, A, I, n, n, n)
		for i := range C {
			if C[i] != A[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestChooseShardDim(t *testing.T) {
	// Plenty of room: whole matrix in one shard.
	s, err := chooseShardDim(256, 2, 1<<30)
	if err != nil || s != 256 {
		t.Fatalf("s=%d err=%v", s, err)
	}
	// Tight: must subdivide.
	s, err = chooseShardDim(256, 2, 1<<20)
	if err != nil || s >= 256 || s%TileDim != 0 || 256%s != 0 {
		t.Fatalf("s=%d err=%v", s, err)
	}
	// Impossible.
	if _, err = chooseShardDim(1024, 2, 1000); err == nil {
		t.Fatal("impossible capacity accepted")
	}
}

func TestSequentialModeMatchesReferenceAndIsSlower(t *testing.T) {
	cfg := Config{N: 256, Seed: 11, Sequential: true}
	seq, err := RunNorthup(newOutOfCoreRuntime(false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	A := workload.Dense(cfg.N, cfg.N, cfg.Seed)
	B := workload.Dense(cfg.N, cfg.N, cfg.Seed+1)
	want := make([]float32, cfg.N*cfg.N)
	Reference(want, A, B, cfg.N, cfg.N, cfg.N)
	if !almostEqual(seq.C, want, cfg.N) {
		t.Fatal("sequential-mode result differs from reference")
	}
	piped, err := RunNorthup(newOutOfCoreRuntime(true), Config{N: 256, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.Elapsed <= piped.Stats.Elapsed {
		t.Fatalf("sequential (%v) not slower than pipelined (%v)",
			seq.Stats.Elapsed, piped.Stats.Elapsed)
	}
}
