package spmv

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/taskgraph"
	"repro/internal/topo"
	"repro/internal/workload"
)

// newTaskRuntime builds the out-of-core APU runtime with the staging cache
// sized to cacheBytes and a metrics registry attached.
func newTaskRuntime(phantom bool, cacheBytes int64) (*core.Runtime, *obs.Registry) {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64, DRAMMiB: 4, WithCPU: true})
	opts := core.DefaultOptions()
	opts.Phantom = phantom
	opts.Metrics = obs.NewRegistry()
	if cacheBytes > 0 {
		opts.Cache.Enabled = true
		opts.Cache.CapacityBytes = cacheBytes
	}
	return core.NewRuntime(e, tree, opts), opts.Metrics
}

func movedBytes(reg *obs.Registry) float64 {
	total := 0.0
	for name, v := range reg.Flatten() {
		if strings.HasPrefix(name, "northup_moved_bytes_total") {
			total += v
		}
	}
	return total
}

func TestTasksMatchNorthup(t *testing.T) {
	cfg := Config{N: 4096, AvgNNZ: 16, Kind: workload.SparseUniform, Seed: 7, Iters: 3}
	refRT, _ := newTaskRuntime(false, 0)
	ref, err := RunNorthup(refRT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, affinity := range []bool{false, true} {
		rt, _ := newTaskRuntime(false, 512<<10)
		res, st, err := RunTasks(rt, cfg, taskgraph.Options{Affinity: affinity})
		if err != nil {
			t.Fatalf("affinity=%v: %v", affinity, err)
		}
		if len(res.Y) != len(ref.Y) {
			t.Fatalf("affinity=%v: |Y|=%d want %d", affinity, len(res.Y), len(ref.Y))
		}
		for i := range ref.Y {
			if res.Y[i] != ref.Y[i] {
				t.Fatalf("affinity=%v: Y[%d]=%g, northup %g", affinity, i, res.Y[i], ref.Y[i])
			}
		}
		// One shard task per (iteration, shard) plus one normalize per
		// non-final iteration.
		want := res.Shards*cfg.Iters + cfg.Iters - 1
		if st.Tasks != want {
			t.Fatalf("affinity=%v: %d tasks, want %d", affinity, st.Tasks, want)
		}
	}
}

func TestTasksAffinityDeterministic(t *testing.T) {
	cfg := Config{N: 4096, AvgNNZ: 16, Kind: workload.SparsePowerLaw, Seed: 3, Iters: 2}
	run := func() (sim.Time, int64) {
		rt, _ := newTaskRuntime(true, 512<<10)
		res, st, err := RunTasks(rt, cfg, taskgraph.Options{Affinity: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Elapsed, st.SavedBytes
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("affinity schedule not deterministic: %v/%d vs %v/%d", e1, s1, e2, s2)
	}
}

func TestTasksAffinityReducesMovedBytes(t *testing.T) {
	// Power iteration re-reads every matrix extent each pass. With a cache
	// holding only part of the matrix, the stealing baseline streams the
	// passes in the order that just evicted the head shards; affinity starts
	// each pass from the shards still resident.
	cfg := Config{N: 8192, AvgNNZ: 16, Kind: workload.SparseUniform, Seed: 7, Iters: 3, Chunks: 16}
	run := func(affinity bool) (float64, int64) {
		rt, reg := newTaskRuntime(true, 512<<10)
		_, st, err := RunTasks(rt, cfg, taskgraph.Options{Affinity: affinity})
		if err != nil {
			t.Fatal(err)
		}
		return movedBytes(reg), st.SavedBytes
	}
	base, baseSaved := run(false)
	aff, affSaved := run(true)
	if baseSaved != 0 {
		t.Fatalf("stealing baseline claimed %d saved bytes", baseSaved)
	}
	if affSaved <= 0 {
		t.Fatal("affinity placement found no resident bytes")
	}
	if aff >= base {
		t.Fatalf("affinity moved %.0f bytes, baseline %.0f — no reduction", aff, base)
	}
}
