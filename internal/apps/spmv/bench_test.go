package spmv

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// BenchmarkBinning measures the CPU-side CSR-Adaptive row binning.
func BenchmarkBinning(b *testing.B) {
	m := workload.Sparse(workload.SparsePowerLaw, 100_000, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocks := BuildRowBlocks(m.RowPtr)
		if len(blocks) == 0 {
			b.Fatal("no blocks")
		}
	}
}

// BenchmarkExecBlocksFunctional measures the host-side SpMV throughput
// through the row-block kernels.
func BenchmarkExecBlocksFunctional(b *testing.B) {
	const n = 50_000
	m := workload.Sparse(workload.SparseUniform, n, 16, 2)
	x := workload.Vector(n, 3)
	y := make([]float32, n)
	blocks := BuildRowBlocks(m.RowPtr)
	b.SetBytes(int64(m.NNZ()) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, blk := range blocks {
			ExecBlock(blk, m.RowPtr, m.ColIdx, m.Val, x, y)
		}
	}
}

// BenchmarkNorthupPaperScalePhantom measures the wall cost of one
// paper-scale (16M rows) out-of-core SpMV simulation.
func BenchmarkNorthupPaperScalePhantom(b *testing.B) {
	var elapsed sim.Time
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD,
			StorageMiB: 24576, DRAMMiB: 2048, WithCPU: true})
		opts := core.DefaultOptions()
		opts.Phantom = true
		rt := core.NewRuntime(e, tree, opts)
		res, err := RunNorthup(rt, Config{N: 16_777_216, AvgNNZ: 16,
			Kind: workload.SparseUniform, Chunks: 4})
		if err != nil {
			b.Fatal(err)
		}
		elapsed = res.Stats.Elapsed
	}
	b.ReportMetric(elapsed.Seconds(), "virtual-s")
}
