package spmv

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

func almostEqual(a, b []float32, scale float64) bool {
	if len(a) != len(b) {
		return false
	}
	tol := float32(1e-4 * math.Sqrt(scale))
	for i := range a {
		d := a[i] - b[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}

func TestBuildRowBlocksInvariants(t *testing.T) {
	// Property: blocks cover every row exactly once (VectorLong slices
	// cover every nnz of their row exactly once), in order, and stream
	// blocks respect the window.
	f := func(seed int64, kindRaw, avgRaw uint8) bool {
		kind := workload.SparseKind(kindRaw % 3)
		avg := int(avgRaw%40) + 1
		m := workload.Sparse(kind, 300, avg, seed)
		blocks := BuildRowBlocks(m.RowPtr)
		row := 0
		for bi := 0; bi < len(blocks); bi++ {
			b := blocks[bi]
			if b.Row0 != row {
				return false
			}
			switch b.Kind {
			case Stream, Vector:
				if b.Kind == Stream && int(m.RowPtr[b.Row1]-m.RowPtr[b.Row0]) > NNZPerGroup {
					return false
				}
				row = b.Row1
			case VectorLong:
				// Walk all slices of this row.
				start := int(m.RowPtr[b.Row0] - m.RowPtr[0])
				end := int(m.RowPtr[b.Row0+1] - m.RowPtr[0])
				pos := start
				for ; bi < len(blocks) && blocks[bi].Kind == VectorLong && blocks[bi].Row0 == b.Row0; bi++ {
					s := blocks[bi]
					if s.NNZ0 != pos || (pos == start) != s.ClearY {
						return false
					}
					pos = s.NNZ1
				}
				bi--
				if pos != end {
					return false
				}
				row = b.Row0 + 1
			}
		}
		return row == m.NRows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRowBlocksLongRow(t *testing.T) {
	rowPtr := []int32{0, 3, int32(3 + VectorLongThreshold + 100), int32(3 + VectorLongThreshold + 105)}
	blocks := BuildRowBlocks(rowPtr)
	var longSlices int
	for _, b := range blocks {
		if b.Kind == VectorLong {
			longSlices++
			if b.NNZ1-b.NNZ0 > NNZPerGroup {
				t.Fatalf("VectorL slice too large: %+v", b)
			}
		}
	}
	want := (VectorLongThreshold + 100 + NNZPerGroup - 1) / NNZPerGroup
	if longSlices != want {
		t.Fatalf("%d VectorL slices, want %d", longSlices, want)
	}
}

func TestExecBlockMatchesReference(t *testing.T) {
	f := func(seed int64, kindRaw uint8) bool {
		kind := workload.SparseKind(kindRaw % 3)
		m := workload.Sparse(kind, 200, 12, seed)
		x := workload.Vector(200, seed+1)
		want := Reference(m, x)
		y := make([]float32, 200)
		for _, b := range BuildRowBlocks(m.RowPtr) {
			ExecBlock(b, m.RowPtr, m.ColIdx, m.Val, x, y)
		}
		return almostEqual(y, want, 12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func newSpmvRuntime(phantom bool, dramKiB int64) *core.Runtime {
	e := sim.NewEngine()
	tree := topo.APU(e, topo.APUConfig{Storage: topo.SSD, StorageMiB: 64,
		DRAMMiB: 1, WithCPU: true})
	_ = dramKiB
	opts := core.DefaultOptions()
	opts.Phantom = phantom
	return core.NewRuntime(e, tree, opts)
}

func TestNorthupMatchesReference(t *testing.T) {
	for _, kind := range []workload.SparseKind{workload.SparseUniform, workload.SparsePowerLaw, workload.SparseBanded} {
		cfg := Config{N: 3000, AvgNNZ: 10, Kind: kind, Seed: 21, Chunks: 4}
		rt := newSpmvRuntime(false, 0)
		res, err := RunNorthup(rt, cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		m := workload.Sparse(kind, cfg.N, cfg.AvgNNZ, cfg.Seed)
		want := Reference(m, workload.Vector(cfg.N, cfg.Seed+1))
		if !almostEqual(res.Y, want, float64(cfg.AvgNNZ)) {
			t.Fatalf("%v: out-of-core result differs from reference", kind)
		}
		if res.Shards < cfg.Chunks {
			t.Fatalf("%v: %d shards < %d chunks", kind, res.Shards, cfg.Chunks)
		}
		bd := &res.Stats.Breakdown
		if bd.Busy(trace.IO) <= 0 || bd.Busy(trace.GPUCompute) <= 0 || bd.Busy(trace.CPUCompute) <= 0 {
			t.Fatalf("%v: missing breakdown components: %s", kind, bd)
		}
	}
}

func TestRecursiveSplittingOnSkewedInput(t *testing.T) {
	// Power-law rows with a tight staging budget force the recursion to
	// split overweight shards — the §IV-C adaptive division.
	cfg := Config{N: 20000, AvgNNZ: 30, Kind: workload.SparsePowerLaw, Seed: 3, Chunks: 4}
	rt := newSpmvRuntime(false, 0)
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Splits == 0 {
		t.Fatalf("no recursive splits on a skewed 20000x30 input (shards=%d)", res.Shards)
	}
	m := workload.Sparse(cfg.Kind, cfg.N, cfg.AvgNNZ, cfg.Seed)
	want := Reference(m, workload.Vector(cfg.N, cfg.Seed+1))
	if !almostEqual(res.Y, want, float64(cfg.AvgNNZ)) {
		t.Fatal("split-shard result differs from reference")
	}
}

func TestPhantomTimingMatchesFunctional(t *testing.T) {
	cfg := Config{N: 3000, AvgNNZ: 10, Kind: workload.SparsePowerLaw, Seed: 21}
	fun, err := RunNorthup(newSpmvRuntime(false, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := RunNorthup(newSpmvRuntime(true, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fun.Stats.Elapsed != ph.Stats.Elapsed {
		t.Fatalf("functional %v != phantom %v", fun.Stats.Elapsed, ph.Stats.Elapsed)
	}
	if fun.Shards != ph.Shards || fun.Splits != ph.Splits {
		t.Fatal("phantom planning diverged from functional planning")
	}
}

func TestNorthupOn3LevelTree(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
		StorageMiB: 64, DRAMMiB: 2, GPUMemMiB: 1})
	rt := core.NewRuntime(e, tree, core.DefaultOptions())
	cfg := Config{N: 3000, AvgNNZ: 10, Kind: workload.SparseUniform, Seed: 8}
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := workload.Sparse(cfg.Kind, cfg.N, cfg.AvgNNZ, cfg.Seed)
	want := Reference(m, workload.Vector(cfg.N, cfg.Seed+1))
	if !almostEqual(res.Y, want, float64(cfg.AvgNNZ)) {
		t.Fatal("3-level result differs from reference")
	}
	if res.Stats.Breakdown.Busy(trace.Transfer) <= 0 {
		t.Fatal("no PCIe transfer time on 3-level tree")
	}
}

func TestInMemoryBaseline(t *testing.T) {
	e := sim.NewEngine()
	rt := core.NewRuntime(e, topo.InMemory(e, 64), core.DefaultOptions())
	cfg := Config{N: 2000, AvgNNZ: 8, Kind: workload.SparseUniform, Seed: 4}
	res, err := RunInMemory(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := workload.Sparse(cfg.Kind, cfg.N, cfg.AvgNNZ, cfg.Seed)
	want := Reference(m, workload.Vector(cfg.N, cfg.Seed+1))
	if !almostEqual(res.Y, want, float64(cfg.AvgNNZ)) {
		t.Fatal("in-memory result differs from reference")
	}
	if res.Stats.Breakdown.Busy(trace.IO) != 0 {
		t.Fatal("in-memory baseline charged I/O")
	}
}

func TestSplitByNNZBalances(t *testing.T) {
	rowPtr := []int32{0, 100, 101, 102, 103, 104, 204}
	mid := splitByNNZ(rowPtr, 0, 6)
	left := rowPtr[mid] - rowPtr[0]
	right := rowPtr[6] - rowPtr[mid]
	if left == 0 || right == 0 {
		t.Fatalf("degenerate split at %d", mid)
	}
	if d := left - right; d > 104 || d < -104 {
		t.Fatalf("split %d badly unbalanced: %d vs %d", mid, left, right)
	}
}

func TestConfigValidation(t *testing.T) {
	rt := newSpmvRuntime(true, 0)
	if _, err := RunNorthup(rt, Config{N: 0}); err == nil {
		t.Fatal("zero N accepted")
	}
	if _, err := RunInMemory(rt, Config{N: 100}); err == nil {
		t.Fatal("in-memory baseline ran on storage tree")
	}
}

// hostPowerIteration is the sequential oracle for Config.Iters > 1: y = Ax,
// then x <- y / ||y||_inf between passes.
func hostPowerIteration(m *workload.CSR, x []float32, iters int) []float32 {
	cur := append([]float32(nil), x...)
	var y []float32
	for it := 0; it < iters; it++ {
		y = Reference(m, cur)
		if it == iters-1 {
			break
		}
		norm := float32(0)
		for _, v := range y {
			if v < 0 {
				v = -v
			}
			if v > norm {
				norm = v
			}
		}
		if norm == 0 {
			norm = 1
		}
		for i, v := range y {
			cur[i] = v / norm
		}
	}
	return y
}

func TestPowerIterationMatchesReference(t *testing.T) {
	cfg := Config{N: 2000, AvgNNZ: 8, Kind: workload.SparseBanded, Seed: 12, Iters: 4}
	rt := newSpmvRuntime(false, 0)
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := workload.Sparse(cfg.Kind, cfg.N, cfg.AvgNNZ, cfg.Seed)
	want := hostPowerIteration(m, workload.Vector(cfg.N, cfg.Seed+1), cfg.Iters)
	if !almostEqual(res.Y, want, float64(cfg.AvgNNZ*cfg.Iters)) {
		t.Fatal("power-iteration result differs from host oracle")
	}
}

func TestPowerIterationRestreamsMatrix(t *testing.T) {
	// K iterations must read the matrix ~K times from storage: the cost
	// structure that makes out-of-core iterative solvers storage-bound.
	run := func(iters int) int64 {
		rt := newSpmvRuntime(true, 0)
		if _, err := RunNorthup(rt, Config{N: 3000, AvgNNZ: 10,
			Kind: workload.SparseUniform, Seed: 2, Iters: iters}); err != nil {
			t.Fatal(err)
		}
		reads, _, _, _ := rt.Tree().Root().Mem.Stats()
		return reads
	}
	r1, r4 := run(1), run(4)
	ratio := float64(r4) / float64(r1)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("4-iteration run read %.1fx the matrix bytes, want ~4x", ratio)
	}
}

func TestPowerIterationOn3Level(t *testing.T) {
	e := sim.NewEngine()
	tree := topo.Discrete(e, topo.DiscreteConfig{Storage: topo.SSD,
		StorageMiB: 64, DRAMMiB: 2, GPUMemMiB: 1})
	rt := core.NewRuntime(e, tree, core.DefaultOptions())
	cfg := Config{N: 2000, AvgNNZ: 8, Kind: workload.SparseUniform, Seed: 15, Iters: 3}
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := workload.Sparse(cfg.Kind, cfg.N, cfg.AvgNNZ, cfg.Seed)
	want := hostPowerIteration(m, workload.Vector(cfg.N, cfg.Seed+1), cfg.Iters)
	if !almostEqual(res.Y, want, float64(cfg.AvgNNZ*cfg.Iters)) {
		t.Fatal("3-level power iteration differs from host oracle")
	}
}

func TestProvidedMatrixMarketInput(t *testing.T) {
	// Drive the out-of-core run with an explicit matrix, the path real
	// Florida-collection files take via workload.ParseMatrixMarket.
	in := `%%MatrixMarket matrix coordinate real general
4 4 6
1 1 2.0
1 4 1.0
2 2 -3.0
3 1 0.5
4 3 4.0
4 4 1.0
`
	m, err := workload.ParseMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	rt := newSpmvRuntime(false, 0)
	cfg := Config{Matrix: m, Seed: 7, Chunks: 2}
	res, err := RunNorthup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(m, workload.Vector(4, cfg.Seed+1))
	if !almostEqual(res.Y, want, 4) {
		t.Fatalf("provided-matrix result %v differs from %v", res.Y, want)
	}
	// Phantom runtimes must reject explicit matrices.
	if _, err := RunNorthup(newSpmvRuntime(true, 0), cfg); err == nil {
		t.Fatal("phantom run accepted a provided matrix")
	}
	// Non-square matrices rejected up front.
	bad := &workload.CSR{NRows: 2, NCols: 3, RowPtr: []int32{0, 0, 0}}
	if _, err := RunNorthup(rt, Config{Matrix: bad}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}
