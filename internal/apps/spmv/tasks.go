package spmv

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/taskgraph"
	"repro/internal/view"
	"repro/internal/workload"
)

// RunTasks executes out-of-core SpMV as an extent-declared task graph: one
// task per (iteration, shard) reading the shard's row_ptr/col_id/data extents
// from storage plus the resident x vector, and writing its row range of the
// staged y. Shards within an iteration write disjoint y rows and so run in
// any order; the power-iteration normalize task reads all of y and writes x,
// which serializes iterations through extent overlap alone — no hand-wired
// barriers. Matrix extents recur verbatim every iteration, so with affinity
// on the scorer starts each pass from the shards still resident in the
// staging cache instead of streaming back in the order that just evicted
// them.
func RunTasks(rt *core.Runtime, cfg Config, opts taskgraph.Options) (*Result, *taskgraph.Stats, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, nil, err
	}
	root := rt.Tree().Root()
	if root.Store == nil {
		return nil, nil, fmt.Errorf("spmv: tree root %v is not storage", root)
	}
	dram := root.Children[0]
	n := cfg.N
	functional := !rt.Phantom()

	var m *workload.CSR
	var rowPtrHost []int32
	switch {
	case cfg.Matrix != nil:
		if !functional {
			return nil, nil, fmt.Errorf("spmv: provided matrices need a functional runtime")
		}
		m = cfg.Matrix
		rowPtrHost = m.RowPtr
	case functional:
		m = workload.Sparse(cfg.Kind, n, cfg.AvgNNZ, cfg.Seed)
		rowPtrHost = m.RowPtr
	default:
		rowPtrHost = workload.SparseRowPtr(cfg.Kind, n, cfg.AvgNNZ, cfg.Seed)
	}
	nnz := int64(rowPtrHost[n])

	var xHost []float32
	if functional {
		xHost = workload.Vector(n, cfg.Seed+1)
	}
	var colBytes, valBytes []byte
	if functional {
		colBytes, valBytes = view.I32Bytes(m.ColIdx), view.F32Bytes(m.Val)
	}
	fRow, err := rt.CreateInput(root, "sp-rowptr", int64(n+1)*4, view.I32Bytes(rowPtrHost))
	if err != nil {
		return nil, nil, err
	}
	fCol, err := rt.CreateInput(root, "sp-colidx", nnz*4, colBytes)
	if err != nil {
		return nil, nil, err
	}
	fVal, err := rt.CreateInput(root, "sp-val", nnz*4, valBytes)
	if err != nil {
		return nil, nil, err
	}
	fX, err := rt.CreateInput(root, "sp-x", int64(n)*4, view.F32Bytes(xHost))
	if err != nil {
		return nil, nil, err
	}
	fY, err := rt.CreateInput(root, "sp-y", int64(n)*4, nil)
	if err != nil {
		return nil, nil, err
	}

	workers := opts.Workers
	if workers < 1 {
		workers = 2
	}

	// Shard budget as in RunNorthup, but sized for the worker pool: each
	// in-flight task holds one shard's extents pinned at the staging level.
	vecBytes := int64(n) * 4
	budget := int64(1) << 62
	for node := dram; node != nil; node = childOf(node) {
		free := node.Mem.Free()
		resident := vecBytes
		if node == dram {
			resident += vecBytes
		}
		b := (free*9/10 - resident) / int64(workers+1)
		if b < budget {
			budget = b
		}
	}
	if budget <= 0 {
		return nil, nil, fmt.Errorf("spmv: vectors alone exceed the hierarchy's capacity")
	}

	var shards []shardRange
	splits := 0
	var expand func(r0, r1 int) error
	expand = func(r0, r1 int) error {
		if shardBytes(rowPtrHost, r0, r1) <= budget {
			shards = append(shards, shardRange{r0, r1})
			return nil
		}
		if r1-r0 <= 1 {
			return fmt.Errorf("spmv: row %d alone (%d nnz) exceeds the level budget %d",
				r0, rowPtrHost[r0+1]-rowPtrHost[r0], budget)
		}
		splits++
		mid := splitByNNZ(rowPtrHost, r0, r1)
		if err := expand(r0, mid); err != nil {
			return err
		}
		return expand(mid, r1)
	}
	for c := 0; c < cfg.Chunks; c++ {
		r0 := n * c / cfg.Chunks
		r1 := n * (c + 1) / cfg.Chunks
		if r0 == r1 {
			continue
		}
		if err := expand(r0, r1); err != nil {
			return nil, nil, err
		}
	}

	var yView []float32
	var tstats *taskgraph.Stats
	stats, err := rt.Run("spmv-tasks", func(c *core.Ctx) error {
		// Resident vectors, exactly as in RunNorthup: x on every level of the
		// leaf path, y at the staging level.
		xStage, err := c.AllocAt(dram, vecBytes)
		if err != nil {
			return err
		}
		defer c.Release(xStage)
		if err := c.MoveDataDown(xStage, fX, 0, 0, vecBytes); err != nil {
			return err
		}
		yStage, err := c.AllocAt(dram, vecBytes)
		if err != nil {
			return err
		}
		defer c.Release(yStage)
		xLeafBuf := xStage
		leaf := dram
		for !leaf.IsLeaf() {
			child := leaf.Children[0]
			xChild, err := c.AllocAt(child, vecBytes)
			if err != nil {
				return err
			}
			defer c.Release(xChild)
			if err := c.MoveData(xChild, xLeafBuf, 0, 0, vecBytes); err != nil {
				return err
			}
			xLeafBuf = xChild
			leaf = child
		}
		if functional {
			yView = view.F32(yStage.Bytes())
		}

		// The graph: iterations of parallel shard tasks, serialized through
		// the normalize task's extent overlaps (it reads the whole of y and
		// rewrites x, so every next-iteration shard waits on it and it waits
		// on every shard of its own iteration).
		g := taskgraph.New()
		for iter := 0; iter < cfg.Iters; iter++ {
			for _, sh := range shards {
				sh := sh
				rows := sh.r1 - sh.r0
				shardNNZ := int64(rowPtrHost[sh.r1] - rowPtrHost[sh.r0])
				off := int64(rowPtrHost[sh.r0]) * 4
				g.Add(&taskgraph.Task{
					Name: fmt.Sprintf("spmv-shard[%d:%d]", sh.r0, sh.r1),
					Kind: "spmv-shard",
					Reads: []taskgraph.Extent{
						{Buf: fRow, Off: int64(sh.r0) * 4, Len: int64(rows+1) * 4},
						{Buf: fCol, Off: off, Len: shardNNZ * 4},
						{Buf: fVal, Off: off, Len: shardNNZ * 4},
						{Buf: xLeafBuf, Off: 0, Len: vecBytes},
					},
					Writes: []taskgraph.Extent{
						{Buf: yStage, Off: int64(sh.r0) * 4, Len: int64(rows) * 4},
					},
					Cost: float64(shardNNZ),
					Run: func(sub *core.Ctx) error {
						rowBuf, err := sub.MoveDataDownCached(dram, fRow, int64(sh.r0)*4, int64(rows+1)*4)
						if err != nil {
							return err
						}
						defer sub.Unpin(rowBuf)
						colBuf, err := sub.MoveDataDownCached(dram, fCol, off, shardNNZ*4)
						if err != nil {
							return err
						}
						defer sub.Unpin(colBuf)
						valBuf, err := sub.MoveDataDownCached(dram, fVal, off, shardNNZ*4)
						if err != nil {
							return err
						}
						defer sub.Unpin(valBuf)
						return sub.Descend(dram, func(dc *core.Ctx) error {
							return computeShard(dc, cfg, sh, rowBuf, colBuf, valBuf,
								xLeafBuf, yStage, yView, rowPtrHost, functional)
						})
					},
				})
			}
			if iter < cfg.Iters-1 {
				writes := []taskgraph.Extent{{Buf: xStage, Off: 0, Len: vecBytes}}
				if xLeafBuf != xStage {
					writes = append(writes, taskgraph.Extent{Buf: xLeafBuf, Off: 0, Len: vecBytes})
				}
				g.Add(&taskgraph.Task{
					Name:   fmt.Sprintf("spmv-normalize[%d]", iter),
					Kind:   "spmv-normalize",
					Reads:  []taskgraph.Extent{{Buf: yStage, Off: 0, Len: vecBytes}},
					Writes: writes,
					Cost:   float64(n),
					Run: func(sub *core.Ctx) error {
						if _, err := sub.RunCPUParallel(4*float64(n), 8*float64(n), func() {
							if !functional {
								return
							}
							xv := view.F32(xStage.Bytes())
							norm := float32(0)
							for _, v := range yView {
								if v < 0 {
									v = -v
								}
								if v > norm {
									norm = v
								}
							}
							if norm == 0 {
								norm = 1
							}
							for i, v := range yView {
								xv[i] = v / norm
							}
						}); err != nil {
							return err
						}
						if xLeafBuf != xStage {
							return sub.MoveData(xLeafBuf, xStage, 0, 0, vecBytes)
						}
						return nil
					},
				})
			}
		}

		if opts.Node == nil {
			opts.Node = dram
		}
		var gerr error
		tstats, gerr = g.Run(c, opts)
		if gerr != nil {
			return gerr
		}
		return c.MoveData(fY, yStage, 0, 0, vecBytes)
	})
	if err != nil {
		return nil, tstats, err
	}

	res := &Result{Stats: stats, Shards: len(shards), Splits: splits}
	if functional {
		y := make([]float32, n)
		if err := fY.File().Peek(view.F32Bytes(y), 0); err != nil {
			return nil, tstats, err
		}
		res.Y = y
	}
	return res, tstats, nil
}
