package spmv

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/topo"
	"repro/internal/view"
	"repro/internal/workload"
)

// Config parameterizes a SpMV run.
type Config struct {
	// N is the matrix dimension (rows = cols); the paper uses 16M rows.
	N int
	// AvgNNZ is the average non-zeros per row of the generated input.
	AvgNNZ int
	// Kind selects the sparse structure (uniform / power-law / banded).
	Kind workload.SparseKind
	Seed int64
	// Chunks is the initial even division of rows (the paper divides the
	// matrix "into four chunks in row-dimension"). Shards that do not fit
	// the next level are split further by the recursion.
	Chunks int
	// Depth is the shard pipeline depth (default 2).
	Depth int
	// Iters repeats the multiply as a power iteration: after each pass,
	// x <- y / ||y||_inf (normalized on the CPU) and the matrix streams
	// from storage again. Default 1 (a single SpMV).
	Iters int
	// Matrix supplies an explicit input (e.g. parsed from a University of
	// Florida collection file via workload.ParseMatrixMarket) instead of
	// the synthetic generator. Requires a square matrix and a functional
	// (non-phantom) runtime; N, AvgNNZ, Kind and Seed are then ignored for
	// matrix generation.
	Matrix *workload.CSR
}

func (cfg *Config) setDefaults() error {
	if cfg.Matrix != nil {
		if cfg.Matrix.NRows != cfg.Matrix.NCols {
			return fmt.Errorf("spmv: provided matrix is %dx%d; square required",
				cfg.Matrix.NRows, cfg.Matrix.NCols)
		}
		cfg.N = cfg.Matrix.NRows
	}
	if cfg.N <= 0 {
		return fmt.Errorf("spmv: N=%d invalid", cfg.N)
	}
	if cfg.AvgNNZ <= 0 {
		cfg.AvgNNZ = 16
	}
	if cfg.Chunks <= 0 {
		cfg.Chunks = 4
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 2
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 1
	}
	return nil
}

// Result carries a run's output and measurements.
type Result struct {
	// Y is the result vector (nil in phantom mode).
	Y []float32
	// Stats is the measured run.
	Stats core.RunStats
	// Shards is the number of leaf shards actually processed.
	Shards int
	// Splits counts recursive shard subdivisions forced by capacity — the
	// §IV-C "unique advantage" of the recursive scheme on skewed inputs.
	Splits int
}

// shardRange is a half-open row range.
type shardRange struct{ r0, r1 int }

// shardBytes returns the storage footprint of rows [r0, r1): the row_ptr
// slice plus column indices and values.
func shardBytes(rowPtr []int32, r0, r1 int) int64 {
	nnz := int64(rowPtr[r1] - rowPtr[r0])
	return int64(r1-r0+1)*4 + nnz*8
}

// splitByNNZ returns the row that most evenly halves the range's non-zeros
// (computed from row_ptr, as §IV-C prescribes).
func splitByNNZ(rowPtr []int32, r0, r1 int) int {
	target := rowPtr[r0] + (rowPtr[r1]-rowPtr[r0])/2
	lo, hi := r0+1, r1-1
	for lo < hi {
		mid := (lo + hi) / 2
		if rowPtr[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Kernel builds the CSR-Adaptive dispatch for one shard: one workgroup per
// row block, with the roofline cost averaged over blocks. Functional
// operands may be nil (phantom mode).
func Kernel(blocks []RowBlock, rowPtr []int32, col []int32, val, x, y []float32) gpu.Kernel {
	var flops, bytes float64
	for _, b := range blocks {
		f, by := BlockCost(b, rowPtr)
		flops += f
		bytes += by
	}
	n := float64(len(blocks))
	if n == 0 {
		n = 1
	}
	kern := gpu.Kernel{
		Name:          "csr-adaptive",
		FlopsPerGroup: flops / n,
		BytesPerGroup: bytes / n,
		LocalBytes:    NNZPerGroup * 8,
	}
	if val != nil {
		kern.Run = func(g int) { ExecBlock(blocks[g], rowPtr, col, val, x, y) }
	}
	return kern
}

// RunNorthup executes out-of-core SpMV per §IV-C: row_ptr, col_id and data
// live on the storage root; the dense vectors are resident at the fastest
// feasible level (the paper's requirement that "the fastest memory has to
// be big enough to hold the vector"); shards of rows stream through the
// hierarchy, splitting recursively when a shard's non-zeros exceed the next
// level's capacity.
func RunNorthup(rt *core.Runtime, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	root := rt.Tree().Root()
	if root.Store == nil {
		return nil, fmt.Errorf("spmv: tree root %v is not storage", root)
	}
	dram := root.Children[0]
	n := cfg.N
	functional := !rt.Phantom()

	// Host-side planning data: the row structure exists even in phantom
	// mode (64 MiB at 16M rows); columns and values only functionally.
	var m *workload.CSR
	var rowPtrHost []int32
	switch {
	case cfg.Matrix != nil:
		if !functional {
			return nil, fmt.Errorf("spmv: provided matrices need a functional runtime")
		}
		m = cfg.Matrix
		rowPtrHost = m.RowPtr
	case functional:
		m = workload.Sparse(cfg.Kind, n, cfg.AvgNNZ, cfg.Seed)
		rowPtrHost = m.RowPtr
	default:
		rowPtrHost = workload.SparseRowPtr(cfg.Kind, n, cfg.AvgNNZ, cfg.Seed)
	}
	nnz := int64(rowPtrHost[n])

	var xHost []float32
	if functional {
		xHost = workload.Vector(n, cfg.Seed+1)
	}
	var colBytes, valBytes []byte
	if functional {
		colBytes, valBytes = view.I32Bytes(m.ColIdx), view.F32Bytes(m.Val)
	}
	fRow, err := rt.CreateInput(root, "sp-rowptr", int64(n+1)*4, view.I32Bytes(rowPtrHost))
	if err != nil {
		return nil, err
	}
	fCol, err := rt.CreateInput(root, "sp-colidx", nnz*4, colBytes)
	if err != nil {
		return nil, err
	}
	fVal, err := rt.CreateInput(root, "sp-val", nnz*4, valBytes)
	if err != nil {
		return nil, err
	}
	fX, err := rt.CreateInput(root, "sp-x", int64(n)*4, view.F32Bytes(xHost))
	if err != nil {
		return nil, err
	}
	fY, err := rt.CreateInput(root, "sp-y", int64(n)*4, nil)
	if err != nil {
		return nil, err
	}

	// Shard budget: the tightest non-root level, after the resident
	// vectors, shared among the in-flight pipeline slots.
	vecBytes := int64(n) * 4
	budget := int64(1) << 62
	for node := dram; node != nil; node = childOf(node) {
		free := node.Mem.Free()
		resident := vecBytes // x everywhere on the path
		if node == dram {
			resident += vecBytes // y stays at the staging level
		}
		b := (free*9/10 - resident) / int64(cfg.Depth+1)
		if b < budget {
			budget = b
		}
	}
	if budget <= 0 {
		return nil, fmt.Errorf("spmv: vectors alone exceed the hierarchy's capacity")
	}

	// The recursion's planning pass: split ranges by nnz until they fit.
	var shards []shardRange
	splits := 0
	var expand func(r0, r1 int) error
	expand = func(r0, r1 int) error {
		if shardBytes(rowPtrHost, r0, r1) <= budget {
			shards = append(shards, shardRange{r0, r1})
			return nil
		}
		if r1-r0 <= 1 {
			return fmt.Errorf("spmv: row %d alone (%d nnz) exceeds the level budget %d",
				r0, rowPtrHost[r0+1]-rowPtrHost[r0], budget)
		}
		splits++
		mid := splitByNNZ(rowPtrHost, r0, r1)
		if err := expand(r0, mid); err != nil {
			return err
		}
		return expand(mid, r1)
	}
	for c := 0; c < cfg.Chunks; c++ {
		r0 := n * c / cfg.Chunks
		r1 := n * (c + 1) / cfg.Chunks
		if r0 == r1 {
			continue
		}
		if err := expand(r0, r1); err != nil {
			return nil, err
		}
	}

	type inflight struct {
		row, col, val *core.Buffer
	}
	slots := make([]inflight, len(shards))

	var yView []float32
	stats, err := rt.Run("spmv-northup", func(c *core.Ctx) error {
		// Vectors down the tree: x to every level on the leaf path, y at
		// the staging level.
		xStage, err := c.AllocAt(dram, vecBytes)
		if err != nil {
			return err
		}
		defer c.Release(xStage)
		if err := c.MoveDataDown(xStage, fX, 0, 0, vecBytes); err != nil {
			return err
		}
		yStage, err := c.AllocAt(dram, vecBytes)
		if err != nil {
			return err
		}
		defer c.Release(yStage)
		xLeafBuf := xStage
		leaf := dram
		for !leaf.IsLeaf() {
			child := leaf.Children[0]
			xChild, err := c.AllocAt(child, vecBytes)
			if err != nil {
				return err
			}
			defer c.Release(xChild)
			if err := c.MoveData(xChild, xLeafBuf, 0, 0, vecBytes); err != nil {
				return err
			}
			xLeafBuf = xChild
			leaf = child
		}
		if functional {
			yView = view.F32(yStage.Bytes())
		}

		for iter := 0; iter < cfg.Iters; iter++ {
			err = c.Pipeline(len(shards), cfg.Depth,
				func(sub *core.Ctx, si int) error { // load shard from storage
					sh := shards[si]
					rows := sh.r1 - sh.r0
					shardNNZ := int64(rowPtrHost[sh.r1] - rowPtrHost[sh.r0])
					off := int64(rowPtrHost[sh.r0]) * 4
					// The matrix extents are read-only and re-read on every
					// power iteration, so they go through the staging cache:
					// iteration 1 streams from storage, later iterations hit
					// resident shards (capacity permitting).
					var s inflight
					var err error
					if s.row, err = sub.MoveDataDownCached(dram, fRow, int64(sh.r0)*4, int64(rows+1)*4); err != nil {
						return err
					}
					if s.col, err = sub.MoveDataDownCached(dram, fCol, off, shardNNZ*4); err != nil {
						return err
					}
					if s.val, err = sub.MoveDataDownCached(dram, fVal, off, shardNNZ*4); err != nil {
						return err
					}
					slots[si] = s
					// The pipeline schedule is deterministic: shard si+1 loads
					// next. Hint its extents behind this shard's fetches.
					if nx := si + 1; nx < len(shards) {
						nsh := shards[nx]
						noff := int64(rowPtrHost[nsh.r0]) * 4
						nNNZ := int64(rowPtrHost[nsh.r1] - rowPtrHost[nsh.r0])
						sub.Prefetch(dram, fRow, int64(nsh.r0)*4, int64(nsh.r1-nsh.r0+1)*4)
						sub.Prefetch(dram, fCol, noff, nNNZ*4)
						sub.Prefetch(dram, fVal, noff, nNNZ*4)
					}
					return nil
				},
				func(sub *core.Ctx, si int) error { // bin on CPU, compute at leaf
					sh := shards[si]
					s := slots[si]
					err := sub.Descend(dram, func(dc *core.Ctx) error {
						return computeShard(dc, cfg, sh, s.row, s.col, s.val,
							xLeafBuf, yStage, yView, rowPtrHost, functional)
					})
					sub.Unpin(s.row)
					sub.Unpin(s.col)
					sub.Unpin(s.val)
					slots[si] = inflight{}
					return err
				},
			)
			if err != nil {
				return err
			}
			if iter < cfg.Iters-1 {
				// Power-iteration step: x <- y / ||y||_inf on the CPU, then
				// refresh the leaf-resident copy of x.
				if _, err := c.RunCPUParallel(4*float64(n), 8*float64(n), func() {
					if !functional {
						return
					}
					xv := view.F32(xStage.Bytes())
					norm := float32(0)
					for _, v := range yView {
						if v < 0 {
							v = -v
						}
						if v > norm {
							norm = v
						}
					}
					if norm == 0 {
						norm = 1
					}
					for i, v := range yView {
						xv[i] = v / norm
					}
				}); err != nil {
					return err
				}
				// The staging copy changed; charge its propagation to the
				// deeper levels (3-level trees keep x in device memory).
				if xLeafBuf != xStage {
					if err := c.MoveData(xLeafBuf, xStage, 0, 0, vecBytes); err != nil {
						return err
					}
				}
				// On 2-level trees the leaf reads xStage directly.
			}
		}
		// Result vector back to storage (b is one sequential write).
		return c.MoveData(fY, yStage, 0, 0, vecBytes)
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Stats: stats, Shards: len(shards), Splits: splits}
	if functional {
		y := make([]float32, n)
		if err := fY.File().Peek(view.F32Bytes(y), 0); err != nil {
			return nil, err
		}
		res.Y = y
	}
	return res, nil
}

// childOf returns a node's only child, or nil at a leaf.
func childOf(n *topo.Node) *topo.Node {
	if n.IsLeaf() {
		return nil
	}
	return n.Children[0]
}

// computeShard bins the shard's rows on the CPU, then launches the
// CSR-Adaptive kernels on the leaf GPU, descending one more level first on
// 3-level trees (shard data to GPU device memory, y segment back up).
func computeShard(dc *core.Ctx, cfg Config, sh shardRange,
	rowBuf, colBuf, valBuf, xLeaf, yStage *core.Buffer,
	yView []float32, rowPtrHost []int32, functional bool) error {

	rows := sh.r1 - sh.r0
	// CPU binning (charged; functional work is the same host call).
	var blocks []RowBlock
	shardRowPtr := rowPtrHost[sh.r0 : sh.r1+1]
	if _, err := dc.RunCPU(BinFlopsPerRow*float64(rows), BinBytesPerRow*float64(rows),
		func() { blocks = BuildRowBlocks(shardRowPtr) }); err != nil {
		return err
	}
	if blocks == nil {
		// Phantom runs still need block shapes for the cost model.
		blocks = BuildRowBlocks(shardRowPtr)
	}

	if dc.IsLeaf() {
		var col []int32
		var val, x, y []float32
		if functional {
			col = view.I32(colBuf.Bytes())
			val = view.F32(valBuf.Bytes())
			x = view.F32(xLeaf.Bytes())
			y = yView[sh.r0:sh.r1]
		}
		kern := Kernel(blocks, shardRowPtr, col, val, x, y)
		_, err := dc.LaunchKernel(kern, len(blocks))
		return err
	}

	// 3-level path: shard data and a y segment move to the child level.
	child := dc.Children()[0]
	shardNNZ := int64(shardRowPtr[rows] - shardRowPtr[0])
	gRow, err := dc.AllocAt(child, int64(rows+1)*4)
	if err != nil {
		return err
	}
	gCol, err := dc.AllocAt(child, shardNNZ*4)
	if err != nil {
		return err
	}
	gVal, err := dc.AllocAt(child, shardNNZ*4)
	if err != nil {
		return err
	}
	gY, err := dc.AllocAt(child, int64(rows)*4)
	if err != nil {
		return err
	}
	defer func() {
		dc.Release(gRow)
		dc.Release(gCol)
		dc.Release(gVal)
		dc.Release(gY)
	}()
	if err := dc.MoveDataDown(gRow, rowBuf, 0, 0, int64(rows+1)*4); err != nil {
		return err
	}
	if err := dc.MoveDataDown(gCol, colBuf, 0, 0, shardNNZ*4); err != nil {
		return err
	}
	if err := dc.MoveDataDown(gVal, valBuf, 0, 0, shardNNZ*4); err != nil {
		return err
	}
	err = dc.Descend(child, func(lc *core.Ctx) error {
		var col []int32
		var val, x, y []float32
		if functional {
			col = view.I32(gCol.Bytes())
			val = view.F32(gVal.Bytes())
			x = view.F32(xLeaf.Bytes())
			y = view.F32(gY.Bytes())
		}
		kern := Kernel(blocks, shardRowPtr, col, val, x, y)
		_, kerr := lc.LaunchKernel(kern, len(blocks))
		return kerr
	})
	if err != nil {
		return err
	}
	return dc.MoveDataUp(yStage, gY, int64(sh.r0)*4, 0, int64(rows)*4)
}

// RunInMemory executes the in-memory baseline: matrix and vectors resident
// in DRAM, CPU binning plus one kernel dispatch, no I/O measured.
func RunInMemory(rt *core.Runtime, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rootNode := rt.Tree().Root()
	if rootNode.Store != nil {
		return nil, fmt.Errorf("spmv: in-memory baseline needs a DRAM root (got %v)", rootNode)
	}
	n := cfg.N
	functional := !rt.Phantom()
	var m *workload.CSR
	var rowPtrHost []int32
	switch {
	case cfg.Matrix != nil:
		if !functional {
			return nil, fmt.Errorf("spmv: provided matrices need a functional runtime")
		}
		m = cfg.Matrix
		rowPtrHost = m.RowPtr
	case functional:
		m = workload.Sparse(cfg.Kind, n, cfg.AvgNNZ, cfg.Seed)
		rowPtrHost = m.RowPtr
	default:
		rowPtrHost = workload.SparseRowPtr(cfg.Kind, n, cfg.AvgNNZ, cfg.Seed)
	}
	nnz := int64(rowPtrHost[n])

	var res *Result
	stats, err := rt.Run("spmv-inmemory", func(c *core.Ctx) error {
		// Buffers exist (capacity accounting) but inputs appear untimed.
		for _, size := range []int64{int64(n+1) * 4, nnz * 4, nnz * 4, int64(n) * 4, int64(n) * 4} {
			if _, err := c.Alloc(size); err != nil {
				return err
			}
		}
		var blocks []RowBlock
		if _, err := c.RunCPU(BinFlopsPerRow*float64(n), BinBytesPerRow*float64(n),
			func() { blocks = BuildRowBlocks(rowPtrHost) }); err != nil {
			return err
		}
		if blocks == nil {
			blocks = BuildRowBlocks(rowPtrHost)
		}
		var col []int32
		var val, x, y []float32
		if functional {
			col, val = m.ColIdx, m.Val
			x = workload.Vector(n, cfg.Seed+1)
			y = make([]float32, n)
		}
		kern := Kernel(blocks, rowPtrHost, col, val, x, y)
		if _, err := c.LaunchKernel(kern, len(blocks)); err != nil {
			return err
		}
		res = &Result{Y: y, Shards: 1}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}
