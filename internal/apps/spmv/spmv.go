// Package spmv implements the paper's third case study (§IV-C): sparse
// matrix-vector multiplication with the CSR-Adaptive algorithm of
// Greathouse and Daga (the paper's baseline [20]), as an in-memory GPU
// baseline and a Northup out-of-core version with nnz-adaptive row shards.
//
// CSR-Adaptive bins consecutive rows into row blocks on the CPU and picks a
// kernel per block shape:
//
//   - CSR-Stream: many short rows whose combined non-zeros fit the local
//     memory window; one workgroup streams them all and reduces per row.
//   - CSR-Vector: one long row per workgroup.
//   - CSR-VectorL: one very long row split across several workgroups that
//     accumulate partial sums.
package spmv

import "repro/internal/workload"

const (
	// NNZPerGroup is the CSR-Stream local-memory window (non-zeros one
	// workgroup stages), as in the CSR-Adaptive paper.
	NNZPerGroup = 2048
	// VectorLongThreshold is the row length beyond which a row is split
	// across multiple workgroups (CSR-VectorL).
	VectorLongThreshold = 4 * NNZPerGroup
)

// BlockKind labels a row block's kernel.
type BlockKind int

const (
	// Stream blocks hold several short rows (CSR-Stream kernel).
	Stream BlockKind = iota
	// Vector blocks hold one long row (CSR-Vector kernel).
	Vector
	// VectorLong blocks hold a slice of one very long row, combined with
	// partial-sum accumulation (CSR-VectorL kernel).
	VectorLong
)

// String names the kind.
func (k BlockKind) String() string {
	switch k {
	case Stream:
		return "stream"
	case Vector:
		return "vector"
	default:
		return "vectorL"
	}
}

// RowBlock is one workgroup's assignment. Row indices are relative to the
// shard being processed; NNZ offsets are relative to the shard's value
// array.
type RowBlock struct {
	Kind   BlockKind
	Row0   int  // first row (inclusive)
	Row1   int  // last row (exclusive); Row1 = Row0+1 for Vector kinds
	NNZ0   int  // first non-zero (inclusive), for VectorLong slices
	NNZ1   int  // last non-zero (exclusive)
	ClearY bool // VectorLong: whether this slice initializes the row sum
}

// BuildRowBlocks bins rows [0, len(rowPtr)-1) into row blocks, the CPU-side
// preprocessing of CSR-Adaptive. rowPtr is shard-relative (rowPtr[0] may be
// nonzero; offsets are taken relative to it).
func BuildRowBlocks(rowPtr []int32) []RowBlock {
	nRows := len(rowPtr) - 1
	base := rowPtr[0]
	var blocks []RowBlock
	r := 0
	for r < nRows {
		nnz := int(rowPtr[r+1] - rowPtr[r])
		if nnz > VectorLongThreshold {
			// Split one huge row into NNZPerGroup-sized slices.
			start := int(rowPtr[r] - base)
			end := int(rowPtr[r+1] - base)
			for s := start; s < end; s += NNZPerGroup {
				e := s + NNZPerGroup
				if e > end {
					e = end
				}
				blocks = append(blocks, RowBlock{
					Kind: VectorLong, Row0: r, Row1: r + 1,
					NNZ0: s, NNZ1: e, ClearY: s == start,
				})
			}
			r++
			continue
		}
		if nnz > NNZPerGroup {
			blocks = append(blocks, RowBlock{
				Kind: Vector, Row0: r, Row1: r + 1,
				NNZ0: int(rowPtr[r] - base), NNZ1: int(rowPtr[r+1] - base),
			})
			r++
			continue
		}
		// Greedily pack consecutive short rows into one stream window.
		r1 := r
		acc := 0
		for r1 < nRows {
			next := int(rowPtr[r1+1] - rowPtr[r1])
			if next > NNZPerGroup {
				break
			}
			if acc+next > NNZPerGroup {
				break
			}
			acc += next
			r1++
		}
		kind := Stream
		if r1 == r+1 {
			// A lone row in the window behaves like CSR-Vector.
			kind = Vector
		}
		blocks = append(blocks, RowBlock{
			Kind: kind, Row0: r, Row1: r1,
			NNZ0: int(rowPtr[r] - base), NNZ1: int(rowPtr[r1] - base),
		})
		r = r1
	}
	return blocks
}

// Reference computes y = A x on the host: the correctness oracle.
func Reference(m *workload.CSR, x []float32) []float32 {
	y := make([]float32, m.NRows)
	for r := 0; r < m.NRows; r++ {
		var sum float32
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			sum += m.Val[i] * x[m.ColIdx[i]]
		}
		y[r] = sum
	}
	return y
}

// ExecBlock computes one row block functionally: the body of one workgroup.
// rowPtr is shard-relative as in BuildRowBlocks; col/val are the shard's
// slices; y is the shard's output segment.
func ExecBlock(b RowBlock, rowPtr []int32, col []int32, val, x, y []float32) {
	base := rowPtr[0]
	switch b.Kind {
	case Stream, Vector:
		for r := b.Row0; r < b.Row1; r++ {
			var sum float32
			for i := rowPtr[r] - base; i < rowPtr[r+1]-base; i++ {
				sum += val[i] * x[col[i]]
			}
			y[r] = sum
		}
	case VectorLong:
		var sum float32
		for i := b.NNZ0; i < b.NNZ1; i++ {
			sum += val[i] * x[col[i]]
		}
		if b.ClearY {
			y[b.Row0] = sum
		} else {
			y[b.Row0] += sum // atomic add on real hardware
		}
	}
}

// Cost-model constants for the roofline: every non-zero streams 8 bytes of
// matrix data (column index + value) plus a gathered read of x. Gathers on
// an irregular column pattern fetch whole cache lines, most of which is
// wasted — GatherBytes models that amplification, and is what makes SpMV
// the most bandwidth-hungry of the three applications (Figures 6-9 place
// CSR-Adaptive at the memory-bound extreme).
const (
	FlopsPerNNZ = 2.0
	StreamBytes = 8.0
	GatherBytes = 48.0
	RowOutBytes = 8.0 // row_ptr read + y write per row
	// BinFlopsPerRow and BinBytesPerRow cost the CPU binning pass (§V-C:
	// "CSR-Adaptive uses the CPU for binning rows ... and spends
	// relatively more time").
	BinFlopsPerRow = 8.0
	BinBytesPerRow = 24.0
)

// BlockCost returns the roofline inputs for one row block.
func BlockCost(b RowBlock, rowPtr []int32) (flops, bytes float64) {
	var nnz int
	if b.Kind == VectorLong {
		nnz = b.NNZ1 - b.NNZ0
	} else {
		nnz = int(rowPtr[b.Row1] - rowPtr[b.Row0])
	}
	rows := b.Row1 - b.Row0
	flops = FlopsPerNNZ * float64(nnz)
	bytes = (StreamBytes+GatherBytes)*float64(nnz) + RowOutBytes*float64(rows)
	return flops, bytes
}
