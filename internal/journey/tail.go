package journey

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// This file is the tail-latency analyzer: given a run's journeys it
// decomposes any latency quantile into per-phase contributions per tenant
// and picks the quantile job itself as the exemplar to render as a
// waterfall. Everything is derived from finished journeys only, sorted
// deterministically, so the output is byte-identical across runs.

// PhaseShare is one phase's contribution to the tail's total latency.
type PhaseShare struct {
	Phase string  `json:"phase"`
	NS    int64   `json:"ns"`
	Share float64 `json:"share"`
}

// TenantTail decomposes one tenant's latency tail.
type TenantTail struct {
	Tenant string  `json:"tenant"`
	Q      float64 `json:"quantile"`
	// Jobs is the tenant's finished-journey count; TailJobs of them sit at
	// or above the quantile threshold and feed the decomposition.
	Jobs        int   `json:"jobs"`
	TailJobs    int   `json:"tail_jobs"`
	ThresholdNS int64 `json:"threshold_ns"`
	// Phases are the tail jobs' aggregated phase totals, largest first.
	Phases []PhaseShare `json:"phases"`
	// Exemplar is the quantile job itself — the one whose latency is the
	// threshold (ties broken by trace ID, so the pick is deterministic).
	Exemplar *Job `json:"-"`
}

// TailReport is the analyzer's output across tenants.
type TailReport struct {
	Q       float64      `json:"quantile"`
	Tenants []TenantTail `json:"tenants"`
}

// Tail decomposes the q-quantile latency of each tenant's finished
// journeys into phase contributions. The threshold follows the obs
// histogram convention: the smallest latency with rank >= ceil(q*n).
func Tail(jobs []*Job, q float64) *TailReport {
	byTenant := map[string][]*Job{}
	var tenants []string
	for _, j := range jobs {
		if !j.finished {
			continue
		}
		if _, ok := byTenant[j.Tenant]; !ok {
			tenants = append(tenants, j.Tenant)
		}
		byTenant[j.Tenant] = append(byTenant[j.Tenant], j)
	}
	sort.Strings(tenants)

	rep := &TailReport{Q: q}
	for _, name := range tenants {
		js := byTenant[name]
		sort.Slice(js, func(a, b int) bool {
			if js[a].Latency() != js[b].Latency() {
				return js[a].Latency() < js[b].Latency()
			}
			return js[a].TraceID < js[b].TraceID
		})
		rank := int(float64(len(js)) * q)
		if float64(rank) < float64(len(js))*q {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		if rank > len(js) {
			rank = len(js)
		}
		pivot := js[rank-1]
		tail := js[rank-1:]

		totals := map[string]int64{}
		var order []string
		var tailNS int64
		for _, j := range tail {
			for _, pt := range j.Phases() {
				if _, ok := totals[pt.Phase]; !ok {
					order = append(order, pt.Phase)
				}
				totals[pt.Phase] += pt.NS
				tailNS += pt.NS
			}
		}
		shares := make([]PhaseShare, 0, len(order))
		for _, ph := range order {
			s := PhaseShare{Phase: ph, NS: totals[ph]}
			if tailNS > 0 {
				s.Share = float64(s.NS) / float64(tailNS)
			}
			shares = append(shares, s)
		}
		sort.Slice(shares, func(a, b int) bool {
			if shares[a].NS != shares[b].NS {
				return shares[a].NS > shares[b].NS
			}
			return shares[a].Phase < shares[b].Phase
		})
		rep.Tenants = append(rep.Tenants, TenantTail{
			Tenant:      name,
			Q:           q,
			Jobs:        len(js),
			TailJobs:    len(tail),
			ThresholdNS: int64(pivot.Latency()),
			Phases:      shares,
			Exemplar:    pivot,
		})
	}
	return rep
}

// SlowestPhase returns the name of the largest phase contribution, or "".
func (t *TenantTail) SlowestPhase() string {
	if len(t.Phases) == 0 {
		return ""
	}
	return t.Phases[0].Phase
}

// String renders the report as fixed-width tables, one per tenant, each
// followed by the quantile job's waterfall.
func (r *TailReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tail-latency decomposition at p%g\n", r.Q*100)
	for i := range r.Tenants {
		t := &r.Tenants[i]
		fmt.Fprintf(&sb, "\ntenant %s: %d jobs, %d in tail, threshold %s\n",
			t.Tenant, t.Jobs, t.TailJobs, fmtNS(t.ThresholdNS))
		fmt.Fprintf(&sb, "  %-24s %14s %7s\n", "phase", "total", "share")
		for _, p := range t.Phases {
			fmt.Fprintf(&sb, "  %-24s %14s %6.1f%% %s\n",
				p.Phase, fmtNS(p.NS), p.Share*100, bar(p.Share, 24))
		}
		if t.Exemplar != nil {
			sb.WriteString("\n")
			sb.WriteString(Waterfall(t.Exemplar))
		}
	}
	return sb.String()
}

// Waterfall renders one job's journey as a time-ordered segment table.
func Waterfall(j *Job) string {
	var sb strings.Builder
	status := "ok"
	if j.Failed {
		status = "FAILED"
	}
	fmt.Fprintf(&sb, "job %s/j%04d %s n=%d trace %s — latency %s (arrive %s, %s)\n",
		j.Tenant, j.ID, j.Workload, j.N, j.TraceID,
		fmtNS(int64(j.Latency())), fmtNS(int64(j.Arrive)), status)
	if len(j.Behind) > 0 {
		fmt.Fprintf(&sb, "  queued behind %d job(s): %s\n", len(j.Behind), strings.Join(j.Behind, " "))
	}
	fmt.Fprintf(&sb, "  %-12s %12s  %-24s %12s\n", "offset", "dur", "phase", "bytes")
	segs, dropped := j.Segments()
	lat := int64(j.Latency())
	for _, s := range segs {
		share := 0.0
		if lat > 0 {
			share = float64(s.DurNS) / float64(lat)
		}
		bytes := ""
		if s.Bytes > 0 {
			bytes = fmt.Sprintf("%d", s.Bytes)
		}
		fmt.Fprintf(&sb, "  +%-11s %12s  %-24s %12s %s\n",
			fmtNS(s.StartNS-int64(j.Arrive)), fmtNS(s.DurNS), s.Phase, bytes, bar(share, 24))
	}
	if dropped > 0 {
		fmt.Fprintf(&sb, "  ... %d segment(s) past the cap (phase totals stay exact)\n", dropped)
	}
	fmt.Fprintf(&sb, "  phase totals:")
	for i, pt := range j.Phases() {
		sep := " "
		if i > 0 {
			sep = " | "
		}
		share := 0.0
		if lat > 0 {
			share = float64(pt.NS) / float64(lat)
		}
		fmt.Fprintf(&sb, "%s%s %.1f%%", sep, pt.Phase, share*100)
	}
	sb.WriteString("\n")
	return sb.String()
}

// bar renders share as a fixed-width ASCII bar.
func bar(share float64, width int) string {
	n := int(share*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// fmtNS renders virtual nanoseconds with a human unit, deterministically.
func fmtNS(ns int64) string {
	d := sim.Time(ns)
	switch {
	case d >= sim.Second:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case d >= sim.Millisecond:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case d >= sim.Microsecond:
		return fmt.Sprintf("%.3fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
