package journey

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

// This file exports journeys: a JSON document per run, and synthesized
// Chrome trace events so a serve trace opened in Perfetto shows one
// "job:<traceID>" lane per journey next to the runtime's node lanes.
// Journey lanes are synthesized at export time only — they are never
// emitted into the live trace ring, so ops burn-window attribution (which
// reads the ring) keeps seeing exactly the runtime's own events.

// JobDoc is one journey in export form.
type JobDoc struct {
	TraceID    string       `json:"trace_id"`
	Tenant     string       `json:"tenant"`
	ID         int          `json:"id"`
	Workload   string       `json:"workload"`
	N          int          `json:"n"`
	ArriveNS   int64        `json:"arrive_ns"`
	StartNS    int64        `json:"start_ns"`
	DoneNS     int64        `json:"done_ns"`
	LatencyNS  int64        `json:"latency_ns"`
	Failed     bool         `json:"failed,omitempty"`
	Behind     []string     `json:"behind,omitempty"`
	Phases     []PhaseTotal `json:"phases"`
	Segments   []Segment    `json:"segments"`
	SegDropped int          `json:"segments_dropped,omitempty"`
}

// Doc renders the journey in export form.
func (j *Job) Doc() *JobDoc {
	segs, dropped := j.Segments()
	return &JobDoc{
		TraceID:    j.TraceID,
		Tenant:     j.Tenant,
		ID:         j.ID,
		Workload:   j.Workload,
		N:          j.N,
		ArriveNS:   int64(j.Arrive),
		StartNS:    int64(j.Start),
		DoneNS:     int64(j.Done),
		LatencyNS:  int64(j.Latency()),
		Failed:     j.Failed,
		Behind:     j.Behind,
		Phases:     j.Phases(),
		Segments:   segs,
		SegDropped: dropped,
	}
}

// ExportSchema versions the journeys JSON document.
const ExportSchema = "northup-journeys/v1"

// Export is the run-level journeys document.
type Export struct {
	Schema string    `json:"schema"`
	Seed   int64     `json:"seed"`
	Jobs   []*JobDoc `json:"jobs"`
}

// Export renders every completed journey, in completion order.
func (r *Recorder) Export() *Export {
	out := &Export{Schema: ExportSchema, Seed: r.seed}
	for _, j := range r.jobs {
		out.Jobs = append(out.Jobs, j.Doc())
	}
	return out
}

// jobTrackPrefix prefixes the per-journey lane names in Chrome exports.
const jobTrackPrefix = "job:"

// JobTrack names the Chrome-trace lane of one trace ID.
func JobTrack(traceID string) string { return jobTrackPrefix + traceID }

// ChromeEvents synthesizes the journeys' phase segments as span events on
// per-job lanes ({NoNode, "job:<traceID>"}), ready to append to a
// recorder's event slice before trace.WriteChromeTrace. seqBase must
// exceed every appended-to event's Seq so the combined ordering stays
// total and deterministic.
func ChromeEvents(jobs []*Job, seqBase uint64) []trace.Event {
	var out []trace.Event
	seq := seqBase
	for _, j := range jobs {
		lane := trace.Lane{Node: trace.NoNode, Track: JobTrack(j.TraceID)}
		segs, _ := j.Segments()
		for _, s := range segs {
			out = append(out, trace.Event{
				Kind:  trace.KindSpan,
				Cat:   trace.None,
				Name:  s.Phase,
				Lane:  lane,
				Start: sim.Time(s.StartNS),
				Dur:   sim.Time(s.DurNS),
				Value: s.Bytes,
				Seq:   seq,
			})
			seq++
		}
	}
	return out
}

// MaxSeq returns the largest Seq among events (0 when empty) — the base
// for appending synthesized journey events.
func MaxSeq(events []trace.Event) uint64 {
	var max uint64
	for _, ev := range events {
		if ev.Seq > max {
			max = ev.Seq
		}
	}
	return max
}

// WaterfallFromEvents reconstructs one job's waterfall from a parsed
// Chrome trace containing journey lanes (northup-trace -job). It returns
// an error naming the available job lanes when the trace ID is absent.
func WaterfallFromEvents(events []trace.Event, traceID string) (string, error) {
	want := JobTrack(traceID)
	var segs []trace.Event
	lanes := map[string]bool{}
	for _, ev := range events {
		if !strings.HasPrefix(ev.Lane.Track, jobTrackPrefix) {
			continue
		}
		lanes[strings.TrimPrefix(ev.Lane.Track, jobTrackPrefix)] = true
		if ev.Kind == trace.KindSpan && ev.Lane.Track == want {
			segs = append(segs, ev)
		}
	}
	if len(segs) == 0 {
		if len(lanes) == 0 {
			return "", fmt.Errorf("journey: trace has no job lanes (re-export with journeys enabled)")
		}
		ids := make([]string, 0, len(lanes))
		for id := range lanes {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		return "", fmt.Errorf("journey: no job %s in trace; %d job lane(s): %s",
			traceID, len(ids), strings.Join(ids, " "))
	}
	sort.Slice(segs, func(a, b int) bool {
		if segs[a].Start != segs[b].Start {
			return segs[a].Start < segs[b].Start
		}
		return segs[a].Seq < segs[b].Seq
	})

	arrive := segs[0].Start
	end := segs[len(segs)-1].End()
	var sb strings.Builder
	fmt.Fprintf(&sb, "job trace %s — latency %s (arrive %s, %d segments)\n",
		traceID, fmtNS(int64(end-arrive)), fmtNS(int64(arrive)), len(segs))
	fmt.Fprintf(&sb, "  %-12s %12s  %-24s %12s\n", "offset", "dur", "phase", "bytes")
	lat := int64(end - arrive)
	totals := map[string]int64{}
	var order []string
	for _, s := range segs {
		share := 0.0
		if lat > 0 {
			share = float64(s.Dur) / float64(lat)
		}
		bytes := ""
		if s.Value > 0 {
			bytes = fmt.Sprintf("%d", s.Value)
		}
		fmt.Fprintf(&sb, "  +%-11s %12s  %-24s %12s %s\n",
			fmtNS(int64(s.Start-arrive)), fmtNS(int64(s.Dur)), s.Name, bytes, bar(share, 24))
		if _, ok := totals[s.Name]; !ok {
			order = append(order, s.Name)
		}
		totals[s.Name] += int64(s.Dur)
	}
	fmt.Fprintf(&sb, "  phase totals:")
	for i, ph := range order {
		sep := " "
		if i > 0 {
			sep = " | "
		}
		share := 0.0
		if lat > 0 {
			share = float64(totals[ph]) / float64(lat)
		}
		fmt.Fprintf(&sb, "%s%s %.1f%%", sep, ph, share*100)
	}
	sb.WriteString("\n")
	return sb.String(), nil
}
